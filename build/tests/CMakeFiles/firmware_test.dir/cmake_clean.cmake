file(REMOVE_RECURSE
  "CMakeFiles/firmware_test.dir/firmware_test.cc.o"
  "CMakeFiles/firmware_test.dir/firmware_test.cc.o.d"
  "firmware_test"
  "firmware_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firmware_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
