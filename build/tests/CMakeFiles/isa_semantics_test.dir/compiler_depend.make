# Empty compiler generated dependencies file for isa_semantics_test.
# This may be replaced when dependencies are built.
