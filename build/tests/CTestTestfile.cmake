# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[common_test]=] "/root/repo/build/tests/common_test")
set_tests_properties([=[common_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;9;neuroc_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[tensor_test]=] "/root/repo/build/tests/tensor_test")
set_tests_properties([=[tensor_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;10;neuroc_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[data_test]=] "/root/repo/build/tests/data_test")
set_tests_properties([=[data_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;11;neuroc_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[train_test]=] "/root/repo/build/tests/train_test")
set_tests_properties([=[train_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;neuroc_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[core_test]=] "/root/repo/build/tests/core_test")
set_tests_properties([=[core_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;13;neuroc_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[isa_test]=] "/root/repo/build/tests/isa_test")
set_tests_properties([=[isa_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;14;neuroc_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[sim_test]=] "/root/repo/build/tests/sim_test")
set_tests_properties([=[sim_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;15;neuroc_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[kernels_test]=] "/root/repo/build/tests/kernels_test")
set_tests_properties([=[kernels_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;16;neuroc_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[runtime_test]=] "/root/repo/build/tests/runtime_test")
set_tests_properties([=[runtime_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;17;neuroc_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[serde_test]=] "/root/repo/build/tests/serde_test")
set_tests_properties([=[serde_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;18;neuroc_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[firmware_test]=] "/root/repo/build/tests/firmware_test")
set_tests_properties([=[firmware_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;19;neuroc_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[isa_semantics_test]=] "/root/repo/build/tests/isa_semantics_test")
set_tests_properties([=[isa_semantics_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;20;neuroc_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[robustness_test]=] "/root/repo/build/tests/robustness_test")
set_tests_properties([=[robustness_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;21;neuroc_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[metrics_test]=] "/root/repo/build/tests/metrics_test")
set_tests_properties([=[metrics_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;22;neuroc_test;/root/repo/tests/CMakeLists.txt;0;")
