# Empty dependencies file for neuroc.
# This may be replaced when dependencies are built.
