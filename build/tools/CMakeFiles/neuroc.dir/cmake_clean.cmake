file(REMOVE_RECURSE
  "CMakeFiles/neuroc.dir/neuroc_cli.cc.o"
  "CMakeFiles/neuroc.dir/neuroc_cli.cc.o.d"
  "neuroc"
  "neuroc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neuroc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
