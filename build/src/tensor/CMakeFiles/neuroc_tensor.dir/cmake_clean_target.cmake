file(REMOVE_RECURSE
  "libneuroc_tensor.a"
)
