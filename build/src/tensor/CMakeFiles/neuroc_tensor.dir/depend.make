# Empty dependencies file for neuroc_tensor.
# This may be replaced when dependencies are built.
