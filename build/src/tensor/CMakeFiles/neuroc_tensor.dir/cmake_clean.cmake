file(REMOVE_RECURSE
  "CMakeFiles/neuroc_tensor.dir/matrix_ops.cc.o"
  "CMakeFiles/neuroc_tensor.dir/matrix_ops.cc.o.d"
  "CMakeFiles/neuroc_tensor.dir/tensor.cc.o"
  "CMakeFiles/neuroc_tensor.dir/tensor.cc.o.d"
  "libneuroc_tensor.a"
  "libneuroc_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neuroc_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
