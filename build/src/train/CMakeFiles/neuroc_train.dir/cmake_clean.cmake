file(REMOVE_RECURSE
  "CMakeFiles/neuroc_train.dir/layers.cc.o"
  "CMakeFiles/neuroc_train.dir/layers.cc.o.d"
  "CMakeFiles/neuroc_train.dir/loss.cc.o"
  "CMakeFiles/neuroc_train.dir/loss.cc.o.d"
  "CMakeFiles/neuroc_train.dir/metrics.cc.o"
  "CMakeFiles/neuroc_train.dir/metrics.cc.o.d"
  "CMakeFiles/neuroc_train.dir/network.cc.o"
  "CMakeFiles/neuroc_train.dir/network.cc.o.d"
  "CMakeFiles/neuroc_train.dir/neuroc_layer.cc.o"
  "CMakeFiles/neuroc_train.dir/neuroc_layer.cc.o.d"
  "CMakeFiles/neuroc_train.dir/optimizer.cc.o"
  "CMakeFiles/neuroc_train.dir/optimizer.cc.o.d"
  "CMakeFiles/neuroc_train.dir/ternary.cc.o"
  "CMakeFiles/neuroc_train.dir/ternary.cc.o.d"
  "CMakeFiles/neuroc_train.dir/trainer.cc.o"
  "CMakeFiles/neuroc_train.dir/trainer.cc.o.d"
  "libneuroc_train.a"
  "libneuroc_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neuroc_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
