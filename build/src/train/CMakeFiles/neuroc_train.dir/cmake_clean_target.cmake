file(REMOVE_RECURSE
  "libneuroc_train.a"
)
