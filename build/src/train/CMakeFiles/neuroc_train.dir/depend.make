# Empty dependencies file for neuroc_train.
# This may be replaced when dependencies are built.
