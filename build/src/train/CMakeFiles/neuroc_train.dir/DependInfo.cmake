
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/train/layers.cc" "src/train/CMakeFiles/neuroc_train.dir/layers.cc.o" "gcc" "src/train/CMakeFiles/neuroc_train.dir/layers.cc.o.d"
  "/root/repo/src/train/loss.cc" "src/train/CMakeFiles/neuroc_train.dir/loss.cc.o" "gcc" "src/train/CMakeFiles/neuroc_train.dir/loss.cc.o.d"
  "/root/repo/src/train/metrics.cc" "src/train/CMakeFiles/neuroc_train.dir/metrics.cc.o" "gcc" "src/train/CMakeFiles/neuroc_train.dir/metrics.cc.o.d"
  "/root/repo/src/train/network.cc" "src/train/CMakeFiles/neuroc_train.dir/network.cc.o" "gcc" "src/train/CMakeFiles/neuroc_train.dir/network.cc.o.d"
  "/root/repo/src/train/neuroc_layer.cc" "src/train/CMakeFiles/neuroc_train.dir/neuroc_layer.cc.o" "gcc" "src/train/CMakeFiles/neuroc_train.dir/neuroc_layer.cc.o.d"
  "/root/repo/src/train/optimizer.cc" "src/train/CMakeFiles/neuroc_train.dir/optimizer.cc.o" "gcc" "src/train/CMakeFiles/neuroc_train.dir/optimizer.cc.o.d"
  "/root/repo/src/train/ternary.cc" "src/train/CMakeFiles/neuroc_train.dir/ternary.cc.o" "gcc" "src/train/CMakeFiles/neuroc_train.dir/ternary.cc.o.d"
  "/root/repo/src/train/trainer.cc" "src/train/CMakeFiles/neuroc_train.dir/trainer.cc.o" "gcc" "src/train/CMakeFiles/neuroc_train.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/neuroc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/neuroc_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/neuroc_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
