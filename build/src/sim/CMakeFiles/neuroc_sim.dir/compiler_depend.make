# Empty compiler generated dependencies file for neuroc_sim.
# This may be replaced when dependencies are built.
