file(REMOVE_RECURSE
  "libneuroc_sim.a"
)
