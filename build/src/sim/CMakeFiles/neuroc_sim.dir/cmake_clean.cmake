file(REMOVE_RECURSE
  "CMakeFiles/neuroc_sim.dir/cpu.cc.o"
  "CMakeFiles/neuroc_sim.dir/cpu.cc.o.d"
  "CMakeFiles/neuroc_sim.dir/machine.cc.o"
  "CMakeFiles/neuroc_sim.dir/machine.cc.o.d"
  "CMakeFiles/neuroc_sim.dir/memory.cc.o"
  "CMakeFiles/neuroc_sim.dir/memory.cc.o.d"
  "libneuroc_sim.a"
  "libneuroc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neuroc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
