# Empty dependencies file for neuroc_data.
# This may be replaced when dependencies are built.
