
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/neuroc_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/neuroc_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/idx_loader.cc" "src/data/CMakeFiles/neuroc_data.dir/idx_loader.cc.o" "gcc" "src/data/CMakeFiles/neuroc_data.dir/idx_loader.cc.o.d"
  "/root/repo/src/data/raster.cc" "src/data/CMakeFiles/neuroc_data.dir/raster.cc.o" "gcc" "src/data/CMakeFiles/neuroc_data.dir/raster.cc.o.d"
  "/root/repo/src/data/stroke_font.cc" "src/data/CMakeFiles/neuroc_data.dir/stroke_font.cc.o" "gcc" "src/data/CMakeFiles/neuroc_data.dir/stroke_font.cc.o.d"
  "/root/repo/src/data/synth.cc" "src/data/CMakeFiles/neuroc_data.dir/synth.cc.o" "gcc" "src/data/CMakeFiles/neuroc_data.dir/synth.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/neuroc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/neuroc_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
