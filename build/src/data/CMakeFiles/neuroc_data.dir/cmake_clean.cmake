file(REMOVE_RECURSE
  "CMakeFiles/neuroc_data.dir/dataset.cc.o"
  "CMakeFiles/neuroc_data.dir/dataset.cc.o.d"
  "CMakeFiles/neuroc_data.dir/idx_loader.cc.o"
  "CMakeFiles/neuroc_data.dir/idx_loader.cc.o.d"
  "CMakeFiles/neuroc_data.dir/raster.cc.o"
  "CMakeFiles/neuroc_data.dir/raster.cc.o.d"
  "CMakeFiles/neuroc_data.dir/stroke_font.cc.o"
  "CMakeFiles/neuroc_data.dir/stroke_font.cc.o.d"
  "CMakeFiles/neuroc_data.dir/synth.cc.o"
  "CMakeFiles/neuroc_data.dir/synth.cc.o.d"
  "libneuroc_data.a"
  "libneuroc_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neuroc_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
