file(REMOVE_RECURSE
  "libneuroc_data.a"
)
