# Empty compiler generated dependencies file for neuroc_isa.
# This may be replaced when dependencies are built.
