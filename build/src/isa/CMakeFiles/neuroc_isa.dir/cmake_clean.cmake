file(REMOVE_RECURSE
  "CMakeFiles/neuroc_isa.dir/assembler.cc.o"
  "CMakeFiles/neuroc_isa.dir/assembler.cc.o.d"
  "CMakeFiles/neuroc_isa.dir/decoder.cc.o"
  "CMakeFiles/neuroc_isa.dir/decoder.cc.o.d"
  "CMakeFiles/neuroc_isa.dir/disassembler.cc.o"
  "CMakeFiles/neuroc_isa.dir/disassembler.cc.o.d"
  "CMakeFiles/neuroc_isa.dir/encoder.cc.o"
  "CMakeFiles/neuroc_isa.dir/encoder.cc.o.d"
  "CMakeFiles/neuroc_isa.dir/isa.cc.o"
  "CMakeFiles/neuroc_isa.dir/isa.cc.o.d"
  "libneuroc_isa.a"
  "libneuroc_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neuroc_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
