file(REMOVE_RECURSE
  "libneuroc_isa.a"
)
