# Empty compiler generated dependencies file for neuroc_core.
# This may be replaced when dependencies are built.
