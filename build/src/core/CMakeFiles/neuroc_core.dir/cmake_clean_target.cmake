file(REMOVE_RECURSE
  "libneuroc_core.a"
)
