
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adjacency_stats.cc" "src/core/CMakeFiles/neuroc_core.dir/adjacency_stats.cc.o" "gcc" "src/core/CMakeFiles/neuroc_core.dir/adjacency_stats.cc.o.d"
  "/root/repo/src/core/block_encoding.cc" "src/core/CMakeFiles/neuroc_core.dir/block_encoding.cc.o" "gcc" "src/core/CMakeFiles/neuroc_core.dir/block_encoding.cc.o.d"
  "/root/repo/src/core/csc_encoding.cc" "src/core/CMakeFiles/neuroc_core.dir/csc_encoding.cc.o" "gcc" "src/core/CMakeFiles/neuroc_core.dir/csc_encoding.cc.o.d"
  "/root/repo/src/core/delta_encoding.cc" "src/core/CMakeFiles/neuroc_core.dir/delta_encoding.cc.o" "gcc" "src/core/CMakeFiles/neuroc_core.dir/delta_encoding.cc.o.d"
  "/root/repo/src/core/encoding.cc" "src/core/CMakeFiles/neuroc_core.dir/encoding.cc.o" "gcc" "src/core/CMakeFiles/neuroc_core.dir/encoding.cc.o.d"
  "/root/repo/src/core/mixed_encoding.cc" "src/core/CMakeFiles/neuroc_core.dir/mixed_encoding.cc.o" "gcc" "src/core/CMakeFiles/neuroc_core.dir/mixed_encoding.cc.o.d"
  "/root/repo/src/core/mlp_model.cc" "src/core/CMakeFiles/neuroc_core.dir/mlp_model.cc.o" "gcc" "src/core/CMakeFiles/neuroc_core.dir/mlp_model.cc.o.d"
  "/root/repo/src/core/model_image.cc" "src/core/CMakeFiles/neuroc_core.dir/model_image.cc.o" "gcc" "src/core/CMakeFiles/neuroc_core.dir/model_image.cc.o.d"
  "/root/repo/src/core/model_serde.cc" "src/core/CMakeFiles/neuroc_core.dir/model_serde.cc.o" "gcc" "src/core/CMakeFiles/neuroc_core.dir/model_serde.cc.o.d"
  "/root/repo/src/core/neuroc_model.cc" "src/core/CMakeFiles/neuroc_core.dir/neuroc_model.cc.o" "gcc" "src/core/CMakeFiles/neuroc_core.dir/neuroc_model.cc.o.d"
  "/root/repo/src/core/synthetic.cc" "src/core/CMakeFiles/neuroc_core.dir/synthetic.cc.o" "gcc" "src/core/CMakeFiles/neuroc_core.dir/synthetic.cc.o.d"
  "/root/repo/src/core/ternary_matrix.cc" "src/core/CMakeFiles/neuroc_core.dir/ternary_matrix.cc.o" "gcc" "src/core/CMakeFiles/neuroc_core.dir/ternary_matrix.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/neuroc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/neuroc_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/neuroc_train.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/neuroc_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
