file(REMOVE_RECURSE
  "CMakeFiles/neuroc_core.dir/adjacency_stats.cc.o"
  "CMakeFiles/neuroc_core.dir/adjacency_stats.cc.o.d"
  "CMakeFiles/neuroc_core.dir/block_encoding.cc.o"
  "CMakeFiles/neuroc_core.dir/block_encoding.cc.o.d"
  "CMakeFiles/neuroc_core.dir/csc_encoding.cc.o"
  "CMakeFiles/neuroc_core.dir/csc_encoding.cc.o.d"
  "CMakeFiles/neuroc_core.dir/delta_encoding.cc.o"
  "CMakeFiles/neuroc_core.dir/delta_encoding.cc.o.d"
  "CMakeFiles/neuroc_core.dir/encoding.cc.o"
  "CMakeFiles/neuroc_core.dir/encoding.cc.o.d"
  "CMakeFiles/neuroc_core.dir/mixed_encoding.cc.o"
  "CMakeFiles/neuroc_core.dir/mixed_encoding.cc.o.d"
  "CMakeFiles/neuroc_core.dir/mlp_model.cc.o"
  "CMakeFiles/neuroc_core.dir/mlp_model.cc.o.d"
  "CMakeFiles/neuroc_core.dir/model_image.cc.o"
  "CMakeFiles/neuroc_core.dir/model_image.cc.o.d"
  "CMakeFiles/neuroc_core.dir/model_serde.cc.o"
  "CMakeFiles/neuroc_core.dir/model_serde.cc.o.d"
  "CMakeFiles/neuroc_core.dir/neuroc_model.cc.o"
  "CMakeFiles/neuroc_core.dir/neuroc_model.cc.o.d"
  "CMakeFiles/neuroc_core.dir/synthetic.cc.o"
  "CMakeFiles/neuroc_core.dir/synthetic.cc.o.d"
  "CMakeFiles/neuroc_core.dir/ternary_matrix.cc.o"
  "CMakeFiles/neuroc_core.dir/ternary_matrix.cc.o.d"
  "libneuroc_core.a"
  "libneuroc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neuroc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
