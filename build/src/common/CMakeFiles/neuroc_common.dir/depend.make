# Empty dependencies file for neuroc_common.
# This may be replaced when dependencies are built.
