file(REMOVE_RECURSE
  "CMakeFiles/neuroc_common.dir/fixed_point.cc.o"
  "CMakeFiles/neuroc_common.dir/fixed_point.cc.o.d"
  "CMakeFiles/neuroc_common.dir/logging.cc.o"
  "CMakeFiles/neuroc_common.dir/logging.cc.o.d"
  "CMakeFiles/neuroc_common.dir/rng.cc.o"
  "CMakeFiles/neuroc_common.dir/rng.cc.o.d"
  "libneuroc_common.a"
  "libneuroc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neuroc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
