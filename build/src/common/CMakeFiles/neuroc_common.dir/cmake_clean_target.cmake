file(REMOVE_RECURSE
  "libneuroc_common.a"
)
