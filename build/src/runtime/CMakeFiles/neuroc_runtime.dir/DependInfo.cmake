
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/c_emitter.cc" "src/runtime/CMakeFiles/neuroc_runtime.dir/c_emitter.cc.o" "gcc" "src/runtime/CMakeFiles/neuroc_runtime.dir/c_emitter.cc.o.d"
  "/root/repo/src/runtime/deployed_model.cc" "src/runtime/CMakeFiles/neuroc_runtime.dir/deployed_model.cc.o" "gcc" "src/runtime/CMakeFiles/neuroc_runtime.dir/deployed_model.cc.o.d"
  "/root/repo/src/runtime/firmware_image.cc" "src/runtime/CMakeFiles/neuroc_runtime.dir/firmware_image.cc.o" "gcc" "src/runtime/CMakeFiles/neuroc_runtime.dir/firmware_image.cc.o.d"
  "/root/repo/src/runtime/platform.cc" "src/runtime/CMakeFiles/neuroc_runtime.dir/platform.cc.o" "gcc" "src/runtime/CMakeFiles/neuroc_runtime.dir/platform.cc.o.d"
  "/root/repo/src/runtime/profile.cc" "src/runtime/CMakeFiles/neuroc_runtime.dir/profile.cc.o" "gcc" "src/runtime/CMakeFiles/neuroc_runtime.dir/profile.cc.o.d"
  "/root/repo/src/runtime/search.cc" "src/runtime/CMakeFiles/neuroc_runtime.dir/search.cc.o" "gcc" "src/runtime/CMakeFiles/neuroc_runtime.dir/search.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/train/CMakeFiles/neuroc_train.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/neuroc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/neuroc_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/neuroc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/neuroc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/neuroc_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/neuroc_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/neuroc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
