file(REMOVE_RECURSE
  "libneuroc_runtime.a"
)
