# Empty dependencies file for neuroc_runtime.
# This may be replaced when dependencies are built.
