file(REMOVE_RECURSE
  "CMakeFiles/neuroc_runtime.dir/c_emitter.cc.o"
  "CMakeFiles/neuroc_runtime.dir/c_emitter.cc.o.d"
  "CMakeFiles/neuroc_runtime.dir/deployed_model.cc.o"
  "CMakeFiles/neuroc_runtime.dir/deployed_model.cc.o.d"
  "CMakeFiles/neuroc_runtime.dir/firmware_image.cc.o"
  "CMakeFiles/neuroc_runtime.dir/firmware_image.cc.o.d"
  "CMakeFiles/neuroc_runtime.dir/platform.cc.o"
  "CMakeFiles/neuroc_runtime.dir/platform.cc.o.d"
  "CMakeFiles/neuroc_runtime.dir/profile.cc.o"
  "CMakeFiles/neuroc_runtime.dir/profile.cc.o.d"
  "CMakeFiles/neuroc_runtime.dir/search.cc.o"
  "CMakeFiles/neuroc_runtime.dir/search.cc.o.d"
  "libneuroc_runtime.a"
  "libneuroc_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neuroc_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
