file(REMOVE_RECURSE
  "CMakeFiles/neuroc_kernels.dir/conv_desc.cc.o"
  "CMakeFiles/neuroc_kernels.dir/conv_desc.cc.o.d"
  "CMakeFiles/neuroc_kernels.dir/kernel_set.cc.o"
  "CMakeFiles/neuroc_kernels.dir/kernel_set.cc.o.d"
  "CMakeFiles/neuroc_kernels.dir/kernel_sources.cc.o"
  "CMakeFiles/neuroc_kernels.dir/kernel_sources.cc.o.d"
  "libneuroc_kernels.a"
  "libneuroc_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neuroc_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
