file(REMOVE_RECURSE
  "libneuroc_kernels.a"
)
