# Empty compiler generated dependencies file for neuroc_kernels.
# This may be replaced when dependencies are built.
