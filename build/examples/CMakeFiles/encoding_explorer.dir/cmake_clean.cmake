file(REMOVE_RECURSE
  "CMakeFiles/encoding_explorer.dir/encoding_explorer.cpp.o"
  "CMakeFiles/encoding_explorer.dir/encoding_explorer.cpp.o.d"
  "encoding_explorer"
  "encoding_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encoding_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
