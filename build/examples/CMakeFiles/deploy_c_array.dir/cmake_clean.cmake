file(REMOVE_RECURSE
  "CMakeFiles/deploy_c_array.dir/deploy_c_array.cpp.o"
  "CMakeFiles/deploy_c_array.dir/deploy_c_array.cpp.o.d"
  "deploy_c_array"
  "deploy_c_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deploy_c_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
