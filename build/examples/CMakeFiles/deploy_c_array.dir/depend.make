# Empty dependencies file for deploy_c_array.
# This may be replaced when dependencies are built.
