file(REMOVE_RECURSE
  "CMakeFiles/architecture_search.dir/architecture_search.cpp.o"
  "CMakeFiles/architecture_search.dir/architecture_search.cpp.o.d"
  "architecture_search"
  "architecture_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/architecture_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
