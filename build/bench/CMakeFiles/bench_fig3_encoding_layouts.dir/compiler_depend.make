# Empty compiler generated dependencies file for bench_fig3_encoding_layouts.
# This may be replaced when dependencies are built.
