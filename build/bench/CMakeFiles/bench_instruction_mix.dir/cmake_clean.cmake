file(REMOVE_RECURSE
  "CMakeFiles/bench_instruction_mix.dir/bench_instruction_mix.cc.o"
  "CMakeFiles/bench_instruction_mix.dir/bench_instruction_mix.cc.o.d"
  "bench_instruction_mix"
  "bench_instruction_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_instruction_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
