# Empty dependencies file for bench_fig1_adjacency.
# This may be replaced when dependencies are built.
