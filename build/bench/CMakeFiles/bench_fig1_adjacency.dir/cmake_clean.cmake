file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_adjacency.dir/bench_fig1_adjacency.cc.o"
  "CMakeFiles/bench_fig1_adjacency.dir/bench_fig1_adjacency.cc.o.d"
  "bench_fig1_adjacency"
  "bench_fig1_adjacency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_adjacency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
