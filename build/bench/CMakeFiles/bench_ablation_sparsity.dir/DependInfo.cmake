
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_sparsity.cc" "bench/CMakeFiles/bench_ablation_sparsity.dir/bench_ablation_sparsity.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_sparsity.dir/bench_ablation_sparsity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/neuroc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/neuroc_train.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/neuroc_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/neuroc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/neuroc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/neuroc_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/neuroc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/neuroc_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/neuroc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
