# Empty dependencies file for bench_fig7_best_models.
# This may be replaced when dependencies are built.
