# Empty compiler generated dependencies file for bench_fig5_encoding_tradeoffs.
# This may be replaced when dependencies are built.
