file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_fc_vs_cnn.dir/bench_fig2_fc_vs_cnn.cc.o"
  "CMakeFiles/bench_fig2_fc_vs_cnn.dir/bench_fig2_fc_vs_cnn.cc.o.d"
  "bench_fig2_fc_vs_cnn"
  "bench_fig2_fc_vs_cnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_fc_vs_cnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
