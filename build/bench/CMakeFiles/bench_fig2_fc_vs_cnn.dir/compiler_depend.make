# Empty compiler generated dependencies file for bench_fig2_fc_vs_cnn.
# This may be replaced when dependencies are built.
