#include "src/train/loss.h"

#include <cmath>

#include "src/common/check.h"
#include "src/tensor/matrix_ops.h"
#include "src/train/metrics.h"

namespace neuroc {

float SoftmaxCrossEntropy(const Tensor& logits, std::span<const int> labels, Tensor* grad) {
  NEUROC_CHECK(logits.rank() == 2 && logits.rows() == labels.size());
  const size_t n = logits.rows();
  const size_t k = logits.cols();
  Tensor probs = logits;
  SoftmaxRows(probs);
  double loss = 0.0;
  for (size_t r = 0; r < n; ++r) {
    const int label = labels[r];
    NEUROC_CHECK(label >= 0 && static_cast<size_t>(label) < k);
    loss += -std::log(std::max(probs.at(r, static_cast<size_t>(label)), 1e-12f));
  }
  if (grad != nullptr) {
    *grad = probs;
    const float inv_n = 1.0f / static_cast<float>(n);
    for (size_t r = 0; r < n; ++r) {
      grad->at(r, static_cast<size_t>(labels[r])) -= 1.0f;
      float* row = grad->data() + r * k;
      for (size_t c = 0; c < k; ++c) {
        row[c] *= inv_n;
      }
    }
  }
  return static_cast<float>(loss / static_cast<double>(n));
}

float Accuracy(const Tensor& logits, std::span<const int> labels) {
  NEUROC_CHECK(logits.rank() == 2 && logits.rows() == labels.size());
  return labels.empty() ? 0.0f
                        : static_cast<float>(CountCorrect(logits, labels)) /
                              static_cast<float>(labels.size());
}

}  // namespace neuroc
