// Ternarization of latent full-precision weights, used by quantization-aware training.
//
// Following ternary-weight-network practice, a latent weight w maps to
//   +1 if w >  t,   -1 if w < -t,   0 otherwise,
// with a per-layer threshold t = factor * mean(|W|) (factor 0.7 by default). Gradients flow
// through the quantizer with the straight-through estimator, clipped to |w| <= clip so latent
// weights cannot drift arbitrarily far from the representable range.

#ifndef NEUROC_SRC_TRAIN_TERNARY_H_
#define NEUROC_SRC_TRAIN_TERNARY_H_

#include <cstdint>
#include <vector>

#include "src/tensor/tensor.h"

namespace neuroc {

struct TernaryConfig {
  float threshold_factor = 0.7f;  // t = factor * mean(|W|) (used when target_density == 0)
  float ste_clip = 1.0f;          // gradient passes only where |w| <= ste_clip
  // When > 0, the threshold is instead the (1 - target_density) quantile of |W|, keeping a
  // controlled fraction of connections. Sparsity is a first-class design parameter in the
  // paper (Fig. 1 grid search), and low densities are what yield its latency/memory wins.
  float target_density = 0.2f;
};

// Computes the ternarization threshold for the latent weights.
float TernaryThreshold(const Tensor& latent, const TernaryConfig& cfg);

// Writes sign values in {-1, 0, +1} (as float) into `out` (same shape as latent).
void Ternarize(const Tensor& latent, float threshold, Tensor& out);

// Ternarize into an int8 matrix (deployment form).
void TernarizeToInt8(const Tensor& latent, float threshold, std::vector<int8_t>& out);

// Masks `grad` in place: entries where |latent| > clip receive zero gradient (STE clip).
void ApplySteClip(const Tensor& latent, float clip, Tensor& grad);

// Number of nonzero entries after ternarization at the given threshold.
size_t CountNonZero(const Tensor& latent, float threshold);

}  // namespace neuroc

#endif  // NEUROC_SRC_TRAIN_TERNARY_H_
