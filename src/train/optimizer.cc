#include "src/train/optimizer.h"

#include <cmath>

#include "src/common/check.h"
#include "src/common/thread_pool.h"

namespace neuroc {

namespace {

// Both steppers are element-wise, so chunking over elements is bit-identical for any worker
// count. The chunk bodies live in free functions so the __restrict qualifiers reach the
// compiler (qualifiers on locals captured by a lambda do not survive into the closure);
// with them the sqrt/div chain vectorizes, and sqrtps/divps are correctly-rounded IEEE ops,
// so vectorization does not change results either. Grains count ~4 flops per SGD element
// and ~10 per Adam element (the sqrt/div chain); typical layer tensors then update in-line
// and only genuinely large ones split.

void SgdChunk(float* __restrict wp, const float* __restrict gp, float* __restrict vp,
              float learning_rate, float momentum, float weight_decay, size_t k0, size_t k1) {
  for (size_t k = k0; k < k1; ++k) {
    const float grad = gp[k] + weight_decay * wp[k];
    vp[k] = momentum * vp[k] + grad;
    wp[k] -= learning_rate * vp[k];
  }
}

void AdamChunk(float* __restrict wp, const float* __restrict gp, float* __restrict mp,
               float* __restrict vp, float learning_rate, float beta1, float beta2,
               float epsilon, float weight_decay, float bc1, float bc2, size_t k0,
               size_t k1) {
  for (size_t k = k0; k < k1; ++k) {
    const float grad = gp[k] + weight_decay * wp[k];
    mp[k] = beta1 * mp[k] + (1.0f - beta1) * grad;
    vp[k] = beta2 * vp[k] + (1.0f - beta2) * grad * grad;
    const float m_hat = mp[k] / bc1;
    const float v_hat = vp[k] / bc2;
    wp[k] -= learning_rate * m_hat / (std::sqrt(v_hat) + epsilon);
  }
}

}  // namespace

void SgdOptimizer::Step(std::span<ParamRef> params) {
  if (velocity_.size() != params.size()) {
    velocity_.clear();
    for (const ParamRef& p : params) {
      velocity_.emplace_back(p.value->shape());
    }
  }
  for (size_t i = 0; i < params.size(); ++i) {
    Tensor& w = *params[i].value;
    Tensor& g = *params[i].grad;
    NEUROC_CHECK(w.SameShape(g));
    Tensor& vel = velocity_[i];
    float* wp = w.data();
    const float* gp = g.data();
    float* vp = vel.data();
    ParallelFor(0, w.size(), GrainForOps(4), [&](size_t k0, size_t k1) {
      SgdChunk(wp, gp, vp, learning_rate_, momentum_, weight_decay_, k0, k1);
    });
  }
}

void AdamOptimizer::Step(std::span<ParamRef> params) {
  if (m_.size() != params.size()) {
    m_.clear();
    v_.clear();
    for (const ParamRef& p : params) {
      m_.emplace_back(p.value->shape());
      v_.emplace_back(p.value->shape());
    }
    t_ = 0;
  }
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params.size(); ++i) {
    Tensor& w = *params[i].value;
    Tensor& g = *params[i].grad;
    NEUROC_CHECK(w.SameShape(g));
    float* wp = w.data();
    const float* gp = g.data();
    float* mp = m_[i].data();
    float* vp = v_[i].data();
    ParallelFor(0, w.size(), GrainForOps(10), [&](size_t k0, size_t k1) {
      AdamChunk(wp, gp, mp, vp, learning_rate_, beta1_, beta2_, epsilon_, weight_decay_, bc1,
                bc2, k0, k1);
    });
  }
}

}  // namespace neuroc
