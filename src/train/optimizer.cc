#include "src/train/optimizer.h"

#include <cmath>

#include "src/common/check.h"

namespace neuroc {

void SgdOptimizer::Step(std::span<ParamRef> params) {
  if (velocity_.size() != params.size()) {
    velocity_.clear();
    for (const ParamRef& p : params) {
      velocity_.emplace_back(p.value->shape());
    }
  }
  for (size_t i = 0; i < params.size(); ++i) {
    Tensor& w = *params[i].value;
    Tensor& g = *params[i].grad;
    NEUROC_CHECK(w.SameShape(g));
    Tensor& vel = velocity_[i];
    float* wp = w.data();
    float* gp = g.data();
    float* vp = vel.data();
    for (size_t k = 0; k < w.size(); ++k) {
      float grad = gp[k] + weight_decay_ * wp[k];
      vp[k] = momentum_ * vp[k] + grad;
      wp[k] -= learning_rate_ * vp[k];
    }
  }
}

void AdamOptimizer::Step(std::span<ParamRef> params) {
  if (m_.size() != params.size()) {
    m_.clear();
    v_.clear();
    for (const ParamRef& p : params) {
      m_.emplace_back(p.value->shape());
      v_.emplace_back(p.value->shape());
    }
    t_ = 0;
  }
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params.size(); ++i) {
    Tensor& w = *params[i].value;
    Tensor& g = *params[i].grad;
    NEUROC_CHECK(w.SameShape(g));
    float* wp = w.data();
    float* gp = g.data();
    float* mp = m_[i].data();
    float* vp = v_[i].data();
    for (size_t k = 0; k < w.size(); ++k) {
      const float grad = gp[k] + weight_decay_ * wp[k];
      mp[k] = beta1_ * mp[k] + (1.0f - beta1_) * grad;
      vp[k] = beta2_ * vp[k] + (1.0f - beta2_) * grad * grad;
      const float m_hat = mp[k] / bc1;
      const float v_hat = vp[k] / bc2;
      wp[k] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
  }
}

}  // namespace neuroc
