// Gradient-based optimizers. State is kept per parameter slot, matched by position in the
// CollectParams order, which is stable for the lifetime of a network.

#ifndef NEUROC_SRC_TRAIN_OPTIMIZER_H_
#define NEUROC_SRC_TRAIN_OPTIMIZER_H_

#include <memory>
#include <span>
#include <vector>

#include "src/train/module.h"

namespace neuroc {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  // Applies one update using the gradients currently stored in `params`.
  virtual void Step(std::span<ParamRef> params) = 0;

  void set_learning_rate(float lr) { learning_rate_ = lr; }
  float learning_rate() const { return learning_rate_; }

 protected:
  explicit Optimizer(float lr) : learning_rate_(lr) {}
  float learning_rate_;
};

// Plain SGD with optional momentum and weight decay.
class SgdOptimizer : public Optimizer {
 public:
  explicit SgdOptimizer(float lr, float momentum = 0.0f, float weight_decay = 0.0f)
      : Optimizer(lr), momentum_(momentum), weight_decay_(weight_decay) {}

  void Step(std::span<ParamRef> params) override;

 private:
  float momentum_;
  float weight_decay_;
  std::vector<Tensor> velocity_;
};

// Adam (Kingma & Ba) with bias correction.
class AdamOptimizer : public Optimizer {
 public:
  explicit AdamOptimizer(float lr, float beta1 = 0.9f, float beta2 = 0.999f,
                         float epsilon = 1e-8f, float weight_decay = 0.0f)
      : Optimizer(lr), beta1_(beta1), beta2_(beta2), epsilon_(epsilon),
        weight_decay_(weight_decay) {}

  void Step(std::span<ParamRef> params) override;

 private:
  float beta1_;
  float beta2_;
  float epsilon_;
  float weight_decay_;
  int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace neuroc

#endif  // NEUROC_SRC_TRAIN_OPTIMIZER_H_
