// Standard trainable layers: dense (the MLP baseline building block), ReLU, dropout and
// 1-D batch normalization. Hand-written forward/backward passes; gradient-checked in tests.

#ifndef NEUROC_SRC_TRAIN_LAYERS_H_
#define NEUROC_SRC_TRAIN_LAYERS_H_

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/train/module.h"

namespace neuroc {

// Fully connected layer: y = x W + b, W is [in, out].
class DenseLayer : public Module {
 public:
  DenseLayer(size_t in_dim, size_t out_dim, Rng& rng);

  const Tensor& Forward(const Tensor& input, bool training) override;
  const Tensor& Backward(const Tensor& grad_output) override;
  void CollectParams(std::vector<ParamRef>& out) override;
  std::string Name() const override;
  size_t DeployedParameterCount() const override;

  size_t in_dim() const { return weights_.rows(); }
  size_t out_dim() const { return weights_.cols(); }
  const Tensor& weights() const { return weights_; }
  const Tensor& bias() const { return bias_; }

 private:
  Tensor weights_;       // [in, out]
  Tensor bias_;          // [1, out]
  Tensor grad_weights_;
  Tensor grad_bias_;
  Tensor input_cache_;
  Tensor output_;
  Tensor grad_input_;
};

// Elementwise rectified linear unit.
class ReluLayer : public Module {
 public:
  const Tensor& Forward(const Tensor& input, bool training) override;
  const Tensor& Backward(const Tensor& grad_output) override;
  std::string Name() const override { return "relu"; }

 private:
  Tensor output_;
  Tensor grad_input_;
};

// Inverted dropout: active only in training mode.
class DropoutLayer : public Module {
 public:
  DropoutLayer(float rate, Rng& rng);

  const Tensor& Forward(const Tensor& input, bool training) override;
  const Tensor& Backward(const Tensor& grad_output) override;
  std::string Name() const override;

 private:
  float rate_;
  Rng rng_;
  Tensor mask_;
  Tensor output_;
  Tensor grad_input_;
};

// Batch normalization over the feature dimension with running statistics for inference.
// Used only by MLP baseline configurations (the paper's point is that Neuro-C does not
// need it — and that TNNs that do need it cannot deploy it on an M0).
class BatchNorm1dLayer : public Module {
 public:
  explicit BatchNorm1dLayer(size_t dim, float momentum = 0.9f, float epsilon = 1e-5f);

  const Tensor& Forward(const Tensor& input, bool training) override;
  const Tensor& Backward(const Tensor& grad_output) override;
  void CollectParams(std::vector<ParamRef>& out) override;
  std::string Name() const override;
  size_t DeployedParameterCount() const override;

  // Accessors used when folding batch norm into a preceding dense layer at export time.
  const Tensor& gamma() const { return gamma_; }
  const Tensor& beta() const { return beta_; }
  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }
  float epsilon() const { return epsilon_; }

 private:
  float momentum_;
  float epsilon_;
  Tensor gamma_;         // [1, dim]
  Tensor beta_;          // [1, dim]
  Tensor grad_gamma_;
  Tensor grad_beta_;
  Tensor running_mean_;  // [1, dim]
  Tensor running_var_;   // [1, dim]
  // Caches for backward.
  Tensor x_hat_;
  Tensor batch_inv_std_;  // [1, dim]
  Tensor output_;
  Tensor grad_input_;
};

}  // namespace neuroc

#endif  // NEUROC_SRC_TRAIN_LAYERS_H_
