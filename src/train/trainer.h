// Minibatch training loop with evaluation, mirroring the paper's fake-quantization training
// stage: models train in float with ternarized forward passes, then are exported/quantized
// by src/core for deployment.

#ifndef NEUROC_SRC_TRAIN_TRAINER_H_
#define NEUROC_SRC_TRAIN_TRAINER_H_

#include <functional>
#include <vector>

#include "src/common/rng.h"
#include "src/data/dataset.h"
#include "src/train/network.h"
#include "src/train/optimizer.h"

namespace neuroc {

class MetricsLogger;  // src/obs/metrics.h

struct TrainConfig {
  int epochs = 10;
  size_t batch_size = 64;
  float learning_rate = 1e-3f;
  float lr_decay = 1.0f;        // multiplicative per-epoch decay
  float weight_decay = 0.0f;
  bool use_adam = true;
  float momentum = 0.9f;        // when use_adam == false
  uint64_t shuffle_seed = 1234;
  bool verbose = false;
  // Optional structured observability: when set, one JSONL record per epoch (loss,
  // accuracies, examples/sec, ternarization density) is appended to the stream. Trace
  // spans additionally land on TraceRecorder::Global() when tracing is enabled
  // (NEUROC_TRACE=1). Neither affects the training computation.
  MetricsLogger* metrics = nullptr;
};

struct EpochStats {
  float train_loss = 0.0f;
  float train_accuracy = 0.0f;
  float test_accuracy = 0.0f;
  double epoch_seconds = 0.0;       // wall time of the epoch's optimization loop
  double examples_per_sec = 0.0;
  float ternary_density = 0.0f;     // mean nonzero fraction over NeuroCLayers (0 if none)
};

struct TrainResult {
  std::vector<EpochStats> history;
  float final_test_accuracy = 0.0f;
  float best_test_accuracy = 0.0f;
};

// Fills `batch_x` / `batch_y` with the examples at `indices`.
void GatherBatch(const Dataset& ds, std::span<const size_t> indices, Tensor& batch_x,
                 std::vector<int>& batch_y);

// Evaluates classification accuracy of `net` on `ds` (inference mode).
float EvaluateAccuracy(Network& net, const Dataset& ds, size_t batch_size = 256);

// Trains `net` on `train` and reports per-epoch accuracy on `test`.
TrainResult Train(Network& net, const Dataset& train, const Dataset& test,
                  const TrainConfig& cfg);

}  // namespace neuroc

#endif  // NEUROC_SRC_TRAIN_TRAINER_H_
