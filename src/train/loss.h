// Softmax cross-entropy loss with fused gradient.

#ifndef NEUROC_SRC_TRAIN_LOSS_H_
#define NEUROC_SRC_TRAIN_LOSS_H_

#include <span>
#include <vector>

#include "src/tensor/tensor.h"

namespace neuroc {

// Computes mean softmax cross-entropy over the batch and (optionally) the gradient with
// respect to the logits. `labels` holds one class index per row of `logits`.
// Returns the mean loss; writes dLoss/dLogits into `grad` when grad != nullptr.
float SoftmaxCrossEntropy(const Tensor& logits, std::span<const int> labels, Tensor* grad);

// Fraction of rows whose arg-max logit equals the label.
float Accuracy(const Tensor& logits, std::span<const int> labels);

}  // namespace neuroc

#endif  // NEUROC_SRC_TRAIN_LOSS_H_
