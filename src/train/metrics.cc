#include "src/train/metrics.h"

#include <atomic>
#include <cstdio>

#include "src/common/check.h"
#include "src/common/thread_pool.h"
#include "src/tensor/matrix_ops.h"

namespace neuroc {

size_t CountCorrect(const Tensor& logits, std::span<const int> labels) {
  NEUROC_CHECK(logits.rank() == 2 && logits.rows() == labels.size());
  std::atomic<size_t> correct{0};
  ParallelFor(0, logits.rows(), /*grain=*/64, [&](size_t r0, size_t r1) {
    size_t local = 0;
    for (size_t r = r0; r < r1; ++r) {
      if (ArgMax(logits.row(r)) == static_cast<size_t>(labels[r])) {
        ++local;
      }
    }
    correct.fetch_add(local, std::memory_order_relaxed);
  });
  return correct.load(std::memory_order_relaxed);
}

ConfusionMatrix::ConfusionMatrix(int num_classes)
    : num_classes_(num_classes),
      counts_(static_cast<size_t>(num_classes) * static_cast<size_t>(num_classes), 0) {
  NEUROC_CHECK(num_classes > 0);
}

void ConfusionMatrix::Add(int true_class, int predicted_class) {
  NEUROC_CHECK(true_class >= 0 && true_class < num_classes_);
  NEUROC_CHECK(predicted_class >= 0 && predicted_class < num_classes_);
  ++counts_[static_cast<size_t>(true_class) * num_classes_ + predicted_class];
  ++total_;
}

void ConfusionMatrix::Merge(const ConfusionMatrix& other) {
  NEUROC_CHECK(other.num_classes_ == num_classes_);
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

uint64_t ConfusionMatrix::count(int true_class, int predicted_class) const {
  NEUROC_CHECK(true_class >= 0 && true_class < num_classes_);
  NEUROC_CHECK(predicted_class >= 0 && predicted_class < num_classes_);
  return counts_[static_cast<size_t>(true_class) * num_classes_ + predicted_class];
}

double ConfusionMatrix::Accuracy() const {
  if (total_ == 0) {
    return 0.0;
  }
  uint64_t diag = 0;
  for (int c = 0; c < num_classes_; ++c) {
    diag += count(c, c);
  }
  return static_cast<double>(diag) / static_cast<double>(total_);
}

double ConfusionMatrix::Precision(int cls) const {
  uint64_t predicted = 0;
  for (int t = 0; t < num_classes_; ++t) {
    predicted += count(t, cls);
  }
  return predicted == 0 ? 0.0
                        : static_cast<double>(count(cls, cls)) /
                              static_cast<double>(predicted);
}

double ConfusionMatrix::Recall(int cls) const {
  uint64_t actual = 0;
  for (int p = 0; p < num_classes_; ++p) {
    actual += count(cls, p);
  }
  return actual == 0 ? 0.0
                     : static_cast<double>(count(cls, cls)) / static_cast<double>(actual);
}

double ConfusionMatrix::F1(int cls) const {
  const double p = Precision(cls);
  const double r = Recall(cls);
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double ConfusionMatrix::MacroF1() const {
  double sum = 0.0;
  for (int c = 0; c < num_classes_; ++c) {
    sum += F1(c);
  }
  return sum / num_classes_;
}

std::string ConfusionMatrix::Format(const std::vector<std::string>& class_names) const {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-12s %9s %9s %9s\n", "class", "precision", "recall",
                "f1");
  out += buf;
  for (int c = 0; c < num_classes_; ++c) {
    const std::string name = c < static_cast<int>(class_names.size())
                                 ? class_names[static_cast<size_t>(c)]
                                 : "class " + std::to_string(c);
    std::snprintf(buf, sizeof(buf), "%-12s %9.4f %9.4f %9.4f\n", name.c_str(), Precision(c),
                  Recall(c), F1(c));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "accuracy %.4f | macro-F1 %.4f | n=%llu\n", Accuracy(),
                MacroF1(), static_cast<unsigned long long>(total_));
  out += buf;
  return out;
}

}  // namespace neuroc
