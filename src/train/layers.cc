#include "src/train/layers.h"

#include <cmath>

#include "src/common/check.h"
#include "src/common/thread_pool.h"
#include "src/tensor/matrix_ops.h"

namespace neuroc {

// ---------------------------------------------------------------------------
// DenseLayer
// ---------------------------------------------------------------------------

DenseLayer::DenseLayer(size_t in_dim, size_t out_dim, Rng& rng)
    : weights_({in_dim, out_dim}),
      bias_({size_t{1}, out_dim}),
      grad_weights_({in_dim, out_dim}),
      grad_bias_({size_t{1}, out_dim}) {
  // He initialization, appropriate for the ReLU networks used throughout.
  const float stddev = std::sqrt(2.0f / static_cast<float>(in_dim));
  for (float& w : weights_.flat()) {
    w = rng.NextGaussian(0.0f, stddev);
  }
}

const Tensor& DenseLayer::Forward(const Tensor& input, bool training) {
  (void)training;
  NEUROC_CHECK(input.rank() == 2 && input.cols() == weights_.rows());
  input_cache_ = input;
  MatMul(input, weights_, output_);
  AddRowBias(output_, bias_.flat());
  return output_;
}

const Tensor& DenseLayer::Backward(const Tensor& grad_output) {
  NEUROC_CHECK(grad_output.SameShape(output_));
  MatMulTransposeA(input_cache_, grad_output, grad_weights_);
  ColumnSums(grad_output, grad_bias_.flat());
  MatMulTransposeB(grad_output, weights_, grad_input_);
  return grad_input_;
}

void DenseLayer::CollectParams(std::vector<ParamRef>& out) {
  out.push_back({&weights_, &grad_weights_, Name() + ".W"});
  out.push_back({&bias_, &grad_bias_, Name() + ".b"});
}

std::string DenseLayer::Name() const {
  return "dense[" + std::to_string(in_dim()) + "x" + std::to_string(out_dim()) + "]";
}

size_t DenseLayer::DeployedParameterCount() const {
  return weights_.size() + bias_.size();
}

// ---------------------------------------------------------------------------
// ReluLayer
// ---------------------------------------------------------------------------

namespace {

// Free functions so the __restrict qualifiers survive (they would be lost through a lambda
// capture) and the compiler emits branch-free vector code.
void ReluChunk(const float* __restrict src, float* __restrict dst, size_t i0, size_t i1) {
  for (size_t i = i0; i < i1; ++i) {
    dst[i] = src[i] < 0.0f ? 0.0f : src[i];
  }
}

void ReluGradChunk(const float* __restrict y, const float* __restrict go, float* __restrict g,
                   size_t i0, size_t i1) {
  for (size_t i = i0; i < i1; ++i) {
    g[i] = y[i] <= 0.0f ? 0.0f : go[i];
  }
}

}  // namespace

const Tensor& ReluLayer::Forward(const Tensor& input, bool training) {
  (void)training;
  if (!output_.SameShape(input)) {
    output_ = Tensor(input.shape());
  }
  // Single fused pass (no copy-then-clamp); ReluChunk keeps the exact semantics of the
  // original in-place loop (negative zero passes through untouched).
  const float* src = input.data();
  float* dst = output_.data();
  ParallelFor(0, input.size(), 8192,
              [&](size_t i0, size_t i1) { ReluChunk(src, dst, i0, i1); });
  return output_;
}

const Tensor& ReluLayer::Backward(const Tensor& grad_output) {
  NEUROC_CHECK(grad_output.SameShape(output_));
  if (!grad_input_.SameShape(grad_output)) {
    grad_input_ = Tensor(grad_output.shape());
  }
  const float* y = output_.data();
  const float* go = grad_output.data();
  float* g = grad_input_.data();
  ParallelFor(0, output_.size(), 8192,
              [&](size_t i0, size_t i1) { ReluGradChunk(y, go, g, i0, i1); });
  return grad_input_;
}

// ---------------------------------------------------------------------------
// DropoutLayer
// ---------------------------------------------------------------------------

DropoutLayer::DropoutLayer(float rate, Rng& rng) : rate_(rate), rng_(rng.Fork()) {
  NEUROC_CHECK(rate >= 0.0f && rate < 1.0f);
}

const Tensor& DropoutLayer::Forward(const Tensor& input, bool training) {
  output_ = input;
  if (!training || rate_ == 0.0f) {
    // Identity at inference; mask of ones so Backward stays consistent.
    mask_ = Tensor(input.shape());
    mask_.Fill(1.0f);
    return output_;
  }
  mask_ = Tensor(input.shape());
  const float keep = 1.0f - rate_;
  const float scale = 1.0f / keep;
  float* m = mask_.data();
  float* y = output_.data();
  for (size_t i = 0; i < output_.size(); ++i) {
    m[i] = rng_.NextBool(keep) ? scale : 0.0f;
    y[i] *= m[i];
  }
  return output_;
}

const Tensor& DropoutLayer::Backward(const Tensor& grad_output) {
  NEUROC_CHECK(grad_output.SameShape(mask_));
  grad_input_ = grad_output;
  const float* m = mask_.data();
  float* g = grad_input_.data();
  for (size_t i = 0; i < grad_input_.size(); ++i) {
    g[i] *= m[i];
  }
  return grad_input_;
}

std::string DropoutLayer::Name() const {
  return "dropout[" + std::to_string(rate_) + "]";
}

// ---------------------------------------------------------------------------
// BatchNorm1dLayer
// ---------------------------------------------------------------------------

BatchNorm1dLayer::BatchNorm1dLayer(size_t dim, float momentum, float epsilon)
    : momentum_(momentum),
      epsilon_(epsilon),
      gamma_({size_t{1}, dim}),
      beta_({size_t{1}, dim}),
      grad_gamma_({size_t{1}, dim}),
      grad_beta_({size_t{1}, dim}),
      running_mean_({size_t{1}, dim}),
      running_var_({size_t{1}, dim}) {
  gamma_.Fill(1.0f);
  running_var_.Fill(1.0f);
}

const Tensor& BatchNorm1dLayer::Forward(const Tensor& input, bool training) {
  NEUROC_CHECK(input.rank() == 2 && input.cols() == gamma_.cols());
  const size_t n = input.rows();
  const size_t d = input.cols();
  output_ = input;
  x_hat_ = Tensor({n, d});
  batch_inv_std_ = Tensor({size_t{1}, d});
  for (size_t c = 0; c < d; ++c) {
    float mean, var;
    if (training) {
      double m = 0.0;
      for (size_t r = 0; r < n; ++r) {
        m += input.at(r, c);
      }
      mean = static_cast<float>(m / static_cast<double>(n));
      double v = 0.0;
      for (size_t r = 0; r < n; ++r) {
        const double dlt = input.at(r, c) - mean;
        v += dlt * dlt;
      }
      var = static_cast<float>(v / static_cast<double>(n));
      running_mean_[c] = momentum_ * running_mean_[c] + (1.0f - momentum_) * mean;
      running_var_[c] = momentum_ * running_var_[c] + (1.0f - momentum_) * var;
    } else {
      mean = running_mean_[c];
      var = running_var_[c];
    }
    const float inv_std = 1.0f / std::sqrt(var + epsilon_);
    batch_inv_std_[c] = inv_std;
    for (size_t r = 0; r < n; ++r) {
      const float xh = (input.at(r, c) - mean) * inv_std;
      x_hat_.at(r, c) = xh;
      output_.at(r, c) = gamma_[c] * xh + beta_[c];
    }
  }
  return output_;
}

const Tensor& BatchNorm1dLayer::Backward(const Tensor& grad_output) {
  NEUROC_CHECK(grad_output.SameShape(output_));
  const size_t n = grad_output.rows();
  const size_t d = grad_output.cols();
  grad_input_ = Tensor({n, d});
  for (size_t c = 0; c < d; ++c) {
    // Standard batch-norm backward over the training-batch statistics.
    double sum_g = 0.0, sum_gx = 0.0;
    for (size_t r = 0; r < n; ++r) {
      sum_g += grad_output.at(r, c);
      sum_gx += grad_output.at(r, c) * x_hat_.at(r, c);
    }
    // Backward overwrites gradients (one backward pass per optimizer step).
    grad_beta_[c] = static_cast<float>(sum_g);
    grad_gamma_[c] = static_cast<float>(sum_gx);
    const float inv_std = batch_inv_std_[c];
    const float gamma = gamma_[c];
    const float inv_n = 1.0f / static_cast<float>(n);
    for (size_t r = 0; r < n; ++r) {
      const float g = grad_output.at(r, c);
      grad_input_.at(r, c) =
          gamma * inv_std *
          (g - static_cast<float>(sum_g) * inv_n -
           x_hat_.at(r, c) * static_cast<float>(sum_gx) * inv_n);
    }
  }
  return grad_input_;
}

void BatchNorm1dLayer::CollectParams(std::vector<ParamRef>& out) {
  out.push_back({&gamma_, &grad_gamma_, Name() + ".gamma"});
  out.push_back({&beta_, &grad_beta_, Name() + ".beta"});
}

std::string BatchNorm1dLayer::Name() const {
  return "batchnorm[" + std::to_string(gamma_.cols()) + "]";
}

size_t BatchNorm1dLayer::DeployedParameterCount() const {
  // Deployed batch norm needs gamma, beta, mean and variance per feature — the paper's
  // argument for why BN-dependent TNNs are unsuitable for M0 deployment.
  return 4 * gamma_.cols();
}

}  // namespace neuroc
