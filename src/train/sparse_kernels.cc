#include "src/train/sparse_kernels.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/thread_pool.h"

namespace neuroc {

namespace {

void EnsureShape(Tensor& t, size_t rows, size_t cols) {
  if (t.rank() != 2 || t.rows() != rows || t.cols() != cols) {
    t = Tensor({rows, cols});
  }
}

// Batch rows processed together per column walk, so one pass over the index/sign stream
// feeds several rows (the stream is the memory-bound part at low density).
constexpr size_t kRowBlock = 8;

// Fills `m` in place; all buffers are assign()/resize()d so repeated rebuilds into the same
// object reuse capacity instead of reallocating.
template <typename Classify>
void BuildInto(SparseTernaryMatrix& m, size_t rows, size_t cols, const float* data,
               Classify classify) {
  m.rows = rows;
  m.cols = cols;
  m.pos_ptr.assign(cols + 1, 0);
  m.neg_ptr.assign(cols + 1, 0);
  m.ptr.assign(cols + 1, 0);
  // The counting pass memoizes each entry's class so the fill pass reads one byte per
  // element instead of re-reading and re-classifying the float data.
  thread_local std::vector<int8_t> cls;
  cls.resize(rows * cols);
  for (size_t i = 0; i < rows; ++i) {
    const float* row = data + i * cols;
    int8_t* crow = cls.data() + i * cols;
    for (size_t j = 0; j < cols; ++j) {
      const int s = classify(row[j]);
      crow[j] = static_cast<int8_t>(s);
      if (s > 0) {
        ++m.pos_ptr[j + 1];
      } else if (s < 0) {
        ++m.neg_ptr[j + 1];
      }
    }
  }
  for (size_t j = 0; j < cols; ++j) {
    m.pos_ptr[j + 1] += m.pos_ptr[j];
    m.neg_ptr[j + 1] += m.neg_ptr[j];
    m.ptr[j + 1] = m.pos_ptr[j + 1] + m.neg_ptr[j + 1];
  }
  const size_t nnz = m.ptr[cols];
  m.pos_idx.resize(m.pos_ptr[cols]);
  m.neg_idx.resize(m.neg_ptr[cols]);
  m.idx.resize(nnz);
  m.sign.resize(nnz);
  m.row_ptr.assign(rows + 1, 0);
  m.row_idx.resize(nnz);
  m.row_sign.resize(nnz);
  thread_local std::vector<uint32_t> pos_cur, neg_cur, all_cur;
  pos_cur.assign(m.pos_ptr.begin(), m.pos_ptr.end() - 1);
  neg_cur.assign(m.neg_ptr.begin(), m.neg_ptr.end() - 1);
  all_cur.assign(m.ptr.begin(), m.ptr.end() - 1);
  // Row-major scan pushes ascending row indices into every column list; the same scan emits
  // the row-major view contiguously (ascending columns within each row), so a single running
  // cursor fills it.
  size_t row_cursor = 0;
  for (size_t i = 0; i < rows; ++i) {
    const int8_t* crow = cls.data() + i * cols;
    for (size_t j = 0; j < cols; ++j) {
      const int s = crow[j];
      if (s == 0) {
        continue;
      }
      if (s > 0) {
        m.pos_idx[pos_cur[j]++] = static_cast<uint32_t>(i);
      } else {
        m.neg_idx[neg_cur[j]++] = static_cast<uint32_t>(i);
      }
      m.idx[all_cur[j]] = static_cast<uint32_t>(i);
      m.sign[all_cur[j]] = s > 0 ? 1.0f : -1.0f;
      ++all_cur[j];
      m.row_idx[row_cursor] = static_cast<uint32_t>(j);
      m.row_sign[row_cursor] = s > 0 ? 1.0f : -1.0f;
      ++row_cursor;
    }
    m.row_ptr[i + 1] = static_cast<uint32_t>(row_cursor);
  }
}

}  // namespace

SparseTernaryMatrix SparseTernaryMatrix::FromLatent(const Tensor& latent, float threshold) {
  SparseTernaryMatrix m;
  m.AssignFromLatent(latent, threshold);
  return m;
}

void SparseTernaryMatrix::AssignFromLatent(const Tensor& latent, float threshold) {
  NEUROC_CHECK(latent.rank() == 2);
  BuildInto(*this, latent.rows(), latent.cols(), latent.data(), [threshold](float w) {
    return w > threshold ? 1 : (w < -threshold ? -1 : 0);
  });
}

SparseTernaryMatrix SparseTernaryMatrix::FromDense(const Tensor& adjacency) {
  NEUROC_CHECK(adjacency.rank() == 2);
  SparseTernaryMatrix m;
  BuildInto(m, adjacency.rows(), adjacency.cols(), adjacency.data(), [](float a) {
    NEUROC_DCHECK(a == 0.0f || a == 1.0f || a == -1.0f);
    return a > 0.0f ? 1 : (a < 0.0f ? -1 : 0);
  });
  return m;
}

void SparseTernaryMatrix::ToDense(Tensor& out) const {
  EnsureShape(out, rows, cols);
  out.Fill(0.0f);
  for (size_t j = 0; j < cols; ++j) {
    for (uint32_t k = ptr[j]; k < ptr[j + 1]; ++k) {
      out.at(idx[k], j) = sign[k];
    }
  }
}

void SparseForward(const Tensor& x, const SparseTernaryMatrix& a, Tensor& out) {
  NEUROC_CHECK(x.rank() == 2 && x.cols() == a.rows);
  const size_t n = x.rows();
  const size_t in = a.rows;
  const size_t cols = a.cols;
  EnsureShape(out, n, cols);
  const float* xd = x.data();
  float* od = out.data();
  ParallelFor(0, n, GrainForOps(a.idx.size()), [&](size_t rb0, size_t rb1) {
    for (size_t rb = rb0; rb < rb1; rb += kRowBlock) {
      const size_t nb = std::min(kRowBlock, rb1 - rb);
      for (size_t j = 0; j < cols; ++j) {
        float acc[kRowBlock] = {0.0f};
        for (uint32_t k = a.ptr[j]; k < a.ptr[j + 1]; ++k) {
          const size_t i = a.idx[k];
          const float s = a.sign[k];
          for (size_t t = 0; t < nb; ++t) {
            acc[t] += s * xd[(rb + t) * in + i];
          }
        }
        for (size_t t = 0; t < nb; ++t) {
          od[(rb + t) * cols + j] = acc[t];
        }
      }
    }
  });
}

void SparseGradInput(const Tensor& gz, const SparseTernaryMatrix& a, Tensor& out) {
  NEUROC_CHECK(gz.rank() == 2 && gz.cols() == a.cols);
  const size_t n = gz.rows();
  const size_t in = a.rows;
  const size_t cols = a.cols;
  EnsureShape(out, n, in);
  const float* gd = gz.data();
  float* od = out.data();
  ParallelFor(0, n, GrainForOps(a.row_idx.size()), [&](size_t rb0, size_t rb1) {
    for (size_t rb = rb0; rb < rb1; rb += kRowBlock) {
      const size_t nb = std::min(kRowBlock, rb1 - rb);
      // Gather along the row-major view: out[r, i] accumulates its contributions in
      // ascending j, the order the dense transpose-B reference reduces in.
      for (size_t i = 0; i < in; ++i) {
        float acc[kRowBlock] = {0.0f};
        for (uint32_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
          const size_t j = a.row_idx[k];
          const float s = a.row_sign[k];
          for (size_t t = 0; t < nb; ++t) {
            acc[t] += s * gd[(rb + t) * cols + j];
          }
        }
        for (size_t t = 0; t < nb; ++t) {
          od[(rb + t) * in + i] = acc[t];
        }
      }
    }
  });
}

void SparseGradLatent(const Tensor& x, const Tensor& gz, Tensor& out) {
  NEUROC_CHECK(x.rank() == 2 && gz.rank() == 2);
  NEUROC_CHECK(x.rows() == gz.rows());
  const size_t n = x.rows();
  const size_t in = x.cols();
  const size_t cols = gz.cols();
  EnsureShape(out, in, cols);
  const float* xd = x.data();
  const float* gd = gz.data();
  float* od = out.data();
  ParallelFor(0, in, GrainForOps(n * cols), [&](size_t ib0, size_t ib1) {
    for (size_t ib = ib0; ib < ib1; ib += kRowBlock) {
      const size_t nb = std::min(kRowBlock, ib1 - ib);
      std::fill(od + ib * cols, od + (ib + nb) * cols, 0.0f);
      // Batch rows are consumed in pairs so each output row is loaded/stored once per two
      // contributions. The accumulator keeps two separate dependent adds (t += v0*g0;
      // t += v1*g1), which is the exact sequential reduction order of the dense reference —
      // only the redundant memory traffic is fused, not the arithmetic.
      for (size_t r = 0; r + 1 < n; r += 2) {
        const float* __restrict g0 = gd + r * cols;
        const float* __restrict g1 = gd + (r + 1) * cols;
        const float* x0 = xd + r * in + ib;
        const float* x1 = xd + (r + 1) * in + ib;
        for (size_t t = 0; t < nb; ++t) {
          const float v0 = x0[t];
          const float v1 = x1[t];
          float* __restrict orow = od + (ib + t) * cols;
          if (v0 != 0.0f && v1 != 0.0f) {
            for (size_t j = 0; j < cols; ++j) {
              float acc = orow[j];
              acc += v0 * g0[j];
              acc += v1 * g1[j];
              orow[j] = acc;
            }
          } else if (v0 != 0.0f) {
            for (size_t j = 0; j < cols; ++j) {
              orow[j] += v0 * g0[j];
            }
          } else if (v1 != 0.0f) {
            for (size_t j = 0; j < cols; ++j) {
              orow[j] += v1 * g1[j];
            }
          }
          // both zero: ReLU/pixel zeros — the data-side sparsity
        }
      }
      if (n % 2 != 0) {
        const size_t r = n - 1;
        const float* __restrict grow = gd + r * cols;
        const float* xrow = xd + r * in + ib;
        for (size_t t = 0; t < nb; ++t) {
          const float v = xrow[t];
          if (v == 0.0f) {
            continue;
          }
          float* __restrict orow = od + (ib + t) * cols;
          for (size_t j = 0; j < cols; ++j) {
            orow[j] += v * grow[j];
          }
        }
      }
    }
  });
}

}  // namespace neuroc
