// Sequential container of modules plus builders for the architectures used in the paper's
// evaluation (MLP baselines, Neuro-C stacks, TNN ablations).

#ifndef NEUROC_SRC_TRAIN_NETWORK_H_
#define NEUROC_SRC_TRAIN_NETWORK_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/train/module.h"
#include "src/train/neuroc_layer.h"

namespace neuroc {

class Network {
 public:
  Network() = default;
  Network(Network&&) = default;
  Network& operator=(Network&&) = default;

  template <typename ModuleT, typename... Args>
  ModuleT* Add(Args&&... args) {
    auto mod = std::make_unique<ModuleT>(std::forward<Args>(args)...);
    ModuleT* raw = mod.get();
    modules_.push_back(std::move(mod));
    return raw;
  }

  const Tensor& Forward(const Tensor& input, bool training);
  void Backward(const Tensor& grad_loss);

  std::vector<ParamRef> Params();
  const std::vector<std::unique_ptr<Module>>& modules() const { return modules_; }

  // Deployed parameter count summed over layers (paper's model-size axis).
  size_t DeployedParameterCount() const;
  std::string Summary() const;

 private:
  std::vector<std::unique_ptr<Module>> modules_;
};

// ---------------------------------------------------------------------------
// Architecture builders
// ---------------------------------------------------------------------------

struct MlpSpec {
  std::vector<size_t> hidden;  // hidden layer widths
  float dropout = 0.0f;        // applied after each hidden ReLU when > 0
  bool batch_norm = false;     // BN after each hidden dense
};

// Standard MLP baseline: [dense → (bn) → relu → (dropout)]* → dense.
Network BuildMlp(size_t in_dim, size_t num_classes, const MlpSpec& spec, Rng& rng);

struct NeuroCSpec {
  std::vector<size_t> hidden;
  NeuroCLayerConfig layer;  // applies to every Neuro-C layer (incl. the output layer)
};

// Neuro-C network: [neuroc → relu]* → neuroc. Setting layer.use_per_neuron_scale = false
// yields the conventional-TNN ablation.
Network BuildNeuroC(size_t in_dim, size_t num_classes, const NeuroCSpec& spec, Rng& rng);

// Fig. 1 network: one fixed-adjacency hidden layer (+ relu) and a dense readout.
Network BuildFixedAdjacency(size_t in_dim, size_t num_classes, size_t hidden,
                            const FixedAdjacencyConfig& cfg, Rng& rng);

}  // namespace neuroc

#endif  // NEUROC_SRC_TRAIN_NETWORK_H_
