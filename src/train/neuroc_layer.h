// Trainable Neuro-C layers.
//
// NeuroCLayer implements the paper's Eq. (1)/(2): o = f(diag(w) A x + b) where the adjacency
// A ∈ {-1,0,+1}^{in×out} is obtained by quantization-aware training (latent full-precision
// weights ternarized once per optimizer step — the cache is invalidated by Backward and
// rebuilt lazily, so eval-mode forwards between steps reuse it — with straight-through
// gradients), `w` is the per-neuron scale that replaces batch normalization, and `b` the
// per-neuron bias. The hot path runs on the sparse signed-index kernels of
// sparse_kernels.h; `use_sparse_kernels = false` restores the legacy dense-MatMul trainer.
// Disabling the scale (`use_per_neuron_scale = false`) yields the conventional-TNN ablation
// of the paper's Sec. 5.2 / Fig. 8.
//
// FixedAdjacencyLayer freezes A at construction using one of the paper's Fig. 1 strategies
// (random, constrained-random, spatial locality) and trains only scale and bias.

#ifndef NEUROC_SRC_TRAIN_NEUROC_LAYER_H_
#define NEUROC_SRC_TRAIN_NEUROC_LAYER_H_

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/train/module.h"
#include "src/train/sparse_kernels.h"
#include "src/train/ternary.h"

namespace neuroc {

struct NeuroCLayerConfig {
  TernaryConfig ternary;
  bool use_per_neuron_scale = true;
  float latent_init_stddev_scale = 1.0f;  // multiplies the Glorot stddev
  // Route Forward/Backward through the sparse signed-index kernels (bit-identical to the
  // dense path; see sparse_kernels.h). false reproduces the legacy dense-MatMul trainer —
  // including its re-ternarization on every forward — and exists as the benchmark baseline
  // and as a debugging reference.
  bool use_sparse_kernels = true;
};

class NeuroCLayer : public Module {
 public:
  NeuroCLayer(size_t in_dim, size_t out_dim, Rng& rng, NeuroCLayerConfig cfg = {});

  const Tensor& Forward(const Tensor& input, bool training) override;
  const Tensor& Backward(const Tensor& grad_output) override;
  void CollectParams(std::vector<ParamRef>& out) override;
  std::string Name() const override;
  size_t DeployedParameterCount() const override;

  size_t in_dim() const { return latent_.rows(); }
  size_t out_dim() const { return latent_.cols(); }
  const NeuroCLayerConfig& config() const { return cfg_; }

  // Current ternarized adjacency (values in {-1,0,+1} as float, shape [in, out]).
  // Served from the ternarization cache; recomputed on demand when stale.
  const Tensor& Adjacency();
  // Deployment threshold for the current latent weights (cached with the ternarization).
  float CurrentThreshold() const;
  const Tensor& latent() const { return latent_; }
  const Tensor& scale() const { return scale_; }
  const Tensor& bias() const { return bias_; }
  // Number of nonzero adjacency entries at the current threshold (cached).
  size_t NonZeroCount() const;
  // Sparse signed-index view of the current adjacency (cached alongside the threshold).
  const SparseTernaryMatrix& SparseAdjacency() const;

  // Marks the ternarization cache stale. Backward calls this automatically (the optimizer
  // steps the latent weights right after); call it manually only after mutating latent()
  // through CollectParams outside a normal Backward/Step cycle.
  void InvalidateTernaryCache() { ternary_valid_ = dense_valid_ = sparse_valid_ = false; }

 private:
  // Rebuilds threshold + sparse view if stale. Const because metric accessors
  // (NonZeroCount, DeployedParameterCount) are const; the cache fields are mutable.
  void EnsureTernarized() const;

  NeuroCLayerConfig cfg_;
  Tensor latent_;      // [in, out] full-precision latent weights
  Tensor scale_;       // [1, out] per-neuron scale w_j
  Tensor bias_;        // [1, out]
  Tensor grad_latent_;
  Tensor grad_scale_;
  Tensor grad_bias_;
  Tensor input_cache_;  // filled only by training-mode forwards (Backward consumes it)
  Tensor presum_;      // z = x A, cached for the scale gradient
  Tensor output_;
  Tensor grad_input_;
  Tensor gz_;          // scratch: grad_output * scale, reused across steps
  // Ternarization cache: rebuilt once per optimizer step instead of once per
  // Forward/Backward/Adjacency call. Invalidated by Backward (a Step follows) and by
  // InvalidateTernaryCache. The sparse-kernel mode keeps the sparse view as the primary
  // form and densifies on demand; the legacy mode ternarizes straight to dense (the seed
  // trainer's exact behaviour) and builds the sparse view only if asked for it.
  mutable SparseTernaryMatrix sparse_;
  mutable Tensor adjacency_;
  mutable float threshold_ = 0.0f;
  mutable bool ternary_valid_ = false;
  mutable bool dense_valid_ = false;
  mutable bool sparse_valid_ = false;
};

// Connectivity strategies evaluated in paper Fig. 1.
enum class AdjacencyStrategy {
  kRandom,             // each connection present independently with probability `density`
  kConstrainedRandom,  // exactly `fan_in` random connections per output neuron
  kSpatialLocal,       // connections limited to a local window around a per-neuron center
};

struct FixedAdjacencyConfig {
  AdjacencyStrategy strategy = AdjacencyStrategy::kRandom;
  double density = 0.1;   // kRandom: connection probability
  size_t fan_in = 16;     // kConstrainedRandom: connections per output neuron
  int image_width = 0;    // kSpatialLocal: input raster geometry (0 = treat input as 1-D)
  int window_radius = 2;  // kSpatialLocal: half-size of the receptive window
};

class FixedAdjacencyLayer : public Module {
 public:
  FixedAdjacencyLayer(size_t in_dim, size_t out_dim, Rng& rng, FixedAdjacencyConfig cfg);

  const Tensor& Forward(const Tensor& input, bool training) override;
  const Tensor& Backward(const Tensor& grad_output) override;
  void CollectParams(std::vector<ParamRef>& out) override;
  std::string Name() const override;
  size_t DeployedParameterCount() const override;

  const Tensor& adjacency() const { return adjacency_; }
  size_t NonZeroCount() const;

 private:
  FixedAdjacencyConfig cfg_;
  Tensor adjacency_;  // fixed ternary [in, out]
  Tensor scale_;      // [1, out]
  Tensor bias_;       // [1, out]
  Tensor grad_scale_;
  Tensor grad_bias_;
  Tensor presum_;
  Tensor output_;
  Tensor grad_input_;
};

}  // namespace neuroc

#endif  // NEUROC_SRC_TRAIN_NEUROC_LAYER_H_
