// Sparse ternary kernels for the host-side training hot path.
//
// The deployment encodings (src/core/csc_encoding.*) exploit that the ternary adjacency
// A ∈ {-1,0,+1} is sparse: per output neuron they store a +1 index list and a -1 index list
// and accumulate z_j = Σ x[p+] − Σ x[p−] without multiplies. The trainer historically
// materialized A as a dense float tensor and ran a generic MatMul over it, multiplying by
// zeros for the 70–90% empty entries. SparseTernaryMatrix is the same signed column-index
// (CSC) view for the host: it is rebuilt once per optimizer step by NeuroCLayer and drives
// the forward and input-gradient kernels below.
//
// Bit-exactness contract: every kernel accumulates each output element in exactly the order
// the dense reference in src/tensor/matrix_ops.* uses (ascending reduction index, zeros
// skipped — skipping a ±0.0 contribution cannot change a float accumulator). The sparse and
// dense training paths therefore produce bit-identical results, and so does any worker count,
// because ParallelFor chunks only partition independent output elements. The parity tests in
// tests/sparse_kernels_test.cc assert this with EXPECT_EQ on the raw floats.

#ifndef NEUROC_SRC_TRAIN_SPARSE_KERNELS_H_
#define NEUROC_SRC_TRAIN_SPARSE_KERNELS_H_

#include <cstdint>
#include <vector>

#include "src/tensor/tensor.h"

namespace neuroc {

// Column-compressed view of a ternary [rows=in, cols=out] matrix. Three redundant forms are
// kept, all built in the same two passes:
//   - per-polarity index lists (pos/neg) — the deployment CSC view, used to materialize the
//     dense adjacency and by structure-inspection code;
//   - a merged signed traversal (index + sign per nonzero) — used by the forward kernel,
//     because bit-parity with the dense reference requires accumulating +1 and -1 entries
//     interleaved in ascending index order, not Σpos first and Σneg second;
//   - the row-major transpose of the merged traversal (row_*) — used by the input-gradient
//     kernel, whose reduction runs along matrix rows; a row view turns it into a sequential
//     gather instead of a zero-then-scatter over the output.
struct SparseTernaryMatrix {
  size_t rows = 0;  // input dimension
  size_t cols = 0;  // output neurons

  // Polarity CSC view: column j's +1 rows are pos_idx[pos_ptr[j] .. pos_ptr[j+1]).
  std::vector<uint32_t> pos_ptr;  // [cols + 1]
  std::vector<uint32_t> pos_idx;
  std::vector<uint32_t> neg_ptr;  // [cols + 1]
  std::vector<uint32_t> neg_idx;

  // Merged traversal: column j's nonzeros are idx/sign[ptr[j] .. ptr[j+1]), ascending by
  // index, sign ∈ {+1.0f, -1.0f}.
  std::vector<uint32_t> ptr;  // [cols + 1]
  std::vector<uint32_t> idx;
  std::vector<float> sign;

  // Row-major merged traversal: row i's nonzeros are row_idx/row_sign[row_ptr[i] ..
  // row_ptr[i+1]), ascending by column — the reduction order of the dense transpose-B
  // reference the input-gradient kernel must bit-match.
  std::vector<uint32_t> row_ptr;  // [rows + 1]
  std::vector<uint32_t> row_idx;
  std::vector<float> row_sign;

  size_t NonZeroCount() const { return idx.size(); }
  bool empty() const { return cols == 0; }
  double Density() const {
    const size_t total = rows * cols;
    return total == 0 ? 0.0 : static_cast<double>(idx.size()) / static_cast<double>(total);
  }

  // Builds the view by thresholding latent weights: > t → +1, < -t → -1, else 0.
  // Equivalent to Ternarize(latent, t, dense) followed by FromDense(dense).
  static SparseTernaryMatrix FromLatent(const Tensor& latent, float threshold);

  // In-place FromLatent: rebuilds this view reusing existing buffer capacity. The trainer
  // calls this once per optimizer step, and after warm-up it allocates nothing.
  void AssignFromLatent(const Tensor& latent, float threshold);

  // Builds the view from an already-ternary dense matrix (entries in {-1, 0, +1}).
  static SparseTernaryMatrix FromDense(const Tensor& adjacency);

  // Materializes the dense {-1,0,+1} float form (shape [rows, cols]).
  void ToDense(Tensor& out) const;
};

// Forward pre-sums: out[r, j] = Σ_i A[i, j] * x[r, i] for a [n, rows] input batch.
// Bit-identical to MatMul(x, dense(A), out); parallel over batch rows.
void SparseForward(const Tensor& x, const SparseTernaryMatrix& a, Tensor& out);

// Input gradient: out[r, i] = Σ_j A[i, j] * gz[r, j] for a [n, cols] upstream gradient.
// Bit-identical to MatMulTransposeB(gz, dense(A), out); parallel over batch rows.
void SparseGradInput(const Tensor& gz, const SparseTernaryMatrix& a, Tensor& out);

// Latent (straight-through) gradient: out[i, j] = Σ_r x[r, i] * gz[r, j]. The latent
// gradient is dense by construction — zero adjacency entries still receive updates so
// connections can re-appear — but the kernel skips zero activations (ReLU outputs, empty
// pixels), which is where the sparsity of the *data* lives. Bit-identical to
// MatMulTransposeA(x, gz, out); parallel over latent rows.
void SparseGradLatent(const Tensor& x, const Tensor& gz, Tensor& out);

}  // namespace neuroc

#endif  // NEUROC_SRC_TRAIN_SPARSE_KERNELS_H_
