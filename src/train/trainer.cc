#include "src/train/trainer.h"

#include <algorithm>
#include <chrono>
#include <memory>

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/common/thread_pool.h"
#include "src/obs/metrics.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"
#include "src/train/loss.h"
#include "src/train/metrics.h"

namespace neuroc {

namespace {

// A row copy costs about one op per float, so the gather grain comes straight from the
// shared cost-based heuristic. Typical batches (64 rows x 256 floats = 16k ops) land far
// under one chunk and gather in-line — parallel gathers only pay off for the huge
// evaluation batches.
size_t GrainForRowCopy(size_t dim) { return GrainForOps(dim); }

// Mean nonzero fraction of the ternarized weight matrices — the paper's density knob as it
// actually lands after thresholding. 0 when the network has no Neuro-C layers.
float MeanTernaryDensity(const Network& net) {
  double density_sum = 0.0;
  size_t layers = 0;
  for (const auto& mod : net.modules()) {
    const auto* layer = dynamic_cast<const NeuroCLayer*>(mod.get());
    if (layer == nullptr) {
      continue;
    }
    const size_t weights = layer->in_dim() * layer->out_dim();
    if (weights == 0) {
      continue;
    }
    density_sum +=
        static_cast<double>(layer->NonZeroCount()) / static_cast<double>(weights);
    ++layers;
  }
  return layers == 0 ? 0.0f : static_cast<float>(density_sum / static_cast<double>(layers));
}

}  // namespace

void GatherBatch(const Dataset& ds, std::span<const size_t> indices, Tensor& batch_x,
                 std::vector<int>& batch_y) {
  const size_t dim = ds.input_dim();
  if (batch_x.rank() != 2 || batch_x.rows() != indices.size() || batch_x.cols() != dim) {
    batch_x = Tensor({indices.size(), dim});
  }
  batch_y.resize(indices.size());
  ParallelFor(0, indices.size(), GrainForRowCopy(dim), [&](size_t i0, size_t i1) {
    for (size_t i = i0; i < i1; ++i) {
      NEUROC_CHECK(indices[i] < ds.num_examples());
      std::copy(ds.images.row(indices[i]).begin(), ds.images.row(indices[i]).end(),
                batch_x.row(i).begin());
      batch_y[i] = ds.labels[indices[i]];
    }
  });
}

float EvaluateAccuracy(Network& net, const Dataset& ds, size_t batch_size) {
  size_t correct = 0;
  Tensor batch_x;
  std::vector<int> batch_y;
  std::vector<size_t> idx;
  for (size_t start = 0; start < ds.num_examples(); start += batch_size) {
    const size_t end = std::min(start + batch_size, ds.num_examples());
    idx.resize(end - start);
    for (size_t i = start; i < end; ++i) {
      idx[i - start] = i;
    }
    GatherBatch(ds, idx, batch_x, batch_y);
    const Tensor& logits = net.Forward(batch_x, /*training=*/false);
    correct += CountCorrect(logits, batch_y);  // exact integer count per batch
  }
  return ds.num_examples() == 0
             ? 0.0f
             : static_cast<float>(correct) / static_cast<float>(ds.num_examples());
}

TrainResult Train(Network& net, const Dataset& train, const Dataset& test,
                  const TrainConfig& cfg) {
  NEUROC_CHECK(train.num_examples() > 0);
  std::unique_ptr<Optimizer> opt;
  if (cfg.use_adam) {
    opt = std::make_unique<AdamOptimizer>(cfg.learning_rate, 0.9f, 0.999f, 1e-8f,
                                          cfg.weight_decay);
  } else {
    opt = std::make_unique<SgdOptimizer>(cfg.learning_rate, cfg.momentum, cfg.weight_decay);
  }
  std::vector<ParamRef> params = net.Params();
  Rng rng(cfg.shuffle_seed);
  std::vector<size_t> order(train.num_examples());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  TrainResult result;
  Tensor batch_x, grad;
  std::vector<int> batch_y;
  float lr = cfg.learning_rate;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    const auto epoch_start = std::chrono::steady_clock::now();
    rng.Shuffle(order);
    double loss_sum = 0.0;
    double acc_sum = 0.0;
    size_t batches = 0;
    {
      NEUROC_TRACE_SCOPE("train_epoch");
      for (size_t start = 0; start < order.size(); start += cfg.batch_size) {
        const size_t end = std::min(start + cfg.batch_size, order.size());
        GatherBatch(train, std::span<const size_t>(order.data() + start, end - start),
                    batch_x, batch_y);
        const Tensor& logits = net.Forward(batch_x, /*training=*/true);
        const float loss = SoftmaxCrossEntropy(logits, batch_y, &grad);
        loss_sum += loss;
        acc_sum += Accuracy(logits, batch_y);
        ++batches;
        net.Backward(grad);
        opt->Step(params);
      }
    }
    EpochStats stats;
    stats.epoch_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_start)
            .count();
    stats.examples_per_sec =
        stats.epoch_seconds > 0.0
            ? static_cast<double>(order.size()) / stats.epoch_seconds
            : 0.0;
    stats.train_loss = static_cast<float>(loss_sum / std::max<size_t>(batches, 1));
    stats.train_accuracy = static_cast<float>(acc_sum / std::max<size_t>(batches, 1));
    {
      NEUROC_TRACE_SCOPE("evaluate");
      stats.test_accuracy = test.num_examples() > 0 ? EvaluateAccuracy(net, test) : 0.0f;
    }
    stats.ternary_density = MeanTernaryDensity(net);
    result.history.push_back(stats);
    result.best_test_accuracy = std::max(result.best_test_accuracy, stats.test_accuracy);
    if (cfg.verbose) {
      NEUROC_LOG_INFO("epoch %d/%d loss=%.4f train_acc=%.4f test_acc=%.4f", epoch + 1,
                      cfg.epochs, stats.train_loss, stats.train_accuracy,
                      stats.test_accuracy);
    }
    if (cfg.metrics != nullptr) {
      cfg.metrics->Log({
          {"epoch", epoch + 1},
          {"train_loss", static_cast<double>(stats.train_loss)},
          {"train_accuracy", static_cast<double>(stats.train_accuracy)},
          {"test_accuracy", static_cast<double>(stats.test_accuracy)},
          {"examples_per_sec", stats.examples_per_sec},
          {"epoch_ms", stats.epoch_seconds * 1000.0},
          {"ternary_density", static_cast<double>(stats.ternary_density)},
          {"learning_rate", static_cast<double>(lr)},
      });
    }
    TraceRecorder::Global().Counter("train_loss", static_cast<double>(stats.train_loss));
    TraceRecorder::Global().Counter("test_accuracy",
                                    static_cast<double>(stats.test_accuracy));
    lr *= cfg.lr_decay;
    opt->set_learning_rate(lr);
  }
  result.final_test_accuracy =
      result.history.empty() ? 0.0f : result.history.back().test_accuracy;
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("train.epochs").Add(result.history.size());
  reg.GetCounter("train.runs").Add(1);
  reg.GetGauge("train.final_test_accuracy").Set(result.final_test_accuracy);
  return result;
}

}  // namespace neuroc
