// Classification quality metrics beyond top-1 accuracy: confusion matrix, per-class
// precision/recall/F1, macro averages. Used by the examples and benches to report
// deployment-grade evaluation (a fall detector cares about fall recall, not accuracy).

#ifndef NEUROC_SRC_TRAIN_METRICS_H_
#define NEUROC_SRC_TRAIN_METRICS_H_

#include <span>
#include <string>
#include <vector>

#include "src/tensor/tensor.h"

namespace neuroc {

// Number of rows of `logits` whose arg-max equals the label. Integer counts sum exactly
// across batches (unlike reconstructing counts from a float accuracy), and the row loop is
// parallel — integer partial sums are order-independent, so any worker count agrees.
size_t CountCorrect(const Tensor& logits, std::span<const int> labels);

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int num_classes);

  void Add(int true_class, int predicted_class);
  // Merges counts from another matrix of the same shape.
  void Merge(const ConfusionMatrix& other);

  int num_classes() const { return num_classes_; }
  uint64_t count(int true_class, int predicted_class) const;
  uint64_t total() const { return total_; }

  double Accuracy() const;
  // Per-class one-vs-rest metrics. Classes with no predicted (resp. true) examples report
  // 0 precision (resp. recall).
  double Precision(int cls) const;
  double Recall(int cls) const;
  double F1(int cls) const;
  double MacroF1() const;

  // Fixed-width table with per-class rows (optionally named).
  std::string Format(const std::vector<std::string>& class_names = {}) const;

 private:
  int num_classes_;
  uint64_t total_ = 0;
  std::vector<uint64_t> counts_;  // [true * num_classes + predicted]
};

}  // namespace neuroc

#endif  // NEUROC_SRC_TRAIN_METRICS_H_
