#include "src/train/network.h"

#include "src/common/check.h"
#include "src/train/layers.h"

namespace neuroc {

const Tensor& Network::Forward(const Tensor& input, bool training) {
  NEUROC_CHECK(!modules_.empty());
  const Tensor* x = &input;
  for (auto& m : modules_) {
    x = &m->Forward(*x, training);
  }
  return *x;
}

void Network::Backward(const Tensor& grad_loss) {
  const Tensor* g = &grad_loss;
  for (auto it = modules_.rbegin(); it != modules_.rend(); ++it) {
    g = &(*it)->Backward(*g);
  }
}

std::vector<ParamRef> Network::Params() {
  std::vector<ParamRef> params;
  for (auto& m : modules_) {
    m->CollectParams(params);
  }
  return params;
}

size_t Network::DeployedParameterCount() const {
  size_t n = 0;
  for (const auto& m : modules_) {
    n += m->DeployedParameterCount();
  }
  return n;
}

std::string Network::Summary() const {
  std::string s;
  for (const auto& m : modules_) {
    if (!s.empty()) {
      s += " -> ";
    }
    s += m->Name();
  }
  return s;
}

Network BuildMlp(size_t in_dim, size_t num_classes, const MlpSpec& spec, Rng& rng) {
  Network net;
  size_t prev = in_dim;
  for (size_t width : spec.hidden) {
    net.Add<DenseLayer>(prev, width, rng);
    if (spec.batch_norm) {
      net.Add<BatchNorm1dLayer>(width);
    }
    net.Add<ReluLayer>();
    if (spec.dropout > 0.0f) {
      net.Add<DropoutLayer>(spec.dropout, rng);
    }
    prev = width;
  }
  net.Add<DenseLayer>(prev, num_classes, rng);
  return net;
}

Network BuildNeuroC(size_t in_dim, size_t num_classes, const NeuroCSpec& spec, Rng& rng) {
  Network net;
  size_t prev = in_dim;
  for (size_t width : spec.hidden) {
    net.Add<NeuroCLayer>(prev, width, rng, spec.layer);
    net.Add<ReluLayer>();
    prev = width;
  }
  net.Add<NeuroCLayer>(prev, num_classes, rng, spec.layer);
  return net;
}

Network BuildFixedAdjacency(size_t in_dim, size_t num_classes, size_t hidden,
                            const FixedAdjacencyConfig& cfg, Rng& rng) {
  Network net;
  net.Add<FixedAdjacencyLayer>(in_dim, hidden, rng, cfg);
  net.Add<ReluLayer>();
  net.Add<DenseLayer>(hidden, num_classes, rng);
  return net;
}

}  // namespace neuroc
