#include "src/train/ternary.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "src/common/check.h"
#include "src/tensor/matrix_ops.h"

namespace neuroc {

namespace {

// k-th smallest magnitude (0-indexed) via radix bucketing on the IEEE-754 bit pattern.
// For non-negative floats the bit pattern is monotonic in the value, so the k-th smallest
// 32-bit key IS the k-th smallest |w| — the exact order statistic std::nth_element on
// fabs values would return, but in ~two branch-light linear passes instead of introselect's
// compare-and-swap churn. This runs once per layer per optimizer step, which made it one of
// the hottest density-independent costs in the training profile.
float SelectMagnitude(const Tensor& latent, size_t k) {
  thread_local std::vector<uint32_t> keys;
  thread_local std::vector<uint32_t> bucket_keys;
  const size_t n = latent.size();
  keys.resize(n);
  constexpr int kShift = 21;  // bucket on sign(=0 after abs) + exponent + 2 mantissa bits
  uint32_t hist[1u << (31 - kShift + 1)] = {0};
  const float* src = latent.data();
  for (size_t i = 0; i < n; ++i) {
    const uint32_t key = std::bit_cast<uint32_t>(src[i]) & 0x7fffffffu;  // |w| bitwise
    keys[i] = key;
    ++hist[key >> kShift];
  }
  size_t before = 0;
  uint32_t bucket = 0;
  while (before + hist[bucket] <= k) {
    before += hist[bucket];
    ++bucket;
  }
  bucket_keys.clear();
  for (const uint32_t key : keys) {
    if ((key >> kShift) == bucket) {
      bucket_keys.push_back(key);
    }
  }
  const auto nth = bucket_keys.begin() + static_cast<ptrdiff_t>(k - before);
  std::nth_element(bucket_keys.begin(), nth, bucket_keys.end());
  return std::bit_cast<float>(*nth);
}

}  // namespace

float TernaryThreshold(const Tensor& latent, const TernaryConfig& cfg) {
  if (cfg.target_density <= 0.0f) {
    return cfg.threshold_factor * MeanAbs(latent);
  }
  NEUROC_CHECK(cfg.target_density <= 1.0f);
  // Threshold at the (1 - density) quantile of |W|: keeps ~density of the connections.
  const size_t keep =
      std::min(latent.size() - 1,
               static_cast<size_t>((1.0f - cfg.target_density) *
                                   static_cast<float>(latent.size())));
  return SelectMagnitude(latent, keep);
}

void Ternarize(const Tensor& latent, float threshold, Tensor& out) {
  if (!out.SameShape(latent)) {
    out = Tensor(latent.shape());
  }
  const float* src = latent.data();
  float* dst = out.data();
  for (size_t i = 0; i < latent.size(); ++i) {
    if (src[i] > threshold) {
      dst[i] = 1.0f;
    } else if (src[i] < -threshold) {
      dst[i] = -1.0f;
    } else {
      dst[i] = 0.0f;
    }
  }
}

void TernarizeToInt8(const Tensor& latent, float threshold, std::vector<int8_t>& out) {
  out.resize(latent.size());
  const float* src = latent.data();
  for (size_t i = 0; i < latent.size(); ++i) {
    out[i] = src[i] > threshold ? int8_t{1} : (src[i] < -threshold ? int8_t{-1} : int8_t{0});
  }
}

void ApplySteClip(const Tensor& latent, float clip, Tensor& grad) {
  NEUROC_CHECK(latent.SameShape(grad));
  const float* w = latent.data();
  float* g = grad.data();
  for (size_t i = 0; i < latent.size(); ++i) {
    if (std::fabs(w[i]) > clip) {
      g[i] = 0.0f;
    }
  }
}

size_t CountNonZero(const Tensor& latent, float threshold) {
  size_t n = 0;
  for (float w : latent.flat()) {
    if (w > threshold || w < -threshold) {
      ++n;
    }
  }
  return n;
}

}  // namespace neuroc
