#include "src/train/ternary.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/check.h"
#include "src/tensor/matrix_ops.h"

namespace neuroc {

float TernaryThreshold(const Tensor& latent, const TernaryConfig& cfg) {
  if (cfg.target_density <= 0.0f) {
    return cfg.threshold_factor * MeanAbs(latent);
  }
  NEUROC_CHECK(cfg.target_density <= 1.0f);
  // Threshold at the (1 - density) quantile of |W|: keeps ~density of the connections.
  std::vector<float> mags(latent.size());
  for (size_t i = 0; i < latent.size(); ++i) {
    mags[i] = std::fabs(latent[i]);
  }
  const size_t keep =
      std::min(mags.size() - 1,
               static_cast<size_t>((1.0f - cfg.target_density) *
                                   static_cast<float>(mags.size())));
  std::nth_element(mags.begin(), mags.begin() + static_cast<ptrdiff_t>(keep), mags.end());
  return mags[keep];
}

void Ternarize(const Tensor& latent, float threshold, Tensor& out) {
  if (!out.SameShape(latent)) {
    out = Tensor(latent.shape());
  }
  const float* src = latent.data();
  float* dst = out.data();
  for (size_t i = 0; i < latent.size(); ++i) {
    if (src[i] > threshold) {
      dst[i] = 1.0f;
    } else if (src[i] < -threshold) {
      dst[i] = -1.0f;
    } else {
      dst[i] = 0.0f;
    }
  }
}

void TernarizeToInt8(const Tensor& latent, float threshold, std::vector<int8_t>& out) {
  out.resize(latent.size());
  const float* src = latent.data();
  for (size_t i = 0; i < latent.size(); ++i) {
    out[i] = src[i] > threshold ? int8_t{1} : (src[i] < -threshold ? int8_t{-1} : int8_t{0});
  }
}

void ApplySteClip(const Tensor& latent, float clip, Tensor& grad) {
  NEUROC_CHECK(latent.SameShape(grad));
  const float* w = latent.data();
  float* g = grad.data();
  for (size_t i = 0; i < latent.size(); ++i) {
    if (std::fabs(w[i]) > clip) {
      g[i] = 0.0f;
    }
  }
}

size_t CountNonZero(const Tensor& latent, float threshold) {
  size_t n = 0;
  for (float w : latent.flat()) {
    if (w > threshold || w < -threshold) {
      ++n;
    }
  }
  return n;
}

}  // namespace neuroc
