#include "src/train/neuroc_layer.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/thread_pool.h"
#include "src/tensor/matrix_ops.h"

namespace neuroc {

namespace {

// Broadcast-multiply each row of m by `col` (length m.cols()). Elementwise per row, so
// row partitioning is bit-exact for any worker count.
void ScaleColumns(const Tensor& m, const Tensor& col, Tensor& out) {
  if (!out.SameShape(m)) {
    out = Tensor(m.shape());
  }
  const size_t n = m.rows();
  const size_t d = m.cols();
  ParallelFor(0, n, GrainForOps(d), [&](size_t r0, size_t r1) {
    for (size_t r = r0; r < r1; ++r) {
      const float* src = m.data() + r * d;
      float* dst = out.data() + r * d;
      for (size_t c = 0; c < d; ++c) {
        dst[c] = src[c] * col[c];
      }
    }
  });
}

// Scale gradient dL/ds_j = sum_r g[r,j] * z[r,j]. The reduction runs over batch rows, so
// chunks own disjoint *column* ranges and every column still sums rows in ascending order —
// bit-identical to the serial loop for any worker count.
void GradScale(const Tensor& grad_output, const Tensor& presum, Tensor& grad_scale) {
  const size_t n = grad_output.rows();
  const size_t d = grad_output.cols();
  ParallelFor(0, d, GrainForOps(2 * n), [&](size_t c0, size_t c1) {
    for (size_t c = c0; c < c1; ++c) {
      grad_scale[c] = 0.0f;
    }
    for (size_t r = 0; r < n; ++r) {
      const float* g = grad_output.data() + r * d;
      const float* z = presum.data() + r * d;
      for (size_t c = c0; c < c1; ++c) {
        grad_scale[c] += g[c] * z[c];
      }
    }
  });
}

}  // namespace

// ---------------------------------------------------------------------------
// NeuroCLayer
// ---------------------------------------------------------------------------

NeuroCLayer::NeuroCLayer(size_t in_dim, size_t out_dim, Rng& rng, NeuroCLayerConfig cfg)
    : cfg_(cfg),
      latent_({in_dim, out_dim}),
      scale_({size_t{1}, out_dim}),
      bias_({size_t{1}, out_dim}),
      grad_latent_({in_dim, out_dim}),
      grad_scale_({size_t{1}, out_dim}),
      grad_bias_({size_t{1}, out_dim}) {
  // Glorot-style init on the latent weights; the ternary threshold adapts to their scale.
  const float stddev =
      cfg.latent_init_stddev_scale * std::sqrt(2.0f / static_cast<float>(in_dim + out_dim));
  for (float& w : latent_.flat()) {
    w = rng.NextGaussian(0.0f, stddev);
  }
  // The per-neuron scale starts near the inverse of the expected fan-in magnitude so early
  // pre-activations are O(1) — this is the built-in normalizer role described in Sec. 3.4.
  const float init_scale = 1.0f / std::sqrt(static_cast<float>(in_dim));
  scale_.Fill(init_scale);
}

void NeuroCLayer::EnsureTernarized() const {
  if (ternary_valid_) {
    return;
  }
  threshold_ = TernaryThreshold(latent_, cfg_.ternary);
  if (cfg_.use_sparse_kernels) {
    sparse_.AssignFromLatent(latent_, threshold_);  // in place: no allocs after warm-up
    sparse_valid_ = true;
    dense_valid_ = false;
  } else {
    // Legacy mode ternarizes straight into the dense tensor, exactly like the original
    // trainer — no sparse build it would never use.
    Ternarize(latent_, threshold_, adjacency_);
    dense_valid_ = true;
    sparse_valid_ = false;
  }
  ternary_valid_ = true;
}

const Tensor& NeuroCLayer::Adjacency() {
  EnsureTernarized();
  if (!dense_valid_) {
    sparse_.ToDense(adjacency_);
    dense_valid_ = true;
  }
  return adjacency_;
}

float NeuroCLayer::CurrentThreshold() const {
  EnsureTernarized();
  return threshold_;
}

size_t NeuroCLayer::NonZeroCount() const {
  EnsureTernarized();
  return sparse_valid_ ? sparse_.NonZeroCount() : CountNonZero(latent_, threshold_);
}

const SparseTernaryMatrix& NeuroCLayer::SparseAdjacency() const {
  EnsureTernarized();
  if (!sparse_valid_) {
    sparse_.AssignFromLatent(latent_, threshold_);
    sparse_valid_ = true;
  }
  return sparse_;
}

const Tensor& NeuroCLayer::Forward(const Tensor& input, bool training) {
  NEUROC_CHECK(input.rank() == 2 && input.cols() == latent_.rows());
  if (training) {
    input_cache_ = input;  // only Backward consumes it — eval forwards skip the copy
  }
  if (!cfg_.use_sparse_kernels) {
    InvalidateTernaryCache();  // legacy trainer behaviour: re-ternarize on every forward
  }
  EnsureTernarized();
  if (cfg_.use_sparse_kernels) {
    SparseForward(input, sparse_, presum_);
  } else {
    MatMul(input, Adjacency(), presum_);
  }
  if (cfg_.use_per_neuron_scale) {
    ScaleColumns(presum_, scale_, output_);
  } else {
    output_ = presum_;
  }
  AddRowBias(output_, bias_.flat());
  return output_;
}

const Tensor& NeuroCLayer::Backward(const Tensor& grad_output) {
  NEUROC_CHECK(grad_output.SameShape(output_));
  // Backward requires a preceding training-mode Forward on the same batch.
  NEUROC_CHECK(input_cache_.rank() == 2 && input_cache_.rows() == grad_output.rows());
  // Bias gradient.
  ColumnSums(grad_output, grad_bias_.flat());
  if (cfg_.use_per_neuron_scale) {
    GradScale(grad_output, presum_, grad_scale_);
  }
  // Gradient reaching the pre-sum z: gz = g * s (or g if no scale). gz_ is a member
  // scratch so the per-step allocation disappears after the first batch.
  const Tensor* gz = &grad_output;
  if (cfg_.use_per_neuron_scale) {
    ScaleColumns(grad_output, scale_, gz_);
    gz = &gz_;
  }
  // Latent gradient through the ternarizer (straight-through): dL/dW = x^T gz, clipped.
  EnsureTernarized();
  if (cfg_.use_sparse_kernels) {
    SparseGradLatent(input_cache_, *gz, grad_latent_);
  } else {
    MatMulTransposeA(input_cache_, *gz, grad_latent_);
  }
  ApplySteClip(latent_, cfg_.ternary.ste_clip, grad_latent_);
  // Input gradient through the ternary adjacency.
  if (cfg_.use_sparse_kernels) {
    SparseGradInput(*gz, sparse_, grad_input_);
  } else {
    MatMulTransposeB(*gz, Adjacency(), grad_input_);
  }
  // The optimizer steps the latent weights right after Backward, so the ternarization
  // computed for this step is about to go stale.
  InvalidateTernaryCache();
  return grad_input_;
}

void NeuroCLayer::CollectParams(std::vector<ParamRef>& out) {
  out.push_back({&latent_, &grad_latent_, Name() + ".latent"});
  if (cfg_.use_per_neuron_scale) {
    out.push_back({&scale_, &grad_scale_, Name() + ".scale"});
  }
  out.push_back({&bias_, &grad_bias_, Name() + ".bias"});
}

std::string NeuroCLayer::Name() const {
  return std::string(cfg_.use_per_neuron_scale ? "neuroc" : "tnn") + "[" +
         std::to_string(in_dim()) + "x" + std::to_string(out_dim()) + "]";
}

size_t NeuroCLayer::DeployedParameterCount() const {
  // Deployed cost: nonzero adjacency entries + per-neuron (scale and bias).
  const size_t per_neuron = cfg_.use_per_neuron_scale ? 2 : 1;
  return NonZeroCount() + per_neuron * out_dim();
}

// ---------------------------------------------------------------------------
// FixedAdjacencyLayer
// ---------------------------------------------------------------------------

FixedAdjacencyLayer::FixedAdjacencyLayer(size_t in_dim, size_t out_dim, Rng& rng,
                                         FixedAdjacencyConfig cfg)
    : cfg_(cfg),
      adjacency_({in_dim, out_dim}),
      scale_({size_t{1}, out_dim}),
      bias_({size_t{1}, out_dim}),
      grad_scale_({size_t{1}, out_dim}),
      grad_bias_({size_t{1}, out_dim}) {
  switch (cfg_.strategy) {
    case AdjacencyStrategy::kRandom: {
      for (float& a : adjacency_.flat()) {
        if (rng.NextBool(cfg_.density)) {
          a = rng.NextBool(0.5) ? 1.0f : -1.0f;
        }
      }
      break;
    }
    case AdjacencyStrategy::kConstrainedRandom: {
      const size_t fan_in = std::min(cfg_.fan_in, in_dim);
      std::vector<size_t> pool(in_dim);
      for (size_t i = 0; i < in_dim; ++i) {
        pool[i] = i;
      }
      for (size_t j = 0; j < out_dim; ++j) {
        rng.Shuffle(pool);
        for (size_t k = 0; k < fan_in; ++k) {
          adjacency_.at(pool[k], j) = rng.NextBool(0.5) ? 1.0f : -1.0f;
        }
      }
      break;
    }
    case AdjacencyStrategy::kSpatialLocal: {
      // Assign each output neuron a receptive-field center (evenly spread over the input
      // raster, mimicking a convolutional local pattern) and connect the window around it.
      const int w = cfg_.image_width > 0 ? cfg_.image_width : static_cast<int>(in_dim);
      const int h = static_cast<int>(in_dim) / w;
      NEUROC_CHECK(w * h == static_cast<int>(in_dim));
      for (size_t j = 0; j < out_dim; ++j) {
        const double t = (static_cast<double>(j) + 0.5) / static_cast<double>(out_dim);
        // Space centers along a grid-filling order with a random perturbation.
        int cx = static_cast<int>(t * w * 997.0) % w;
        int cy = (static_cast<int>(t * h * 1009.0) + static_cast<int>(rng.NextBounded(3))) % h;
        cx = std::clamp(cx, 0, w - 1);
        cy = std::clamp(cy, 0, h - 1);
        for (int dy = -cfg_.window_radius; dy <= cfg_.window_radius; ++dy) {
          for (int dx = -cfg_.window_radius; dx <= cfg_.window_radius; ++dx) {
            const int x = cx + dx;
            const int y = cy + dy;
            if (x < 0 || x >= w || y < 0 || y >= h) {
              continue;
            }
            adjacency_.at(static_cast<size_t>(y) * w + x, j) =
                rng.NextBool(0.5) ? 1.0f : -1.0f;
          }
        }
      }
      break;
    }
  }
  const float init_scale = 1.0f / std::sqrt(static_cast<float>(in_dim));
  scale_.Fill(init_scale);
}

const Tensor& FixedAdjacencyLayer::Forward(const Tensor& input, bool training) {
  (void)training;  // only scale/bias train, so no activation cache is needed
  NEUROC_CHECK(input.rank() == 2 && input.cols() == adjacency_.rows());
  MatMul(input, adjacency_, presum_);
  ScaleColumns(presum_, scale_, output_);
  AddRowBias(output_, bias_.flat());
  return output_;
}

const Tensor& FixedAdjacencyLayer::Backward(const Tensor& grad_output) {
  NEUROC_CHECK(grad_output.SameShape(output_));
  ColumnSums(grad_output, grad_bias_.flat());
  GradScale(grad_output, presum_, grad_scale_);
  Tensor gz;
  ScaleColumns(grad_output, scale_, gz);
  MatMulTransposeB(gz, adjacency_, grad_input_);
  return grad_input_;
}

void FixedAdjacencyLayer::CollectParams(std::vector<ParamRef>& out) {
  out.push_back({&scale_, &grad_scale_, Name() + ".scale"});
  out.push_back({&bias_, &grad_bias_, Name() + ".bias"});
}

std::string FixedAdjacencyLayer::Name() const {
  const char* tag = "?";
  switch (cfg_.strategy) {
    case AdjacencyStrategy::kRandom:
      tag = "random";
      break;
    case AdjacencyStrategy::kConstrainedRandom:
      tag = "constrained";
      break;
    case AdjacencyStrategy::kSpatialLocal:
      tag = "spatial";
      break;
  }
  return std::string("fixed-adj[") + tag + "]";
}

size_t FixedAdjacencyLayer::NonZeroCount() const {
  size_t n = 0;
  for (float a : adjacency_.flat()) {
    if (a != 0.0f) {
      ++n;
    }
  }
  return n;
}

size_t FixedAdjacencyLayer::DeployedParameterCount() const {
  return NonZeroCount() + 2 * adjacency_.cols();
}

}  // namespace neuroc
