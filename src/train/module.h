// Base interface for trainable network modules.
//
// The training substrate is a deliberately small define-by-run framework with hand-written
// backward passes (the role Larq/TensorFlow played for the paper's authors). Each module owns
// its parameters, their gradients, and whatever activation caches its backward pass needs.

#ifndef NEUROC_SRC_TRAIN_MODULE_H_
#define NEUROC_SRC_TRAIN_MODULE_H_

#include <string>
#include <vector>

#include "src/tensor/tensor.h"

namespace neuroc {

// A parameter tensor paired with its gradient accumulator (same shape).
struct ParamRef {
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
  std::string name;
};

class Module {
 public:
  virtual ~Module() = default;

  // Computes the module output for a [batch, in] input. `training` enables behaviours that
  // differ between fit and inference time (dropout masks, batch-norm statistics).
  virtual const Tensor& Forward(const Tensor& input, bool training) = 0;

  // Given dLoss/dOutput, accumulates parameter gradients and returns dLoss/dInput.
  // Must be called after a Forward with training == true on the same batch (eval-mode
  // forwards skip the activation caches that backward passes consume).
  virtual const Tensor& Backward(const Tensor& grad_output) = 0;

  // Appends this module's trainable parameters.
  virtual void CollectParams(std::vector<ParamRef>& out) { (void)out; }

  // Human-readable identifier used in logs and summaries.
  virtual std::string Name() const = 0;

  // Number of scalar parameters that end up in the deployed model (used for the paper's
  // "total parameters" axes). Differs from trainable parameter count for ternary layers,
  // where the deployed cost is |nonzero adjacency entries| + neurons, not the latent floats.
  virtual size_t DeployedParameterCount() const { return 0; }
};

}  // namespace neuroc

#endif  // NEUROC_SRC_TRAIN_MODULE_H_
