#include "src/tensor/tensor.h"

#include <algorithm>

namespace neuroc {

namespace {
size_t ElementCount(const std::vector<size_t>& shape) {
  size_t n = shape.empty() ? 0 : 1;
  for (size_t d : shape) {
    n *= d;
  }
  return n;
}
}  // namespace

Tensor::Tensor(std::vector<size_t> shape) : shape_(std::move(shape)) {
  data_.assign(ElementCount(shape_), 0.0f);
}

Tensor Tensor::FromData(size_t rows, size_t cols, std::vector<float> data) {
  NEUROC_CHECK(data.size() == rows * cols);
  Tensor t;
  t.shape_ = {rows, cols};
  t.data_ = std::move(data);
  return t;
}

void Tensor::Fill(float value) { std::fill(data_.begin(), data_.end(), value); }

void Tensor::Reshape(std::vector<size_t> shape) {
  NEUROC_CHECK(ElementCount(shape) == data_.size());
  shape_ = std::move(shape);
}

}  // namespace neuroc
