// Linear-algebra kernels for the training substrate. All matrices are rank-2 Tensors in
// row-major layout. These are host-side float kernels (training never runs on the simulated
// MCU); correctness is validated against naive references in the test suite.
//
// The matmul family is parallelized over output rows through the shared thread pool
// (src/common/thread_pool.h). Chunks own disjoint output rows and every element accumulates
// in a fixed order, so results are bit-identical for any NEUROC_NUM_THREADS.

#ifndef NEUROC_SRC_TENSOR_MATRIX_OPS_H_
#define NEUROC_SRC_TENSOR_MATRIX_OPS_H_

#include <span>

#include "src/tensor/tensor.h"

namespace neuroc {

// out = a * b. a is [m,k], b is [k,n], out is resized/verified to [m,n].
void MatMul(const Tensor& a, const Tensor& b, Tensor& out);

// out = a^T * b. a is [k,m], b is [k,n], out is [m,n].
void MatMulTransposeA(const Tensor& a, const Tensor& b, Tensor& out);

// out = a * b^T. a is [m,k], b is [n,k], out is [m,n].
void MatMulTransposeB(const Tensor& a, const Tensor& b, Tensor& out);

// out[r, :] += bias for every row r. bias length must equal out.cols().
void AddRowBias(Tensor& out, std::span<const float> bias);

// column_sums[c] = sum_r m(r, c). Used for bias gradients.
void ColumnSums(const Tensor& m, std::span<float> column_sums);

// Elementwise: out = out * scale (in place).
void Scale(Tensor& out, float scale);

// Elementwise: accum += value * scale.
void Axpy(float scale, const Tensor& value, Tensor& accum);

// Row-wise softmax in place (numerically stabilized).
void SoftmaxRows(Tensor& m);

// Returns the index of the maximum element of `row`.
size_t ArgMax(std::span<const float> row);

// Frobenius-norm helpers used by optimizers/tests.
float MaxAbs(const Tensor& m);
float MeanAbs(const Tensor& m);

}  // namespace neuroc

#endif  // NEUROC_SRC_TENSOR_MATRIX_OPS_H_
