// Dense row-major float tensor used by the training substrate.
//
// The training framework only needs rank-1/rank-2 tensors (minibatches of flattened images and
// weight matrices), so this type is deliberately small: contiguous float storage plus a shape.
// All linear-algebra kernels live in matrix_ops.h and operate on Tensor views.

#ifndef NEUROC_SRC_TENSOR_TENSOR_H_
#define NEUROC_SRC_TENSOR_TENSOR_H_

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "src/common/check.h"

namespace neuroc {

class Tensor {
 public:
  Tensor() = default;

  // Constructs a zero-filled tensor with the given shape.
  explicit Tensor(std::vector<size_t> shape);
  Tensor(std::initializer_list<size_t> shape) : Tensor(std::vector<size_t>(shape)) {}

  // Constructs a rank-2 tensor from explicit data (size must equal rows*cols).
  static Tensor FromData(size_t rows, size_t cols, std::vector<float> data);

  // Shape access.
  const std::vector<size_t>& shape() const { return shape_; }
  size_t rank() const { return shape_.size(); }
  size_t dim(size_t i) const {
    NEUROC_DCHECK(i < shape_.size());
    return shape_[i];
  }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  // Rank-2 convenience accessors.
  size_t rows() const {
    NEUROC_DCHECK(rank() == 2);
    return shape_[0];
  }
  size_t cols() const {
    NEUROC_DCHECK(rank() == 2);
    return shape_[1];
  }
  float& at(size_t r, size_t c) {
    NEUROC_DCHECK(rank() == 2 && r < shape_[0] && c < shape_[1]);
    return data_[r * shape_[1] + c];
  }
  float at(size_t r, size_t c) const {
    NEUROC_DCHECK(rank() == 2 && r < shape_[0] && c < shape_[1]);
    return data_[r * shape_[1] + c];
  }

  // Flat element access.
  float& operator[](size_t i) {
    NEUROC_DCHECK(i < data_.size());
    return data_[i];
  }
  float operator[](size_t i) const {
    NEUROC_DCHECK(i < data_.size());
    return data_[i];
  }

  // Raw storage.
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> flat() { return std::span<float>(data_); }
  std::span<const float> flat() const { return std::span<const float>(data_); }

  // Row view for rank-2 tensors.
  std::span<const float> row(size_t r) const {
    NEUROC_DCHECK(rank() == 2 && r < shape_[0]);
    return std::span<const float>(data_.data() + r * shape_[1], shape_[1]);
  }
  std::span<float> row(size_t r) {
    NEUROC_DCHECK(rank() == 2 && r < shape_[0]);
    return std::span<float>(data_.data() + r * shape_[1], shape_[1]);
  }

  // Fills every element with `value`.
  void Fill(float value);

  // Reshape without copying; new shape must have the same element count.
  void Reshape(std::vector<size_t> shape);

  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

 private:
  std::vector<size_t> shape_;
  std::vector<float> data_;
};

}  // namespace neuroc

#endif  // NEUROC_SRC_TENSOR_TENSOR_H_
