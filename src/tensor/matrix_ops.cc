#include "src/tensor/matrix_ops.h"

#include <algorithm>
#include <cmath>

#include "src/common/thread_pool.h"

namespace neuroc {

namespace {

void EnsureShape(Tensor& t, size_t rows, size_t cols) {
  if (t.rank() != 2 || t.rows() != rows || t.cols() != cols) {
    t = Tensor({rows, cols});
  }
}

// ParallelFor grain targeting ~32k inner-loop operations per chunk, so small matrices run
// in-line and large ones split without scheduling overhead dominating.
size_t GrainFor(size_t ops_per_row) {
  return std::max<size_t>(1, 32768 / std::max<size_t>(1, ops_per_row));
}

}  // namespace

void MatMul(const Tensor& a, const Tensor& b, Tensor& out) {
  NEUROC_CHECK(a.rank() == 2 && b.rank() == 2);
  NEUROC_CHECK(a.cols() == b.rows());
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();
  EnsureShape(out, m, n);
  out.Fill(0.0f);
  // Row-blocked over the batch dimension: each output row is owned by exactly one chunk and
  // accumulated in the same i-k-j order regardless of worker count (the inner loop streams
  // over contiguous rows of b and out).
  ParallelFor(0, m, GrainFor(k * n), [&](size_t i0, size_t i1) {
    for (size_t i = i0; i < i1; ++i) {
      const float* arow = a.data() + i * k;
      float* orow = out.data() + i * n;
      for (size_t p = 0; p < k; ++p) {
        const float av = arow[p];
        if (av == 0.0f) {
          continue;
        }
        const float* brow = b.data() + p * n;
        for (size_t j = 0; j < n; ++j) {
          orow[j] += av * brow[j];
        }
      }
    }
  });
}

void MatMulTransposeA(const Tensor& a, const Tensor& b, Tensor& out) {
  NEUROC_CHECK(a.rank() == 2 && b.rank() == 2);
  NEUROC_CHECK(a.rows() == b.rows());
  const size_t k = a.rows();
  const size_t m = a.cols();
  const size_t n = b.cols();
  EnsureShape(out, m, n);
  out.Fill(0.0f);
  // Parallel over output rows (not the shared reduction dimension k): chunks write disjoint
  // rows of out, and each element still accumulates over p ascending.
  ParallelFor(0, m, GrainFor(k * n), [&](size_t i0, size_t i1) {
    for (size_t i = i0; i < i1; ++i) {
      float* orow = out.data() + i * n;
      for (size_t p = 0; p < k; ++p) {
        const float av = a.data()[p * m + i];
        if (av == 0.0f) {
          continue;
        }
        const float* brow = b.data() + p * n;
        for (size_t j = 0; j < n; ++j) {
          orow[j] += av * brow[j];
        }
      }
    }
  });
}

void MatMulTransposeB(const Tensor& a, const Tensor& b, Tensor& out) {
  NEUROC_CHECK(a.rank() == 2 && b.rank() == 2);
  NEUROC_CHECK(a.cols() == b.cols());
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.rows();
  EnsureShape(out, m, n);
  ParallelFor(0, m, GrainFor(k * n), [&](size_t i0, size_t i1) {
    for (size_t i = i0; i < i1; ++i) {
      const float* arow = a.data() + i * k;
      float* orow = out.data() + i * n;
      for (size_t j = 0; j < n; ++j) {
        const float* brow = b.data() + j * k;
        float acc = 0.0f;
        for (size_t p = 0; p < k; ++p) {
          acc += arow[p] * brow[p];
        }
        orow[j] = acc;
      }
    }
  });
}

void AddRowBias(Tensor& out, std::span<const float> bias) {
  NEUROC_CHECK(out.rank() == 2 && out.cols() == bias.size());
  for (size_t r = 0; r < out.rows(); ++r) {
    float* row = out.data() + r * out.cols();
    for (size_t c = 0; c < out.cols(); ++c) {
      row[c] += bias[c];
    }
  }
}

void ColumnSums(const Tensor& m, std::span<float> column_sums) {
  NEUROC_CHECK(m.rank() == 2 && m.cols() == column_sums.size());
  std::fill(column_sums.begin(), column_sums.end(), 0.0f);
  for (size_t r = 0; r < m.rows(); ++r) {
    const float* row = m.data() + r * m.cols();
    for (size_t c = 0; c < m.cols(); ++c) {
      column_sums[c] += row[c];
    }
  }
}

void Scale(Tensor& out, float scale) {
  for (float& v : out.flat()) {
    v *= scale;
  }
}

void Axpy(float scale, const Tensor& value, Tensor& accum) {
  NEUROC_CHECK(value.SameShape(accum));
  const float* src = value.data();
  float* dst = accum.data();
  for (size_t i = 0; i < value.size(); ++i) {
    dst[i] += scale * src[i];
  }
}

void SoftmaxRows(Tensor& m) {
  NEUROC_CHECK(m.rank() == 2);
  for (size_t r = 0; r < m.rows(); ++r) {
    float* row = m.data() + r * m.cols();
    float max_v = row[0];
    for (size_t c = 1; c < m.cols(); ++c) {
      max_v = std::max(max_v, row[c]);
    }
    float sum = 0.0f;
    for (size_t c = 0; c < m.cols(); ++c) {
      row[c] = std::exp(row[c] - max_v);
      sum += row[c];
    }
    const float inv = 1.0f / sum;
    for (size_t c = 0; c < m.cols(); ++c) {
      row[c] *= inv;
    }
  }
}

size_t ArgMax(std::span<const float> row) {
  NEUROC_CHECK(!row.empty());
  size_t best = 0;
  for (size_t i = 1; i < row.size(); ++i) {
    if (row[i] > row[best]) {
      best = i;
    }
  }
  return best;
}

float MaxAbs(const Tensor& m) {
  float v = 0.0f;
  for (float x : m.flat()) {
    v = std::max(v, std::fabs(x));
  }
  return v;
}

float MeanAbs(const Tensor& m) {
  if (m.size() == 0) {
    return 0.0f;
  }
  double acc = 0.0;
  for (float x : m.flat()) {
    acc += std::fabs(x);
  }
  return static_cast<float>(acc / static_cast<double>(m.size()));
}

}  // namespace neuroc
