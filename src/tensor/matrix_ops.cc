#include "src/tensor/matrix_ops.h"

#include <algorithm>
#include <cmath>

#include "src/common/thread_pool.h"

namespace neuroc {

namespace {

void EnsureShape(Tensor& t, size_t rows, size_t cols) {
  if (t.rank() != 2 || t.rows() != rows || t.cols() != cols) {
    t = Tensor({rows, cols});
  }
}

}  // namespace

void MatMul(const Tensor& a, const Tensor& b, Tensor& out) {
  NEUROC_CHECK(a.rank() == 2 && b.rank() == 2);
  NEUROC_CHECK(a.cols() == b.rows());
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();
  EnsureShape(out, m, n);
  out.Fill(0.0f);
  // Row-blocked over the batch dimension: each output row is owned by exactly one chunk and
  // accumulated in the same i-k-j order regardless of worker count (the inner loop streams
  // over contiguous rows of b and out).
  ParallelFor(0, m, GrainForOps(k * n), [&](size_t i0, size_t i1) {
    for (size_t i = i0; i < i1; ++i) {
      const float* arow = a.data() + i * k;
      float* orow = out.data() + i * n;
      for (size_t p = 0; p < k; ++p) {
        const float av = arow[p];
        if (av == 0.0f) {
          continue;
        }
        const float* brow = b.data() + p * n;
        for (size_t j = 0; j < n; ++j) {
          orow[j] += av * brow[j];
        }
      }
    }
  });
}

void MatMulTransposeA(const Tensor& a, const Tensor& b, Tensor& out) {
  NEUROC_CHECK(a.rank() == 2 && b.rank() == 2);
  NEUROC_CHECK(a.rows() == b.rows());
  const size_t k = a.rows();
  const size_t m = a.cols();
  const size_t n = b.cols();
  EnsureShape(out, m, n);
  out.Fill(0.0f);
  // Parallel over output rows (not the shared reduction dimension k): chunks write disjoint
  // rows of out, and each element still accumulates over p ascending.
  ParallelFor(0, m, GrainForOps(k * n), [&](size_t i0, size_t i1) {
    for (size_t i = i0; i < i1; ++i) {
      float* orow = out.data() + i * n;
      for (size_t p = 0; p < k; ++p) {
        const float av = a.data()[p * m + i];
        if (av == 0.0f) {
          continue;
        }
        const float* brow = b.data() + p * n;
        for (size_t j = 0; j < n; ++j) {
          orow[j] += av * brow[j];
        }
      }
    }
  });
}

void MatMulTransposeB(const Tensor& a, const Tensor& b, Tensor& out) {
  NEUROC_CHECK(a.rank() == 2 && b.rank() == 2);
  NEUROC_CHECK(a.cols() == b.cols());
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.rows();
  EnsureShape(out, m, n);
  ParallelFor(0, m, GrainForOps(k * n), [&](size_t i0, size_t i1) {
    for (size_t i = i0; i < i1; ++i) {
      const float* arow = a.data() + i * k;
      float* orow = out.data() + i * n;
      for (size_t j = 0; j < n; ++j) {
        const float* brow = b.data() + j * k;
        float acc = 0.0f;
        for (size_t p = 0; p < k; ++p) {
          acc += arow[p] * brow[p];
        }
        orow[j] = acc;
      }
    }
  });
}

void AddRowBias(Tensor& out, std::span<const float> bias) {
  NEUROC_CHECK(out.rank() == 2 && out.cols() == bias.size());
  const size_t cols = out.cols();
  // Elementwise per row, so row partitioning is bit-exact for any worker count.
  ParallelFor(0, out.rows(), GrainForOps(cols), [&](size_t r0, size_t r1) {
    for (size_t r = r0; r < r1; ++r) {
      float* row = out.data() + r * cols;
      for (size_t c = 0; c < cols; ++c) {
        row[c] += bias[c];
      }
    }
  });
}

void ColumnSums(const Tensor& m, std::span<float> column_sums) {
  NEUROC_CHECK(m.rank() == 2 && m.cols() == column_sums.size());
  std::fill(column_sums.begin(), column_sums.end(), 0.0f);
  const size_t rows = m.rows();
  const size_t cols = m.cols();
  // The reduction runs over rows, so partition over *columns*: each chunk owns a disjoint
  // column range and still accumulates rows in ascending order, keeping the float sums
  // bit-identical to the serial loop for any worker count.
  ParallelFor(0, cols, GrainForOps(rows), [&](size_t c0, size_t c1) {
    for (size_t r = 0; r < rows; ++r) {
      const float* row = m.data() + r * cols;
      for (size_t c = c0; c < c1; ++c) {
        column_sums[c] += row[c];
      }
    }
  });
}

void Scale(Tensor& out, float scale) {
  float* data = out.data();
  ParallelFor(0, out.size(), GrainForOps(1), [&](size_t i0, size_t i1) {
    for (size_t i = i0; i < i1; ++i) {
      data[i] *= scale;
    }
  });
}

void Axpy(float scale, const Tensor& value, Tensor& accum) {
  NEUROC_CHECK(value.SameShape(accum));
  const float* src = value.data();
  float* dst = accum.data();
  ParallelFor(0, value.size(), GrainForOps(2), [&](size_t i0, size_t i1) {
    for (size_t i = i0; i < i1; ++i) {
      dst[i] += scale * src[i];
    }
  });
}

void SoftmaxRows(Tensor& m) {
  NEUROC_CHECK(m.rank() == 2);
  const size_t cols = m.cols();
  // Each row normalizes independently (max, exp, sum, scale), so row partitioning keeps
  // every float op in the same order as the serial loop. exp costs dominate; count a row
  // as ~8 ops per element for grain purposes.
  ParallelFor(0, m.rows(), GrainForOps(8 * cols), [&](size_t r0, size_t r1) {
    for (size_t r = r0; r < r1; ++r) {
      float* row = m.data() + r * cols;
      float max_v = row[0];
      for (size_t c = 1; c < cols; ++c) {
        max_v = std::max(max_v, row[c]);
      }
      float sum = 0.0f;
      for (size_t c = 0; c < cols; ++c) {
        row[c] = std::exp(row[c] - max_v);
        sum += row[c];
      }
      const float inv = 1.0f / sum;
      for (size_t c = 0; c < cols; ++c) {
        row[c] *= inv;
      }
    }
  });
}

size_t ArgMax(std::span<const float> row) {
  NEUROC_CHECK(!row.empty());
  size_t best = 0;
  for (size_t i = 1; i < row.size(); ++i) {
    if (row[i] > row[best]) {
      best = i;
    }
  }
  return best;
}

float MaxAbs(const Tensor& m) {
  float v = 0.0f;
  for (float x : m.flat()) {
    v = std::max(v, std::fabs(x));
  }
  return v;
}

float MeanAbs(const Tensor& m) {
  if (m.size() == 0) {
    return 0.0f;
  }
  double acc = 0.0;
  for (float x : m.flat()) {
    acc += std::fabs(x);
  }
  return static_cast<float>(acc / static_cast<double>(m.size()));
}

}  // namespace neuroc
