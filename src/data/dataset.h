// In-memory labeled image dataset used by training and evaluation.
//
// Images are stored as a rank-2 float tensor [num_examples, width*height*channels] with
// values in [0, 1]. Generators in synth.h produce procedural datasets with the same shapes as
// the paper's benchmarks; idx_loader.h reads the real MNIST/FashionMNIST IDX files when they
// are available on disk.

#ifndef NEUROC_SRC_DATA_DATASET_H_
#define NEUROC_SRC_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/tensor/tensor.h"

namespace neuroc {

struct Dataset {
  std::string name;
  int width = 0;
  int height = 0;
  int channels = 1;
  int num_classes = 0;
  Tensor images;            // [n, width*height*channels], values in [0, 1]
  std::vector<int> labels;  // [n], each in [0, num_classes)

  size_t num_examples() const { return labels.size(); }
  size_t input_dim() const {
    return static_cast<size_t>(width) * static_cast<size_t>(height) *
           static_cast<size_t>(channels);
  }

  // Returns the subset with the given example indices.
  Dataset Subset(const std::vector<size_t>& indices) const;

  // Randomly splits into (train, test); test_fraction in (0, 1).
  std::pair<Dataset, Dataset> Split(double test_fraction, Rng& rng) const;

  // Keeps only examples whose label is < num_keep_classes (e.g. CIFAR10 -> CIFAR5).
  Dataset FilterClasses(int num_keep_classes) const;

  // Sanity check: shapes consistent, labels in range. Aborts on violation.
  void Validate() const;
};

// Input images quantized to q7 fixed point for deployment. `frac` is the number of
// fractional bits shared by every pixel (inputs are in [0,1], so frac=7 is the default).
struct QuantizedDataset {
  int frac = 7;
  size_t input_dim = 0;
  std::vector<int8_t> images;  // [n * input_dim]
  std::vector<int> labels;

  size_t num_examples() const { return labels.size(); }
  const int8_t* example(size_t i) const { return images.data() + i * input_dim; }
};

// Quantizes dataset pixels to q7 with the given fractional bits.
QuantizedDataset QuantizeInputs(const Dataset& ds, int frac = 7);

}  // namespace neuroc

#endif  // NEUROC_SRC_DATA_DATASET_H_
