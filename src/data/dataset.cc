#include "src/data/dataset.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/fixed_point.h"

namespace neuroc {

Dataset Dataset::Subset(const std::vector<size_t>& indices) const {
  Dataset out;
  out.name = name;
  out.width = width;
  out.height = height;
  out.channels = channels;
  out.num_classes = num_classes;
  out.images = Tensor({indices.size(), input_dim()});
  out.labels.reserve(indices.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    NEUROC_CHECK(indices[i] < num_examples());
    std::copy(images.row(indices[i]).begin(), images.row(indices[i]).end(),
              out.images.row(i).begin());
    out.labels.push_back(labels[indices[i]]);
  }
  return out;
}

std::pair<Dataset, Dataset> Dataset::Split(double test_fraction, Rng& rng) const {
  NEUROC_CHECK(test_fraction > 0.0 && test_fraction < 1.0);
  std::vector<size_t> perm = RandomPermutation(num_examples(), rng);
  const size_t test_n = static_cast<size_t>(test_fraction * static_cast<double>(perm.size()));
  std::vector<size_t> test_idx(perm.begin(), perm.begin() + test_n);
  std::vector<size_t> train_idx(perm.begin() + test_n, perm.end());
  return {Subset(train_idx), Subset(test_idx)};
}

Dataset Dataset::FilterClasses(int num_keep_classes) const {
  NEUROC_CHECK(num_keep_classes > 0 && num_keep_classes <= num_classes);
  std::vector<size_t> keep;
  for (size_t i = 0; i < num_examples(); ++i) {
    if (labels[i] < num_keep_classes) {
      keep.push_back(i);
    }
  }
  Dataset out = Subset(keep);
  out.num_classes = num_keep_classes;
  return out;
}

void Dataset::Validate() const {
  NEUROC_CHECK(images.rank() == 2);
  NEUROC_CHECK(images.rows() == labels.size());
  NEUROC_CHECK(images.cols() == input_dim());
  NEUROC_CHECK(num_classes > 0);
  for (int label : labels) {
    NEUROC_CHECK(label >= 0 && label < num_classes);
  }
}

QuantizedDataset QuantizeInputs(const Dataset& ds, int frac) {
  QuantizedDataset out;
  out.frac = frac;
  out.input_dim = ds.input_dim();
  out.labels = ds.labels;
  out.images.resize(ds.num_examples() * ds.input_dim());
  const float* src = ds.images.data();
  for (size_t i = 0; i < out.images.size(); ++i) {
    out.images[i] = QuantizeQ7(src[i], frac);
  }
  return out;
}

}  // namespace neuroc
