// Procedural dataset generators.
//
// These stand in for the paper's benchmark datasets (MNIST, FashionMNIST, CIFAR5 and the
// sklearn `digits` set), which are not available in this offline environment. Each generator
// produces images of the same shape and class count as its counterpart, with controlled
// intra-class variation (affine jitter, stroke/shape randomness, pixel noise) so that model
// capacity trades off against accuracy the same way it does in the paper's evaluation.
// All generators are deterministic given (count, seed).

#ifndef NEUROC_SRC_DATA_SYNTH_H_
#define NEUROC_SRC_DATA_SYNTH_H_

#include <cstdint>

#include "src/data/dataset.h"

namespace neuroc {

// Difficulty knobs shared by the image generators. Defaults approximate the benchmark feel:
// clean enough that large models approach their ceiling, noisy enough that small models lag.
struct SynthConfig {
  float rotation_deg = 18.0f;     // max |rotation|
  float scale_jitter = 0.16f;     // scale in [1-j, 1+j]
  float shear = 0.18f;            // max |shear|
  float translate = 0.07f;        // max |shift| in normalized units
  float noise_stddev = 0.10f;     // Gaussian pixel noise
  double salt_pepper = 0.004;     // probability per pixel
  float thickness_jitter = 0.35f; // stroke thickness multiplier in [1-j, 1+j]
};

// 8×8 grayscale digit dataset (stands in for sklearn `digits`, used by paper Fig. 1).
Dataset MakeDigits8x8(size_t count, uint64_t seed, const SynthConfig& cfg = {});

// 28×28 grayscale handwritten-digit-like dataset (stands in for MNIST, Figs. 6–8).
Dataset MakeMnistLike(size_t count, uint64_t seed, const SynthConfig& cfg = {});

// 28×28 grayscale garment-silhouette dataset, 10 classes (stands in for FashionMNIST).
Dataset MakeFashionLike(size_t count, uint64_t seed, const SynthConfig& cfg = {});

// 32×32 RGB (planar CHW) dataset with 5 classes (stands in for CIFAR5: the first five
// CIFAR-10 classes — airplane, automobile, bird, cat, deer).
Dataset MakeCifar5Like(size_t count, uint64_t seed, const SynthConfig& cfg = {});

// Accelerometer-window event-detection dataset used by the embedded-sensing example:
// 5 classes (idle, walking, running, fall, machine vibration), 33 features extracted from a
// synthetic 3-axis signal (time-domain statistics + Goertzel band energies).
Dataset MakeEventDetection(size_t count, uint64_t seed);

}  // namespace neuroc

#endif  // NEUROC_SRC_DATA_SYNTH_H_
