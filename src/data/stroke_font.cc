#include "src/data/stroke_font.h"

#include <array>

#include "src/common/check.h"

namespace neuroc {

namespace {

std::array<Glyph, 10> BuildFont() {
  std::array<Glyph, 10> font;

  // 0: oval outline.
  font[0].ellipses.push_back({{0.50f, 0.50f}, 0.26f, 0.40f});

  // 1: flag, stem, base.
  font[1].polylines.push_back({{0.34f, 0.26f}, {0.54f, 0.10f}, {0.54f, 0.90f}});
  font[1].polylines.push_back({{0.36f, 0.90f}, {0.72f, 0.90f}});

  // 2: top hook into a diagonal, then the base bar.
  font[2].polylines.push_back({{0.26f, 0.28f},
                               {0.32f, 0.14f},
                               {0.50f, 0.08f},
                               {0.68f, 0.15f},
                               {0.73f, 0.30f},
                               {0.66f, 0.48f},
                               {0.28f, 0.90f}});
  font[2].polylines.push_back({{0.28f, 0.90f}, {0.76f, 0.90f}});

  // 3: two right-facing bumps.
  font[3].polylines.push_back({{0.27f, 0.18f},
                               {0.48f, 0.09f},
                               {0.68f, 0.18f},
                               {0.70f, 0.33f},
                               {0.52f, 0.46f}});
  font[3].polylines.push_back({{0.52f, 0.46f},
                               {0.72f, 0.57f},
                               {0.73f, 0.78f},
                               {0.52f, 0.91f},
                               {0.27f, 0.83f}});

  // 4: diagonal, crossbar, stem.
  font[4].polylines.push_back({{0.62f, 0.10f}, {0.24f, 0.62f}, {0.80f, 0.62f}});
  font[4].polylines.push_back({{0.62f, 0.10f}, {0.62f, 0.92f}});

  // 5: top bar, descender, belly.
  font[5].polylines.push_back({{0.72f, 0.10f}, {0.30f, 0.10f}, {0.28f, 0.45f}});
  font[5].polylines.push_back({{0.28f, 0.45f},
                               {0.54f, 0.40f},
                               {0.72f, 0.52f},
                               {0.73f, 0.72f},
                               {0.54f, 0.90f},
                               {0.28f, 0.84f}});

  // 6: sweeping descender plus lower loop.
  font[6].polylines.push_back({{0.66f, 0.10f}, {0.42f, 0.26f}, {0.31f, 0.50f}, {0.30f, 0.68f}});
  font[6].ellipses.push_back({{0.50f, 0.70f}, 0.20f, 0.20f});

  // 7: top bar and diagonal.
  font[7].polylines.push_back({{0.24f, 0.12f}, {0.76f, 0.12f}, {0.42f, 0.90f}});

  // 8: stacked loops, lower slightly larger.
  font[8].ellipses.push_back({{0.50f, 0.30f}, 0.18f, 0.20f});
  font[8].ellipses.push_back({{0.50f, 0.71f}, 0.22f, 0.21f});

  // 9: upper loop with a tail.
  font[9].ellipses.push_back({{0.48f, 0.32f}, 0.20f, 0.22f});
  font[9].polylines.push_back({{0.68f, 0.36f}, {0.64f, 0.90f}});

  return font;
}

}  // namespace

const Glyph& DigitGlyph(int d) {
  static const std::array<Glyph, 10> kFont = BuildFont();
  NEUROC_CHECK(d >= 0 && d <= 9);
  return kFont[static_cast<size_t>(d)];
}

void RenderGlyph(const Glyph& glyph, Raster& canvas, const Affine& xf, float thickness,
                 float intensity) {
  for (const auto& line : glyph.polylines) {
    canvas.DrawPolyline(line, thickness, intensity, xf);
  }
  for (const EllipseStroke& e : glyph.ellipses) {
    canvas.DrawEllipse(e.center, e.rx, e.ry, thickness, intensity, xf);
  }
}

}  // namespace neuroc
