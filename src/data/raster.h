// Tiny software rasterizer used by the procedural dataset generators.
//
// All drawing works in normalized coordinates ([0,1]² maps onto the full canvas) so the same
// shape description renders at 8×8 or 32×32. An affine transform can be applied to every
// primitive, which is how the generators produce intra-class variation (rotation, scale,
// shear, translation).

#ifndef NEUROC_SRC_DATA_RASTER_H_
#define NEUROC_SRC_DATA_RASTER_H_

#include <span>
#include <vector>

#include "src/common/rng.h"

namespace neuroc {

struct Vec2 {
  float x = 0.0f;
  float y = 0.0f;
};

// Row-major 2x3 affine transform: p' = [a b; c d] p + [tx ty].
struct Affine {
  float a = 1.0f, b = 0.0f, tx = 0.0f;
  float c = 0.0f, d = 1.0f, ty = 0.0f;

  Vec2 Apply(Vec2 p) const { return {a * p.x + b * p.y + tx, c * p.x + d * p.y + ty}; }

  // Builds rotation+scale+shear about `center`, then translation.
  static Affine Compose(float rotation_rad, float scale_x, float scale_y, float shear,
                        Vec2 translate, Vec2 center = {0.5f, 0.5f});
  static Affine Identity() { return Affine{}; }
};

class Raster {
 public:
  Raster(int width, int height);

  int width() const { return width_; }
  int height() const { return height_; }

  float& px(int x, int y) { return pixels_[static_cast<size_t>(y) * width_ + x]; }
  float px(int x, int y) const { return pixels_[static_cast<size_t>(y) * width_ + x]; }
  std::span<const float> pixels() const { return pixels_; }
  std::span<float> pixels() { return pixels_; }

  void Clear(float value = 0.0f);

  // Adds a soft disc of the given radius (normalized units) centered at p (normalized).
  void SplatPoint(Vec2 p, float radius, float intensity);

  // Draws a polyline with round joints; thickness and coordinates in normalized units.
  void DrawPolyline(std::span<const Vec2> points, float thickness, float intensity,
                    const Affine& xf = Affine::Identity());

  // Outline of an ellipse sampled as a polyline.
  void DrawEllipse(Vec2 center, float rx, float ry, float thickness, float intensity,
                   const Affine& xf = Affine::Identity());

  // Filled convex or concave polygon via even–odd scanline fill (vertices normalized).
  void FillPolygon(std::span<const Vec2> vertices, float intensity,
                   const Affine& xf = Affine::Identity());

  // Filled axis-aligned rectangle / ellipse (before the affine transform).
  void FillRect(Vec2 top_left, Vec2 bottom_right, float intensity,
                const Affine& xf = Affine::Identity());
  void FillEllipse(Vec2 center, float rx, float ry, float intensity,
                   const Affine& xf = Affine::Identity());

  // Noise / post-processing.
  void AddGaussianNoise(Rng& rng, float stddev);
  void AddSaltPepper(Rng& rng, double prob);
  void MultiplyContrast(float gain, float offset);
  void Clamp01();

 private:
  int width_;
  int height_;
  std::vector<float> pixels_;
};

}  // namespace neuroc

#endif  // NEUROC_SRC_DATA_RASTER_H_
