#include "src/data/synth.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "src/common/check.h"
#include "src/data/raster.h"
#include "src/data/stroke_font.h"

namespace neuroc {

namespace {

constexpr float kDegToRad = std::numbers::pi_v<float> / 180.0f;

Affine RandomJitter(Rng& rng, const SynthConfig& cfg) {
  const float rot = rng.NextUniform(-cfg.rotation_deg, cfg.rotation_deg) * kDegToRad;
  const float sx = 1.0f + rng.NextUniform(-cfg.scale_jitter, cfg.scale_jitter);
  const float sy = 1.0f + rng.NextUniform(-cfg.scale_jitter, cfg.scale_jitter);
  const float sh = rng.NextUniform(-cfg.shear, cfg.shear);
  const Vec2 tr = {rng.NextUniform(-cfg.translate, cfg.translate),
                   rng.NextUniform(-cfg.translate, cfg.translate)};
  return Affine::Compose(rot, sx, sy, sh, tr);
}

void FinishGrayscale(Raster& canvas, Rng& rng, const SynthConfig& cfg) {
  canvas.AddGaussianNoise(rng, cfg.noise_stddev);
  canvas.AddSaltPepper(rng, cfg.salt_pepper);
  canvas.Clamp01();
}

Dataset MakeDigitDataset(size_t count, uint64_t seed, const SynthConfig& cfg, int side,
                         const char* name, float base_thickness) {
  Dataset ds;
  ds.name = name;
  ds.width = side;
  ds.height = side;
  ds.channels = 1;
  ds.num_classes = 10;
  ds.images = Tensor({count, static_cast<size_t>(side) * side});
  ds.labels.resize(count);
  Rng rng(seed);
  Raster canvas(side, side);
  for (size_t i = 0; i < count; ++i) {
    const int digit = static_cast<int>(rng.NextBounded(10));
    ds.labels[i] = digit;
    canvas.Clear();
    const Affine xf = RandomJitter(rng, cfg);
    const float thickness =
        base_thickness * (1.0f + rng.NextUniform(-cfg.thickness_jitter, cfg.thickness_jitter));
    const float intensity = rng.NextUniform(0.75f, 1.0f);
    RenderGlyph(DigitGlyph(digit), canvas, xf, thickness, intensity);
    FinishGrayscale(canvas, rng, cfg);
    std::copy(canvas.pixels().begin(), canvas.pixels().end(), ds.images.row(i).begin());
  }
  ds.Validate();
  return ds;
}

// ---------------------------------------------------------------------------
// Fashion-like silhouettes.
// ---------------------------------------------------------------------------

// Draws one garment class (FashionMNIST ordering: 0 t-shirt, 1 trouser, 2 pullover, 3 dress,
// 4 coat, 5 sandal, 6 shirt, 7 sneaker, 8 bag, 9 ankle boot).
void DrawGarment(int cls, Raster& canvas, Rng& rng, const Affine& xf) {
  auto u = [&rng](float lo, float hi) { return rng.NextUniform(lo, hi); };
  const float ink = u(0.7f, 1.0f);
  switch (cls) {
    case 0: {  // t-shirt: torso + short sleeves
      const float w = u(0.16f, 0.22f);
      canvas.FillRect({0.5f - w, 0.25f}, {0.5f + w, 0.82f}, ink, xf);
      const Vec2 ls[4] = {{0.5f - w, 0.25f}, {0.12f, 0.32f}, {0.16f, 0.48f}, {0.5f - w, 0.42f}};
      const Vec2 rs[4] = {{0.5f + w, 0.25f}, {0.88f, 0.32f}, {0.84f, 0.48f}, {0.5f + w, 0.42f}};
      canvas.FillPolygon(ls, ink, xf);
      canvas.FillPolygon(rs, ink, xf);
      break;
    }
    case 1: {  // trouser: waist + two legs
      const float gap = u(0.03f, 0.08f);
      canvas.FillRect({0.3f, 0.12f}, {0.7f, 0.3f}, ink, xf);
      canvas.FillRect({0.3f, 0.3f}, {0.5f - gap, 0.92f}, ink, xf);
      canvas.FillRect({0.5f + gap, 0.3f}, {0.7f, 0.92f}, ink, xf);
      break;
    }
    case 2: {  // pullover: torso + long straight sleeves
      const float w = u(0.17f, 0.23f);
      canvas.FillRect({0.5f - w, 0.22f}, {0.5f + w, 0.85f}, ink, xf);
      canvas.FillRect({0.06f, 0.26f}, {0.5f - w, 0.42f}, ink, xf);
      canvas.FillRect({0.5f + w, 0.26f}, {0.94f, 0.42f}, ink, xf);
      break;
    }
    case 3: {  // dress: flaring trapezoid with narrow waist
      const float hem = u(0.26f, 0.36f);
      const Vec2 body[6] = {{0.38f, 0.12f}, {0.62f, 0.12f}, {0.58f, 0.4f},
                            {0.5f + hem, 0.92f}, {0.5f - hem, 0.92f}, {0.42f, 0.4f}};
      canvas.FillPolygon(body, ink, xf);
      break;
    }
    case 4: {  // coat: long torso, sleeves, open front seam
      const float w = u(0.2f, 0.25f);
      canvas.FillRect({0.5f - w, 0.16f}, {0.5f + w, 0.92f}, ink, xf);
      canvas.FillRect({0.05f, 0.2f}, {0.5f - w, 0.4f}, ink, xf);
      canvas.FillRect({0.5f + w, 0.2f}, {0.95f, 0.4f}, ink, xf);
      canvas.DrawPolyline(std::vector<Vec2>{{0.5f, 0.16f}, {0.5f, 0.92f}}, 0.03f, 0.15f, xf);
      break;
    }
    case 5: {  // sandal: sole + diagonal straps
      canvas.FillRect({0.12f, 0.72f}, {0.88f, 0.84f}, ink, xf);
      canvas.DrawPolyline(std::vector<Vec2>{{0.2f, 0.72f}, {0.45f, 0.45f}, {0.7f, 0.72f}},
                          0.05f, ink, xf);
      canvas.DrawPolyline(std::vector<Vec2>{{0.45f, 0.45f}, {0.8f, 0.5f}}, 0.045f, ink, xf);
      break;
    }
    case 6: {  // shirt: narrow torso, sleeves, collar + button line
      const float w = u(0.14f, 0.19f);
      canvas.FillRect({0.5f - w, 0.22f}, {0.5f + w, 0.85f}, ink, xf);
      canvas.FillRect({0.1f, 0.26f}, {0.5f - w, 0.5f}, ink, xf);
      canvas.FillRect({0.5f + w, 0.26f}, {0.9f, 0.5f}, ink, xf);
      canvas.DrawPolyline(std::vector<Vec2>{{0.5f, 0.22f}, {0.5f, 0.85f}}, 0.02f, 0.1f, xf);
      canvas.DrawPolyline(std::vector<Vec2>{{0.42f, 0.22f}, {0.5f, 0.3f}, {0.58f, 0.22f}},
                          0.03f, ink, xf);
      break;
    }
    case 7: {  // sneaker: low profile body + thick sole
      const Vec2 body[5] = {{0.1f, 0.72f}, {0.25f, 0.5f}, {0.6f, 0.45f}, {0.9f, 0.62f},
                            {0.9f, 0.72f}};
      canvas.FillPolygon(body, ink, xf);
      canvas.FillRect({0.1f, 0.72f}, {0.9f, 0.82f}, ink * 0.8f, xf);
      break;
    }
    case 8: {  // bag: box + handle arc
      canvas.FillRect({0.2f, 0.42f}, {0.8f, 0.88f}, ink, xf);
      canvas.DrawEllipse({0.5f, 0.42f}, u(0.14f, 0.2f), u(0.16f, 0.24f), 0.045f, ink, xf);
      break;
    }
    case 9: {  // ankle boot: shaft + foot + sole
      canvas.FillRect({0.3f, 0.25f}, {0.55f, 0.7f}, ink, xf);
      const Vec2 foot[4] = {{0.3f, 0.55f}, {0.88f, 0.62f}, {0.88f, 0.78f}, {0.3f, 0.78f}};
      canvas.FillPolygon(foot, ink, xf);
      canvas.FillRect({0.28f, 0.78f}, {0.9f, 0.86f}, ink * 0.85f, xf);
      break;
    }
    default:
      NEUROC_CHECK(false);
  }
}

// ---------------------------------------------------------------------------
// CIFAR5-like RGB scenes.
// ---------------------------------------------------------------------------

struct Rgb {
  float r, g, b;
};

void VerticalGradient(Raster& r, float top, float bottom) {
  for (int y = 0; y < r.height(); ++y) {
    const float t = static_cast<float>(y) / static_cast<float>(r.height() - 1);
    const float v = top + (bottom - top) * t;
    for (int x = 0; x < r.width(); ++x) {
      r.px(x, y) = v;
    }
  }
}

// Draws one CIFAR5 class scene into planar R/G/B rasters.
// Classes: 0 airplane, 1 automobile, 2 bird, 3 cat, 4 deer.
void DrawScene(int cls, Raster& r, Raster& g, Raster& b, Rng& rng) {
  auto u = [&rng](float lo, float hi) { return rng.NextUniform(lo, hi); };
  const Affine xf = Affine::Compose(u(-0.25f, 0.25f), u(0.85f, 1.15f), u(0.85f, 1.15f),
                                    u(-0.1f, 0.1f), {u(-0.08f, 0.08f), u(-0.08f, 0.08f)});
  auto fill_ellipse = [&](Vec2 c, float rx, float ry, Rgb col) {
    r.FillEllipse(c, rx, ry, col.r, xf);
    g.FillEllipse(c, rx, ry, col.g, xf);
    b.FillEllipse(c, rx, ry, col.b, xf);
  };
  auto fill_poly = [&](std::span<const Vec2> v, Rgb col) {
    r.FillPolygon(v, col.r, xf);
    g.FillPolygon(v, col.g, xf);
    b.FillPolygon(v, col.b, xf);
  };
  auto fill_rect = [&](Vec2 tl, Vec2 br, Rgb col) {
    r.FillRect(tl, br, col.r, xf);
    g.FillRect(tl, br, col.g, xf);
    b.FillRect(tl, br, col.b, xf);
  };
  switch (cls) {
    case 0: {  // airplane on sky
      VerticalGradient(r, u(0.3f, 0.5f), u(0.5f, 0.7f));
      VerticalGradient(g, u(0.5f, 0.7f), u(0.65f, 0.85f));
      VerticalGradient(b, u(0.75f, 0.95f), u(0.85f, 1.0f));
      const Rgb hull = {u(0.75f, 0.95f), u(0.75f, 0.95f), u(0.78f, 0.98f)};
      fill_ellipse({0.5f, 0.5f}, 0.32f, 0.07f, hull);
      const Vec2 wings[4] = {{0.45f, 0.48f}, {0.3f, 0.25f}, {0.38f, 0.25f}, {0.55f, 0.5f}};
      fill_poly(wings, hull);
      const Vec2 wings2[4] = {{0.45f, 0.52f}, {0.3f, 0.75f}, {0.38f, 0.75f}, {0.55f, 0.5f}};
      fill_poly(wings2, hull);
      const Vec2 tail[3] = {{0.76f, 0.48f}, {0.85f, 0.3f}, {0.82f, 0.52f}};
      fill_poly(tail, hull);
      break;
    }
    case 1: {  // automobile on road
      VerticalGradient(r, u(0.5f, 0.7f), u(0.3f, 0.45f));
      VerticalGradient(g, u(0.6f, 0.8f), u(0.3f, 0.45f));
      VerticalGradient(b, u(0.7f, 0.95f), u(0.32f, 0.48f));
      const Rgb body = {u(0.4f, 1.0f), u(0.1f, 0.7f), u(0.1f, 0.7f)};
      fill_rect({0.15f, 0.48f}, {0.85f, 0.7f}, body);
      const Vec2 cabin[4] = {{0.3f, 0.48f}, {0.38f, 0.32f}, {0.66f, 0.32f}, {0.74f, 0.48f}};
      fill_poly(cabin, body);
      const Rgb tire = {0.08f, 0.08f, 0.08f};
      fill_ellipse({0.3f, 0.72f}, 0.08f, 0.08f, tire);
      fill_ellipse({0.7f, 0.72f}, 0.08f, 0.08f, tire);
      break;
    }
    case 2: {  // small bird on sky
      VerticalGradient(r, u(0.45f, 0.65f), u(0.6f, 0.8f));
      VerticalGradient(g, u(0.6f, 0.8f), u(0.7f, 0.9f));
      VerticalGradient(b, u(0.8f, 1.0f), u(0.85f, 1.0f));
      const Rgb body = {u(0.25f, 0.65f), u(0.2f, 0.5f), u(0.15f, 0.4f)};
      fill_ellipse({0.5f, 0.55f}, 0.14f, 0.09f, body);
      fill_ellipse({0.63f, 0.47f}, 0.06f, 0.05f, body);  // head
      const Vec2 wing[3] = {{0.45f, 0.52f}, {0.3f, 0.3f}, {0.55f, 0.5f}};
      fill_poly(wing, body);
      const Vec2 beak[3] = {{0.68f, 0.46f}, {0.76f, 0.47f}, {0.68f, 0.5f}};
      fill_poly(beak, {0.9f, 0.7f, 0.2f});
      break;
    }
    case 3: {  // cat face close-up on indoor background
      const float bg = u(0.25f, 0.65f);
      VerticalGradient(r, bg, bg * 0.8f);
      VerticalGradient(g, bg * u(0.7f, 1.0f), bg * 0.7f);
      VerticalGradient(b, bg * u(0.6f, 0.95f), bg * 0.65f);
      const Rgb fur = {u(0.45f, 0.8f), u(0.35f, 0.65f), u(0.25f, 0.5f)};
      fill_ellipse({0.5f, 0.58f}, 0.27f, 0.25f, fur);
      const Vec2 ear_l[3] = {{0.3f, 0.42f}, {0.26f, 0.16f}, {0.46f, 0.34f}};
      const Vec2 ear_r[3] = {{0.7f, 0.42f}, {0.74f, 0.16f}, {0.54f, 0.34f}};
      fill_poly(ear_l, fur);
      fill_poly(ear_r, fur);
      const Rgb eye = {u(0.5f, 0.9f), u(0.6f, 0.95f), u(0.1f, 0.35f)};
      fill_ellipse({0.42f, 0.55f}, 0.035f, 0.045f, eye);
      fill_ellipse({0.58f, 0.55f}, 0.035f, 0.045f, eye);
      break;
    }
    case 4: {  // deer in grass
      VerticalGradient(r, u(0.4f, 0.6f), u(0.15f, 0.35f));
      VerticalGradient(g, u(0.55f, 0.8f), u(0.35f, 0.6f));
      VerticalGradient(b, u(0.5f, 0.8f), u(0.1f, 0.3f));
      const Rgb hide = {u(0.5f, 0.75f), u(0.3f, 0.5f), u(0.12f, 0.3f)};
      fill_ellipse({0.5f, 0.55f}, 0.2f, 0.12f, hide);
      fill_rect({0.36f, 0.62f}, {0.41f, 0.88f}, hide);  // legs
      fill_rect({0.6f, 0.62f}, {0.65f, 0.88f}, hide);
      fill_ellipse({0.69f, 0.38f}, 0.07f, 0.06f, hide);  // head
      r.DrawPolyline(std::vector<Vec2>{{0.7f, 0.33f}, {0.66f, 0.18f}}, 0.02f, hide.r, xf);
      g.DrawPolyline(std::vector<Vec2>{{0.7f, 0.33f}, {0.66f, 0.18f}}, 0.02f, hide.g, xf);
      b.DrawPolyline(std::vector<Vec2>{{0.7f, 0.33f}, {0.66f, 0.18f}}, 0.02f, hide.b, xf);
      r.DrawPolyline(std::vector<Vec2>{{0.72f, 0.33f}, {0.78f, 0.18f}}, 0.02f, hide.r, xf);
      g.DrawPolyline(std::vector<Vec2>{{0.72f, 0.33f}, {0.78f, 0.18f}}, 0.02f, hide.g, xf);
      b.DrawPolyline(std::vector<Vec2>{{0.72f, 0.33f}, {0.78f, 0.18f}}, 0.02f, hide.b, xf);
      break;
    }
    default:
      NEUROC_CHECK(false);
  }
}

// ---------------------------------------------------------------------------
// Event-detection signal synthesis.
// ---------------------------------------------------------------------------

// Goertzel single-bin energy of `signal` at normalized frequency bin k (of window n).
float GoertzelEnergy(std::span<const float> signal, int k) {
  const int n = static_cast<int>(signal.size());
  const float w = 2.0f * std::numbers::pi_v<float> * static_cast<float>(k) /
                  static_cast<float>(n);
  const float coeff = 2.0f * std::cos(w);
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f;
  for (float x : signal) {
    s0 = x + coeff * s1 - s2;
    s2 = s1;
    s1 = s0;
  }
  return s1 * s1 + s2 * s2 - coeff * s1 * s2;
}

}  // namespace

Dataset MakeDigits8x8(size_t count, uint64_t seed, const SynthConfig& cfg) {
  return MakeDigitDataset(count, seed, cfg, 8, "digits8x8", 0.1f);
}

Dataset MakeMnistLike(size_t count, uint64_t seed, const SynthConfig& cfg) {
  return MakeDigitDataset(count, seed, cfg, 28, "mnist-like", 0.075f);
}

Dataset MakeFashionLike(size_t count, uint64_t seed, const SynthConfig& cfg) {
  Dataset ds;
  ds.name = "fashion-like";
  ds.width = 28;
  ds.height = 28;
  ds.channels = 1;
  ds.num_classes = 10;
  ds.images = Tensor({count, size_t{28 * 28}});
  ds.labels.resize(count);
  Rng rng(seed);
  Raster canvas(28, 28);
  for (size_t i = 0; i < count; ++i) {
    const int cls = static_cast<int>(rng.NextBounded(10));
    ds.labels[i] = cls;
    canvas.Clear();
    DrawGarment(cls, canvas, rng, RandomJitter(rng, cfg));
    FinishGrayscale(canvas, rng, cfg);
    std::copy(canvas.pixels().begin(), canvas.pixels().end(), ds.images.row(i).begin());
  }
  ds.Validate();
  return ds;
}

Dataset MakeCifar5Like(size_t count, uint64_t seed, const SynthConfig& cfg) {
  Dataset ds;
  ds.name = "cifar5-like";
  ds.width = 32;
  ds.height = 32;
  ds.channels = 3;
  ds.num_classes = 5;
  ds.images = Tensor({count, size_t{3 * 32 * 32}});
  ds.labels.resize(count);
  Rng rng(seed);
  Raster r(32, 32), g(32, 32), b(32, 32);
  const size_t plane = 32 * 32;
  for (size_t i = 0; i < count; ++i) {
    const int cls = static_cast<int>(rng.NextBounded(5));
    ds.labels[i] = cls;
    r.Clear();
    g.Clear();
    b.Clear();
    DrawScene(cls, r, g, b, rng);
    // CIFAR is a noisy, textured dataset; add channel-correlated plus independent noise.
    const float common = cfg.noise_stddev * 0.8f;
    for (Raster* ch : {&r, &g, &b}) {
      ch->AddGaussianNoise(rng, common);
      ch->AddSaltPepper(rng, cfg.salt_pepper);
      ch->Clamp01();
    }
    auto row = ds.images.row(i);
    std::copy(r.pixels().begin(), r.pixels().end(), row.begin());
    std::copy(g.pixels().begin(), g.pixels().end(), row.begin() + plane);
    std::copy(b.pixels().begin(), b.pixels().end(), row.begin() + 2 * plane);
  }
  ds.Validate();
  return ds;
}

Dataset MakeEventDetection(size_t count, uint64_t seed) {
  constexpr int kWindow = 128;
  constexpr int kAxes = 3;
  // Per-axis features: mean, stddev, energy, zero crossings, peak, plus 6 Goertzel bins.
  constexpr int kPerAxis = 11;
  constexpr int kFeatures = kAxes * kPerAxis;
  Dataset ds;
  ds.name = "event-detect";
  ds.width = kFeatures;
  ds.height = 1;
  ds.channels = 1;
  ds.num_classes = 5;
  ds.images = Tensor({count, size_t{kFeatures}});
  ds.labels.resize(count);
  Rng rng(seed);
  std::vector<float> axis(kWindow);
  for (size_t i = 0; i < count; ++i) {
    const int cls = static_cast<int>(rng.NextBounded(5));
    ds.labels[i] = cls;
    auto row = ds.images.row(i);
    for (int a = 0; a < kAxes; ++a) {
      // Synthesize the axis signal for this event class.
      const float gravity = (a == 2) ? 1.0f : 0.0f;
      for (int t = 0; t < kWindow; ++t) {
        float v = gravity + rng.NextGaussian(0.0f, 0.02f);
        const float ph = static_cast<float>(t) / kWindow;
        switch (cls) {
          case 0:  // idle: just sensor noise
            break;
          case 1:  // walking: ~2 Hz-equivalent periodic swing
            v += 0.3f * std::sin(2.0f * std::numbers::pi_v<float> * 4.0f * ph +
                                 static_cast<float>(a));
            v += rng.NextGaussian(0.0f, 0.05f);
            break;
          case 2:  // running: stronger, faster
            v += 0.8f * std::sin(2.0f * std::numbers::pi_v<float> * 9.0f * ph +
                                 static_cast<float>(a));
            v += rng.NextGaussian(0.0f, 0.12f);
            break;
          case 3: {  // fall: quiet, a sharp spike, then free-fall-ish low gravity
            if (t > 40 && t < 48) {
              v += rng.NextUniform(1.5f, 3.0f);
            }
            if (t >= 48) {
              v -= gravity * 0.8f;
            }
            break;
          }
          case 4:  // machine vibration: high-frequency low-amplitude buzz
            v += 0.15f * std::sin(2.0f * std::numbers::pi_v<float> * 28.0f * ph);
            v += rng.NextGaussian(0.0f, 0.04f);
            break;
          default:
            NEUROC_CHECK(false);
        }
        axis[static_cast<size_t>(t)] = v;
      }
      // Feature extraction.
      float mean = 0.0f;
      for (float v : axis) {
        mean += v;
      }
      mean /= kWindow;
      float var = 0.0f, energy = 0.0f, peak = 0.0f;
      int zero_crossings = 0;
      for (int t = 0; t < kWindow; ++t) {
        const float d = axis[static_cast<size_t>(t)] - mean;
        var += d * d;
        energy += axis[static_cast<size_t>(t)] * axis[static_cast<size_t>(t)];
        peak = std::max(peak, std::fabs(d));
        if (t > 0) {
          const float p = axis[static_cast<size_t>(t - 1)] - mean;
          if ((p < 0.0f) != (d < 0.0f)) {
            ++zero_crossings;
          }
        }
      }
      const float stddev = std::sqrt(var / kWindow);
      float* f = row.data() + a * kPerAxis;
      // Squash each feature into [0, 1] with fixed soft ranges so quantization is stable.
      auto squash = [](float v, float scale) { return v / (std::fabs(v) + scale); };
      f[0] = 0.5f + 0.5f * squash(mean, 1.0f);
      f[1] = squash(stddev, 0.3f);
      f[2] = squash(energy / kWindow, 1.0f);
      f[3] = static_cast<float>(zero_crossings) / kWindow;
      f[4] = squash(peak, 1.0f);
      const int bins[6] = {2, 4, 8, 14, 22, 30};
      for (int k = 0; k < 6; ++k) {
        f[5 + k] = squash(GoertzelEnergy(axis, bins[k]) / (kWindow * kWindow), 0.02f);
      }
    }
  }
  ds.Validate();
  return ds;
}

}  // namespace neuroc
