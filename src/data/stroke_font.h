// Vector stroke font for the digits 0–9, in normalized [0,1]² glyph space.
//
// Each glyph is a set of polylines plus optional ellipse outlines; the generators render them
// through random affine transforms to create handwriting-like variation.

#ifndef NEUROC_SRC_DATA_STROKE_FONT_H_
#define NEUROC_SRC_DATA_STROKE_FONT_H_

#include <vector>

#include "src/data/raster.h"

namespace neuroc {

struct EllipseStroke {
  Vec2 center;
  float rx = 0.0f;
  float ry = 0.0f;
};

struct Glyph {
  std::vector<std::vector<Vec2>> polylines;
  std::vector<EllipseStroke> ellipses;
};

// Returns the glyph for digit d in [0, 9].
const Glyph& DigitGlyph(int d);

// Renders `glyph` onto `canvas` with the given transform, stroke thickness and intensity.
void RenderGlyph(const Glyph& glyph, Raster& canvas, const Affine& xf, float thickness,
                 float intensity);

}  // namespace neuroc

#endif  // NEUROC_SRC_DATA_STROKE_FONT_H_
