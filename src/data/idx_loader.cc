#include "src/data/idx_loader.h"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "src/common/logging.h"

namespace neuroc {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) {
      std::fclose(f);
    }
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool ReadBigEndianU32(std::FILE* f, uint32_t* out) {
  unsigned char buf[4];
  if (std::fread(buf, 1, 4, f) != 4) {
    return false;
  }
  *out = (static_cast<uint32_t>(buf[0]) << 24) | (static_cast<uint32_t>(buf[1]) << 16) |
         (static_cast<uint32_t>(buf[2]) << 8) | static_cast<uint32_t>(buf[3]);
  return true;
}

}  // namespace

std::optional<Dataset> LoadIdxDataset(const std::string& images_path,
                                      const std::string& labels_path, const std::string& name,
                                      int num_classes) {
  FilePtr img(std::fopen(images_path.c_str(), "rb"));
  FilePtr lab(std::fopen(labels_path.c_str(), "rb"));
  if (!img || !lab) {
    NEUROC_LOG_DEBUG("IDX files not found: %s / %s", images_path.c_str(), labels_path.c_str());
    return std::nullopt;
  }
  uint32_t img_magic = 0, lab_magic = 0, n_img = 0, n_lab = 0, rows = 0, cols = 0;
  if (!ReadBigEndianU32(img.get(), &img_magic) || !ReadBigEndianU32(img.get(), &n_img) ||
      !ReadBigEndianU32(img.get(), &rows) || !ReadBigEndianU32(img.get(), &cols) ||
      !ReadBigEndianU32(lab.get(), &lab_magic) || !ReadBigEndianU32(lab.get(), &n_lab)) {
    NEUROC_LOG_WARN("IDX header read failed for %s", images_path.c_str());
    return std::nullopt;
  }
  if (img_magic != 0x00000803 || lab_magic != 0x00000801 || n_img != n_lab) {
    NEUROC_LOG_WARN("IDX magic/count mismatch for %s (magic=%08x/%08x n=%u/%u)",
                    images_path.c_str(), img_magic, lab_magic, n_img, n_lab);
    return std::nullopt;
  }
  // Bounds-check the header before sizing any allocation: a corrupted dimension field must
  // produce a structured failure, not a multi-gigabyte allocation or a zero-dim tensor.
  constexpr uint32_t kMaxSide = 4096;       // far above any IDX image set we consume
  constexpr uint32_t kMaxExamples = 1u << 24;
  constexpr uint64_t kMaxTotalPixels = 1ull << 32;
  if (rows == 0 || cols == 0 || rows > kMaxSide || cols > kMaxSide || n_img == 0 ||
      n_img > kMaxExamples ||
      static_cast<uint64_t>(rows) * cols * n_img > kMaxTotalPixels) {
    NEUROC_LOG_WARN("IDX header out of bounds for %s (n=%u rows=%u cols=%u)",
                    images_path.c_str(), n_img, rows, cols);
    return std::nullopt;
  }
  Dataset ds;
  ds.name = name;
  ds.width = static_cast<int>(cols);
  ds.height = static_cast<int>(rows);
  ds.channels = 1;
  ds.num_classes = num_classes;
  const size_t dim = static_cast<size_t>(rows) * cols;
  ds.images = Tensor({n_img, dim});
  ds.labels.resize(n_img);
  std::vector<unsigned char> pix(dim);
  for (uint32_t i = 0; i < n_img; ++i) {
    if (std::fread(pix.data(), 1, dim, img.get()) != dim) {
      NEUROC_LOG_WARN("IDX image payload truncated at example %u", i);
      return std::nullopt;
    }
    auto row = ds.images.row(i);
    for (size_t p = 0; p < dim; ++p) {
      row[p] = static_cast<float>(pix[p]) / 255.0f;
    }
    int ch = std::fgetc(lab.get());
    if (ch == EOF) {
      NEUROC_LOG_WARN("IDX label payload truncated at example %u", i);
      return std::nullopt;
    }
    // Range-check here: Validate() treats an out-of-range label as a host programming
    // error and aborts, but a corrupted file is an expected input.
    if (ch < 0 || ch >= num_classes) {
      NEUROC_LOG_WARN("IDX label %d out of range [0, %d) at example %u", ch, num_classes, i);
      return std::nullopt;
    }
    ds.labels[i] = ch;
  }
  ds.Validate();
  return ds;
}

}  // namespace neuroc
