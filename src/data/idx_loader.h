// Loader for the IDX file format used by MNIST/FashionMNIST distributions
// (train-images-idx3-ubyte etc., uncompressed). When the real files are present on disk the
// benches can run against them instead of the procedural stand-ins.

#ifndef NEUROC_SRC_DATA_IDX_LOADER_H_
#define NEUROC_SRC_DATA_IDX_LOADER_H_

#include <optional>
#include <string>

#include "src/data/dataset.h"

namespace neuroc {

// Loads an images-idx3-ubyte + labels-idx1-ubyte pair into a Dataset with pixels scaled to
// [0, 1]. Returns nullopt (with a logged warning) if either file is missing or malformed.
std::optional<Dataset> LoadIdxDataset(const std::string& images_path,
                                      const std::string& labels_path, const std::string& name,
                                      int num_classes = 10);

}  // namespace neuroc

#endif  // NEUROC_SRC_DATA_IDX_LOADER_H_
