#include "src/data/raster.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "src/common/check.h"

namespace neuroc {

Affine Affine::Compose(float rotation_rad, float scale_x, float scale_y, float shear,
                       Vec2 translate, Vec2 center) {
  const float cs = std::cos(rotation_rad);
  const float sn = std::sin(rotation_rad);
  // M = R * Shear * S
  Affine m;
  m.a = cs * scale_x + (-sn) * 0.0f + cs * shear * 0.0f;  // start from rotation*shear*scale
  // Compose explicitly: S = diag(sx, sy); H = [1 shear; 0 1]; R = [cs -sn; sn cs].
  // M2x2 = R * H * S.
  const float h00 = 1.0f, h01 = shear, h10 = 0.0f, h11 = 1.0f;
  const float rh00 = cs * h00 - sn * h10;
  const float rh01 = cs * h01 - sn * h11;
  const float rh10 = sn * h00 + cs * h10;
  const float rh11 = sn * h01 + cs * h11;
  m.a = rh00 * scale_x;
  m.b = rh01 * scale_y;
  m.c = rh10 * scale_x;
  m.d = rh11 * scale_y;
  // Keep `center` fixed, then translate.
  m.tx = center.x - (m.a * center.x + m.b * center.y) + translate.x;
  m.ty = center.y - (m.c * center.x + m.d * center.y) + translate.y;
  return m;
}

Raster::Raster(int width, int height) : width_(width), height_(height) {
  NEUROC_CHECK(width > 0 && height > 0);
  pixels_.assign(static_cast<size_t>(width) * height, 0.0f);
}

void Raster::Clear(float value) { std::fill(pixels_.begin(), pixels_.end(), value); }

void Raster::SplatPoint(Vec2 p, float radius, float intensity) {
  // Convert to pixel space; radius is relative to the canvas width.
  const float cx = p.x * static_cast<float>(width_);
  const float cy = p.y * static_cast<float>(height_);
  const float r = std::max(radius * static_cast<float>(width_), 0.35f);
  const int x0 = std::max(0, static_cast<int>(std::floor(cx - r - 1.0f)));
  const int x1 = std::min(width_ - 1, static_cast<int>(std::ceil(cx + r + 1.0f)));
  const int y0 = std::max(0, static_cast<int>(std::floor(cy - r - 1.0f)));
  const int y1 = std::min(height_ - 1, static_cast<int>(std::ceil(cy + r + 1.0f)));
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      const float dx = (static_cast<float>(x) + 0.5f) - cx;
      const float dy = (static_cast<float>(y) + 0.5f) - cy;
      const float dist = std::sqrt(dx * dx + dy * dy);
      // Soft edge: full intensity inside r-0.5, linear falloff over one pixel.
      const float cov = std::clamp(r + 0.5f - dist, 0.0f, 1.0f);
      if (cov > 0.0f) {
        float& v = px(x, y);
        v = std::max(v, intensity * cov);
      }
    }
  }
}

void Raster::DrawPolyline(std::span<const Vec2> points, float thickness, float intensity,
                          const Affine& xf) {
  if (points.size() < 2) {
    return;
  }
  const float r = thickness * 0.5f;
  for (size_t i = 0; i + 1 < points.size(); ++i) {
    const Vec2 a = xf.Apply(points[i]);
    const Vec2 b = xf.Apply(points[i + 1]);
    const float seg_len = std::hypot(b.x - a.x, b.y - a.y);
    // Step at quarter-pixel granularity along the segment.
    const float step_norm = 0.25f / static_cast<float>(std::max(width_, height_));
    const int steps = std::max(1, static_cast<int>(seg_len / step_norm));
    for (int s = 0; s <= steps; ++s) {
      const float t = static_cast<float>(s) / static_cast<float>(steps);
      SplatPoint({a.x + t * (b.x - a.x), a.y + t * (b.y - a.y)}, r, intensity);
    }
  }
}

void Raster::DrawEllipse(Vec2 center, float rx, float ry, float thickness, float intensity,
                         const Affine& xf) {
  constexpr int kSamples = 48;
  std::vector<Vec2> pts;
  pts.reserve(kSamples + 1);
  for (int i = 0; i <= kSamples; ++i) {
    const float t = 2.0f * std::numbers::pi_v<float> * static_cast<float>(i) / kSamples;
    pts.push_back({center.x + rx * std::cos(t), center.y + ry * std::sin(t)});
  }
  DrawPolyline(pts, thickness, intensity, xf);
}

void Raster::FillPolygon(std::span<const Vec2> vertices, float intensity, const Affine& xf) {
  if (vertices.size() < 3) {
    return;
  }
  std::vector<Vec2> v;
  v.reserve(vertices.size());
  for (const Vec2& p : vertices) {
    const Vec2 q = xf.Apply(p);
    v.push_back({q.x * static_cast<float>(width_), q.y * static_cast<float>(height_)});
  }
  // Even–odd scanline fill at pixel centers.
  for (int y = 0; y < height_; ++y) {
    const float py = static_cast<float>(y) + 0.5f;
    std::vector<float> xs;
    for (size_t i = 0; i < v.size(); ++i) {
      const Vec2& p0 = v[i];
      const Vec2& p1 = v[(i + 1) % v.size()];
      if ((p0.y <= py && p1.y > py) || (p1.y <= py && p0.y > py)) {
        const float t = (py - p0.y) / (p1.y - p0.y);
        xs.push_back(p0.x + t * (p1.x - p0.x));
      }
    }
    std::sort(xs.begin(), xs.end());
    for (size_t i = 0; i + 1 < xs.size(); i += 2) {
      const int x0 = std::max(0, static_cast<int>(std::ceil(xs[i] - 0.5f)));
      const int x1 = std::min(width_ - 1, static_cast<int>(std::floor(xs[i + 1] - 0.5f)));
      for (int x = x0; x <= x1; ++x) {
        float& val = px(x, y);
        val = std::max(val, intensity);
      }
    }
  }
}

void Raster::FillRect(Vec2 top_left, Vec2 bottom_right, float intensity, const Affine& xf) {
  const Vec2 quad[4] = {top_left,
                        {bottom_right.x, top_left.y},
                        bottom_right,
                        {top_left.x, bottom_right.y}};
  FillPolygon(quad, intensity, xf);
}

void Raster::FillEllipse(Vec2 center, float rx, float ry, float intensity, const Affine& xf) {
  constexpr int kSamples = 40;
  std::vector<Vec2> pts;
  pts.reserve(kSamples);
  for (int i = 0; i < kSamples; ++i) {
    const float t = 2.0f * std::numbers::pi_v<float> * static_cast<float>(i) / kSamples;
    pts.push_back({center.x + rx * std::cos(t), center.y + ry * std::sin(t)});
  }
  FillPolygon(pts, intensity, xf);
}

void Raster::AddGaussianNoise(Rng& rng, float stddev) {
  for (float& v : pixels_) {
    v += rng.NextGaussian(0.0f, stddev);
  }
}

void Raster::AddSaltPepper(Rng& rng, double prob) {
  for (float& v : pixels_) {
    if (rng.NextBool(prob)) {
      v = rng.NextBool(0.5) ? 1.0f : 0.0f;
    }
  }
}

void Raster::MultiplyContrast(float gain, float offset) {
  for (float& v : pixels_) {
    v = v * gain + offset;
  }
}

void Raster::Clamp01() {
  for (float& v : pixels_) {
    v = std::clamp(v, 0.0f, 1.0f);
  }
}

}  // namespace neuroc
