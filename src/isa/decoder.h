// Decodes ARMv6-M halfwords into the Instr form executed by the simulator.

#ifndef NEUROC_SRC_ISA_DECODER_H_
#define NEUROC_SRC_ISA_DECODER_H_

#include <cstdint>

#include "src/isa/isa.h"

namespace neuroc {

// Decodes the instruction starting at hw1 (hw2 is the following halfword, used only for
// 32-bit BL; pass 0 when unavailable). Returns Instr with op == kInvalid for encodings
// outside the supported subset.
Instr DecodeInstr(uint16_t hw1, uint16_t hw2);

}  // namespace neuroc

#endif  // NEUROC_SRC_ISA_DECODER_H_
