// ARMv6-M (Thumb-1 subset) instruction model.
//
// The simulated target mirrors the paper's deployment platform: an STM32F072 Cortex-M0.
// This module defines the decoded instruction form shared by the assembler, decoder,
// disassembler and CPU executor. Encodings follow the ARMv6-M Architecture Reference Manual;
// the subset covers everything the inference kernels and their tests need (all Thumb-1
// data-processing, load/store, stack, extend/reverse, branch and BL instructions; no system
// instructions).

#ifndef NEUROC_SRC_ISA_ISA_H_
#define NEUROC_SRC_ISA_ISA_H_

#include <cstdint>
#include <string>

namespace neuroc {

// Register numbers: r0..r12, sp=13, lr=14, pc=15.
inline constexpr uint8_t kRegSp = 13;
inline constexpr uint8_t kRegLr = 14;
inline constexpr uint8_t kRegPc = 15;

enum class Op : uint8_t {
  kInvalid = 0,
  // Shift (immediate).
  kLslImm, kLsrImm, kAsrImm,
  // Add/subtract register and 3-bit immediate.
  kAddReg, kSubReg, kAddImm3, kSubImm3,
  // Move/compare/add/subtract 8-bit immediate.
  kMovImm, kCmpImm, kAddImm8, kSubImm8,
  // Data processing (register).
  kAnd, kEor, kLslReg, kLsrReg, kAsrReg, kAdc, kSbc, kRor, kTst, kNeg, kCmpReg, kCmn,
  kOrr, kMul, kBic, kMvn,
  // High-register operations and branch-exchange.
  kAddHi, kCmpHi, kMovHi, kBx, kBlx,
  // PC-relative literal load.
  kLdrLit,
  // Load/store with register offset.
  kStrReg, kStrhReg, kStrbReg, kLdrsbReg, kLdrReg, kLdrhReg, kLdrbReg, kLdrshReg,
  // Load/store with immediate offset.
  kStrImm, kLdrImm, kStrbImm, kLdrbImm, kStrhImm, kLdrhImm,
  // SP-relative load/store and address generation.
  kStrSp, kLdrSp, kAdr, kAddSpImm,
  // SP adjustment.
  kAddSp7, kSubSp7,
  // Extend and byte-reverse.
  kSxth, kSxtb, kUxth, kUxtb, kRev, kRev16, kRevsh,
  // Stack multiple.
  kPush, kPop,
  // Load/store multiple, increment-after with writeback (LDMIA/STMIA).
  kLdm, kStm,
  // Hints and control flow.
  kNop, kBcond, kB, kBl, kUdf,
};

enum class Cond : uint8_t {
  kEq = 0, kNe = 1, kCs = 2, kCc = 3, kMi = 4, kPl = 5, kVs = 6, kVc = 7,
  kHi = 8, kLs = 9, kGe = 10, kLt = 11, kGt = 12, kLe = 13, kAl = 14,
};

// One decoded instruction. Field meaning depends on `op`:
//   rd/rn/rm — destination / first / second register operands
//   imm      — immediate (shift amount, offset in bytes, or signed branch offset in bytes)
//   reglist  — PUSH/POP register bitmask (bit 8 = LR for PUSH, PC for POP)
//   cond     — kBcond condition
struct Instr {
  Op op = Op::kInvalid;
  uint8_t rd = 0;
  uint8_t rn = 0;
  uint8_t rm = 0;
  int32_t imm = 0;
  uint16_t reglist = 0;
  Cond cond = Cond::kAl;
  // Size in halfwords (1, or 2 for BL).
  uint8_t length = 1;
};

const char* OpName(Op op);
const char* CondName(Cond cond);
const char* RegName(uint8_t reg);

}  // namespace neuroc

#endif  // NEUROC_SRC_ISA_ISA_H_
