// Textual form of decoded instructions, for tests, traces and debugging.

#ifndef NEUROC_SRC_ISA_DISASSEMBLER_H_
#define NEUROC_SRC_ISA_DISASSEMBLER_H_

#include <string>

#include "src/isa/isa.h"

namespace neuroc {

// Renders `in` as assembly text. `addr` is the instruction address, used to print absolute
// branch targets.
std::string Disassemble(const Instr& in, uint32_t addr = 0);

}  // namespace neuroc

#endif  // NEUROC_SRC_ISA_DISASSEMBLER_H_
