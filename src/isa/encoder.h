// Encodes decoded instructions into ARMv6-M halfwords (little-endian program order).

#ifndef NEUROC_SRC_ISA_ENCODER_H_
#define NEUROC_SRC_ISA_ENCODER_H_

#include <cstdint>

#include "src/isa/isa.h"

namespace neuroc {

// Encodes `instr` into `hw[0..1]`. Returns the number of halfwords written (1 or 2).
// Aborts (NEUROC_CHECK) on operands that do not fit the encoding — the assembler validates
// ranges before calling.
int EncodeInstr(const Instr& instr, uint16_t hw[2]);

}  // namespace neuroc

#endif  // NEUROC_SRC_ISA_ENCODER_H_
