#include "src/isa/isa.h"

namespace neuroc {

const char* OpName(Op op) {
  switch (op) {
    case Op::kInvalid: return "invalid";
    case Op::kLslImm: return "lsls";
    case Op::kLsrImm: return "lsrs";
    case Op::kAsrImm: return "asrs";
    case Op::kAddReg: return "adds";
    case Op::kSubReg: return "subs";
    case Op::kAddImm3: return "adds";
    case Op::kSubImm3: return "subs";
    case Op::kMovImm: return "movs";
    case Op::kCmpImm: return "cmp";
    case Op::kAddImm8: return "adds";
    case Op::kSubImm8: return "subs";
    case Op::kAnd: return "ands";
    case Op::kEor: return "eors";
    case Op::kLslReg: return "lsls";
    case Op::kLsrReg: return "lsrs";
    case Op::kAsrReg: return "asrs";
    case Op::kAdc: return "adcs";
    case Op::kSbc: return "sbcs";
    case Op::kRor: return "rors";
    case Op::kTst: return "tst";
    case Op::kNeg: return "rsbs";
    case Op::kCmpReg: return "cmp";
    case Op::kCmn: return "cmn";
    case Op::kOrr: return "orrs";
    case Op::kMul: return "muls";
    case Op::kBic: return "bics";
    case Op::kMvn: return "mvns";
    case Op::kAddHi: return "add";
    case Op::kCmpHi: return "cmp";
    case Op::kMovHi: return "mov";
    case Op::kBx: return "bx";
    case Op::kBlx: return "blx";
    case Op::kLdrLit: return "ldr";
    case Op::kStrReg: return "str";
    case Op::kStrhReg: return "strh";
    case Op::kStrbReg: return "strb";
    case Op::kLdrsbReg: return "ldrsb";
    case Op::kLdrReg: return "ldr";
    case Op::kLdrhReg: return "ldrh";
    case Op::kLdrbReg: return "ldrb";
    case Op::kLdrshReg: return "ldrsh";
    case Op::kStrImm: return "str";
    case Op::kLdrImm: return "ldr";
    case Op::kStrbImm: return "strb";
    case Op::kLdrbImm: return "ldrb";
    case Op::kStrhImm: return "strh";
    case Op::kLdrhImm: return "ldrh";
    case Op::kStrSp: return "str";
    case Op::kLdrSp: return "ldr";
    case Op::kAdr: return "adr";
    case Op::kAddSpImm: return "add";
    case Op::kAddSp7: return "add";
    case Op::kSubSp7: return "sub";
    case Op::kSxth: return "sxth";
    case Op::kSxtb: return "sxtb";
    case Op::kUxth: return "uxth";
    case Op::kUxtb: return "uxtb";
    case Op::kRev: return "rev";
    case Op::kRev16: return "rev16";
    case Op::kRevsh: return "revsh";
    case Op::kPush: return "push";
    case Op::kPop: return "pop";
    case Op::kLdm: return "ldmia";
    case Op::kStm: return "stmia";
    case Op::kNop: return "nop";
    case Op::kBcond: return "b";
    case Op::kB: return "b";
    case Op::kBl: return "bl";
    case Op::kUdf: return "udf";
  }
  return "?";
}

const char* CondName(Cond cond) {
  switch (cond) {
    case Cond::kEq: return "eq";
    case Cond::kNe: return "ne";
    case Cond::kCs: return "cs";
    case Cond::kCc: return "cc";
    case Cond::kMi: return "mi";
    case Cond::kPl: return "pl";
    case Cond::kVs: return "vs";
    case Cond::kVc: return "vc";
    case Cond::kHi: return "hi";
    case Cond::kLs: return "ls";
    case Cond::kGe: return "ge";
    case Cond::kLt: return "lt";
    case Cond::kGt: return "gt";
    case Cond::kLe: return "le";
    case Cond::kAl: return "";
  }
  return "?";
}

const char* RegName(uint8_t reg) {
  static const char* kNames[16] = {"r0", "r1", "r2",  "r3",  "r4", "r5", "r6", "r7",
                                   "r8", "r9", "r10", "r11", "r12", "sp", "lr", "pc"};
  return reg < 16 ? kNames[reg] : "?";
}

}  // namespace neuroc
