#include "src/isa/encoder.h"

#include "src/common/check.h"

namespace neuroc {

namespace {

uint16_t Lo3(uint8_t r) {
  NEUROC_CHECK(r < 8);
  return r;
}

uint16_t Imm5(int32_t v) {
  NEUROC_CHECK(v >= 0 && v < 32);
  return static_cast<uint16_t>(v);
}

uint16_t Imm8(int32_t v) {
  NEUROC_CHECK(v >= 0 && v < 256);
  return static_cast<uint16_t>(v);
}

// Data-processing (register) opcode field.
uint16_t DpOpcode(Op op) {
  switch (op) {
    case Op::kAnd: return 0;
    case Op::kEor: return 1;
    case Op::kLslReg: return 2;
    case Op::kLsrReg: return 3;
    case Op::kAsrReg: return 4;
    case Op::kAdc: return 5;
    case Op::kSbc: return 6;
    case Op::kRor: return 7;
    case Op::kTst: return 8;
    case Op::kNeg: return 9;
    case Op::kCmpReg: return 10;
    case Op::kCmn: return 11;
    case Op::kOrr: return 12;
    case Op::kMul: return 13;
    case Op::kBic: return 14;
    case Op::kMvn: return 15;
    default:
      NEUROC_CHECK(false);
      return 0;
  }
}

uint16_t LoadStoreRegOpB(Op op) {
  switch (op) {
    case Op::kStrReg: return 0;
    case Op::kStrhReg: return 1;
    case Op::kStrbReg: return 2;
    case Op::kLdrsbReg: return 3;
    case Op::kLdrReg: return 4;
    case Op::kLdrhReg: return 5;
    case Op::kLdrbReg: return 6;
    case Op::kLdrshReg: return 7;
    default:
      NEUROC_CHECK(false);
      return 0;
  }
}

}  // namespace

int EncodeInstr(const Instr& in, uint16_t hw[2]) {
  switch (in.op) {
    case Op::kLslImm:
      hw[0] = 0x0000 | (Imm5(in.imm) << 6) | (Lo3(in.rm) << 3) | Lo3(in.rd);
      return 1;
    case Op::kLsrImm:
      hw[0] = 0x0800 | (Imm5(in.imm) << 6) | (Lo3(in.rm) << 3) | Lo3(in.rd);
      return 1;
    case Op::kAsrImm:
      hw[0] = 0x1000 | (Imm5(in.imm) << 6) | (Lo3(in.rm) << 3) | Lo3(in.rd);
      return 1;
    case Op::kAddReg:
      hw[0] = 0x1800 | (Lo3(in.rm) << 6) | (Lo3(in.rn) << 3) | Lo3(in.rd);
      return 1;
    case Op::kSubReg:
      hw[0] = 0x1A00 | (Lo3(in.rm) << 6) | (Lo3(in.rn) << 3) | Lo3(in.rd);
      return 1;
    case Op::kAddImm3:
      NEUROC_CHECK(in.imm >= 0 && in.imm < 8);
      hw[0] = 0x1C00 | (static_cast<uint16_t>(in.imm) << 6) | (Lo3(in.rn) << 3) | Lo3(in.rd);
      return 1;
    case Op::kSubImm3:
      NEUROC_CHECK(in.imm >= 0 && in.imm < 8);
      hw[0] = 0x1E00 | (static_cast<uint16_t>(in.imm) << 6) | (Lo3(in.rn) << 3) | Lo3(in.rd);
      return 1;
    case Op::kMovImm:
      hw[0] = 0x2000 | (Lo3(in.rd) << 8) | Imm8(in.imm);
      return 1;
    case Op::kCmpImm:
      hw[0] = 0x2800 | (Lo3(in.rn) << 8) | Imm8(in.imm);
      return 1;
    case Op::kAddImm8:
      hw[0] = 0x3000 | (Lo3(in.rd) << 8) | Imm8(in.imm);
      return 1;
    case Op::kSubImm8:
      hw[0] = 0x3800 | (Lo3(in.rd) << 8) | Imm8(in.imm);
      return 1;
    case Op::kAnd:
    case Op::kEor:
    case Op::kLslReg:
    case Op::kLsrReg:
    case Op::kAsrReg:
    case Op::kAdc:
    case Op::kSbc:
    case Op::kRor:
    case Op::kTst:
    case Op::kNeg:
    case Op::kCmpReg:
    case Op::kCmn:
    case Op::kOrr:
    case Op::kMul:
    case Op::kBic:
    case Op::kMvn:
      hw[0] = 0x4000 | (DpOpcode(in.op) << 6) | (Lo3(in.rm) << 3) | Lo3(in.rd);
      return 1;
    case Op::kAddHi: {
      NEUROC_CHECK(in.rd < 16 && in.rm < 16);
      const uint16_t dn = (in.rd >> 3) & 1;
      hw[0] = 0x4400 | (dn << 7) | (static_cast<uint16_t>(in.rm) << 3) | (in.rd & 7);
      return 1;
    }
    case Op::kCmpHi: {
      NEUROC_CHECK(in.rn < 16 && in.rm < 16);
      const uint16_t dn = (in.rn >> 3) & 1;
      hw[0] = 0x4500 | (dn << 7) | (static_cast<uint16_t>(in.rm) << 3) | (in.rn & 7);
      return 1;
    }
    case Op::kMovHi: {
      NEUROC_CHECK(in.rd < 16 && in.rm < 16);
      const uint16_t dn = (in.rd >> 3) & 1;
      hw[0] = 0x4600 | (dn << 7) | (static_cast<uint16_t>(in.rm) << 3) | (in.rd & 7);
      return 1;
    }
    case Op::kBx:
      NEUROC_CHECK(in.rm < 16);
      hw[0] = 0x4700 | (static_cast<uint16_t>(in.rm) << 3);
      return 1;
    case Op::kBlx:
      NEUROC_CHECK(in.rm < 16);
      hw[0] = 0x4780 | (static_cast<uint16_t>(in.rm) << 3);
      return 1;
    case Op::kLdrLit:
      NEUROC_CHECK(in.imm >= 0 && in.imm < 1024 && in.imm % 4 == 0);
      hw[0] = 0x4800 | (Lo3(in.rd) << 8) | static_cast<uint16_t>(in.imm / 4);
      return 1;
    case Op::kStrReg:
    case Op::kStrhReg:
    case Op::kStrbReg:
    case Op::kLdrsbReg:
    case Op::kLdrReg:
    case Op::kLdrhReg:
    case Op::kLdrbReg:
    case Op::kLdrshReg:
      hw[0] = 0x5000 | (LoadStoreRegOpB(in.op) << 9) | (Lo3(in.rm) << 6) | (Lo3(in.rn) << 3) |
              Lo3(in.rd);
      return 1;
    case Op::kStrImm:
      NEUROC_CHECK(in.imm >= 0 && in.imm < 128 && in.imm % 4 == 0);
      hw[0] = 0x6000 | (static_cast<uint16_t>(in.imm / 4) << 6) | (Lo3(in.rn) << 3) |
              Lo3(in.rd);
      return 1;
    case Op::kLdrImm:
      NEUROC_CHECK(in.imm >= 0 && in.imm < 128 && in.imm % 4 == 0);
      hw[0] = 0x6800 | (static_cast<uint16_t>(in.imm / 4) << 6) | (Lo3(in.rn) << 3) |
              Lo3(in.rd);
      return 1;
    case Op::kStrbImm:
      hw[0] = 0x7000 | (Imm5(in.imm) << 6) | (Lo3(in.rn) << 3) | Lo3(in.rd);
      return 1;
    case Op::kLdrbImm:
      hw[0] = 0x7800 | (Imm5(in.imm) << 6) | (Lo3(in.rn) << 3) | Lo3(in.rd);
      return 1;
    case Op::kStrhImm:
      NEUROC_CHECK(in.imm >= 0 && in.imm < 64 && in.imm % 2 == 0);
      hw[0] = 0x8000 | (static_cast<uint16_t>(in.imm / 2) << 6) | (Lo3(in.rn) << 3) |
              Lo3(in.rd);
      return 1;
    case Op::kLdrhImm:
      NEUROC_CHECK(in.imm >= 0 && in.imm < 64 && in.imm % 2 == 0);
      hw[0] = 0x8800 | (static_cast<uint16_t>(in.imm / 2) << 6) | (Lo3(in.rn) << 3) |
              Lo3(in.rd);
      return 1;
    case Op::kStrSp:
      NEUROC_CHECK(in.imm >= 0 && in.imm < 1024 && in.imm % 4 == 0);
      hw[0] = 0x9000 | (Lo3(in.rd) << 8) | static_cast<uint16_t>(in.imm / 4);
      return 1;
    case Op::kLdrSp:
      NEUROC_CHECK(in.imm >= 0 && in.imm < 1024 && in.imm % 4 == 0);
      hw[0] = 0x9800 | (Lo3(in.rd) << 8) | static_cast<uint16_t>(in.imm / 4);
      return 1;
    case Op::kAdr:
      NEUROC_CHECK(in.imm >= 0 && in.imm < 1024 && in.imm % 4 == 0);
      hw[0] = 0xA000 | (Lo3(in.rd) << 8) | static_cast<uint16_t>(in.imm / 4);
      return 1;
    case Op::kAddSpImm:
      NEUROC_CHECK(in.imm >= 0 && in.imm < 1024 && in.imm % 4 == 0);
      hw[0] = 0xA800 | (Lo3(in.rd) << 8) | static_cast<uint16_t>(in.imm / 4);
      return 1;
    case Op::kAddSp7:
      NEUROC_CHECK(in.imm >= 0 && in.imm < 512 && in.imm % 4 == 0);
      hw[0] = 0xB000 | static_cast<uint16_t>(in.imm / 4);
      return 1;
    case Op::kSubSp7:
      NEUROC_CHECK(in.imm >= 0 && in.imm < 512 && in.imm % 4 == 0);
      hw[0] = 0xB080 | static_cast<uint16_t>(in.imm / 4);
      return 1;
    case Op::kSxth:
      hw[0] = 0xB200 | (Lo3(in.rm) << 3) | Lo3(in.rd);
      return 1;
    case Op::kSxtb:
      hw[0] = 0xB240 | (Lo3(in.rm) << 3) | Lo3(in.rd);
      return 1;
    case Op::kUxth:
      hw[0] = 0xB280 | (Lo3(in.rm) << 3) | Lo3(in.rd);
      return 1;
    case Op::kUxtb:
      hw[0] = 0xB2C0 | (Lo3(in.rm) << 3) | Lo3(in.rd);
      return 1;
    case Op::kRev:
      hw[0] = 0xBA00 | (Lo3(in.rm) << 3) | Lo3(in.rd);
      return 1;
    case Op::kRev16:
      hw[0] = 0xBA40 | (Lo3(in.rm) << 3) | Lo3(in.rd);
      return 1;
    case Op::kRevsh:
      hw[0] = 0xBAC0 | (Lo3(in.rm) << 3) | Lo3(in.rd);
      return 1;
    case Op::kPush:
      NEUROC_CHECK((in.reglist & ~0x1FFu) == 0 && in.reglist != 0);
      hw[0] = 0xB400 | in.reglist;
      return 1;
    case Op::kPop:
      NEUROC_CHECK((in.reglist & ~0x1FFu) == 0 && in.reglist != 0);
      hw[0] = 0xBC00 | in.reglist;
      return 1;
    case Op::kNop:
      hw[0] = 0xBF00;
      return 1;
    case Op::kStm:
      NEUROC_CHECK((in.reglist & ~0xFFu) == 0 && in.reglist != 0);
      hw[0] = 0xC000 | (Lo3(in.rn) << 8) | in.reglist;
      return 1;
    case Op::kLdm:
      NEUROC_CHECK((in.reglist & ~0xFFu) == 0 && in.reglist != 0);
      hw[0] = 0xC800 | (Lo3(in.rn) << 8) | in.reglist;
      return 1;
    case Op::kBcond: {
      NEUROC_CHECK(in.cond != Cond::kAl);
      NEUROC_CHECK(in.imm >= -256 && in.imm <= 254 && in.imm % 2 == 0);
      hw[0] = 0xD000 | (static_cast<uint16_t>(in.cond) << 8) |
              static_cast<uint16_t>((in.imm >> 1) & 0xFF);
      return 1;
    }
    case Op::kB:
      NEUROC_CHECK(in.imm >= -2048 && in.imm <= 2046 && in.imm % 2 == 0);
      hw[0] = 0xE000 | static_cast<uint16_t>((in.imm >> 1) & 0x7FF);
      return 1;
    case Op::kBl: {
      NEUROC_CHECK(in.imm % 2 == 0);
      const int32_t offset = in.imm;
      NEUROC_CHECK(offset >= -(1 << 24) && offset < (1 << 24));
      const uint32_t s = (offset >> 24) & 1;
      const uint32_t i1 = (offset >> 23) & 1;
      const uint32_t i2 = (offset >> 22) & 1;
      const uint32_t imm10 = (offset >> 12) & 0x3FF;
      const uint32_t imm11 = (offset >> 1) & 0x7FF;
      // From the ARM ARM: I1 = NOT(J1 EOR S) => J1 = NOT(I1) EOR S (and likewise for J2).
      const uint32_t j1 = ((~i1) & 1) ^ s;
      const uint32_t j2 = ((~i2) & 1) ^ s;
      hw[0] = 0xF000 | static_cast<uint16_t>(s << 10) | static_cast<uint16_t>(imm10);
      hw[1] = 0xD000 | static_cast<uint16_t>(j1 << 13) | static_cast<uint16_t>(j2 << 11) |
              static_cast<uint16_t>(imm11);
      return 2;
    }
    case Op::kUdf:
      hw[0] = 0xDE00 | Imm8(in.imm);
      return 1;
    case Op::kInvalid:
      break;
  }
  NEUROC_CHECK(false);
  return 0;
}

}  // namespace neuroc
