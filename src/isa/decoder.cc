#include "src/isa/decoder.h"

namespace neuroc {

namespace {

int32_t SignExtend(uint32_t value, int bits) {
  const uint32_t mask = 1u << (bits - 1);
  return static_cast<int32_t>((value ^ mask) - mask);
}

}  // namespace

Instr DecodeInstr(uint16_t hw, uint16_t hw2) {
  Instr in;
  in.length = 1;
  const uint16_t top5 = hw >> 11;

  // Shift immediate / add-sub (000x xxxx).
  if ((hw & 0xE000) == 0x0000) {
    if ((hw & 0x1800) != 0x1800) {
      in.rd = hw & 7;
      in.rm = (hw >> 3) & 7;
      in.imm = (hw >> 6) & 31;
      switch ((hw >> 11) & 3) {
        case 0: in.op = Op::kLslImm; break;
        case 1: in.op = Op::kLsrImm; break;
        case 2: in.op = Op::kAsrImm; break;
      }
      return in;
    }
    in.rd = hw & 7;
    in.rn = (hw >> 3) & 7;
    const uint16_t f = (hw >> 9) & 3;
    if (f == 0) {
      in.op = Op::kAddReg;
      in.rm = (hw >> 6) & 7;
    } else if (f == 1) {
      in.op = Op::kSubReg;
      in.rm = (hw >> 6) & 7;
    } else if (f == 2) {
      in.op = Op::kAddImm3;
      in.imm = (hw >> 6) & 7;
    } else {
      in.op = Op::kSubImm3;
      in.imm = (hw >> 6) & 7;
    }
    return in;
  }

  // Move/compare/add/sub immediate (001x xxxx).
  if ((hw & 0xE000) == 0x2000) {
    const uint16_t r = (hw >> 8) & 7;
    in.imm = hw & 0xFF;
    switch ((hw >> 11) & 3) {
      case 0: in.op = Op::kMovImm; in.rd = static_cast<uint8_t>(r); break;
      case 1: in.op = Op::kCmpImm; in.rn = static_cast<uint8_t>(r); break;
      case 2: in.op = Op::kAddImm8; in.rd = static_cast<uint8_t>(r); break;
      case 3: in.op = Op::kSubImm8; in.rd = static_cast<uint8_t>(r); break;
    }
    return in;
  }

  // Data processing register (0100 00xx).
  if ((hw & 0xFC00) == 0x4000) {
    static constexpr Op kDp[16] = {Op::kAnd, Op::kEor, Op::kLslReg, Op::kLsrReg,
                                   Op::kAsrReg, Op::kAdc, Op::kSbc, Op::kRor,
                                   Op::kTst, Op::kNeg, Op::kCmpReg, Op::kCmn,
                                   Op::kOrr, Op::kMul, Op::kBic, Op::kMvn};
    in.op = kDp[(hw >> 6) & 15];
    in.rd = hw & 7;
    in.rn = in.rd;
    in.rm = (hw >> 3) & 7;
    return in;
  }

  // High-register ops / BX / BLX (0100 01xx).
  if ((hw & 0xFC00) == 0x4400) {
    const uint16_t op2 = (hw >> 8) & 3;
    const uint8_t rm = (hw >> 3) & 15;
    const uint8_t rdn = static_cast<uint8_t>((hw & 7) | ((hw >> 4) & 8));
    if (op2 == 0) {
      in.op = Op::kAddHi;
      in.rd = rdn;
      in.rm = rm;
    } else if (op2 == 1) {
      in.op = Op::kCmpHi;
      in.rn = rdn;
      in.rm = rm;
    } else if (op2 == 2) {
      in.op = Op::kMovHi;
      in.rd = rdn;
      in.rm = rm;
    } else {
      in.op = (hw & 0x80) ? Op::kBlx : Op::kBx;
      in.rm = rm;
    }
    return in;
  }

  // LDR literal (0100 1xxx).
  if ((hw & 0xF800) == 0x4800) {
    in.op = Op::kLdrLit;
    in.rd = (hw >> 8) & 7;
    in.imm = (hw & 0xFF) * 4;
    return in;
  }

  // Load/store register offset (0101 xxxx).
  if ((hw & 0xF000) == 0x5000) {
    static constexpr Op kOps[8] = {Op::kStrReg, Op::kStrhReg, Op::kStrbReg, Op::kLdrsbReg,
                                   Op::kLdrReg, Op::kLdrhReg, Op::kLdrbReg, Op::kLdrshReg};
    in.op = kOps[(hw >> 9) & 7];
    in.rd = hw & 7;
    in.rn = (hw >> 3) & 7;
    in.rm = (hw >> 6) & 7;
    return in;
  }

  // Load/store word/byte immediate (011x xxxx).
  if ((hw & 0xE000) == 0x6000) {
    in.rd = hw & 7;
    in.rn = (hw >> 3) & 7;
    const uint16_t imm5 = (hw >> 6) & 31;
    switch ((hw >> 11) & 3) {
      case 0: in.op = Op::kStrImm; in.imm = imm5 * 4; break;
      case 1: in.op = Op::kLdrImm; in.imm = imm5 * 4; break;
      case 2: in.op = Op::kStrbImm; in.imm = imm5; break;
      case 3: in.op = Op::kLdrbImm; in.imm = imm5; break;
    }
    return in;
  }

  // Load/store halfword immediate (1000 xxxx).
  if ((hw & 0xF000) == 0x8000) {
    in.rd = hw & 7;
    in.rn = (hw >> 3) & 7;
    in.imm = ((hw >> 6) & 31) * 2;
    in.op = (hw & 0x0800) ? Op::kLdrhImm : Op::kStrhImm;
    return in;
  }

  // SP-relative load/store (1001 xxxx).
  if ((hw & 0xF000) == 0x9000) {
    in.rd = (hw >> 8) & 7;
    in.imm = (hw & 0xFF) * 4;
    in.op = (hw & 0x0800) ? Op::kLdrSp : Op::kStrSp;
    return in;
  }

  // ADR / ADD rd, sp (1010 xxxx).
  if ((hw & 0xF000) == 0xA000) {
    in.rd = (hw >> 8) & 7;
    in.imm = (hw & 0xFF) * 4;
    in.op = (hw & 0x0800) ? Op::kAddSpImm : Op::kAdr;
    return in;
  }

  // Miscellaneous (1011 xxxx).
  if ((hw & 0xF000) == 0xB000) {
    if ((hw & 0xFF80) == 0xB000) {
      in.op = Op::kAddSp7;
      in.imm = (hw & 0x7F) * 4;
      return in;
    }
    if ((hw & 0xFF80) == 0xB080) {
      in.op = Op::kSubSp7;
      in.imm = (hw & 0x7F) * 4;
      return in;
    }
    if ((hw & 0xFF00) == 0xB200) {
      static constexpr Op kExt[4] = {Op::kSxth, Op::kSxtb, Op::kUxth, Op::kUxtb};
      in.op = kExt[(hw >> 6) & 3];
      in.rd = hw & 7;
      in.rm = (hw >> 3) & 7;
      return in;
    }
    if ((hw & 0xFE00) == 0xB400) {
      // An empty register list is UNPREDICTABLE in ARMv6-M; treating it as undefined keeps
      // decode(hw) -> encode round-trippable (the encoder rejects empty lists).
      in.op = (hw & 0x1FF) ? Op::kPush : Op::kInvalid;
      in.reglist = hw & 0x1FF;
      return in;
    }
    if ((hw & 0xFE00) == 0xBC00) {
      in.op = (hw & 0x1FF) ? Op::kPop : Op::kInvalid;
      in.reglist = hw & 0x1FF;
      return in;
    }
    if ((hw & 0xFF00) == 0xBA00) {
      const uint16_t op2 = (hw >> 6) & 3;
      in.rd = hw & 7;
      in.rm = (hw >> 3) & 7;
      if (op2 == 0) {
        in.op = Op::kRev;
      } else if (op2 == 1) {
        in.op = Op::kRev16;
      } else if (op2 == 3) {
        in.op = Op::kRevsh;
      } else {
        in.op = Op::kInvalid;
      }
      return in;
    }
    if (hw == 0xBF00) {
      in.op = Op::kNop;
      return in;
    }
    in.op = Op::kInvalid;
    return in;
  }

  // Load/store multiple (1100 xxxx).
  if ((hw & 0xF000) == 0xC000) {
    // Empty register lists are UNPREDICTABLE (see PUSH/POP above).
    in.op = (hw & 0xFF) == 0 ? Op::kInvalid
                             : ((hw & 0x0800) ? Op::kLdm : Op::kStm);
    in.rn = (hw >> 8) & 7;
    in.reglist = hw & 0xFF;
    return in;
  }

  // Conditional branch / UDF / SVC (1101 xxxx).
  if ((hw & 0xF000) == 0xD000) {
    const uint16_t cond = (hw >> 8) & 15;
    if (cond == 14) {
      in.op = Op::kUdf;
      in.imm = hw & 0xFF;
      return in;
    }
    if (cond == 15) {
      in.op = Op::kInvalid;  // SVC unsupported
      return in;
    }
    in.op = Op::kBcond;
    in.cond = static_cast<Cond>(cond);
    in.imm = SignExtend(hw & 0xFF, 8) * 2;
    return in;
  }

  // Unconditional branch (1110 0xxx).
  if ((hw & 0xF800) == 0xE000) {
    in.op = Op::kB;
    in.imm = SignExtend(hw & 0x7FF, 11) * 2;
    return in;
  }

  // BL (1111 0xxx : 11x1 xxxx).
  if ((hw & 0xF800) == 0xF000 && (hw2 & 0xD000) == 0xD000) {
    const uint32_t s = (hw >> 10) & 1;
    const uint32_t imm10 = hw & 0x3FF;
    const uint32_t j1 = (hw2 >> 13) & 1;
    const uint32_t j2 = (hw2 >> 11) & 1;
    const uint32_t imm11 = hw2 & 0x7FF;
    const uint32_t i1 = (~(j1 ^ s)) & 1;
    const uint32_t i2 = (~(j2 ^ s)) & 1;
    const uint32_t raw =
        (s << 24) | (i1 << 23) | (i2 << 22) | (imm10 << 12) | (imm11 << 1);
    in.op = Op::kBl;
    in.imm = SignExtend(raw, 25);
    in.length = 2;
    return in;
  }

  (void)top5;
  in.op = Op::kInvalid;
  return in;
}

}  // namespace neuroc
