#include "src/isa/assembler.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <deque>
#include <optional>
#include <string_view>
#include <unordered_map>

#include "src/common/check.h"
#include "src/isa/encoder.h"
#include "src/isa/isa.h"

namespace neuroc {

uint32_t AssembledProgram::SymbolAddr(const std::string& name) const {
  auto it = symbols.find(name);
  NEUROC_CHECK_MSG(it != symbols.end(), name.c_str());
  return it->second;
}

SymbolTable::SymbolTable(const std::map<std::string, uint32_t>& symbols) {
  std::vector<Entry> sorted;
  sorted.reserve(symbols.size());
  for (const auto& [name, addr] : symbols) {
    sorted.push_back({addr, name});
  }
  // Address order; ties broken by name (map order) so the joined form is deterministic.
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Entry& a, const Entry& b) { return a.addr < b.addr; });
  for (Entry& e : sorted) {
    if (!entries_.empty() && entries_.back().addr == e.addr) {
      entries_.back().name += "/" + e.name;
    } else {
      entries_.push_back(std::move(e));
    }
  }
}

const SymbolTable::Entry* SymbolTable::Resolve(uint32_t addr) const {
  auto it = std::upper_bound(
      entries_.begin(), entries_.end(), addr,
      [](uint32_t a, const Entry& e) { return a < e.addr; });
  if (it == entries_.begin()) {
    return nullptr;
  }
  return &*std::prev(it);
}

namespace {

// One parsed statement (instruction or directive) with source location for diagnostics.
// Mnemonic and operands are views into the source text (or the impl's lowercase side
// table), so a 100k-line generated kernel parses without per-token string copies.
struct Statement {
  int line_no = 0;
  std::string_view mnemonic;               // lowercase
  std::vector<std::string_view> operands;  // raw operand views, trimmed
};

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool IsAllLower(std::string_view s) {
  return std::none_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isupper(c);
  });
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) {
    ++b;
  }
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) {
    --e;
  }
  return s.substr(b, e - b);
}

[[noreturn]] void Fail(int line_no, const std::string& msg) {
  std::fprintf(stderr, "assembler error at line %d: %s\n", line_no, msg.c_str());
  std::abort();
}

// Splits operands at top-level commas (commas inside [] or {} do not split).
std::vector<std::string_view> SplitOperands(std::string_view s, int line_no) {
  std::vector<std::string_view> out;
  int depth = 0;
  size_t start = 0;
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '[' || c == '{') {
      ++depth;
    } else if (c == ']' || c == '}') {
      --depth;
      if (depth < 0) {
        Fail(line_no, "unbalanced brackets");
      }
    } else if (c == ',' && depth == 0) {
      out.push_back(Trim(s.substr(start, i - start)));
      start = i + 1;
    }
  }
  const std::string_view last = Trim(s.substr(start));
  if (!last.empty()) {
    out.push_back(last);
  }
  if (depth != 0) {
    Fail(line_no, "unbalanced brackets");
  }
  return out;
}

std::optional<uint8_t> TryParseReg(std::string_view raw) {
  const std::string s = ToLower(Trim(raw));  // registers fit in SSO, no heap traffic
  if (s == "sp") {
    return kRegSp;
  }
  if (s == "lr") {
    return kRegLr;
  }
  if (s == "pc") {
    return kRegPc;
  }
  if (s.size() >= 2 && s[0] == 'r') {
    int v = 0;
    for (size_t i = 1; i < s.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(s[i]))) {
        return std::nullopt;
      }
      v = v * 10 + (s[i] - '0');
    }
    if (v <= 15) {
      return static_cast<uint8_t>(v);
    }
  }
  return std::nullopt;
}

uint8_t ParseReg(std::string_view raw, int line_no) {
  auto r = TryParseReg(raw);
  if (!r) {
    Fail(line_no, "bad register: " + std::string(raw));
  }
  return *r;
}

bool IsNumber(std::string_view s) {
  if (s.empty()) {
    return false;
  }
  size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i >= s.size()) {
    return false;
  }
  if (s.size() > i + 2 && s[i] == '0' && (s[i + 1] == 'x' || s[i + 1] == 'X')) {
    return true;
  }
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) {
      return false;
    }
  }
  return true;
}

int64_t ParseNumber(std::string_view s, int line_no) {
  if (!IsNumber(s)) {
    Fail(line_no, "bad number: " + std::string(s));
  }
  bool negate = false;
  size_t i = 0;
  if (s[0] == '-' || s[0] == '+') {
    negate = (s[0] == '-');
    i = 1;
  }
  int base = 10;
  if (s.size() > i + 2 && s[i] == '0' && (s[i + 1] == 'x' || s[i + 1] == 'X')) {
    base = 16;
    i += 2;
  }
  int64_t v = 0;
  std::from_chars(s.data() + i, s.data() + s.size(), v, base);
  return negate ? -v : v;
}

// Parses `#imm`.
int32_t ParseImm(std::string_view raw, int line_no) {
  const std::string_view s = Trim(raw);
  if (s.empty() || s[0] != '#') {
    Fail(line_no, "expected immediate: " + std::string(raw));
  }
  return static_cast<int32_t>(ParseNumber(Trim(s.substr(1)), line_no));
}

bool IsImm(std::string_view raw) { return !raw.empty() && Trim(raw)[0] == '#'; }

// Parses `{r0, r2-r4, lr}` into a PUSH/POP reglist mask. lr/pc map to bit 8.
uint16_t ParseRegList(std::string_view raw, int line_no) {
  std::string_view s = Trim(raw);
  if (s.size() < 2 || s.front() != '{' || s.back() != '}') {
    Fail(line_no, "expected register list: " + std::string(raw));
  }
  s = s.substr(1, s.size() - 2);
  uint16_t mask = 0;
  for (const std::string_view part : SplitOperands(s, line_no)) {
    const size_t dash = part.find('-');
    if (dash != std::string_view::npos) {
      const uint8_t lo = ParseReg(part.substr(0, dash), line_no);
      const uint8_t hi = ParseReg(part.substr(dash + 1), line_no);
      if (lo > hi || hi > 7) {
        Fail(line_no, "bad register range: " + std::string(part));
      }
      for (uint8_t r = lo; r <= hi; ++r) {
        mask |= static_cast<uint16_t>(1u << r);
      }
    } else {
      const uint8_t r = ParseReg(part, line_no);
      if (r < 8) {
        mask |= static_cast<uint16_t>(1u << r);
      } else if (r == kRegLr || r == kRegPc) {
        mask |= 0x100;
      } else {
        Fail(line_no, "register not allowed in list: " + std::string(part));
      }
    }
  }
  return mask;
}

// Memory operand forms: [rn], [rn, #imm], [rn, rm].
struct MemOperand {
  uint8_t rn = 0;
  bool has_reg_offset = false;
  uint8_t rm = 0;
  int32_t imm = 0;
};

MemOperand ParseMem(std::string_view raw, int line_no) {
  std::string_view s = Trim(raw);
  if (s.size() < 2 || s.front() != '[' || s.back() != ']') {
    Fail(line_no, "expected memory operand: " + std::string(raw));
  }
  s = s.substr(1, s.size() - 2);
  const std::vector<std::string_view> parts = SplitOperands(s, line_no);
  MemOperand m;
  if (parts.empty()) {
    Fail(line_no, "empty memory operand");
  }
  m.rn = ParseReg(parts[0], line_no);
  if (parts.size() == 2) {
    if (IsImm(parts[1])) {
      m.imm = ParseImm(parts[1], line_no);
    } else {
      m.has_reg_offset = true;
      m.rm = ParseReg(parts[1], line_no);
    }
  } else if (parts.size() > 2) {
    Fail(line_no, "too many memory operand parts: " + std::string(raw));
  }
  return m;
}

bool IsIdentifier(std::string_view s) {
  if (s.empty()) {
    return false;
  }
  if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_' && s[0] != '.') {
    return false;
  }
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != '.') {
      return false;
    }
  }
  return true;
}

// A value that is either a literal number or a label reference. The label is a view into
// the source text, which outlives the assembly passes.
struct ValueRef {
  bool is_label = false;
  std::string_view label;
  int64_t value = 0;
};

ValueRef ParseValueRef(std::string_view raw, int line_no) {
  const std::string_view s = Trim(raw);
  ValueRef v;
  if (IsNumber(s)) {
    v.value = ParseNumber(s, line_no);
  } else if (IsIdentifier(s)) {
    v.is_label = true;
    v.label = s;
  } else {
    Fail(line_no, "expected number or label: " + std::string(raw));
  }
  return v;
}

Cond ParseCondSuffix(std::string_view suffix, int line_no) {
  static const std::pair<const char*, Cond> kMap[] = {
      {"eq", Cond::kEq}, {"ne", Cond::kNe}, {"cs", Cond::kCs}, {"hs", Cond::kCs},
      {"cc", Cond::kCc}, {"lo", Cond::kCc}, {"mi", Cond::kMi}, {"pl", Cond::kPl},
      {"vs", Cond::kVs}, {"vc", Cond::kVc}, {"hi", Cond::kHi}, {"ls", Cond::kLs},
      {"ge", Cond::kGe}, {"lt", Cond::kLt}, {"gt", Cond::kGt}, {"le", Cond::kLe}};
  for (const auto& [name, cond] : kMap) {
    if (suffix == name) {
      return cond;
    }
  }
  Fail(line_no, "bad condition suffix: " + std::string(suffix));
}

// ---------------------------------------------------------------------------
// The assembler proper.
// ---------------------------------------------------------------------------

class AssemblerImpl {
 public:
  AssemblerImpl(const std::string& source, uint32_t base_addr) : base_(base_addr) {
    NEUROC_CHECK(base_addr % 4 == 0);
    ParseSource(source);
    LayoutPass();
    EmitPass();
  }

  AssembledProgram Take() {
    AssembledProgram p;
    p.base_addr = base_;
    p.bytes = std::move(bytes_);
    // The public symbol table stays an ordered map (deterministic iteration for tools);
    // the hash map is an internal lookup structure only.
    p.symbols.insert(symbols_.begin(), symbols_.end());
    return p;
  }

 private:
  struct Item {
    Statement stmt;
    uint32_t offset = 0;  // from base
    uint32_t size = 0;    // bytes
    // For `ldr rX, =value`: index into pool entries.
    int pool_index = -1;
  };

  struct PoolEntry {
    ValueRef value;
    uint32_t offset = 0;  // assigned at layout
  };

  // Single scan over the source text. Every line, label, mnemonic and operand is a view
  // into `source` (which the caller keeps alive for the lifetime of the impl), so parsing
  // a 100k-line generated kernel does no per-line or per-token string copies; the items
  // array itself is reserved up front from the newline count.
  void ParseSource(const std::string& source) {
    const std::string_view src(source);
    const size_t line_estimate =
        1 + static_cast<size_t>(std::count(src.begin(), src.end(), '\n'));
    items_.reserve(line_estimate);
    item_labels_.reserve(line_estimate);
    int line_no = 0;
    size_t pos = 0;
    while (pos <= src.size()) {
      size_t eol = src.find('\n', pos);
      if (eol == std::string_view::npos) {
        eol = src.size();
      }
      std::string_view line = src.substr(pos, eol - pos);
      pos = eol + 1;
      ++line_no;
      // Strip comments: truncate at the earliest of `@`, `;`, `//`.
      for (size_t c = line.find_first_of("@;/"); c != std::string_view::npos;
           c = line.find_first_of("@;/", c + 1)) {
        if (line[c] != '/' || (c + 1 < line.size() && line[c + 1] == '/')) {
          line = line.substr(0, c);
          break;
        }
      }
      line = Trim(line);
      // Labels (possibly several, possibly followed by a statement).
      for (;;) {
        const size_t colon = line.find(':');
        if (colon == std::string_view::npos) {
          break;
        }
        const std::string_view label = Trim(line.substr(0, colon));
        if (!IsIdentifier(label)) {
          Fail(line_no, "bad label: " + std::string(label));
        }
        pending_labels_.push_back(label);
        line = Trim(line.substr(colon + 1));
      }
      if (line.empty()) {
        continue;
      }
      Statement stmt;
      stmt.line_no = line_no;
      const size_t sp = line.find_first_of(" \t");
      const std::string_view mnemonic = line.substr(0, sp);
      // Generated sources are all-lowercase already; hand-written uppercase mnemonics
      // take the slow path through an owned lowercase side table.
      stmt.mnemonic =
          IsAllLower(mnemonic) ? mnemonic : std::string_view(owned_.emplace_back(ToLower(mnemonic)));
      if (sp != std::string_view::npos) {
        stmt.operands = SplitOperands(Trim(line.substr(sp + 1)), line_no);
      }
      Item item;
      item.stmt = std::move(stmt);
      item.size = SizeOf(item);
      // Attach any pending labels to this item (resolved to its offset at layout).
      item_labels_.push_back(std::move(pending_labels_));
      pending_labels_.clear();
      items_.push_back(std::move(item));
    }
    // Labels at end of file point at the end address.
    trailing_labels_ = std::move(pending_labels_);
  }

  // Size of a statement in bytes (before layout; `.align` gets an upper bound, fixed later).
  uint32_t SizeOf(Item& item) {
    const Statement& s = item.stmt;
    if (s.mnemonic == ".word") {
      return static_cast<uint32_t>(4 * s.operands.size());
    }
    if (s.mnemonic == ".half") {
      return static_cast<uint32_t>(2 * s.operands.size());
    }
    if (s.mnemonic == ".byte") {
      return static_cast<uint32_t>(s.operands.size());
    }
    if (s.mnemonic == ".align" || s.mnemonic == ".pool") {
      return 0;  // handled during layout
    }
    if (s.mnemonic == "bl") {
      return 4;
    }
    if (s.mnemonic == "ldr" && s.operands.size() == 2 && !s.operands[1].empty() &&
        Trim(s.operands[1])[0] == '=') {
      item.pool_index = static_cast<int>(pool_.size());
      PoolEntry entry;
      entry.value = ParseValueRef(Trim(s.operands[1]).substr(1), s.line_no);
      pool_.push_back(entry);
      return 2;
    }
    return 2;  // every other supported instruction is one halfword
  }

  void LayoutPass() {
    uint32_t offset = 0;
    for (size_t i = 0; i < items_.size(); ++i) {
      Item& item = items_[i];
      const Statement& s = item.stmt;
      if (s.mnemonic == ".align") {
        const int n = s.operands.empty()
                          ? 2
                          : static_cast<int>(ParseNumber(s.operands[0], s.line_no));
        const uint32_t align = 1u << n;
        const uint32_t aligned = (offset + align - 1) & ~(align - 1);
        item.size = aligned - offset;
      } else if (s.mnemonic == ".word") {
        // .word data must be 4-aligned; insert implicit padding.
        const uint32_t aligned = (offset + 3u) & ~3u;
        item.size = static_cast<uint32_t>(aligned - offset + 4 * s.operands.size());
      } else if (s.mnemonic == ".half") {
        const uint32_t aligned = (offset + 1u) & ~1u;
        item.size = static_cast<uint32_t>(aligned - offset + 2 * s.operands.size());
      }
      item.offset = offset;
      for (const std::string_view label : item_labels_[i]) {
        // Labels bind to the aligned start of data for .word/.half.
        uint32_t label_off = offset;
        if (s.mnemonic == ".word") {
          label_off = (offset + 3u) & ~3u;
        } else if (s.mnemonic == ".half") {
          label_off = (offset + 1u) & ~1u;
        }
        DefineSymbol(label, base_ + label_off, item.stmt.line_no);
      }
      offset += item.size;
    }
    // Literal pool at the end, 4-aligned (no padding when there is no pool).
    if (pool_.empty()) {
      total_size_ = offset;
    } else {
      pool_base_ = (offset + 3u) & ~3u;
      for (PoolEntry& e : pool_) {
        e.offset = pool_base_ + 4 * static_cast<uint32_t>(&e - pool_.data());
      }
      total_size_ = pool_base_ + 4 * static_cast<uint32_t>(pool_.size());
    }
    for (const std::string_view label : trailing_labels_) {
      DefineSymbol(label, base_ + total_size_, 0);
    }
  }

  void DefineSymbol(std::string_view name, uint32_t addr, int line_no) {
    if (!symbols_.emplace(std::string(name), addr).second) {
      Fail(line_no, "duplicate label: " + std::string(name));
    }
  }

  uint32_t Resolve(const ValueRef& v, int line_no) const {
    if (!v.is_label) {
      return static_cast<uint32_t>(v.value);
    }
    const auto it = symbols_.find(v.label);  // heterogeneous: no key allocation
    if (it == symbols_.end()) {
      Fail(line_no, "undefined label: " + std::string(v.label));
    }
    return it->second;
  }

  uint32_t ResolveTarget(std::string_view operand, int line_no) const {
    return Resolve(ParseValueRef(operand, line_no), line_no);
  }

  void EmitPass() {
    bytes_.assign(total_size_, 0);
    for (const Item& item : items_) {
      EmitItem(item);
    }
    for (const PoolEntry& e : pool_) {
      Put32(e.offset, Resolve(e.value, 0));
    }
  }

  void Put16(uint32_t offset, uint16_t v) {
    NEUROC_CHECK(offset + 2 <= bytes_.size());
    bytes_[offset] = static_cast<uint8_t>(v & 0xFF);
    bytes_[offset + 1] = static_cast<uint8_t>(v >> 8);
  }

  void Put32(uint32_t offset, uint32_t v) {
    Put16(offset, static_cast<uint16_t>(v & 0xFFFF));
    Put16(offset + 2, static_cast<uint16_t>(v >> 16));
  }

  void EmitInstr(const Item& item, const Instr& in) {
    uint16_t hw[2];
    const int n = EncodeInstr(in, hw);
    Put16(item.offset, hw[0]);
    if (n == 2) {
      Put16(item.offset + 2, hw[1]);
    }
  }

  void EmitItem(const Item& item) {
    const Statement& s = item.stmt;
    const int ln = s.line_no;
    const std::string_view m = s.mnemonic;

    if (m == ".align" || m == ".pool") {
      return;  // padding already zeroed
    }
    if (m == ".word") {
      uint32_t off = (item.offset + 3u) & ~3u;
      for (const std::string_view op : s.operands) {
        Put32(off, Resolve(ParseValueRef(op, ln), ln));
        off += 4;
      }
      return;
    }
    if (m == ".half") {
      uint32_t off = (item.offset + 1u) & ~1u;
      for (const std::string_view op : s.operands) {
        Put16(off, static_cast<uint16_t>(ParseNumber(op, ln)));
        off += 2;
      }
      return;
    }
    if (m == ".byte") {
      uint32_t off = item.offset;
      for (const std::string_view op : s.operands) {
        NEUROC_CHECK(off < bytes_.size());
        bytes_[off++] = static_cast<uint8_t>(ParseNumber(op, ln));
      }
      return;
    }
    EmitInstr(item, BuildInstr(item));
  }

  // Builds the Instr for an instruction statement (the bulk of mnemonic dispatch).
  Instr BuildInstr(const Item& item) {
    const Statement& s = item.stmt;
    const int ln = s.line_no;
    const std::string_view m = s.mnemonic;
    const auto& ops = s.operands;
    const uint32_t pc = base_ + item.offset;  // address of this instruction
    Instr in;

    auto require = [&](size_t n) {
      if (ops.size() != n) {
        Fail(ln, std::string(m) + ": expected " + std::to_string(n) + " operands");
      }
    };
    auto branch_offset = [&](std::string_view target) {
      return static_cast<int32_t>(ResolveTarget(target, ln)) -
             static_cast<int32_t>(pc + 4);
    };

    if (m == "nop") {
      in.op = Op::kNop;
      return in;
    }
    if (m == "udf") {
      in.op = Op::kUdf;
      in.imm = ops.empty() ? 0 : ParseImm(ops[0], ln);
      return in;
    }
    if (m == "bx") {
      require(1);
      in.op = Op::kBx;
      in.rm = ParseReg(ops[0], ln);
      return in;
    }
    if (m == "blx") {
      require(1);
      in.op = Op::kBlx;
      in.rm = ParseReg(ops[0], ln);
      return in;
    }
    if (m == "bl") {
      require(1);
      in.op = Op::kBl;
      in.imm = branch_offset(ops[0]);
      return in;
    }
    if (m == "b") {
      require(1);
      in.op = Op::kB;
      in.imm = branch_offset(ops[0]);
      return in;
    }
    if (m.size() >= 3 && m[0] == 'b' && m != "bic" && m != "bics" && m != "byte") {
      // Conditional branch b<cond>.
      require(1);
      in.op = Op::kBcond;
      in.cond = ParseCondSuffix(m.substr(1), ln);
      in.imm = branch_offset(ops[0]);
      return in;
    }
    if (m == "push" || m == "pop") {
      require(1);
      in.op = (m == "push") ? Op::kPush : Op::kPop;
      in.reglist = ParseRegList(ops[0], ln);
      return in;
    }
    if (m == "ldmia" || m == "stmia" || m == "ldm" || m == "stm") {
      require(2);
      std::string_view base = Trim(ops[0]);
      if (!base.empty() && base.back() == '!') {
        base.remove_suffix(1);
      }
      in.op = (m[0] == 'l') ? Op::kLdm : Op::kStm;
      in.rn = ParseReg(base, ln);
      in.reglist = ParseRegList(ops[1], ln);
      if (in.reglist & ~0xFFu) {
        Fail(ln, "ldm/stm support low registers only");
      }
      return in;
    }
    if (m == "movs") {
      require(2);
      in.rd = ParseReg(ops[0], ln);
      if (IsImm(ops[1])) {
        in.op = Op::kMovImm;
        in.imm = ParseImm(ops[1], ln);
      } else {
        // MOVS rd, rm == LSLS rd, rm, #0.
        in.op = Op::kLslImm;
        in.rm = ParseReg(ops[1], ln);
        in.imm = 0;
      }
      return in;
    }
    if (m == "mov") {
      require(2);
      in.op = Op::kMovHi;
      in.rd = ParseReg(ops[0], ln);
      in.rm = ParseReg(ops[1], ln);
      return in;
    }
    if (m == "adds" || m == "subs") {
      const bool add = (m == "adds");
      if (ops.size() == 2) {
        in.rd = ParseReg(ops[0], ln);
        if (IsImm(ops[1])) {
          in.op = add ? Op::kAddImm8 : Op::kSubImm8;
          in.imm = ParseImm(ops[1], ln);
        } else {
          // adds rd, rm == adds rd, rd, rm.
          in.op = add ? Op::kAddReg : Op::kSubReg;
          in.rn = in.rd;
          in.rm = ParseReg(ops[1], ln);
        }
        return in;
      }
      require(3);
      in.rd = ParseReg(ops[0], ln);
      in.rn = ParseReg(ops[1], ln);
      if (IsImm(ops[2])) {
        const int32_t imm = ParseImm(ops[2], ln);
        if (imm < 8) {
          in.op = add ? Op::kAddImm3 : Op::kSubImm3;
          in.imm = imm;
        } else if (in.rd == in.rn && imm < 256) {
          in.op = add ? Op::kAddImm8 : Op::kSubImm8;
          in.imm = imm;
        } else {
          Fail(ln, "immediate out of range for adds/subs");
        }
      } else {
        in.op = add ? Op::kAddReg : Op::kSubReg;
        in.rm = ParseReg(ops[2], ln);
      }
      return in;
    }
    if (m == "add" || m == "sub") {
      // High-register / SP forms.
      if (ops.size() == 2) {
        const uint8_t rd = ParseReg(ops[0], ln);
        if (rd == kRegSp && IsImm(ops[1])) {
          in.op = (m == "add") ? Op::kAddSp7 : Op::kSubSp7;
          in.imm = ParseImm(ops[1], ln);
          return in;
        }
        if (m == "add") {
          in.op = Op::kAddHi;
          in.rd = rd;
          in.rm = ParseReg(ops[1], ln);
          return in;
        }
        Fail(ln, "unsupported sub form");
      }
      if (ops.size() == 3 && m == "add") {
        const uint8_t rd = ParseReg(ops[0], ln);
        const uint8_t rn = ParseReg(ops[1], ln);
        if (rn == kRegSp && IsImm(ops[2])) {
          in.op = Op::kAddSpImm;
          in.rd = rd;
          in.imm = ParseImm(ops[2], ln);
          return in;
        }
        if (rn == kRegSp && rd == kRegSp && IsImm(ops[2])) {
          in.op = Op::kAddSp7;
          in.imm = ParseImm(ops[2], ln);
          return in;
        }
      }
      Fail(ln, "unsupported add/sub form");
    }
    if (m == "cmp") {
      require(2);
      const uint8_t rn = ParseReg(ops[0], ln);
      if (IsImm(ops[1])) {
        in.op = Op::kCmpImm;
        in.rn = rn;
        in.imm = ParseImm(ops[1], ln);
      } else {
        const uint8_t rm = ParseReg(ops[1], ln);
        if (rn < 8 && rm < 8) {
          in.op = Op::kCmpReg;
          in.rd = rn;  // encoded in rdn slot
          in.rn = rn;
          in.rm = rm;
        } else {
          in.op = Op::kCmpHi;
          in.rn = rn;
          in.rm = rm;
        }
      }
      return in;
    }
    if (m == "lsls" || m == "lsrs" || m == "asrs") {
      if (ops.size() == 3 && IsImm(ops[2])) {
        in.rd = ParseReg(ops[0], ln);
        in.rm = ParseReg(ops[1], ln);
        in.imm = ParseImm(ops[2], ln);
        in.op = (m == "lsls") ? Op::kLslImm : (m == "lsrs") ? Op::kLsrImm : Op::kAsrImm;
        return in;
      }
      require(2);
      in.rd = ParseReg(ops[0], ln);
      in.rn = in.rd;
      in.rm = ParseReg(ops[1], ln);
      in.op = (m == "lsls") ? Op::kLslReg : (m == "lsrs") ? Op::kLsrReg : Op::kAsrReg;
      return in;
    }
    if (m == "rsbs" || m == "negs") {
      // rsbs rd, rn, #0  /  negs rd, rn.
      if (!(ops.size() == 2 || (ops.size() == 3 && ParseImm(ops[2], ln) == 0))) {
        Fail(ln, "rsbs supports only #0");
      }
      in.op = Op::kNeg;
      in.rd = ParseReg(ops[0], ln);
      in.rm = ParseReg(ops[1], ln);
      return in;
    }
    // Two-register data-processing forms (rdn, rm), allowing the redundant 3-op spelling
    // `muls rd, rn, rd`.
    static const std::pair<const char*, Op> kDp2[] = {
        {"ands", Op::kAnd}, {"eors", Op::kEor}, {"adcs", Op::kAdc}, {"sbcs", Op::kSbc},
        {"rors", Op::kRor}, {"tst", Op::kTst},  {"cmn", Op::kCmn},  {"orrs", Op::kOrr},
        {"muls", Op::kMul}, {"bics", Op::kBic}, {"mvns", Op::kMvn}};
    for (const auto& [name, op] : kDp2) {
      if (m == name) {
        if (ops.size() == 3) {
          in.rd = ParseReg(ops[0], ln);
          in.rm = ParseReg(ops[1], ln);
          const uint8_t r2 = ParseReg(ops[2], ln);
          if (r2 != in.rd) {
            Fail(ln, std::string(m) + ": destination must equal last operand");
          }
        } else {
          require(2);
          in.rd = ParseReg(ops[0], ln);
          in.rm = ParseReg(ops[1], ln);
        }
        in.rn = in.rd;
        in.op = op;
        return in;
      }
    }
    if (m == "sxtb" || m == "sxth" || m == "uxtb" || m == "uxth" || m == "rev" ||
        m == "rev16" || m == "revsh") {
      require(2);
      in.rd = ParseReg(ops[0], ln);
      in.rm = ParseReg(ops[1], ln);
      in.op = (m == "sxtb")   ? Op::kSxtb
              : (m == "sxth") ? Op::kSxth
              : (m == "uxtb") ? Op::kUxtb
              : (m == "uxth") ? Op::kUxth
              : (m == "rev")  ? Op::kRev
              : (m == "rev16") ? Op::kRev16
                               : Op::kRevsh;
      return in;
    }
    if (m == "adr") {
      require(2);
      in.op = Op::kAdr;
      in.rd = ParseReg(ops[0], ln);
      const uint32_t target = ResolveTarget(ops[1], ln);
      const uint32_t base = (pc + 4) & ~3u;
      if (target < base || (target - base) % 4 != 0) {
        Fail(ln, "adr target out of range");
      }
      in.imm = static_cast<int32_t>(target - base);
      return in;
    }
    if (m == "ldr" || m == "ldrb" || m == "ldrh" || m == "ldrsb" || m == "ldrsh" ||
        m == "str" || m == "strb" || m == "strh") {
      require(2);
      in.rd = ParseReg(ops[0], ln);
      const std::string_view op1 = Trim(ops[1]);
      if (m == "ldr" && !op1.empty() && op1[0] == '=') {
        // Pooled literal load.
        NEUROC_CHECK(item.pool_index >= 0);
        const uint32_t lit_addr = base_ + pool_[item.pool_index].offset;
        const uint32_t base = (pc + 4) & ~3u;
        if (lit_addr < base || lit_addr - base >= 1024) {
          Fail(ln, "literal pool out of range; add a .pool directive closer to use");
        }
        in.op = Op::kLdrLit;
        in.imm = static_cast<int32_t>(lit_addr - base);
        return in;
      }
      const MemOperand mem = ParseMem(op1, ln);
      if (mem.has_reg_offset) {
        in.rn = mem.rn;
        in.rm = mem.rm;
        in.op = (m == "ldr")    ? Op::kLdrReg
                : (m == "ldrb") ? Op::kLdrbReg
                : (m == "ldrh") ? Op::kLdrhReg
                : (m == "ldrsb") ? Op::kLdrsbReg
                : (m == "ldrsh") ? Op::kLdrshReg
                : (m == "str")   ? Op::kStrReg
                : (m == "strb")  ? Op::kStrbReg
                                 : Op::kStrhReg;
        return in;
      }
      if (mem.rn == kRegSp) {
        if (m == "ldr") {
          in.op = Op::kLdrSp;
        } else if (m == "str") {
          in.op = Op::kStrSp;
        } else {
          Fail(ln, "only word-sized SP-relative access supported");
        }
        in.imm = mem.imm;
        return in;
      }
      if (mem.rn == kRegPc) {
        if (m != "ldr") {
          Fail(ln, "only ldr supports PC-relative access");
        }
        in.op = Op::kLdrLit;
        in.imm = mem.imm;
        return in;
      }
      in.rn = mem.rn;
      in.imm = mem.imm;
      if (m == "ldr") {
        in.op = Op::kLdrImm;
      } else if (m == "str") {
        in.op = Op::kStrImm;
      } else if (m == "ldrb") {
        in.op = Op::kLdrbImm;
      } else if (m == "strb") {
        in.op = Op::kStrbImm;
      } else if (m == "ldrh") {
        in.op = Op::kLdrhImm;
      } else if (m == "strh") {
        in.op = Op::kStrhImm;
      } else {
        Fail(ln, std::string(m) + " has no immediate-offset encoding in Thumb-1");
      }
      return in;
    }
    Fail(ln, "unknown mnemonic: " + std::string(m));
  }

  // Hash map with heterogeneous lookup so branch-target resolution (one per bl/b in a
  // 100k-line unrolled kernel) is O(1) with no temporary std::string keys.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  uint32_t base_;
  std::vector<Item> items_;
  std::vector<std::vector<std::string_view>> item_labels_;
  std::vector<std::string_view> pending_labels_;
  std::vector<std::string_view> trailing_labels_;
  std::vector<PoolEntry> pool_;
  uint32_t pool_base_ = 0;
  uint32_t total_size_ = 0;
  std::unordered_map<std::string, uint32_t, StringHash, std::equal_to<>> symbols_;
  std::deque<std::string> owned_;  // lowercase copies of non-lowercase mnemonics
  std::vector<uint8_t> bytes_;
};

}  // namespace

AssembledProgram Assemble(const std::string& source, uint32_t base_addr) {
  AssemblerImpl impl(source, base_addr);
  return impl.Take();
}

}  // namespace neuroc
