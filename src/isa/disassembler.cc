#include "src/isa/disassembler.h"

#include <cstdio>

namespace neuroc {

namespace {

std::string Hex(uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%x", v);
  return buf;
}

std::string RegList(uint16_t mask, bool pop) {
  std::string s = "{";
  bool first = true;
  for (int r = 0; r < 8; ++r) {
    if (mask & (1 << r)) {
      if (!first) {
        s += ", ";
      }
      s += RegName(static_cast<uint8_t>(r));
      first = false;
    }
  }
  if (mask & 0x100) {
    if (!first) {
      s += ", ";
    }
    s += pop ? "pc" : "lr";
  }
  s += "}";
  return s;
}

}  // namespace

std::string Disassemble(const Instr& in, uint32_t addr) {
  const std::string name = OpName(in.op);
  auto r = [](uint8_t reg) { return std::string(RegName(reg)); };
  auto imm = [](int32_t v) { return "#" + std::to_string(v); };
  switch (in.op) {
    case Op::kLslImm:
    case Op::kLsrImm:
    case Op::kAsrImm:
      if (in.op == Op::kLslImm && in.imm == 0) {
        return "movs " + r(in.rd) + ", " + r(in.rm);
      }
      return name + " " + r(in.rd) + ", " + r(in.rm) + ", " + imm(in.imm);
    case Op::kAddReg:
    case Op::kSubReg:
      return name + " " + r(in.rd) + ", " + r(in.rn) + ", " + r(in.rm);
    case Op::kAddImm3:
    case Op::kSubImm3:
      return name + " " + r(in.rd) + ", " + r(in.rn) + ", " + imm(in.imm);
    case Op::kMovImm:
    case Op::kAddImm8:
    case Op::kSubImm8:
      return name + " " + r(in.rd) + ", " + imm(in.imm);
    case Op::kCmpImm:
      return name + " " + r(in.rn) + ", " + imm(in.imm);
    case Op::kAnd:
    case Op::kEor:
    case Op::kLslReg:
    case Op::kLsrReg:
    case Op::kAsrReg:
    case Op::kAdc:
    case Op::kSbc:
    case Op::kRor:
    case Op::kOrr:
    case Op::kMul:
    case Op::kBic:
    case Op::kMvn:
    case Op::kNeg:
      return name + " " + r(in.rd) + ", " + r(in.rm);
    case Op::kTst:
    case Op::kCmpReg:
    case Op::kCmn:
      return name + " " + r(in.rn) + ", " + r(in.rm);
    case Op::kAddHi:
    case Op::kMovHi:
      return name + " " + r(in.rd) + ", " + r(in.rm);
    case Op::kCmpHi:
      return name + " " + r(in.rn) + ", " + r(in.rm);
    case Op::kBx:
    case Op::kBlx:
      return name + " " + r(in.rm);
    case Op::kLdrLit:
      return "ldr " + r(in.rd) + ", [pc, " + imm(in.imm) + "]";
    case Op::kStrReg:
    case Op::kStrhReg:
    case Op::kStrbReg:
    case Op::kLdrsbReg:
    case Op::kLdrReg:
    case Op::kLdrhReg:
    case Op::kLdrbReg:
    case Op::kLdrshReg:
      return name + " " + r(in.rd) + ", [" + r(in.rn) + ", " + r(in.rm) + "]";
    case Op::kStrImm:
    case Op::kLdrImm:
    case Op::kStrbImm:
    case Op::kLdrbImm:
    case Op::kStrhImm:
    case Op::kLdrhImm:
      return name + " " + r(in.rd) + ", [" + r(in.rn) + ", " + imm(in.imm) + "]";
    case Op::kStrSp:
    case Op::kLdrSp:
      return name + " " + r(in.rd) + ", [sp, " + imm(in.imm) + "]";
    case Op::kAdr:
      return "adr " + r(in.rd) + ", " + imm(in.imm);
    case Op::kAddSpImm:
      return "add " + r(in.rd) + ", sp, " + imm(in.imm);
    case Op::kAddSp7:
      return "add sp, " + imm(in.imm);
    case Op::kSubSp7:
      return "sub sp, " + imm(in.imm);
    case Op::kSxth:
    case Op::kSxtb:
    case Op::kUxth:
    case Op::kUxtb:
    case Op::kRev:
    case Op::kRev16:
    case Op::kRevsh:
      return name + " " + r(in.rd) + ", " + r(in.rm);
    case Op::kPush:
      return "push " + RegList(in.reglist, false);
    case Op::kPop:
      return "pop " + RegList(in.reglist, true);
    case Op::kLdm:
    case Op::kStm:
      return name + " " + r(in.rn) + "!, " + RegList(in.reglist, false);
    case Op::kNop:
      return "nop";
    case Op::kBcond:
      return "b" + std::string(CondName(in.cond)) + " " + Hex(addr + 4 + in.imm);
    case Op::kB:
      return "b " + Hex(addr + 4 + in.imm);
    case Op::kBl:
      return "bl " + Hex(addr + 4 + in.imm);
    case Op::kUdf:
      return "udf " + imm(in.imm);
    case Op::kInvalid:
      break;
  }
  return "<invalid>";
}

}  // namespace neuroc
