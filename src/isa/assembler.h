// Two-pass text assembler for the ARMv6-M subset.
//
// Supported syntax (GNU-as flavored):
//   labels:            `name:` at line start (may share the line with an instruction)
//   comments:          `@ ...`, `// ...`, `; ...`
//   directives:        `.word v[, v...]`, `.half ...`, `.byte ...`, `.align n` (2^n bytes),
//                      `.pool` (flush pending `ldr rX, =imm` literals)
//   literal loads:     `ldr rX, =imm-or-label` (pooled, PC-relative)
//   everything in src/isa/isa.h: movs/adds/subs/cmp/muls/ldr/str/push/pop/b<cond>/bl/...
//
// Errors abort with file/line diagnostics via NEUROC_CHECK (the assembler is an internal
// code-generation tool; malformed input is a programming error).

#ifndef NEUROC_SRC_ISA_ASSEMBLER_H_
#define NEUROC_SRC_ISA_ASSEMBLER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace neuroc {

struct AssembledProgram {
  uint32_t base_addr = 0;
  std::vector<uint8_t> bytes;
  std::map<std::string, uint32_t> symbols;  // label -> absolute address

  uint32_t SymbolAddr(const std::string& name) const;
  size_t size() const { return bytes.size(); }
};

// Address-ordered view of a symbol table for resolving instruction addresses back to the
// enclosing label — the attribution step of the cycle profiler (src/obs/sim_profiler.h).
// Every assembler label is a symbol, so kernel-internal loop labels resolve too.
class SymbolTable {
 public:
  struct Entry {
    uint32_t addr = 0;
    std::string name;
  };

  SymbolTable() = default;
  explicit SymbolTable(const std::map<std::string, uint32_t>& symbols);

  // The entry with the greatest address <= `addr` (i.e. the label whose span covers it),
  // or nullptr when `addr` precedes every symbol. Labels sharing an address collapse to
  // one entry (names joined with '/'), so spans are non-empty and attribution is unique.
  const Entry* Resolve(uint32_t addr) const;

  // Ascending by address.
  const std::vector<Entry>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }

 private:
  std::vector<Entry> entries_;
};

// Assembles `source` for load address `base_addr` (must be 4-aligned).
AssembledProgram Assemble(const std::string& source, uint32_t base_addr);

}  // namespace neuroc

#endif  // NEUROC_SRC_ISA_ASSEMBLER_H_
