// Descriptor and packing for the Fig. 2 convolution kernel.
//
// The kernel computes a direct S×S convolution with C input channels and K filters over an
// N×N input, valid padding (output M = N − S + 1), using two precomputed u16 tables: the
// receptive-field-relative offsets (one per weight) and the per-output-pixel base offsets —
// the static-memory equivalent of im2col on a RAM-starved target.

#ifndef NEUROC_SRC_KERNELS_CONV_DESC_H_
#define NEUROC_SRC_KERNELS_CONV_DESC_H_

#include <cstdint>
#include <vector>

#include "src/sim/machine.h"

namespace neuroc {

struct ConvLayerSpec {
  int input_size = 16;   // N (square input)
  int channels = 1;      // C
  int kernel_size = 3;   // S
  int filters = 8;       // K
  int shift = 7;         // requantization shift
};

struct PackedConvLayer {
  uint32_t desc_addr = 0;
  uint32_t input_addr = 0;   // int8 [C*N*N], channel-planar
  uint32_t output_addr = 0;  // int8 [K * M*M]
  int output_size = 0;       // M
  size_t flash_bytes = 0;    // weights + tables + descriptor
  size_t macc_count = 0;     // K * C * S^2 * M^2 (paper Eq. 7)
};

// Places descriptor, weights (q7), bias (int32), offset tables into simulated flash at
// `flash_base` and plans input/output buffers at `ram_base`. `weights`/`bias` sizes must be
// K*C*S*S and K.
PackedConvLayer PackConvLayer(Machine& machine, const ConvLayerSpec& spec,
                              const std::vector<int8_t>& weights,
                              const std::vector<int32_t>& bias, uint32_t flash_base,
                              uint32_t ram_base);

// Host reference of the same arithmetic, for simulator equivalence tests.
void RunConvReference(const ConvLayerSpec& spec, const std::vector<int8_t>& weights,
                      const std::vector<int32_t>& bias, const std::vector<int8_t>& input,
                      std::vector<int8_t>& output);

}  // namespace neuroc

#endif  // NEUROC_SRC_KERNELS_CONV_DESC_H_
