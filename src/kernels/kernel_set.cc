#include "src/kernels/kernel_set.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/kernels/kernel_sources.h"

namespace neuroc {

KernelSet KernelSet::Build(std::span<const KernelVariant> variants, uint32_t base_addr,
                           bool include_conv, const NeuroCModel* model) {
  KernelSet set;
  for (const KernelVariant& v : variants) {
    if (std::find(set.variants_.begin(), set.variants_.end(), v) == set.variants_.end()) {
      set.variants_.push_back(v);
    }
  }
  std::string source;
  for (const KernelVariant& v : set.variants_) {
    if (!v.is_dense && v.kind == EncodingKind::kUnrolled) {
      NEUROC_CHECK_MSG(model != nullptr, "kUnrolled kernel generation needs the model");
      NEUROC_CHECK(v.unrolled_layer >= 0 &&
                   static_cast<size_t>(v.unrolled_layer) < model->layers().size());
      const Encoding& enc = *model->layers()[v.unrolled_layer].encoding;
      NEUROC_CHECK(enc.kind() == EncodingKind::kUnrolled);
      source += GenerateUnrolledKernelSource(v, static_cast<const UnrolledEncoding&>(enc));
    } else {
      source += GenerateKernelSource(v);
    }
    source += "\n";
  }
  if (include_conv) {
    source += GenerateConvKernelSource();
  }
  if (source.empty()) {
    source = "nop\n";  // empty set still assembles
  }
  set.program_ = Assemble(source, base_addr);
  return set;
}

uint32_t KernelSet::EntryFor(const KernelVariant& variant) const {
  return program_.SymbolAddr(KernelFunctionName(variant));
}

uint32_t KernelSet::ConvEntry() const { return program_.SymbolAddr(kConvKernelName); }

}  // namespace neuroc
