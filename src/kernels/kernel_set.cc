#include "src/kernels/kernel_set.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/kernels/kernel_sources.h"

namespace neuroc {

KernelSet KernelSet::Build(std::span<const KernelVariant> variants, uint32_t base_addr,
                           bool include_conv) {
  KernelSet set;
  for (const KernelVariant& v : variants) {
    if (std::find(set.variants_.begin(), set.variants_.end(), v) == set.variants_.end()) {
      set.variants_.push_back(v);
    }
  }
  std::string source;
  for (const KernelVariant& v : set.variants_) {
    source += GenerateKernelSource(v);
    source += "\n";
  }
  if (include_conv) {
    source += GenerateConvKernelSource();
  }
  if (source.empty()) {
    source = "nop\n";  // empty set still assembles
  }
  set.program_ = Assemble(source, base_addr);
  return set;
}

uint32_t KernelSet::EntryFor(const KernelVariant& variant) const {
  return program_.SymbolAddr(KernelFunctionName(variant));
}

uint32_t KernelSet::ConvEntry() const { return program_.SymbolAddr(kConvKernelName); }

}  // namespace neuroc
