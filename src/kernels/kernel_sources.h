// Thumb assembly generators for the inference kernels executed on the simulated Cortex-M0.
//
// Every kernel is a function taking r0 = address of an 80-byte layer descriptor (layout in
// src/core/model_image.h) and computing one layer in place (input/output/scratch SRAM
// addresses come from the descriptor). Kernels are specialized per KernelVariant — encoding
// kind, metadata/index element widths and presence of the per-neuron scale — because on a
// core with no branch predictor, folding these choices into the instruction stream is
// exactly the "static control flow" discipline the paper argues for.
//
// Arithmetic matches the host reference bit-for-bit (property-tested in kernels_test):
//   acc = Σ(+x) − Σ(−x); acc = acc * scale_j (if scaled); acc += bias_j;
//   out = sat8((acc + rnd) >> shift), then ReLU if the descriptor flags request it.

#ifndef NEUROC_SRC_KERNELS_KERNEL_SOURCES_H_
#define NEUROC_SRC_KERNELS_KERNEL_SOURCES_H_

#include <string>

#include "src/core/model_image.h"
#include "src/core/unrolled_encoding.h"

namespace neuroc {

// Stable symbol name for a kernel variant, e.g. "nc_delta_m1_i1_s1", "nc_unrolled_l0_s1"
// or "dense_q7".
std::string KernelFunctionName(const KernelVariant& variant);

// Generates the assembly source for one kernel variant. All labels are prefixed with the
// function name so multiple kernels can be assembled into one program. kUnrolled variants
// are per-model, not per-shape — use GenerateUnrolledKernelSource for those.
std::string GenerateKernelSource(const KernelVariant& variant);

// Per-model codegen for EncodingKind::kUnrolled: compiles the layer's frozen adjacency into
// straight-line Thumb — per output neuron a `movs` reset, a chain of
// `adds r1, #delta` pointer retargets + `ldrsb`/`adds`/`subs` accumulates (one per nonzero,
// operand offsets resolved here at generation time), and a `bl` into a shared
// scale/bias/requant/ReLU epilogue. Zero index decoding at runtime; the flash cost is the
// kernel text itself (UnrolledEncoding::Sizes() models the marginal bytes exactly).
std::string GenerateUnrolledKernelSource(const KernelVariant& variant,
                                         const UnrolledEncoding& encoding);

// Assembled bytes of the fixed (per-kernel, model-independent) part of an unrolled kernel:
// prologue + frame teardown + shared requant epilogue. The pin-tested size contract is
//   assembled kernel bytes == UnrolledEncoding::Sizes().total()
//                             + UnrolledKernelFixedBytes(has_scale).
size_t UnrolledKernelFixedBytes(bool has_scale);

// Convolution kernel for the paper's Fig. 2 FC-vs-CNN comparison: direct convolution driven
// by a precomputed receptive-field offset table (the static equivalent of im2col on a
// platform without the RAM for materialized column matrices). Descriptor layout in
// src/kernels/conv_desc.h.
std::string GenerateConvKernelSource();
inline constexpr char kConvKernelName[] = "conv_q7";

// Number of flash bytes charged for fixed runtime overhead when reporting program memory
// (vector table, reset/startup code and the layer-sequencing main loop of a bare-metal
// build). Matches the overhead of a minimal arm-none-eabi-gcc -Os binary.
inline constexpr size_t kRuntimeOverheadBytes = 768;

}  // namespace neuroc

#endif  // NEUROC_SRC_KERNELS_KERNEL_SOURCES_H_
