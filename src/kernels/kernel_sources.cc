#include "src/kernels/kernel_sources.h"

#include <string_view>

#include "src/common/check.h"

namespace neuroc {

namespace {

// Descriptor field byte offsets (see DescWord in src/core/model_image.h).
constexpr int kOffInDim = kDescInDim * 4;
constexpr int kOffOutDim = kDescOutDim * 4;
constexpr int kOffFlags = kDescFlags * 4;
constexpr int kOffPosMeta = kDescPosMetaAddr * 4;
constexpr int kOffPosIdx = kDescPosIdxAddr * 4;
constexpr int kOffNegMeta = kDescNegMetaAddr * 4;
constexpr int kOffNegIdx = kDescNegIdxAddr * 4;
constexpr int kOffScale = kDescScaleAddr * 4;
constexpr int kOffBias = kDescBiasAddr * 4;
constexpr int kOffShift = kDescShift * 4;
constexpr int kOffBlockSize = kDescBlockSize * 4;
constexpr int kOffNumBlocks = kDescNumBlocks * 4;
constexpr int kOffWeights = kDescWeightsAddr * 4;
constexpr int kOffInput = kDescInputAddr * 4;
constexpr int kOffOutput = kDescOutputAddr * 4;
constexpr int kOffScratch = kDescScratchAddr * 4;

// Stack-frame slot offsets shared by the Neuro-C kernels.
constexpr int kSlotX = 0;
constexpr int kSlotColsLeft = 4;
constexpr int kSlotShift = 8;
constexpr int kSlotRnd = 12;
constexpr int kSlotRelu = 16;
constexpr int kSlotBias = 20;
constexpr int kSlotScale = 24;
constexpr int kSlotPosMeta = 28;
constexpr int kSlotPosIdx = 32;
constexpr int kSlotNegMeta = 36;
constexpr int kSlotNegIdx = 40;
// Extra slots used only by the block kernel.
constexpr int kSlotBlocksLeft = 44;
constexpr int kSlotBlockSize = 48;
constexpr int kSlotScratch = 52;
constexpr int kSlotOutDim = 56;
constexpr int kSlotOutput = 60;

// Small assembly text builder with per-function label generation.
class AsmWriter {
 public:
  explicit AsmWriter(std::string prefix) : prefix_(std::move(prefix)) {}

  void L(const std::string& line) { text_ += "    " + line + "\n"; }
  void Label(const std::string& name) { text_ += name + ":\n"; }
  void Comment(const std::string& c) { text_ += "    @ " + c + "\n"; }

  std::string NewLabel(const std::string& tag) {
    return prefix_ + "_" + tag + std::to_string(counter_++);
  }

  const std::string& text() const { return text_; }

 private:
  std::string prefix_;
  std::string text_;
  int counter_ = 0;
};

std::string Imm(int v) { return "#" + std::to_string(v); }

// Emits `ldrb/ldrh rd, [rn, #0]` according to the element width.
void LoadElem(AsmWriter& w, const char* rd, const char* rn, int width) {
  if (width == 1) {
    w.L(std::string("ldrb ") + rd + ", [" + rn + ", #0]");
  } else {
    w.L(std::string("ldrh ") + rd + ", [" + rn + ", #0]");
  }
}

// Branch-free requantization of the accumulator in r3: rounding shift, saturation to int8
// and ReLU with no data-dependent control flow, preserving the paper's fixed-latency
// property (the only branch keys on the per-layer relu flag, identical for every neuron).
// Clobbers r4 plus the two scratch registers t1/t2.
void EmitRequantCore(AsmWriter& w, const char* t1, const char* t2) {
  const std::string t1s(t1);
  const std::string t2s(t2);
  w.Comment("rounding right shift");
  w.L("ldr r4, [sp, " + Imm(kSlotRnd) + "]");
  w.L("adds r3, r3, r4");
  w.L("ldr r4, [sp, " + Imm(kSlotShift) + "]");
  w.L("asrs r3, r4");
  w.Comment("branchless clamp to [-128, 127]");
  w.L("movs r4, #127");
  w.L("subs " + t1s + ", r3, r4");
  w.L("asrs " + t2s + ", " + t1s + ", #31");
  w.L("bics " + t1s + ", " + t2s);
  w.L("subs r3, r3, " + t1s);
  w.L("movs " + t1s + ", r3");
  w.L("adds " + t1s + ", #128");
  w.L("asrs " + t2s + ", " + t1s + ", #31");
  w.L("ands " + t1s + ", " + t2s);
  w.L("subs r3, r3, " + t1s);
  w.Comment("relu (branch keys on a per-layer constant, not on data)");
  const std::string no_relu = w.NewLabel("relu");
  w.L("ldr r4, [sp, " + Imm(kSlotRelu) + "]");
  w.L("cmp r4, #0");
  w.L("beq " + no_relu);
  w.L("asrs r4, r3, #31");
  w.L("bics r3, r4");
  w.Label(no_relu);
  w.L("strb r3, [r7, #0]");
  w.L("adds r7, r7, #1");
}

// Full epilogue for the Neuro-C kernels: per-neuron scale multiply, bias add, then the
// branch-free requantization core. Clobbers r4, r5, r6.
void EmitRequantEpilogue(AsmWriter& w, bool has_scale) {
  if (has_scale) {
    w.Comment("acc *= scale[j] (per-neuron multiply, q7)");
    w.L("ldr r4, [sp, " + Imm(kSlotScale) + "]");
    w.L("ldrb r5, [r4, #0]");
    w.L("sxtb r5, r5");
    w.L("adds r4, r4, #1");
    w.L("str r4, [sp, " + Imm(kSlotScale) + "]");
    w.L("muls r3, r5, r3");
  }
  w.Comment("acc += bias[j]");
  w.L("ldr r4, [sp, " + Imm(kSlotBias) + "]");
  w.L("ldr r5, [r4, #0]");
  w.L("adds r4, r4, #4");
  w.L("str r4, [sp, " + Imm(kSlotBias) + "]");
  w.L("adds r3, r3, r5");
  EmitRequantCore(w, "r5", "r6");
}

// Caches descriptor fields into the stack frame: shift, rnd, relu, bias (+scale).
void EmitCommonPrologueFields(AsmWriter& w, bool has_scale) {
  w.L("ldr r1, [r0, " + Imm(kOffShift) + "]");
  w.L("str r1, [sp, " + Imm(kSlotShift) + "]");
  w.Comment("rnd = shift ? 1 << (shift-1) : 0");
  const std::string rnd_done = w.NewLabel("rnd");
  w.L("movs r2, #0");
  w.L("cmp r1, #0");
  w.L("beq " + rnd_done);
  w.L("movs r2, #1");
  w.L("subs r1, r1, #1");
  w.L("lsls r2, r1");
  w.Label(rnd_done);
  w.L("str r2, [sp, " + Imm(kSlotRnd) + "]");
  w.L("ldr r1, [r0, " + Imm(kOffFlags) + "]");
  w.L("lsrs r1, r1, #16");
  w.L("movs r2, #1");
  w.L("ands r1, r2");
  w.L("str r1, [sp, " + Imm(kSlotRelu) + "]");
  w.L("ldr r1, [r0, " + Imm(kOffBias) + "]");
  w.L("str r1, [sp, " + Imm(kSlotBias) + "]");
  if (has_scale) {
    w.L("ldr r1, [r0, " + Imm(kOffScale) + "]");
    w.L("str r1, [sp, " + Imm(kSlotScale) + "]");
  }
}

// Decrements the counter in `slot` and loops back to `label` while nonzero. Uses the
// inverted-condition + unconditional-branch pattern because large kernel bodies exceed the
// ±256-byte range of Thumb conditional branches.
void EmitCountedLoopBack(AsmWriter& w, int slot, const std::string& label) {
  const std::string exit_label = w.NewLabel("exit");
  w.L("ldr r4, [sp, " + Imm(slot) + "]");
  w.L("subs r4, r4, #1");
  w.L("str r4, [sp, " + Imm(slot) + "]");
  w.L("beq " + exit_label);
  w.L("b " + label);
  w.Label(exit_label);
}

enum class Sign { kAdd, kSub };

const char* AccOp(Sign s) { return s == Sign::kAdd ? "adds r3, r3, " : "subs r3, r3, "; }

// CSC polarity pass: pointer array gives [start, end) element positions into the absolute
// index array; traversal is k-indexed as in the natural C implementation.
void EmitCscPass(AsmWriter& w, Sign sign, int slot_meta, int slot_idx, int mw, int iw) {
  const std::string done = w.NewLabel("cscdone");
  const std::string loop = w.NewLabel("cscloop");
  w.Comment(sign == Sign::kAdd ? "CSC positive pass" : "CSC negative pass");
  w.L("ldr r4, [sp, " + Imm(slot_meta) + "]");
  if (mw == 1) {
    w.L("ldrb r2, [r4, #0]");
    w.L("ldrb r6, [r4, #1]");
  } else {
    w.L("ldrh r2, [r4, #0]");
    w.L("ldrh r6, [r4, #2]");
  }
  w.L("adds r4, r4, " + Imm(mw));
  w.L("str r4, [sp, " + Imm(slot_meta) + "]");
  w.L("subs r6, r6, r2");
  w.L("beq " + done);
  w.L("ldr r5, [sp, " + Imm(slot_idx) + "]");
  w.L("ldr r1, [sp, " + Imm(kSlotX) + "]");
  w.Label(loop);
  if (iw == 1) {
    w.L("ldrb r4, [r5, r2]");
  } else {
    w.L("lsls r4, r2, #1");
    w.L("ldrh r4, [r5, r4]");
  }
  w.L("ldrsb r0, [r1, r4]");
  w.L(std::string(AccOp(sign)) + "r0");
  w.L("adds r2, r2, #1");
  w.L("subs r6, r6, #1");
  w.L("bne " + loop);
  w.Label(done);
}

// Mixed polarity pass: per-column count plus a running pointer over absolute indices.
void EmitMixedPass(AsmWriter& w, Sign sign, int slot_meta, int slot_idx, int mw, int iw) {
  const std::string done = w.NewLabel("mixdone");
  const std::string loop = w.NewLabel("mixloop");
  w.Comment(sign == Sign::kAdd ? "mixed positive pass" : "mixed negative pass");
  w.L("ldr r4, [sp, " + Imm(slot_meta) + "]");
  LoadElem(w, "r6", "r4", mw);
  w.L("adds r4, r4, " + Imm(mw));
  w.L("str r4, [sp, " + Imm(slot_meta) + "]");
  w.L("ldr r2, [sp, " + Imm(slot_idx) + "]");
  w.L("cmp r6, #0");
  w.L("beq " + done);
  w.L("ldr r1, [sp, " + Imm(kSlotX) + "]");
  w.Label(loop);
  LoadElem(w, "r4", "r2", iw);
  w.L("adds r2, r2, " + Imm(iw));
  w.L("ldrsb r0, [r1, r4]");
  w.L(std::string(AccOp(sign)) + "r0");
  w.L("subs r6, r6, #1");
  w.L("bne " + loop);
  w.Label(done);
  w.L("str r2, [sp, " + Imm(slot_idx) + "]");
}

// One single-step delta iteration: advance stream ptr (r2), walk x ptr (r1), accumulate.
// r0 must hold 0 (zero index register for ldrsb).
void EmitDeltaStep(AsmWriter& w, Sign sign, int iw) {
  LoadElem(w, "r4", "r2", iw);
  w.L("adds r2, r2, " + Imm(iw));
  w.L("adds r1, r1, r4");
  w.L("ldrsb r5, [r1, r0]");
  w.L(std::string(AccOp(sign)) + "r5");
}

// Delta polarity pass, following the FORWARD_DELTA pseudocode of paper Fig. 4: the first
// stream entry is an absolute index, the rest are relative offsets applied to a walking
// input pointer. For 8-bit streams the steady state fetches four offsets per 32-bit flash
// word — the pointer-based traversal the sequential byte stream makes possible.
void EmitDeltaPass(AsmWriter& w, Sign sign, int slot_meta, int slot_idx, int mw, int iw) {
  const std::string store = w.NewLabel("dstore");
  const std::string done = w.NewLabel("ddone");
  w.Comment(sign == Sign::kAdd ? "delta positive pass" : "delta negative pass");
  w.L("ldr r4, [sp, " + Imm(slot_meta) + "]");
  LoadElem(w, "r6", "r4", mw);
  w.L("adds r4, r4, " + Imm(mw));
  w.L("str r4, [sp, " + Imm(slot_meta) + "]");
  w.L("ldr r2, [sp, " + Imm(slot_idx) + "]");
  w.L("cmp r6, #0");
  w.L("beq " + done);
  w.L("ldr r1, [sp, " + Imm(kSlotX) + "]");
  w.L("movs r0, #0");
  w.Comment("first connection: absolute index");
  EmitDeltaStep(w, sign, iw);
  w.L("subs r6, r6, #1");
  w.L("beq " + store);
  if (iw == 1) {
    // Word-batched steady state: 4 offsets per flash word once the stream is aligned.
    const std::string align = w.NewLabel("dalign");
    const std::string unroll = w.NewLabel("dunroll");
    const std::string tail = w.NewLabel("dtail");
    const std::string tail_loop = w.NewLabel("dtailloop");
    w.Label(align);
    w.L("cmp r6, #4");
    w.L("blt " + tail);
    w.L("movs r4, #3");
    w.L("tst r2, r4");
    w.L("beq " + unroll);
    EmitDeltaStep(w, sign, iw);
    w.L("subs r6, r6, #1");
    w.L("b " + align);
    w.Label(unroll);
    w.L("ldr r4, [r2, #0]");
    w.L("adds r2, r2, #4");
    for (int lane = 0; lane < 4; ++lane) {
      if (lane < 3) {
        w.L("uxtb r5, r4");
        w.L("adds r1, r1, r5");
        w.L("ldrsb r5, [r1, r0]");
        w.L(std::string(AccOp(sign)) + "r5");
        w.L("lsrs r4, r4, #8");
      } else {
        w.L("adds r1, r1, r4");
        w.L("ldrsb r5, [r1, r0]");
        w.L(std::string(AccOp(sign)) + "r5");
      }
    }
    w.L("subs r6, r6, #4");
    w.L("cmp r6, #4");
    w.L("bge " + unroll);
    w.Label(tail);
    w.L("cmp r6, #0");
    w.L("beq " + store);
    w.Label(tail_loop);
    EmitDeltaStep(w, sign, iw);
    w.L("subs r6, r6, #1");
    w.L("bne " + tail_loop);
  } else {
    const std::string loop = w.NewLabel("dloop");
    w.Label(loop);
    EmitDeltaStep(w, sign, iw);
    w.L("subs r6, r6, #1");
    w.L("bne " + loop);
  }
  w.Label(store);
  w.L("str r2, [sp, " + Imm(slot_idx) + "]");
  w.Label(done);
}

// Polarity pass over a guaranteed-8-bit absolute index stream (block-local indices, or the
// mixed format on small inputs): per-column count metadata plus a running index pointer,
// with the steady state fetching four indices per 32-bit flash word — the latency payoff of
// formats that bound indices to one byte.
void EmitBytePackedIdxPass(AsmWriter& w, Sign sign, int slot_meta, int slot_idx, int mw) {
  const std::string done = w.NewLabel("bpdone");
  const std::string store = w.NewLabel("bpstore");
  const std::string align = w.NewLabel("bpalign");
  const std::string unroll = w.NewLabel("bpunroll");
  const std::string tail = w.NewLabel("bptail");
  const std::string tail_loop = w.NewLabel("bptailloop");
  auto single_step = [&]() {
    w.L("ldrb r4, [r2, #0]");
    w.L("adds r2, r2, #1");
    w.L("ldrsb r0, [r1, r4]");
    w.L(std::string(AccOp(sign)) + "r0");
  };
  w.Comment(sign == Sign::kAdd ? "byte-packed positive pass" : "byte-packed negative pass");
  w.L("ldr r4, [sp, " + Imm(slot_meta) + "]");
  LoadElem(w, "r6", "r4", mw);
  w.L("adds r4, r4, " + Imm(mw));
  w.L("str r4, [sp, " + Imm(slot_meta) + "]");
  w.L("ldr r2, [sp, " + Imm(slot_idx) + "]");
  w.L("cmp r6, #0");
  w.L("beq " + done);
  w.L("ldr r1, [sp, " + Imm(kSlotX) + "]");
  w.Label(align);
  w.L("cmp r6, #4");
  w.L("blt " + tail);
  w.L("movs r4, #3");
  w.L("tst r2, r4");
  w.L("beq " + unroll);
  single_step();
  w.L("subs r6, r6, #1");
  w.L("b " + align);
  w.Label(unroll);
  w.Comment("four 8-bit indices per flash word");
  w.L("ldr r4, [r2, #0]");
  w.L("adds r2, r2, #4");
  for (int lane = 0; lane < 4; ++lane) {
    if (lane < 3) {
      w.L("uxtb r5, r4");
      w.L("ldrsb r0, [r1, r5]");
      w.L(std::string(AccOp(sign)) + "r0");
      w.L("lsrs r4, r4, #8");
    } else {
      w.L("ldrsb r0, [r1, r4]");
      w.L(std::string(AccOp(sign)) + "r0");
    }
  }
  w.L("subs r6, r6, #4");
  w.L("cmp r6, #4");
  w.L("bge " + unroll);
  w.Label(tail);
  w.L("cmp r6, #0");
  w.L("beq " + store);
  w.Label(tail_loop);
  single_step();
  w.L("subs r6, r6, #1");
  w.L("bne " + tail_loop);
  w.Label(store);
  w.L("str r2, [sp, " + Imm(slot_idx) + "]");
  w.Label(done);
}

// Block-encoding polarity pass for one (block, column): byte-packed traversal against the
// current block's input base.
void EmitBlockPass(AsmWriter& w, Sign sign, int slot_meta, int slot_idx) {
  EmitBytePackedIdxPass(w, sign, slot_meta, slot_idx, /*mw=*/1);
}

std::string GenerateNeuroCKernel(const KernelVariant& v) {
  const std::string name = KernelFunctionName(v);
  AsmWriter w(name);
  const int mw = v.meta_width;
  const int iw = v.idx_width;
  w.Label(name);
  w.L("push {r4, r5, r6, r7, lr}");

  if (v.kind != EncodingKind::kBlock) {
    w.L("sub sp, #44");
    w.L("ldr r1, [r0, " + Imm(kOffInput) + "]");
    w.L("str r1, [sp, " + Imm(kSlotX) + "]");
    w.L("ldr r1, [r0, " + Imm(kOffOutDim) + "]");
    w.L("str r1, [sp, " + Imm(kSlotColsLeft) + "]");
    EmitCommonPrologueFields(w, v.has_scale);
    w.L("ldr r1, [r0, " + Imm(kOffPosMeta) + "]");
    w.L("str r1, [sp, " + Imm(kSlotPosMeta) + "]");
    w.L("ldr r1, [r0, " + Imm(kOffPosIdx) + "]");
    w.L("str r1, [sp, " + Imm(kSlotPosIdx) + "]");
    w.L("ldr r1, [r0, " + Imm(kOffNegMeta) + "]");
    w.L("str r1, [sp, " + Imm(kSlotNegMeta) + "]");
    w.L("ldr r1, [r0, " + Imm(kOffNegIdx) + "]");
    w.L("str r1, [sp, " + Imm(kSlotNegIdx) + "]");
    w.L("ldr r7, [r0, " + Imm(kOffOutput) + "]");

    const std::string col = w.NewLabel("col");
    w.Label(col);
    w.L("movs r3, #0");
    switch (v.kind) {
      case EncodingKind::kCsc:
        EmitCscPass(w, Sign::kAdd, kSlotPosMeta, kSlotPosIdx, mw, iw);
        EmitCscPass(w, Sign::kSub, kSlotNegMeta, kSlotNegIdx, mw, iw);
        break;
      case EncodingKind::kDelta:
        EmitDeltaPass(w, Sign::kAdd, kSlotPosMeta, kSlotPosIdx, mw, iw);
        EmitDeltaPass(w, Sign::kSub, kSlotNegMeta, kSlotNegIdx, mw, iw);
        break;
      case EncodingKind::kMixed:
        if (iw == 1) {
          // Small-input layers have byte-wide absolute indices: same word-batched
          // traversal the block format gets by construction.
          EmitBytePackedIdxPass(w, Sign::kAdd, kSlotPosMeta, kSlotPosIdx, mw);
          EmitBytePackedIdxPass(w, Sign::kSub, kSlotNegMeta, kSlotNegIdx, mw);
        } else {
          EmitMixedPass(w, Sign::kAdd, kSlotPosMeta, kSlotPosIdx, mw, iw);
          EmitMixedPass(w, Sign::kSub, kSlotNegMeta, kSlotNegIdx, mw, iw);
        }
        break;
      case EncodingKind::kBlock:
      case EncodingKind::kUnrolled:
        NEUROC_CHECK(false);
        break;
    }
    EmitRequantEpilogue(w, v.has_scale);
    EmitCountedLoopBack(w, kSlotColsLeft, col);
    w.L("add sp, #44");
    w.L("pop {r4, r5, r6, r7, pc}");
    return w.text();
  }

  // Block kernel: multi-pass with an int32 scratch accumulator (paper Sec. 4.2: inference
  // proceeds in one pass per block).
  w.L("sub sp, #64");
  w.L("ldr r1, [r0, " + Imm(kOffInput) + "]");
  w.L("str r1, [sp, " + Imm(kSlotX) + "]");
  EmitCommonPrologueFields(w, v.has_scale);
  w.L("ldr r1, [r0, " + Imm(kOffPosMeta) + "]");
  w.L("str r1, [sp, " + Imm(kSlotPosMeta) + "]");
  w.L("ldr r1, [r0, " + Imm(kOffPosIdx) + "]");
  w.L("str r1, [sp, " + Imm(kSlotPosIdx) + "]");
  w.L("ldr r1, [r0, " + Imm(kOffNegMeta) + "]");
  w.L("str r1, [sp, " + Imm(kSlotNegMeta) + "]");
  w.L("ldr r1, [r0, " + Imm(kOffNegIdx) + "]");
  w.L("str r1, [sp, " + Imm(kSlotNegIdx) + "]");
  w.L("ldr r1, [r0, " + Imm(kOffNumBlocks) + "]");
  w.L("str r1, [sp, " + Imm(kSlotBlocksLeft) + "]");
  w.L("ldr r1, [r0, " + Imm(kOffBlockSize) + "]");
  w.L("str r1, [sp, " + Imm(kSlotBlockSize) + "]");
  w.L("ldr r1, [r0, " + Imm(kOffScratch) + "]");
  w.L("str r1, [sp, " + Imm(kSlotScratch) + "]");
  w.L("ldr r1, [r0, " + Imm(kOffOutDim) + "]");
  w.L("str r1, [sp, " + Imm(kSlotOutDim) + "]");
  w.L("ldr r1, [r0, " + Imm(kOffOutput) + "]");
  w.L("str r1, [sp, " + Imm(kSlotOutput) + "]");

  w.Comment("phase A: zero the int32 scratch accumulators");
  {
    const std::string z = w.NewLabel("zero");
    w.L("ldr r1, [sp, " + Imm(kSlotScratch) + "]");
    w.L("ldr r2, [sp, " + Imm(kSlotOutDim) + "]");
    w.L("movs r3, #0");
    w.Label(z);
    w.L("str r3, [r1, #0]");
    w.L("adds r1, r1, #4");
    w.L("subs r2, r2, #1");
    w.L("bne " + z);
  }
  w.Comment("phase B: accumulate block by block");
  {
    const std::string block = w.NewLabel("block");
    const std::string col = w.NewLabel("bcol");
    w.Label(block);
    w.L("ldr r7, [sp, " + Imm(kSlotScratch) + "]");
    w.L("ldr r4, [sp, " + Imm(kSlotOutDim) + "]");
    w.L("str r4, [sp, " + Imm(kSlotColsLeft) + "]");
    w.Label(col);
    w.L("ldr r3, [r7, #0]");
    EmitBlockPass(w, Sign::kAdd, kSlotPosMeta, kSlotPosIdx);
    EmitBlockPass(w, Sign::kSub, kSlotNegMeta, kSlotNegIdx);
    w.L("str r3, [r7, #0]");
    w.L("adds r7, r7, #4");
    EmitCountedLoopBack(w, kSlotColsLeft, col);
    w.Comment("advance input base to the next block");
    w.L("ldr r4, [sp, " + Imm(kSlotX) + "]");
    w.L("ldr r5, [sp, " + Imm(kSlotBlockSize) + "]");
    w.L("adds r4, r4, r5");
    w.L("str r4, [sp, " + Imm(kSlotX) + "]");
    EmitCountedLoopBack(w, kSlotBlocksLeft, block);
  }
  w.Comment("phase C: scale, bias, requantize, store");
  {
    const std::string fin = w.NewLabel("fin");
    w.L("ldr r7, [sp, " + Imm(kSlotOutput) + "]");
    w.L("ldr r4, [sp, " + Imm(kSlotOutDim) + "]");
    w.L("str r4, [sp, " + Imm(kSlotColsLeft) + "]");
    w.Label(fin);
    // The scratch walker lives in its stack slot: the requant core clobbers every scratch
    // register.
    w.L("ldr r4, [sp, " + Imm(kSlotScratch) + "]");
    w.L("ldr r3, [r4, #0]");
    w.L("adds r4, r4, #4");
    w.L("str r4, [sp, " + Imm(kSlotScratch) + "]");
    EmitRequantEpilogue(w, v.has_scale);
    EmitCountedLoopBack(w, kSlotColsLeft, fin);
  }
  w.L("add sp, #64");
  w.L("pop {r4, r5, r6, r7, pc}");
  return w.text();
}

// ---------------------------------------------------------------------------
// Unrolled per-model codegen (EncodingKind::kUnrolled).
//
// Register plan for the straight-line column bodies:
//   r0 = 0 (zero index register — Thumb-1 ldrsb has only the register-offset form)
//   r1 = walking input pointer (input base + current element index)
//   r3 = column accumulator
//   r7 = output pointer (advanced by the shared epilogue)
//   r4/r5/r6 = clobbered by the epilogue only; r5 doubles as the ldrsb destination
// The epilogue is reached via `bl` from every column; sp is unchanged between the prologue
// and the epilogue so the requant stack slots stay valid, and the caller's lr was saved by
// the prologue push.
// ---------------------------------------------------------------------------

void EmitUnrolledPrologue(AsmWriter& w, bool has_scale) {
  w.L("push {r4, r5, r6, r7, lr}");
  w.L("sub sp, #28");
  EmitCommonPrologueFields(w, has_scale);
  w.L("ldr r7, [r0, " + Imm(kOffOutput) + "]");
  w.L("ldr r1, [r0, " + Imm(kOffInput) + "]");
  w.L("movs r0, #0");
}

void EmitUnrolledOutro(AsmWriter& w, const std::string& epi_label, bool has_scale) {
  w.L("add sp, #28");
  w.L("pop {r4, r5, r6, r7, pc}");
  w.Label(epi_label);
  EmitRequantEpilogue(w, has_scale);
  w.L("bx lr");
}

// Moves the walking input pointer in r1 by a signed byte delta, chunked into imm8 adds/subs
// (mirrored exactly by UnrolledEncoding::RetargetInstrCount for the size model).
void EmitRetarget(AsmWriter& w, int64_t delta) {
  const char* op = delta < 0 ? "subs r1, " : "adds r1, ";
  int64_t mag = delta < 0 ? -delta : delta;
  while (mag > 0) {
    const int step = mag > 255 ? 255 : static_cast<int>(mag);
    w.L(op + Imm(step));
    mag -= step;
  }
}

// Counts emitted instructions (every line except labels and comments). All fixed-part
// instructions are 2-byte Thumb, so fixed bytes = 2 * count.
size_t CountInstructions(const std::string& text) {
  size_t n = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) {
      end = text.size();
    }
    const std::string_view line(text.data() + pos, end - pos);
    if (line.rfind("    ", 0) == 0 && line.rfind("    @", 0) != 0) {
      ++n;
    }
    pos = end + 1;
  }
  return n;
}

// Dense q7 layer: the CMSIS-NN-style fully-connected baseline (software MACs only, as forced
// on a Cortex-M0).
std::string GenerateDenseKernel(const KernelVariant& v) {
  const std::string name = KernelFunctionName(v);
  AsmWriter w(name);
  // Frame: 0 in_dim, 4 rows left, 8 shift, 12 rnd, 16 relu, 20 bias ptr, 24 x base.
  w.Label(name);
  w.L("push {r4, r5, r6, r7, lr}");
  w.L("sub sp, #28");
  w.L("ldr r1, [r0, " + Imm(kOffInDim) + "]");
  w.L("str r1, [sp, #0]");
  w.L("ldr r1, [r0, " + Imm(kOffOutDim) + "]");
  w.L("str r1, [sp, " + Imm(kSlotColsLeft) + "]");
  EmitCommonPrologueFields(w, /*has_scale=*/false);
  w.L("ldr r1, [r0, " + Imm(kOffInput) + "]");
  w.L("str r1, [sp, #24]");
  w.L("ldr r5, [r0, " + Imm(kOffWeights) + "]");
  w.L("ldr r7, [r0, " + Imm(kOffOutput) + "]");

  const std::string row = w.NewLabel("row");
  const std::string inner = w.NewLabel("mac");
  const std::string inner_done = w.NewLabel("macdone");
  w.Label(row);
  w.Comment("acc = bias[j]");
  w.L("ldr r4, [sp, " + Imm(kSlotBias) + "]");
  w.L("ldr r3, [r4, #0]");
  w.L("adds r4, r4, #4");
  w.L("str r4, [sp, " + Imm(kSlotBias) + "]");
  w.L("ldr r1, [sp, #24]");
  w.L("ldr r2, [sp, #0]");
  w.L("subs r2, r2, #1");
  w.L("bmi " + inner_done);
  w.Label(inner);
  w.L("ldrsb r4, [r5, r2]");
  w.L("ldrsb r6, [r1, r2]");
  w.L("muls r4, r6, r4");
  w.L("adds r3, r3, r4");
  w.L("subs r2, r2, #1");
  w.L("bpl " + inner);
  w.Label(inner_done);
  w.Comment("advance weight row");
  w.L("ldr r4, [sp, #0]");
  w.L("adds r5, r5, r4");
  // Requantization without the bias re-add (bias seeded the accumulator). r5 holds the
  // weight-row pointer, so the core uses r1/r6 as scratch.
  EmitRequantCore(w, "r1", "r6");
  EmitCountedLoopBack(w, kSlotColsLeft, row);
  w.L("add sp, #28");
  w.L("pop {r4, r5, r6, r7, pc}");
  return w.text();
}

}  // namespace

std::string KernelFunctionName(const KernelVariant& v) {
  if (v.is_dense) {
    return "dense_q7";
  }
  if (v.kind == EncodingKind::kUnrolled) {
    // Per-model-layer, not per-shape: the adjacency is baked into the text.
    return "nc_unrolled_l" + std::to_string(v.unrolled_layer) +
           (v.has_scale ? "_s1" : "_s0");
  }
  std::string name = "nc_";
  name += EncodingKindName(v.kind);
  name += "_m" + std::to_string(v.meta_width);
  name += "_i" + std::to_string(v.idx_width);
  name += v.has_scale ? "_s1" : "_s0";
  return name;
}

std::string GenerateKernelSource(const KernelVariant& v) {
  if (v.is_dense) {
    return GenerateDenseKernel(v);
  }
  NEUROC_CHECK_MSG(v.kind != EncodingKind::kUnrolled,
                   "kUnrolled kernels are per-model; use GenerateUnrolledKernelSource");
  NEUROC_CHECK(v.meta_width == 1 || v.meta_width == 2);
  NEUROC_CHECK(v.idx_width == 1 || v.idx_width == 2);
  if (v.kind == EncodingKind::kBlock) {
    NEUROC_CHECK(v.meta_width == 1 && v.idx_width == 1);
  }
  return GenerateNeuroCKernel(v);
}

std::string GenerateUnrolledKernelSource(const KernelVariant& v,
                                         const UnrolledEncoding& enc) {
  NEUROC_CHECK(v.kind == EncodingKind::kUnrolled && !v.is_dense);
  NEUROC_CHECK(v.unrolled_layer >= 0);
  const std::string name = KernelFunctionName(v);
  AsmWriter w(name);
  const std::string epi = name + "_epi";
  w.Label(name);
  EmitUnrolledPrologue(w, v.has_scale);
  // The walking pointer carries across columns: each element is reached by a signed delta
  // from the previous element (forward within a column, possibly backward at a column
  // boundary). This is the inter-column analogue of the delta format's pointer walk, with
  // the offsets compiled into immediates instead of fetched from flash.
  int64_t prev = 0;
  for (size_t j = 0; j < enc.columns().size(); ++j) {
    w.Comment("column " + std::to_string(j));
    w.L("movs r3, #0");
    for (const UnrolledEncoding::Element& e : enc.columns()[j]) {
      EmitRetarget(w, static_cast<int64_t>(e.index) - prev);
      prev = e.index;
      w.L("ldrsb r5, [r1, r0]");
      w.L(e.sign > 0 ? "adds r3, r3, r5" : "subs r3, r3, r5");
    }
    w.L("bl " + epi);
  }
  EmitUnrolledOutro(w, epi, v.has_scale);
  return w.text();
}

size_t UnrolledKernelFixedBytes(bool has_scale) {
  // Emit only the fixed scaffold through the same emitters the generator uses, then count:
  // every fixed-part instruction is a 2-byte Thumb encoding (the 4-byte `bl`s are per
  // column and belong to the marginal Sizes() model).
  AsmWriter w("ukfixed");
  EmitUnrolledPrologue(w, has_scale);
  EmitUnrolledOutro(w, "ukfixed_epi", has_scale);
  return 2 * CountInstructions(w.text());
}

std::string GenerateConvKernelSource() {
  // Descriptor layout (see src/kernels/conv_desc.h): 0 num_pixels, 4 num_filters,
  // 8 field_size, 12 rel_offsets (u16), 16 weights (q7 [K][field]), 20 bias (i32 [K]),
  // 24 shift, 28 input base, 32 output (q7 [K][pixels]), 36 pixel_base_offsets (u16).
  AsmWriter w(kConvKernelName);
  // Frame: 0 rel base, 4 w row, 8 bias ptr, 12 shift, 16 rnd, 20 pix table ptr,
  //        24 filters left, 28 pixels left, 32 field size, 36 input base, 40 num_pixels.
  w.Label(kConvKernelName);
  w.L("push {r4, r5, r6, r7, lr}");
  w.L("sub sp, #48");
  w.L("ldr r1, [r0, #12]");
  w.L("str r1, [sp, #0]");
  w.L("ldr r1, [r0, #16]");
  w.L("str r1, [sp, #4]");
  w.L("ldr r1, [r0, #20]");
  w.L("str r1, [sp, #8]");
  w.L("ldr r1, [r0, #24]");
  w.L("str r1, [sp, #12]");
  w.Comment("rnd = shift ? 1 << (shift-1) : 0");
  const std::string rnd_done = w.NewLabel("rnd");
  w.L("movs r2, #0");
  w.L("cmp r1, #0");
  w.L("beq " + rnd_done);
  w.L("movs r2, #1");
  w.L("subs r1, r1, #1");
  w.L("lsls r2, r1");
  w.Label(rnd_done);
  w.L("str r2, [sp, #16]");
  w.L("ldr r1, [r0, #4]");
  w.L("str r1, [sp, #24]");
  w.L("ldr r1, [r0, #8]");
  w.L("str r1, [sp, #32]");
  w.L("ldr r1, [r0, #28]");
  w.L("str r1, [sp, #36]");
  w.L("ldr r1, [r0, #0]");
  w.L("str r1, [sp, #40]");
  w.L("ldr r1, [r0, #36]");
  w.L("str r1, [sp, #20]");
  w.L("str r1, [sp, #44]");  // pixel-table base, reloaded at the start of every filter
  w.L("ldr r7, [r0, #32]");

  const std::string filt = w.NewLabel("filt");
  const std::string pix = w.NewLabel("pix");
  const std::string mac = w.NewLabel("mac");
  w.Label(filt);
  w.Comment("reset pixel table and pixel count for this filter");
  w.L("ldr r4, [sp, #40]");
  w.L("str r4, [sp, #28]");
  w.L("ldr r4, [sp, #44]");
  w.L("str r4, [sp, #20]");
  w.Label(pix);
  w.Comment("acc = bias[k]; x = input + pixel_base[p]");
  w.L("ldr r4, [sp, #8]");
  w.L("ldr r3, [r4, #0]");
  w.L("ldr r4, [sp, #20]");
  w.L("ldrh r5, [r4, #0]");
  w.L("adds r4, r4, #2");
  w.L("str r4, [sp, #20]");
  w.L("ldr r1, [sp, #36]");
  w.L("adds r1, r1, r5");
  w.L("ldr r2, [sp, #0]");   // rel offsets walker
  w.L("ldr r5, [sp, #4]");   // weight row walker
  w.L("ldr r6, [sp, #32]");  // field size
  w.Label(mac);
  w.L("ldrh r4, [r2, #0]");
  w.L("adds r2, r2, #2");
  w.L("ldrsb r4, [r1, r4]");
  w.L("ldrb r0, [r5, #0]");
  w.L("adds r5, r5, #1");
  w.L("sxtb r0, r0");
  w.L("muls r4, r0, r4");
  w.L("adds r3, r3, r4");
  w.L("subs r6, r6, #1");
  w.L("bne " + mac);
  w.Comment("requantize (branch-free) and store");
  w.L("ldr r4, [sp, #16]");
  w.L("adds r3, r3, r4");
  w.L("ldr r4, [sp, #12]");
  w.L("asrs r3, r4");
  w.L("movs r4, #127");
  w.L("subs r5, r3, r4");
  w.L("asrs r6, r5, #31");
  w.L("bics r5, r6");
  w.L("subs r3, r3, r5");
  w.L("movs r5, r3");
  w.L("adds r5, #128");
  w.L("asrs r6, r5, #31");
  w.L("ands r5, r6");
  w.L("subs r3, r3, r5");
  w.L("strb r3, [r7, #0]");
  w.L("adds r7, r7, #1");
  EmitCountedLoopBack(w, 28, pix);
  w.Comment("next filter: advance weight row and bias");
  w.L("ldr r4, [sp, #4]");
  w.L("ldr r5, [sp, #32]");
  w.L("adds r4, r4, r5");
  w.L("str r4, [sp, #4]");
  w.L("ldr r4, [sp, #8]");
  w.L("adds r4, r4, #4");
  w.L("str r4, [sp, #8]");
  EmitCountedLoopBack(w, 24, filt);
  w.L("add sp, #48");
  w.L("pop {r4, r5, r6, r7, pc}");
  return w.text();
}

}  // namespace neuroc
