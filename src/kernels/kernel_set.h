// Assembles the set of kernel routines a model needs into one contiguous code section and
// resolves per-variant entry points. The resulting byte count is the "inference code" part
// of the paper's program-memory metric.

#ifndef NEUROC_SRC_KERNELS_KERNEL_SET_H_
#define NEUROC_SRC_KERNELS_KERNEL_SET_H_

#include <span>
#include <vector>

#include "src/core/model_image.h"
#include "src/isa/assembler.h"

namespace neuroc {

class KernelSet {
 public:
  // Deduplicates `variants`, generates and assembles their kernels at `base_addr`.
  // `include_conv` additionally links the Fig. 2 convolution kernel. `model` is required
  // when any variant is kUnrolled: those kernels are generated from the layer's frozen
  // adjacency (per model layer), not from the shape class alone.
  static KernelSet Build(std::span<const KernelVariant> variants, uint32_t base_addr,
                         bool include_conv = false, const NeuroCModel* model = nullptr);

  const AssembledProgram& program() const { return program_; }
  size_t code_bytes() const { return program_.bytes.size(); }

  // Entry address (Thumb, even) of the kernel for `variant`.
  uint32_t EntryFor(const KernelVariant& variant) const;
  uint32_t ConvEntry() const;

 private:
  AssembledProgram program_;
  std::vector<KernelVariant> variants_;
};

}  // namespace neuroc

#endif  // NEUROC_SRC_KERNELS_KERNEL_SET_H_
