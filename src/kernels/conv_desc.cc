#include "src/kernels/conv_desc.h"

#include "src/common/check.h"
#include "src/common/fixed_point.h"

namespace neuroc {

namespace {

void PushWord(std::vector<uint8_t>& blob, uint32_t v) {
  blob.push_back(static_cast<uint8_t>(v & 0xFF));
  blob.push_back(static_cast<uint8_t>((v >> 8) & 0xFF));
  blob.push_back(static_cast<uint8_t>((v >> 16) & 0xFF));
  blob.push_back(static_cast<uint8_t>((v >> 24) & 0xFF));
}

void PushHalf(std::vector<uint8_t>& blob, uint16_t v) {
  blob.push_back(static_cast<uint8_t>(v & 0xFF));
  blob.push_back(static_cast<uint8_t>(v >> 8));
}

}  // namespace

PackedConvLayer PackConvLayer(Machine& machine, const ConvLayerSpec& spec,
                              const std::vector<int8_t>& weights,
                              const std::vector<int32_t>& bias, uint32_t flash_base,
                              uint32_t ram_base) {
  const int n = spec.input_size;
  const int c = spec.channels;
  const int s = spec.kernel_size;
  const int k = spec.filters;
  const int m = n - s + 1;
  NEUROC_CHECK(m > 0);
  const size_t field = static_cast<size_t>(c) * s * s;
  NEUROC_CHECK(weights.size() == field * static_cast<size_t>(k));
  NEUROC_CHECK(bias.size() == static_cast<size_t>(k));

  PackedConvLayer out;
  out.output_size = m;
  out.macc_count = static_cast<size_t>(k) * c * s * s * m * m;

  // RAM plan: input (planar CHW), then output.
  out.input_addr = ram_base;
  out.output_addr =
      (ram_base + static_cast<uint32_t>(c * n * n) + 3u) & ~3u;

  // Flash blob: descriptor (10 words) | rel offsets u16[field] | pixel bases u16[m*m] |
  // weights q7 | bias i32.
  std::vector<uint8_t> blob(10 * 4, 0);
  // Relative offsets of each weight element within the input, from the receptive-field
  // origin pixel (top-left of the window in channel 0).
  const uint32_t rel_off = static_cast<uint32_t>(blob.size());
  for (int ch = 0; ch < c; ++ch) {
    for (int dy = 0; dy < s; ++dy) {
      for (int dx = 0; dx < s; ++dx) {
        const int off = ch * n * n + dy * n + dx;
        NEUROC_CHECK(off >= 0 && off < 65536);
        PushHalf(blob, static_cast<uint16_t>(off));
      }
    }
  }
  const uint32_t pix_off = static_cast<uint32_t>(blob.size());
  for (int y = 0; y < m; ++y) {
    for (int x = 0; x < m; ++x) {
      const int off = y * n + x;
      PushHalf(blob, static_cast<uint16_t>(off));
    }
  }
  const uint32_t w_off = static_cast<uint32_t>(blob.size());
  for (int8_t wv : weights) {
    blob.push_back(static_cast<uint8_t>(wv));
  }
  while (blob.size() % 4 != 0) {
    blob.push_back(0);
  }
  const uint32_t b_off = static_cast<uint32_t>(blob.size());
  for (int32_t bv : bias) {
    PushWord(blob, static_cast<uint32_t>(bv));
  }
  // Fill the descriptor.
  auto put_word = [&](int index, uint32_t v) {
    blob[static_cast<size_t>(index) * 4 + 0] = static_cast<uint8_t>(v & 0xFF);
    blob[static_cast<size_t>(index) * 4 + 1] = static_cast<uint8_t>((v >> 8) & 0xFF);
    blob[static_cast<size_t>(index) * 4 + 2] = static_cast<uint8_t>((v >> 16) & 0xFF);
    blob[static_cast<size_t>(index) * 4 + 3] = static_cast<uint8_t>((v >> 24) & 0xFF);
  };
  put_word(0, static_cast<uint32_t>(m * m));          // num_pixels
  put_word(1, static_cast<uint32_t>(k));              // num_filters
  put_word(2, static_cast<uint32_t>(field));          // field_size
  put_word(3, flash_base + rel_off);                  // rel offsets
  put_word(4, flash_base + w_off);                    // weights
  put_word(5, flash_base + b_off);                    // bias
  put_word(6, static_cast<uint32_t>(spec.shift));     // shift
  put_word(7, out.input_addr);                        // input
  put_word(8, out.output_addr);                       // output
  put_word(9, flash_base + pix_off);                  // pixel bases

  machine.LoadBytes(flash_base, blob);
  out.desc_addr = flash_base;
  out.flash_bytes = blob.size();
  return out;
}

void RunConvReference(const ConvLayerSpec& spec, const std::vector<int8_t>& weights,
                      const std::vector<int32_t>& bias, const std::vector<int8_t>& input,
                      std::vector<int8_t>& output) {
  const int n = spec.input_size;
  const int c = spec.channels;
  const int s = spec.kernel_size;
  const int k = spec.filters;
  const int m = n - s + 1;
  NEUROC_CHECK(input.size() == static_cast<size_t>(c) * n * n);
  output.assign(static_cast<size_t>(k) * m * m, 0);
  for (int f = 0; f < k; ++f) {
    const int8_t* wrow = weights.data() + static_cast<size_t>(f) * c * s * s;
    for (int y = 0; y < m; ++y) {
      for (int x = 0; x < m; ++x) {
        int32_t acc = bias[static_cast<size_t>(f)];
        int e = 0;
        for (int ch = 0; ch < c; ++ch) {
          for (int dy = 0; dy < s; ++dy) {
            for (int dx = 0; dx < s; ++dx, ++e) {
              const int32_t xv = input[static_cast<size_t>(ch) * n * n +
                                       static_cast<size_t>(y + dy) * n + (x + dx)];
              acc += static_cast<int32_t>(wrow[e]) * xv;
            }
          }
        }
        output[static_cast<size_t>(f) * m * m + static_cast<size_t>(y) * m + x] =
            static_cast<int8_t>(SatInt8(RoundingRightShift(acc, spec.shift)));
      }
    }
  }
}

}  // namespace neuroc
