// Deterministic memory fault injection for the simulated MCU.
//
// Models the transient and stuck-at byte-level faults the robustness harness studies:
// seeded single/multi-bit flips and stuck-at-0/1 faults into configurable flash or SRAM
// ranges, applied either between inferences (host-triggered) or mid-inference after a
// chosen number of retired instructions (via a CpuProbe). Injection goes through the
// host-write path, so flash corruption invalidates the predecoded-instruction cache
// exactly like a legitimate image reload — corrupted code takes effect on the next step.
//
// Everything is a pure function of the caller-provided Rng/seed: campaigns replay
// bit-identically from (seed, config) regardless of thread count.

#ifndef NEUROC_SRC_SIM_FAULT_INJECTOR_H_
#define NEUROC_SRC_SIM_FAULT_INJECTOR_H_

#include <cstdint>
#include <string_view>

#include "src/common/rng.h"
#include "src/sim/cpu.h"
#include "src/sim/memory.h"

namespace neuroc {

enum class FaultModel : uint8_t {
  kSingleBitFlip = 0,  // flip one uniformly chosen bit
  kMultiBitFlip = 1,   // flip `bits` distinct bits within one byte
  kStuckAtZero = 2,    // clear one bit (no-op if already 0 — a masked fault)
  kStuckAtOne = 3,     // set one bit (no-op if already 1)
};

const char* FaultModelName(FaultModel model);
// Parses "bitflip" / "multibit" / "stuck0" / "stuck1". Returns false on anything else.
bool ParseFaultModel(std::string_view text, FaultModel* out);

// What a single injection did to the byte it hit.
struct InjectedFault {
  uint32_t addr = 0;
  uint8_t mask = 0;    // bits the model targeted
  uint8_t before = 0;
  uint8_t after = 0;   // == before for a masked stuck-at fault

  bool changed() const { return before != after; }
};

// Applies `model` to one deterministically chosen byte in [base, base + size).
// `bits` is only consulted by kMultiBitFlip (clamped to [1, 8]). The target range must be
// host-addressable (inside flash or SRAM) — violating that is a host programming error.
InjectedFault InjectFault(MemoryMap& memory, uint32_t base, uint32_t size,
                          FaultModel model, int bits, Rng& rng);

// CpuProbe that injects exactly one fault after `trigger_instructions` further retired
// instructions, modelling an upset that strikes mid-inference. Attach with
// cpu.set_probe(&injector); the injection site/pattern is fixed by the Rng at trigger
// time, so a given (seed, trigger) replays identically.
class TriggeredInjector : public CpuProbe {
 public:
  TriggeredInjector(MemoryMap* memory, uint64_t trigger_instructions, uint32_t base,
                    uint32_t size, FaultModel model, int bits, Rng rng)
      : memory_(memory),
        remaining_(trigger_instructions),
        base_(base),
        size_(size),
        model_(model),
        bits_(bits),
        rng_(rng) {}

  void OnRetire(uint32_t addr, Op op, uint32_t cycles) override {
    (void)addr;
    (void)op;
    if (fired_) {
      return;
    }
    seen_cycles_ += cycles;
    if (remaining_ > 1) {
      --remaining_;
      return;
    }
    fault_ = InjectFault(*memory_, base_, size_, model_, bits_, rng_);
    fired_ = true;
  }

  bool fired() const { return fired_; }
  const InjectedFault& fault() const { return fault_; }
  // Cycles retired between probe attachment and the injection (exact: per-retire charges
  // sum to the CPU cycle delta). Feeds detection-latency reporting — the campaign
  // subtracts this from the cycles-at-detection to get injection→detection latency.
  uint64_t fired_at_cycles() const { return seen_cycles_; }

 private:
  MemoryMap* memory_;
  uint64_t remaining_;
  uint32_t base_;
  uint32_t size_;
  FaultModel model_;
  int bits_;
  Rng rng_;
  bool fired_ = false;
  uint64_t seen_cycles_ = 0;  // cycles retired before the injection fired
  InjectedFault fault_;
};

}  // namespace neuroc

#endif  // NEUROC_SRC_SIM_FAULT_INJECTOR_H_
