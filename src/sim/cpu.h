// ARMv6-M CPU executor: fetch/decode/execute over a MemoryMap with cycle accounting.
//
// Program-counter convention: `pc()` is the address of the next instruction to execute;
// reads of register 15 return pc+4 per the Thumb execution model. Returning through the
// magic address kStopAddress halts execution (the Machine uses it as the call sentinel,
// mirroring how EXC_RETURN-style sentinels work on real parts).

#ifndef NEUROC_SRC_SIM_CPU_H_
#define NEUROC_SRC_SIM_CPU_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/isa/isa.h"
#include "src/sim/cycle_model.h"
#include "src/sim/memory.h"

namespace neuroc {

struct CpuFlags {
  bool n = false;
  bool z = false;
  bool c = false;
  bool v = false;
};

// Opt-in per-instruction observer (see src/obs/sim_profiler.h for the flat profiler built
// on it). The hook fires after each retired instruction with the instruction address, the
// opcode, and the exact cycle cost charged for it — including flash wait states on the
// fetch, memory-access costs, and branch penalties, so per-PC cycles sum to Cpu::cycles().
// With no probe attached the only cost on the Step hot path is one null check, and the
// simulated cycle/instruction counts are identical either way.
class CpuProbe {
 public:
  virtual ~CpuProbe() = default;
  virtual void OnRetire(uint32_t addr, Op op, uint32_t cycles) = 0;
};

// Snapshot of the CPU's architectural state (see Cpu::SaveState). Deferred block-exit
// accounting is folded in before capture, so `op_histogram` and the counters always read
// as the step interpreter would have left them. Derived state (decode cache, compiled
// blocks, trace ring, probe attachment) is deliberately absent — caches rebuild
// deterministically and observers are host-side attachments, not machine state.
struct CpuArchState {
  std::array<uint32_t, 16> regs{};
  uint32_t pc = 0;
  CpuFlags flags;
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  std::array<uint64_t, 80> op_histogram{};
};

class Cpu {
 public:
  static constexpr uint32_t kStopAddress = 0xFFFFFFFE;

  Cpu(MemoryMap* memory, CycleModel model);
  ~Cpu();
  // The CPU parks its decode-cache validity flag inside the MemoryMap (flash-write
  // listener), so its address must stay stable for its lifetime.
  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  uint32_t reg(int index) const { return regs_[static_cast<size_t>(index)]; }
  void set_reg(int index, uint32_t value) { regs_[static_cast<size_t>(index)] = value; }
  uint32_t pc() const { return pc_; }
  void set_pc(uint32_t addr) { pc_ = addr & ~1u; }
  const CpuFlags& flags() const { return flags_; }
  void set_flags(CpuFlags f) { flags_ = f; }

  bool halted() const { return pc_ == (kStopAddress & ~1u); }

  // Executes one instruction; updates cycle and instruction counters. Guest faults
  // (undefined instruction, unmapped/unaligned access, store into flash) propagate as
  // GuestFault exceptions stamped with the faulting instruction's address — recoverable
  // at the Machine::TryCallFunction boundary, never a host abort.
  void Step();

  // Steps until halted; throws GuestFault(kInstructionBudgetExceeded) once more than
  // `max_instructions` retire. Keeping the loop in the CPU's own translation unit lets
  // the per-instruction dispatch stay call-free and hot. `cycle_limit` is the watchdog
  // deadline: an absolute bound on `cycles()` (0 disables). The first retired instruction
  // that pushes the counter past it throws GuestFault(kDeadlineExceeded) — block-compiled
  // execution breaks to the step interpreter before any block that *could* cross the
  // limit, so the faulting instruction, counters and registers are bit-identical across
  // all decode modes, and a limit that is never approached costs one compare per block.
  void Run(uint64_t max_instructions, uint64_t cycle_limit = 0);

  // Architectural state capture/restore, the substrate for Machine::Snapshot. Save folds
  // the deferred block-exit histograms first (so the capture matches the interpreter);
  // Restore folds any counters accrued since, then overwrites — pending block accounting
  // can never leak into the restored histogram.
  CpuArchState SaveState() const;
  void RestoreState(const CpuArchState& state);

  uint64_t cycles() const { return cycles_; }
  uint64_t instructions() const { return instructions_; }
  void ResetCounters();
  // Per-opcode retired-instruction histogram (indexed by Op). Block-compiled execution
  // defers histogram updates (one exec counter per block instead of one add per unique op
  // per block exit); reading through this accessor folds the deferred counts in first.
  const std::array<uint64_t, 80>& op_histogram() const {
    FlushBlockHistograms();
    return op_histogram_;
  }

  // Execution tracing: keeps the last `depth` retired instructions in a ring buffer
  // (addresses + raw halfwords; disassembled lazily on dump). The trace is printed
  // automatically when execution hits an undefined instruction. depth == 0 disables.
  void EnableTrace(size_t depth);
  // Most-recent-last disassembled listing of the buffered instructions.
  std::string DumpTrace() const;

  // Attaches (or with nullptr detaches) the per-instruction probe. The probe must outlive
  // the attachment.
  void set_probe(CpuProbe* probe) { probe_ = probe; }
  CpuProbe* probe() const { return probe_; }

  // Predecoded-instruction cache: each halfword-aligned flash slot is decoded once (on the
  // first Step after any host write into flash) so the fetch path becomes a table lookup.
  // Cycle/instruction counters, memory-access stats, heatmaps, traces and probe callbacks
  // are bit-identical with the cache on or off; the toggle exists so benchmarks can
  // measure the legacy decode-every-step path. Disabling the decode cache also disables
  // block-compiled execution (compiled blocks are built from the predecoded slots).
  void EnableDecodeCache(bool enabled);
  bool decode_cache_enabled() const { return icache_enabled_; }

  // Block-compiled execution: straight-line Thumb basic blocks (runs of predecoded flash
  // instructions ending at a branch/call/PC-writing instruction) are fused into compact
  // op-chains executed with one dispatch per block, with cycle/instruction/histogram/fetch
  // accounting batched at block exit and dead APSR flag writes elided (an op's flags are
  // only materialized when a later consumer — conditional branch, ADC/SBC — or a possible
  // guest-fault site can observe them). Execution falls back to the step interpreter at
  // block boundaries, for SRAM or uncovered flash, when a CpuProbe or trace ring is
  // attached, and for blocks that could cross the instruction budget, so every observable
  // quantity (counters, stats, heatmaps, probe streams, traces, fault reports) stays
  // bit-identical to the interpreter. On by default; benchmarks toggle it off to measure
  // the predecode-cache-only path.
  void EnableBlockCompile(bool enabled);
  bool block_compile_enabled() const { return block_enabled_; }

  // Block-granular profiling: per-PC/per-opcode cycle attribution that stays on the
  // block-compiled fast path. While enabled, ExecuteBlock bumps one exec counter per
  // block (plus a per-op flash-wait hit counter on data accesses and the taken count of
  // the conditional-branch terminator — the only two dynamic cycle sources inside a
  // block), and CollectBlockProfile expands those counters exactly to per-PC attribution
  // using the compiler's per-op static-cycle prefix sums. Mid-block faults and
  // interpreter-fallback steps (uncovered flash, step-only entries, budget tails, SRAM)
  // are folded in as per-PC residue, so the collected cycles sum exactly to the
  // Cpu::cycles() delta of the profiled window — the same invariant the step-interpreter
  // probe gives — without dropping out of block dispatch.
  struct ProfiledPc {
    uint64_t count = 0;   // times the instruction at this PC retired
    uint64_t cycles = 0;  // exact cycles charged to it (fetch waits, memory, branches)
    Op op = Op::kInvalid;
  };
  void EnableBlockProfile(bool enabled);
  bool block_profile_enabled() const { return block_profile_enabled_; }
  // Expands all per-block counters (plus residue) into an address-ordered per-PC map and
  // resets the per-block counters; the accumulated map persists until ResetBlockProfile.
  const std::map<uint32_t, ProfiledPc>& CollectBlockProfile() const;
  void ResetBlockProfile();

  const CycleModel& cycle_model() const { return model_; }
  MemoryMap& memory() { return *mem_; }

 private:
  struct TraceEntry {
    uint32_t addr = 0;
    uint16_t hw1 = 0;
    uint16_t hw2 = 0;
  };

  // One decoded flash slot, keyed by (addr - flash_base) >> 1. The raw halfwords ride
  // along so trace entries and fault reports match the interpreter byte for byte;
  // flash_reads is the number of counted halfword fetches (2 for a wide encoding whose
  // second halfword is mapped, else 1), precomputed so the fetch path is branch-free.
  struct Predecoded {
    Instr instr;
    uint16_t hw1 = 0;
    uint16_t hw2 = 0;
    uint8_t flash_reads = 1;
  };
  void RebuildDecodeCache();
  // Fetch/decode/execute without the fault-context catch frame (Step wraps it).
  void StepInner();

  // One fused instruction of a compiled block. PC-relative operands (literal-load and ADR
  // addresses, branch targets) are resolved to absolute values at compile time. All static
  // cycle costs — fetch wait states and fixed execution costs — are folded into the
  // block's static_cycles total; cycles_before is this op's prefix of that total (the
  // static cycles of everything retired before it, plus nothing of its own), which lets a
  // mid-block fault reconstruct the exact interpreter cycle count. Only the dynamic costs
  // (data-access flash wait states, the conditional-branch outcome) are accumulated at
  // runtime. fetch_reads doubles as the instruction length in halfwords: invalid wide
  // encodings never enter a block, so the counted-fetch rule and the length coincide.
  struct BlockOp {
    Op op = Op::kInvalid;
    uint8_t rd = 0;
    uint8_t rn = 0;
    uint8_t rm = 0;
    Cond cond = Cond::kAl;
    uint8_t set_flags = 1;   // materialize APSR writes (a later consumer can observe them)
    uint8_t fetch_reads = 1; // counted flash halfword fetches == length in halfwords
    uint8_t is_mem = 0;      // charges a data-access cost (flash-wait check at runtime)
    uint16_t reglist = 0;
    uint32_t cycles_before = 0;  // static cycles charged for ops preceding this one
    int32_t imm = 0;
    uint32_t addr = 0;       // instruction address (PC reads, LR writes, fault stamps)
  };
  struct Block {
    std::vector<BlockOp> ops;
    // Batched accounting applied once at block exit instead of per retired instruction.
    uint32_t static_cycles = 0;  // fetch wait states + fixed execution costs, whole block
    // Upper bound on the runtime-dynamic cycles one execution can add on top of
    // static_cycles (per-access flash wait states, the dearer kBcond outcome). The Run
    // loop uses static_cycles + dyn_bound to prove a block cannot cross the watchdog
    // cycle limit; blocks that might cross fall back to the step interpreter so the
    // deadline fires at exactly the same instruction as the legacy path.
    uint32_t dyn_bound = 0;
    uint64_t fetch_reads = 0;
    std::vector<std::pair<uint8_t, uint32_t>> histogram;  // (Op, retire count)
    bool terminated = false;  // ends in a control-flow op (else falls through)
    // Completed executions whose per-op histogram has not been folded into op_histogram_
    // yet; FlushBlockHistograms() applies histogram * execs and zeroes it. Mutable so the
    // flush can run from the const op_histogram() accessor.
    mutable uint64_t execs = 0;
    // Block-profile counters, maintained only by ExecuteBlock<true>: completed profiled
    // executions, taken outcomes of a kBcond terminator, and per-op counts of data
    // accesses that hit flash (the per-access wait-state charge). Everything else a
    // profile needs is reconstructed from the static cycles_before prefix sums.
    // FlushBlockProfiles() expands and zeroes these; mutable for the same reason as execs.
    mutable uint64_t prof_execs = 0;
    mutable uint64_t prof_bcond_taken = 0;
    // One flash-wait hit counter per op, sized at compile time (CompileBlock). The
    // profiled execute loop advances a cursor into this array in lockstep with the op
    // pointer, so recording a hit is a plain increment with no per-access index math
    // (an op index computed from the op pointer costs a divide-by-sizeof(BlockOp),
    // which dominated the profiled loop).
    mutable std::vector<uint64_t> prof_mem_hits;
  };
  static constexpr int32_t kBlockNotCompiled = -1;
  // The entry slot cannot start a block (invalid/UDF decode): always use the interpreter,
  // which raises the fault with the exact message/trace the seed produced.
  static constexpr int32_t kBlockStepOnly = -2;

  bool BlockModeActive() const {
    return block_enabled_ && icache_enabled_ && probe_ == nullptr && trace_.empty();
  }
  int32_t CompileBlock(size_t entry_slot);
  template <bool kProfiled>
  void ExecuteBlock(const Block& b);
  // Folds every block's deferred (histogram * execs) contribution into op_histogram_ and
  // zeroes the exec counters. Must run before blocks_ is cleared or the counts are lost.
  void FlushBlockHistograms() const;
  // Expands every block's profile counters into block_profile_ per-PC entries and zeroes
  // them. Like FlushBlockHistograms, must run before blocks_ is cleared.
  void FlushBlockProfiles() const;
  // Uncounted decode peek for the interpreter-fallback residue path (host-side read; no
  // fetch accounting, no heatmap traffic). Returns kInvalid for unmapped addresses.
  Op PeekOpAt(uint32_t addr) const;

  struct AddResult {
    uint32_t value;
    bool carry;
    bool overflow;
  };
  static AddResult AddWithCarry(uint32_t x, uint32_t y, bool carry_in);

  void SetNZ(uint32_t value) {
    flags_.n = (value >> 31) & 1;
    flags_.z = value == 0;
  }
  bool EvalCond(Cond cond) const;
  void Branch(uint32_t target, int cost);
  void ChargeMemAccess(uint32_t addr, bool is_store);

  MemoryMap* mem_;
  CycleModel model_;
  std::array<uint32_t, 16> regs_{};
  uint32_t pc_ = 0;
  CpuFlags flags_;
  uint64_t cycles_ = 0;
  uint64_t instructions_ = 0;
  mutable std::array<uint64_t, 80> op_histogram_{};
  std::vector<TraceEntry> trace_;  // ring buffer; empty when tracing is disabled
  size_t trace_pos_ = 0;
  uint64_t trace_count_ = 0;
  CpuProbe* probe_ = nullptr;
  std::vector<Predecoded> icache_;  // covers flash up to the load high-water mark
  bool icache_enabled_ = true;
  bool icache_valid_ = false;  // cleared by the MemoryMap on any host write into flash
  // Block cache, rebuilt with (and lazily on top of) the decode cache: block_index_ maps a
  // flash halfword slot to its compiled block, kBlockNotCompiled before first dispatch.
  // Any host write into flash invalidates both via the same flash-write listener flag.
  std::vector<Block> blocks_;
  std::vector<int32_t> block_index_;
  bool block_enabled_ = true;
  bool block_profile_enabled_ = false;
  // Accumulated per-PC profile: expanded block counters, mid-block fault residue, and
  // interpreter-fallback step residue. Address-ordered so reads are deterministic.
  // Mutable so CollectBlockProfile / FlushBlockProfiles can run through const paths
  // (mirroring the op_histogram flush).
  mutable std::map<uint32_t, ProfiledPc> block_profile_;
};

}  // namespace neuroc

#endif  // NEUROC_SRC_SIM_CPU_H_
