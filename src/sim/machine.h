// Convenience wrapper: an STM32F072-like machine (flash + SRAM + Cortex-M0 cycle model) with
// an AAPCS call interface. Benches load an assembled kernel plus a packed model image, call
// the kernel entry point with r0..r3 arguments, and read back cycles and memory statistics.

#ifndef NEUROC_SRC_SIM_MACHINE_H_
#define NEUROC_SRC_SIM_MACHINE_H_

#include <cstdint>
#include <initializer_list>
#include <span>

#include "src/common/status.h"
#include "src/sim/cpu.h"
#include "src/sim/memory.h"

namespace neuroc {

struct MachineConfig {
  uint32_t flash_base = 0x08000000;
  uint32_t flash_size = 128 * 1024;  // STM32F072RB
  uint32_t ram_base = 0x20000000;
  uint32_t ram_size = 16 * 1024;
  CycleModel cycle_model = CycleModel::CortexM0();
  double clock_hz = 8e6;  // the paper's operating point
  uint64_t max_instructions = 400'000'000;  // runaway guard
};

// Full architectural snapshot of a machine: CPU registers/flags/counters plus memory
// contents and observation state. What is NOT captured (all host-side attachments or
// deterministically rebuilt derived state): probe/trace attachment and ring contents,
// the decode cache, compiled blocks, and block-profile windows. Restoring is therefore
// bit-identical for every architecturally observable quantity — cycles, instructions,
// registers, memory, stats, heatmaps — across all decode modes.
struct MachineSnapshot {
  CpuArchState cpu;
  MemoryState memory;
  FaultReport last_fault;
};

// How much of a snapshot Restore rewinds. kFull also rewrites flash (and invalidates the
// decode/block caches); kRamAndRegisters leaves flash and its derived caches untouched —
// the cheap per-trial fork/retry path when flash is known (or assumed) pristine.
enum class RestoreScope : uint8_t { kFull = 0, kRamAndRegisters = 1 };

class Machine {
 public:
  explicit Machine(const MachineConfig& config = {});

  MemoryMap& memory() { return memory_; }
  Cpu& cpu() { return cpu_; }
  const MachineConfig& config() const { return config_; }

  // Copies bytes into simulated memory (flash or RAM).
  void LoadBytes(uint32_t addr, std::span<const uint8_t> bytes);

  // Calls a Thumb function at `addr` with up to four register arguments. The stack pointer
  // is set to the top of SRAM; the function returns through the stop sentinel in LR.
  // Returns the cycle count consumed by the call, or — when the *guest* faults (undefined
  // instruction, unmapped/unaligned access, store to flash, instruction-budget overrun) —
  // a Status carrying a FaultReport with the faulting PC, address, cycle counters and the
  // trace-ring tail (when tracing is enabled). This is the single exception→Status
  // conversion boundary: no GuestFault propagates past it.
  StatusOr<uint64_t> TryCallFunction(uint32_t addr, std::initializer_list<uint32_t> args);

  // Watchdog-supervised variant: additionally stops the guest with a structured
  // kDeadlineExceeded FaultReport once the call has consumed more than `cycle_budget`
  // simulated cycles (relative to the call start; 0 = unsupervised). The deadline fires
  // at the same retired instruction in every decode mode, and a budget that is never
  // approached changes no observable quantity — identical cycles, counters, heatmaps.
  StatusOr<uint64_t> TryCallFunction(uint32_t addr, std::initializer_list<uint32_t> args,
                                     uint64_t cycle_budget);

  // Captures the full architectural state (CPU + memory + last fault). Snapshots are
  // plain values: fork as many machines from one warmed-up state as needed (search
  // trials), or park one as the pristine image for scrub/retry recovery.
  MachineSnapshot Snapshot() const;
  // Restores a snapshot taken on a machine with the same configuration. kFull rewinds
  // everything including flash; kRamAndRegisters skips the flash rewrite (and the decode
  // cache invalidation it forces), which is the fast path for retry-from-snapshot when
  // flash integrity is separately assured.
  void Restore(const MachineSnapshot& snapshot, RestoreScope scope = RestoreScope::kFull);

  // Legacy abort-on-fault wrapper: prints the FaultReport diagnostic and aborts if the
  // call faults. For measurement code where a guest fault means the experiment itself is
  // invalid; fault-tolerant paths (search trials, fault campaigns) use TryCallFunction.
  uint64_t CallFunction(uint32_t addr, std::initializer_list<uint32_t> args);

  // FaultReport of the most recent TryCallFunction that faulted (code == kOk if the most
  // recent call succeeded). Kept for post-mortem inspection after the StatusOr is consumed.
  const FaultReport& last_fault() const { return last_fault_; }

  // r0 after the last call.
  uint32_t ReturnValue() const { return cpu_.reg(0); }

  // Converts cycles to milliseconds at the configured clock.
  double CyclesToMs(uint64_t cycles) const {
    return 1e3 * static_cast<double>(cycles) / config_.clock_hz;
  }

 private:
  MachineConfig config_;
  MemoryMap memory_;
  Cpu cpu_;
  FaultReport last_fault_;
};

}  // namespace neuroc

#endif  // NEUROC_SRC_SIM_MACHINE_H_
