// Convenience wrapper: an STM32F072-like machine (flash + SRAM + Cortex-M0 cycle model) with
// an AAPCS call interface. Benches load an assembled kernel plus a packed model image, call
// the kernel entry point with r0..r3 arguments, and read back cycles and memory statistics.

#ifndef NEUROC_SRC_SIM_MACHINE_H_
#define NEUROC_SRC_SIM_MACHINE_H_

#include <cstdint>
#include <initializer_list>
#include <span>

#include "src/sim/cpu.h"
#include "src/sim/memory.h"

namespace neuroc {

struct MachineConfig {
  uint32_t flash_base = 0x08000000;
  uint32_t flash_size = 128 * 1024;  // STM32F072RB
  uint32_t ram_base = 0x20000000;
  uint32_t ram_size = 16 * 1024;
  CycleModel cycle_model = CycleModel::CortexM0();
  double clock_hz = 8e6;  // the paper's operating point
  uint64_t max_instructions = 400'000'000;  // runaway guard
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config = {});

  MemoryMap& memory() { return memory_; }
  Cpu& cpu() { return cpu_; }
  const MachineConfig& config() const { return config_; }

  // Copies bytes into simulated memory (flash or RAM).
  void LoadBytes(uint32_t addr, std::span<const uint8_t> bytes);

  // Calls a Thumb function at `addr` with up to four register arguments. The stack pointer
  // is set to the top of SRAM; the function returns through the stop sentinel in LR.
  // Returns the cycle count consumed by the call.
  uint64_t CallFunction(uint32_t addr, std::initializer_list<uint32_t> args);

  // r0 after the last call.
  uint32_t ReturnValue() const { return cpu_.reg(0); }

  // Converts cycles to milliseconds at the configured clock.
  double CyclesToMs(uint64_t cycles) const {
    return 1e3 * static_cast<double>(cycles) / config_.clock_hz;
  }

 private:
  MachineConfig config_;
  MemoryMap memory_;
  Cpu cpu_;
};

}  // namespace neuroc

#endif  // NEUROC_SRC_SIM_MACHINE_H_
