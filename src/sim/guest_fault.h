// Internal control-flow type for recoverable guest faults.
//
// The counted CPU-side accessors of MemoryMap and the Cpu fetch/execute loop throw
// GuestFault when the *simulated* program does something illegal (unmapped access,
// unaligned access, store into flash, undefined instruction, instruction-budget overrun).
// Machine::TryCallFunction is the single catch site: it enriches the fault with the CPU
// context (pc, counters, trace tail) and converts it into a Status/FaultReport, so no
// exception ever crosses the library boundary. The clean execution path pays nothing —
// table-based unwinding costs only on throw.
//
// Host-side misuse (HostWrite out of bounds, bad API arguments) is NOT a GuestFault; it
// stays a NEUROC_CHECK-style abort because it indicates a bug in the harness itself.

#ifndef NEUROC_SRC_SIM_GUEST_FAULT_H_
#define NEUROC_SRC_SIM_GUEST_FAULT_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace neuroc {

struct GuestFault {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
  uint32_t addr = 0;         // faulting data address, when applicable
  // Filled in by Cpu::Step on the way out (the memory system does not know the PC).
  uint32_t pc = 0;
  uint16_t instruction = 0;
};

}  // namespace neuroc

#endif  // NEUROC_SRC_SIM_GUEST_FAULT_H_
