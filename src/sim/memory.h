// Simulated memory map of the target MCU: flash at 0x08000000 and SRAM at 0x20000000, the
// STM32F072RB layout. Flash is writable from the host (image loading) but read-only to the
// simulated CPU, mirroring the real part. Alignment is enforced as on ARMv6-M (unaligned
// word/halfword accesses fault). Access counters feed the memory-behaviour analyses.

#ifndef NEUROC_SRC_SIM_MEMORY_H_
#define NEUROC_SRC_SIM_MEMORY_H_

#include <cstdint>
#include <span>
#include <vector>

namespace neuroc {

enum class MemRegion : uint8_t { kFlash = 0, kSram = 1, kNone = 2 };

struct MemAccessStats {
  uint64_t flash_reads = 0;
  uint64_t sram_reads = 0;
  uint64_t sram_writes = 0;
};

class MemoryMap {
 public:
  MemoryMap(uint32_t flash_base, uint32_t flash_size, uint32_t ram_base, uint32_t ram_size);

  uint32_t flash_base() const { return flash_base_; }
  uint32_t flash_size() const { return static_cast<uint32_t>(flash_.size()); }
  uint32_t ram_base() const { return ram_base_; }
  uint32_t ram_size() const { return static_cast<uint32_t>(ram_.size()); }

  MemRegion RegionOf(uint32_t addr) const;

  // CPU-side accessors (counted, flash writes fault).
  uint8_t Read8(uint32_t addr);
  uint16_t Read16(uint32_t addr);
  uint32_t Read32(uint32_t addr);
  void Write8(uint32_t addr, uint8_t value);
  void Write16(uint32_t addr, uint16_t value);
  void Write32(uint32_t addr, uint32_t value);

  // Host-side loading/inspection (uncounted; may write flash).
  void HostWrite(uint32_t addr, std::span<const uint8_t> bytes);
  void HostRead(uint32_t addr, std::span<uint8_t> bytes) const;

  const MemAccessStats& stats() const { return stats_; }
  void ResetStats() { stats_ = MemAccessStats{}; }

 private:
  uint8_t* HostPtr(uint32_t addr, uint32_t size, bool allow_flash_write);
  const uint8_t* HostPtrConst(uint32_t addr, uint32_t size) const;

  uint32_t flash_base_;
  uint32_t ram_base_;
  std::vector<uint8_t> flash_;
  std::vector<uint8_t> ram_;
  MemAccessStats stats_;
};

}  // namespace neuroc

#endif  // NEUROC_SRC_SIM_MEMORY_H_
