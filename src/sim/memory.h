// Simulated memory map of the target MCU: flash at 0x08000000 and SRAM at 0x20000000, the
// STM32F072RB layout. Flash is writable from the host (image loading) but read-only to the
// simulated CPU, mirroring the real part. Alignment is enforced as on ARMv6-M (unaligned
// word/halfword accesses fault). Access counters feed the memory-behaviour analyses.

#ifndef NEUROC_SRC_SIM_MEMORY_H_
#define NEUROC_SRC_SIM_MEMORY_H_

#include <cstdint>
#include <span>
#include <vector>

namespace neuroc {

enum class MemRegion : uint8_t { kFlash = 0, kSram = 1, kNone = 2 };

struct MemAccessStats {
  uint64_t flash_reads = 0;
  uint64_t sram_reads = 0;
  uint64_t sram_writes = 0;
};

// Opt-in per-region access histogram: counts of CPU accesses per `bucket_bytes`-sized
// address bucket (instruction fetches included — on a cache-less core they are flash
// traffic like any other). Feeds the profiler's memory heatmaps.
struct MemHeatmap {
  uint32_t bucket_bytes = 0;  // 0 = disabled
  std::vector<uint64_t> flash_reads;
  std::vector<uint64_t> sram_reads;
  std::vector<uint64_t> sram_writes;
};

class MemoryMap {
 public:
  MemoryMap(uint32_t flash_base, uint32_t flash_size, uint32_t ram_base, uint32_t ram_size);

  uint32_t flash_base() const { return flash_base_; }
  uint32_t flash_size() const { return static_cast<uint32_t>(flash_.size()); }
  uint32_t ram_base() const { return ram_base_; }
  uint32_t ram_size() const { return static_cast<uint32_t>(ram_.size()); }

  MemRegion RegionOf(uint32_t addr) const;

  // CPU-side accessors (counted, flash writes fault).
  uint8_t Read8(uint32_t addr);
  uint16_t Read16(uint32_t addr);
  uint32_t Read32(uint32_t addr);
  void Write8(uint32_t addr, uint8_t value);
  void Write16(uint32_t addr, uint16_t value);
  void Write32(uint32_t addr, uint32_t value);

  // Host-side loading/inspection (uncounted; may write flash).
  void HostWrite(uint32_t addr, std::span<const uint8_t> bytes);
  void HostRead(uint32_t addr, std::span<uint8_t> bytes) const;

  const MemAccessStats& stats() const { return stats_; }
  void ResetStats() { stats_ = MemAccessStats{}; }

  // Heatmap recording (opt-in; the plain counters above always run). Enabling clears any
  // previous histogram. `bucket_bytes` must be a power of two.
  void EnableHeatmap(uint32_t bucket_bytes);
  void DisableHeatmap();
  const MemHeatmap& heatmap() const { return heatmap_; }

  // Stack high-water tracking (opt-in): every CPU access at or above `floor_addr` in SRAM
  // is treated as a stack access (the runtime places activation buffers below the floor
  // and the stack grows down from the top of SRAM, so the two never interleave). The
  // low-water mark is the smallest such address seen — i.e. the deepest stack extent.
  void EnableStackWatch(uint32_t floor_addr);
  void DisableStackWatch() { stack_watch_ = false; }
  // Smallest stack address observed since EnableStackWatch; UINT32_MAX if none yet.
  uint32_t stack_low_water() const { return stack_low_water_; }

 private:
  uint8_t* HostPtr(uint32_t addr, uint32_t size, bool allow_flash_write);
  const uint8_t* HostPtrConst(uint32_t addr, uint32_t size) const;
  void Observe(uint32_t addr, MemRegion region, bool is_write);

  // Single gate for the opt-in observers, so the counted accessors stay one branch when
  // nothing is attached.
  bool observing() const { return heatmap_.bucket_bytes != 0 || stack_watch_; }

  uint32_t flash_base_;
  uint32_t ram_base_;
  std::vector<uint8_t> flash_;
  std::vector<uint8_t> ram_;
  MemAccessStats stats_;
  MemHeatmap heatmap_;
  bool stack_watch_ = false;
  uint32_t stack_floor_ = 0;
  uint32_t stack_low_water_ = 0xFFFFFFFFu;
};

}  // namespace neuroc

#endif  // NEUROC_SRC_SIM_MEMORY_H_
