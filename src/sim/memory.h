// Simulated memory map of the target MCU: flash at 0x08000000 and SRAM at 0x20000000, the
// STM32F072RB layout. Flash is writable from the host (image loading) but read-only to the
// simulated CPU, mirroring the real part. Alignment is enforced as on ARMv6-M (unaligned
// word/halfword accesses fault). Access counters feed the memory-behaviour analyses.

#ifndef NEUROC_SRC_SIM_MEMORY_H_
#define NEUROC_SRC_SIM_MEMORY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/status.h"

namespace neuroc {

enum class MemRegion : uint8_t { kFlash = 0, kSram = 1, kNone = 2 };

struct MemAccessStats {
  uint64_t flash_reads = 0;
  uint64_t sram_reads = 0;
  uint64_t sram_writes = 0;
};

// Opt-in per-region access histogram: counts of CPU accesses per `bucket_bytes`-sized
// address bucket (instruction fetches included — on a cache-less core they are flash
// traffic like any other). Feeds the profiler's memory heatmaps.
struct MemHeatmap {
  uint32_t bucket_bytes = 0;  // 0 = disabled
  std::vector<uint64_t> flash_reads;
  std::vector<uint64_t> sram_reads;
  std::vector<uint64_t> sram_writes;
};

// Snapshot of the architectural memory state (see MemoryMap::SaveState). Flash is stored
// only up to the load high-water mark — the untouched erase pattern beyond it is implied —
// so snapshots of a few-KB image don't copy the full 128 KB part. Derived state (decode
// caches, compiled blocks) is deliberately absent: it is rebuilt deterministically.
struct MemoryState {
  std::vector<uint8_t> flash;  // [0, flash_high_water) at capture time
  uint32_t flash_high_water = 0;
  std::vector<uint8_t> ram;    // full SRAM
  MemAccessStats stats;
  MemHeatmap heatmap;
  bool stack_watch = false;
  uint32_t stack_floor = 0;
  uint32_t stack_low_water = 0xFFFFFFFFu;
};

class MemoryMap {
 public:
  MemoryMap(uint32_t flash_base, uint32_t flash_size, uint32_t ram_base, uint32_t ram_size);

  uint32_t flash_base() const { return flash_base_; }
  uint32_t flash_size() const { return flash_size_; }
  uint32_t ram_base() const { return ram_base_; }
  uint32_t ram_size() const { return ram_size_; }

  // Region classification over precomputed bounds. The unsigned wrap-around form compiles
  // to a single subtract+compare per region, which matters because the CPU consults this
  // on every fetch and data access for flash-wait-state accounting.
  MemRegion RegionOf(uint32_t addr) const {
    if (addr - flash_base_ < flash_size_) {
      return MemRegion::kFlash;
    }
    if (addr - ram_base_ < ram_size_) {
      return MemRegion::kSram;
    }
    return MemRegion::kNone;
  }
  bool InFlash(uint32_t addr) const { return addr - flash_base_ < flash_size_; }

  // CPU-side accessors (counted, flash writes fault). Inline over the precomputed region
  // bounds: the simulator performs one of these per fetched halfword and per load/store,
  // so the classify-count-observe-access sequence must compile to straight-line code
  // instead of two out-of-line region switches per access.
  uint8_t Read8(uint32_t addr) {
    const MemRegion region = CountRead(addr);
    return *ReadPtr(addr, 1, region);
  }
  uint16_t Read16(uint32_t addr) {
    if (addr % 2 != 0) {
      Fault(ErrorCode::kUnalignedAccess, "unaligned halfword read", addr);
    }
    const MemRegion region = CountRead(addr);
    const uint8_t* p = ReadPtr(addr, 2, region);
    return static_cast<uint16_t>(p[0] | (p[1] << 8));
  }
  uint32_t Read32(uint32_t addr) {
    if (addr % 4 != 0) {
      Fault(ErrorCode::kUnalignedAccess, "unaligned word read", addr);
    }
    const MemRegion region = CountRead(addr);
    const uint8_t* p = ReadPtr(addr, 4, region);
    return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
  }
  void Write8(uint32_t addr, uint8_t value) {
    *WritePtr(addr, 1) = value;
  }
  void Write16(uint32_t addr, uint16_t value) {
    if (addr % 2 != 0) {
      Fault(ErrorCode::kUnalignedAccess, "unaligned halfword write", addr);
    }
    uint8_t* p = WritePtr(addr, 2);
    p[0] = static_cast<uint8_t>(value & 0xFF);
    p[1] = static_cast<uint8_t>(value >> 8);
  }
  void Write32(uint32_t addr, uint32_t value) {
    if (addr % 4 != 0) {
      Fault(ErrorCode::kUnalignedAccess, "unaligned word write", addr);
    }
    uint8_t* p = WritePtr(addr, 4);
    p[0] = static_cast<uint8_t>(value & 0xFF);
    p[1] = static_cast<uint8_t>((value >> 8) & 0xFF);
    p[2] = static_cast<uint8_t>((value >> 16) & 0xFF);
    p[3] = static_cast<uint8_t>((value >> 24) & 0xFF);
  }

  // Host-side loading/inspection (uncounted; may write flash).
  void HostWrite(uint32_t addr, std::span<const uint8_t> bytes);
  void HostRead(uint32_t addr, std::span<uint8_t> bytes) const;

  // Bumped on every HostWrite that lands in flash. Consumers that cache decoded flash
  // contents (the CPU's predecoded-instruction cache) compare against this to invalidate.
  uint64_t flash_generation() const { return flash_generation_; }
  // Highest flash offset (exclusive) ever touched by a HostWrite; bounds how much of
  // flash a decode-cache rebuild needs to cover. Never shrinks.
  uint32_t flash_high_water() const { return flash_high_water_; }
  // Raw flash contents for host-side decoding. Fetches routed through this must be
  // recorded via CountFlashFetch to keep the access counters identical to Read16.
  std::span<const uint8_t> flash_bytes() const { return flash_; }

  // Records exactly what Read16 records for `reads` consecutive halfword instruction
  // fetches from flash starting at `addr`: one counted flash read per halfword plus the
  // opt-in heatmap/stack observations, in fetch order. The predecoded fetch path calls
  // this instead of Read16 so stats and heatmaps stay bit-identical to the interpreter
  // that re-reads flash every step.
  void CountFlashFetches(uint32_t addr, uint32_t reads) {
    stats_.flash_reads += reads;
    if (observing()) {
      for (uint32_t i = 0; i < reads; ++i) {
        Observe(addr + 2 * i, MemRegion::kFlash, /*is_write=*/false);
      }
    }
  }

  // Batched form of CountFlashFetches for block-compiled execution when no heatmap or
  // stack watcher is attached: one add covers a whole block's instruction fetches. Callers
  // must check observing() and take the per-fetch path when it is true, otherwise the
  // opt-in histograms would miss the fetch traffic.
  void AddFlashReads(uint64_t reads) { stats_.flash_reads += reads; }

  // Single gate for the opt-in observers, cached as one flag so the counted accessors
  // stay one load-and-branch when nothing is attached. Public so the block executor can
  // pick between per-fetch observation replay and the batched counter add.
  bool observing() const { return observing_; }

  // At most one decoded-flash consumer (the owning CPU) parks its cache-validity flag
  // here; every HostWrite into flash clears it. This replaces a per-step generation
  // compare through the MemoryMap pointer with a test of the consumer's own flag.
  void RegisterFlashWriteListener(bool* valid_flag) { flash_listener_ = valid_flag; }
  void UnregisterFlashWriteListener(bool* valid_flag) {
    if (flash_listener_ == valid_flag) {
      flash_listener_ = nullptr;
    }
  }

  const MemAccessStats& stats() const { return stats_; }
  void ResetStats() { stats_ = MemAccessStats{}; }

  // Heatmap recording (opt-in; the plain counters above always run). Enabling clears any
  // previous histogram. `bucket_bytes` must be a power of two.
  void EnableHeatmap(uint32_t bucket_bytes);
  void DisableHeatmap();
  const MemHeatmap& heatmap() const { return heatmap_; }

  // Stack high-water tracking (opt-in): every CPU access at or above `floor_addr` in SRAM
  // is treated as a stack access (the runtime places activation buffers below the floor
  // and the stack grows down from the top of SRAM, so the two never interleave). The
  // low-water mark is the smallest such address seen — i.e. the deepest stack extent.
  void EnableStackWatch(uint32_t floor_addr);
  void DisableStackWatch() {
    stack_watch_ = false;
    UpdateObserving();
  }
  // Smallest stack address observed since EnableStackWatch; UINT32_MAX if none yet.
  uint32_t stack_low_water() const { return stack_low_water_; }

  // Captures the architectural memory state (flash up to the high-water mark, all of
  // SRAM, access stats, heatmap/stack-watch configuration and contents).
  MemoryState SaveState() const;
  // Restores a captured state. With `restore_flash` the flash contents and high-water
  // mark revert to capture time (bytes loaded after the capture are re-erased to 0) and
  // the flash generation is bumped so decoded-flash consumers rebuild; without it the
  // flash image — and therefore every derived cache — is left untouched, making the
  // RAM-and-stats restore cheap enough for per-trial forking.
  void RestoreState(const MemoryState& state, bool restore_flash);

 private:
  uint8_t* HostPtr(uint32_t addr, uint32_t size, bool allow_flash_write);
  const uint8_t* HostPtrConst(uint32_t addr, uint32_t size) const;
  void Observe(uint32_t addr, MemRegion region, bool is_write);
  // Guest (CPU-side) fault: throws GuestFault, recoverable at the Machine boundary.
  [[noreturn]] static void Fault(ErrorCode code, const char* what, uint32_t addr);
  // Host-side misuse (bad LoadBytes/HostRead arguments): a harness bug — aborts.
  [[noreturn]] static void HostFault(const char* what, uint32_t addr);

  // Classify + count + observe for a CPU read. Unmapped addresses still count as an SRAM
  // read here (matching the historical accounting) and then fault in ReadPtr.
  MemRegion CountRead(uint32_t addr) {
    const MemRegion region = RegionOf(addr);
    (region == MemRegion::kFlash ? stats_.flash_reads : stats_.sram_reads) += 1;
    if (observing()) {
      Observe(addr, region, /*is_write=*/false);
    }
    return region;
  }

  const uint8_t* ReadPtr(uint32_t addr, uint32_t size, MemRegion region) const {
    if (region == MemRegion::kFlash) {
      if (addr + size > flash_base_ + flash_size_) {
        Fault(ErrorCode::kUnmappedAccess, "flash access past end", addr);
      }
      return flash_.data() + (addr - flash_base_);
    }
    if (region == MemRegion::kSram) {
      if (addr + size > ram_base_ + ram_size_) {
        Fault(ErrorCode::kUnmappedAccess, "sram access past end", addr);
      }
      return ram_.data() + (addr - ram_base_);
    }
    Fault(ErrorCode::kUnmappedAccess, "access to unmapped address", addr);
  }

  // Count + observe + bounds-check for a CPU write. The write counter ticks before the
  // region check (as the out-of-line version always did); flash writes fault.
  uint8_t* WritePtr(uint32_t addr, uint32_t size) {
    ++stats_.sram_writes;
    const MemRegion region = RegionOf(addr);
    if (observing()) {
      Observe(addr, region, /*is_write=*/true);
    }
    if (region == MemRegion::kSram) {
      if (addr + size > ram_base_ + ram_size_) {
        Fault(ErrorCode::kUnmappedAccess, "sram access past end", addr);
      }
      return ram_.data() + (addr - ram_base_);
    }
    if (region == MemRegion::kFlash) {
      Fault(ErrorCode::kIllegalStore, "write to flash", addr);
    }
    Fault(ErrorCode::kUnmappedAccess, "access to unmapped address", addr);
  }

  void UpdateObserving() { observing_ = heatmap_.bucket_bytes != 0 || stack_watch_; }

  uint32_t flash_base_;
  uint32_t ram_base_;
  uint32_t flash_size_;
  uint32_t ram_size_;
  std::vector<uint8_t> flash_;
  std::vector<uint8_t> ram_;
  uint64_t flash_generation_ = 0;
  uint32_t flash_high_water_ = 0;
  bool* flash_listener_ = nullptr;
  MemAccessStats stats_;
  MemHeatmap heatmap_;
  bool observing_ = false;
  bool stack_watch_ = false;
  uint32_t stack_floor_ = 0;
  uint32_t stack_low_water_ = 0xFFFFFFFFu;
};

}  // namespace neuroc

#endif  // NEUROC_SRC_SIM_MEMORY_H_
