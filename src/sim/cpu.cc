#include "src/sim/cpu.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <span>

#include "src/common/check.h"
#include "src/isa/decoder.h"
#include "src/isa/disassembler.h"
#include "src/sim/guest_fault.h"

namespace neuroc {

Cpu::Cpu(MemoryMap* memory, CycleModel model) : mem_(memory), model_(model) {
  mem_->RegisterFlashWriteListener(&icache_valid_);
}

Cpu::~Cpu() { mem_->UnregisterFlashWriteListener(&icache_valid_); }

void Cpu::EnableDecodeCache(bool enabled) {
  icache_enabled_ = enabled;
  if (!enabled) {
    icache_ = std::vector<Predecoded>();  // release memory, not just clear
    icache_valid_ = false;
  }
}

void Cpu::RebuildDecodeCache() {
  const std::span<const uint8_t> flash = mem_->flash_bytes();
  // Only decode up to the load high-water mark: images occupy a few KB of the 128 KB
  // flash, and slots past it hold the erase pattern the CPU normally never reaches (if it
  // does, Step falls back to the interpreter path below, which behaves identically).
  const size_t covered = std::min<size_t>(flash.size(), mem_->flash_high_water());
  const size_t slots = covered / 2;
  icache_.resize(slots);
  for (size_t s = 0; s < slots; ++s) {
    const uint16_t hw1 = static_cast<uint16_t>(flash[2 * s] | (flash[2 * s + 1] << 8));
    // Same peek rule as the interpreter: hw2 is read only for a wide (BL-prefix)
    // encoding, and reads as 0 when the prefix sits on the last mapped halfword.
    uint16_t hw2 = 0;
    uint8_t flash_reads = 1;
    if ((hw1 & 0xF800) == 0xF000 && 2 * s + 3 < flash.size()) {
      hw2 = static_cast<uint16_t>(flash[2 * s + 2] | (flash[2 * s + 3] << 8));
      flash_reads = 2;
    }
    icache_[s] = Predecoded{DecodeInstr(hw1, hw2), hw1, hw2, flash_reads};
  }
  icache_valid_ = true;
}

void Cpu::ResetCounters() {
  cycles_ = 0;
  instructions_ = 0;
  op_histogram_.fill(0);
  mem_->ResetStats();
}

void Cpu::EnableTrace(size_t depth) {
  trace_.assign(depth, TraceEntry{});
  trace_pos_ = 0;
  trace_count_ = 0;
}

std::string Cpu::DumpTrace() const {
  std::string out;
  if (trace_.empty()) {
    return out;
  }
  const size_t n = trace_count_ < trace_.size() ? static_cast<size_t>(trace_count_)
                                                : trace_.size();
  // Oldest first: the ring position points at the next overwrite slot.
  size_t start = trace_count_ < trace_.size() ? 0 : trace_pos_;
  for (size_t i = 0; i < n; ++i) {
    const TraceEntry& e = trace_[(start + i) % trace_.size()];
    const Instr in = DecodeInstr(e.hw1, e.hw2);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "  %08x: %04x  ", e.addr, e.hw1);
    out += buf;
    out += Disassemble(in, e.addr);
    out += "\n";
  }
  return out;
}

Cpu::AddResult Cpu::AddWithCarry(uint32_t x, uint32_t y, bool carry_in) {
  const uint64_t unsigned_sum =
      static_cast<uint64_t>(x) + static_cast<uint64_t>(y) + (carry_in ? 1 : 0);
  const int64_t signed_sum = static_cast<int64_t>(static_cast<int32_t>(x)) +
                             static_cast<int64_t>(static_cast<int32_t>(y)) +
                             (carry_in ? 1 : 0);
  AddResult r;
  r.value = static_cast<uint32_t>(unsigned_sum);
  r.carry = unsigned_sum != static_cast<uint64_t>(r.value);
  r.overflow = signed_sum != static_cast<int64_t>(static_cast<int32_t>(r.value));
  return r;
}

bool Cpu::EvalCond(Cond cond) const {
  switch (cond) {
    case Cond::kEq: return flags_.z;
    case Cond::kNe: return !flags_.z;
    case Cond::kCs: return flags_.c;
    case Cond::kCc: return !flags_.c;
    case Cond::kMi: return flags_.n;
    case Cond::kPl: return !flags_.n;
    case Cond::kVs: return flags_.v;
    case Cond::kVc: return !flags_.v;
    case Cond::kHi: return flags_.c && !flags_.z;
    case Cond::kLs: return !flags_.c || flags_.z;
    case Cond::kGe: return flags_.n == flags_.v;
    case Cond::kLt: return flags_.n != flags_.v;
    case Cond::kGt: return !flags_.z && flags_.n == flags_.v;
    case Cond::kLe: return flags_.z || flags_.n != flags_.v;
    case Cond::kAl: return true;
  }
  return false;
}

void Cpu::Branch(uint32_t target, int cost) {
  pc_ = target & ~1u;
  cycles_ += static_cast<uint64_t>(cost);
}

void Cpu::ChargeMemAccess(uint32_t addr, bool is_store) {
  cycles_ += static_cast<uint64_t>(is_store ? model_.store : model_.load);
  if (mem_->InFlash(addr)) {
    cycles_ += static_cast<uint64_t>(model_.flash_wait_states);
  }
}

void Cpu::Run(uint64_t max_instructions) {
  const uint64_t start = instructions_;
  while (!halted()) {
    Step();
    if (instructions_ - start > max_instructions) {
      throw GuestFault{ErrorCode::kInstructionBudgetExceeded, "instruction budget exceeded",
                       /*addr=*/0, /*pc=*/pc_, /*instruction=*/0};
    }
  }
}

void Cpu::Step() {
  // One catch site per retired instruction: a guest fault thrown anywhere inside the
  // fetch/execute path (memory system or decode) is stamped with the address of the
  // instruction that caused it before propagating to Machine::TryCallFunction. The
  // non-faulting path is unaffected (table-based unwinding costs only on throw).
  const uint32_t fault_pc = pc_;
  try {
    StepInner();
  } catch (GuestFault& gf) {
    gf.pc = fault_pc;
    throw;
  }
}

void Cpu::StepInner() {
  NEUROC_CHECK(!halted());
  const uint32_t addr = pc_;
  const uint64_t cycles_at_entry = cycles_;
  const bool fetch_from_flash = mem_->InFlash(addr);
  uint16_t hw1 = 0;
  uint16_t hw2 = 0;
  Instr in;
  size_t slot = 0;
  bool cached = false;
  if (icache_enabled_ && fetch_from_flash) {
    if (!icache_valid_) {
      RebuildDecodeCache();
    }
    slot = static_cast<size_t>(addr - mem_->flash_base()) >> 1;
    cached = slot < icache_.size();
  }
  if (cached) {
    const Predecoded& pd = icache_[slot];
    hw1 = pd.hw1;
    hw2 = pd.hw2;
    in = pd.instr;
    // Fetch accounting identical to the interpreter path: one counted flash read per
    // halfword fetched (the per-slot count already encodes the wide/mapped rule).
    mem_->CountFlashFetches(addr, pd.flash_reads);
  } else {
    hw1 = mem_->Read16(addr);
    // Peek the second halfword only for 32-bit encodings (BL prefix). A wide prefix on
    // the last mapped halfword is an undefined instruction (hw2 reads as 0), not a
    // memory fault mid-fetch — the trace dump below must still show it.
    const bool wide = (hw1 & 0xF800) == 0xF000;
    hw2 = (wide && mem_->RegionOf(addr + 2) != MemRegion::kNone) ? mem_->Read16(addr + 2)
                                                                 : 0;
    in = DecodeInstr(hw1, hw2);
  }
  if (!trace_.empty()) {
    trace_[trace_pos_] = {addr, hw1, hw2};
    trace_pos_ = (trace_pos_ + 1) % trace_.size();
    ++trace_count_;
  }
  if (in.op == Op::kInvalid || in.op == Op::kUdf) {
    char msg[48];
    std::snprintf(msg, sizeof(msg), "undefined instruction 0x%04x", hw1);
    throw GuestFault{ErrorCode::kUndefinedInstruction, msg, /*addr=*/0, /*pc=*/addr,
                     /*instruction=*/hw1};
  }
  ++instructions_;
  ++op_histogram_[static_cast<size_t>(in.op)];
  if (fetch_from_flash) {
    cycles_ += static_cast<uint64_t>(model_.flash_wait_states);
  }
  pc_ = addr + 2u * in.length;  // default fall-through; branches overwrite

  // PC-read rule: reads of r15 observe the current instruction's address + 4.
  // Materializing that into the register file once per step makes every operand read a
  // plain array load instead of a compare-and-select per read. Nothing outside Step
  // reads slot 15 (the architectural PC lives in pc_).
  regs_[kRegPc] = addr + 4;
  auto rr = [&](uint8_t r) -> uint32_t { return regs_[r]; };

  switch (in.op) {
    case Op::kLslImm: {
      const uint32_t v = rr(in.rm);
      uint32_t result;
      if (in.imm == 0) {
        result = v;  // MOVS register form: C unchanged
      } else {
        flags_.c = (v >> (32 - in.imm)) & 1;
        result = v << in.imm;
      }
      regs_[in.rd] = result;
      SetNZ(result);
      cycles_ += model_.alu;
      break;
    }
    case Op::kLsrImm: {
      const uint32_t v = rr(in.rm);
      const int amount = in.imm == 0 ? 32 : in.imm;
      uint32_t result;
      if (amount == 32) {
        flags_.c = (v >> 31) & 1;
        result = 0;
      } else {
        flags_.c = (v >> (amount - 1)) & 1;
        result = v >> amount;
      }
      regs_[in.rd] = result;
      SetNZ(result);
      cycles_ += model_.alu;
      break;
    }
    case Op::kAsrImm: {
      const uint32_t v = rr(in.rm);
      const int amount = in.imm == 0 ? 32 : in.imm;
      uint32_t result;
      if (amount == 32) {
        flags_.c = (v >> 31) & 1;
        result = (v >> 31) ? 0xFFFFFFFFu : 0u;
      } else {
        flags_.c = (v >> (amount - 1)) & 1;
        result = static_cast<uint32_t>(static_cast<int32_t>(v) >> amount);
      }
      regs_[in.rd] = result;
      SetNZ(result);
      cycles_ += model_.alu;
      break;
    }
    case Op::kAddReg:
    case Op::kAddImm3: {
      const uint32_t op2 = in.op == Op::kAddReg ? rr(in.rm) : static_cast<uint32_t>(in.imm);
      const AddResult r = AddWithCarry(rr(in.rn), op2, false);
      regs_[in.rd] = r.value;
      SetNZ(r.value);
      flags_.c = r.carry;
      flags_.v = r.overflow;
      cycles_ += model_.alu;
      break;
    }
    case Op::kSubReg:
    case Op::kSubImm3: {
      const uint32_t op2 = in.op == Op::kSubReg ? rr(in.rm) : static_cast<uint32_t>(in.imm);
      const AddResult r = AddWithCarry(rr(in.rn), ~op2, true);
      regs_[in.rd] = r.value;
      SetNZ(r.value);
      flags_.c = r.carry;
      flags_.v = r.overflow;
      cycles_ += model_.alu;
      break;
    }
    case Op::kMovImm:
      regs_[in.rd] = static_cast<uint32_t>(in.imm);
      SetNZ(regs_[in.rd]);
      cycles_ += model_.alu;
      break;
    case Op::kCmpImm:
    case Op::kCmpReg:
    case Op::kCmpHi: {
      const uint32_t lhs = rr(in.rn);
      const uint32_t rhs =
          in.op == Op::kCmpImm ? static_cast<uint32_t>(in.imm) : rr(in.rm);
      const AddResult r = AddWithCarry(lhs, ~rhs, true);
      SetNZ(r.value);
      flags_.c = r.carry;
      flags_.v = r.overflow;
      cycles_ += model_.alu;
      break;
    }
    case Op::kAddImm8: {
      const AddResult r = AddWithCarry(regs_[in.rd], static_cast<uint32_t>(in.imm), false);
      regs_[in.rd] = r.value;
      SetNZ(r.value);
      flags_.c = r.carry;
      flags_.v = r.overflow;
      cycles_ += model_.alu;
      break;
    }
    case Op::kSubImm8: {
      const AddResult r =
          AddWithCarry(regs_[in.rd], ~static_cast<uint32_t>(in.imm), true);
      regs_[in.rd] = r.value;
      SetNZ(r.value);
      flags_.c = r.carry;
      flags_.v = r.overflow;
      cycles_ += model_.alu;
      break;
    }
    case Op::kAnd:
      regs_[in.rd] &= rr(in.rm);
      SetNZ(regs_[in.rd]);
      cycles_ += model_.alu;
      break;
    case Op::kEor:
      regs_[in.rd] ^= rr(in.rm);
      SetNZ(regs_[in.rd]);
      cycles_ += model_.alu;
      break;
    case Op::kOrr:
      regs_[in.rd] |= rr(in.rm);
      SetNZ(regs_[in.rd]);
      cycles_ += model_.alu;
      break;
    case Op::kBic:
      regs_[in.rd] &= ~rr(in.rm);
      SetNZ(regs_[in.rd]);
      cycles_ += model_.alu;
      break;
    case Op::kMvn:
      regs_[in.rd] = ~rr(in.rm);
      SetNZ(regs_[in.rd]);
      cycles_ += model_.alu;
      break;
    case Op::kTst: {
      const uint32_t result = rr(in.rn) & rr(in.rm);
      SetNZ(result);
      cycles_ += model_.alu;
      break;
    }
    case Op::kCmn: {
      const AddResult r = AddWithCarry(rr(in.rn), rr(in.rm), false);
      SetNZ(r.value);
      flags_.c = r.carry;
      flags_.v = r.overflow;
      cycles_ += model_.alu;
      break;
    }
    case Op::kLslReg:
    case Op::kLsrReg:
    case Op::kAsrReg:
    case Op::kRor: {
      const uint32_t amount = rr(in.rm) & 0xFF;
      uint32_t v = regs_[in.rd];
      if (amount != 0) {
        switch (in.op) {
          case Op::kLslReg:
            if (amount < 32) {
              flags_.c = (v >> (32 - amount)) & 1;
              v <<= amount;
            } else {
              flags_.c = (amount == 32) ? (v & 1) : false;
              v = 0;
            }
            break;
          case Op::kLsrReg:
            if (amount < 32) {
              flags_.c = (v >> (amount - 1)) & 1;
              v >>= amount;
            } else {
              flags_.c = (amount == 32) ? ((v >> 31) & 1) : false;
              v = 0;
            }
            break;
          case Op::kAsrReg:
            if (amount < 32) {
              flags_.c = (v >> (amount - 1)) & 1;
              v = static_cast<uint32_t>(static_cast<int32_t>(v) >> amount);
            } else {
              flags_.c = (v >> 31) & 1;
              v = (v >> 31) ? 0xFFFFFFFFu : 0u;
            }
            break;
          case Op::kRor: {
            const uint32_t rot = amount & 31;
            if (rot != 0) {
              v = (v >> rot) | (v << (32 - rot));
            }
            flags_.c = (v >> 31) & 1;
            break;
          }
          default:
            break;
        }
      }
      regs_[in.rd] = v;
      SetNZ(v);
      cycles_ += model_.alu;
      break;
    }
    case Op::kAdc: {
      const AddResult r = AddWithCarry(regs_[in.rd], rr(in.rm), flags_.c);
      regs_[in.rd] = r.value;
      SetNZ(r.value);
      flags_.c = r.carry;
      flags_.v = r.overflow;
      cycles_ += model_.alu;
      break;
    }
    case Op::kSbc: {
      const AddResult r = AddWithCarry(regs_[in.rd], ~rr(in.rm), flags_.c);
      regs_[in.rd] = r.value;
      SetNZ(r.value);
      flags_.c = r.carry;
      flags_.v = r.overflow;
      cycles_ += model_.alu;
      break;
    }
    case Op::kNeg: {
      const AddResult r = AddWithCarry(~rr(in.rm), 0, true);
      regs_[in.rd] = r.value;
      SetNZ(r.value);
      flags_.c = r.carry;
      flags_.v = r.overflow;
      cycles_ += model_.alu;
      break;
    }
    case Op::kMul:
      regs_[in.rd] = regs_[in.rd] * rr(in.rm);
      SetNZ(regs_[in.rd]);  // ARMv6-M MULS sets N and Z only
      cycles_ += model_.mul;
      break;
    case Op::kAddHi: {
      const uint32_t result = rr(in.rd) + rr(in.rm);
      if (in.rd == kRegPc) {
        Branch(result, model_.pc_alu);
      } else {
        regs_[in.rd] = result;
        cycles_ += model_.alu;
      }
      break;
    }
    case Op::kMovHi: {
      const uint32_t result = rr(in.rm);
      if (in.rd == kRegPc) {
        Branch(result, model_.pc_alu);
      } else {
        regs_[in.rd] = result;
        cycles_ += model_.alu;
      }
      break;
    }
    case Op::kBx:
      Branch(rr(in.rm), model_.bx);
      break;
    case Op::kBlx: {
      const uint32_t target = rr(in.rm);
      regs_[kRegLr] = (addr + 2) | 1;
      Branch(target, model_.bx);
      break;
    }
    case Op::kLdrLit: {
      const uint32_t a = ((addr + 4) & ~3u) + static_cast<uint32_t>(in.imm);
      regs_[in.rd] = mem_->Read32(a);
      ChargeMemAccess(a, false);
      break;
    }
    case Op::kStrReg:
    case Op::kStrImm:
    case Op::kStrSp: {
      uint32_t a;
      if (in.op == Op::kStrReg) {
        a = rr(in.rn) + rr(in.rm);
      } else if (in.op == Op::kStrSp) {
        a = regs_[kRegSp] + static_cast<uint32_t>(in.imm);
      } else {
        a = rr(in.rn) + static_cast<uint32_t>(in.imm);
      }
      mem_->Write32(a, regs_[in.rd]);
      ChargeMemAccess(a, true);
      break;
    }
    case Op::kLdrReg:
    case Op::kLdrImm:
    case Op::kLdrSp: {
      uint32_t a;
      if (in.op == Op::kLdrReg) {
        a = rr(in.rn) + rr(in.rm);
      } else if (in.op == Op::kLdrSp) {
        a = regs_[kRegSp] + static_cast<uint32_t>(in.imm);
      } else {
        a = rr(in.rn) + static_cast<uint32_t>(in.imm);
      }
      regs_[in.rd] = mem_->Read32(a);
      ChargeMemAccess(a, false);
      break;
    }
    case Op::kStrbReg:
    case Op::kStrbImm: {
      const uint32_t a = in.op == Op::kStrbReg ? rr(in.rn) + rr(in.rm)
                                               : rr(in.rn) + static_cast<uint32_t>(in.imm);
      mem_->Write8(a, static_cast<uint8_t>(regs_[in.rd]));
      ChargeMemAccess(a, true);
      break;
    }
    case Op::kLdrbReg:
    case Op::kLdrbImm: {
      const uint32_t a = in.op == Op::kLdrbReg ? rr(in.rn) + rr(in.rm)
                                               : rr(in.rn) + static_cast<uint32_t>(in.imm);
      regs_[in.rd] = mem_->Read8(a);
      ChargeMemAccess(a, false);
      break;
    }
    case Op::kStrhReg:
    case Op::kStrhImm: {
      const uint32_t a = in.op == Op::kStrhReg ? rr(in.rn) + rr(in.rm)
                                               : rr(in.rn) + static_cast<uint32_t>(in.imm);
      mem_->Write16(a, static_cast<uint16_t>(regs_[in.rd]));
      ChargeMemAccess(a, true);
      break;
    }
    case Op::kLdrhReg:
    case Op::kLdrhImm: {
      const uint32_t a = in.op == Op::kLdrhReg ? rr(in.rn) + rr(in.rm)
                                               : rr(in.rn) + static_cast<uint32_t>(in.imm);
      regs_[in.rd] = mem_->Read16(a);
      ChargeMemAccess(a, false);
      break;
    }
    case Op::kLdrsbReg: {
      const uint32_t a = rr(in.rn) + rr(in.rm);
      regs_[in.rd] = static_cast<uint32_t>(static_cast<int32_t>(static_cast<int8_t>(
          mem_->Read8(a))));
      ChargeMemAccess(a, false);
      break;
    }
    case Op::kLdrshReg: {
      const uint32_t a = rr(in.rn) + rr(in.rm);
      regs_[in.rd] = static_cast<uint32_t>(static_cast<int32_t>(static_cast<int16_t>(
          mem_->Read16(a))));
      ChargeMemAccess(a, false);
      break;
    }
    case Op::kAdr:
      regs_[in.rd] = ((addr + 4) & ~3u) + static_cast<uint32_t>(in.imm);
      cycles_ += model_.alu;
      break;
    case Op::kAddSpImm:
      regs_[in.rd] = regs_[kRegSp] + static_cast<uint32_t>(in.imm);
      cycles_ += model_.alu;
      break;
    case Op::kAddSp7:
      regs_[kRegSp] += static_cast<uint32_t>(in.imm);
      cycles_ += model_.alu;
      break;
    case Op::kSubSp7:
      regs_[kRegSp] -= static_cast<uint32_t>(in.imm);
      cycles_ += model_.alu;
      break;
    case Op::kSxth:
      regs_[in.rd] = static_cast<uint32_t>(
          static_cast<int32_t>(static_cast<int16_t>(rr(in.rm) & 0xFFFF)));
      cycles_ += model_.alu;
      break;
    case Op::kSxtb:
      regs_[in.rd] =
          static_cast<uint32_t>(static_cast<int32_t>(static_cast<int8_t>(rr(in.rm) & 0xFF)));
      cycles_ += model_.alu;
      break;
    case Op::kUxth:
      regs_[in.rd] = rr(in.rm) & 0xFFFF;
      cycles_ += model_.alu;
      break;
    case Op::kUxtb:
      regs_[in.rd] = rr(in.rm) & 0xFF;
      cycles_ += model_.alu;
      break;
    case Op::kRev: {
      const uint32_t v = rr(in.rm);
      regs_[in.rd] = ((v & 0xFF) << 24) | ((v & 0xFF00) << 8) | ((v >> 8) & 0xFF00) |
                     ((v >> 24) & 0xFF);
      cycles_ += model_.alu;
      break;
    }
    case Op::kRev16: {
      const uint32_t v = rr(in.rm);
      regs_[in.rd] = ((v & 0x00FF00FF) << 8) | ((v & 0xFF00FF00) >> 8);
      cycles_ += model_.alu;
      break;
    }
    case Op::kRevsh: {
      const uint32_t v = rr(in.rm);
      const uint16_t swapped = static_cast<uint16_t>(((v & 0xFF) << 8) | ((v >> 8) & 0xFF));
      regs_[in.rd] =
          static_cast<uint32_t>(static_cast<int32_t>(static_cast<int16_t>(swapped)));
      cycles_ += model_.alu;
      break;
    }
    case Op::kPush: {
      int count = 0;
      for (int r = 0; r <= 8; ++r) {
        if (in.reglist & (1 << r)) {
          ++count;
        }
      }
      uint32_t a = regs_[kRegSp] - 4u * static_cast<uint32_t>(count);
      regs_[kRegSp] = a;
      for (int r = 0; r < 8; ++r) {
        if (in.reglist & (1 << r)) {
          mem_->Write32(a, regs_[r]);
          a += 4;
        }
      }
      if (in.reglist & 0x100) {
        mem_->Write32(a, regs_[kRegLr]);
      }
      cycles_ += static_cast<uint64_t>(model_.push_pop_base + count);
      break;
    }
    case Op::kPop: {
      int count = 0;
      for (int r = 0; r <= 8; ++r) {
        if (in.reglist & (1 << r)) {
          ++count;
        }
      }
      uint32_t a = regs_[kRegSp];
      for (int r = 0; r < 8; ++r) {
        if (in.reglist & (1 << r)) {
          regs_[r] = mem_->Read32(a);
          a += 4;
        }
      }
      bool to_pc = false;
      uint32_t pc_value = 0;
      if (in.reglist & 0x100) {
        pc_value = mem_->Read32(a);
        a += 4;
        to_pc = true;
      }
      regs_[kRegSp] = regs_[kRegSp] + 4u * static_cast<uint32_t>(count);
      cycles_ += static_cast<uint64_t>(model_.push_pop_base + count);
      if (to_pc) {
        cycles_ += static_cast<uint64_t>(model_.pop_pc_extra);
        pc_ = pc_value & ~1u;
      }
      break;
    }
    case Op::kLdm: {
      // LDMIA rn!, {list}: ascending loads; writeback unless rn is in the list.
      uint32_t a = rr(in.rn);
      int count = 0;
      for (int r = 0; r < 8; ++r) {
        if (in.reglist & (1 << r)) {
          regs_[r] = mem_->Read32(a);
          a += 4;
          ++count;
        }
      }
      if ((in.reglist & (1 << in.rn)) == 0) {
        regs_[in.rn] = a;
      }
      cycles_ += static_cast<uint64_t>(model_.push_pop_base + count);
      break;
    }
    case Op::kStm: {
      uint32_t a = rr(in.rn);
      int count = 0;
      for (int r = 0; r < 8; ++r) {
        if (in.reglist & (1 << r)) {
          mem_->Write32(a, regs_[r]);
          a += 4;
          ++count;
        }
      }
      regs_[in.rn] = a;
      cycles_ += static_cast<uint64_t>(model_.push_pop_base + count);
      break;
    }
    case Op::kNop:
      cycles_ += model_.alu;
      break;
    case Op::kBcond:
      if (EvalCond(in.cond)) {
        Branch(addr + 4 + static_cast<uint32_t>(in.imm), model_.branch_taken);
      } else {
        cycles_ += model_.branch_not_taken;
      }
      break;
    case Op::kB:
      Branch(addr + 4 + static_cast<uint32_t>(in.imm), model_.branch_taken);
      break;
    case Op::kBl:
      regs_[kRegLr] = (addr + 4) | 1;
      Branch(addr + 4 + static_cast<uint32_t>(in.imm), model_.bl);
      break;
    case Op::kUdf:
    case Op::kInvalid:
      NEUROC_CHECK(false);
      break;
  }
  if (probe_ != nullptr) {
    probe_->OnRetire(addr, in.op, static_cast<uint32_t>(cycles_ - cycles_at_entry));
  }
}

}  // namespace neuroc
