#include "src/sim/cpu.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <span>

#include "src/common/check.h"
#include "src/isa/decoder.h"
#include "src/isa/disassembler.h"
#include "src/sim/guest_fault.h"

namespace neuroc {

Cpu::Cpu(MemoryMap* memory, CycleModel model) : mem_(memory), model_(model) {
  mem_->RegisterFlashWriteListener(&icache_valid_);
}

Cpu::~Cpu() { mem_->UnregisterFlashWriteListener(&icache_valid_); }

void Cpu::EnableDecodeCache(bool enabled) {
  icache_enabled_ = enabled;
  if (!enabled) {
    FlushBlockHistograms();
    FlushBlockProfiles();
    icache_ = std::vector<Predecoded>();  // release memory, not just clear
    blocks_ = std::vector<Block>();
    block_index_ = std::vector<int32_t>();
    icache_valid_ = false;
  }
}

void Cpu::EnableBlockCompile(bool enabled) {
  block_enabled_ = enabled;
  if (!enabled) {
    FlushBlockHistograms();
    FlushBlockProfiles();
    blocks_ = std::vector<Block>();
    block_index_ = std::vector<int32_t>();
  }
  // Force a rebuild either way so block_index_ is (re)sized with the decode cache.
  icache_valid_ = false;
}

void Cpu::EnableBlockProfile(bool enabled) {
  if (enabled) {
    ResetBlockProfile();  // each enable opens a fresh attribution window
  } else {
    FlushBlockProfiles();  // keep in-flight block counters readable after detach
  }
  block_profile_enabled_ = enabled;
}

void Cpu::ResetBlockProfile() {
  for (const Block& blk : blocks_) {
    blk.prof_execs = 0;
    blk.prof_bcond_taken = 0;
    std::fill(blk.prof_mem_hits.begin(), blk.prof_mem_hits.end(), 0);
  }
  block_profile_.clear();
}

const std::map<uint32_t, Cpu::ProfiledPc>& Cpu::CollectBlockProfile() const {
  FlushBlockProfiles();
  return block_profile_;
}

void Cpu::RebuildDecodeCache() {
  const std::span<const uint8_t> flash = mem_->flash_bytes();
  // Only decode up to the load high-water mark: images occupy a few KB of the 128 KB
  // flash, and slots past it hold the erase pattern the CPU normally never reaches (if it
  // does, Step falls back to the interpreter path below, which behaves identically).
  const size_t covered = std::min<size_t>(flash.size(), mem_->flash_high_water());
  const size_t slots = covered / 2;
  icache_.resize(slots);
  for (size_t s = 0; s < slots; ++s) {
    const uint16_t hw1 = static_cast<uint16_t>(flash[2 * s] | (flash[2 * s + 1] << 8));
    // Same peek rule as the interpreter: hw2 is read only for a wide (BL-prefix)
    // encoding, and reads as 0 when the prefix sits on the last mapped halfword.
    uint16_t hw2 = 0;
    uint8_t flash_reads = 1;
    if ((hw1 & 0xF800) == 0xF000 && 2 * s + 3 < flash.size()) {
      hw2 = static_cast<uint16_t>(flash[2 * s + 2] | (flash[2 * s + 3] << 8));
      flash_reads = 2;
    }
    icache_[s] = Predecoded{DecodeInstr(hw1, hw2), hw1, hw2, flash_reads};
  }
  // Compiled blocks are views over the predecoded slots; drop them whenever the slots
  // change (any host write into flash lands here via the shared listener flag).
  FlushBlockHistograms();
  FlushBlockProfiles();
  blocks_.clear();
  block_index_.assign(block_enabled_ ? slots : 0, kBlockNotCompiled);
  icache_valid_ = true;
}

namespace {

// APSR bit masks for the block compiler's liveness pass.
constexpr uint8_t kFlagN = 1;
constexpr uint8_t kFlagZ = 2;
constexpr uint8_t kFlagC = 4;
constexpr uint8_t kFlagV = 8;
constexpr uint8_t kAllFlags = kFlagN | kFlagZ | kFlagC | kFlagV;
constexpr uint8_t kFlagsNZ = kFlagN | kFlagZ;
constexpr uint8_t kFlagsNZC = kFlagN | kFlagZ | kFlagC;

struct FlagEffects {
  uint8_t reads = 0;       // flag bits the instruction consumes
  uint8_t may_write = 0;   // bits it can write (shift-by-register writes C conditionally)
  uint8_t must_write = 0;  // bits it always writes (these kill earlier writes)
};

FlagEffects FlagEffectsOf(Op op, int32_t imm) {
  switch (op) {
    case Op::kLslImm:
      // imm == 0 is the MOVS register form: C unchanged.
      return imm == 0 ? FlagEffects{0, kFlagsNZ, kFlagsNZ}
                      : FlagEffects{0, kFlagsNZC, kFlagsNZC};
    case Op::kLsrImm:
    case Op::kAsrImm:
      return {0, kFlagsNZC, kFlagsNZC};
    case Op::kLslReg:
    case Op::kLsrReg:
    case Op::kAsrReg:
    case Op::kRor:
      // C is written only when the register-held amount is non-zero.
      return {0, kFlagsNZC, kFlagsNZ};
    case Op::kAddReg:
    case Op::kSubReg:
    case Op::kAddImm3:
    case Op::kSubImm3:
    case Op::kAddImm8:
    case Op::kSubImm8:
    case Op::kCmpImm:
    case Op::kCmpReg:
    case Op::kCmpHi:
    case Op::kCmn:
    case Op::kNeg:
      return {0, kAllFlags, kAllFlags};
    case Op::kAdc:
    case Op::kSbc:
      return {kFlagC, kAllFlags, kAllFlags};
    case Op::kMovImm:
    case Op::kAnd:
    case Op::kEor:
    case Op::kOrr:
    case Op::kBic:
    case Op::kMvn:
    case Op::kTst:
    case Op::kMul:
      return {0, kFlagsNZ, kFlagsNZ};
    case Op::kBcond:
      return {kAllFlags, 0, 0};
    default:
      return {};
  }
}

// Ops whose execution can raise a GuestFault (every memory access; a branch itself cannot
// fault — a bad target faults on the next fetch, in the interpreter). The architectural
// flags are observable at a fault, so liveness must be forced across these.
bool MayFault(Op op) {
  switch (op) {
    case Op::kLdrLit:
    case Op::kStrReg: case Op::kStrImm: case Op::kStrSp:
    case Op::kLdrReg: case Op::kLdrImm: case Op::kLdrSp:
    case Op::kStrbReg: case Op::kStrbImm:
    case Op::kLdrbReg: case Op::kLdrbImm:
    case Op::kStrhReg: case Op::kStrhImm:
    case Op::kLdrhReg: case Op::kLdrhImm:
    case Op::kLdrsbReg: case Op::kLdrshReg:
    case Op::kPush: case Op::kPop: case Op::kLdm: case Op::kStm:
      return true;
    default:
      return false;
  }
}

// Control-flow instructions end a basic block (they are included as its terminator).
bool IsTerminator(const Instr& in) {
  switch (in.op) {
    case Op::kB:
    case Op::kBcond:
    case Op::kBl:
    case Op::kBx:
    case Op::kBlx:
      return true;
    case Op::kAddHi:
    case Op::kMovHi:
      return in.rd == kRegPc;
    case Op::kPop:
      return (in.reglist & 0x100) != 0;
    default:
      return false;
  }
}

int PopCount8(uint16_t reglist) {
  int count = 0;
  for (int r = 0; r <= 8; ++r) {
    if (reglist & (1 << r)) {
      ++count;
    }
  }
  return count;
}

// Static execution cost, mirroring the charge the interpreter makes for the instruction
// (excluding the per-fetch flash wait states and the dynamic parts: data-access wait
// states and the taken/not-taken split of kBcond, which the executor resolves at runtime).
uint32_t StaticExecCycles(const Instr& in, const CycleModel& m) {
  switch (in.op) {
    case Op::kMul:
      return static_cast<uint32_t>(m.mul);
    case Op::kLdrLit:
    case Op::kLdrReg: case Op::kLdrImm: case Op::kLdrSp:
    case Op::kLdrbReg: case Op::kLdrbImm:
    case Op::kLdrhReg: case Op::kLdrhImm:
    case Op::kLdrsbReg: case Op::kLdrshReg:
      return static_cast<uint32_t>(m.load);
    case Op::kStrReg: case Op::kStrImm: case Op::kStrSp:
    case Op::kStrbReg: case Op::kStrbImm:
    case Op::kStrhReg: case Op::kStrhImm:
      return static_cast<uint32_t>(m.store);
    case Op::kPush:
    case Op::kLdm:
    case Op::kStm:
      return static_cast<uint32_t>(m.push_pop_base + PopCount8(in.reglist));
    case Op::kPop: {
      uint32_t c = static_cast<uint32_t>(m.push_pop_base + PopCount8(in.reglist));
      if (in.reglist & 0x100) {
        c += static_cast<uint32_t>(m.pop_pc_extra);
      }
      return c;
    }
    case Op::kB:
      return static_cast<uint32_t>(m.branch_taken);
    case Op::kBl:
      return static_cast<uint32_t>(m.bl);
    case Op::kBx:
    case Op::kBlx:
      return static_cast<uint32_t>(m.bx);
    case Op::kBcond:
      return 0;  // taken/not-taken resolved by the executor
    case Op::kAddHi:
    case Op::kMovHi:
      return static_cast<uint32_t>(in.rd == kRegPc ? m.pc_alu : m.alu);
    default:
      return static_cast<uint32_t>(m.alu);
  }
}

}  // namespace

// Walks predecoded slots from `entry_slot` until a control-flow terminator, an
// invalid/UDF decode, the end of decode coverage, or the length cap, fusing the run into
// one Block. Returns the block index, or kBlockStepOnly when the entry cannot start a
// block. A backward pass then marks which APSR writes are dead (overwritten before any
// consumer — conditional branch or ADC/SBC — with no intervening possible-fault site) so
// the executor can skip materializing them.
int32_t Cpu::CompileBlock(size_t entry_slot) {
  // Bounds compile time and the O(length) cold-path fault fixup; a longer straight-line
  // run simply continues as a fall-through successor block. Sized so the per-column bodies
  // of unrolled kernels (kUnrolled compiles ~3 ops per nonzero between `bl` terminators)
  // are eaten whole even for near-dense columns of wide layers.
  constexpr size_t kMaxBlockOps = 16384;
  Block b;
  uint32_t static_cycles = 0;
  size_t slot = entry_slot;
  while (slot < icache_.size() && b.ops.size() < kMaxBlockOps) {
    const Predecoded& pd = icache_[slot];
    const Instr& in = pd.instr;
    if (in.op == Op::kInvalid || in.op == Op::kUdf) {
      break;  // the interpreter raises the fault with the exact seed diagnostics
    }
    BlockOp o;
    o.op = in.op;
    o.rd = in.rd;
    o.rn = in.rn;
    o.rm = in.rm;
    o.cond = in.cond;
    o.reglist = in.reglist;
    o.imm = in.imm;
    o.fetch_reads = pd.flash_reads;
    o.is_mem = MayFault(in.op) ? 1 : 0;
    o.addr = mem_->flash_base() + static_cast<uint32_t>(2 * slot);
    o.cycles_before = static_cycles;
    static_cycles += static_cast<uint32_t>(model_.flash_wait_states) +
                     StaticExecCycles(in, model_);
    // Pre-resolve PC-relative operands to absolute values.
    switch (in.op) {
      case Op::kLdrLit:
      case Op::kAdr:
        o.imm = static_cast<int32_t>(((o.addr + 4) & ~3u) + static_cast<uint32_t>(in.imm));
        break;
      case Op::kB:
      case Op::kBcond:
      case Op::kBl:
        o.imm = static_cast<int32_t>(o.addr + 4 + static_cast<uint32_t>(in.imm));
        break;
      default:
        break;
    }
    b.ops.push_back(o);
    if (IsTerminator(in)) {
      b.terminated = true;
      break;
    }
    slot += in.length;
  }
  if (b.ops.empty()) {
    block_index_[entry_slot] = kBlockStepOnly;
    return kBlockStepOnly;
  }
  // Backward APSR liveness. Flags are live out of every block (the interpreter or a
  // successor block may consume them), and live into every possible-fault site (the
  // architectural flags are part of the faulted machine state).
  uint8_t live = kAllFlags;
  for (size_t k = b.ops.size(); k-- > 0;) {
    BlockOp& o = b.ops[k];
    const FlagEffects fe = FlagEffectsOf(o.op, o.imm);
    o.set_flags = (fe.may_write & live) != 0 ? 1 : 0;
    live = static_cast<uint8_t>((live & ~fe.must_write) | fe.reads);
    if (o.is_mem) {
      live = kAllFlags;
    }
  }
  // Batched accounting: the static cycle total, total counted fetches and the per-Op
  // retire histogram. The profiled execute path indexes prof_mem_hits unconditionally,
  // so it is sized here once instead of checked on every block entry.
  b.static_cycles = static_cycles;
  b.prof_mem_hits.assign(b.ops.size(), 0);
  // Worst-case dynamic cycles one execution can add: every possible-fault op charged as a
  // flash data access (the reglist ops never charge dynamically — conservative is fine,
  // over-estimating only breaks to the exact step interpreter a little earlier), plus the
  // dearer outcome of a kBcond terminator. Run uses static_cycles + dyn_bound to prove a
  // block cannot cross the watchdog cycle limit.
  const uint32_t fw = static_cast<uint32_t>(model_.flash_wait_states);
  std::array<uint32_t, 80> histo{};
  for (const BlockOp& o : b.ops) {
    b.fetch_reads += o.fetch_reads;
    if (o.is_mem) {
      b.dyn_bound += fw;
    }
    if (o.op == Op::kBcond) {
      b.dyn_bound += static_cast<uint32_t>(
          std::max(model_.branch_taken, model_.branch_not_taken));
    }
    ++histo[static_cast<size_t>(o.op)];
  }
  for (size_t op = 0; op < histo.size(); ++op) {
    if (histo[op] != 0) {
      b.histogram.emplace_back(static_cast<uint8_t>(op), histo[op]);
    }
  }
  blocks_.push_back(std::move(b));
  const int32_t index = static_cast<int32_t>(blocks_.size() - 1);
  block_index_[entry_slot] = index;
  return index;
}

CpuArchState Cpu::SaveState() const {
  // Fold deferred block-exit accounting so the captured histogram reads exactly as the
  // step interpreter would have left it.
  FlushBlockHistograms();
  CpuArchState s;
  s.regs = regs_;
  s.pc = pc_;
  s.flags = flags_;
  s.cycles = cycles_;
  s.instructions = instructions_;
  s.op_histogram = op_histogram_;
  return s;
}

void Cpu::RestoreState(const CpuArchState& state) {
  // Flush first so block exec counters accrued since the capture fold into the *current*
  // histogram and then get overwritten — never into the restored one.
  FlushBlockHistograms();
  regs_ = state.regs;
  pc_ = state.pc;
  flags_ = state.flags;
  cycles_ = state.cycles;
  instructions_ = state.instructions;
  op_histogram_ = state.op_histogram;
}

void Cpu::ResetCounters() {
  cycles_ = 0;
  instructions_ = 0;
  // Deferred block histograms describe retires that predate the reset: fold them in (so
  // the exec counters read zero) and then wipe everything, exactly as the interpreter's
  // per-step accounting would have been wiped.
  FlushBlockHistograms();
  op_histogram_.fill(0);
  mem_->ResetStats();
}

void Cpu::FlushBlockHistograms() const {
  for (const Block& blk : blocks_) {
    if (blk.execs == 0) {
      continue;
    }
    for (const auto& [hist_op, count] : blk.histogram) {
      op_histogram_[hist_op] += count * blk.execs;
    }
    blk.execs = 0;
  }
}

// Exact expansion of the per-block counters: each op's static cycle cost (fetch wait
// states + fixed execution cost) is the delta of consecutive cycles_before prefix sums,
// charged prof_execs times; the only dynamic costs are the recorded per-op flash-wait
// hits and the taken/not-taken split of a kBcond terminator. Overlapping blocks (a block
// entered mid-way compiles its own view of the same PCs) simply sum into the same map
// entries. Mid-block fault residue and interpreter-step residue were already folded into
// block_profile_ at the point they occurred, so after this flush the map's cycle total
// equals the exact interpreter-visible charge for every retired instruction.
void Cpu::FlushBlockProfiles() const {
  const uint64_t fetch_ws = static_cast<uint64_t>(model_.flash_wait_states);
  for (const Block& blk : blocks_) {
    if (blk.prof_execs == 0) {
      // Counters are always sized, so "never ran profiled" needs a hit scan — nonzero
      // hits without an exec happen only when every profiled run faulted mid-block.
      bool any_hits = false;
      for (const uint64_t h : blk.prof_mem_hits) {
        any_hits |= h != 0;
      }
      if (!any_hits) {
        continue;
      }
    }
    const size_t n = blk.ops.size();
    for (size_t k = 0; k < n; ++k) {
      const BlockOp& o = blk.ops[k];
      const uint64_t static_k =
          (k + 1 < n ? blk.ops[k + 1].cycles_before : blk.static_cycles) - o.cycles_before;
      uint64_t cyc = blk.prof_execs * static_k;
      cyc += blk.prof_mem_hits[k] * fetch_ws;
      if (o.op == Op::kBcond) {
        cyc += blk.prof_bcond_taken * static_cast<uint64_t>(model_.branch_taken) +
               (blk.prof_execs - blk.prof_bcond_taken) *
                   static_cast<uint64_t>(model_.branch_not_taken);
      }
      if (blk.prof_execs == 0 && cyc == 0) {
        continue;  // nothing retired at this PC through this block
      }
      ProfiledPc& stat = block_profile_[o.addr];
      stat.count += blk.prof_execs;
      stat.cycles += cyc;
      stat.op = o.op;
    }
    blk.prof_execs = 0;
    blk.prof_bcond_taken = 0;
    std::fill(blk.prof_mem_hits.begin(), blk.prof_mem_hits.end(), 0);
  }
}

Op Cpu::PeekOpAt(uint32_t addr) const {
  // Host-side (uncounted) decode peek, mirroring the interpreter's fetch rule: hw2 is
  // read only for a wide (BL-prefix) encoding whose second halfword is mapped.
  if (mem_->RegionOf(addr) == MemRegion::kNone) {
    return Op::kInvalid;
  }
  uint8_t raw[2];
  mem_->HostRead(addr, raw);
  const uint16_t hw1 = static_cast<uint16_t>(raw[0] | (raw[1] << 8));
  uint16_t hw2 = 0;
  if ((hw1 & 0xF800) == 0xF000 && mem_->RegionOf(addr + 2) != MemRegion::kNone) {
    mem_->HostRead(addr + 2, raw);
    hw2 = static_cast<uint16_t>(raw[0] | (raw[1] << 8));
  }
  return DecodeInstr(hw1, hw2).op;
}

void Cpu::EnableTrace(size_t depth) {
  trace_.assign(depth, TraceEntry{});
  trace_pos_ = 0;
  trace_count_ = 0;
}

std::string Cpu::DumpTrace() const {
  std::string out;
  if (trace_.empty()) {
    return out;
  }
  const size_t n = trace_count_ < trace_.size() ? static_cast<size_t>(trace_count_)
                                                : trace_.size();
  // Oldest first: the ring position points at the next overwrite slot.
  size_t start = trace_count_ < trace_.size() ? 0 : trace_pos_;
  for (size_t i = 0; i < n; ++i) {
    const TraceEntry& e = trace_[(start + i) % trace_.size()];
    const Instr in = DecodeInstr(e.hw1, e.hw2);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "  %08x: %04x  ", e.addr, e.hw1);
    out += buf;
    out += Disassemble(in, e.addr);
    out += "\n";
  }
  return out;
}

Cpu::AddResult Cpu::AddWithCarry(uint32_t x, uint32_t y, bool carry_in) {
  const uint64_t unsigned_sum =
      static_cast<uint64_t>(x) + static_cast<uint64_t>(y) + (carry_in ? 1 : 0);
  const int64_t signed_sum = static_cast<int64_t>(static_cast<int32_t>(x)) +
                             static_cast<int64_t>(static_cast<int32_t>(y)) +
                             (carry_in ? 1 : 0);
  AddResult r;
  r.value = static_cast<uint32_t>(unsigned_sum);
  r.carry = unsigned_sum != static_cast<uint64_t>(r.value);
  r.overflow = signed_sum != static_cast<int64_t>(static_cast<int32_t>(r.value));
  return r;
}

bool Cpu::EvalCond(Cond cond) const {
  switch (cond) {
    case Cond::kEq: return flags_.z;
    case Cond::kNe: return !flags_.z;
    case Cond::kCs: return flags_.c;
    case Cond::kCc: return !flags_.c;
    case Cond::kMi: return flags_.n;
    case Cond::kPl: return !flags_.n;
    case Cond::kVs: return flags_.v;
    case Cond::kVc: return !flags_.v;
    case Cond::kHi: return flags_.c && !flags_.z;
    case Cond::kLs: return !flags_.c || flags_.z;
    case Cond::kGe: return flags_.n == flags_.v;
    case Cond::kLt: return flags_.n != flags_.v;
    case Cond::kGt: return !flags_.z && flags_.n == flags_.v;
    case Cond::kLe: return flags_.z || flags_.n != flags_.v;
    case Cond::kAl: return true;
  }
  return false;
}

void Cpu::Branch(uint32_t target, int cost) {
  pc_ = target & ~1u;
  cycles_ += static_cast<uint64_t>(cost);
}

void Cpu::ChargeMemAccess(uint32_t addr, bool is_store) {
  cycles_ += static_cast<uint64_t>(is_store ? model_.store : model_.load);
  if (mem_->InFlash(addr)) {
    cycles_ += static_cast<uint64_t>(model_.flash_wait_states);
  }
}

void Cpu::Run(uint64_t max_instructions, uint64_t cycle_limit) {
  const uint64_t start = instructions_;
  while (!halted()) {
    if (BlockModeActive()) {
      if (!icache_valid_) {
        RebuildDecodeCache();
      }
      // Chained block dispatch: block mode's activation conditions and the cache validity
      // cannot change inside Run (probes/traces attach between calls, and the guest
      // cannot write flash — it faults), so blocks execute back to back until the pc
      // leaves compiled coverage, an entry can't start a block, or a block could cross
      // the instruction budget or the watchdog cycle limit. Those cases break to the step
      // interpreter, which keeps the budget/deadline fault firing at exactly the same
      // retired instruction as the legacy path. A wrapping pc (SRAM, unmapped, the halt
      // sentinel) makes `slot` huge and exits the loop through the coverage check.
      const uint32_t flash_base = mem_->flash_base();
      const size_t covered_slots = block_index_.size();
      for (;;) {
        const size_t slot = static_cast<size_t>(pc_ - flash_base) >> 1;
        if (slot >= covered_slots) {
          break;
        }
        int32_t index = block_index_[slot];
        if (index == kBlockNotCompiled) {
          index = CompileBlock(slot);
        }
        if (index < 0) {
          break;
        }
        const Block& blk = blocks_[static_cast<size_t>(index)];
        if (instructions_ - start + blk.ops.size() > max_instructions) {
          break;
        }
        if (cycle_limit != 0 &&
            cycles_ + blk.static_cycles + blk.dyn_bound > cycle_limit) {
          break;
        }
        if (block_profile_enabled_) {
          ExecuteBlock<true>(blk);
        } else {
          ExecuteBlock<false>(blk);
        }
      }
      if (halted()) {
        return;
      }
    }
    Step();
    if (instructions_ - start > max_instructions) {
      throw GuestFault{ErrorCode::kInstructionBudgetExceeded, "instruction budget exceeded",
                       /*addr=*/0, /*pc=*/pc_, /*instruction=*/0};
    }
    if (cycle_limit != 0 && cycles_ > cycle_limit) {
      throw GuestFault{ErrorCode::kDeadlineExceeded, "watchdog cycle deadline exceeded",
                       /*addr=*/0, /*pc=*/pc_, /*instruction=*/0};
    }
  }
}

// Executes one compiled block with a single dispatch: no per-step counter updates, trace
// or probe checks (block mode is inactive when those are attached), and no per-step
// decode-cache lookups. Cycle, instruction, histogram and fetch accounting are applied
// once at block exit; a GuestFault mid-block patches them to the exact interpreter state
// for the faulting instruction before rethrowing. Cases mirror StepInner one for one —
// the differences are the compile-time-folded static cycle costs, the dead-flag elision
// (`o.set_flags`), and the compile-time-resolved PC-relative operands.
// Dispatch plumbing for ExecuteBlock. With GNU extensions every op ends in its own
// indirect jump through the label table (token threading), giving the host branch
// predictor one dispatch site per preceding op instead of a single shared one; other
// compilers get a plain switch in a loop with identical semantics.
#if defined(__GNUC__) || defined(__clang__)
#define NEUROC_BLOCK_COMPUTED_GOTO 1
#else
#define NEUROC_BLOCK_COMPUTED_GOTO 0
#endif

#if NEUROC_BLOCK_COMPUTED_GOTO
// NEUROC_NEXT also advances the profiled hit-counter cursor in lockstep with the op
// pointer (discarded in the unprofiled instantiation), so charge_mem records a flash-wait
// hit with a plain `++*prof_slot` — no per-access op-index math on the hot path.
#define NEUROC_OP(name) lbl_##name:
#define NEUROC_NEXT                                   \
  do {                                                \
    if constexpr (kProfiled) ++prof_slot;             \
    if (++op == op_end) goto block_exit;              \
    goto* kDispatch[static_cast<size_t>(op->op)];     \
  } while (0)
#else
#define NEUROC_OP(name) case Op::name:
#define NEUROC_NEXT                                   \
  {                                                   \
    if constexpr (kProfiled) ++prof_slot;             \
    if (++op == op_end) goto block_exit;              \
  }                                                   \
  break
#endif

// Reads of r15 observe the instruction's address + 4; only hi-register forms and BX/BLX
// can encode r15 as an operand, so the compare lives in those cases alone.
#define NEUROC_RVAL(r) ((r) == kRegPc ? op->addr + 4 : regs_[(r)])
template <bool kProfiled>
#if NEUROC_BLOCK_COMPUTED_GOTO && defined(__GNUC__) && !defined(__clang__)
// Keep GCC's global CSE from re-merging the per-op indirect jumps into one shared
// dispatch site, which would undo the branch-prediction benefit of token threading.
__attribute__((optimize("no-gcse")))
#endif
void Cpu::ExecuteBlock(const Block& b) {
  const uint32_t fetch_ws = static_cast<uint32_t>(model_.flash_wait_states);
  const uint32_t flash_base = mem_->flash_base();
  const uint32_t flash_size = mem_->flash_size();
  // All static cycle costs were folded into b.static_cycles at compile time; only the
  // data-access flash wait states and the conditional-branch outcome accumulate here.
  uint64_t dyn = 0;
  const size_t n = b.ops.size();
  const BlockOp* ops = b.ops.data();
  const BlockOp* const op_end = ops + n;
  const BlockOp* op = ops;
  // Cursor into the block's per-op hit counters, advanced by NEUROC_NEXT in lockstep
  // with `op` (sized to ops.size() at compile time, so it stays in bounds by the same
  // argument op does).
  [[maybe_unused]] uint64_t* prof_slot = nullptr;
  if constexpr (kProfiled) {
    prof_slot = b.prof_mem_hits.data();
  }
  // Dynamic part of ChargeMemAccess (the static load/store cost is folded). Under
  // profiling the hit is also attributed to the current op so the expansion can charge
  // it to the exact PC.
  const auto charge_mem = [&](uint32_t a) {
    if (fetch_ws != 0 && a - flash_base < flash_size) {
      dyn += fetch_ws;
      if constexpr (kProfiled) {
        ++*prof_slot;
      }
    }
  };
  try {
#if NEUROC_BLOCK_COMPUTED_GOTO
    // One entry per Op value, in enum order (spot-checked below so silent reordering of
    // the enum cannot misroute dispatch).
    static const void* const kDispatch[] = {
        &&lbl_kInvalid,
        &&lbl_kLslImm,   &&lbl_kLsrImm,   &&lbl_kAsrImm,
        &&lbl_kAddReg,   &&lbl_kSubReg,   &&lbl_kAddImm3,  &&lbl_kSubImm3,
        &&lbl_kMovImm,   &&lbl_kCmpImm,   &&lbl_kAddImm8,  &&lbl_kSubImm8,
        &&lbl_kAnd,      &&lbl_kEor,      &&lbl_kLslReg,   &&lbl_kLsrReg,
        &&lbl_kAsrReg,   &&lbl_kAdc,      &&lbl_kSbc,      &&lbl_kRor,
        &&lbl_kTst,      &&lbl_kNeg,      &&lbl_kCmpReg,   &&lbl_kCmn,
        &&lbl_kOrr,      &&lbl_kMul,      &&lbl_kBic,      &&lbl_kMvn,
        &&lbl_kAddHi,    &&lbl_kCmpHi,    &&lbl_kMovHi,    &&lbl_kBx,
        &&lbl_kBlx,      &&lbl_kLdrLit,   &&lbl_kStrReg,   &&lbl_kStrhReg,
        &&lbl_kStrbReg,  &&lbl_kLdrsbReg, &&lbl_kLdrReg,   &&lbl_kLdrhReg,
        &&lbl_kLdrbReg,  &&lbl_kLdrshReg, &&lbl_kStrImm,   &&lbl_kLdrImm,
        &&lbl_kStrbImm,  &&lbl_kLdrbImm,  &&lbl_kStrhImm,  &&lbl_kLdrhImm,
        &&lbl_kStrSp,    &&lbl_kLdrSp,    &&lbl_kAdr,      &&lbl_kAddSpImm,
        &&lbl_kAddSp7,   &&lbl_kSubSp7,   &&lbl_kSxth,     &&lbl_kSxtb,
        &&lbl_kUxth,     &&lbl_kUxtb,     &&lbl_kRev,      &&lbl_kRev16,
        &&lbl_kRevsh,    &&lbl_kPush,     &&lbl_kPop,      &&lbl_kLdm,
        &&lbl_kStm,      &&lbl_kNop,      &&lbl_kBcond,    &&lbl_kB,
        &&lbl_kBl,       &&lbl_kUdf,
    };
    static_assert(static_cast<size_t>(Op::kLslImm) == 1 &&
                      static_cast<size_t>(Op::kMovImm) == 8 &&
                      static_cast<size_t>(Op::kAnd) == 12 &&
                      static_cast<size_t>(Op::kAddHi) == 28 &&
                      static_cast<size_t>(Op::kLdrLit) == 33 &&
                      static_cast<size_t>(Op::kStrImm) == 42 &&
                      static_cast<size_t>(Op::kStrSp) == 48 &&
                      static_cast<size_t>(Op::kSxth) == 54 &&
                      static_cast<size_t>(Op::kPush) == 61 &&
                      static_cast<size_t>(Op::kNop) == 65 &&
                      static_cast<size_t>(Op::kUdf) == 69,
                  "dispatch table must match the Op enum order");
    static_assert(sizeof(kDispatch) / sizeof(kDispatch[0]) == 70,
                  "dispatch table must cover every Op");
    goto* kDispatch[static_cast<size_t>(op->op)];
#else
    for (;;) {
      switch (op->op) {
#endif
    NEUROC_OP(kLslImm) {
      const uint32_t v = regs_[op->rm];
      uint32_t result;
      if (op->imm == 0) {
        result = v;  // MOVS register form: C unchanged
      } else {
        if (op->set_flags) {
          flags_.c = (v >> (32 - op->imm)) & 1;
        }
        result = v << op->imm;
      }
      regs_[op->rd] = result;
      if (op->set_flags) {
        SetNZ(result);
      }
      NEUROC_NEXT;
    }
    NEUROC_OP(kLsrImm) {
      const uint32_t v = regs_[op->rm];
      const int amount = op->imm == 0 ? 32 : op->imm;
      uint32_t result;
      if (amount == 32) {
        if (op->set_flags) {
          flags_.c = (v >> 31) & 1;
        }
        result = 0;
      } else {
        if (op->set_flags) {
          flags_.c = (v >> (amount - 1)) & 1;
        }
        result = v >> amount;
      }
      regs_[op->rd] = result;
      if (op->set_flags) {
        SetNZ(result);
      }
      NEUROC_NEXT;
    }
    NEUROC_OP(kAsrImm) {
      const uint32_t v = regs_[op->rm];
      const int amount = op->imm == 0 ? 32 : op->imm;
      uint32_t result;
      if (amount == 32) {
        if (op->set_flags) {
          flags_.c = (v >> 31) & 1;
        }
        result = (v >> 31) ? 0xFFFFFFFFu : 0u;
      } else {
        if (op->set_flags) {
          flags_.c = (v >> (amount - 1)) & 1;
        }
        result = static_cast<uint32_t>(static_cast<int32_t>(v) >> amount);
      }
      regs_[op->rd] = result;
      if (op->set_flags) {
        SetNZ(result);
      }
      NEUROC_NEXT;
    }
    NEUROC_OP(kAddReg)
    NEUROC_OP(kAddImm3) {
      const uint32_t op2 =
          op->op == Op::kAddReg ? regs_[op->rm] : static_cast<uint32_t>(op->imm);
      if (op->set_flags) {
        const AddResult r = AddWithCarry(regs_[op->rn], op2, false);
        regs_[op->rd] = r.value;
        SetNZ(r.value);
        flags_.c = r.carry;
        flags_.v = r.overflow;
      } else {
        regs_[op->rd] = regs_[op->rn] + op2;
      }
      NEUROC_NEXT;
    }
    NEUROC_OP(kSubReg)
    NEUROC_OP(kSubImm3) {
      const uint32_t op2 =
          op->op == Op::kSubReg ? regs_[op->rm] : static_cast<uint32_t>(op->imm);
      if (op->set_flags) {
        const AddResult r = AddWithCarry(regs_[op->rn], ~op2, true);
        regs_[op->rd] = r.value;
        SetNZ(r.value);
        flags_.c = r.carry;
        flags_.v = r.overflow;
      } else {
        regs_[op->rd] = regs_[op->rn] - op2;
      }
      NEUROC_NEXT;
    }
    NEUROC_OP(kMovImm)
      regs_[op->rd] = static_cast<uint32_t>(op->imm);
      if (op->set_flags) {
        SetNZ(regs_[op->rd]);
      }
      NEUROC_NEXT;
    NEUROC_OP(kCmpImm)
    NEUROC_OP(kCmpReg)
    NEUROC_OP(kCmpHi) {
      if (op->set_flags) {
        const uint32_t lhs = NEUROC_RVAL(op->rn);
        const uint32_t rhs =
            op->op == Op::kCmpImm ? static_cast<uint32_t>(op->imm) : NEUROC_RVAL(op->rm);
        const AddResult r = AddWithCarry(lhs, ~rhs, true);
        SetNZ(r.value);
        flags_.c = r.carry;
        flags_.v = r.overflow;
      }
      NEUROC_NEXT;
    }
    NEUROC_OP(kAddImm8) {
      if (op->set_flags) {
        const AddResult r =
            AddWithCarry(regs_[op->rd], static_cast<uint32_t>(op->imm), false);
        regs_[op->rd] = r.value;
        SetNZ(r.value);
        flags_.c = r.carry;
        flags_.v = r.overflow;
      } else {
        regs_[op->rd] += static_cast<uint32_t>(op->imm);
      }
      NEUROC_NEXT;
    }
    NEUROC_OP(kSubImm8) {
      if (op->set_flags) {
        const AddResult r =
            AddWithCarry(regs_[op->rd], ~static_cast<uint32_t>(op->imm), true);
        regs_[op->rd] = r.value;
        SetNZ(r.value);
        flags_.c = r.carry;
        flags_.v = r.overflow;
      } else {
        regs_[op->rd] -= static_cast<uint32_t>(op->imm);
      }
      NEUROC_NEXT;
    }
    NEUROC_OP(kAnd)
      regs_[op->rd] &= regs_[op->rm];
      if (op->set_flags) {
        SetNZ(regs_[op->rd]);
      }
      NEUROC_NEXT;
    NEUROC_OP(kEor)
      regs_[op->rd] ^= regs_[op->rm];
      if (op->set_flags) {
        SetNZ(regs_[op->rd]);
      }
      NEUROC_NEXT;
    NEUROC_OP(kOrr)
      regs_[op->rd] |= regs_[op->rm];
      if (op->set_flags) {
        SetNZ(regs_[op->rd]);
      }
      NEUROC_NEXT;
    NEUROC_OP(kBic)
      regs_[op->rd] &= ~regs_[op->rm];
      if (op->set_flags) {
        SetNZ(regs_[op->rd]);
      }
      NEUROC_NEXT;
    NEUROC_OP(kMvn)
      regs_[op->rd] = ~regs_[op->rm];
      if (op->set_flags) {
        SetNZ(regs_[op->rd]);
      }
      NEUROC_NEXT;
    NEUROC_OP(kTst)
      if (op->set_flags) {
        SetNZ(regs_[op->rn] & regs_[op->rm]);
      }
      NEUROC_NEXT;
    NEUROC_OP(kCmn)
      if (op->set_flags) {
        const AddResult r = AddWithCarry(regs_[op->rn], regs_[op->rm], false);
        SetNZ(r.value);
        flags_.c = r.carry;
        flags_.v = r.overflow;
      }
      NEUROC_NEXT;
    NEUROC_OP(kLslReg)
    NEUROC_OP(kLsrReg)
    NEUROC_OP(kAsrReg)
    NEUROC_OP(kRor) {
      const uint32_t amount = regs_[op->rm] & 0xFF;
      uint32_t v = regs_[op->rd];
      if (amount != 0) {
        switch (op->op) {
          case Op::kLslReg:
            if (amount < 32) {
              if (op->set_flags) {
                flags_.c = (v >> (32 - amount)) & 1;
              }
              v <<= amount;
            } else {
              if (op->set_flags) {
                flags_.c = (amount == 32) ? (v & 1) : false;
              }
              v = 0;
            }
            break;
          case Op::kLsrReg:
            if (amount < 32) {
              if (op->set_flags) {
                flags_.c = (v >> (amount - 1)) & 1;
              }
              v >>= amount;
            } else {
              if (op->set_flags) {
                flags_.c = (amount == 32) ? ((v >> 31) & 1) : false;
              }
              v = 0;
            }
            break;
          case Op::kAsrReg:
            if (amount < 32) {
              if (op->set_flags) {
                flags_.c = (v >> (amount - 1)) & 1;
              }
              v = static_cast<uint32_t>(static_cast<int32_t>(v) >> amount);
            } else {
              if (op->set_flags) {
                flags_.c = (v >> 31) & 1;
              }
              v = (v >> 31) ? 0xFFFFFFFFu : 0u;
            }
            break;
          case Op::kRor: {
            const uint32_t rot = amount & 31;
            if (rot != 0) {
              v = (v >> rot) | (v << (32 - rot));
            }
            if (op->set_flags) {
              flags_.c = (v >> 31) & 1;
            }
            break;
          }
          default:
            break;
        }
      }
      regs_[op->rd] = v;
      if (op->set_flags) {
        SetNZ(v);
      }
      NEUROC_NEXT;
    }
    NEUROC_OP(kAdc) {
      if (op->set_flags) {
        const AddResult r = AddWithCarry(regs_[op->rd], regs_[op->rm], flags_.c);
        regs_[op->rd] = r.value;
        SetNZ(r.value);
        flags_.c = r.carry;
        flags_.v = r.overflow;
      } else {
        regs_[op->rd] += regs_[op->rm] + (flags_.c ? 1u : 0u);
      }
      NEUROC_NEXT;
    }
    NEUROC_OP(kSbc) {
      if (op->set_flags) {
        const AddResult r = AddWithCarry(regs_[op->rd], ~regs_[op->rm], flags_.c);
        regs_[op->rd] = r.value;
        SetNZ(r.value);
        flags_.c = r.carry;
        flags_.v = r.overflow;
      } else {
        regs_[op->rd] += ~regs_[op->rm] + (flags_.c ? 1u : 0u);
      }
      NEUROC_NEXT;
    }
    NEUROC_OP(kNeg) {
      if (op->set_flags) {
        const AddResult r = AddWithCarry(~regs_[op->rm], 0, true);
        regs_[op->rd] = r.value;
        SetNZ(r.value);
        flags_.c = r.carry;
        flags_.v = r.overflow;
      } else {
        regs_[op->rd] = 0u - regs_[op->rm];
      }
      NEUROC_NEXT;
    }
    NEUROC_OP(kMul)
      regs_[op->rd] = regs_[op->rd] * regs_[op->rm];
      if (op->set_flags) {
        SetNZ(regs_[op->rd]);  // ARMv6-M MULS sets N and Z only
      }
      NEUROC_NEXT;
    NEUROC_OP(kAddHi) {
      const uint32_t result = NEUROC_RVAL(op->rd) + NEUROC_RVAL(op->rm);
      if (op->rd == kRegPc) {
        pc_ = result & ~1u;  // block terminator
      } else {
        regs_[op->rd] = result;
      }
      NEUROC_NEXT;
    }
    NEUROC_OP(kMovHi) {
      const uint32_t result = NEUROC_RVAL(op->rm);
      if (op->rd == kRegPc) {
        pc_ = result & ~1u;  // block terminator
      } else {
        regs_[op->rd] = result;
      }
      NEUROC_NEXT;
    }
    NEUROC_OP(kBx)
      pc_ = NEUROC_RVAL(op->rm) & ~1u;
      NEUROC_NEXT;
    NEUROC_OP(kBlx) {
      const uint32_t target = NEUROC_RVAL(op->rm);
      regs_[kRegLr] = (op->addr + 2) | 1;
      pc_ = target & ~1u;
      NEUROC_NEXT;
    }
    NEUROC_OP(kLdrLit) {
      const uint32_t a = static_cast<uint32_t>(op->imm);  // resolved at compile time
      regs_[op->rd] = mem_->Read32(a);
      charge_mem(a);
      NEUROC_NEXT;
    }
    NEUROC_OP(kStrReg)
    NEUROC_OP(kStrImm)
    NEUROC_OP(kStrSp) {
      uint32_t a;
      if (op->op == Op::kStrReg) {
        a = regs_[op->rn] + regs_[op->rm];
      } else if (op->op == Op::kStrSp) {
        a = regs_[kRegSp] + static_cast<uint32_t>(op->imm);
      } else {
        a = regs_[op->rn] + static_cast<uint32_t>(op->imm);
      }
      mem_->Write32(a, regs_[op->rd]);
      charge_mem(a);
      NEUROC_NEXT;
    }
    NEUROC_OP(kLdrReg)
    NEUROC_OP(kLdrImm)
    NEUROC_OP(kLdrSp) {
      uint32_t a;
      if (op->op == Op::kLdrReg) {
        a = regs_[op->rn] + regs_[op->rm];
      } else if (op->op == Op::kLdrSp) {
        a = regs_[kRegSp] + static_cast<uint32_t>(op->imm);
      } else {
        a = regs_[op->rn] + static_cast<uint32_t>(op->imm);
      }
      regs_[op->rd] = mem_->Read32(a);
      charge_mem(a);
      NEUROC_NEXT;
    }
    NEUROC_OP(kStrbReg)
    NEUROC_OP(kStrbImm) {
      const uint32_t a = op->op == Op::kStrbReg
                             ? regs_[op->rn] + regs_[op->rm]
                             : regs_[op->rn] + static_cast<uint32_t>(op->imm);
      mem_->Write8(a, static_cast<uint8_t>(regs_[op->rd]));
      charge_mem(a);
      NEUROC_NEXT;
    }
    NEUROC_OP(kLdrbReg)
    NEUROC_OP(kLdrbImm) {
      const uint32_t a = op->op == Op::kLdrbReg
                             ? regs_[op->rn] + regs_[op->rm]
                             : regs_[op->rn] + static_cast<uint32_t>(op->imm);
      regs_[op->rd] = mem_->Read8(a);
      charge_mem(a);
      NEUROC_NEXT;
    }
    NEUROC_OP(kStrhReg)
    NEUROC_OP(kStrhImm) {
      const uint32_t a = op->op == Op::kStrhReg
                             ? regs_[op->rn] + regs_[op->rm]
                             : regs_[op->rn] + static_cast<uint32_t>(op->imm);
      mem_->Write16(a, static_cast<uint16_t>(regs_[op->rd]));
      charge_mem(a);
      NEUROC_NEXT;
    }
    NEUROC_OP(kLdrhReg)
    NEUROC_OP(kLdrhImm) {
      const uint32_t a = op->op == Op::kLdrhReg
                             ? regs_[op->rn] + regs_[op->rm]
                             : regs_[op->rn] + static_cast<uint32_t>(op->imm);
      regs_[op->rd] = mem_->Read16(a);
      charge_mem(a);
      NEUROC_NEXT;
    }
    NEUROC_OP(kLdrsbReg) {
      const uint32_t a = regs_[op->rn] + regs_[op->rm];
      regs_[op->rd] = static_cast<uint32_t>(
          static_cast<int32_t>(static_cast<int8_t>(mem_->Read8(a))));
      charge_mem(a);
      NEUROC_NEXT;
    }
    NEUROC_OP(kLdrshReg) {
      const uint32_t a = regs_[op->rn] + regs_[op->rm];
      regs_[op->rd] = static_cast<uint32_t>(
          static_cast<int32_t>(static_cast<int16_t>(mem_->Read16(a))));
      charge_mem(a);
      NEUROC_NEXT;
    }
    NEUROC_OP(kAdr)
      regs_[op->rd] = static_cast<uint32_t>(op->imm);  // resolved at compile time
      NEUROC_NEXT;
    NEUROC_OP(kAddSpImm)
      regs_[op->rd] = regs_[kRegSp] + static_cast<uint32_t>(op->imm);
      NEUROC_NEXT;
    NEUROC_OP(kAddSp7)
      regs_[kRegSp] += static_cast<uint32_t>(op->imm);
      NEUROC_NEXT;
    NEUROC_OP(kSubSp7)
      regs_[kRegSp] -= static_cast<uint32_t>(op->imm);
      NEUROC_NEXT;
    NEUROC_OP(kSxth)
      regs_[op->rd] = static_cast<uint32_t>(
          static_cast<int32_t>(static_cast<int16_t>(regs_[op->rm] & 0xFFFF)));
      NEUROC_NEXT;
    NEUROC_OP(kSxtb)
      regs_[op->rd] = static_cast<uint32_t>(
          static_cast<int32_t>(static_cast<int8_t>(regs_[op->rm] & 0xFF)));
      NEUROC_NEXT;
    NEUROC_OP(kUxth)
      regs_[op->rd] = regs_[op->rm] & 0xFFFF;
      NEUROC_NEXT;
    NEUROC_OP(kUxtb)
      regs_[op->rd] = regs_[op->rm] & 0xFF;
      NEUROC_NEXT;
    NEUROC_OP(kRev) {
      const uint32_t v = regs_[op->rm];
      regs_[op->rd] = ((v & 0xFF) << 24) | ((v & 0xFF00) << 8) | ((v >> 8) & 0xFF00) |
                    ((v >> 24) & 0xFF);
      NEUROC_NEXT;
    }
    NEUROC_OP(kRev16) {
      const uint32_t v = regs_[op->rm];
      regs_[op->rd] = ((v & 0x00FF00FF) << 8) | ((v & 0xFF00FF00) >> 8);
      NEUROC_NEXT;
    }
    NEUROC_OP(kRevsh) {
      const uint32_t v = regs_[op->rm];
      const uint16_t swapped =
          static_cast<uint16_t>(((v & 0xFF) << 8) | ((v >> 8) & 0xFF));
      regs_[op->rd] =
          static_cast<uint32_t>(static_cast<int32_t>(static_cast<int16_t>(swapped)));
      NEUROC_NEXT;
    }
    NEUROC_OP(kPush) {
      const int count = PopCount8(op->reglist);
      uint32_t a = regs_[kRegSp] - 4u * static_cast<uint32_t>(count);
      regs_[kRegSp] = a;
      for (int r = 0; r < 8; ++r) {
        if (op->reglist & (1 << r)) {
          mem_->Write32(a, regs_[r]);
          a += 4;
        }
      }
      if (op->reglist & 0x100) {
        mem_->Write32(a, regs_[kRegLr]);
      }
      NEUROC_NEXT;
    }
    NEUROC_OP(kPop) {
      const int count = PopCount8(op->reglist);
      uint32_t a = regs_[kRegSp];
      for (int r = 0; r < 8; ++r) {
        if (op->reglist & (1 << r)) {
          regs_[r] = mem_->Read32(a);
          a += 4;
        }
      }
      bool to_pc = false;
      uint32_t pc_value = 0;
      if (op->reglist & 0x100) {
        pc_value = mem_->Read32(a);
        a += 4;
        to_pc = true;
      }
      regs_[kRegSp] = regs_[kRegSp] + 4u * static_cast<uint32_t>(count);
      if (to_pc) {
        pc_ = pc_value & ~1u;  // block terminator
      }
      NEUROC_NEXT;
    }
    NEUROC_OP(kLdm) {
      uint32_t a = regs_[op->rn];
      for (int r = 0; r < 8; ++r) {
        if (op->reglist & (1 << r)) {
          regs_[r] = mem_->Read32(a);
          a += 4;
        }
      }
      if ((op->reglist & (1 << op->rn)) == 0) {
        regs_[op->rn] = a;
      }
      NEUROC_NEXT;
    }
    NEUROC_OP(kStm) {
      uint32_t a = regs_[op->rn];
      for (int r = 0; r < 8; ++r) {
        if (op->reglist & (1 << r)) {
          mem_->Write32(a, regs_[r]);
          a += 4;
        }
      }
      regs_[op->rn] = a;
      NEUROC_NEXT;
    }
    NEUROC_OP(kNop)
      NEUROC_NEXT;
    NEUROC_OP(kBcond)
      if (EvalCond(op->cond)) {
        pc_ = static_cast<uint32_t>(op->imm) & ~1u;  // target resolved at compile time
        dyn += static_cast<uint32_t>(model_.branch_taken);
        if constexpr (kProfiled) {
          ++b.prof_bcond_taken;
        }
      } else {
        pc_ = op->addr + 2;
        dyn += static_cast<uint32_t>(model_.branch_not_taken);
      }
      NEUROC_NEXT;
    NEUROC_OP(kB)
      pc_ = static_cast<uint32_t>(op->imm) & ~1u;
      NEUROC_NEXT;
    NEUROC_OP(kBl)
      regs_[kRegLr] = (op->addr + 4) | 1;
      pc_ = static_cast<uint32_t>(op->imm) & ~1u;
      NEUROC_NEXT;
    NEUROC_OP(kUdf)
    NEUROC_OP(kInvalid)
      NEUROC_CHECK(false);  // never compiled into a block
      NEUROC_NEXT;
#if !NEUROC_BLOCK_COMPUTED_GOTO
      }
    }
#endif
  } catch (GuestFault& gf) {
    const size_t i = static_cast<size_t>(op - ops);  // index of the faulting op
    // Patch the batched accounting so the architectural state is exactly what the step
    // interpreter shows at this fault: counters and fetch stats cover the retired prefix
    // plus the faulting instruction, whose fetch wait states are charged but whose
    // data-access cost is not (the access threw first), and pc/r15 sit past it. The
    // retired prefix's static cycles are the faulting op's compile-time prefix sum; dyn
    // holds the prefix's data-access wait states (the faulting access never charged its).
    const BlockOp& f = b.ops[i];
    cycles_ += f.cycles_before + fetch_ws + dyn;
    instructions_ += i + 1;
    for (size_t k = 0; k <= i; ++k) {
      const BlockOp& o = b.ops[k];
      ++op_histogram_[static_cast<size_t>(o.op)];
      mem_->CountFlashFetches(o.addr, o.fetch_reads);
    }
    if constexpr (kProfiled) {
      // The aborted run never reaches prof_execs, so fold its per-PC attribution as
      // residue now: each retired prefix op its static charge (the prefix-sum delta —
      // its flash-wait hits were already recorded into prof_mem_hits by charge_mem),
      // and the faulting op its fetch wait states only (the access threw before its
      // data-access cost was charged, matching the interpreter).
      for (size_t k = 0; k < i; ++k) {
        const BlockOp& o = b.ops[k];
        ProfiledPc& stat = block_profile_[o.addr];
        stat.count += 1;
        stat.cycles += b.ops[k + 1].cycles_before - o.cycles_before;
        stat.op = o.op;
      }
      ProfiledPc& stat = block_profile_[f.addr];
      stat.count += 1;
      stat.cycles += fetch_ws;
      stat.op = f.op;
    }
    pc_ = f.addr + 2u * f.fetch_reads;
    regs_[kRegPc] = f.addr + 4;
    gf.pc = f.addr;
    throw;
  }
block_exit:
  cycles_ += b.static_cycles + dyn;
  instructions_ += n;
  ++b.execs;  // histogram applied lazily: FlushBlockHistograms folds histogram * execs
  if constexpr (kProfiled) {
    ++b.prof_execs;
  }
  if (mem_->observing()) {
    // Heatmap/stack-watch attached: replay per-halfword fetch observations in order so
    // the histograms match the interpreter exactly.
    for (const BlockOp& o : b.ops) {
      mem_->CountFlashFetches(o.addr, o.fetch_reads);
    }
  } else {
    mem_->AddFlashReads(b.fetch_reads);
  }
  const BlockOp& last = b.ops[n - 1];
  regs_[kRegPc] = last.addr + 4;  // what the interpreter's final step leaves in r15
  if (!b.terminated) {
    pc_ = last.addr + 2u * last.fetch_reads;  // fall through to the successor block
  }
}

#undef NEUROC_BLOCK_COMPUTED_GOTO
#undef NEUROC_OP
#undef NEUROC_NEXT
#undef NEUROC_RVAL

void Cpu::Step() {
  // One catch site per retired instruction: a guest fault thrown anywhere inside the
  // fetch/execute path (memory system or decode) is stamped with the address of the
  // instruction that caused it before propagating to Machine::TryCallFunction. The
  // non-faulting path is unaffected (table-based unwinding costs only on throw).
  const uint32_t fault_pc = pc_;
  if (block_profile_enabled_) {
    // Interpreter-fallback residue: any step taken while block profiling is on (step-only
    // entries, uncovered flash, budget-crossing tails, SRAM execution, or block mode
    // disabled outright) is attributed by counter delta, so the profile stays exact off
    // the block path too. The decode peek is uncounted host observation on this cold
    // path; a fault that retires nothing (undefined instruction throws before the retire
    // counters move) correctly records nothing.
    const Op op = PeekOpAt(fault_pc);
    const uint64_t cycles_before = cycles_;
    const uint64_t instructions_before = instructions_;
    const auto record = [&] {
      if (instructions_ == instructions_before) {
        return;
      }
      ProfiledPc& stat = block_profile_[fault_pc];
      stat.count += 1;
      stat.cycles += cycles_ - cycles_before;
      stat.op = op;
    };
    try {
      StepInner();
    } catch (GuestFault& gf) {
      gf.pc = fault_pc;
      record();
      throw;
    }
    record();
    return;
  }
  try {
    StepInner();
  } catch (GuestFault& gf) {
    gf.pc = fault_pc;
    throw;
  }
}

void Cpu::StepInner() {
  NEUROC_CHECK(!halted());
  const uint32_t addr = pc_;
  const uint64_t cycles_at_entry = cycles_;
  const bool fetch_from_flash = mem_->InFlash(addr);
  uint16_t hw1 = 0;
  uint16_t hw2 = 0;
  Instr in;
  size_t slot = 0;
  bool cached = false;
  if (icache_enabled_ && fetch_from_flash) {
    if (!icache_valid_) {
      RebuildDecodeCache();
    }
    slot = static_cast<size_t>(addr - mem_->flash_base()) >> 1;
    cached = slot < icache_.size();
  }
  if (cached) {
    const Predecoded& pd = icache_[slot];
    hw1 = pd.hw1;
    hw2 = pd.hw2;
    in = pd.instr;
    // Fetch accounting identical to the interpreter path: one counted flash read per
    // halfword fetched (the per-slot count already encodes the wide/mapped rule).
    mem_->CountFlashFetches(addr, pd.flash_reads);
  } else {
    hw1 = mem_->Read16(addr);
    // Peek the second halfword only for 32-bit encodings (BL prefix). A wide prefix on
    // the last mapped halfword is an undefined instruction (hw2 reads as 0), not a
    // memory fault mid-fetch — the trace dump below must still show it.
    const bool wide = (hw1 & 0xF800) == 0xF000;
    hw2 = (wide && mem_->RegionOf(addr + 2) != MemRegion::kNone) ? mem_->Read16(addr + 2)
                                                                 : 0;
    in = DecodeInstr(hw1, hw2);
  }
  if (!trace_.empty()) {
    trace_[trace_pos_] = {addr, hw1, hw2};
    trace_pos_ = (trace_pos_ + 1) % trace_.size();
    ++trace_count_;
  }
  if (in.op == Op::kInvalid || in.op == Op::kUdf) {
    char msg[48];
    std::snprintf(msg, sizeof(msg), "undefined instruction 0x%04x", hw1);
    throw GuestFault{ErrorCode::kUndefinedInstruction, msg, /*addr=*/0, /*pc=*/addr,
                     /*instruction=*/hw1};
  }
  ++instructions_;
  ++op_histogram_[static_cast<size_t>(in.op)];
  if (fetch_from_flash) {
    cycles_ += static_cast<uint64_t>(model_.flash_wait_states);
  }
  pc_ = addr + 2u * in.length;  // default fall-through; branches overwrite

  // PC-read rule: reads of r15 observe the current instruction's address + 4.
  // Materializing that into the register file once per step makes every operand read a
  // plain array load instead of a compare-and-select per read. Nothing outside Step
  // reads slot 15 (the architectural PC lives in pc_).
  regs_[kRegPc] = addr + 4;
  auto rr = [&](uint8_t r) -> uint32_t { return regs_[r]; };

  switch (in.op) {
    case Op::kLslImm: {
      const uint32_t v = rr(in.rm);
      uint32_t result;
      if (in.imm == 0) {
        result = v;  // MOVS register form: C unchanged
      } else {
        flags_.c = (v >> (32 - in.imm)) & 1;
        result = v << in.imm;
      }
      regs_[in.rd] = result;
      SetNZ(result);
      cycles_ += model_.alu;
      break;
    }
    case Op::kLsrImm: {
      const uint32_t v = rr(in.rm);
      const int amount = in.imm == 0 ? 32 : in.imm;
      uint32_t result;
      if (amount == 32) {
        flags_.c = (v >> 31) & 1;
        result = 0;
      } else {
        flags_.c = (v >> (amount - 1)) & 1;
        result = v >> amount;
      }
      regs_[in.rd] = result;
      SetNZ(result);
      cycles_ += model_.alu;
      break;
    }
    case Op::kAsrImm: {
      const uint32_t v = rr(in.rm);
      const int amount = in.imm == 0 ? 32 : in.imm;
      uint32_t result;
      if (amount == 32) {
        flags_.c = (v >> 31) & 1;
        result = (v >> 31) ? 0xFFFFFFFFu : 0u;
      } else {
        flags_.c = (v >> (amount - 1)) & 1;
        result = static_cast<uint32_t>(static_cast<int32_t>(v) >> amount);
      }
      regs_[in.rd] = result;
      SetNZ(result);
      cycles_ += model_.alu;
      break;
    }
    case Op::kAddReg:
    case Op::kAddImm3: {
      const uint32_t op2 = in.op == Op::kAddReg ? rr(in.rm) : static_cast<uint32_t>(in.imm);
      const AddResult r = AddWithCarry(rr(in.rn), op2, false);
      regs_[in.rd] = r.value;
      SetNZ(r.value);
      flags_.c = r.carry;
      flags_.v = r.overflow;
      cycles_ += model_.alu;
      break;
    }
    case Op::kSubReg:
    case Op::kSubImm3: {
      const uint32_t op2 = in.op == Op::kSubReg ? rr(in.rm) : static_cast<uint32_t>(in.imm);
      const AddResult r = AddWithCarry(rr(in.rn), ~op2, true);
      regs_[in.rd] = r.value;
      SetNZ(r.value);
      flags_.c = r.carry;
      flags_.v = r.overflow;
      cycles_ += model_.alu;
      break;
    }
    case Op::kMovImm:
      regs_[in.rd] = static_cast<uint32_t>(in.imm);
      SetNZ(regs_[in.rd]);
      cycles_ += model_.alu;
      break;
    case Op::kCmpImm:
    case Op::kCmpReg:
    case Op::kCmpHi: {
      const uint32_t lhs = rr(in.rn);
      const uint32_t rhs =
          in.op == Op::kCmpImm ? static_cast<uint32_t>(in.imm) : rr(in.rm);
      const AddResult r = AddWithCarry(lhs, ~rhs, true);
      SetNZ(r.value);
      flags_.c = r.carry;
      flags_.v = r.overflow;
      cycles_ += model_.alu;
      break;
    }
    case Op::kAddImm8: {
      const AddResult r = AddWithCarry(regs_[in.rd], static_cast<uint32_t>(in.imm), false);
      regs_[in.rd] = r.value;
      SetNZ(r.value);
      flags_.c = r.carry;
      flags_.v = r.overflow;
      cycles_ += model_.alu;
      break;
    }
    case Op::kSubImm8: {
      const AddResult r =
          AddWithCarry(regs_[in.rd], ~static_cast<uint32_t>(in.imm), true);
      regs_[in.rd] = r.value;
      SetNZ(r.value);
      flags_.c = r.carry;
      flags_.v = r.overflow;
      cycles_ += model_.alu;
      break;
    }
    case Op::kAnd:
      regs_[in.rd] &= rr(in.rm);
      SetNZ(regs_[in.rd]);
      cycles_ += model_.alu;
      break;
    case Op::kEor:
      regs_[in.rd] ^= rr(in.rm);
      SetNZ(regs_[in.rd]);
      cycles_ += model_.alu;
      break;
    case Op::kOrr:
      regs_[in.rd] |= rr(in.rm);
      SetNZ(regs_[in.rd]);
      cycles_ += model_.alu;
      break;
    case Op::kBic:
      regs_[in.rd] &= ~rr(in.rm);
      SetNZ(regs_[in.rd]);
      cycles_ += model_.alu;
      break;
    case Op::kMvn:
      regs_[in.rd] = ~rr(in.rm);
      SetNZ(regs_[in.rd]);
      cycles_ += model_.alu;
      break;
    case Op::kTst: {
      const uint32_t result = rr(in.rn) & rr(in.rm);
      SetNZ(result);
      cycles_ += model_.alu;
      break;
    }
    case Op::kCmn: {
      const AddResult r = AddWithCarry(rr(in.rn), rr(in.rm), false);
      SetNZ(r.value);
      flags_.c = r.carry;
      flags_.v = r.overflow;
      cycles_ += model_.alu;
      break;
    }
    case Op::kLslReg:
    case Op::kLsrReg:
    case Op::kAsrReg:
    case Op::kRor: {
      const uint32_t amount = rr(in.rm) & 0xFF;
      uint32_t v = regs_[in.rd];
      if (amount != 0) {
        switch (in.op) {
          case Op::kLslReg:
            if (amount < 32) {
              flags_.c = (v >> (32 - amount)) & 1;
              v <<= amount;
            } else {
              flags_.c = (amount == 32) ? (v & 1) : false;
              v = 0;
            }
            break;
          case Op::kLsrReg:
            if (amount < 32) {
              flags_.c = (v >> (amount - 1)) & 1;
              v >>= amount;
            } else {
              flags_.c = (amount == 32) ? ((v >> 31) & 1) : false;
              v = 0;
            }
            break;
          case Op::kAsrReg:
            if (amount < 32) {
              flags_.c = (v >> (amount - 1)) & 1;
              v = static_cast<uint32_t>(static_cast<int32_t>(v) >> amount);
            } else {
              flags_.c = (v >> 31) & 1;
              v = (v >> 31) ? 0xFFFFFFFFu : 0u;
            }
            break;
          case Op::kRor: {
            const uint32_t rot = amount & 31;
            if (rot != 0) {
              v = (v >> rot) | (v << (32 - rot));
            }
            flags_.c = (v >> 31) & 1;
            break;
          }
          default:
            break;
        }
      }
      regs_[in.rd] = v;
      SetNZ(v);
      cycles_ += model_.alu;
      break;
    }
    case Op::kAdc: {
      const AddResult r = AddWithCarry(regs_[in.rd], rr(in.rm), flags_.c);
      regs_[in.rd] = r.value;
      SetNZ(r.value);
      flags_.c = r.carry;
      flags_.v = r.overflow;
      cycles_ += model_.alu;
      break;
    }
    case Op::kSbc: {
      const AddResult r = AddWithCarry(regs_[in.rd], ~rr(in.rm), flags_.c);
      regs_[in.rd] = r.value;
      SetNZ(r.value);
      flags_.c = r.carry;
      flags_.v = r.overflow;
      cycles_ += model_.alu;
      break;
    }
    case Op::kNeg: {
      const AddResult r = AddWithCarry(~rr(in.rm), 0, true);
      regs_[in.rd] = r.value;
      SetNZ(r.value);
      flags_.c = r.carry;
      flags_.v = r.overflow;
      cycles_ += model_.alu;
      break;
    }
    case Op::kMul:
      regs_[in.rd] = regs_[in.rd] * rr(in.rm);
      SetNZ(regs_[in.rd]);  // ARMv6-M MULS sets N and Z only
      cycles_ += model_.mul;
      break;
    case Op::kAddHi: {
      const uint32_t result = rr(in.rd) + rr(in.rm);
      if (in.rd == kRegPc) {
        Branch(result, model_.pc_alu);
      } else {
        regs_[in.rd] = result;
        cycles_ += model_.alu;
      }
      break;
    }
    case Op::kMovHi: {
      const uint32_t result = rr(in.rm);
      if (in.rd == kRegPc) {
        Branch(result, model_.pc_alu);
      } else {
        regs_[in.rd] = result;
        cycles_ += model_.alu;
      }
      break;
    }
    case Op::kBx:
      Branch(rr(in.rm), model_.bx);
      break;
    case Op::kBlx: {
      const uint32_t target = rr(in.rm);
      regs_[kRegLr] = (addr + 2) | 1;
      Branch(target, model_.bx);
      break;
    }
    case Op::kLdrLit: {
      const uint32_t a = ((addr + 4) & ~3u) + static_cast<uint32_t>(in.imm);
      regs_[in.rd] = mem_->Read32(a);
      ChargeMemAccess(a, false);
      break;
    }
    case Op::kStrReg:
    case Op::kStrImm:
    case Op::kStrSp: {
      uint32_t a;
      if (in.op == Op::kStrReg) {
        a = rr(in.rn) + rr(in.rm);
      } else if (in.op == Op::kStrSp) {
        a = regs_[kRegSp] + static_cast<uint32_t>(in.imm);
      } else {
        a = rr(in.rn) + static_cast<uint32_t>(in.imm);
      }
      mem_->Write32(a, regs_[in.rd]);
      ChargeMemAccess(a, true);
      break;
    }
    case Op::kLdrReg:
    case Op::kLdrImm:
    case Op::kLdrSp: {
      uint32_t a;
      if (in.op == Op::kLdrReg) {
        a = rr(in.rn) + rr(in.rm);
      } else if (in.op == Op::kLdrSp) {
        a = regs_[kRegSp] + static_cast<uint32_t>(in.imm);
      } else {
        a = rr(in.rn) + static_cast<uint32_t>(in.imm);
      }
      regs_[in.rd] = mem_->Read32(a);
      ChargeMemAccess(a, false);
      break;
    }
    case Op::kStrbReg:
    case Op::kStrbImm: {
      const uint32_t a = in.op == Op::kStrbReg ? rr(in.rn) + rr(in.rm)
                                               : rr(in.rn) + static_cast<uint32_t>(in.imm);
      mem_->Write8(a, static_cast<uint8_t>(regs_[in.rd]));
      ChargeMemAccess(a, true);
      break;
    }
    case Op::kLdrbReg:
    case Op::kLdrbImm: {
      const uint32_t a = in.op == Op::kLdrbReg ? rr(in.rn) + rr(in.rm)
                                               : rr(in.rn) + static_cast<uint32_t>(in.imm);
      regs_[in.rd] = mem_->Read8(a);
      ChargeMemAccess(a, false);
      break;
    }
    case Op::kStrhReg:
    case Op::kStrhImm: {
      const uint32_t a = in.op == Op::kStrhReg ? rr(in.rn) + rr(in.rm)
                                               : rr(in.rn) + static_cast<uint32_t>(in.imm);
      mem_->Write16(a, static_cast<uint16_t>(regs_[in.rd]));
      ChargeMemAccess(a, true);
      break;
    }
    case Op::kLdrhReg:
    case Op::kLdrhImm: {
      const uint32_t a = in.op == Op::kLdrhReg ? rr(in.rn) + rr(in.rm)
                                               : rr(in.rn) + static_cast<uint32_t>(in.imm);
      regs_[in.rd] = mem_->Read16(a);
      ChargeMemAccess(a, false);
      break;
    }
    case Op::kLdrsbReg: {
      const uint32_t a = rr(in.rn) + rr(in.rm);
      regs_[in.rd] = static_cast<uint32_t>(static_cast<int32_t>(static_cast<int8_t>(
          mem_->Read8(a))));
      ChargeMemAccess(a, false);
      break;
    }
    case Op::kLdrshReg: {
      const uint32_t a = rr(in.rn) + rr(in.rm);
      regs_[in.rd] = static_cast<uint32_t>(static_cast<int32_t>(static_cast<int16_t>(
          mem_->Read16(a))));
      ChargeMemAccess(a, false);
      break;
    }
    case Op::kAdr:
      regs_[in.rd] = ((addr + 4) & ~3u) + static_cast<uint32_t>(in.imm);
      cycles_ += model_.alu;
      break;
    case Op::kAddSpImm:
      regs_[in.rd] = regs_[kRegSp] + static_cast<uint32_t>(in.imm);
      cycles_ += model_.alu;
      break;
    case Op::kAddSp7:
      regs_[kRegSp] += static_cast<uint32_t>(in.imm);
      cycles_ += model_.alu;
      break;
    case Op::kSubSp7:
      regs_[kRegSp] -= static_cast<uint32_t>(in.imm);
      cycles_ += model_.alu;
      break;
    case Op::kSxth:
      regs_[in.rd] = static_cast<uint32_t>(
          static_cast<int32_t>(static_cast<int16_t>(rr(in.rm) & 0xFFFF)));
      cycles_ += model_.alu;
      break;
    case Op::kSxtb:
      regs_[in.rd] =
          static_cast<uint32_t>(static_cast<int32_t>(static_cast<int8_t>(rr(in.rm) & 0xFF)));
      cycles_ += model_.alu;
      break;
    case Op::kUxth:
      regs_[in.rd] = rr(in.rm) & 0xFFFF;
      cycles_ += model_.alu;
      break;
    case Op::kUxtb:
      regs_[in.rd] = rr(in.rm) & 0xFF;
      cycles_ += model_.alu;
      break;
    case Op::kRev: {
      const uint32_t v = rr(in.rm);
      regs_[in.rd] = ((v & 0xFF) << 24) | ((v & 0xFF00) << 8) | ((v >> 8) & 0xFF00) |
                     ((v >> 24) & 0xFF);
      cycles_ += model_.alu;
      break;
    }
    case Op::kRev16: {
      const uint32_t v = rr(in.rm);
      regs_[in.rd] = ((v & 0x00FF00FF) << 8) | ((v & 0xFF00FF00) >> 8);
      cycles_ += model_.alu;
      break;
    }
    case Op::kRevsh: {
      const uint32_t v = rr(in.rm);
      const uint16_t swapped = static_cast<uint16_t>(((v & 0xFF) << 8) | ((v >> 8) & 0xFF));
      regs_[in.rd] =
          static_cast<uint32_t>(static_cast<int32_t>(static_cast<int16_t>(swapped)));
      cycles_ += model_.alu;
      break;
    }
    case Op::kPush: {
      int count = 0;
      for (int r = 0; r <= 8; ++r) {
        if (in.reglist & (1 << r)) {
          ++count;
        }
      }
      uint32_t a = regs_[kRegSp] - 4u * static_cast<uint32_t>(count);
      regs_[kRegSp] = a;
      for (int r = 0; r < 8; ++r) {
        if (in.reglist & (1 << r)) {
          mem_->Write32(a, regs_[r]);
          a += 4;
        }
      }
      if (in.reglist & 0x100) {
        mem_->Write32(a, regs_[kRegLr]);
      }
      cycles_ += static_cast<uint64_t>(model_.push_pop_base + count);
      break;
    }
    case Op::kPop: {
      int count = 0;
      for (int r = 0; r <= 8; ++r) {
        if (in.reglist & (1 << r)) {
          ++count;
        }
      }
      uint32_t a = regs_[kRegSp];
      for (int r = 0; r < 8; ++r) {
        if (in.reglist & (1 << r)) {
          regs_[r] = mem_->Read32(a);
          a += 4;
        }
      }
      bool to_pc = false;
      uint32_t pc_value = 0;
      if (in.reglist & 0x100) {
        pc_value = mem_->Read32(a);
        a += 4;
        to_pc = true;
      }
      regs_[kRegSp] = regs_[kRegSp] + 4u * static_cast<uint32_t>(count);
      cycles_ += static_cast<uint64_t>(model_.push_pop_base + count);
      if (to_pc) {
        cycles_ += static_cast<uint64_t>(model_.pop_pc_extra);
        pc_ = pc_value & ~1u;
      }
      break;
    }
    case Op::kLdm: {
      // LDMIA rn!, {list}: ascending loads; writeback unless rn is in the list.
      uint32_t a = rr(in.rn);
      int count = 0;
      for (int r = 0; r < 8; ++r) {
        if (in.reglist & (1 << r)) {
          regs_[r] = mem_->Read32(a);
          a += 4;
          ++count;
        }
      }
      if ((in.reglist & (1 << in.rn)) == 0) {
        regs_[in.rn] = a;
      }
      cycles_ += static_cast<uint64_t>(model_.push_pop_base + count);
      break;
    }
    case Op::kStm: {
      uint32_t a = rr(in.rn);
      int count = 0;
      for (int r = 0; r < 8; ++r) {
        if (in.reglist & (1 << r)) {
          mem_->Write32(a, regs_[r]);
          a += 4;
          ++count;
        }
      }
      regs_[in.rn] = a;
      cycles_ += static_cast<uint64_t>(model_.push_pop_base + count);
      break;
    }
    case Op::kNop:
      cycles_ += model_.alu;
      break;
    case Op::kBcond:
      if (EvalCond(in.cond)) {
        Branch(addr + 4 + static_cast<uint32_t>(in.imm), model_.branch_taken);
      } else {
        cycles_ += model_.branch_not_taken;
      }
      break;
    case Op::kB:
      Branch(addr + 4 + static_cast<uint32_t>(in.imm), model_.branch_taken);
      break;
    case Op::kBl:
      regs_[kRegLr] = (addr + 4) | 1;
      Branch(addr + 4 + static_cast<uint32_t>(in.imm), model_.bl);
      break;
    case Op::kUdf:
    case Op::kInvalid:
      NEUROC_CHECK(false);
      break;
  }
  if (probe_ != nullptr) {
    probe_->OnRetire(addr, in.op, static_cast<uint32_t>(cycles_ - cycles_at_entry));
  }
}

}  // namespace neuroc
