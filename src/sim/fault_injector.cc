#include "src/sim/fault_injector.h"

#include <algorithm>
#include <bit>
#include <span>

#include "src/common/check.h"

namespace neuroc {

const char* FaultModelName(FaultModel model) {
  switch (model) {
    case FaultModel::kSingleBitFlip: return "bitflip";
    case FaultModel::kMultiBitFlip: return "multibit";
    case FaultModel::kStuckAtZero: return "stuck0";
    case FaultModel::kStuckAtOne: return "stuck1";
  }
  return "unknown";
}

bool ParseFaultModel(std::string_view text, FaultModel* out) {
  if (text == "bitflip") {
    *out = FaultModel::kSingleBitFlip;
  } else if (text == "multibit") {
    *out = FaultModel::kMultiBitFlip;
  } else if (text == "stuck0") {
    *out = FaultModel::kStuckAtZero;
  } else if (text == "stuck1") {
    *out = FaultModel::kStuckAtOne;
  } else {
    return false;
  }
  return true;
}

InjectedFault InjectFault(MemoryMap& memory, uint32_t base, uint32_t size,
                          FaultModel model, int bits, Rng& rng) {
  NEUROC_CHECK(size > 0);
  InjectedFault f;
  f.addr = base + static_cast<uint32_t>(rng.NextBounded(size));
  switch (model) {
    case FaultModel::kSingleBitFlip:
    case FaultModel::kStuckAtZero:
    case FaultModel::kStuckAtOne:
      f.mask = static_cast<uint8_t>(1u << rng.NextBounded(8));
      break;
    case FaultModel::kMultiBitFlip: {
      const int n = std::clamp(bits, 1, 8);
      while (std::popcount(static_cast<unsigned>(f.mask)) < n) {
        f.mask |= static_cast<uint8_t>(1u << rng.NextBounded(8));
      }
      break;
    }
  }
  memory.HostRead(f.addr, std::span<uint8_t>(&f.before, 1));
  switch (model) {
    case FaultModel::kSingleBitFlip:
    case FaultModel::kMultiBitFlip:
      f.after = f.before ^ f.mask;
      break;
    case FaultModel::kStuckAtZero:
      f.after = f.before & static_cast<uint8_t>(~f.mask);
      break;
    case FaultModel::kStuckAtOne:
      f.after = f.before | f.mask;
      break;
  }
  if (f.after != f.before) {
    memory.HostWrite(f.addr, std::span<const uint8_t>(&f.after, 1));
  }
  return f;
}

}  // namespace neuroc
