// Cycle-cost model of the simulated core.
//
// Defaults follow the Cortex-M0 Technical Reference Manual instruction timings (r0p0,
// "Cortex-M0 instructions"): single-cycle ALU, 2-cycle loads/stores, 3-cycle taken branches
// (pipeline refill on the 3-stage pipeline), 4-cycle BL. The multiplier is the single-cycle
// configuration used by STM32F0 parts; set `mul = 32` for the iterative option. Flash wait
// states model slower program memories (0 at the paper's 8 MHz operating point).
//
// Table-1 device classes map onto different parameter sets via runtime/platform.h.

#ifndef NEUROC_SRC_SIM_CYCLE_MODEL_H_
#define NEUROC_SRC_SIM_CYCLE_MODEL_H_

namespace neuroc {

struct CycleModel {
  int alu = 1;               // data processing, moves, shifts, extends
  int mul = 1;               // MULS (1 = fast multiplier, 32 = iterative)
  int load = 2;              // LDR/LDRB/LDRH/LDRSB/LDRSH (any addressing mode)
  int store = 2;             // STR/STRB/STRH
  int branch_taken = 3;      // B / B<cond> taken (2 + pipeline refill)
  int branch_not_taken = 1;  // B<cond> not taken
  int bl = 4;                // BL immediate
  int bx = 3;                // BX/BLX register
  int pc_alu = 3;            // hi-register ADD/MOV writing PC
  int push_pop_base = 1;     // PUSH/POP cost is base + #registers ...
  int pop_pc_extra = 3;      // ... plus this when POP loads PC
  int flash_wait_states = 0; // added per flash access, incl. instruction fetch

  static CycleModel CortexM0() { return CycleModel{}; }

  // Cortex-M0 with the 32-cycle iterative multiplier option.
  static CycleModel CortexM0SlowMul() {
    CycleModel m;
    m.mul = 32;
    return m;
  }
};

}  // namespace neuroc

#endif  // NEUROC_SRC_SIM_CYCLE_MODEL_H_
