#include "src/sim/machine.h"

#include <cstdio>
#include <cstdlib>

#include "src/common/check.h"
#include "src/sim/guest_fault.h"

namespace neuroc {

Machine::Machine(const MachineConfig& config)
    : config_(config),
      memory_(config.flash_base, config.flash_size, config.ram_base, config.ram_size),
      cpu_(&memory_, config.cycle_model) {}

void Machine::LoadBytes(uint32_t addr, std::span<const uint8_t> bytes) {
  memory_.HostWrite(addr, bytes);
}

StatusOr<uint64_t> Machine::TryCallFunction(uint32_t addr,
                                            std::initializer_list<uint32_t> args) {
  return TryCallFunction(addr, args, /*cycle_budget=*/0);
}

StatusOr<uint64_t> Machine::TryCallFunction(uint32_t addr,
                                            std::initializer_list<uint32_t> args,
                                            uint64_t cycle_budget) {
  NEUROC_CHECK(args.size() <= 4);
  int i = 0;
  for (uint32_t a : args) {
    cpu_.set_reg(i++, a);
  }
  // 8-byte-aligned stack at the top of SRAM, per AAPCS.
  cpu_.set_reg(kRegSp, (config_.ram_base + config_.ram_size) & ~7u);
  cpu_.set_reg(kRegLr, Cpu::kStopAddress | 1u);
  cpu_.set_pc(addr);
  const uint64_t start_cycles = cpu_.cycles();
  try {
    cpu_.Run(config_.max_instructions,
             cycle_budget == 0 ? 0 : start_cycles + cycle_budget);
  } catch (const GuestFault& gf) {
    FaultReport report;
    report.code = gf.code;
    report.message = gf.message;
    report.pc = gf.pc;
    report.addr = gf.addr;
    report.instruction = gf.instruction;
    report.cycles = cpu_.cycles();
    report.instructions = cpu_.instructions();
    report.trace_tail = cpu_.DumpTrace();
    last_fault_ = report;
    return Status::FromFault(std::move(report));
  }
  last_fault_ = FaultReport{};
  return cpu_.cycles() - start_cycles;
}

MachineSnapshot Machine::Snapshot() const {
  MachineSnapshot s;
  s.cpu = cpu_.SaveState();
  s.memory = memory_.SaveState();
  s.last_fault = last_fault_;
  return s;
}

void Machine::Restore(const MachineSnapshot& snapshot, RestoreScope scope) {
  memory_.RestoreState(snapshot.memory,
                       /*restore_flash=*/scope == RestoreScope::kFull);
  cpu_.RestoreState(snapshot.cpu);
  last_fault_ = snapshot.last_fault;
}

uint64_t Machine::CallFunction(uint32_t addr, std::initializer_list<uint32_t> args) {
  StatusOr<uint64_t> cycles = TryCallFunction(addr, args);
  if (!cycles.ok()) {
    std::fprintf(stderr, "%s\n", cycles.status().fault()->Describe().c_str());
    std::abort();
  }
  return *cycles;
}

}  // namespace neuroc
