#include "src/sim/memory.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/common/check.h"

namespace neuroc {

namespace {

[[noreturn]] void MemFault(const char* what, uint32_t addr) {
  std::fprintf(stderr, "simulated memory fault: %s at 0x%08x\n", what, addr);
  std::abort();
}

}  // namespace

MemoryMap::MemoryMap(uint32_t flash_base, uint32_t flash_size, uint32_t ram_base,
                     uint32_t ram_size)
    : flash_base_(flash_base), ram_base_(ram_base), flash_(flash_size, 0), ram_(ram_size, 0) {}

void MemoryMap::EnableHeatmap(uint32_t bucket_bytes) {
  NEUROC_CHECK(bucket_bytes != 0 && (bucket_bytes & (bucket_bytes - 1)) == 0);
  heatmap_ = MemHeatmap{};
  heatmap_.bucket_bytes = bucket_bytes;
  heatmap_.flash_reads.assign((flash_.size() + bucket_bytes - 1) / bucket_bytes, 0);
  heatmap_.sram_reads.assign((ram_.size() + bucket_bytes - 1) / bucket_bytes, 0);
  heatmap_.sram_writes.assign((ram_.size() + bucket_bytes - 1) / bucket_bytes, 0);
}

void MemoryMap::DisableHeatmap() { heatmap_ = MemHeatmap{}; }

void MemoryMap::EnableStackWatch(uint32_t floor_addr) {
  stack_watch_ = true;
  stack_floor_ = floor_addr;
  stack_low_water_ = 0xFFFFFFFFu;
}

void MemoryMap::Observe(uint32_t addr, MemRegion region, bool is_write) {
  if (heatmap_.bucket_bytes != 0) {
    if (region == MemRegion::kFlash) {
      const size_t b = (addr - flash_base_) / heatmap_.bucket_bytes;
      if (b < heatmap_.flash_reads.size()) {
        ++heatmap_.flash_reads[b];
      }
    } else if (region == MemRegion::kSram) {
      const size_t b = (addr - ram_base_) / heatmap_.bucket_bytes;
      std::vector<uint64_t>& counts = is_write ? heatmap_.sram_writes : heatmap_.sram_reads;
      if (b < counts.size()) {
        ++counts[b];
      }
    }
  }
  if (stack_watch_ && region == MemRegion::kSram && addr >= stack_floor_ &&
      addr < stack_low_water_) {
    stack_low_water_ = addr;
  }
}

MemRegion MemoryMap::RegionOf(uint32_t addr) const {
  if (addr >= flash_base_ && addr < flash_base_ + flash_.size()) {
    return MemRegion::kFlash;
  }
  if (addr >= ram_base_ && addr < ram_base_ + ram_.size()) {
    return MemRegion::kSram;
  }
  return MemRegion::kNone;
}

uint8_t* MemoryMap::HostPtr(uint32_t addr, uint32_t size, bool allow_flash_write) {
  switch (RegionOf(addr)) {
    case MemRegion::kFlash:
      if (!allow_flash_write) {
        MemFault("write to flash", addr);
      }
      if (addr + size > flash_base_ + flash_.size()) {
        MemFault("flash access past end", addr);
      }
      return flash_.data() + (addr - flash_base_);
    case MemRegion::kSram:
      if (addr + size > ram_base_ + ram_.size()) {
        MemFault("sram access past end", addr);
      }
      return ram_.data() + (addr - ram_base_);
    case MemRegion::kNone:
      break;
  }
  MemFault("access to unmapped address", addr);
}

const uint8_t* MemoryMap::HostPtrConst(uint32_t addr, uint32_t size) const {
  switch (RegionOf(addr)) {
    case MemRegion::kFlash:
      if (addr + size > flash_base_ + flash_.size()) {
        MemFault("flash access past end", addr);
      }
      return flash_.data() + (addr - flash_base_);
    case MemRegion::kSram:
      if (addr + size > ram_base_ + ram_.size()) {
        MemFault("sram access past end", addr);
      }
      return ram_.data() + (addr - ram_base_);
    case MemRegion::kNone:
      break;
  }
  MemFault("access to unmapped address", addr);
}

uint8_t MemoryMap::Read8(uint32_t addr) {
  const MemRegion region = RegionOf(addr);
  (region == MemRegion::kFlash ? stats_.flash_reads : stats_.sram_reads) += 1;
  if (observing()) {
    Observe(addr, region, /*is_write=*/false);
  }
  return *HostPtrConst(addr, 1);
}

uint16_t MemoryMap::Read16(uint32_t addr) {
  if (addr % 2 != 0) {
    MemFault("unaligned halfword read", addr);
  }
  const MemRegion region = RegionOf(addr);
  (region == MemRegion::kFlash ? stats_.flash_reads : stats_.sram_reads) += 1;
  if (observing()) {
    Observe(addr, region, /*is_write=*/false);
  }
  const uint8_t* p = HostPtrConst(addr, 2);
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t MemoryMap::Read32(uint32_t addr) {
  if (addr % 4 != 0) {
    MemFault("unaligned word read", addr);
  }
  const MemRegion region = RegionOf(addr);
  (region == MemRegion::kFlash ? stats_.flash_reads : stats_.sram_reads) += 1;
  if (observing()) {
    Observe(addr, region, /*is_write=*/false);
  }
  const uint8_t* p = HostPtrConst(addr, 4);
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

void MemoryMap::Write8(uint32_t addr, uint8_t value) {
  ++stats_.sram_writes;
  if (observing()) {
    Observe(addr, RegionOf(addr), /*is_write=*/true);
  }
  *HostPtr(addr, 1, /*allow_flash_write=*/false) = value;
}

void MemoryMap::Write16(uint32_t addr, uint16_t value) {
  if (addr % 2 != 0) {
    MemFault("unaligned halfword write", addr);
  }
  ++stats_.sram_writes;
  if (observing()) {
    Observe(addr, RegionOf(addr), /*is_write=*/true);
  }
  uint8_t* p = HostPtr(addr, 2, false);
  p[0] = static_cast<uint8_t>(value & 0xFF);
  p[1] = static_cast<uint8_t>(value >> 8);
}

void MemoryMap::Write32(uint32_t addr, uint32_t value) {
  if (addr % 4 != 0) {
    MemFault("unaligned word write", addr);
  }
  ++stats_.sram_writes;
  if (observing()) {
    Observe(addr, RegionOf(addr), /*is_write=*/true);
  }
  uint8_t* p = HostPtr(addr, 4, false);
  p[0] = static_cast<uint8_t>(value & 0xFF);
  p[1] = static_cast<uint8_t>((value >> 8) & 0xFF);
  p[2] = static_cast<uint8_t>((value >> 16) & 0xFF);
  p[3] = static_cast<uint8_t>((value >> 24) & 0xFF);
}

void MemoryMap::HostWrite(uint32_t addr, std::span<const uint8_t> bytes) {
  uint8_t* p = HostPtr(addr, static_cast<uint32_t>(bytes.size()), /*allow_flash_write=*/true);
  std::memcpy(p, bytes.data(), bytes.size());
}

void MemoryMap::HostRead(uint32_t addr, std::span<uint8_t> bytes) const {
  const uint8_t* p = HostPtrConst(addr, static_cast<uint32_t>(bytes.size()));
  std::memcpy(bytes.data(), p, bytes.size());
}

}  // namespace neuroc
