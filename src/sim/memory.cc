#include "src/sim/memory.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/common/check.h"
#include "src/sim/guest_fault.h"

namespace neuroc {

void MemoryMap::Fault(ErrorCode code, const char* what, uint32_t addr) {
  throw GuestFault{code, what, addr};
}

void MemoryMap::HostFault(const char* what, uint32_t addr) {
  std::fprintf(stderr, "host memory access error: %s at 0x%08x\n", what, addr);
  std::abort();
}

MemoryMap::MemoryMap(uint32_t flash_base, uint32_t flash_size, uint32_t ram_base,
                     uint32_t ram_size)
    : flash_base_(flash_base),
      ram_base_(ram_base),
      flash_size_(flash_size),
      ram_size_(ram_size),
      flash_(flash_size, 0),
      ram_(ram_size, 0) {}

void MemoryMap::EnableHeatmap(uint32_t bucket_bytes) {
  NEUROC_CHECK(bucket_bytes != 0 && (bucket_bytes & (bucket_bytes - 1)) == 0);
  heatmap_ = MemHeatmap{};
  heatmap_.bucket_bytes = bucket_bytes;
  heatmap_.flash_reads.assign((flash_.size() + bucket_bytes - 1) / bucket_bytes, 0);
  heatmap_.sram_reads.assign((ram_.size() + bucket_bytes - 1) / bucket_bytes, 0);
  heatmap_.sram_writes.assign((ram_.size() + bucket_bytes - 1) / bucket_bytes, 0);
  UpdateObserving();
}

void MemoryMap::DisableHeatmap() {
  heatmap_ = MemHeatmap{};
  UpdateObserving();
}

void MemoryMap::EnableStackWatch(uint32_t floor_addr) {
  stack_watch_ = true;
  stack_floor_ = floor_addr;
  stack_low_water_ = 0xFFFFFFFFu;
  UpdateObserving();
}

void MemoryMap::Observe(uint32_t addr, MemRegion region, bool is_write) {
  if (heatmap_.bucket_bytes != 0) {
    if (region == MemRegion::kFlash) {
      const size_t b = (addr - flash_base_) / heatmap_.bucket_bytes;
      if (b < heatmap_.flash_reads.size()) {
        ++heatmap_.flash_reads[b];
      }
    } else if (region == MemRegion::kSram) {
      const size_t b = (addr - ram_base_) / heatmap_.bucket_bytes;
      std::vector<uint64_t>& counts = is_write ? heatmap_.sram_writes : heatmap_.sram_reads;
      if (b < counts.size()) {
        ++counts[b];
      }
    }
  }
  if (stack_watch_ && region == MemRegion::kSram && addr >= stack_floor_ &&
      addr < stack_low_water_) {
    stack_low_water_ = addr;
  }
}

uint8_t* MemoryMap::HostPtr(uint32_t addr, uint32_t size, bool allow_flash_write) {
  switch (RegionOf(addr)) {
    case MemRegion::kFlash:
      if (!allow_flash_write) {
        HostFault("write to flash", addr);
      }
      if (addr + size > flash_base_ + flash_.size()) {
        HostFault("flash access past end", addr);
      }
      return flash_.data() + (addr - flash_base_);
    case MemRegion::kSram:
      if (addr + size > ram_base_ + ram_.size()) {
        HostFault("sram access past end", addr);
      }
      return ram_.data() + (addr - ram_base_);
    case MemRegion::kNone:
      break;
  }
  HostFault("access to unmapped address", addr);
}

const uint8_t* MemoryMap::HostPtrConst(uint32_t addr, uint32_t size) const {
  switch (RegionOf(addr)) {
    case MemRegion::kFlash:
      if (addr + size > flash_base_ + flash_.size()) {
        HostFault("flash access past end", addr);
      }
      return flash_.data() + (addr - flash_base_);
    case MemRegion::kSram:
      if (addr + size > ram_base_ + ram_.size()) {
        HostFault("sram access past end", addr);
      }
      return ram_.data() + (addr - ram_base_);
    case MemRegion::kNone:
      break;
  }
  HostFault("access to unmapped address", addr);
}

void MemoryMap::HostWrite(uint32_t addr, std::span<const uint8_t> bytes) {
  uint8_t* p = HostPtr(addr, static_cast<uint32_t>(bytes.size()), /*allow_flash_write=*/true);
  std::memcpy(p, bytes.data(), bytes.size());
  if (InFlash(addr)) {
    ++flash_generation_;
    if (flash_listener_ != nullptr) {
      *flash_listener_ = false;
    }
    const uint32_t end = addr + static_cast<uint32_t>(bytes.size()) - flash_base_;
    if (end > flash_high_water_) {
      flash_high_water_ = end;
    }
  }
}

MemoryState MemoryMap::SaveState() const {
  MemoryState s;
  s.flash.assign(flash_.begin(), flash_.begin() + flash_high_water_);
  s.flash_high_water = flash_high_water_;
  s.ram = ram_;
  s.stats = stats_;
  s.heatmap = heatmap_;
  s.stack_watch = stack_watch_;
  s.stack_floor = stack_floor_;
  s.stack_low_water = stack_low_water_;
  return s;
}

void MemoryMap::RestoreState(const MemoryState& state, bool restore_flash) {
  NEUROC_CHECK(state.ram.size() == ram_.size());
  NEUROC_CHECK(state.flash_high_water <= flash_.size());
  if (restore_flash) {
    std::memcpy(flash_.data(), state.flash.data(), state.flash.size());
    // Bytes loaded after the capture sit between the two high-water marks; re-erase them
    // so the flash image is byte-identical to capture time, then let the mark revert (it
    // normally never shrinks, but a restore is an explicit rewind of load history).
    if (flash_high_water_ > state.flash_high_water) {
      std::memset(flash_.data() + state.flash_high_water, 0,
                  flash_high_water_ - state.flash_high_water);
    }
    flash_high_water_ = state.flash_high_water;
    ++flash_generation_;
    if (flash_listener_ != nullptr) {
      *flash_listener_ = false;
    }
  }
  ram_ = state.ram;
  stats_ = state.stats;
  heatmap_ = state.heatmap;
  stack_watch_ = state.stack_watch;
  stack_floor_ = state.stack_floor;
  stack_low_water_ = state.stack_low_water;
  UpdateObserving();
}

void MemoryMap::HostRead(uint32_t addr, std::span<uint8_t> bytes) const {
  const uint8_t* p = HostPtrConst(addr, static_cast<uint32_t>(bytes.size()));
  std::memcpy(bytes.data(), p, bytes.size());
}

}  // namespace neuroc
