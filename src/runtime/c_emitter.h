// Generates freestanding C deployment sources for a quantized Neuro-C model: the constant
// arrays (encodings, scales, biases) and a plain-C inference routine, the artifact a user
// would compile with arm-none-eabi-gcc for a real board. This is the export path equivalent
// of the vendor toolchains discussed in the paper's Sec. 2.

#ifndef NEUROC_SRC_RUNTIME_C_EMITTER_H_
#define NEUROC_SRC_RUNTIME_C_EMITTER_H_

#include <string>

#include "src/core/neuroc_model.h"

namespace neuroc {

struct CSources {
  std::string header;  // <prefix>.h — API: int <prefix>_predict(const int8_t* input)
  std::string source;  // <prefix>.c — weights + inference code
};

// Emits C sources for `model`. `prefix` names the generated functions/arrays (must be a
// valid C identifier).
CSources EmitCSources(const NeuroCModel& model, const std::string& prefix);

}  // namespace neuroc

#endif  // NEUROC_SRC_RUNTIME_C_EMITTER_H_
