#include "src/runtime/profile.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/common/logging.h"
#include "src/obs/block_profiler.h"
#include "src/obs/registry.h"

namespace neuroc {

namespace {

// Default stack headroom below which deployment is considered at risk: the board has
// 16 KB of SRAM total, and a stack growing into the activation buffers corrupts
// inference silently.
constexpr uint32_t kDefaultStackHeadroomWarnBytes = 256;

enum class OpCategory { kLoad, kStore, kAlu, kMul, kBranch, kStack };

OpCategory Categorize(Op op) {
  switch (op) {
    case Op::kLdrLit:
    case Op::kLdrReg:
    case Op::kLdrhReg:
    case Op::kLdrbReg:
    case Op::kLdrsbReg:
    case Op::kLdrshReg:
    case Op::kLdrImm:
    case Op::kLdrbImm:
    case Op::kLdrhImm:
    case Op::kLdrSp:
    case Op::kLdm:
      return OpCategory::kLoad;
    case Op::kStrReg:
    case Op::kStrhReg:
    case Op::kStrbReg:
    case Op::kStrImm:
    case Op::kStrbImm:
    case Op::kStrhImm:
    case Op::kStrSp:
    case Op::kStm:
      return OpCategory::kStore;
    case Op::kMul:
      return OpCategory::kMul;
    case Op::kB:
    case Op::kBcond:
    case Op::kBl:
    case Op::kBx:
    case Op::kBlx:
      return OpCategory::kBranch;
    case Op::kPush:
    case Op::kPop:
      return OpCategory::kStack;
    default:
      return OpCategory::kAlu;
  }
}

// Rebases the aggregate profile on the attribution's per-opcode data: counts and cycles
// per category both derive from the same exact per-opcode attribution, so category
// cycles sum to the total cycle count exactly — regardless of which backend (step probe
// or block counters) gathered it.
ExecutionProfile SummarizeAttribution(const PcProfile& prof, const MemAccessStats& mem) {
  ExecutionProfile p;
  p.instructions = prof.total_instructions;
  p.cycles = prof.total_cycles;
  for (size_t i = 0; i < prof.op_counts.size(); ++i) {
    const uint64_t count = prof.op_counts[i];
    const uint64_t cycles = prof.op_cycles[i];
    if (count == 0 && cycles == 0) {
      continue;
    }
    switch (Categorize(static_cast<Op>(i))) {
      case OpCategory::kLoad:
        p.loads += count;
        p.load_cycles += cycles;
        break;
      case OpCategory::kStore:
        p.stores += count;
        p.store_cycles += cycles;
        break;
      case OpCategory::kMul:
        p.multiplies += count;
        p.multiply_cycles += cycles;
        break;
      case OpCategory::kBranch:
        p.branches += count;
        p.branch_cycles += cycles;
        break;
      case OpCategory::kStack:
        p.stack_ops += count;
        p.stack_cycles += cycles;
        break;
      case OpCategory::kAlu:
        p.alu += count;
        p.alu_cycles += cycles;
        break;
    }
  }
  p.flash_reads = mem.flash_reads;
  p.sram_reads = mem.sram_reads;
  p.sram_writes = mem.sram_writes;
  return p;
}

std::array<uint64_t, kEnergyClassCount> CyclesByEnergyClass(const ExecutionProfile& p) {
  std::array<uint64_t, kEnergyClassCount> cycles{};
  cycles[static_cast<size_t>(EnergyClass::kAlu)] = p.alu_cycles;
  cycles[static_cast<size_t>(EnergyClass::kMul)] = p.multiply_cycles;
  cycles[static_cast<size_t>(EnergyClass::kLoad)] = p.load_cycles;
  cycles[static_cast<size_t>(EnergyClass::kStore)] = p.store_cycles;
  cycles[static_cast<size_t>(EnergyClass::kBranch)] = p.branch_cycles;
  cycles[static_cast<size_t>(EnergyClass::kStack)] = p.stack_cycles;
  return cycles;
}

// Applies the decode/execution mode, runs one zero-input inference under the matching
// attribution backend, and restores the CPU's previous mode. kLegacy/kCached attach the
// step-interpreter probe (which transparently drops Run to Step); kBlock stays on
// block-compiled dispatch and uses the block-granular counters.
PcProfile RunAttributedInference(DeployedModel& model, ProfileMode mode) {
  Cpu& cpu = model.machine().cpu();
  const bool prev_icache = cpu.decode_cache_enabled();
  const bool prev_block = cpu.block_compile_enabled();
  cpu.EnableDecodeCache(mode != ProfileMode::kLegacy);
  cpu.EnableBlockCompile(mode == ProfileMode::kBlock);
  cpu.ResetCounters();

  PcProfile out;
  const std::vector<int8_t> zeros(model.input_dim(), 0);
  if (mode == ProfileMode::kBlock) {
    BlockProfiler profiler(cpu);
    model.Predict(zeros);
    out = profiler.Collect();
  } else {
    SimProfiler profiler;
    ScopedCpuProbe attach(cpu, &profiler);
    model.Predict(zeros);
    out = profiler.profile();
  }
  cpu.EnableDecodeCache(prev_icache);
  cpu.EnableBlockCompile(prev_block);
  MetricsRegistry::Global().GetCounter("profile.runs").Add(1);
  return out;
}

}  // namespace

const char* ProfileModeName(ProfileMode mode) {
  switch (mode) {
    case ProfileMode::kLegacy:
      return "legacy";
    case ProfileMode::kCached:
      return "cached";
    case ProfileMode::kBlock:
      return "block";
  }
  return "block";
}

bool ParseProfileMode(std::string_view name, ProfileMode* out) {
  if (name == "legacy") {
    *out = ProfileMode::kLegacy;
  } else if (name == "cached") {
    *out = ProfileMode::kCached;
  } else if (name == "block") {
    *out = ProfileMode::kBlock;
  } else {
    return false;
  }
  return true;
}

uint32_t StackHeadroomWarnBytes() {
  static const uint32_t value = [] {
    uint32_t v = kDefaultStackHeadroomWarnBytes;
    if (const char* env = std::getenv("NEUROC_SRAM_HEADROOM");
        env != nullptr && *env != '\0') {
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(env, &end, 10);
      if (end != nullptr && *end == '\0' && parsed <= 0xFFFFFFFFul) {
        v = static_cast<uint32_t>(parsed);
      } else {
        NEUROC_LOG_WARN("ignoring malformed NEUROC_SRAM_HEADROOM=\"%s\"", env);
      }
    }
    MetricsRegistry::Global().GetGauge("profile.sram_headroom_warn_bytes").Set(v);
    return v;
  }();
  return value;
}

ExecutionProfile ProfileInference(DeployedModel& model, ProfileMode mode) {
  const PcProfile attribution = RunAttributedInference(model, mode);
  return SummarizeAttribution(attribution, model.machine().memory().stats());
}

InferenceProfile ProfileInferenceDetailed(DeployedModel& model,
                                          uint32_t heatmap_bucket_bytes,
                                          ProfileMode mode) {
  Machine& machine = model.machine();
  machine.memory().EnableHeatmap(heatmap_bucket_bytes);
  machine.memory().EnableStackWatch(model.activation_top_addr());

  InferenceProfile out;
  out.mode = mode;
  out.attribution = RunAttributedInference(model, mode);
  out.summary = SummarizeAttribution(out.attribution, machine.memory().stats());
  out.hotspots =
      BuildHotspotReport(out.attribution, SymbolTable(model.kernel_program().symbols));
  out.layer_cycles = model.report().layer_cycles;
  out.heatmap = machine.memory().heatmap();
  out.energy_model = EnergyModel::CortexM0Proxy();
  out.energy = EstimateEnergy(out.energy_model, CyclesByEnergyClass(out.summary),
                              out.summary.flash_reads, out.summary.sram_reads,
                              out.summary.sram_writes);

  const uint32_t ram_top =
      machine.config().ram_base + machine.config().ram_size;
  const uint32_t low_water = machine.memory().stack_low_water();
  if (low_water != 0xFFFFFFFFu) {
    out.stack_bytes_used = ram_top - low_water;
    out.stack_headroom_bytes = low_water - model.activation_top_addr();
    MetricsRegistry::Global()
        .GetGauge("profile.stack_headroom_bytes")
        .Set(out.stack_headroom_bytes);
    if (out.stack_headroom_bytes < StackHeadroomWarnBytes()) {
      NEUROC_LOG_WARN(
          "simulated stack high-water mark within %u B of the activation buffers "
          "(stack uses %u B, headroom %u B of %u B SRAM)",
          StackHeadroomWarnBytes(), out.stack_bytes_used, out.stack_headroom_bytes,
          machine.config().ram_size);
    }
  }
  machine.memory().DisableHeatmap();
  machine.memory().DisableStackWatch();
  return out;
}

std::string FormatProfile(const ExecutionProfile& p) {
  char buf[960];
  const auto pct_of = [](uint64_t part, uint64_t whole) {
    return whole == 0 ? 0.0
                      : 100.0 * static_cast<double>(part) / static_cast<double>(whole);
  };
  std::snprintf(
      buf, sizeof(buf),
      "instructions: %llu  cycles: %llu  CPI: %.2f\n"
      "  loads: %llu (%.1f%%)  stores: %llu (%.1f%%)  alu: %llu (%.1f%%)\n"
      "  multiplies: %llu (%.1f%%)  branches: %llu (%.1f%%)  stack: %llu (%.1f%%)\n"
      "cycle attribution — loads: %.1f%%  stores: %.1f%%  alu: %.1f%%  multiplies: %.1f%%"
      "  branches: %.1f%%  stack: %.1f%%\n"
      "memory accesses — flash reads: %llu  sram reads: %llu  sram writes: %llu\n",
      static_cast<unsigned long long>(p.instructions),
      static_cast<unsigned long long>(p.cycles), p.CyclesPerInstruction(),
      static_cast<unsigned long long>(p.loads), pct_of(p.loads, p.instructions),
      static_cast<unsigned long long>(p.stores), pct_of(p.stores, p.instructions),
      static_cast<unsigned long long>(p.alu), pct_of(p.alu, p.instructions),
      static_cast<unsigned long long>(p.multiplies), pct_of(p.multiplies, p.instructions),
      static_cast<unsigned long long>(p.branches), pct_of(p.branches, p.instructions),
      static_cast<unsigned long long>(p.stack_ops), pct_of(p.stack_ops, p.instructions),
      pct_of(p.load_cycles, p.cycles), pct_of(p.store_cycles, p.cycles),
      pct_of(p.alu_cycles, p.cycles), pct_of(p.multiply_cycles, p.cycles),
      pct_of(p.branch_cycles, p.cycles), pct_of(p.stack_cycles, p.cycles),
      static_cast<unsigned long long>(p.flash_reads),
      static_cast<unsigned long long>(p.sram_reads),
      static_cast<unsigned long long>(p.sram_writes));
  return buf;
}

std::string FormatInferenceProfile(const InferenceProfile& profile,
                                   const DeployedModel& model,
                                   bool annotated_disassembly) {
  std::string out = FormatProfile(profile.summary);
  char buf[192];
  std::snprintf(buf, sizeof(buf), "decode mode: %s  attribution: %s\n",
                ProfileModeName(profile.mode), profile.attribution.source.c_str());
  out += buf;
  const double clock_hz = model.machine().config().clock_hz;
  std::snprintf(buf, sizeof(buf),
                "energy proxy: %.3f µJ/inference (core %.3f µJ, flash %.3f µJ, sram "
                "%.3f µJ; avg %.2f mW at %.0f MHz)\n",
                profile.energy.total_uj(), profile.energy.core_total_pj * 1e-6,
                profile.energy.flash_pj * 1e-6, profile.energy.sram_pj * 1e-6,
                profile.energy.AvgPowerMw(profile.summary.cycles, clock_hz),
                clock_hz / 1e6);
  out += buf;
  out += "\nper-layer cycles:\n";
  for (size_t k = 0; k < profile.layer_cycles.size(); ++k) {
    std::snprintf(buf, sizeof(buf), "  layer %zu: %llu (%.1f%%)\n", k,
                  static_cast<unsigned long long>(profile.layer_cycles[k]),
                  profile.summary.cycles == 0
                      ? 0.0
                      : 100.0 * static_cast<double>(profile.layer_cycles[k]) /
                            static_cast<double>(profile.summary.cycles));
    out += buf;
  }
  out += "\nhotspots (per assembler symbol):\n";
  out += FormatHotspotTable(profile.hotspots);
  std::snprintf(buf, sizeof(buf), "\nstack high water: %u B used, %u B headroom above "
                                  "activation buffers\n",
                profile.stack_bytes_used, profile.stack_headroom_bytes);
  out += buf;
  out += FormatSramHeatmap(profile.heatmap, model.machine().config().ram_base);
  if (annotated_disassembly) {
    out += "\nannotated disassembly (executed instructions only):\n";
    out += FormatAnnotatedDisassembly(profile.attribution,
                                      SymbolTable(model.kernel_program().symbols),
                                      model.kernel_program());
  }
  return out;
}

void WriteInferenceProfileJson(JsonWriter& w, const InferenceProfile& profile,
                               const DeployedModel& model) {
  const ExecutionProfile& p = profile.summary;
  w.BeginObject();
  w.Key("schema").Value("neuroc.profile.v2");
  // Provenance: which decode/execution path ran and which backend attributed it.
  w.Key("mode").Value(ProfileModeName(profile.mode));
  w.Key("profiler").Value(profile.attribution.source);
  w.Key("summary").BeginObject();
  w.Key("instructions").Value(p.instructions);
  w.Key("cycles").Value(p.cycles);
  w.Key("cpi").Value(p.CyclesPerInstruction());
  w.Key("counts").BeginObject();
  w.Key("loads").Value(p.loads);
  w.Key("stores").Value(p.stores);
  w.Key("alu").Value(p.alu);
  w.Key("multiplies").Value(p.multiplies);
  w.Key("branches").Value(p.branches);
  w.Key("stack_ops").Value(p.stack_ops);
  w.EndObject();
  w.Key("cycles_by_category").BeginObject();
  w.Key("loads").Value(p.load_cycles);
  w.Key("stores").Value(p.store_cycles);
  w.Key("alu").Value(p.alu_cycles);
  w.Key("multiplies").Value(p.multiply_cycles);
  w.Key("branches").Value(p.branch_cycles);
  w.Key("stack_ops").Value(p.stack_cycles);
  w.EndObject();
  w.Key("memory").BeginObject();
  w.Key("flash_reads").Value(p.flash_reads);
  w.Key("sram_reads").Value(p.sram_reads);
  w.Key("sram_writes").Value(p.sram_writes);
  w.EndObject();
  w.EndObject();

  w.Key("energy");
  WriteEnergyJson(w, profile.energy_model, profile.energy);

  w.Key("layer_cycles").BeginArray();
  for (const uint64_t c : profile.layer_cycles) {
    w.Value(c);
  }
  w.EndArray();

  w.Key("hotspots");
  WriteHotspotJson(w, profile.hotspots);

  w.Key("pc_stats");
  WritePcStatsJson(w, profile.attribution);

  w.Key("stack").BeginObject();
  w.Key("bytes_used").Value(static_cast<uint64_t>(profile.stack_bytes_used));
  w.Key("headroom_bytes").Value(static_cast<uint64_t>(profile.stack_headroom_bytes));
  w.Key("headroom_warn_bytes").Value(static_cast<uint64_t>(StackHeadroomWarnBytes()));
  w.EndObject();

  w.Key("heatmap");
  WriteHeatmapJson(w, profile.heatmap, model.machine().config().flash_base,
                   model.machine().config().ram_base);
  w.EndObject();
}

}  // namespace neuroc
