#include "src/runtime/profile.h"

#include <cstdio>

namespace neuroc {

namespace {

enum class OpCategory { kLoad, kStore, kAlu, kMul, kBranch, kStack };

OpCategory Categorize(Op op) {
  switch (op) {
    case Op::kLdrLit:
    case Op::kLdrReg:
    case Op::kLdrhReg:
    case Op::kLdrbReg:
    case Op::kLdrsbReg:
    case Op::kLdrshReg:
    case Op::kLdrImm:
    case Op::kLdrbImm:
    case Op::kLdrhImm:
    case Op::kLdrSp:
      return OpCategory::kLoad;
    case Op::kStrReg:
    case Op::kStrhReg:
    case Op::kStrbReg:
    case Op::kStrImm:
    case Op::kStrbImm:
    case Op::kStrhImm:
    case Op::kStrSp:
      return OpCategory::kStore;
    case Op::kMul:
      return OpCategory::kMul;
    case Op::kB:
    case Op::kBcond:
    case Op::kBl:
    case Op::kBx:
    case Op::kBlx:
      return OpCategory::kBranch;
    case Op::kPush:
    case Op::kPop:
      return OpCategory::kStack;
    default:
      return OpCategory::kAlu;
  }
}

}  // namespace

ExecutionProfile ProfileInference(DeployedModel& model) {
  Machine& machine = model.machine();
  machine.cpu().ResetCounters();
  std::vector<int8_t> zeros(model.input_dim(), 0);
  model.Predict(zeros);
  ExecutionProfile p;
  p.instructions = machine.cpu().instructions();
  p.cycles = machine.cpu().cycles();
  const auto& hist = machine.cpu().op_histogram();
  for (size_t i = 0; i < hist.size(); ++i) {
    if (hist[i] == 0) {
      continue;
    }
    switch (Categorize(static_cast<Op>(i))) {
      case OpCategory::kLoad:
        p.loads += hist[i];
        break;
      case OpCategory::kStore:
        p.stores += hist[i];
        break;
      case OpCategory::kMul:
        p.multiplies += hist[i];
        break;
      case OpCategory::kBranch:
        p.branches += hist[i];
        break;
      case OpCategory::kStack:
        p.stack_ops += hist[i];
        break;
      case OpCategory::kAlu:
        p.alu += hist[i];
        break;
    }
  }
  const MemAccessStats& mem = machine.memory().stats();
  p.flash_reads = mem.flash_reads;
  p.sram_reads = mem.sram_reads;
  p.sram_writes = mem.sram_writes;
  return p;
}

std::string FormatProfile(const ExecutionProfile& p) {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "instructions: %llu  cycles: %llu  CPI: %.2f\n"
      "  loads: %llu (%.1f%%)  stores: %llu (%.1f%%)  alu: %llu (%.1f%%)\n"
      "  multiplies: %llu (%.1f%%)  branches: %llu (%.1f%%)  stack: %llu (%.1f%%)\n"
      "memory accesses — flash reads: %llu  sram reads: %llu  sram writes: %llu\n",
      static_cast<unsigned long long>(p.instructions),
      static_cast<unsigned long long>(p.cycles), p.CyclesPerInstruction(),
      static_cast<unsigned long long>(p.loads),
      100.0 * static_cast<double>(p.loads) / static_cast<double>(p.instructions),
      static_cast<unsigned long long>(p.stores),
      100.0 * static_cast<double>(p.stores) / static_cast<double>(p.instructions),
      static_cast<unsigned long long>(p.alu),
      100.0 * static_cast<double>(p.alu) / static_cast<double>(p.instructions),
      static_cast<unsigned long long>(p.multiplies),
      100.0 * static_cast<double>(p.multiplies) / static_cast<double>(p.instructions),
      static_cast<unsigned long long>(p.branches),
      100.0 * static_cast<double>(p.branches) / static_cast<double>(p.instructions),
      static_cast<unsigned long long>(p.stack_ops),
      100.0 * static_cast<double>(p.stack_ops) / static_cast<double>(p.instructions),
      static_cast<unsigned long long>(p.flash_reads),
      static_cast<unsigned long long>(p.sram_reads),
      static_cast<unsigned long long>(p.sram_writes));
  return buf;
}

}  // namespace neuroc
