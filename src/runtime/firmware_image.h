// Intel HEX firmware emission: packages the assembled kernels plus the model image into the
// .hex file format accepted by MCU flashing tools (ST-Link, OpenOCD, vendor bootloaders).
// A parser is provided for round-trip verification.

#ifndef NEUROC_SRC_RUNTIME_FIRMWARE_IMAGE_H_
#define NEUROC_SRC_RUNTIME_FIRMWARE_IMAGE_H_

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/core/mlp_model.h"
#include "src/core/neuroc_model.h"
#include "src/sim/machine.h"

namespace neuroc {

struct FirmwareChunk {
  uint32_t addr = 0;
  std::vector<uint8_t> bytes;
};

// Emits Intel HEX (16-byte data records, type-04 extended linear addresses, type-01 EOF).
std::string EmitIntelHex(std::span<const FirmwareChunk> chunks);

// Parses Intel HEX; returns nullopt on malformed records or checksum mismatch. Contiguous
// data is merged into maximal chunks sorted by address.
std::optional<std::vector<FirmwareChunk>> ParseIntelHex(const std::string& text);

// Convenience: the complete flash content (kernel code at the flash base, model image after
// the runtime-overhead gap) for a deployable model, ready to flash.
std::string FirmwareHexForModel(const NeuroCModel& model, const MachineConfig& config = {});
std::string FirmwareHexForModel(const MlpModel& model, const MachineConfig& config = {});

}  // namespace neuroc

#endif  // NEUROC_SRC_RUNTIME_FIRMWARE_IMAGE_H_
