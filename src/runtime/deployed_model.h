// Deployment of a quantized model onto the simulated MCU: code + constant data placement in
// flash, activation buffers in SRAM, and per-inference execution with cycle accounting.
//
// The reported program-memory figure mirrors the paper's metric (size of the statically
// linked sections holding weights and inference code): assembled kernel bytes + packed model
// image bytes + a fixed bare-metal runtime overhead.

#ifndef NEUROC_SRC_RUNTIME_DEPLOYED_MODEL_H_
#define NEUROC_SRC_RUNTIME_DEPLOYED_MODEL_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/mlp_model.h"
#include "src/core/model_image.h"
#include "src/core/neuroc_model.h"
#include "src/kernels/kernel_set.h"
#include "src/sim/machine.h"

namespace neuroc {

struct DeploymentReport {
  size_t code_bytes = 0;       // assembled kernels
  size_t image_bytes = 0;      // descriptors + weights/encodings
  size_t program_bytes = 0;    // code + image + kRuntimeOverheadBytes
  size_t ram_bytes = 0;        // activation buffers + scratch
  uint64_t cycles_per_inference = 0;  // from the most recent Predict/MeasureLatency
  double latency_ms = 0.0;
  std::vector<uint64_t> layer_cycles;  // per-layer split of the most recent inference
};

// Outcome of a PredictWithRecovery call: whether the inference faulted, which integrity
// sections the fault corrupted (attributed by CRC before scrubbing), and whether the
// scrub-and-retry pass produced a clean prediction.
struct RecoveryReport {
  bool faulted = false;
  bool recovered = false;  // retry after scrub succeeded (only meaningful when faulted)
  int prediction = -1;     // valid when !faulted or recovered
  FaultReport fault;       // first fault (only meaningful when faulted)
  std::vector<std::string> corrupted_sections;  // CRC-mismatching sections at fault time
};

// What the flash-budget guard did: whether the requested model overflowed flash, the
// structured overflow status naming the shortfall, and which encoding was deployed instead.
struct DeployFallbackReport {
  bool fell_back = false;
  EncodingKind requested = EncodingKind::kBlock;   // first layer's encoding as requested
  EncodingKind selected = EncodingKind::kBlock;    // encoding actually deployed
  size_t requested_bytes = 0;                      // estimate for the requested model
  size_t selected_bytes = 0;                       // estimate for the deployed model
  size_t flash_budget = 0;
  Status overflow = Status::Ok();  // kResourceExhausted naming the overflow when fell_back
};

class DeployedModel {
 public:
  // Computes the program-memory footprint without requiring the model to fit the device
  // (used to classify the paper's "non-deployable" configurations).
  static size_t EstimateProgramBytes(const NeuroCModel& model);
  static size_t EstimateProgramBytes(const MlpModel& model);

  // Places the model on a simulated machine. Returns kResourceExhausted when the model does
  // not fit flash/RAM instead of aborting, so callers (architecture search, campaigns) can
  // skip infeasible configurations.
  static StatusOr<DeployedModel> TryDeploy(const NeuroCModel& model,
                                           const MachineConfig& config = {});
  static StatusOr<DeployedModel> TryDeploy(const MlpModel& model,
                                           const MachineConfig& config = {});

  // Flash-budget guard: deploys `model` if it fits the platform flash; otherwise reports
  // the overflow as a structured kResourceExhausted Status (in `report->overflow`) and
  // falls back to the best fitting encoding — candidates tried in descending expected
  // speed order (delta, mixed, csc, block), first fit wins. Fails only when no encoding
  // fits. Primarily guards kUnrolled, whose flash cost grows with every nonzero compiled
  // into the kernel text.
  static StatusOr<DeployedModel> TryDeployWithFallback(const NeuroCModel& model,
                                                       const MachineConfig& config = {},
                                                       DeployFallbackReport* report =
                                                           nullptr);

  // Legacy abort-on-failure wrappers around TryDeploy; check EstimateProgramBytes against
  // the platform budget first.
  static DeployedModel Deploy(const NeuroCModel& model, const MachineConfig& config = {});
  static DeployedModel Deploy(const MlpModel& model, const MachineConfig& config = {});

  // Runs one inference on the simulator and returns the arg-max class, or the FaultReport
  // Status when the guest faults mid-inference (corrupted kernel/descriptor/weights, budget
  // overrun). Updates the report's cycle/latency fields on success.
  StatusOr<int> TryPredict(std::span<const int8_t> input);

  // Legacy abort-on-fault wrapper: prints the FaultReport diagnostic and aborts if the
  // inference faults.
  int Predict(std::span<const int8_t> input);

  // Fault-tolerant inference: on a detected guest fault, attributes flash corruption via
  // the per-section CRCs, scrubs (re-deploys the pristine code + image, zeroes SRAM) and
  // retries exactly once. Never aborts on guest faults.
  RecoveryReport PredictWithRecovery(std::span<const int8_t> input);

  // Re-verifies every integrity section (kernel code + packed image) against the CRC-32
  // digests captured at pack/deploy time. Returns kIntegrityFailure naming the mismatching
  // sections, or OK.
  Status VerifyIntegrity() const;
  // Names of the sections whose device bytes no longer match their pack-time digest.
  std::vector<std::string> CorruptedSections() const;

  // Restores pristine state from the deploy-time machine snapshot: flash (kernel code +
  // packed image), all of SRAM, CPU registers/flags and counters. The machine afterwards
  // is byte-identical to a fresh deployment — registers and counters included, which the
  // old rewrite-the-sections scrub never guaranteed.
  void Scrub();

  // Deploy-time machine snapshot (taken before any guest instruction ran). Exposed so
  // recovery ladders and search-trial forking can restore or clone pristine state
  // directly; RestoreScope::kRamAndRegisters restores from it without the flash rewrite.
  const MachineSnapshot& pristine_snapshot() const { return pristine_; }

  // Watchdog supervision. ArmWatchdog calibrates a per-inference cycle budget from one
  // golden (zero-input, fault-free by assumption) inference: budget = golden cycles ×
  // `headroom`. Subsequent TryPredict calls are supervised — an inference that exceeds
  // the budget stops with a structured kDeadlineExceeded FaultReport carrying the PC it
  // was stopped at, distinguishable from genuine guest faults. The golden run's side
  // effects are undone by a scrub, so arming leaves the machine pristine. Returns the
  // fault status if the calibration run itself faults. headroom must be >= 1.
  Status ArmWatchdog(double headroom = 8.0);
  void DisarmWatchdog() { watchdog_budget_ = 0; }
  // Cycle budget enforced per inference; 0 when disarmed.
  uint64_t watchdog_budget() const { return watchdog_budget_; }

  // Final-layer activations after the last Predict.
  std::vector<int8_t> LastOutput();

  // Runs one inference on a zero input just to measure latency (execution time is
  // input-independent by construction — validated in tests).
  double MeasureLatencyMs();
  // Fault-aware variant for search trials over possibly-degenerate configurations.
  StatusOr<double> TryMeasureLatencyMs();

  const DeploymentReport& report() const { return report_; }
  Machine& machine() { return *machine_; }
  const Machine& machine() const { return *machine_; }
  // Pristine packed image (host copy) — sections carry the pack-time CRC-32 digests.
  const DeviceModelImage& image() const { return image_; }
  // Device address the packed image is loaded at.
  uint32_t image_base() const { return image_base_; }
  size_t input_dim() const { return image_.input_dim; }
  size_t output_dim() const { return image_.output_dim; }
  size_t num_layers() const { return image_.num_layers(); }

  // Assembled kernel section, including its symbol table (kernel entry points and inner
  // loop labels) — the resolution substrate for the cycle profiler (src/obs/).
  const AssembledProgram& kernel_program() const { return kernels_.program(); }

  // First SRAM address above the planned activation buffers/scratch — everything at or
  // above this is stack territory for the simulated kernels.
  uint32_t activation_top_addr() const;

 private:
  DeployedModel() = default;
  static StatusOr<DeployedModel> DeployImage(DeviceModelImage image, KernelSet kernels,
                                             const MachineConfig& config,
                                             uint32_t image_base);

  std::unique_ptr<Machine> machine_;  // stable address; KernelSet/image refer to it
  DeviceModelImage image_;
  KernelSet kernels_;
  std::vector<uint32_t> layer_entries_;
  DeploymentReport report_;
  uint32_t image_base_ = 0;
  uint32_t kernel_crc_ = 0;  // digest of the assembled kernel section, taken at deploy
  MachineSnapshot pristine_;  // machine state right after load, before any execution
  uint64_t watchdog_budget_ = 0;  // per-inference cycle budget; 0 = unsupervised
};

}  // namespace neuroc

#endif  // NEUROC_SRC_RUNTIME_DEPLOYED_MODEL_H_
