// Deployment of a quantized model onto the simulated MCU: code + constant data placement in
// flash, activation buffers in SRAM, and per-inference execution with cycle accounting.
//
// The reported program-memory figure mirrors the paper's metric (size of the statically
// linked sections holding weights and inference code): assembled kernel bytes + packed model
// image bytes + a fixed bare-metal runtime overhead.

#ifndef NEUROC_SRC_RUNTIME_DEPLOYED_MODEL_H_
#define NEUROC_SRC_RUNTIME_DEPLOYED_MODEL_H_

#include <memory>
#include <span>
#include <vector>

#include "src/core/mlp_model.h"
#include "src/core/model_image.h"
#include "src/core/neuroc_model.h"
#include "src/kernels/kernel_set.h"
#include "src/sim/machine.h"

namespace neuroc {

struct DeploymentReport {
  size_t code_bytes = 0;       // assembled kernels
  size_t image_bytes = 0;      // descriptors + weights/encodings
  size_t program_bytes = 0;    // code + image + kRuntimeOverheadBytes
  size_t ram_bytes = 0;        // activation buffers + scratch
  uint64_t cycles_per_inference = 0;  // from the most recent Predict/MeasureLatency
  double latency_ms = 0.0;
  std::vector<uint64_t> layer_cycles;  // per-layer split of the most recent inference
};

class DeployedModel {
 public:
  // Computes the program-memory footprint without requiring the model to fit the device
  // (used to classify the paper's "non-deployable" configurations).
  static size_t EstimateProgramBytes(const NeuroCModel& model);
  static size_t EstimateProgramBytes(const MlpModel& model);

  // Places the model on a simulated machine. Aborts if it does not fit flash/RAM; check
  // EstimateProgramBytes against the platform budget first.
  static DeployedModel Deploy(const NeuroCModel& model, const MachineConfig& config = {});
  static DeployedModel Deploy(const MlpModel& model, const MachineConfig& config = {});

  // Runs one inference on the simulator and returns the arg-max class. Updates the report's
  // cycle/latency fields.
  int Predict(std::span<const int8_t> input);

  // Final-layer activations after the last Predict.
  std::vector<int8_t> LastOutput();

  // Runs one inference on a zero input just to measure latency (execution time is
  // input-independent by construction — validated in tests).
  double MeasureLatencyMs();

  const DeploymentReport& report() const { return report_; }
  Machine& machine() { return *machine_; }
  const Machine& machine() const { return *machine_; }
  size_t input_dim() const { return image_.input_dim; }
  size_t output_dim() const { return image_.output_dim; }
  size_t num_layers() const { return image_.num_layers(); }

  // Assembled kernel section, including its symbol table (kernel entry points and inner
  // loop labels) — the resolution substrate for the cycle profiler (src/obs/).
  const AssembledProgram& kernel_program() const { return kernels_.program(); }

  // First SRAM address above the planned activation buffers/scratch — everything at or
  // above this is stack territory for the simulated kernels.
  uint32_t activation_top_addr() const;

 private:
  DeployedModel() = default;
  static DeployedModel DeployImage(DeviceModelImage image, KernelSet kernels,
                                   const MachineConfig& config, uint32_t image_base);

  std::unique_ptr<Machine> machine_;  // stable address; KernelSet/image refer to it
  DeviceModelImage image_;
  KernelSet kernels_;
  std::vector<uint32_t> layer_entries_;
  DeploymentReport report_;
};

}  // namespace neuroc

#endif  // NEUROC_SRC_RUNTIME_DEPLOYED_MODEL_H_
