// Deterministic memory-fault injection campaigns over guarded Neuro-C deployments.
//
// A campaign builds one synthetic model per weight encoding (same seeded adjacency for
// every encoding, so rates are comparable across all five encodings — CSC, delta, mixed,
// block, and unrolled per-model kernels), deploys it on the simulated MCU behind a
// GuardedModel, and runs seeded fault-injection trials. Each trial scrubs the device back
// to pristine state, injects one fault (bit flip or stuck-at, into kernel code, layer
// descriptors, the packed weight payload, or activation SRAM; before or mid-inference),
// runs one guarded inference and classifies the outcome:
//
//   correct            prediction matches the fault-free golden run (fault masked/benign)
//   sdc                silent data corruption — wrong prediction, nothing detected
//   detected           the guest faulted (undefined instruction, unmapped access, ...)
//   budget_exceeded    runaway execution caught by the per-trial instruction budget
//   deadline_exceeded  runaway execution caught first by the watchdog cycle budget
//   dual_run_caught    redundant execution detected an output mismatch (former SDC)
//
// Detected faults walk the configured recovery ladder (snapshot retry → scrub retry →
// redeploy; see src/runtime/recovery.h) and are counted per resolving rung, plus
// recovered/unrecovered/permanent_failure totals and injection→detection latency. Every
// trial derives its RNG stream from (seed, trial index) with a SplitMix64 finalizer and
// owns a pre-sized result slot, so campaign output — including the JSON report — is
// byte-identical for any NEUROC_NUM_THREADS.

#ifndef NEUROC_SRC_RUNTIME_FAULT_CAMPAIGN_H_
#define NEUROC_SRC_RUNTIME_FAULT_CAMPAIGN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/encoding.h"
#include "src/runtime/recovery.h"
#include "src/sim/fault_injector.h"

namespace neuroc {

enum class FaultTrigger : uint8_t {
  kPreInference = 0,  // corrupt the image/SRAM between inferences, then run
  kMidInference = 1,  // corrupt after a seeded number of retired instructions
};
const char* FaultTriggerName(FaultTrigger trigger);
bool ParseFaultTrigger(std::string_view text, FaultTrigger* out);

// Where a trial's fault lands.
enum class CampaignRegion : uint8_t {
  kKernelCode = 0,   // assembled Thumb kernels
  kDescriptors = 1,  // 80-byte per-layer descriptors
  kPayload = 2,      // packed encodings / scales / biases (the weight image)
  kSram = 3,         // activation buffers + scratch
};
inline constexpr CampaignRegion kAllCampaignRegions[] = {
    CampaignRegion::kKernelCode, CampaignRegion::kDescriptors, CampaignRegion::kPayload,
    CampaignRegion::kSram};
const char* CampaignRegionName(CampaignRegion region);
bool ParseCampaignRegion(std::string_view text, CampaignRegion* out);

struct FaultCampaignConfig {
  int trials_per_encoding = 256;
  uint64_t seed = 1;
  FaultModel fault_model = FaultModel::kSingleBitFlip;
  int bits = 2;  // kMultiBitFlip only
  FaultTrigger trigger = FaultTrigger::kPreInference;
  std::vector<CampaignRegion> regions{kAllCampaignRegions,
                                      kAllCampaignRegions + 4};
  std::vector<EncodingKind> encodings{std::begin(kAllEncodingKinds),
                                      std::end(kAllEncodingKinds)};
  // Recovery ladder + watchdog + dual-run configuration for every trial's GuardedModel.
  // Disabling every rung reproduces the raw (unrecovered) outcome distribution.
  RecoveryPolicy policy;
  // Per-trial instruction budget = golden instructions × margin (runaway trials classify
  // as budget_exceeded instead of burning the 400M-instruction default guard). The
  // watchdog cycle budget (policy.watchdog_headroom) usually fires first.
  double budget_margin = 8.0;

  // Synthetic campaign model shape (in → hidden → out, ternary density `density`).
  size_t in_dim = 64;
  size_t hidden_dim = 32;
  size_t out_dim = 10;
  double density = 0.2;
};

// Aggregated outcome counters for one (encoding, region) cell.
struct RegionStats {
  uint64_t trials = 0;
  uint64_t correct = 0;
  uint64_t sdc = 0;
  uint64_t detected = 0;
  uint64_t budget_exceeded = 0;
  uint64_t deadline_exceeded = 0;  // watchdog cycle budget fired (kDeadlineExceeded)
  uint64_t dual_run_caught = 0;    // redundant execution flagged an output mismatch
  uint64_t masked = 0;       // injection left the byte unchanged (stuck-at at value)
  uint64_t recovered = 0;    // detected trials the ladder fixed (correct prediction)
  uint64_t unrecovered = 0;  // detected trials no enabled rung fixed
  uint64_t crc_flagged = 0;  // detected faults attributed to a section by CRC
  // Which ladder rung resolved each recovered trial.
  uint64_t recovered_snapshot = 0;
  uint64_t recovered_scrub = 0;
  uint64_t recovered_redeploy = 0;
  uint64_t permanent_failure = 0;  // ladder exhausted without a clean prediction
  // Injection→detection latency, summed over trials where both endpoints are known
  // (pre-inference: cycles from inference start; mid-inference: cycles from the strike).
  uint64_t detect_latency_cycles_sum = 0;
  uint64_t detect_count = 0;

  void Add(const RegionStats& o);
  double SdcRate() const {
    return trials == 0 ? 0.0 : static_cast<double>(sdc) / static_cast<double>(trials);
  }
  double MeanDetectLatencyCycles() const {
    return detect_count == 0 ? 0.0
                             : static_cast<double>(detect_latency_cycles_sum) /
                                   static_cast<double>(detect_count);
  }
};

struct EncodingCampaignResult {
  EncodingKind encoding = EncodingKind::kCsc;
  uint64_t golden_instructions = 0;  // fault-free instructions per inference
  uint64_t golden_cycles = 0;
  size_t program_bytes = 0;
  std::vector<RegionStats> regions;  // parallel to FaultCampaignConfig::regions
  RegionStats totals;
};

struct FaultCampaignResult {
  FaultCampaignConfig config;
  std::vector<EncodingCampaignResult> encodings;
  RegionStats totals;
};

// Runs the campaign. Deterministic: byte-identical results for a given (config) at any
// thread count. Never aborts on injected faults — every outcome is a classified value.
FaultCampaignResult RunFaultCampaign(const FaultCampaignConfig& config);

// Deterministic JSON report (per-encoding × per-region outcome counts and SDC rates).
std::string FaultCampaignJson(const FaultCampaignResult& result);

}  // namespace neuroc

#endif  // NEUROC_SRC_RUNTIME_FAULT_CAMPAIGN_H_
