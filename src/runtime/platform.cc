#include "src/runtime/platform.h"

#include <vector>

#include "src/common/check.h"

namespace neuroc {

MachineConfig PlatformSpec::ToMachineConfig() const {
  MachineConfig cfg;
  cfg.flash_size = flash_bytes;
  cfg.ram_size = ram_bytes;
  cfg.clock_hz = clock_hz;
  cfg.cycle_model.flash_wait_states = flash_wait_states;
  cfg.cycle_model.mul = mul_cycles;
  return cfg;
}

const char* McuClassName(McuClass c) {
  switch (c) {
    case McuClass::kLow:
      return "Low";
    case McuClass::kMedium:
      return "Medium";
    case McuClass::kAdvanced:
      return "Advanced";
  }
  return "?";
}

namespace {

std::vector<PlatformSpec> BuildRegistry() {
  std::vector<PlatformSpec> all;
  // Low class: 8/16/32-bit core, no FPU, no DSP/SIMD, <128 KB RAM, <512 KB flash.
  all.push_back({"STM32F072RB", "Cortex-M0", McuClass::kLow, 16 * 1024, 128 * 1024, 8e6,
                 false, false, false, 0, 1});
  all.push_back({"STM32C011", "Cortex-M0+", McuClass::kLow, 6 * 1024, 32 * 1024, 48e6,
                 false, false, false, 1, 1});
  all.push_back({"STM32L053", "Cortex-M0+", McuClass::kLow, 8 * 1024, 64 * 1024, 32e6,
                 false, false, false, 1, 1});
  // Medium class: 32-bit core, single-precision FPU, basic SIMD, 128–512 KB RAM.
  all.push_back({"NXP-K64F", "Cortex-M4", McuClass::kMedium, 256 * 1024, 1024 * 1024, 120e6,
                 true, true, true, 4, 1});
  // Advanced class: double-precision FPU, vector SIMD, optional cache.
  all.push_back({"Renesas-RA8D1", "Cortex-M85", McuClass::kAdvanced, 1024 * 1024,
                 2 * 1024 * 1024, 480e6, true, true, true, 0, 1});
  return all;
}

const std::vector<PlatformSpec>& Registry() {
  static const std::vector<PlatformSpec> kRegistry = BuildRegistry();
  return kRegistry;
}

}  // namespace

std::span<const PlatformSpec> AllPlatforms() { return Registry(); }

const PlatformSpec& Stm32f072rb() { return Registry()[0]; }

const PlatformSpec& PlatformByName(const std::string& name) {
  for (const PlatformSpec& p : Registry()) {
    if (p.name == name) {
      return p;
    }
  }
  NEUROC_CHECK_MSG(false, name.c_str());
  return Registry()[0];
}

}  // namespace neuroc
