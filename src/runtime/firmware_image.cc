#include "src/runtime/firmware_image.h"

#include <algorithm>
#include <cstdio>

#include "src/common/check.h"
#include "src/kernels/kernel_set.h"
#include "src/kernels/kernel_sources.h"

namespace neuroc {

namespace {

void AppendRecord(std::string& out, uint8_t type, uint16_t addr16,
                  std::span<const uint8_t> data) {
  NEUROC_CHECK(data.size() <= 255);
  char buf[16];
  std::snprintf(buf, sizeof(buf), ":%02X%04X%02X", static_cast<unsigned>(data.size()),
                addr16, type);
  out += buf;
  uint32_t sum = static_cast<uint32_t>(data.size()) + (addr16 >> 8) + (addr16 & 0xFF) + type;
  for (uint8_t b : data) {
    std::snprintf(buf, sizeof(buf), "%02X", b);
    out += buf;
    sum += b;
  }
  std::snprintf(buf, sizeof(buf), "%02X", static_cast<unsigned>((~sum + 1) & 0xFF));
  out += buf;
  out += "\n";
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  return -1;
}

// Builds the complete firmware hex from a packed image + kernels.
std::string HexFromParts(const KernelSet& kernels, const DeviceModelImage& image) {
  std::vector<FirmwareChunk> chunks;
  chunks.push_back({kernels.program().base_addr, kernels.program().bytes});
  chunks.push_back({image.flash_data_base, image.flash});
  return EmitIntelHex(chunks);
}

}  // namespace

std::string EmitIntelHex(std::span<const FirmwareChunk> chunks) {
  std::string out;
  uint32_t current_upper = 0xFFFFFFFF;
  for (const FirmwareChunk& chunk : chunks) {
    uint32_t addr = chunk.addr;
    size_t offset = 0;
    while (offset < chunk.bytes.size()) {
      const uint32_t upper = addr >> 16;
      if (upper != current_upper) {
        const uint8_t ela[2] = {static_cast<uint8_t>(upper >> 8),
                                static_cast<uint8_t>(upper & 0xFF)};
        AppendRecord(out, 0x04, 0x0000, ela);
        current_upper = upper;
      }
      // Records must not cross a 64 KiB boundary.
      const size_t until_boundary = 0x10000 - (addr & 0xFFFF);
      const size_t n = std::min({size_t{16}, chunk.bytes.size() - offset, until_boundary});
      AppendRecord(out, 0x00, static_cast<uint16_t>(addr & 0xFFFF),
                   std::span<const uint8_t>(chunk.bytes.data() + offset, n));
      addr += static_cast<uint32_t>(n);
      offset += n;
    }
  }
  AppendRecord(out, 0x01, 0x0000, {});
  return out;
}

std::optional<std::vector<FirmwareChunk>> ParseIntelHex(const std::string& text) {
  std::vector<FirmwareChunk> chunks;
  uint32_t upper = 0;
  bool saw_eof = false;
  size_t pos = 0;
  while (pos < text.size()) {
    // Skip whitespace between records.
    while (pos < text.size() &&
           (text[pos] == '\n' || text[pos] == '\r' || text[pos] == ' ')) {
      ++pos;
    }
    if (pos >= text.size()) {
      break;
    }
    if (saw_eof || text[pos] != ':') {
      return std::nullopt;
    }
    ++pos;
    auto byte_at = [&](size_t i) -> int {
      if (pos + 2 * i + 1 >= text.size()) {
        return -1;
      }
      const int hi = HexDigit(text[pos + 2 * i]);
      const int lo = HexDigit(text[pos + 2 * i + 1]);
      if (hi < 0 || lo < 0) {
        return -1;
      }
      return (hi << 4) | lo;
    };
    const int len = byte_at(0);
    const int a_hi = byte_at(1);
    const int a_lo = byte_at(2);
    const int type = byte_at(3);
    if (len < 0 || a_hi < 0 || a_lo < 0 || type < 0) {
      return std::nullopt;
    }
    std::vector<uint8_t> data(static_cast<size_t>(len));
    uint32_t sum = static_cast<uint32_t>(len) + static_cast<uint32_t>(a_hi) +
                   static_cast<uint32_t>(a_lo) + static_cast<uint32_t>(type);
    for (int i = 0; i < len; ++i) {
      const int b = byte_at(4 + static_cast<size_t>(i));
      if (b < 0) {
        return std::nullopt;
      }
      data[static_cast<size_t>(i)] = static_cast<uint8_t>(b);
      sum += static_cast<uint32_t>(b);
    }
    const int checksum = byte_at(4 + static_cast<size_t>(len));
    if (checksum < 0 || ((sum + static_cast<uint32_t>(checksum)) & 0xFF) != 0) {
      return std::nullopt;
    }
    pos += 2 * (5 + static_cast<size_t>(len));
    const uint32_t addr16 = (static_cast<uint32_t>(a_hi) << 8) | static_cast<uint32_t>(a_lo);
    switch (type) {
      case 0x00: {
        const uint32_t addr = (upper << 16) | addr16;
        if (!chunks.empty() &&
            chunks.back().addr + chunks.back().bytes.size() == addr) {
          chunks.back().bytes.insert(chunks.back().bytes.end(), data.begin(), data.end());
        } else {
          chunks.push_back({addr, std::move(data)});
        }
        break;
      }
      case 0x01:
        saw_eof = true;
        break;
      case 0x04:
        if (data.size() != 2) {
          return std::nullopt;
        }
        upper = (static_cast<uint32_t>(data[0]) << 8) | data[1];
        break;
      default:
        return std::nullopt;  // unsupported record type
    }
  }
  if (!saw_eof) {
    return std::nullopt;
  }
  std::sort(chunks.begin(), chunks.end(),
            [](const FirmwareChunk& a, const FirmwareChunk& b) { return a.addr < b.addr; });
  return chunks;
}

std::string FirmwareHexForModel(const NeuroCModel& model, const MachineConfig& config) {
  DeviceModelImage probe = PackNeuroCModel(model, config.flash_base, config.ram_base);
  KernelSet kernels =
      KernelSet::Build(probe.variants, config.flash_base, /*include_conv=*/false, &model);
  const uint32_t image_base =
      (config.flash_base + static_cast<uint32_t>(kernels.code_bytes()) +
       static_cast<uint32_t>(kRuntimeOverheadBytes) + 3u) & ~3u;
  DeviceModelImage image = PackNeuroCModel(model, image_base, config.ram_base);
  return HexFromParts(kernels, image);
}

std::string FirmwareHexForModel(const MlpModel& model, const MachineConfig& config) {
  DeviceModelImage probe = PackMlpModel(model, config.flash_base, config.ram_base);
  KernelSet kernels = KernelSet::Build(probe.variants, config.flash_base);
  const uint32_t image_base =
      (config.flash_base + static_cast<uint32_t>(kernels.code_bytes()) +
       static_cast<uint32_t>(kRuntimeOverheadBytes) + 3u) & ~3u;
  DeviceModelImage image = PackMlpModel(model, image_base, config.ram_base);
  return HexFromParts(kernels, image);
}

}  // namespace neuroc
