#include "src/runtime/search.h"

#include <algorithm>
#include <set>
#include <vector>

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/common/thread_pool.h"
#include "src/obs/registry.h"
#include "src/runtime/deployed_model.h"

namespace neuroc {

namespace {

std::string Describe(const NeuroCSpec& spec) {
  std::string s = "h[";
  for (size_t i = 0; i < spec.hidden.size(); ++i) {
    if (i > 0) {
      s += ",";
    }
    s += std::to_string(spec.hidden[i]);
  }
  char buf[24];
  std::snprintf(buf, sizeof(buf), "] d=%.2f", spec.layer.ternary.target_density);
  return s + buf;
}

// SplitMix64 finalizer over (seed, trial): every trial gets its own statistically
// independent RNG stream derived from the one user-visible seed, with no dependence on
// which trials ran before it — the prerequisite for evaluating trials in parallel while
// returning results byte-identical to the sequential search.
uint64_t TrialSeed(uint64_t seed, uint64_t t) {
  uint64_t z = seed + (t + 1) * 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

SearchResult RandomSearch(const Dataset& train, const Dataset& validation,
                          const SearchSpace& space, const SearchConstraints& constraints,
                          int trials, const TrainConfig& train_cfg, uint64_t seed,
                          const PlatformSpec& platform) {
  NEUROC_CHECK(!space.width_choices.empty() && !space.density_choices.empty());
  NEUROC_CHECK(space.min_hidden_layers >= 1 &&
               space.min_hidden_layers <= space.max_hidden_layers);
  SearchResult result;
  const QuantizedDataset qval = QuantizeInputs(validation);

  // Phase 1 — sample every trial's configuration up front, sequentially. Sampling costs
  // microseconds per trial, so doing it serially keeps the dedup set trivially correct,
  // while the per-trial RNG streams make each draw independent of execution order.
  struct TrialPlan {
    NeuroCSpec spec;
    std::string key;
    uint64_t train_seed = 0;
  };
  std::vector<TrialPlan> plan(static_cast<size_t>(trials));
  std::set<std::string> seen;
  for (int t = 0; t < trials; ++t) {
    TrialPlan& p = plan[static_cast<size_t>(t)];
    Rng rng(TrialSeed(seed, static_cast<uint64_t>(t)));
    // Sample a distinct configuration (bounded retries to stay deterministic and finite).
    for (int attempt = 0; attempt < 50; ++attempt) {
      p.spec.hidden.clear();
      const int layers = static_cast<int>(
          rng.NextInt(space.min_hidden_layers, space.max_hidden_layers));
      for (int l = 0; l < layers; ++l) {
        p.spec.hidden.push_back(
            space.width_choices[rng.NextBounded(space.width_choices.size())]);
      }
      p.spec.layer.ternary.target_density =
          space.density_choices[rng.NextBounded(space.density_choices.size())];
      p.key = Describe(p.spec);
      if (seen.insert(p.key).second) {
        break;
      }
    }
    p.train_seed = rng.NextU64();
  }

  // Phase 2 — train and simulate the candidates on the shared pool. Every trial owns the
  // pre-sized slot candidates[t] and builds its own Network/Machine/DeployedModel; the
  // training kernels are bit-identical for any worker count (nested ParallelFor runs
  // in-line on a worker), so the result vector is byte-identical to a sequential search
  // at any NEUROC_NUM_THREADS. Grain 1: a trial is seconds of training, so each chunk
  // should hold exactly one.
  result.candidates.assign(static_cast<size_t>(trials), SearchCandidate{});
  ParallelFor(0, static_cast<size_t>(trials), 1, [&](size_t t0, size_t t1) {
    for (size_t t = t0; t < t1; ++t) {
      const TrialPlan& p = plan[t];
      SearchCandidate cand;
      cand.spec = p.spec;
      cand.description = p.key;
      Rng train_rng(p.train_seed);
      Network net = BuildNeuroC(train.input_dim(), static_cast<size_t>(train.num_classes),
                                p.spec, train_rng);
      Train(net, train, validation, train_cfg);
      NeuroCModel model = NeuroCModel::FromTrained(net, train);
      cand.accuracy = model.EvaluateAccuracy(qval);
      cand.program_bytes = DeployedModel::EstimateProgramBytes(model);
      if (cand.program_bytes <= constraints.max_program_bytes &&
          cand.program_bytes <= platform.flash_bytes) {
        // Fault-isolated: a degenerate candidate that fails to deploy or faults on the
        // simulator is recorded as infeasible with a reason instead of killing the search.
        StatusOr<DeployedModel> deployed =
            DeployedModel::TryDeploy(model, platform.ToMachineConfig());
        if (deployed.ok()) {
          StatusOr<double> latency = deployed->TryMeasureLatencyMs();
          if (latency.ok()) {
            cand.latency_ms = *latency;
            cand.feasible = cand.latency_ms <= constraints.max_latency_ms;
          } else {
            cand.fault = latency.status().ToString();
          }
        } else {
          cand.fault = deployed.status().ToString();
        }
      }
      NEUROC_LOG_DEBUG("search %zu/%d %s acc=%.4f bytes=%zu lat=%.2f feasible=%d", t + 1,
                       trials, cand.description.c_str(), cand.accuracy, cand.program_bytes,
                       cand.latency_ms, cand.feasible ? 1 : 0);
      result.candidates[t] = std::move(cand);
    }
  });

  // Pareto front over feasible candidates: ascending program bytes, strictly increasing
  // accuracy.
  std::vector<size_t> feasible;
  for (size_t i = 0; i < result.candidates.size(); ++i) {
    if (result.candidates[i].feasible) {
      feasible.push_back(i);
    }
  }
  std::sort(feasible.begin(), feasible.end(), [&](size_t a, size_t b) {
    const auto& ca = result.candidates[a];
    const auto& cb = result.candidates[b];
    if (ca.program_bytes != cb.program_bytes) {
      return ca.program_bytes < cb.program_bytes;
    }
    return ca.accuracy > cb.accuracy;
  });
  float best_acc = -1.0f;
  for (size_t i : feasible) {
    if (result.candidates[i].accuracy > best_acc) {
      best_acc = result.candidates[i].accuracy;
      result.pareto.push_back(i);
    }
  }
  for (size_t i : feasible) {
    if (result.best < 0 ||
        result.candidates[i].accuracy >
            result.candidates[static_cast<size_t>(result.best)].accuracy) {
      result.best = static_cast<int>(i);
    }
  }
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("search.trials").Add(result.candidates.size());
  reg.GetCounter("search.feasible").Add(feasible.size());
  if (result.best >= 0) {
    reg.GetGauge("search.best_accuracy")
        .Set(result.candidates[static_cast<size_t>(result.best)].accuracy);
  }
  return result;
}

}  // namespace neuroc
