#include "src/runtime/search.h"

#include <algorithm>
#include <set>

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/runtime/deployed_model.h"

namespace neuroc {

namespace {

std::string Describe(const NeuroCSpec& spec) {
  std::string s = "h[";
  for (size_t i = 0; i < spec.hidden.size(); ++i) {
    if (i > 0) {
      s += ",";
    }
    s += std::to_string(spec.hidden[i]);
  }
  char buf[24];
  std::snprintf(buf, sizeof(buf), "] d=%.2f", spec.layer.ternary.target_density);
  return s + buf;
}

}  // namespace

SearchResult RandomSearch(const Dataset& train, const Dataset& validation,
                          const SearchSpace& space, const SearchConstraints& constraints,
                          int trials, const TrainConfig& train_cfg, uint64_t seed,
                          const PlatformSpec& platform) {
  NEUROC_CHECK(!space.width_choices.empty() && !space.density_choices.empty());
  NEUROC_CHECK(space.min_hidden_layers >= 1 &&
               space.min_hidden_layers <= space.max_hidden_layers);
  Rng rng(seed);
  SearchResult result;
  std::set<std::string> seen;
  const QuantizedDataset qval = QuantizeInputs(validation);

  for (int t = 0; t < trials; ++t) {
    // Sample a distinct configuration (bounded retries to stay deterministic and finite).
    NeuroCSpec spec;
    std::string key;
    for (int attempt = 0; attempt < 50; ++attempt) {
      spec.hidden.clear();
      const int layers = static_cast<int>(
          rng.NextInt(space.min_hidden_layers, space.max_hidden_layers));
      for (int l = 0; l < layers; ++l) {
        spec.hidden.push_back(
            space.width_choices[rng.NextBounded(space.width_choices.size())]);
      }
      spec.layer.ternary.target_density =
          space.density_choices[rng.NextBounded(space.density_choices.size())];
      key = Describe(spec);
      if (seen.insert(key).second) {
        break;
      }
    }

    SearchCandidate cand;
    cand.spec = spec;
    cand.description = key;
    Rng train_rng(rng.NextU64());
    Network net = BuildNeuroC(train.input_dim(), static_cast<size_t>(train.num_classes),
                              spec, train_rng);
    Train(net, train, validation, train_cfg);
    NeuroCModel model = NeuroCModel::FromTrained(net, train);
    cand.accuracy = model.EvaluateAccuracy(qval);
    cand.program_bytes = DeployedModel::EstimateProgramBytes(model);
    if (cand.program_bytes <= constraints.max_program_bytes &&
        cand.program_bytes <= platform.flash_bytes) {
      DeployedModel deployed = DeployedModel::Deploy(model, platform.ToMachineConfig());
      cand.latency_ms = deployed.MeasureLatencyMs();
      cand.feasible = cand.latency_ms <= constraints.max_latency_ms;
    }
    NEUROC_LOG_DEBUG("search %d/%d %s acc=%.4f bytes=%zu lat=%.2f feasible=%d", t + 1,
                     trials, cand.description.c_str(), cand.accuracy, cand.program_bytes,
                     cand.latency_ms, cand.feasible ? 1 : 0);
    result.candidates.push_back(std::move(cand));
  }

  // Pareto front over feasible candidates: ascending program bytes, strictly increasing
  // accuracy.
  std::vector<size_t> feasible;
  for (size_t i = 0; i < result.candidates.size(); ++i) {
    if (result.candidates[i].feasible) {
      feasible.push_back(i);
    }
  }
  std::sort(feasible.begin(), feasible.end(), [&](size_t a, size_t b) {
    const auto& ca = result.candidates[a];
    const auto& cb = result.candidates[b];
    if (ca.program_bytes != cb.program_bytes) {
      return ca.program_bytes < cb.program_bytes;
    }
    return ca.accuracy > cb.accuracy;
  });
  float best_acc = -1.0f;
  for (size_t i : feasible) {
    if (result.candidates[i].accuracy > best_acc) {
      best_acc = result.candidates[i].accuracy;
      result.pareto.push_back(i);
    }
  }
  for (size_t i : feasible) {
    if (result.best < 0 ||
        result.candidates[i].accuracy >
            result.candidates[static_cast<size_t>(result.best)].accuracy) {
      result.best = static_cast<int>(i);
    }
  }
  return result;
}

}  // namespace neuroc
