#include "src/runtime/fault_campaign.h"

#include <algorithm>
#include <vector>

#include "src/common/check.h"
#include "src/common/thread_pool.h"
#include "src/core/model_image.h"
#include "src/core/synthetic.h"
#include "src/obs/json_writer.h"
#include "src/obs/registry.h"
#include "src/runtime/deployed_model.h"

namespace neuroc {

namespace {

// Same SplitMix64 finalizer as the architecture search: per-trial streams independent of
// execution order, the prerequisite for thread-count-invariant results.
uint64_t TrialSeed(uint64_t seed, uint64_t t) {
  uint64_t z = seed + (t + 1) * 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// Deterministic synthetic campaign model. The adjacency/scale/bias draws depend only on
// the shape and density — not the encoding — so every encoding packs the *same* ternary
// matrix and per-cell rates are directly comparable.
NeuroCModel BuildCampaignModel(const FaultCampaignConfig& cfg, EncodingKind kind) {
  std::vector<QuantNeuroCLayer> layers;
  Rng rng(TrialSeed(cfg.seed, 0x6D6F64656Cull));  // "model" stream, disjoint from trials
  SyntheticNeuroCLayerSpec l1;
  l1.in_dim = cfg.in_dim;
  l1.out_dim = cfg.hidden_dim;
  l1.density = cfg.density;
  l1.encoding = kind;
  l1.relu = true;
  layers.push_back(MakeSyntheticNeuroCLayer(l1, rng));
  SyntheticNeuroCLayerSpec l2 = l1;
  l2.in_dim = cfg.hidden_dim;
  l2.out_dim = cfg.out_dim;
  l2.relu = false;
  layers.push_back(MakeSyntheticNeuroCLayer(l2, rng));
  return NeuroCModel::FromLayers(std::move(layers));
}

enum class Outcome : uint8_t { kCorrect, kSdc, kDetected, kBudgetExceeded };

struct TrialRecord {
  uint8_t region_index = 0;  // into FaultCampaignConfig::regions
  Outcome outcome = Outcome::kCorrect;
  bool masked = false;
  bool crc_flagged = false;
  bool attempted_recovery = false;
  bool recovered = false;
};

struct RegionSpan {
  uint32_t base = 0;
  uint32_t size = 0;
};

RegionSpan ResolveRegion(const DeployedModel& dm, CampaignRegion region) {
  const uint32_t descriptors_bytes =
      static_cast<uint32_t>(dm.num_layers()) * kDescriptorBytes;
  switch (region) {
    case CampaignRegion::kKernelCode:
      return {dm.kernel_program().base_addr,
              static_cast<uint32_t>(dm.kernel_program().bytes.size())};
    case CampaignRegion::kDescriptors:
      return {dm.image_base(), descriptors_bytes};
    case CampaignRegion::kPayload:
      return {dm.image_base() + descriptors_bytes,
              static_cast<uint32_t>(dm.image().flash.size()) - descriptors_bytes};
    case CampaignRegion::kSram:
      return {dm.machine().config().ram_base, dm.image().ram_bytes_used};
  }
  NEUROC_CHECK_MSG(false, "unknown campaign region");
  return {};
}

// One fault-free inference on a fresh deployment: golden instruction/cycle counts (latency
// is input-independent by construction, so the zero input is representative).
struct Golden {
  uint64_t instructions = 0;
  uint64_t cycles = 0;
  size_t program_bytes = 0;
};

Golden MeasureGolden(const NeuroCModel& model) {
  DeployedModel dm = DeployedModel::Deploy(model);
  const uint64_t before = dm.machine().cpu().instructions();
  dm.MeasureLatencyMs();
  Golden g;
  g.instructions = dm.machine().cpu().instructions() - before;
  g.cycles = dm.report().cycles_per_inference;
  g.program_bytes = dm.report().program_bytes;
  return g;
}

TrialRecord RunTrial(DeployedModel& dm, const NeuroCModel& model,
                     const FaultCampaignConfig& cfg, const Golden& golden,
                     uint64_t trial_seed) {
  Rng rng(trial_seed);
  const std::vector<int8_t> input = MakeRandomInput(cfg.in_dim, rng);
  const int golden_pred = model.Predict(input);
  const size_t region_index = rng.NextBounded(cfg.regions.size());
  const CampaignRegion region = cfg.regions[region_index];

  TrialRecord rec;
  rec.region_index = static_cast<uint8_t>(region_index);
  dm.Scrub();
  const RegionSpan span = ResolveRegion(dm, region);

  StatusOr<int> pred = Status(ErrorCode::kInternal, "trial did not run");
  if (cfg.trigger == FaultTrigger::kPreInference) {
    const InjectedFault f =
        InjectFault(dm.machine().memory(), span.base, span.size, cfg.fault_model,
                    cfg.bits, rng);
    rec.masked = !f.changed();
    pred = dm.TryPredict(input);
  } else {
    const uint64_t trigger = 1 + rng.NextBounded(golden.instructions);
    TriggeredInjector injector(&dm.machine().memory(), trigger, span.base, span.size,
                               cfg.fault_model, cfg.bits, rng);
    dm.machine().cpu().set_probe(&injector);
    pred = dm.TryPredict(input);
    dm.machine().cpu().set_probe(nullptr);
    rec.masked = injector.fired() && !injector.fault().changed();
  }

  if (pred.ok()) {
    rec.outcome = (*pred == golden_pred) ? Outcome::kCorrect : Outcome::kSdc;
  } else if (pred.status().code() == ErrorCode::kInstructionBudgetExceeded) {
    rec.outcome = Outcome::kBudgetExceeded;
  } else {
    rec.outcome = Outcome::kDetected;
  }
  if (!pred.ok()) {
    rec.crc_flagged = !dm.CorruptedSections().empty();
    if (cfg.scrub_retry) {
      rec.attempted_recovery = true;
      dm.Scrub();
      StatusOr<int> retry = dm.TryPredict(input);
      rec.recovered = retry.ok() && *retry == golden_pred;
    }
  }
  return rec;
}

void Accumulate(RegionStats& stats, const TrialRecord& rec) {
  ++stats.trials;
  switch (rec.outcome) {
    case Outcome::kCorrect: ++stats.correct; break;
    case Outcome::kSdc: ++stats.sdc; break;
    case Outcome::kDetected: ++stats.detected; break;
    case Outcome::kBudgetExceeded: ++stats.budget_exceeded; break;
  }
  if (rec.masked) ++stats.masked;
  if (rec.crc_flagged) ++stats.crc_flagged;
  if (rec.attempted_recovery) {
    (rec.recovered ? stats.recovered : stats.unrecovered) += 1;
  }
}

}  // namespace

const char* FaultTriggerName(FaultTrigger trigger) {
  switch (trigger) {
    case FaultTrigger::kPreInference: return "pre";
    case FaultTrigger::kMidInference: return "mid";
  }
  return "unknown";
}

bool ParseFaultTrigger(std::string_view text, FaultTrigger* out) {
  if (text == "pre") {
    *out = FaultTrigger::kPreInference;
  } else if (text == "mid") {
    *out = FaultTrigger::kMidInference;
  } else {
    return false;
  }
  return true;
}

const char* CampaignRegionName(CampaignRegion region) {
  switch (region) {
    case CampaignRegion::kKernelCode: return "kernel_code";
    case CampaignRegion::kDescriptors: return "descriptors";
    case CampaignRegion::kPayload: return "payload";
    case CampaignRegion::kSram: return "sram";
  }
  return "unknown";
}

bool ParseCampaignRegion(std::string_view text, CampaignRegion* out) {
  for (CampaignRegion r : kAllCampaignRegions) {
    if (text == CampaignRegionName(r)) {
      *out = r;
      return true;
    }
  }
  return false;
}

void RegionStats::Add(const RegionStats& o) {
  trials += o.trials;
  correct += o.correct;
  sdc += o.sdc;
  detected += o.detected;
  budget_exceeded += o.budget_exceeded;
  masked += o.masked;
  recovered += o.recovered;
  unrecovered += o.unrecovered;
  crc_flagged += o.crc_flagged;
}

FaultCampaignResult RunFaultCampaign(const FaultCampaignConfig& config) {
  NEUROC_CHECK(config.trials_per_encoding >= 0);
  NEUROC_CHECK(!config.regions.empty());
  NEUROC_CHECK(!config.encodings.empty());
  NEUROC_CHECK(config.budget_margin >= 1.0);

  FaultCampaignResult result;
  result.config = config;

  // Golden pass, sequential: per-encoding fault-free counters sized to the shared model.
  std::vector<Golden> golden(config.encodings.size());
  for (size_t e = 0; e < config.encodings.size(); ++e) {
    golden[e] = MeasureGolden(BuildCampaignModel(config, config.encodings[e]));
  }

  const size_t per_enc = static_cast<size_t>(config.trials_per_encoding);
  const size_t total = per_enc * config.encodings.size();
  std::vector<TrialRecord> records(total);

  // Each chunk rebuilds the (deterministic) model + deployment it needs; every trial owns
  // the slot records[t] and scrubs the device first, so outcomes are independent of chunk
  // boundaries and thread count. Grain 32: a trial is one small inference (plus scrubs),
  // so chunks amortize the per-chunk deployment without starving the pool.
  ParallelFor(0, total, 32, [&](size_t t0, size_t t1) {
    size_t current_enc = static_cast<size_t>(-1);
    NeuroCModel model;
    std::unique_ptr<DeployedModel> dm;
    for (size_t t = t0; t < t1; ++t) {
      const size_t e = t / per_enc;
      if (e != current_enc) {
        current_enc = e;
        model = BuildCampaignModel(config, config.encodings[e]);
        MachineConfig mc;
        mc.max_instructions = std::max<uint64_t>(
            static_cast<uint64_t>(config.budget_margin *
                                  static_cast<double>(golden[e].instructions)),
            golden[e].instructions + 1024);
        dm = std::make_unique<DeployedModel>(DeployedModel::Deploy(model, mc));
      }
      records[t] = RunTrial(*dm, model, config, golden[e], TrialSeed(config.seed, t));
    }
  });

  // Sequential aggregation in trial order — deterministic bytes all the way down.
  for (size_t e = 0; e < config.encodings.size(); ++e) {
    EncodingCampaignResult enc;
    enc.encoding = config.encodings[e];
    enc.golden_instructions = golden[e].instructions;
    enc.golden_cycles = golden[e].cycles;
    enc.program_bytes = golden[e].program_bytes;
    enc.regions.assign(config.regions.size(), RegionStats{});
    for (size_t t = e * per_enc; t < (e + 1) * per_enc; ++t) {
      Accumulate(enc.regions[records[t].region_index], records[t]);
    }
    for (const RegionStats& r : enc.regions) {
      enc.totals.Add(r);
    }
    result.totals.Add(enc.totals);
    result.encodings.push_back(std::move(enc));
  }
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("faultcampaign.trials").Add(result.totals.trials);
  reg.GetCounter("faultcampaign.sdc").Add(result.totals.sdc);
  reg.GetCounter("faultcampaign.detected").Add(result.totals.detected);
  reg.GetCounter("faultcampaign.recovered").Add(result.totals.recovered);
  return result;
}

namespace {

void WriteStats(JsonWriter& w, const RegionStats& s) {
  w.BeginObject();
  w.Key("trials").Value(s.trials);
  w.Key("correct").Value(s.correct);
  w.Key("sdc").Value(s.sdc);
  w.Key("detected").Value(s.detected);
  w.Key("budget_exceeded").Value(s.budget_exceeded);
  w.Key("masked").Value(s.masked);
  w.Key("crc_flagged").Value(s.crc_flagged);
  w.Key("recovered").Value(s.recovered);
  w.Key("unrecovered").Value(s.unrecovered);
  w.Key("sdc_rate").Value(s.SdcRate());
  w.EndObject();
}

}  // namespace

std::string FaultCampaignJson(const FaultCampaignResult& result) {
  const FaultCampaignConfig& cfg = result.config;
  JsonWriter w;
  w.BeginObject();
  w.Key("campaign").BeginObject();
  w.Key("seed").Value(cfg.seed);
  w.Key("trials_per_encoding").Value(cfg.trials_per_encoding);
  w.Key("fault_model").Value(FaultModelName(cfg.fault_model));
  w.Key("bits").Value(cfg.bits);
  w.Key("trigger").Value(FaultTriggerName(cfg.trigger));
  w.Key("scrub_retry").Value(cfg.scrub_retry);
  w.Key("budget_margin").Value(cfg.budget_margin);
  w.Key("model").BeginObject();
  w.Key("in_dim").Value(static_cast<uint64_t>(cfg.in_dim));
  w.Key("hidden_dim").Value(static_cast<uint64_t>(cfg.hidden_dim));
  w.Key("out_dim").Value(static_cast<uint64_t>(cfg.out_dim));
  w.Key("density").Value(cfg.density);
  w.EndObject();
  w.EndObject();
  w.Key("encodings").BeginArray();
  for (const EncodingCampaignResult& enc : result.encodings) {
    w.BeginObject();
    w.Key("encoding").Value(EncodingKindName(enc.encoding));
    w.Key("golden_instructions").Value(enc.golden_instructions);
    w.Key("golden_cycles").Value(enc.golden_cycles);
    w.Key("program_bytes").Value(static_cast<uint64_t>(enc.program_bytes));
    w.Key("regions").BeginArray();
    for (size_t r = 0; r < enc.regions.size(); ++r) {
      w.BeginObject();
      w.Key("region").Value(CampaignRegionName(cfg.regions[r]));
      w.Key("stats");
      WriteStats(w, enc.regions[r]);
      w.EndObject();
    }
    w.EndArray();
    w.Key("totals");
    WriteStats(w, enc.totals);
    w.EndObject();
  }
  w.EndArray();
  w.Key("totals");
  WriteStats(w, result.totals);
  w.EndObject();
  return w.str();
}

}  // namespace neuroc
