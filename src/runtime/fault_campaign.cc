#include "src/runtime/fault_campaign.h"

#include <algorithm>
#include <vector>

#include "src/common/check.h"
#include "src/common/thread_pool.h"
#include "src/core/model_image.h"
#include "src/core/synthetic.h"
#include "src/obs/json_writer.h"
#include "src/obs/registry.h"
#include "src/runtime/deployed_model.h"

namespace neuroc {

namespace {

// Same SplitMix64 finalizer as the architecture search: per-trial streams independent of
// execution order, the prerequisite for thread-count-invariant results.
uint64_t TrialSeed(uint64_t seed, uint64_t t) {
  uint64_t z = seed + (t + 1) * 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// Deterministic synthetic campaign model. The adjacency/scale/bias draws depend only on
// the shape and density — not the encoding — so every encoding packs the *same* ternary
// matrix and per-cell rates are directly comparable.
NeuroCModel BuildCampaignModel(const FaultCampaignConfig& cfg, EncodingKind kind) {
  std::vector<QuantNeuroCLayer> layers;
  Rng rng(TrialSeed(cfg.seed, 0x6D6F64656Cull));  // "model" stream, disjoint from trials
  SyntheticNeuroCLayerSpec l1;
  l1.in_dim = cfg.in_dim;
  l1.out_dim = cfg.hidden_dim;
  l1.density = cfg.density;
  l1.encoding = kind;
  l1.relu = true;
  layers.push_back(MakeSyntheticNeuroCLayer(l1, rng));
  SyntheticNeuroCLayerSpec l2 = l1;
  l2.in_dim = cfg.hidden_dim;
  l2.out_dim = cfg.out_dim;
  l2.relu = false;
  layers.push_back(MakeSyntheticNeuroCLayer(l2, rng));
  return NeuroCModel::FromLayers(std::move(layers));
}

enum class Outcome : uint8_t {
  kCorrect,
  kSdc,
  kDetected,
  kBudgetExceeded,
  kDeadlineExceeded,
  kDualRunCaught,
};

struct TrialRecord {
  uint8_t region_index = 0;  // into FaultCampaignConfig::regions
  Outcome outcome = Outcome::kCorrect;
  bool masked = false;
  bool crc_flagged = false;
  bool attempted_recovery = false;
  bool recovered = false;
  RecoveryRung resolved = RecoveryRung::kNone;
  bool has_latency = false;
  uint64_t detect_latency_cycles = 0;
};

struct RegionSpan {
  uint32_t base = 0;
  uint32_t size = 0;
};

RegionSpan ResolveRegion(const DeployedModel& dm, CampaignRegion region) {
  const uint32_t descriptors_bytes =
      static_cast<uint32_t>(dm.num_layers()) * kDescriptorBytes;
  switch (region) {
    case CampaignRegion::kKernelCode:
      return {dm.kernel_program().base_addr,
              static_cast<uint32_t>(dm.kernel_program().bytes.size())};
    case CampaignRegion::kDescriptors:
      return {dm.image_base(), descriptors_bytes};
    case CampaignRegion::kPayload:
      return {dm.image_base() + descriptors_bytes,
              static_cast<uint32_t>(dm.image().flash.size()) - descriptors_bytes};
    case CampaignRegion::kSram:
      return {dm.machine().config().ram_base, dm.image().ram_bytes_used};
  }
  NEUROC_CHECK_MSG(false, "unknown campaign region");
  return {};
}

// One fault-free inference on a fresh deployment: golden instruction/cycle counts (latency
// is input-independent by construction, so the zero input is representative).
struct Golden {
  uint64_t instructions = 0;
  uint64_t cycles = 0;
  size_t program_bytes = 0;
};

Golden MeasureGolden(const NeuroCModel& model) {
  DeployedModel dm = DeployedModel::Deploy(model);
  const uint64_t before = dm.machine().cpu().instructions();
  dm.MeasureLatencyMs();
  Golden g;
  g.instructions = dm.machine().cpu().instructions() - before;
  g.cycles = dm.report().cycles_per_inference;
  g.program_bytes = dm.report().program_bytes;
  return g;
}

TrialRecord RunTrial(GuardedModel& gm, const FaultCampaignConfig& cfg,
                     const Golden& golden, uint64_t trial_seed) {
  Rng rng(trial_seed);
  const std::vector<int8_t> input = MakeRandomInput(cfg.in_dim, rng);
  const int golden_pred = gm.model().Predict(input);
  const size_t region_index = rng.NextBounded(cfg.regions.size());
  const CampaignRegion region = cfg.regions[region_index];

  TrialRecord rec;
  rec.region_index = static_cast<uint8_t>(region_index);
  gm.deployed().Scrub();
  const RegionSpan span = ResolveRegion(gm.deployed(), region);

  GuardedResult gr;
  uint64_t injected_at_cycles = 0;
  bool injection_timed = false;  // both latency endpoints are known
  if (cfg.trigger == FaultTrigger::kPreInference) {
    const InjectedFault f =
        InjectFault(gm.deployed().machine().memory(), span.base, span.size,
                    cfg.fault_model, cfg.bits, rng);
    rec.masked = !f.changed();
    gr = gm.Predict(input);
    injection_timed = true;  // strike at cycle 0 of the inference
  } else {
    // The injector fires exactly once, so ladder retries after the strike run clean. If
    // the kRedeploy rung swapped machines mid-ladder the probe pointer below targets the
    // replacement — a no-op detach, which is fine: the original machine is gone.
    const uint64_t trigger = 1 + rng.NextBounded(golden.instructions);
    TriggeredInjector injector(&gm.deployed().machine().memory(), trigger, span.base,
                               span.size, cfg.fault_model, cfg.bits, rng);
    gm.deployed().machine().cpu().set_probe(&injector);
    gr = gm.Predict(input);
    gm.deployed().machine().cpu().set_probe(nullptr);
    rec.masked = injector.fired() && !injector.fault().changed();
    injected_at_cycles = injector.fired_at_cycles();
    injection_timed = injector.fired();
  }

  if (gr.sdc_detected) {
    rec.outcome = Outcome::kDualRunCaught;
  } else if (!gr.faulted) {
    rec.outcome = (gr.prediction == golden_pred) ? Outcome::kCorrect : Outcome::kSdc;
  } else if (gr.first_fault.code == ErrorCode::kInstructionBudgetExceeded) {
    rec.outcome = Outcome::kBudgetExceeded;
  } else if (gr.first_fault.code == ErrorCode::kDeadlineExceeded) {
    rec.outcome = Outcome::kDeadlineExceeded;
  } else {
    rec.outcome = Outcome::kDetected;
  }

  if (gr.faulted || gr.sdc_detected) {
    rec.crc_flagged = !gr.corrupted_sections.empty();
    const RecoveryPolicy& p = gm.policy();
    if (p.snapshot_retry || p.scrub_retry || p.redeploy) {
      rec.attempted_recovery = true;
      rec.recovered = gr.ok && gr.prediction == golden_pred;
      rec.resolved = gr.resolved_by;
    }
    if (injection_timed && gr.detection_cycles >= injected_at_cycles) {
      rec.has_latency = true;
      rec.detect_latency_cycles = gr.detection_cycles - injected_at_cycles;
    }
  }
  return rec;
}

void Accumulate(RegionStats& stats, const TrialRecord& rec) {
  ++stats.trials;
  switch (rec.outcome) {
    case Outcome::kCorrect: ++stats.correct; break;
    case Outcome::kSdc: ++stats.sdc; break;
    case Outcome::kDetected: ++stats.detected; break;
    case Outcome::kBudgetExceeded: ++stats.budget_exceeded; break;
    case Outcome::kDeadlineExceeded: ++stats.deadline_exceeded; break;
    case Outcome::kDualRunCaught: ++stats.dual_run_caught; break;
  }
  if (rec.masked) ++stats.masked;
  if (rec.crc_flagged) ++stats.crc_flagged;
  if (rec.attempted_recovery) {
    if (rec.recovered) {
      ++stats.recovered;
      switch (rec.resolved) {
        case RecoveryRung::kSnapshotRetry: ++stats.recovered_snapshot; break;
        case RecoveryRung::kScrubRetry: ++stats.recovered_scrub; break;
        case RecoveryRung::kRedeploy: ++stats.recovered_redeploy; break;
        default: break;
      }
    } else {
      ++stats.unrecovered;
    }
    if (rec.resolved == RecoveryRung::kPermanentFailure) ++stats.permanent_failure;
  }
  if (rec.has_latency) {
    stats.detect_latency_cycles_sum += rec.detect_latency_cycles;
    ++stats.detect_count;
  }
}

}  // namespace

const char* FaultTriggerName(FaultTrigger trigger) {
  switch (trigger) {
    case FaultTrigger::kPreInference: return "pre";
    case FaultTrigger::kMidInference: return "mid";
  }
  return "unknown";
}

bool ParseFaultTrigger(std::string_view text, FaultTrigger* out) {
  if (text == "pre") {
    *out = FaultTrigger::kPreInference;
  } else if (text == "mid") {
    *out = FaultTrigger::kMidInference;
  } else {
    return false;
  }
  return true;
}

const char* CampaignRegionName(CampaignRegion region) {
  switch (region) {
    case CampaignRegion::kKernelCode: return "kernel_code";
    case CampaignRegion::kDescriptors: return "descriptors";
    case CampaignRegion::kPayload: return "payload";
    case CampaignRegion::kSram: return "sram";
  }
  return "unknown";
}

bool ParseCampaignRegion(std::string_view text, CampaignRegion* out) {
  for (CampaignRegion r : kAllCampaignRegions) {
    if (text == CampaignRegionName(r)) {
      *out = r;
      return true;
    }
  }
  return false;
}

void RegionStats::Add(const RegionStats& o) {
  trials += o.trials;
  correct += o.correct;
  sdc += o.sdc;
  detected += o.detected;
  budget_exceeded += o.budget_exceeded;
  deadline_exceeded += o.deadline_exceeded;
  dual_run_caught += o.dual_run_caught;
  masked += o.masked;
  recovered += o.recovered;
  unrecovered += o.unrecovered;
  crc_flagged += o.crc_flagged;
  recovered_snapshot += o.recovered_snapshot;
  recovered_scrub += o.recovered_scrub;
  recovered_redeploy += o.recovered_redeploy;
  permanent_failure += o.permanent_failure;
  detect_latency_cycles_sum += o.detect_latency_cycles_sum;
  detect_count += o.detect_count;
}

FaultCampaignResult RunFaultCampaign(const FaultCampaignConfig& config) {
  NEUROC_CHECK(config.trials_per_encoding >= 0);
  NEUROC_CHECK(!config.regions.empty());
  NEUROC_CHECK(!config.encodings.empty());
  NEUROC_CHECK(config.budget_margin >= 1.0);

  FaultCampaignResult result;
  result.config = config;

  // Golden pass, sequential: per-encoding fault-free counters sized to the shared model.
  std::vector<Golden> golden(config.encodings.size());
  for (size_t e = 0; e < config.encodings.size(); ++e) {
    golden[e] = MeasureGolden(BuildCampaignModel(config, config.encodings[e]));
  }

  const size_t per_enc = static_cast<size_t>(config.trials_per_encoding);
  const size_t total = per_enc * config.encodings.size();
  std::vector<TrialRecord> records(total);

  // Each chunk rebuilds the (deterministic) model + guarded deployment it needs; every
  // trial owns the slot records[t], scrubs the device first, and resets to the primary
  // encoding after (a kRedeploy rung must not leak into the next trial), so outcomes are
  // independent of chunk boundaries and thread count. Grain 32: a trial is one small
  // inference (plus scrubs), so chunks amortize the per-chunk deployment without starving
  // the pool.
  ParallelFor(0, total, 32, [&](size_t t0, size_t t1) {
    size_t current_enc = static_cast<size_t>(-1);
    std::unique_ptr<GuardedModel> gm;
    for (size_t t = t0; t < t1; ++t) {
      const size_t e = t / per_enc;
      if (e != current_enc) {
        current_enc = e;
        MachineConfig mc;
        mc.max_instructions = std::max<uint64_t>(
            static_cast<uint64_t>(config.budget_margin *
                                  static_cast<double>(golden[e].instructions)),
            golden[e].instructions + 1024);
        StatusOr<GuardedModel> guarded = GuardedModel::Create(
            BuildCampaignModel(config, config.encodings[e]), mc, config.policy);
        NEUROC_CHECK_MSG(guarded.ok(), "campaign deployment failed");
        gm = std::make_unique<GuardedModel>(std::move(*guarded));
      }
      records[t] = RunTrial(*gm, config, golden[e], TrialSeed(config.seed, t));
      NEUROC_CHECK(gm->ResetToPrimary().ok());
    }
  });

  // Sequential aggregation in trial order — deterministic bytes all the way down.
  for (size_t e = 0; e < config.encodings.size(); ++e) {
    EncodingCampaignResult enc;
    enc.encoding = config.encodings[e];
    enc.golden_instructions = golden[e].instructions;
    enc.golden_cycles = golden[e].cycles;
    enc.program_bytes = golden[e].program_bytes;
    enc.regions.assign(config.regions.size(), RegionStats{});
    for (size_t t = e * per_enc; t < (e + 1) * per_enc; ++t) {
      Accumulate(enc.regions[records[t].region_index], records[t]);
    }
    for (const RegionStats& r : enc.regions) {
      enc.totals.Add(r);
    }
    result.totals.Add(enc.totals);
    result.encodings.push_back(std::move(enc));
  }
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("faultcampaign.trials").Add(result.totals.trials);
  reg.GetCounter("faultcampaign.sdc").Add(result.totals.sdc);
  reg.GetCounter("faultcampaign.detected").Add(result.totals.detected);
  reg.GetCounter("faultcampaign.recovered").Add(result.totals.recovered);
  reg.GetCounter("faultcampaign.deadline_exceeded").Add(result.totals.deadline_exceeded);
  reg.GetCounter("faultcampaign.dual_run_caught").Add(result.totals.dual_run_caught);
  return result;
}

namespace {

void WriteStats(JsonWriter& w, const RegionStats& s) {
  w.BeginObject();
  w.Key("trials").Value(s.trials);
  w.Key("correct").Value(s.correct);
  w.Key("sdc").Value(s.sdc);
  w.Key("detected").Value(s.detected);
  w.Key("budget_exceeded").Value(s.budget_exceeded);
  w.Key("deadline_exceeded").Value(s.deadline_exceeded);
  w.Key("dual_run_caught").Value(s.dual_run_caught);
  w.Key("masked").Value(s.masked);
  w.Key("crc_flagged").Value(s.crc_flagged);
  w.Key("recovered").Value(s.recovered);
  w.Key("recovered_snapshot").Value(s.recovered_snapshot);
  w.Key("recovered_scrub").Value(s.recovered_scrub);
  w.Key("recovered_redeploy").Value(s.recovered_redeploy);
  w.Key("unrecovered").Value(s.unrecovered);
  w.Key("permanent_failure").Value(s.permanent_failure);
  w.Key("sdc_rate").Value(s.SdcRate());
  w.Key("detect_latency_samples").Value(s.detect_count);
  w.Key("mean_detect_latency_cycles").Value(s.MeanDetectLatencyCycles());
  w.EndObject();
}

}  // namespace

std::string FaultCampaignJson(const FaultCampaignResult& result) {
  const FaultCampaignConfig& cfg = result.config;
  JsonWriter w;
  w.BeginObject();
  w.Key("campaign").BeginObject();
  w.Key("seed").Value(cfg.seed);
  w.Key("trials_per_encoding").Value(cfg.trials_per_encoding);
  w.Key("fault_model").Value(FaultModelName(cfg.fault_model));
  w.Key("bits").Value(cfg.bits);
  w.Key("trigger").Value(FaultTriggerName(cfg.trigger));
  w.Key("policy").BeginObject();
  w.Key("snapshot_retry").Value(cfg.policy.snapshot_retry);
  w.Key("scrub_retry").Value(cfg.policy.scrub_retry);
  w.Key("redeploy").Value(cfg.policy.redeploy);
  w.Key("dual_run").Value(cfg.policy.dual_run);
  w.Key("watchdog_headroom").Value(cfg.policy.watchdog_headroom);
  w.EndObject();
  w.Key("budget_margin").Value(cfg.budget_margin);
  w.Key("model").BeginObject();
  w.Key("in_dim").Value(static_cast<uint64_t>(cfg.in_dim));
  w.Key("hidden_dim").Value(static_cast<uint64_t>(cfg.hidden_dim));
  w.Key("out_dim").Value(static_cast<uint64_t>(cfg.out_dim));
  w.Key("density").Value(cfg.density);
  w.EndObject();
  w.EndObject();
  w.Key("encodings").BeginArray();
  for (const EncodingCampaignResult& enc : result.encodings) {
    w.BeginObject();
    w.Key("encoding").Value(EncodingKindName(enc.encoding));
    w.Key("golden_instructions").Value(enc.golden_instructions);
    w.Key("golden_cycles").Value(enc.golden_cycles);
    w.Key("program_bytes").Value(static_cast<uint64_t>(enc.program_bytes));
    w.Key("regions").BeginArray();
    for (size_t r = 0; r < enc.regions.size(); ++r) {
      w.BeginObject();
      w.Key("region").Value(CampaignRegionName(cfg.regions[r]));
      w.Key("stats");
      WriteStats(w, enc.regions[r]);
      w.EndObject();
    }
    w.EndArray();
    w.Key("totals");
    WriteStats(w, enc.totals);
    w.EndObject();
  }
  w.EndArray();
  w.Key("totals");
  WriteStats(w, result.totals);
  w.EndObject();
  return w.str();
}

}  // namespace neuroc
