// Execution profiling of deployed models on the simulated MCU: instruction mix, memory
// traffic by region, and per-category cycle attribution. This is the quantitative backing
// for the paper's Sec. 4.1 discussion — on a cache-less in-order core, the memory-access
// pattern and control path *are* the performance model.

#ifndef NEUROC_SRC_RUNTIME_PROFILE_H_
#define NEUROC_SRC_RUNTIME_PROFILE_H_

#include <string>

#include "src/runtime/deployed_model.h"

namespace neuroc {

struct ExecutionProfile {
  uint64_t instructions = 0;
  uint64_t cycles = 0;
  // Instruction counts by category.
  uint64_t loads = 0;
  uint64_t stores = 0;
  uint64_t alu = 0;        // data processing, moves, shifts, extends
  uint64_t multiplies = 0;
  uint64_t branches = 0;   // B/B<cond>/BL/BX + PC writes
  uint64_t stack_ops = 0;  // PUSH/POP
  // Memory traffic (accesses, not bytes).
  uint64_t flash_reads = 0;
  uint64_t sram_reads = 0;
  uint64_t sram_writes = 0;

  double CyclesPerInstruction() const {
    return instructions == 0 ? 0.0
                             : static_cast<double>(cycles) / static_cast<double>(instructions);
  }
};

// Runs one inference on `model` (zero input) and returns the profile of exactly that run.
ExecutionProfile ProfileInference(DeployedModel& model);

// Multi-line human-readable report.
std::string FormatProfile(const ExecutionProfile& profile);

}  // namespace neuroc

#endif  // NEUROC_SRC_RUNTIME_PROFILE_H_
