// Execution profiling of deployed models on the simulated MCU. Since the obs PR this is
// built on the cycle-exact flat profiler (src/obs/sim_profiler.h): instruction mix and
// per-category cycle attribution come from per-PC/per-opcode data gathered by the CPU
// probe, and the detailed profile adds per-symbol hotspots, per-layer cycles, memory
// heatmaps and the SRAM stack high-water mark. This is the quantitative backing for the
// paper's Sec. 4.1 discussion — on a cache-less in-order core, the memory-access pattern
// and control path *are* the performance model.

#ifndef NEUROC_SRC_RUNTIME_PROFILE_H_
#define NEUROC_SRC_RUNTIME_PROFILE_H_

#include <string>
#include <string_view>

#include "src/obs/energy.h"
#include "src/obs/json_writer.h"
#include "src/obs/sim_profiler.h"
#include "src/runtime/deployed_model.h"

namespace neuroc {

// Which decode/execution path the profiled inference runs on. kLegacy and kCached
// profile through the step-interpreter probe (attaching a CpuProbe forces the step
// path anyway); kBlock stays on block-compiled execution and gathers the same exact
// attribution through the block-granular counters (src/obs/block_profiler.h) — the
// fast-path default.
enum class ProfileMode { kLegacy, kCached, kBlock };

const char* ProfileModeName(ProfileMode mode);
// Accepts "legacy" | "cached" | "block".
bool ParseProfileMode(std::string_view name, ProfileMode* out);

// Stack headroom below which ProfileInferenceDetailed warns (a stack growing into the
// activation buffers corrupts inference silently). Configurable via the
// NEUROC_SRAM_HEADROOM environment variable; defaults to 256 bytes. Also published as
// the registry gauge `profile.sram_headroom_warn_bytes`.
uint32_t StackHeadroomWarnBytes();

struct ExecutionProfile {
  uint64_t instructions = 0;
  uint64_t cycles = 0;
  // Instruction counts by category.
  uint64_t loads = 0;
  uint64_t stores = 0;
  uint64_t alu = 0;        // data processing, moves, shifts, extends
  uint64_t multiplies = 0;
  uint64_t branches = 0;   // B/B<cond>/BL/BX + PC writes
  uint64_t stack_ops = 0;  // PUSH/POP
  // Cycle attribution by the same categories (sums to `cycles` exactly; includes each
  // instruction's fetch wait states, memory-access costs and branch penalties).
  uint64_t load_cycles = 0;
  uint64_t store_cycles = 0;
  uint64_t alu_cycles = 0;
  uint64_t multiply_cycles = 0;
  uint64_t branch_cycles = 0;
  uint64_t stack_cycles = 0;
  // Memory traffic (accesses, not bytes).
  uint64_t flash_reads = 0;
  uint64_t sram_reads = 0;
  uint64_t sram_writes = 0;

  double CyclesPerInstruction() const {
    return instructions == 0 ? 0.0
                             : static_cast<double>(cycles) / static_cast<double>(instructions);
  }
};

// Full attribution package for one inference.
struct InferenceProfile {
  ExecutionProfile summary;
  ProfileMode mode = ProfileMode::kBlock;  // decode/execution path profiled
  PcProfile attribution;            // raw per-PC/per-opcode attribution (+ provenance)
  HotspotReport hotspots;           // per-symbol/per-loop-label cycle attribution
  std::vector<uint64_t> layer_cycles;
  MemHeatmap heatmap;               // per-region access histograms
  uint32_t stack_bytes_used = 0;    // SRAM stack high-water mark
  uint32_t stack_headroom_bytes = 0;  // gap between deepest stack and activation top
  EnergyModel energy_model;         // proxy weights the estimate was computed with
  EnergyEstimate energy;            // cycles × active-power + access-energy estimate
};

// Runs one inference on `model` (zero input) and returns the profile of exactly that run.
ExecutionProfile ProfileInference(DeployedModel& model,
                                  ProfileMode mode = ProfileMode::kBlock);

// As above, plus symbol-resolved hotspots, memory heatmap (`heatmap_bucket_bytes`-sized
// buckets), stack tracking, and the energy-proxy estimate. Warns via NEUROC_LOG_WARN
// when the measured stack high water comes within StackHeadroomWarnBytes() of the
// activation buffers.
InferenceProfile ProfileInferenceDetailed(DeployedModel& model,
                                          uint32_t heatmap_bucket_bytes = 64,
                                          ProfileMode mode = ProfileMode::kBlock);

// Multi-line human-readable report.
std::string FormatProfile(const ExecutionProfile& profile);

// FormatProfile + hotspot table + per-layer cycles + stack/heatmap summary. Set
// `annotated_disassembly` to append the per-instruction listing.
std::string FormatInferenceProfile(const InferenceProfile& profile,
                                   const DeployedModel& model,
                                   bool annotated_disassembly = false);

// Machine-readable form of the full profile (one JSON object at the writer's position).
void WriteInferenceProfileJson(JsonWriter& w, const InferenceProfile& profile,
                               const DeployedModel& model);

}  // namespace neuroc

#endif  // NEUROC_SRC_RUNTIME_PROFILE_H_
