// Device registry backing the paper's Table 1 (qualitative MCU classes) and the simulator
// configurations derived from them.

#ifndef NEUROC_SRC_RUNTIME_PLATFORM_H_
#define NEUROC_SRC_RUNTIME_PLATFORM_H_

#include <cstdint>
#include <span>
#include <string>

#include "src/sim/machine.h"

namespace neuroc {

enum class McuClass { kLow, kMedium, kAdvanced };

struct PlatformSpec {
  std::string name;        // e.g. "STM32F072RB"
  std::string core;        // e.g. "Cortex-M0"
  McuClass mcu_class = McuClass::kLow;
  uint32_t ram_bytes = 0;
  uint32_t flash_bytes = 0;
  double clock_hz = 8e6;
  bool has_fpu = false;
  bool has_dsp_mac = false;   // hardware MACC / DSP extensions
  bool has_simd = false;
  int flash_wait_states = 0;  // at the listed clock
  int mul_cycles = 1;

  // Simulator configuration for this device (the simulator models in-order Cortex-M-like
  // cores; FPU/DSP/SIMD flags are advisory metadata for Table 1).
  MachineConfig ToMachineConfig() const;
};

const char* McuClassName(McuClass c);

// All registered devices (the paper's exemplars per class plus the evaluation board).
std::span<const PlatformSpec> AllPlatforms();

// The paper's evaluation platform: STM32F072RB, Cortex-M0 @ 8 MHz, 16 KB RAM, 128 KB flash.
const PlatformSpec& Stm32f072rb();

// Lookup by name; aborts if unknown.
const PlatformSpec& PlatformByName(const std::string& name);

}  // namespace neuroc

#endif  // NEUROC_SRC_RUNTIME_PLATFORM_H_
