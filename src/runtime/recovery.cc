#include "src/runtime/recovery.h"

#include <utility>

#include "src/common/check.h"
#include "src/obs/registry.h"

namespace neuroc {

const char* RecoveryRungName(RecoveryRung rung) {
  switch (rung) {
    case RecoveryRung::kNone: return "none";
    case RecoveryRung::kSnapshotRetry: return "snapshot_retry";
    case RecoveryRung::kScrubRetry: return "scrub_retry";
    case RecoveryRung::kRedeploy: return "redeploy";
    case RecoveryRung::kPermanentFailure: return "permanent_failure";
  }
  return "unknown";
}

StatusOr<GuardedModel> GuardedModel::Create(NeuroCModel model,
                                            const MachineConfig& config,
                                            const RecoveryPolicy& policy) {
  NEUROC_CHECK(policy.watchdog_headroom == 0.0 || policy.watchdog_headroom >= 1.0);
  GuardedModel gm;
  gm.model_ = std::move(model);
  gm.config_ = config;
  gm.policy_ = policy;
  gm.primary_encoding_ = gm.model_.layers().front().encoding->kind();
  gm.active_encoding_ = gm.primary_encoding_;
  StatusOr<DeployedModel> dm = DeployedModel::TryDeploy(gm.model_, config);
  if (!dm.ok()) {
    return dm.status();
  }
  gm.dm_ = std::make_unique<DeployedModel>(std::move(*dm));
  if (policy.watchdog_headroom > 0.0) {
    Status armed = gm.dm_->ArmWatchdog(policy.watchdog_headroom);
    if (!armed.ok()) {
      return armed;
    }
  }
  return gm;
}

Status GuardedModel::ResetToPrimary() {
  if (active_encoding_ == primary_encoding_) {
    return Status::Ok();
  }
  // Rebuild exactly what Create built, so post-reset behaviour is indistinguishable from
  // a fresh GuardedModel — the determinism contract campaign trials rely on.
  StatusOr<DeployedModel> dm = DeployedModel::TryDeploy(model_, config_);
  if (!dm.ok()) {
    return dm.status();
  }
  auto fresh = std::make_unique<DeployedModel>(std::move(*dm));
  if (policy_.watchdog_headroom > 0.0) {
    Status armed = fresh->ArmWatchdog(policy_.watchdog_headroom);
    if (!armed.ok()) {
      return armed;
    }
  }
  dm_ = std::move(fresh);
  active_encoding_ = primary_encoding_;
  return Status::Ok();
}

Status GuardedModel::Redeploy(EncodingKind kind) {
  const NeuroCModel candidate = ReencodeModel(model_, kind);
  StatusOr<DeployedModel> dm = DeployedModel::TryDeploy(candidate, config_);
  if (!dm.ok()) {
    return dm.status();
  }
  auto fresh = std::make_unique<DeployedModel>(std::move(*dm));
  if (policy_.watchdog_headroom > 0.0) {
    Status armed = fresh->ArmWatchdog(policy_.watchdog_headroom);
    if (!armed.ok()) {
      return armed;
    }
  }
  dm_ = std::move(fresh);
  active_encoding_ = kind;
  return Status::Ok();
}

// One attempt from the current machine state. Single mode is one supervised TryPredict;
// dual mode runs twice with an SRAM+register restore from the pristine snapshot between
// runs and byte-compares the output vectors.
StatusOr<int> GuardedModel::RunOnce(std::span<const int8_t> input, bool* mismatch,
                                    uint64_t* elapsed) {
  *mismatch = false;
  *elapsed = 0;
  const uint64_t before1 = dm_->machine().cpu().cycles();
  StatusOr<int> first = dm_->TryPredict(input);
  *elapsed = dm_->machine().cpu().cycles() - before1;
  if (!policy_.dual_run || !first.ok()) {
    return first;
  }
  const std::vector<int8_t> out1 = dm_->LastOutput();
  dm_->machine().Restore(dm_->pristine_snapshot(), RestoreScope::kRamAndRegisters);
  const uint64_t before2 = dm_->machine().cpu().cycles();
  StatusOr<int> second = dm_->TryPredict(input);
  *elapsed += dm_->machine().cpu().cycles() - before2;
  if (!second.ok()) {
    return second;
  }
  if (dm_->LastOutput() != out1) {
    *mismatch = true;
  }
  return second;
}

GuardedResult GuardedModel::Predict(std::span<const int8_t> input) {
  GuardedResult gr;
  gr.active_encoding = active_encoding_;
  MetricsRegistry& reg = MetricsRegistry::Global();

  bool mismatch = false;
  uint64_t elapsed = 0;
  StatusOr<int> res = RunOnce(input, &mismatch, &elapsed);
  if (res.ok() && !mismatch) {
    gr.ok = true;
    gr.prediction = *res;
    return gr;
  }

  // First detection: capture provenance before any rung destroys the evidence.
  gr.detection_cycles = elapsed;
  if (!res.ok()) {
    gr.faulted = true;
    gr.first_fault =
        res.status().fault() != nullptr ? *res.status().fault() : FaultReport{};
    if (gr.first_fault.code == ErrorCode::kOk) {
      gr.first_fault.code = res.status().code();
      gr.first_fault.message = res.status().message();
    }
    if (gr.first_fault.code == ErrorCode::kDeadlineExceeded) {
      reg.GetCounter("recovery.deadline_faults").Add(1);
    }
  } else {
    // Both runs completed; the mismatch is known only after the second finishes.
    gr.sdc_detected = true;
    gr.first_fault.code = ErrorCode::kIntegrityFailure;
    gr.first_fault.message = "dual-run output mismatch";
    reg.GetCounter("recovery.dual_run_mismatch").Add(1);
  }
  gr.corrupted_sections = dm_->CorruptedSections();

  // A rung has recovered only when the retry is behaviorally clean AND the flash CRCs
  // pass. The integrity check is what keeps persistent flash corruption from slipping
  // through the cheaper rungs: after a RAM-only restore, a dual-run pair shares the
  // corrupted flash and agrees on the same wrong output — consistent, but not recovered.
  const auto intact = [&] { return dm_->CorruptedSections().empty(); };

  // The ladder, cheapest rung first. Each rung repairs, retries, and returns on success.
  if (policy_.snapshot_retry) {
    reg.GetCounter("recovery.snapshot_retry").Add(1);
    dm_->machine().Restore(dm_->pristine_snapshot(), RestoreScope::kRamAndRegisters);
    ++gr.retries;
    res = RunOnce(input, &mismatch, &elapsed);
    if (res.ok() && !mismatch && intact()) {
      gr.ok = true;
      gr.prediction = *res;
      gr.resolved_by = RecoveryRung::kSnapshotRetry;
      return gr;
    }
  }
  if (policy_.scrub_retry) {
    reg.GetCounter("recovery.scrub_retry").Add(1);
    dm_->Scrub();
    ++gr.retries;
    res = RunOnce(input, &mismatch, &elapsed);
    if (res.ok() && !mismatch && intact()) {
      gr.ok = true;
      gr.prediction = *res;
      gr.resolved_by = RecoveryRung::kScrubRetry;
      return gr;
    }
  }
  if (policy_.redeploy) {
    // Fallback order mirrors TryDeployWithFallback: descending expected speed, skipping
    // whatever is currently deployed.
    for (const EncodingKind kind : {EncodingKind::kDelta, EncodingKind::kMixed,
                                    EncodingKind::kCsc, EncodingKind::kBlock}) {
      if (kind == active_encoding_) {
        continue;
      }
      if (!Redeploy(kind).ok()) {
        continue;
      }
      reg.GetCounter("recovery.redeploy").Add(1);
      ++gr.retries;
      gr.active_encoding = active_encoding_;
      res = RunOnce(input, &mismatch, &elapsed);
      if (res.ok() && !mismatch && intact()) {
        gr.ok = true;
        gr.prediction = *res;
        gr.resolved_by = RecoveryRung::kRedeploy;
        return gr;
      }
      break;  // one fallback deployment per ladder walk, like TryDeployWithFallback
    }
  }
  reg.GetCounter("recovery.permanent_failure").Add(1);
  gr.resolved_by = RecoveryRung::kPermanentFailure;
  return gr;
}

std::vector<GuardedResult> GuardedModel::PredictBatch(
    const std::vector<std::vector<int8_t>>& inputs, std::vector<uint64_t>* cycles) {
  std::vector<GuardedResult> results;
  results.reserve(inputs.size());
  if (cycles != nullptr) {
    cycles->clear();
    cycles->reserve(inputs.size());
  }
  for (const std::vector<int8_t>& input : inputs) {
    results.push_back(Predict(input));
    if (cycles != nullptr) {
      cycles->push_back(results.back().ok ? dm_->report().cycles_per_inference : 0);
    }
  }
  return results;
}

}  // namespace neuroc
