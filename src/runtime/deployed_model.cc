#include "src/runtime/deployed_model.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/common/check.h"
#include "src/common/crc32.h"
#include "src/kernels/kernel_sources.h"
#include "src/obs/registry.h"

namespace neuroc {

namespace {

constexpr uint32_t kScratchFlashBase = 0x08000000;

uint32_t AlignUp4(uint32_t v) { return (v + 3u) & ~3u; }

size_t EstimateFromParts(size_t code_bytes, size_t image_bytes) {
  return code_bytes + image_bytes + kRuntimeOverheadBytes;
}

}  // namespace

size_t DeployedModel::EstimateProgramBytes(const NeuroCModel& model) {
  DeviceModelImage image = PackNeuroCModel(model, kScratchFlashBase, 0x20000000);
  KernelSet kernels =
      KernelSet::Build(image.variants, kScratchFlashBase, /*include_conv=*/false, &model);
  return EstimateFromParts(kernels.code_bytes(), image.flash.size());
}

size_t DeployedModel::EstimateProgramBytes(const MlpModel& model) {
  DeviceModelImage image = PackMlpModel(model, kScratchFlashBase, 0x20000000);
  KernelSet kernels = KernelSet::Build(image.variants, kScratchFlashBase);
  return EstimateFromParts(kernels.code_bytes(), image.flash.size());
}

StatusOr<DeployedModel> DeployedModel::DeployImage(DeviceModelImage image, KernelSet kernels,
                                                   const MachineConfig& config,
                                                   uint32_t image_base) {
  DeployedModel dm;
  dm.machine_ = std::make_unique<Machine>(config);
  dm.report_.code_bytes = kernels.code_bytes();
  dm.report_.image_bytes = image.flash.size();
  dm.report_.program_bytes = EstimateFromParts(kernels.code_bytes(), image.flash.size());
  dm.report_.ram_bytes = image.ram_bytes_used;
  if (dm.report_.program_bytes > config.flash_size) {
    return Status(ErrorCode::kResourceExhausted,
                  "model does not fit program memory: needs " +
                      std::to_string(dm.report_.program_bytes) + " B (" +
                      std::to_string(kernels.code_bytes()) + " B code + " +
                      std::to_string(image.flash.size()) + " B image + " +
                      std::to_string(kRuntimeOverheadBytes) + " B runtime) of " +
                      std::to_string(config.flash_size) +
                      " B flash; check EstimateProgramBytes before deploying");
  }
  if (image.ram_bytes_used > config.ram_size - 512) {
    return Status(ErrorCode::kResourceExhausted,
                  "activation plan leaves no room for the stack");
  }
  dm.machine_->LoadBytes(kernels.program().base_addr, kernels.program().bytes);
  dm.machine_->LoadBytes(image_base, image.flash);
  for (size_t k = 0; k < image.num_layers(); ++k) {
    dm.layer_entries_.push_back(kernels.EntryFor(image.variants[k]));
  }
  dm.image_base_ = image_base;
  dm.kernel_crc_ = Crc32(std::span<const uint8_t>(kernels.program().bytes));
  dm.image_ = std::move(image);
  dm.kernels_ = std::move(kernels);
  // Pristine machine snapshot: everything is loaded, nothing has executed. Scrub() and
  // the recovery ladder restore from this instead of rewriting sections piecemeal.
  dm.pristine_ = dm.machine_->Snapshot();
  return dm;
}

StatusOr<DeployedModel> DeployedModel::TryDeploy(const NeuroCModel& model,
                                                 const MachineConfig& config) {
  // Kernels first (at the reset address, like a real linker script), image after.
  KernelSet probe = KernelSet::Build(
      PackNeuroCModel(model, kScratchFlashBase, config.ram_base).variants, config.flash_base,
      /*include_conv=*/false, &model);
  const uint32_t image_base = AlignUp4(config.flash_base +
                                       static_cast<uint32_t>(probe.code_bytes()) +
                                       static_cast<uint32_t>(kRuntimeOverheadBytes));
  DeviceModelImage image = PackNeuroCModel(model, image_base, config.ram_base);
  return DeployImage(std::move(image), std::move(probe), config, image_base);
}

StatusOr<DeployedModel> DeployedModel::TryDeployWithFallback(const NeuroCModel& model,
                                                             const MachineConfig& config,
                                                             DeployFallbackReport* report) {
  DeployFallbackReport local;
  DeployFallbackReport& r = report != nullptr ? *report : local;
  r = DeployFallbackReport{};
  r.requested = model.layers().front().encoding->kind();
  r.selected = r.requested;
  r.flash_budget = config.flash_size;
  r.requested_bytes = EstimateProgramBytes(model);
  r.selected_bytes = r.requested_bytes;
  if (r.requested_bytes <= config.flash_size) {
    return TryDeploy(model, config);
  }
  r.fell_back = true;
  r.overflow = Status(
      ErrorCode::kResourceExhausted,
      std::string("flash budget overflow: ") + EncodingKindName(r.requested) +
          " image needs " + std::to_string(r.requested_bytes) + " B of " +
          std::to_string(config.flash_size) + " B flash; falling back");
  // Candidates in descending expected speed: the guard exists because the caller asked for
  // the fastest scheme, so "best fitting" is the fastest one that still fits.
  for (const EncodingKind kind : {EncodingKind::kDelta, EncodingKind::kMixed,
                                  EncodingKind::kCsc, EncodingKind::kBlock}) {
    const NeuroCModel candidate = ReencodeModel(model, kind);
    const size_t bytes = EstimateProgramBytes(candidate);
    if (bytes <= config.flash_size) {
      r.selected = kind;
      r.selected_bytes = bytes;
      return TryDeploy(candidate, config);
    }
  }
  return Status(ErrorCode::kResourceExhausted,
                "no encoding fits the flash budget: " +
                    std::to_string(r.requested_bytes) + " B requested (" +
                    EncodingKindName(r.requested) + ") vs " +
                    std::to_string(config.flash_size) + " B flash");
}

StatusOr<DeployedModel> DeployedModel::TryDeploy(const MlpModel& model,
                                                 const MachineConfig& config) {
  KernelSet probe = KernelSet::Build(
      PackMlpModel(model, kScratchFlashBase, config.ram_base).variants, config.flash_base);
  const uint32_t image_base = AlignUp4(config.flash_base +
                                       static_cast<uint32_t>(probe.code_bytes()) +
                                       static_cast<uint32_t>(kRuntimeOverheadBytes));
  DeviceModelImage image = PackMlpModel(model, image_base, config.ram_base);
  return DeployImage(std::move(image), std::move(probe), config, image_base);
}

namespace {

[[noreturn]] void AbortOnStatus(const Status& status) {
  if (status.fault() != nullptr) {
    std::fprintf(stderr, "%s\n", status.fault()->Describe().c_str());
  } else {
    std::fprintf(stderr, "deploy failed: %s\n", status.ToString().c_str());
  }
  std::abort();
}

}  // namespace

DeployedModel DeployedModel::Deploy(const NeuroCModel& model, const MachineConfig& config) {
  StatusOr<DeployedModel> dm = TryDeploy(model, config);
  if (!dm.ok()) AbortOnStatus(dm.status());
  return std::move(*dm);
}

DeployedModel DeployedModel::Deploy(const MlpModel& model, const MachineConfig& config) {
  StatusOr<DeployedModel> dm = TryDeploy(model, config);
  if (!dm.ok()) AbortOnStatus(dm.status());
  return std::move(*dm);
}

uint32_t DeployedModel::activation_top_addr() const {
  return machine_->config().ram_base + static_cast<uint32_t>(image_.ram_bytes_used);
}

StatusOr<int> DeployedModel::TryPredict(std::span<const int8_t> input) {
  NEUROC_CHECK(input.size() == image_.input_dim);
  machine_->LoadBytes(image_.input_addr,
                      std::span<const uint8_t>(
                          reinterpret_cast<const uint8_t*>(input.data()), input.size()));
  uint64_t cycles = 0;
  report_.layer_cycles.assign(image_.num_layers(), 0);
  for (size_t k = 0; k < image_.num_layers(); ++k) {
    // Watchdog supervision: each layer call gets whatever remains of the per-inference
    // cycle budget. A budget exhausted exactly on a layer boundary synthesizes the same
    // structured deadline fault the in-layer watchdog raises.
    uint64_t layer_budget = 0;
    if (watchdog_budget_ != 0) {
      if (cycles >= watchdog_budget_) {
        FaultReport report;
        report.code = ErrorCode::kDeadlineExceeded;
        report.message = "watchdog cycle deadline exceeded";
        report.pc = machine_->cpu().pc();
        report.cycles = machine_->cpu().cycles();
        report.instructions = machine_->cpu().instructions();
        return Status::FromFault(std::move(report));
      }
      layer_budget = watchdog_budget_ - cycles;
    }
    StatusOr<uint64_t> layer_cycles = machine_->TryCallFunction(
        layer_entries_[k], {image_.descriptor_addrs[k]}, layer_budget);
    if (!layer_cycles.ok()) {
      return layer_cycles.status();
    }
    report_.layer_cycles[k] = *layer_cycles;
    cycles += report_.layer_cycles[k];
  }
  report_.cycles_per_inference = cycles;
  report_.latency_ms = machine_->CyclesToMs(cycles);
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("runtime.inferences").Add(1);
  reg.GetCounter("runtime.inference_cycles").Add(cycles);
  const std::vector<int8_t> out = LastOutput();
  int best = 0;
  for (size_t i = 1; i < out.size(); ++i) {
    if (out[i] > out[best]) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

int DeployedModel::Predict(std::span<const int8_t> input) {
  StatusOr<int> best = TryPredict(input);
  if (!best.ok()) AbortOnStatus(best.status());
  return *best;
}

RecoveryReport DeployedModel::PredictWithRecovery(std::span<const int8_t> input) {
  RecoveryReport rr;
  StatusOr<int> first = TryPredict(input);
  if (first.ok()) {
    rr.prediction = *first;
    return rr;
  }
  rr.faulted = true;
  rr.fault = first.status().fault() != nullptr ? *first.status().fault() : FaultReport{};
  // Attribute the damage before scrubbing destroys the evidence; SRAM/transient faults
  // leave every flash section intact and the list empty.
  rr.corrupted_sections = CorruptedSections();
  Scrub();
  StatusOr<int> retry = TryPredict(input);
  if (retry.ok()) {
    rr.recovered = true;
    rr.prediction = *retry;
  }
  return rr;
}

Status DeployedModel::VerifyIntegrity() const {
  std::vector<std::string> bad = CorruptedSections();
  if (bad.empty()) {
    return Status::Ok();
  }
  std::string names;
  for (const std::string& name : bad) {
    if (!names.empty()) names += ", ";
    names += name;
  }
  return Status(ErrorCode::kIntegrityFailure,
                "integrity check failed: CRC mismatch in " + names);
}

std::vector<std::string> DeployedModel::CorruptedSections() const {
  std::vector<std::string> bad;
  std::vector<uint8_t> buf;
  auto check = [&](const std::string& name, uint32_t addr, uint32_t size, uint32_t want) {
    buf.resize(size);
    machine_->memory().HostRead(addr, std::span<uint8_t>(buf));
    if (Crc32(std::span<const uint8_t>(buf)) != want) {
      bad.push_back(name);
    }
  };
  check("kernel_code", kernels_.program().base_addr,
        static_cast<uint32_t>(kernels_.program().bytes.size()), kernel_crc_);
  for (const ImageSection& s : image_.sections) {
    check(s.name, image_base_ + s.offset, s.size, s.crc32);
  }
  return bad;
}

void DeployedModel::Scrub() {
  machine_->Restore(pristine_);
}

Status DeployedModel::ArmWatchdog(double headroom) {
  NEUROC_CHECK(headroom >= 1.0);
  DisarmWatchdog();
  // Calibration: one unsupervised golden inference (zero input — latency is
  // input-independent by construction, so it represents every input).
  std::vector<int8_t> zeros(image_.input_dim, 0);
  StatusOr<int> golden = TryPredict(zeros);
  if (!golden.ok()) {
    Scrub();
    return golden.status();
  }
  const uint64_t golden_cycles = report_.cycles_per_inference;
  // The +64 floor keeps the budget strictly above the golden count even at headroom 1.0,
  // so a clean inference can never trip its own deadline.
  watchdog_budget_ = std::max<uint64_t>(
      static_cast<uint64_t>(headroom * static_cast<double>(golden_cycles)),
      golden_cycles + 64);
  Scrub();  // undo the calibration run's side effects (SRAM, counters)
  return Status::Ok();
}

std::vector<int8_t> DeployedModel::LastOutput() {
  std::vector<int8_t> out(image_.output_dim);
  machine_->memory().HostRead(
      image_.output_addr,
      std::span<uint8_t>(reinterpret_cast<uint8_t*>(out.data()), out.size()));
  return out;
}

double DeployedModel::MeasureLatencyMs() {
  std::vector<int8_t> zeros(image_.input_dim, 0);
  Predict(zeros);
  return report_.latency_ms;
}

StatusOr<double> DeployedModel::TryMeasureLatencyMs() {
  std::vector<int8_t> zeros(image_.input_dim, 0);
  StatusOr<int> best = TryPredict(zeros);
  if (!best.ok()) {
    return best.status();
  }
  return report_.latency_ms;
}

}  // namespace neuroc
