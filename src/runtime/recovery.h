// Guarded execution: a recovery-policy ladder around DeployedModel inference.
//
// A GuardedModel wraps one deployed model with the full fault-tolerance stack:
//
//   - a watchdog (per-inference cycle budget, auto-calibrated golden × headroom) that
//     converts runaway execution into structured kDeadlineExceeded faults,
//   - optional redundant execution (RecoveryPolicy::dual_run): the inference runs twice —
//     SRAM and registers restored from the pristine snapshot between runs — and the
//     output vectors are byte-compared. A mismatch means state the second run did not
//     share (an SRAM upset, a mid-flight transient) corrupted the first: silent data
//     corruption becomes a detected fault. Persistent flash corruption affects both runs
//     identically and is NOT caught this way — that is the CRC rung's job.
//   - a recovery ladder walked on any detected fault (guest fault, watchdog deadline, or
//     dual-run mismatch), cheapest rung first. A rung succeeds only when its retry is
//     behaviorally clean AND the per-section flash CRCs pass — without the integrity
//     check, a RAM-only restore under persistent flash corruption yields a dual-run pair
//     that agrees on the same wrong output. Rungs:
//       1. kSnapshotRetry — restore SRAM + registers from the pristine deploy snapshot
//          (no flash rewrite, no decode-cache invalidation) and retry. Fixes transient
//          and SRAM-resident faults.
//       2. kScrubRetry   — attribute flash damage via the per-section CRCs, restore the
//          full pristine snapshot (flash included) and retry. Fixes flash corruption.
//       3. kRedeploy     — re-encode the model with the next encoding from the fallback
//          order (delta, mixed, csc, block — skipping the active one), deploy fresh and
//          retry. The last resort when a scrubbed machine still faults.
//       4. kPermanentFailure — structured give-up; the result carries the first fault.
//
// Every rung taken is counted in the MetricsRegistry (recovery.*). All decisions are
// deterministic functions of the machine state, so guarded inference composes with the
// campaign's byte-identical-at-any-thread-count requirement.

#ifndef NEUROC_SRC_RUNTIME_RECOVERY_H_
#define NEUROC_SRC_RUNTIME_RECOVERY_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/neuroc_model.h"
#include "src/runtime/deployed_model.h"

namespace neuroc {

enum class RecoveryRung : uint8_t {
  kNone = 0,          // no recovery needed (clean inference)
  kSnapshotRetry = 1, // SRAM+register restore from the pristine snapshot fixed it
  kScrubRetry = 2,    // full scrub (flash rewrite from snapshot) fixed it
  kRedeploy = 3,      // redeploy with a fallback encoding fixed it
  kPermanentFailure = 4,  // every enabled rung failed
};
const char* RecoveryRungName(RecoveryRung rung);

struct RecoveryPolicy {
  bool snapshot_retry = true;
  bool scrub_retry = true;
  bool redeploy = true;
  bool dual_run = false;           // redundant execution for SDC detection (~2x cycles)
  double watchdog_headroom = 8.0;  // cycle budget = golden × headroom; 0 disables
};

// Outcome of one guarded inference.
struct GuardedResult {
  int prediction = -1;       // valid when ok
  bool ok = false;           // a (possibly recovered) clean prediction was produced
  bool faulted = false;      // a guest/watchdog fault was observed at some point
  bool sdc_detected = false; // dual-run output mismatch caught silent corruption
  RecoveryRung resolved_by = RecoveryRung::kNone;
  FaultReport first_fault;   // meaningful when faulted
  std::vector<std::string> corrupted_sections;  // CRC attribution at first detection
  // Cycles from the start of the guarded inference to the detection of the first
  // fault/mismatch (0 when nothing was detected). Injection-relative latency is the
  // caller's subtraction: it knows when it injected.
  uint64_t detection_cycles = 0;
  int retries = 0;           // ladder retries performed (0 on the clean path)
  EncodingKind active_encoding = EncodingKind::kCsc;  // encoding that produced the result
};

class GuardedModel {
 public:
  // Takes ownership of `model` (NeuroCModel is move-only; the kRedeploy rung re-encodes
  // it), deploys it and arms the watchdog per `policy`. Fails with the deploy or
  // calibration status; never aborts on guest faults.
  static StatusOr<GuardedModel> Create(NeuroCModel model,
                                       const MachineConfig& config = {},
                                       const RecoveryPolicy& policy = {});

  // One guarded inference: watchdog-supervised (and dual-run, when enabled) execution
  // with the recovery ladder walked on any detected fault. Never aborts.
  GuardedResult Predict(std::span<const int8_t> input);

  // Batched entrypoint for the serving layer: runs `inputs` back-to-back on the one
  // deployed machine (the simulated MCU is single-core — batching amortizes host-side
  // dispatch, it cannot parallelize the guest). Each element gets the full guarded
  // treatment independently; `cycles` (when non-null) receives the per-inference
  // simulated cycle count of each successful element (0 on permanent failure). Results
  // are element-wise identical to calling Predict in a loop.
  std::vector<GuardedResult> PredictBatch(
      const std::vector<std::vector<int8_t>>& inputs,
      std::vector<uint64_t>* cycles = nullptr);

  // Re-deploys the original model/encoding if a previous Predict's kRedeploy rung left a
  // fallback encoding active. Campaign trials call this so every trial starts from an
  // identical deployment regardless of what earlier trials in the chunk hit.
  Status ResetToPrimary();

  DeployedModel& deployed() { return *dm_; }
  // Host copy of the (primary-encoding) model, e.g. for golden-prediction comparison.
  const NeuroCModel& model() const { return model_; }
  const RecoveryPolicy& policy() const { return policy_; }
  EncodingKind active_encoding() const { return active_encoding_; }
  EncodingKind primary_encoding() const { return primary_encoding_; }

 private:
  GuardedModel() = default;
  // Runs the (single or dual) inference once from the current machine state. On success
  // returns the prediction; `mismatch` reports a dual-run output divergence. `elapsed`
  // is the simulated cycles the attempt consumed (both runs in dual mode — restores
  // rewind the machine's cycle counter, so callers cannot reconstruct this themselves).
  StatusOr<int> RunOnce(std::span<const int8_t> input, bool* mismatch, uint64_t* elapsed);
  Status Redeploy(EncodingKind kind);

  NeuroCModel model_;      // host copy, re-encoded on the kRedeploy rung
  MachineConfig config_;
  RecoveryPolicy policy_;
  std::unique_ptr<DeployedModel> dm_;
  EncodingKind primary_encoding_ = EncodingKind::kCsc;
  EncodingKind active_encoding_ = EncodingKind::kCsc;
};

}  // namespace neuroc

#endif  // NEUROC_SRC_RUNTIME_RECOVERY_H_
