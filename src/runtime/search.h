// Automated architecture search for Neuro-C models — the systematic exploration the paper's
// discussion section names as future work ("automated search methods might be applied").
//
// RandomSearch samples (hidden widths × target density) configurations, trains each with
// fake quantization, quantizes, measures deployment metrics on the simulated target, and
// returns the accuracy/program-memory Pareto front among configurations satisfying the
// platform constraints (flash budget, latency budget).

#ifndef NEUROC_SRC_RUNTIME_SEARCH_H_
#define NEUROC_SRC_RUNTIME_SEARCH_H_

#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/runtime/platform.h"
#include "src/train/trainer.h"

namespace neuroc {

struct SearchSpace {
  std::vector<size_t> width_choices = {32, 64, 128, 256};
  int min_hidden_layers = 1;
  int max_hidden_layers = 2;
  std::vector<float> density_choices = {0.05f, 0.1f, 0.15f, 0.2f};
};

struct SearchConstraints {
  size_t max_program_bytes = 128 * 1024;
  double max_latency_ms = 1e9;  // unconstrained by default
};

struct SearchCandidate {
  NeuroCSpec spec;
  std::string description;     // e.g. "h[128,64] d=0.10"
  float accuracy = 0.0f;       // int8 accuracy on the validation set
  size_t program_bytes = 0;
  double latency_ms = 0.0;
  bool feasible = false;       // satisfies the constraints
  std::string fault;           // non-empty when the trial's deploy/measure faulted — the
                               // candidate is infeasible but the search itself survives
};

struct SearchResult {
  std::vector<SearchCandidate> candidates;  // every trial, in sample order
  std::vector<size_t> pareto;               // indices of the accuracy/memory Pareto front
                                            // among feasible candidates, by ascending bytes
  // Highest-accuracy feasible candidate (index into `candidates`), or -1 if none.
  int best = -1;
};

// Runs `trials` random configurations. Deterministic given `seed`. Already-sampled
// configurations are skipped (resampled), so trials are distinct when the space allows.
SearchResult RandomSearch(const Dataset& train, const Dataset& validation,
                          const SearchSpace& space, const SearchConstraints& constraints,
                          int trials, const TrainConfig& train_cfg, uint64_t seed,
                          const PlatformSpec& platform = Stm32f072rb());

}  // namespace neuroc

#endif  // NEUROC_SRC_RUNTIME_SEARCH_H_
