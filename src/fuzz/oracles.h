// The four differential-testing oracles. Each oracle is a pair of pure functions over
// FuzzCase: a generator (case_seed -> fully explicit case) and a runner (case -> verdict).
// Runners never mutate global state and derive every random draw from the case's seed, so
// a case behaves identically whether it runs inside a parallel campaign, a corpus replay,
// or a minimizer probe.
//
//   kernel  host NeuroCModel/MlpModel inference vs the simulated Thumb kernels, with the
//           predecode cache on and off: outputs must match the host byte-for-byte and the
//           two cache modes must report identical cycle counts.
//   isa     random halfwords: valid decodes must fix-point through encode -> decode (and,
//           for textually round-trippable ops, disassemble -> assemble -> decode), and
//           every halfword — valid or not — must execute or fault *structurally* on the
//           simulated CPU (Status/FaultReport, never a host abort).
//   serde   random models: serialize -> deserialize -> re-serialize must be lossless and
//           the reloaded model must deploy and predict identically; seeded single-bit
//           mutations must be rejected with a structured error (CRC on v2 images).
//   frame   serve wire frames: valid frames must decode -> re-encode byte-identically
//           (whole-buffer and split-fed through FrameReader alike); truncated, bit-
//           flipped, oversized-length, trailing-garbage and random-byte frames must
//           yield structured errors — never a hang, allocation blow-up or host abort.

#ifndef NEUROC_SRC_FUZZ_ORACLES_H_
#define NEUROC_SRC_FUZZ_ORACLES_H_

#include <string>
#include <vector>

#include "src/fuzz/fuzz_case.h"

namespace neuroc {

enum class FuzzVerdict : uint8_t {
  kPass = 0,
  kSkip = 1,  // infeasible configuration (e.g. model does not fit the device)
  kFail = 2,
};
const char* FuzzVerdictName(FuzzVerdict verdict);

struct CaseResult {
  FuzzVerdict verdict = FuzzVerdict::kPass;
  std::string detail;  // deterministic failure cause / skip reason; empty on pass
};

FuzzCase GenerateKernelCase(uint64_t case_seed);
FuzzCase GenerateIsaCase(uint64_t case_seed);
FuzzCase GenerateSerdeCase(uint64_t case_seed);
FuzzCase GenerateFrameCase(uint64_t case_seed);
FuzzCase GenerateFuzzCase(FuzzOracle oracle, uint64_t case_seed);

CaseResult RunKernelCase(const FuzzCase& c);
CaseResult RunIsaCase(const FuzzCase& c);
CaseResult RunSerdeCase(const FuzzCase& c);
CaseResult RunFrameCase(const FuzzCase& c);
CaseResult RunFuzzCase(const FuzzCase& c);

// The concrete input vectors a kernel case runs (the single explicit_input when set,
// otherwise the inputs drawn from the case's input stream). Exposed so the minimizer can
// materialize a drawn input into explicit_input before shrinking it.
std::vector<std::vector<int8_t>> KernelCaseInputs(const FuzzCase& c);

}  // namespace neuroc

#endif  // NEUROC_SRC_FUZZ_ORACLES_H_
