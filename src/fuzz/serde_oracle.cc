#include <string>
#include <utility>
#include <vector>

#include "src/core/model_serde.h"
#include "src/core/synthetic.h"
#include "src/fuzz/oracles.h"
#include "src/runtime/deployed_model.h"

namespace neuroc {

namespace {

// v2 image -> its v1 (pre-CRC) form: version byte back to '1', trailer dropped. Mirrors
// what a v1-era writer produced; the deserializer keeps accepting both.
std::vector<uint8_t> ToLegacyV1(std::vector<uint8_t> bytes) {
  if (bytes.size() < 8 || bytes[3] != '2') {
    return bytes;
  }
  bytes[3] = '1';
  bytes.resize(bytes.size() - 4);
  return bytes;
}

bool IsDenseCase(const FuzzCase& c) {
  for (int e : c.layer_encodings) {
    if (e == kDenseBaselineEncoding) return true;
  }
  return false;
}

template <typename Model>
Model BuildSerdeModel(const FuzzCase& c, Rng& rng);

template <>
MlpModel BuildSerdeModel<MlpModel>(const FuzzCase& c, Rng& rng) {
  std::vector<QuantDenseLayer> layers;
  for (size_t l = 0; l + 1 < c.dims.size(); ++l) {
    const bool last = l + 2 == c.dims.size();
    layers.push_back(MakeSyntheticDenseLayer(c.dims[l], c.dims[l + 1], /*relu=*/!last,
                                             c.requant_shift, rng));
  }
  return MlpModel::FromLayers(std::move(layers));
}

template <>
NeuroCModel BuildSerdeModel<NeuroCModel>(const FuzzCase& c, Rng& rng) {
  std::vector<QuantNeuroCLayer> layers;
  for (size_t l = 0; l + 1 < c.dims.size(); ++l) {
    SyntheticNeuroCLayerSpec spec;
    spec.in_dim = c.dims[l];
    spec.out_dim = c.dims[l + 1];
    spec.density = static_cast<double>(c.density_ppm) * 1e-6;
    spec.encoding = static_cast<EncodingKind>(c.layer_encodings[l]);
    spec.encoding_options.block_size = c.block_size;
    spec.has_scale = c.has_scale;
    spec.relu = l + 2 < c.dims.size();
    spec.requant_shift = c.requant_shift;
    layers.push_back(MakeSyntheticNeuroCLayer(spec, rng));
  }
  return NeuroCModel::FromLayers(std::move(layers));
}

template <typename Model>
StatusOr<Model> DeserializeAs(std::span<const uint8_t> bytes);
template <>
StatusOr<MlpModel> DeserializeAs<MlpModel>(std::span<const uint8_t> bytes) {
  return DeserializeMlpModel(bytes);
}
template <>
StatusOr<NeuroCModel> DeserializeAs<NeuroCModel>(std::span<const uint8_t> bytes) {
  return DeserializeNeuroCModel(bytes);
}

template <typename Model>
CaseResult RunSerdeCaseT(const FuzzCase& c) {
  Rng mrng(FuzzSubSeed(c.case_seed, 1));
  const Model model = BuildSerdeModel<Model>(c, mrng);
  const std::vector<uint8_t> v2 = SerializeModel(model);
  Rng srng(FuzzSubSeed(c.case_seed, 3));  // mutation positions + parity inputs

  if (c.mutate) {
    std::vector<uint8_t> mutated = c.legacy_v1 ? ToLegacyV1(v2) : v2;
    const size_t pos = srng.NextBounded(mutated.size());
    const uint8_t mask = static_cast<uint8_t>(1u << srng.NextBounded(8));
    mutated[pos] ^= mask;
    const std::string where =
        " (byte " + std::to_string(pos) + " ^ " + std::to_string(mask) + ")";
    StatusOr<Model> des = DeserializeAs<Model>(mutated);
    if (!c.legacy_v1) {
      // Every v2 byte is covered by the CRC-32 trailer (or *is* the trailer): a single
      // bit flip must never load.
      if (des.ok()) {
        return {FuzzVerdict::kFail, "corrupted v2 image accepted" + where};
      }
      if (des.status().code() != ErrorCode::kIntegrityFailure &&
          des.status().code() != ErrorCode::kMalformedImage) {
        return {FuzzVerdict::kFail, "corrupted v2 image raised wrong error" + where +
                                        ": " + des.status().ToString()};
      }
      return {};
    }
    // v1 has no integrity trailer: a flip may load as a structurally plausible model.
    // The contract is weaker but still structural — either a structured rejection, or a
    // model that can run and re-serialize without host crashes.
    if (!des.ok()) {
      if (des.status().code() != ErrorCode::kMalformedImage &&
          des.status().code() != ErrorCode::kIntegrityFailure) {
        return {FuzzVerdict::kFail, "corrupted v1 image raised wrong error" + where +
                                        ": " + des.status().ToString()};
      }
      return {};
    }
    if (des->in_dim() > 0) {
      const std::vector<int8_t> probe = MakeRandomInput(des->in_dim(), srng);
      std::vector<int8_t> out;
      des->Forward(probe, out);
    }
    (void)SerializeModel(*des);
    return {};
  }

  // Round-trip leg: load (v2 or v1 form) -> re-serialize losslessly -> predict and deploy
  // identically to the original.
  const std::vector<uint8_t> working = c.legacy_v1 ? ToLegacyV1(v2) : v2;
  StatusOr<Model> des = DeserializeAs<Model>(working);
  if (!des.ok()) {
    return {FuzzVerdict::kFail, "round-trip load failed: " + des.status().ToString()};
  }
  if (SerializeModel(*des) != v2) {
    return {FuzzVerdict::kFail, "serialize(deserialize(image)) != image"};
  }
  std::vector<int8_t> expected;
  std::vector<int8_t> got;
  std::vector<int8_t> first_input;
  for (int i = 0; i < 2; ++i) {
    const std::vector<int8_t> input = MakeRandomInput(model.in_dim(), srng);
    if (i == 0) first_input = input;
    model.Forward(input, expected);
    des->Forward(input, got);
    if (got != expected) {
      return {FuzzVerdict::kFail,
              "reloaded model output != original (input " + std::to_string(i) + ")"};
    }
  }
  auto deployed_or = DeployedModel::TryDeploy(*des);
  if (!deployed_or.ok()) {
    if (deployed_or.status().code() == ErrorCode::kResourceExhausted) {
      return {FuzzVerdict::kSkip, "resource_exhausted: model does not fit the device"};
    }
    return {FuzzVerdict::kFail,
            "reloaded model failed to deploy: " + deployed_or.status().ToString()};
  }
  DeployedModel deployed = std::move(*deployed_or);
  model.Forward(first_input, expected);
  const StatusOr<int> pred = deployed.TryPredict(first_input);
  if (!pred.ok()) {
    return {FuzzVerdict::kFail,
            "reloaded model faulted on device: " + pred.status().ToString()};
  }
  if (deployed.LastOutput() != expected) {
    return {FuzzVerdict::kFail, "deployed reloaded model output != host original"};
  }
  return {};
}

}  // namespace

FuzzCase GenerateSerdeCase(uint64_t case_seed) {
  FuzzCase c;
  c.oracle = FuzzOracle::kSerde;
  c.case_seed = case_seed;
  Rng g(FuzzSubSeed(case_seed, 0));

  const bool dense = g.NextBool(0.2);
  const size_t n_layers = 1 + g.NextBounded(3);
  c.dims.push_back(static_cast<uint32_t>(1 + g.NextBounded(96)));
  for (size_t l = 0; l < n_layers; ++l) {
    c.dims.push_back(static_cast<uint32_t>(1 + g.NextBounded(64)));
    c.layer_encodings.push_back(dense ? kDenseBaselineEncoding
                                      : static_cast<int>(g.NextBounded(5)));
  }
  c.density_ppm = static_cast<uint32_t>(50'000 + g.NextBounded(700'001));
  c.block_size = static_cast<uint32_t>(16 + g.NextBounded(240));
  c.has_scale = g.NextBool(0.8);
  c.requant_shift = static_cast<int>(g.NextInt(4, 10));
  c.legacy_v1 = g.NextBool(0.25);
  c.mutate = g.NextBool(0.5);
  return c;
}

CaseResult RunSerdeCase(const FuzzCase& c) {
  if (c.dims.size() < 2 || c.layer_encodings.size() != c.dims.size() - 1) {
    return {FuzzVerdict::kFail, "invalid serde case: bad dimension chain"};
  }
  if (IsDenseCase(c)) {
    for (int e : c.layer_encodings) {
      if (e != kDenseBaselineEncoding) {
        return {FuzzVerdict::kFail, "invalid serde case: mixed dense/sparse layers"};
      }
    }
    return RunSerdeCaseT<MlpModel>(c);
  }
  return RunSerdeCaseT<NeuroCModel>(c);
}

}  // namespace neuroc
