#include "src/fuzz/oracles.h"

namespace neuroc {

const char* FuzzVerdictName(FuzzVerdict verdict) {
  switch (verdict) {
    case FuzzVerdict::kPass: return "pass";
    case FuzzVerdict::kSkip: return "skip";
    case FuzzVerdict::kFail: return "fail";
  }
  return "unknown";
}

FuzzCase GenerateFuzzCase(FuzzOracle oracle, uint64_t case_seed) {
  switch (oracle) {
    case FuzzOracle::kKernel: return GenerateKernelCase(case_seed);
    case FuzzOracle::kIsa: return GenerateIsaCase(case_seed);
    case FuzzOracle::kSerde: return GenerateSerdeCase(case_seed);
    case FuzzOracle::kFrame: return GenerateFrameCase(case_seed);
  }
  return {};
}

CaseResult RunFuzzCase(const FuzzCase& c) {
  switch (c.oracle) {
    case FuzzOracle::kKernel: return RunKernelCase(c);
    case FuzzOracle::kIsa: return RunIsaCase(c);
    case FuzzOracle::kSerde: return RunSerdeCase(c);
    case FuzzOracle::kFrame: return RunFrameCase(c);
  }
  return {FuzzVerdict::kFail, "unknown oracle"};
}

}  // namespace neuroc
