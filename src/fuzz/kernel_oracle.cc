#include <string>
#include <utility>
#include <vector>

#include "src/core/synthetic.h"
#include "src/fuzz/oracles.h"
#include "src/runtime/deployed_model.h"

namespace neuroc {

namespace {

// One reference/device comparison across all three simulator decode paths. `block` runs
// block-compiled execution (the deploy default), `cached` the predecoded-instruction path
// with block fusion off, `legacy` the decode-every-step interpreter — all must agree with
// the host byte-for-byte, and with each other on cycle counts (both the predecode cache
// and block compilation are pure performance transforms).
template <typename Model>
CaseResult CompareAgainstHost(const FuzzCase& c, const Model& model) {
  auto block_or = DeployedModel::TryDeploy(model);
  auto cached_or = DeployedModel::TryDeploy(model);
  auto legacy_or = DeployedModel::TryDeploy(model);
  for (const auto* d : {&block_or, &cached_or, &legacy_or}) {
    if (!d->ok()) {
      if (d->status().code() == ErrorCode::kResourceExhausted) {
        return {FuzzVerdict::kSkip, "resource_exhausted: model does not fit the device"};
      }
      return {FuzzVerdict::kFail, "deploy failed: " + d->status().ToString()};
    }
  }
  struct Mode {
    const char* name;
    DeployedModel deployed;
  };
  Mode modes[] = {{"block", std::move(*block_or)},
                  {"cached", std::move(*cached_or)},
                  {"legacy", std::move(*legacy_or)}};
  modes[1].deployed.machine().cpu().EnableBlockCompile(false);
  modes[2].deployed.machine().cpu().EnableDecodeCache(false);

  const std::vector<std::vector<int8_t>> inputs = KernelCaseInputs(c);
  std::vector<int8_t> expected;
  for (size_t i = 0; i < inputs.size(); ++i) {
    const std::string which = " (input " + std::to_string(i) + ")";
    model.Forward(inputs[i], expected);
    const int host_pred = model.Predict(inputs[i]);

    uint64_t block_cycles = 0;
    for (Mode& mode : modes) {
      const std::string where = std::string(", decode mode ") + mode.name + which;
      const StatusOr<int> pred = mode.deployed.TryPredict(inputs[i]);
      if (!pred.ok()) {
        return {FuzzVerdict::kFail, "guest fault" + where + ": " + pred.status().ToString()};
      }
      if (mode.deployed.LastOutput() != expected) {
        return {FuzzVerdict::kFail, "sim output != host output" + where};
      }
      if (*pred != host_pred) {
        return {FuzzVerdict::kFail, "sim argmax != host argmax" + where};
      }
      const uint64_t cycles = mode.deployed.report().cycles_per_inference;
      if (&mode == &modes[0]) {
        block_cycles = cycles;
      } else if (cycles != block_cycles) {
        return {FuzzVerdict::kFail,
                "cycle count differs between decode modes" + which + ": block=" +
                    std::to_string(block_cycles) + " " + mode.name + "=" +
                    std::to_string(cycles)};
      }
    }
  }
  return {};
}

}  // namespace

FuzzCase GenerateKernelCase(uint64_t case_seed) {
  FuzzCase c;
  c.oracle = FuzzOracle::kKernel;
  c.case_seed = case_seed;
  Rng g(FuzzSubSeed(case_seed, 0));

  c.encoding = static_cast<int>(g.NextBounded(6));  // five sparse encodings + dense q7
  // Bucketed widths: the small buckets hit degenerate shapes (empty columns, single
  // neurons), the large ones push past 255 inputs where encodings switch to 16-bit
  // index arithmetic.
  switch (g.NextBounded(4)) {
    case 0: c.in_dim = static_cast<uint32_t>(1 + g.NextBounded(12)); break;
    case 1: c.in_dim = static_cast<uint32_t>(13 + g.NextBounded(52)); break;
    case 2: c.in_dim = static_cast<uint32_t>(65 + g.NextBounded(96)); break;
    default: c.in_dim = static_cast<uint32_t>(161 + g.NextBounded(160)); break;
  }
  switch (g.NextBounded(3)) {
    case 0: c.out_dim = static_cast<uint32_t>(1 + g.NextBounded(8)); break;
    case 1: c.out_dim = static_cast<uint32_t>(9 + g.NextBounded(24)); break;
    default: c.out_dim = static_cast<uint32_t>(33 + g.NextBounded(16)); break;
  }
  c.density_ppm = static_cast<uint32_t>(20'000 + g.NextBounded(930'001));
  c.block_size = static_cast<uint32_t>(16 + g.NextBounded(240));
  c.has_scale = g.NextBool(0.8);
  c.relu = g.NextBool(0.5);
  // Keep out_frac = in_frac + scale_frac - requant_shift non-negative in both scale modes.
  c.requant_shift = static_cast<int>(g.NextInt(0, c.has_scale ? 12 : 7));
  c.input_dist = static_cast<InputDist>(g.NextBounded(4));
  return c;
}

std::vector<std::vector<int8_t>> KernelCaseInputs(const FuzzCase& c) {
  if (!c.explicit_input.empty()) {
    return {c.explicit_input};
  }
  Rng rng(FuzzSubSeed(c.case_seed, 2));
  std::vector<std::vector<int8_t>> inputs;
  for (int i = 0; i < 3; ++i) {
    inputs.push_back(MakeRandomInput(c.in_dim, c.input_dist, rng));
  }
  return inputs;
}

CaseResult RunKernelCase(const FuzzCase& c) {
  if (c.in_dim == 0 || c.out_dim == 0) {
    return {FuzzVerdict::kFail, "invalid kernel case: zero dimension"};
  }
  if (!c.explicit_input.empty() && c.explicit_input.size() != c.in_dim) {
    return {FuzzVerdict::kFail, "invalid kernel case: input length != in_dim"};
  }
  Rng mrng(FuzzSubSeed(c.case_seed, 1));
  if (c.encoding == kDenseBaselineEncoding) {
    std::vector<QuantDenseLayer> layers;
    layers.push_back(
        MakeSyntheticDenseLayer(c.in_dim, c.out_dim, c.relu, c.requant_shift, mrng));
    const MlpModel model = MlpModel::FromLayers(std::move(layers));
    return CompareAgainstHost(c, model);
  }
  SyntheticNeuroCLayerSpec spec;
  spec.in_dim = c.in_dim;
  spec.out_dim = c.out_dim;
  spec.density = static_cast<double>(c.density_ppm) * 1e-6;
  spec.encoding = static_cast<EncodingKind>(c.encoding);
  spec.encoding_options.block_size = c.block_size;
  spec.has_scale = c.has_scale;
  spec.relu = c.relu;
  spec.requant_shift = c.requant_shift;
  std::vector<QuantNeuroCLayer> layers;
  layers.push_back(MakeSyntheticNeuroCLayer(spec, mrng));
  const NeuroCModel model = NeuroCModel::FromLayers(std::move(layers));
  return CompareAgainstHost(c, model);
}

}  // namespace neuroc
