// Seeded differential fuzzing campaigns. A campaign runs N generated cases against one
// oracle on the shared thread pool; every case derives its stream from (seed, index) with
// a SplitMix64 finalizer and writes into a pre-sized result slot, and failure
// minimization/corpus emission run sequentially in case order afterwards — so the whole
// campaign, including the JSON report, is byte-identical at any NEUROC_NUM_THREADS.

#ifndef NEUROC_SRC_FUZZ_FUZZ_H_
#define NEUROC_SRC_FUZZ_FUZZ_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/fuzz/minimize.h"
#include "src/fuzz/oracles.h"

namespace neuroc {

struct FuzzConfig {
  FuzzOracle oracle = FuzzOracle::kKernel;
  uint64_t seed = 1;
  int cases = 256;
  bool minimize = true;
  int max_minimize_attempts = 256;
  // When non-empty, each failure's minimized case is written here as
  // <oracle>_s<seed>_i<index>.fuzzcase (the replayable corpus format).
  std::string corpus_dir;
};

struct FuzzFailure {
  uint64_t index = 0;      // campaign case index
  uint64_t case_seed = 0;  // SplitMix64(seed, index) — replays via `--case-seed`
  std::string detail;      // first failure detail of the original case
  FuzzCase original;
  FuzzCase minimized;            // == original when minimization is off or fruitless
  std::string minimized_detail;  // failure detail of the minimized case
  MinimizeStats minimize_stats;
  std::string corpus_file;  // path written, or empty
};

struct FuzzCampaignResult {
  FuzzConfig config;
  uint64_t passed = 0;
  uint64_t skipped = 0;
  uint64_t failed = 0;
  std::vector<FuzzFailure> failures;  // in case-index order
};

FuzzCampaignResult RunFuzzCampaign(const FuzzConfig& config);

// Deterministic JSON report (byte-identical across thread counts for a fixed config).
std::string FuzzCampaignJson(const FuzzCampaignResult& result);

// One-command repro for a failure: replays the corpus file when one was written, else
// regenerates the single case from its seed.
std::string FuzzReproCommand(const FuzzFailure& failure);

}  // namespace neuroc

#endif  // NEUROC_SRC_FUZZ_FUZZ_H_
