#include "src/fuzz/minimize.h"

#include <algorithm>

#include "src/fuzz/oracles.h"

namespace neuroc {

namespace {

// Dimension shrink that keeps an explicit input (if any) consistent with in_dim.
FuzzCase WithInDim(const FuzzCase& c, uint32_t in_dim) {
  FuzzCase v = c;
  v.in_dim = in_dim;
  if (!v.explicit_input.empty()) {
    v.explicit_input.resize(in_dim);
  }
  return v;
}

void KernelShrinks(const FuzzCase& c, std::vector<FuzzCase>& out) {
  if (c.out_dim > 1) {
    FuzzCase v = c;
    v.out_dim = std::max<uint32_t>(1, c.out_dim / 2);
    out.push_back(v);
    v = c;
    v.out_dim = c.out_dim - 1;
    out.push_back(v);
  }
  if (c.in_dim > 1) {
    out.push_back(WithInDim(c, std::max<uint32_t>(1, c.in_dim / 2)));
    out.push_back(WithInDim(c, c.in_dim - 1));
  }
  if (c.density_ppm > 20'000) {
    FuzzCase v = c;
    v.density_ppm = std::max<uint32_t>(20'000, c.density_ppm / 2);
    out.push_back(v);
  }
  if (c.relu) {
    FuzzCase v = c;
    v.relu = false;
    out.push_back(v);
  }
  if (c.has_scale) {
    FuzzCase v = c;
    v.has_scale = false;
    v.requant_shift = std::min(v.requant_shift, 7);  // keep out_frac non-negative
    out.push_back(v);
  }
  if (c.requant_shift != 0) {
    FuzzCase v = c;
    v.requant_shift = 0;
    out.push_back(v);
  }
  if (c.encoding == static_cast<int>(EncodingKind::kBlock) && c.block_size != 255) {
    FuzzCase v = c;
    v.block_size = 255;
    out.push_back(v);
  }
  if (c.explicit_input.empty()) {
    // Materialize each drawn input: a single concrete vector is both a simpler repro and
    // the prerequisite for zeroing segments below.
    if (c.input_dist != InputDist::kUniform) {
      FuzzCase v = c;
      v.input_dist = InputDist::kUniform;
      out.push_back(v);
    }
    for (const std::vector<int8_t>& input : KernelCaseInputs(c)) {
      FuzzCase v = c;
      v.explicit_input = input;
      out.push_back(v);
    }
  } else {
    // Zero out halves of the explicit input (greedy restarts narrow this further).
    const size_t n = c.explicit_input.size();
    for (const auto& [lo, hi] : {std::pair<size_t, size_t>{0, n / 2},
                                 std::pair<size_t, size_t>{n / 2, n}}) {
      bool any_nonzero = false;
      for (size_t i = lo; i < hi; ++i) {
        any_nonzero |= c.explicit_input[i] != 0;
      }
      if (!any_nonzero) continue;
      FuzzCase v = c;
      std::fill(v.explicit_input.begin() + static_cast<ptrdiff_t>(lo),
                v.explicit_input.begin() + static_cast<ptrdiff_t>(hi), int8_t{0});
      out.push_back(v);
    }
  }
}

void IsaShrinks(const FuzzCase& c, std::vector<FuzzCase>& out) {
  if (c.hw2 != 0) {
    FuzzCase v = c;
    v.hw2 = 0;
    out.push_back(v);
  }
}

void SerdeShrinks(const FuzzCase& c, std::vector<FuzzCase>& out) {
  if (c.dims.size() > 2) {
    FuzzCase v = c;
    v.dims.pop_back();
    v.layer_encodings.pop_back();
    out.push_back(v);
  }
  for (size_t i = 0; i < c.dims.size(); ++i) {
    if (c.dims[i] > 1) {
      FuzzCase v = c;
      v.dims[i] = std::max<uint32_t>(1, c.dims[i] / 2);
      out.push_back(v);
    }
  }
  if (c.has_scale) {
    FuzzCase v = c;
    v.has_scale = false;
    out.push_back(v);
  }
  if (c.density_ppm > 50'000) {
    FuzzCase v = c;
    v.density_ppm = std::max<uint32_t>(50'000, c.density_ppm / 2);
    out.push_back(v);
  }
}

// A frame case has one knob worth shrinking: a failing response-frame case is tried as
// the (smaller) request frame. Everything else lives in the seed-derived byte stream,
// which is not meaningfully shrinkable without changing what the case tests.
void FrameShrinks(const FuzzCase& c, std::vector<FuzzCase>& out) {
  if (c.frame_kind != 0) {
    FuzzCase v = c;
    v.frame_kind = 0;
    out.push_back(v);
  }
}

}  // namespace

std::vector<FuzzCase> ShrinkCandidates(const FuzzCase& c) {
  std::vector<FuzzCase> out;
  switch (c.oracle) {
    case FuzzOracle::kKernel: KernelShrinks(c, out); break;
    case FuzzOracle::kIsa: IsaShrinks(c, out); break;
    case FuzzOracle::kSerde: SerdeShrinks(c, out); break;
    case FuzzOracle::kFrame: FrameShrinks(c, out); break;
  }
  return out;
}

FuzzCase MinimizeFuzzCase(const FuzzCase& failing,
                          const std::function<bool(const FuzzCase&)>& still_fails,
                          int max_attempts, MinimizeStats* stats) {
  FuzzCase best = failing;
  MinimizeStats local;
  bool improved = true;
  while (improved && local.attempts < max_attempts) {
    improved = false;
    for (const FuzzCase& cand : ShrinkCandidates(best)) {
      if (local.attempts >= max_attempts) break;
      ++local.attempts;
      if (still_fails(cand)) {
        best = cand;
        ++local.reductions;
        improved = true;
        break;
      }
    }
  }
  if (stats != nullptr) {
    *stats = local;
  }
  return best;
}

}  // namespace neuroc
