#include <string>

#include "src/fuzz/oracles.h"
#include "src/isa/assembler.h"
#include "src/isa/decoder.h"
#include "src/isa/disassembler.h"
#include "src/isa/encoder.h"
#include "src/sim/machine.h"

namespace neuroc {

namespace {

std::string HwName(uint16_t hw) {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "0x%04X", hw);
  return buf;
}

bool SameInstr(const Instr& a, const Instr& b) {
  return a.op == b.op && a.rd == b.rd && a.rn == b.rn && a.rm == b.rm && a.imm == b.imm &&
         a.reglist == b.reglist && a.cond == b.cond && a.length == b.length;
}

// Ops whose canonical disassembly is not accepted back by the assembler. An exhaustive
// 64K-halfword sweep (both 16-bit paths and BL-matching second halfwords) leaves exactly
// one: kAdr disassembles as "adr rd, #imm" but the assembler's adr production only takes
// a label/address operand. Everything else — including push/pop/ldm/stm register lists,
// hi-register aliases, pc-relative loads and all branch forms — text-round-trips; kAdr
// still goes through the binary encode->decode fix-point above.
bool TextRoundTrips(Op op) { return op != Op::kAdr; }

}  // namespace

FuzzCase GenerateIsaCase(uint64_t case_seed) {
  FuzzCase c;
  c.oracle = FuzzOracle::kIsa;
  c.case_seed = case_seed;
  Rng g(FuzzSubSeed(case_seed, 0));
  c.hw1 = static_cast<uint16_t>(g.NextU64() & 0xFFFF);
  c.hw2 = static_cast<uint16_t>(g.NextU64() & 0xFFFF);
  // Uniform halfwords land in the 32-bit BL prefix space only ~1/32 of the time; bias a
  // quarter of cases there so the two-halfword decode path gets real coverage.
  if (g.NextBool(0.25)) {
    c.hw1 = static_cast<uint16_t>(0xF000 | (c.hw1 & 0x7FF));
  }
  return c;
}

CaseResult RunIsaCase(const FuzzCase& c) {
  const Instr d = DecodeInstr(c.hw1, c.hw2);
  const std::string hws = HwName(c.hw1) + "/" + HwName(c.hw2);

  // Structural-fault leg: every halfword — valid or not — must either execute cleanly or
  // raise a structured guest fault. A NEUROC_CHECK abort anywhere in the decode/execute
  // path would kill the fuzzer process, which is exactly the signal this leg exists for.
  MachineConfig mc;
  mc.max_instructions = 64;  // random control flow may loop; keep runaways cheap
  Machine m(mc);
  const std::vector<uint8_t> prog = {
      static_cast<uint8_t>(c.hw1 & 0xFF), static_cast<uint8_t>(c.hw1 >> 8),
      static_cast<uint8_t>(c.hw2 & 0xFF), static_cast<uint8_t>(c.hw2 >> 8),
      0x70, 0x47,  // bx lr
  };
  m.LoadBytes(mc.flash_base, prog);
  const StatusOr<uint64_t> run = m.TryCallFunction(mc.flash_base, {});
  if (d.op == Op::kInvalid || d.op == Op::kUdf) {
    // The undecodable (or explicit UDF) halfword is the first instruction executed: the
    // machine must report exactly an undefined-instruction fault.
    if (run.ok()) {
      return {FuzzVerdict::kFail, "invalid/udf halfword executed cleanly: " + hws};
    }
    if (run.status().code() != ErrorCode::kUndefinedInstruction) {
      return {FuzzVerdict::kFail, "invalid/udf halfword raised wrong fault: " + hws +
                                      ": " + run.status().ToString()};
    }
  }
  // Valid instructions may do anything structured (return, fault on a wild access, hit
  // the budget); TryCallFunction has already converted any of those into Status.

  if (d.op == Op::kInvalid) {
    return {};
  }

  // Binary fix-point: decode(encode(decode(hw))) must reproduce the decoded fields.
  // (Raw halfwords may legitimately differ — the decoder ignores should-be-zero bits —
  // so the comparison is on the canonical decoded form.)
  uint16_t enc[2] = {0, 0};
  const int enc_len = EncodeInstr(d, enc);
  if (enc_len != d.length) {
    return {FuzzVerdict::kFail,
            "encode length != decode length for " + hws + " (" + OpName(d.op) + ")"};
  }
  const Instr d2 = DecodeInstr(enc[0], enc_len == 2 ? enc[1] : 0);
  if (!SameInstr(d, d2)) {
    return {FuzzVerdict::kFail, "encode/decode fix-point mismatch for " + hws + " (" +
                                    OpName(d.op) + " -> " + OpName(d2.op) + ")"};
  }

  // Text fix-point: disassemble -> assemble -> decode -> disassemble must reproduce the
  // text for ops within the assembler's vocabulary.
  if (TextRoundTrips(d.op)) {
    const uint32_t base = mc.flash_base;
    const std::string text = Disassemble(d, base);
    const AssembledProgram p = Assemble(text + "\n", base);
    if (p.bytes.size() != static_cast<size_t>(2 * d.length)) {
      return {FuzzVerdict::kFail,
              "assembler emitted wrong length for '" + text + "' (" + hws + ")"};
    }
    const uint16_t ahw1 = static_cast<uint16_t>(p.bytes[0] | (p.bytes[1] << 8));
    const uint16_t ahw2 = d.length == 2
                              ? static_cast<uint16_t>(p.bytes[2] | (p.bytes[3] << 8))
                              : uint16_t{0};
    const Instr da = DecodeInstr(ahw1, ahw2);
    const std::string text2 = Disassemble(da, base);
    if (text2 != text) {
      return {FuzzVerdict::kFail, "assembler text fix-point mismatch for " + hws + ": '" +
                                      text + "' -> '" + text2 + "'"};
    }
  }
  return {};
}

}  // namespace neuroc
