#include "src/fuzz/fuzz.h"

#include <cinttypes>
#include <cstdio>

#include "src/common/check.h"
#include "src/common/thread_pool.h"
#include "src/obs/json_writer.h"
#include "src/obs/registry.h"

namespace neuroc {

namespace {

// Campaign grain: kernel/serde cases deploy a model (milliseconds each), ISA cases are
// microseconds — chunk the cheap ones so pool bookkeeping doesn't dominate.
size_t GrainFor(FuzzOracle oracle) {
  switch (oracle) {
    case FuzzOracle::kKernel: return 2;
    case FuzzOracle::kIsa: return 64;
    case FuzzOracle::kSerde: return 4;
    case FuzzOracle::kFrame: return 64;
  }
  return 8;
}

std::string HexSeed(uint64_t seed) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, seed);
  return buf;
}

}  // namespace

FuzzCampaignResult RunFuzzCampaign(const FuzzConfig& config) {
  NEUROC_CHECK(config.cases >= 0);
  FuzzCampaignResult result;
  result.config = config;

  const size_t total = static_cast<size_t>(config.cases);
  std::vector<CaseResult> records(total);

  // Parallel phase: each case owns slot records[t]; generation and execution derive all
  // randomness from (seed, t), so chunk boundaries and thread count cannot leak in.
  ParallelFor(0, total, GrainFor(config.oracle), [&](size_t t0, size_t t1) {
    for (size_t t = t0; t < t1; ++t) {
      records[t] = RunFuzzCase(GenerateFuzzCase(config.oracle, FuzzSubSeed(config.seed, t)));
    }
  });

  // Sequential phase, in case order: counting, minimization, corpus emission.
  for (size_t t = 0; t < total; ++t) {
    switch (records[t].verdict) {
      case FuzzVerdict::kPass: ++result.passed; continue;
      case FuzzVerdict::kSkip: ++result.skipped; continue;
      case FuzzVerdict::kFail: break;
    }
    ++result.failed;
    FuzzFailure f;
    f.index = t;
    f.case_seed = FuzzSubSeed(config.seed, t);
    f.detail = records[t].detail;
    f.original = GenerateFuzzCase(config.oracle, f.case_seed);
    f.minimized = f.original;
    f.minimized_detail = f.detail;
    if (config.minimize) {
      const auto still_fails = [](const FuzzCase& cand) {
        return RunFuzzCase(cand).verdict == FuzzVerdict::kFail;
      };
      f.minimized = MinimizeFuzzCase(f.original, still_fails, config.max_minimize_attempts,
                                     &f.minimize_stats);
      if (f.minimize_stats.reductions > 0) {
        f.minimized_detail = RunFuzzCase(f.minimized).detail;
      }
    }
    if (!config.corpus_dir.empty()) {
      f.corpus_file = config.corpus_dir + "/" + FuzzOracleName(config.oracle) + "_s" +
                      std::to_string(config.seed) + "_i" + std::to_string(t) + ".fuzzcase";
      std::string body = "# " + f.minimized_detail + "\n" + f.minimized.ToText();
      if (!WriteStringToFile(f.corpus_file, body)) {
        f.corpus_file.clear();
      }
    }
    result.failures.push_back(std::move(f));
  }
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("fuzz.cases").Add(result.passed + result.skipped + result.failed);
  reg.GetCounter("fuzz.failures").Add(result.failed);
  return result;
}

std::string FuzzReproCommand(const FuzzFailure& failure) {
  if (!failure.corpus_file.empty()) {
    return "neuroc fuzz --replay " + failure.corpus_file;
  }
  return std::string("neuroc fuzz --oracle ") + FuzzOracleName(failure.original.oracle) +
         " --case-seed " + HexSeed(failure.case_seed);
}

std::string FuzzCampaignJson(const FuzzCampaignResult& result) {
  const FuzzConfig& cfg = result.config;
  JsonWriter w;
  w.BeginObject();
  w.Key("fuzz").BeginObject();
  w.Key("oracle").Value(FuzzOracleName(cfg.oracle));
  w.Key("seed").Value(cfg.seed);
  w.Key("cases").Value(cfg.cases);
  w.Key("minimize").Value(cfg.minimize);
  w.EndObject();
  w.Key("counts").BeginObject();
  w.Key("passed").Value(result.passed);
  w.Key("skipped").Value(result.skipped);
  w.Key("failed").Value(result.failed);
  w.EndObject();
  w.Key("failures").BeginArray();
  for (const FuzzFailure& f : result.failures) {
    w.BeginObject();
    w.Key("index").Value(f.index);
    w.Key("case_seed").Value(HexSeed(f.case_seed));
    w.Key("detail").Value(f.detail);
    w.Key("case").Value(f.original.ToText());
    w.Key("minimized_case").Value(f.minimized.ToText());
    w.Key("minimized_detail").Value(f.minimized_detail);
    w.Key("minimize_attempts").Value(f.minimize_stats.attempts);
    w.Key("minimize_reductions").Value(f.minimize_stats.reductions);
    w.Key("corpus_file").Value(f.corpus_file);
    w.Key("repro").Value(FuzzReproCommand(f));
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

}  // namespace neuroc
