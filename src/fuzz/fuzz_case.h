// A fuzz case is the unit of the differential fuzzing subsystem: a small, fully explicit
// description of one randomized trial against one oracle. Cases are value types with a
// lossless line-oriented text form (`key value`, one pair per line, '#' comments), so a
// failing case can be written to tests/corpus/*.fuzzcase, checked in as a permanent
// regression test, and replayed with `neuroc fuzz --replay <file>`.
//
// Everything a case needs is derived from its fields plus `case_seed` (sub-streams are
// split off with a SplitMix64 finalizer), so replaying a case file reproduces the exact
// model bytes, inputs and mutations of the original campaign trial — on any machine, at
// any thread count.

#ifndef NEUROC_SRC_FUZZ_FUZZ_CASE_H_
#define NEUROC_SRC_FUZZ_FUZZ_CASE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/core/encoding.h"
#include "src/core/synthetic.h"

namespace neuroc {

enum class FuzzOracle : uint8_t {
  kKernel = 0,  // host reference inference vs simulated Thumb kernels
  kIsa = 1,     // decoder/encoder/disassembler/assembler round-trips + structural faults
  kSerde = 2,   // model image serialize/deserialize/deploy round-trips + mutations
  kFrame = 3,   // serve wire-frame codec round-trips + hostile-byte totality
};
inline constexpr FuzzOracle kAllFuzzOracles[] = {FuzzOracle::kKernel, FuzzOracle::kIsa,
                                                 FuzzOracle::kSerde, FuzzOracle::kFrame};
const char* FuzzOracleName(FuzzOracle oracle);
bool ParseFuzzOracle(std::string_view text, FuzzOracle* out);

// Kernel/serde cases address the five sparse encodings by EncodingKind value and the dense
// q7 MLP baseline by this sentinel (one past kUnrolled = 4; corpus files are immune to the
// renumbering because the text form stores encodings by name).
inline constexpr int kDenseBaselineEncoding = 5;
const char* FuzzEncodingName(int encoding);
bool ParseFuzzEncoding(std::string_view text, int* out);

// Frame-oracle byte-level mutations applied to a well-formed serve frame. Stored as int
// in FuzzCase (text form uses names, so renumbering cannot invalidate corpus files).
enum class FrameMutation : uint8_t {
  kNone = 0,       // valid frame: decode must succeed and re-encode byte-identically
  kTruncate = 1,   // payload cut short: structured kMalformedImage, never a hang
  kBitflip = 2,    // one flipped bit: structured rejection OR a canonical re-decode
  kTrailing = 3,   // extra bytes after a valid payload: trailing-garbage rejection
  kOversized = 4,  // declared length beyond the cap: FrameReader poisons the stream
  kGarbage = 5,    // random bytes as payload: total decode, no allocation blow-up
};
const char* FrameMutationName(int mutation);
bool ParseFrameMutation(std::string_view text, int* out);

struct FuzzCase {
  FuzzOracle oracle = FuzzOracle::kKernel;
  uint64_t case_seed = 0;

  // --- kernel oracle ---
  int encoding = 0;  // EncodingKind value, or kDenseBaselineEncoding
  uint32_t in_dim = 0;
  uint32_t out_dim = 0;
  uint32_t density_ppm = 0;  // adjacency density in parts-per-million (lossless in text)
  uint32_t block_size = 255;
  bool has_scale = true;
  bool relu = true;
  int requant_shift = 9;
  InputDist input_dist = InputDist::kUniform;
  // Set by the minimizer: when non-empty, this single input (length in_dim) replaces the
  // inputs drawn from the case's input stream.
  std::vector<int8_t> explicit_input;

  // --- isa oracle ---
  uint16_t hw1 = 0;
  uint16_t hw2 = 0;  // second halfword, consumed only by 32-bit encodings (BL)

  // --- serde oracle ---
  std::vector<uint32_t> dims;         // layer dimension chain: n layers -> n+1 entries
  std::vector<int> layer_encodings;   // per layer (ignored for the dense baseline)
  bool legacy_v1 = false;             // exercise the v1 (no CRC trailer) load path
  bool mutate = false;                // flip one seeded bit and expect structured rejection

  // --- frame oracle ---
  int frame_kind = 0;      // 0 = request frame, 1 = response frame
  int frame_mutation = 0;  // FrameMutation value

  std::string ToText() const;
};

// Parses the text form. Unknown keys and structurally inconsistent cases (e.g. serde
// dimension chain vs per-layer encoding count) are kInvalidArgument.
StatusOr<FuzzCase> ParseFuzzCase(std::string_view text);
StatusOr<FuzzCase> LoadFuzzCase(const std::string& path);

// SplitMix64 finalizer shared by campaign scheduling and per-case sub-streams: the same
// (seed, index) pattern PR 3/4 use for thread-count-invariant parallel results.
uint64_t FuzzSubSeed(uint64_t seed, uint64_t index);

}  // namespace neuroc

#endif  // NEUROC_SRC_FUZZ_FUZZ_CASE_H_
