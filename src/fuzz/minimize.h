// Greedy failure minimization: given a failing fuzz case and a predicate that re-checks
// failure, repeatedly try simpler variants (smaller dimensions, lower density, stripped
// scale/ReLU, zeroed input segments) and keep the first variant that still fails. The
// predicate abstraction keeps the shrink loop testable with mock predicates and reusable
// for "still fails with the same detail" policies.

#ifndef NEUROC_SRC_FUZZ_MINIMIZE_H_
#define NEUROC_SRC_FUZZ_MINIMIZE_H_

#include <functional>
#include <vector>

#include "src/fuzz/fuzz_case.h"

namespace neuroc {

// Candidate single-step simplifications of `c`, most aggressive first (dimension halving
// before decrements, structural strips before input zeroing). Every candidate is a valid
// case; the list is empty when `c` is already minimal.
std::vector<FuzzCase> ShrinkCandidates(const FuzzCase& c);

struct MinimizeStats {
  int attempts = 0;    // predicate evaluations
  int reductions = 0;  // accepted shrink steps
};

// Greedy descent: restart the candidate scan after every accepted step, stop when no
// candidate still fails or the attempt budget is spent. `still_fails` must be true for
// `failing` itself (the caller established the failure); it is not re-checked here.
FuzzCase MinimizeFuzzCase(const FuzzCase& failing,
                          const std::function<bool(const FuzzCase&)>& still_fails,
                          int max_attempts = 256, MinimizeStats* stats = nullptr);

}  // namespace neuroc

#endif  // NEUROC_SRC_FUZZ_MINIMIZE_H_
