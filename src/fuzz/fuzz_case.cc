#include "src/fuzz/fuzz_case.h"

#include <charconv>
#include <fstream>
#include <sstream>

namespace neuroc {

namespace {

Status Malformed(const std::string& why) {
  return Status(ErrorCode::kInvalidArgument, "fuzzcase: " + why);
}

bool ParseU64(std::string_view text, uint64_t* out) {
  if (text.empty()) return false;
  int base = 10;
  if (text.size() > 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
    text.remove_prefix(2);
    base = 16;
  }
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out, base);
  return ec == std::errc() && ptr == text.data() + text.size();
}

bool ParseI64(std::string_view text, int64_t* out) {
  if (text.empty()) return false;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

// Comma-separated signed integers (the explicit_input / dims lists).
bool ParseIntList(std::string_view text, std::vector<int64_t>* out) {
  out->clear();
  while (!text.empty()) {
    const size_t comma = text.find(',');
    const std::string_view item = text.substr(0, comma);
    int64_t v = 0;
    if (!ParseI64(item, &v)) return false;
    out->push_back(v);
    if (comma == std::string_view::npos) break;
    text.remove_prefix(comma + 1);
  }
  return true;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' || s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

const char* FuzzOracleName(FuzzOracle oracle) {
  switch (oracle) {
    case FuzzOracle::kKernel: return "kernel";
    case FuzzOracle::kIsa: return "isa";
    case FuzzOracle::kSerde: return "serde";
    case FuzzOracle::kFrame: return "frame";
  }
  return "unknown";
}

bool ParseFuzzOracle(std::string_view text, FuzzOracle* out) {
  for (FuzzOracle o : kAllFuzzOracles) {
    if (text == FuzzOracleName(o)) {
      *out = o;
      return true;
    }
  }
  return false;
}

const char* FuzzEncodingName(int encoding) {
  if (encoding == kDenseBaselineEncoding) return "dense";
  return EncodingKindName(static_cast<EncodingKind>(encoding));
}

bool ParseFuzzEncoding(std::string_view text, int* out) {
  if (text == "dense") {
    *out = kDenseBaselineEncoding;
    return true;
  }
  for (EncodingKind k : kAllEncodingKinds) {
    if (text == EncodingKindName(k)) {
      *out = static_cast<int>(k);
      return true;
    }
  }
  return false;
}

const char* FrameMutationName(int mutation) {
  switch (static_cast<FrameMutation>(mutation)) {
    case FrameMutation::kNone: return "none";
    case FrameMutation::kTruncate: return "truncate";
    case FrameMutation::kBitflip: return "bitflip";
    case FrameMutation::kTrailing: return "trailing";
    case FrameMutation::kOversized: return "oversized";
    case FrameMutation::kGarbage: return "garbage";
  }
  return "unknown";
}

bool ParseFrameMutation(std::string_view text, int* out) {
  for (int m = 0; m <= static_cast<int>(FrameMutation::kGarbage); ++m) {
    if (text == FrameMutationName(m)) {
      *out = m;
      return true;
    }
  }
  return false;
}

uint64_t FuzzSubSeed(uint64_t seed, uint64_t index) {
  uint64_t z = seed + (index + 1) * 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::string FuzzCase::ToText() const {
  std::ostringstream os;
  os << "# neuroc fuzzcase v1\n";
  os << "oracle " << FuzzOracleName(oracle) << "\n";
  os << "case_seed " << case_seed << "\n";
  switch (oracle) {
    case FuzzOracle::kKernel:
      os << "encoding " << FuzzEncodingName(encoding) << "\n";
      os << "in_dim " << in_dim << "\n";
      os << "out_dim " << out_dim << "\n";
      os << "density_ppm " << density_ppm << "\n";
      os << "block_size " << block_size << "\n";
      os << "has_scale " << (has_scale ? 1 : 0) << "\n";
      os << "relu " << (relu ? 1 : 0) << "\n";
      os << "requant_shift " << requant_shift << "\n";
      os << "input_dist " << InputDistName(input_dist) << "\n";
      if (!explicit_input.empty()) {
        os << "input ";
        for (size_t i = 0; i < explicit_input.size(); ++i) {
          os << (i ? "," : "") << static_cast<int>(explicit_input[i]);
        }
        os << "\n";
      }
      break;
    case FuzzOracle::kIsa:
      os << "hw1 " << hw1 << "\n";
      os << "hw2 " << hw2 << "\n";
      break;
    case FuzzOracle::kSerde:
      os << "dims ";
      for (size_t i = 0; i < dims.size(); ++i) {
        os << (i ? "," : "") << dims[i];
      }
      os << "\n";
      os << "layer_encodings ";
      for (size_t i = 0; i < layer_encodings.size(); ++i) {
        os << (i ? "," : "") << FuzzEncodingName(layer_encodings[i]);
      }
      os << "\n";
      os << "density_ppm " << density_ppm << "\n";
      os << "block_size " << block_size << "\n";
      os << "has_scale " << (has_scale ? 1 : 0) << "\n";
      os << "requant_shift " << requant_shift << "\n";
      os << "legacy_v1 " << (legacy_v1 ? 1 : 0) << "\n";
      os << "mutate " << (mutate ? 1 : 0) << "\n";
      break;
    case FuzzOracle::kFrame:
      os << "frame_kind " << (frame_kind == 0 ? "request" : "response") << "\n";
      os << "frame_mutation " << FrameMutationName(frame_mutation) << "\n";
      break;
  }
  return os.str();
}

StatusOr<FuzzCase> ParseFuzzCase(std::string_view text) {
  FuzzCase c;
  bool saw_oracle = false;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(pos, eol == std::string_view::npos
                                                 ? std::string_view::npos
                                                 : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    line = Trim(line);
    if (line.empty() || line.front() == '#') continue;
    const size_t space = line.find(' ');
    const std::string_view key = line.substr(0, space);
    const std::string_view value =
        space == std::string_view::npos ? std::string_view() : Trim(line.substr(space + 1));

    uint64_t u = 0;
    int64_t i = 0;
    std::vector<int64_t> list;
    if (key == "oracle") {
      if (!ParseFuzzOracle(value, &c.oracle)) return Malformed("bad oracle");
      saw_oracle = true;
    } else if (key == "case_seed") {
      if (!ParseU64(value, &u)) return Malformed("bad case_seed");
      c.case_seed = u;
    } else if (key == "encoding") {
      if (!ParseFuzzEncoding(value, &c.encoding)) return Malformed("bad encoding");
    } else if (key == "in_dim") {
      if (!ParseU64(value, &u) || u == 0 || u > 4096) return Malformed("bad in_dim");
      c.in_dim = static_cast<uint32_t>(u);
    } else if (key == "out_dim") {
      if (!ParseU64(value, &u) || u == 0 || u > 4096) return Malformed("bad out_dim");
      c.out_dim = static_cast<uint32_t>(u);
    } else if (key == "density_ppm") {
      if (!ParseU64(value, &u) || u > 1'000'000) return Malformed("bad density_ppm");
      c.density_ppm = static_cast<uint32_t>(u);
    } else if (key == "block_size") {
      if (!ParseU64(value, &u) || u == 0 || u > 255) return Malformed("bad block_size");
      c.block_size = static_cast<uint32_t>(u);
    } else if (key == "has_scale") {
      if (!ParseU64(value, &u) || u > 1) return Malformed("bad has_scale");
      c.has_scale = u != 0;
    } else if (key == "relu") {
      if (!ParseU64(value, &u) || u > 1) return Malformed("bad relu");
      c.relu = u != 0;
    } else if (key == "requant_shift") {
      if (!ParseI64(value, &i) || i < 0 || i > 14) return Malformed("bad requant_shift");
      c.requant_shift = static_cast<int>(i);
    } else if (key == "input_dist") {
      if (!ParseInputDist(value, &c.input_dist)) return Malformed("bad input_dist");
    } else if (key == "input") {
      if (!ParseIntList(value, &list)) return Malformed("bad input list");
      c.explicit_input.clear();
      for (int64_t v : list) {
        if (v < -128 || v > 127) return Malformed("input value out of int8 range");
        c.explicit_input.push_back(static_cast<int8_t>(v));
      }
    } else if (key == "hw1") {
      if (!ParseU64(value, &u) || u > 0xFFFF) return Malformed("bad hw1");
      c.hw1 = static_cast<uint16_t>(u);
    } else if (key == "hw2") {
      if (!ParseU64(value, &u) || u > 0xFFFF) return Malformed("bad hw2");
      c.hw2 = static_cast<uint16_t>(u);
    } else if (key == "dims") {
      if (!ParseIntList(value, &list)) return Malformed("bad dims list");
      c.dims.clear();
      for (int64_t v : list) {
        if (v <= 0 || v > 4096) return Malformed("dims value out of range");
        c.dims.push_back(static_cast<uint32_t>(v));
      }
    } else if (key == "layer_encodings") {
      c.layer_encodings.clear();
      std::string_view rest = value;
      while (!rest.empty()) {
        const size_t comma = rest.find(',');
        int enc = 0;
        if (!ParseFuzzEncoding(Trim(rest.substr(0, comma)), &enc)) {
          return Malformed("bad layer_encodings");
        }
        c.layer_encodings.push_back(enc);
        if (comma == std::string_view::npos) break;
        rest.remove_prefix(comma + 1);
      }
    } else if (key == "legacy_v1") {
      if (!ParseU64(value, &u) || u > 1) return Malformed("bad legacy_v1");
      c.legacy_v1 = u != 0;
    } else if (key == "mutate") {
      if (!ParseU64(value, &u) || u > 1) return Malformed("bad mutate");
      c.mutate = u != 0;
    } else if (key == "frame_kind") {
      if (value == "request") {
        c.frame_kind = 0;
      } else if (value == "response") {
        c.frame_kind = 1;
      } else {
        return Malformed("bad frame_kind");
      }
    } else if (key == "frame_mutation") {
      if (!ParseFrameMutation(value, &c.frame_mutation)) {
        return Malformed("bad frame_mutation");
      }
    } else {
      return Malformed("unknown key '" + std::string(key) + "'");
    }
  }

  if (!saw_oracle) return Malformed("missing oracle");
  switch (c.oracle) {
    case FuzzOracle::kKernel:
      if (c.in_dim == 0 || c.out_dim == 0) return Malformed("kernel case needs dims");
      if (!c.explicit_input.empty() && c.explicit_input.size() != c.in_dim) {
        return Malformed("input length != in_dim");
      }
      break;
    case FuzzOracle::kIsa:
      break;
    case FuzzOracle::kSerde:
      if (c.dims.size() < 2) return Malformed("serde case needs >= 2 dims");
      if (c.layer_encodings.size() != c.dims.size() - 1) {
        return Malformed("layer_encodings length != layer count");
      }
      break;
    case FuzzOracle::kFrame:
      break;
  }
  return c;
}

StatusOr<FuzzCase> LoadFuzzCase(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status(ErrorCode::kIoError, "cannot read fuzzcase file: " + path);
  }
  std::ostringstream os;
  os << in.rdbuf();
  return ParseFuzzCase(os.str());
}

}  // namespace neuroc
