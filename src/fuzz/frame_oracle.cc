// Frame oracle: the serve wire codec (src/serve/frame.h) under friendly and hostile
// bytes. A case builds one well-formed request or response frame from its seed, applies
// one FrameMutation, and checks the codec's two contracts:
//
//   totality    every decode path returns a structured Status — truncation, bit flips,
//               oversized declared lengths and plain garbage never hang, over-allocate
//               or abort the host;
//   canonicity  whatever *does* decode re-encodes to exactly the bytes that were
//               decoded, and FrameReader delivers the same payloads whether the stream
//               arrives whole or split at seeded chunk boundaries.

#include <cstring>
#include <string>

#include "src/common/rng.h"
#include "src/fuzz/oracles.h"
#include "src/serve/frame.h"

namespace neuroc {

namespace {

std::string RandomBytes(Rng& rng, size_t n) {
  std::string s(n, '\0');
  for (char& c : s) {
    c = static_cast<char>(rng.NextU32() & 0xFF);
  }
  return s;
}

ServeRequest BuildRequest(Rng& rng) {
  ServeRequest req;
  req.request_id = rng.NextU64();
  req.tenant = RandomBytes(rng, rng.NextBounded(kMaxTenantBytes + 1));
  req.model = RandomBytes(rng, rng.NextBounded(kMaxModelNameBytes + 1));
  req.input.resize(rng.NextBounded(257));
  for (int8_t& v : req.input) {
    v = static_cast<int8_t>(rng.NextU32() & 0xFF);
  }
  return req;
}

ServeResponse BuildResponse(Rng& rng) {
  ServeResponse resp;
  resp.request_id = rng.NextU64();
  resp.code = static_cast<ErrorCode>(
      rng.NextBounded(static_cast<uint64_t>(ErrorCode::kInternal) + 1));
  resp.prediction = static_cast<int32_t>(rng.NextU32());
  resp.cycles = rng.NextU64();
  resp.energy_pj = rng.NextU64();
  resp.message = RandomBytes(rng, rng.NextBounded(65));
  return resp;
}

// Decode + canonical re-encode for whichever kind the payload claims to be. Returns the
// status; on OK fills `reencoded`.
Status DecodeReencode(int kind, const std::vector<uint8_t>& payload,
                      std::vector<uint8_t>* reencoded) {
  reencoded->clear();
  if (kind == 0) {
    StatusOr<ServeRequest> req = DecodeRequestPayload(payload);
    if (!req.ok()) {
      return req.status();
    }
    AppendRequestPayload(*req, reencoded);
  } else {
    StatusOr<ServeResponse> resp = DecodeResponsePayload(payload);
    if (!resp.ok()) {
      return resp.status();
    }
    AppendResponsePayload(*resp, reencoded);
  }
  return Status::Ok();
}

// Feeds `stream` to a FrameReader in seeded chunks and pops every complete payload.
// Returns the reader's first error (if any) via `status`.
std::vector<std::vector<uint8_t>> SplitFeed(Rng& rng, const std::vector<uint8_t>& stream,
                                            Status* status) {
  *status = Status::Ok();
  FrameReader reader;
  std::vector<std::vector<uint8_t>> payloads;
  size_t pos = 0;
  while (pos < stream.size()) {
    const size_t chunk = 1 + rng.NextBounded(7);
    const size_t n = std::min(chunk, stream.size() - pos);
    reader.Feed(std::span<const uint8_t>(stream.data() + pos, n));
    pos += n;
    for (;;) {
      std::vector<uint8_t> payload;
      StatusOr<bool> got = reader.Next(&payload);
      if (!got.ok()) {
        *status = got.status();
        return payloads;
      }
      if (!*got) {
        break;
      }
      payloads.push_back(std::move(payload));
    }
  }
  return payloads;
}

CaseResult Fail(const std::string& detail) { return {FuzzVerdict::kFail, detail}; }

}  // namespace

FuzzCase GenerateFrameCase(uint64_t case_seed) {
  FuzzCase c;
  c.oracle = FuzzOracle::kFrame;
  c.case_seed = case_seed;
  Rng rng(FuzzSubSeed(case_seed, 0));
  c.frame_kind = static_cast<int>(rng.NextBounded(2));
  c.frame_mutation = static_cast<int>(
      rng.NextBounded(static_cast<uint64_t>(FrameMutation::kGarbage) + 1));
  return c;
}

CaseResult RunFrameCase(const FuzzCase& c) {
  // Sub-stream 1 builds content, sub-stream 2 drives the mutation and chunk sizes, so
  // frame_kind/frame_mutation edits (the minimizer's moves) keep the content stable.
  Rng content_rng(FuzzSubSeed(c.case_seed, 1));
  Rng mutate_rng(FuzzSubSeed(c.case_seed, 2));

  std::vector<uint8_t> payload;
  std::vector<uint8_t> frame;
  if (c.frame_kind == 0) {
    const ServeRequest req = BuildRequest(content_rng);
    AppendRequestPayload(req, &payload);
    frame = EncodeRequestFrame(req);
  } else {
    const ServeResponse resp = BuildResponse(content_rng);
    AppendResponsePayload(resp, &payload);
    frame = EncodeResponseFrame(resp);
  }
  if (frame.size() != payload.size() + 4) {
    return Fail("frame is not payload + 4-byte length prefix");
  }

  std::vector<uint8_t> reencoded;
  switch (static_cast<FrameMutation>(c.frame_mutation)) {
    case FrameMutation::kNone: {
      const Status st = DecodeReencode(c.frame_kind, payload, &reencoded);
      if (!st.ok()) {
        return Fail("valid payload rejected: " + st.message());
      }
      if (reencoded != payload) {
        return Fail("decode -> re-encode is not byte-identical");
      }
      // Stream equivalence: two copies of the frame, split-fed, must pop exactly two
      // identical payloads.
      std::vector<uint8_t> stream = frame;
      stream.insert(stream.end(), frame.begin(), frame.end());
      Status feed_status = Status::Ok();
      const auto payloads = SplitFeed(mutate_rng, stream, &feed_status);
      if (!feed_status.ok()) {
        return Fail("split-fed valid stream errored: " + feed_status.message());
      }
      if (payloads.size() != 2 || payloads[0] != payload || payloads[1] != payload) {
        return Fail("split-fed stream did not reproduce the whole-buffer payloads");
      }
      break;
    }
    case FrameMutation::kTruncate: {
      const size_t keep = mutate_rng.NextBounded(payload.size());
      std::vector<uint8_t> cut(payload.begin(),
                               payload.begin() + static_cast<ptrdiff_t>(keep));
      const Status st = DecodeReencode(c.frame_kind, cut, &reencoded);
      if (st.ok()) {
        return Fail("truncated payload decoded as valid");
      }
      if (st.code() != ErrorCode::kMalformedImage) {
        return Fail("truncated payload rejected with wrong code: " + st.message());
      }
      break;
    }
    case FrameMutation::kBitflip: {
      std::vector<uint8_t> flipped = payload;
      const size_t bit = mutate_rng.NextBounded(flipped.size() * 8);
      flipped[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      const Status st = DecodeReencode(c.frame_kind, flipped, &reencoded);
      // A flip in a content byte is legal different content; a flip in structure must be
      // a structured rejection. Either way: total, and canonical when accepted.
      if (st.ok() && reencoded != flipped) {
        return Fail("bit-flipped payload decoded non-canonically");
      }
      break;
    }
    case FrameMutation::kTrailing: {
      std::vector<uint8_t> padded = payload;
      const size_t extra = 1 + mutate_rng.NextBounded(16);
      for (size_t i = 0; i < extra; ++i) {
        padded.push_back(static_cast<uint8_t>(mutate_rng.NextU32() & 0xFF));
      }
      const Status st = DecodeReencode(c.frame_kind, padded, &reencoded);
      if (st.ok()) {
        return Fail("payload with trailing garbage decoded as valid");
      }
      break;
    }
    case FrameMutation::kOversized: {
      // A header declaring a payload beyond the cap must poison the reader immediately —
      // before any payload bytes arrive — and keep it poisoned.
      const uint32_t huge =
          kMaxFramePayloadBytes + 1 +
          static_cast<uint32_t>(mutate_rng.NextBounded(kMaxFramePayloadBytes));
      std::vector<uint8_t> stream(4);
      std::memcpy(stream.data(), &huge, 4);  // little-endian hosts only, like the codec
      FrameReader reader;
      reader.Feed(stream);
      std::vector<uint8_t> out;
      StatusOr<bool> got = reader.Next(&out);
      if (got.ok()) {
        return Fail("oversized declared length not rejected");
      }
      if (got.status().code() != ErrorCode::kResourceExhausted) {
        return Fail("oversized length rejected with wrong code: " +
                    got.status().message());
      }
      reader.Feed(frame);  // poisoned stream must stay poisoned even for valid bytes
      got = reader.Next(&out);
      if (got.ok()) {
        return Fail("poisoned reader recovered without reconnect");
      }
      break;
    }
    case FrameMutation::kGarbage: {
      std::vector<uint8_t> junk(mutate_rng.NextBounded(65));
      for (uint8_t& b : junk) {
        b = static_cast<uint8_t>(mutate_rng.NextU32() & 0xFF);
      }
      const Status st = DecodeReencode(c.frame_kind, junk, &reencoded);
      if (st.ok() && reencoded != junk) {
        return Fail("garbage payload decoded non-canonically");
      }
      break;
    }
  }
  return {FuzzVerdict::kPass, ""};
}

}  // namespace neuroc
