// Fixed-point arithmetic helpers shared by the post-training quantizer (host side) and the
// simulated Cortex-M0 kernels.
//
// The deployment arithmetic is deliberately restricted to what a Cortex-M0 executes cheaply:
// 32x32→32 MULS, adds, and shifts. All scales are therefore powers of two ("Qm.n" format, as
// in legacy CMSIS-NN q7/q15 kernels): a tensor with `frac` fractional bits stores
// round(value * 2^frac) saturated to the container width. Requantization between formats is a
// single rounding right shift.

#ifndef NEUROC_SRC_COMMON_FIXED_POINT_H_
#define NEUROC_SRC_COMMON_FIXED_POINT_H_

#include <cstdint>

namespace neuroc {

// Saturate a 32-bit value into [-128, 127].
constexpr int32_t SatInt8(int32_t v) {
  if (v > 127) {
    return 127;
  }
  if (v < -128) {
    return -128;
  }
  return v;
}

// Saturate a 32-bit value into [-32768, 32767].
constexpr int32_t SatInt16(int32_t v) {
  if (v > 32767) {
    return 32767;
  }
  if (v < -32768) {
    return -32768;
  }
  return v;
}

// Arithmetic right shift with round-half-up (adds 2^(shift-1) before shifting).
// shift == 0 is the identity; shift must be in [0, 31].
constexpr int32_t RoundingRightShift(int32_t v, int shift) {
  if (shift == 0) {
    return v;
  }
  return (v + (int32_t{1} << (shift - 1))) >> shift;
}

// 64-bit variant for accumulators that may exceed 32 bits on the host reference path.
constexpr int64_t RoundingRightShift64(int64_t v, int shift) {
  if (shift == 0) {
    return v;
  }
  return (v + (int64_t{1} << (shift - 1))) >> shift;
}

// Chooses the largest number of fractional bits f such that |max_abs| * 2^f still fits the
// signed container of `int_bits` total bits (e.g. 8 for q7). Returns a value clamped to
// [min_frac, max_frac]. max_abs <= 0 yields max_frac (the tensor is all zeros).
int ChooseFracBits(float max_abs, int int_bits, int min_frac = -8, int max_frac = 30);

// Quantize a float to a fixed-point integer with `frac` fractional bits, saturating to the
// given signed container width (8, 16 or 32 bits).
int32_t QuantizeFixed(float value, int frac, int container_bits);

// Inverse of QuantizeFixed: fixed-point integer back to float.
float DequantizeFixed(int32_t value, int frac);

// Convenience wrappers for the common q7 case.
inline int8_t QuantizeQ7(float value, int frac) {
  return static_cast<int8_t>(QuantizeFixed(value, frac, 8));
}

}  // namespace neuroc

#endif  // NEUROC_SRC_COMMON_FIXED_POINT_H_
