#include "src/common/status.h"

#include <cstdio>

namespace neuroc {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kUndefinedInstruction: return "UNDEFINED_INSTRUCTION";
    case ErrorCode::kUnmappedAccess: return "UNMAPPED_ACCESS";
    case ErrorCode::kUnalignedAccess: return "UNALIGNED_ACCESS";
    case ErrorCode::kIllegalStore: return "ILLEGAL_STORE";
    case ErrorCode::kInstructionBudgetExceeded: return "INSTRUCTION_BUDGET_EXCEEDED";
    case ErrorCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case ErrorCode::kIntegrityFailure: return "INTEGRITY_FAILURE";
    case ErrorCode::kMalformedImage: return "MALFORMED_IMAGE";
    case ErrorCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kIoError: return "IO_ERROR";
    case ErrorCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string FaultReport::Describe() const {
  std::string out;
  if (!trace_tail.empty()) {
    out += "simulator: recent instructions:\n";
    out += trace_tail;
  }
  // "at" names the most useful address for the fault class: the faulting data address
  // for memory faults, the instruction address otherwise.
  const bool data_fault = code == ErrorCode::kUnmappedAccess ||
                          code == ErrorCode::kUnalignedAccess ||
                          code == ErrorCode::kIllegalStore;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "simulator: %s at 0x%08x [%s] pc=0x%08x",
                message.c_str(), data_fault ? addr : pc, ErrorCodeName(code), pc);
  out += buf;
  std::snprintf(buf, sizeof(buf), " after %llu instructions / %llu cycles",
                static_cast<unsigned long long>(instructions),
                static_cast<unsigned long long>(cycles));
  out += buf;
  return out;
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = ErrorCodeName(code_);
  out += ": ";
  out += message_;
  if (fault_ != nullptr) {
    out += "\n";
    out += fault_->Describe();
  }
  return out;
}

}  // namespace neuroc
