#include "src/common/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <memory>

namespace neuroc {

namespace {

// Set while a thread (worker or caller) executes a chunk body; nested ParallelFor calls from
// inside a body degrade to in-line execution instead of deadlocking on the pool.
thread_local bool t_inside_chunk = false;

std::unique_ptr<ThreadPool>& GlobalSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

unsigned DefaultThreadCount() {
  if (const char* env = std::getenv("NEUROC_NUM_THREADS")) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != env && parsed >= 1) {
      return static_cast<unsigned>(parsed);
    }
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned num_threads) : num_threads_(std::max(1u, num_threads)) {
  workers_.reserve(num_threads_ - 1);
  for (unsigned i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wake_workers_.notify_all();
  for (std::thread& w : workers_) {
    w.join();
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t, size_t)>& fn) {
  if (end <= begin) {
    return;
  }
  grain = std::max<size_t>(1, grain);
  const size_t n = end - begin;
  if (workers_.empty() || n <= grain || t_inside_chunk) {
    t_inside_chunk = true;
    fn(begin, end);
    t_inside_chunk = false;
    return;
  }
  // Chunk size: at least `grain`, and no more chunks than ~4 per worker so scheduling stays
  // cheap while stragglers can still be balanced.
  const size_t max_chunks = static_cast<size_t>(num_threads_) * 4;
  const size_t chunk = std::max(grain, (n + max_chunks - 1) / max_chunks);

  std::unique_lock<std::mutex> lock(mutex_);
  ++task_.generation;
  task_.fn = &fn;
  task_.begin = begin;
  task_.end = end;
  task_.grain = chunk;
  task_.next = begin;
  task_.in_flight = 0;
  has_task_ = true;
  // Wake only as many workers as there are chunks beyond the one the caller runs itself:
  // a worker woken with nothing left to claim costs a futex round trip — and, on an
  // oversubscribed host, a preemption of the very thread doing the work — for nothing.
  const size_t chunks = (n + chunk - 1) / chunk;
  const size_t helpers = std::min<size_t>(workers_.size(), chunks - 1);
  for (size_t i = 0; i < helpers; ++i) {
    wake_workers_.notify_one();
  }
  DrainTask(lock);
  task_done_.wait(lock, [this] { return task_.next >= task_.end && task_.in_flight == 0; });
  has_task_ = false;
}

void ThreadPool::DrainTask(std::unique_lock<std::mutex>& lock) {
  while (has_task_ && task_.next < task_.end) {
    const size_t b = task_.next;
    const size_t e = std::min(task_.end, b + task_.grain);
    task_.next = e;
    ++task_.in_flight;
    const std::function<void(size_t, size_t)>* fn = task_.fn;
    lock.unlock();
    t_inside_chunk = true;
    (*fn)(b, e);
    t_inside_chunk = false;
    lock.lock();
    --task_.in_flight;
    if (task_.next >= task_.end && task_.in_flight == 0) {
      task_done_.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    wake_workers_.wait(
        lock, [this] { return shutdown_ || (has_task_ && task_.next < task_.end); });
    if (shutdown_) {
      return;
    }
    DrainTask(lock);
  }
}

ThreadPool& ThreadPool::Global() {
  std::unique_ptr<ThreadPool>& slot = GlobalSlot();
  if (!slot) {
    slot = std::make_unique<ThreadPool>(DefaultThreadCount());
  }
  return *slot;
}

bool ThreadPool::InsideChunk() { return t_inside_chunk; }

void ThreadPool::SetGlobalThreads(unsigned num_threads) {
  GlobalSlot() = std::make_unique<ThreadPool>(
      num_threads == 0 ? DefaultThreadCount() : num_threads);
}

}  // namespace neuroc
