// Lightweight invariant checking used across the library.
//
// NEUROC_CHECK(cond) aborts with a diagnostic when `cond` is false; it is always on,
// including in release builds, because the library targets correctness experiments where a
// silent out-of-range index would invalidate results. NEUROC_DCHECK compiles out in NDEBUG
// builds and is meant for hot inner loops.

#ifndef NEUROC_SRC_COMMON_CHECK_H_
#define NEUROC_SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace neuroc {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr,
                                     const char* msg) {
  std::fprintf(stderr, "NEUROC_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg[0] != '\0' ? " — " : "", msg);
  std::abort();
}

}  // namespace neuroc

#define NEUROC_CHECK(cond)                                    \
  do {                                                        \
    if (!(cond)) {                                            \
      ::neuroc::CheckFailed(__FILE__, __LINE__, #cond, "");   \
    }                                                         \
  } while (0)

#define NEUROC_CHECK_MSG(cond, msg)                           \
  do {                                                        \
    if (!(cond)) {                                            \
      ::neuroc::CheckFailed(__FILE__, __LINE__, #cond, msg);  \
    }                                                         \
  } while (0)

#ifdef NDEBUG
#define NEUROC_DCHECK(cond) \
  do {                      \
  } while (0)
#else
#define NEUROC_DCHECK(cond) NEUROC_CHECK(cond)
#endif

#endif  // NEUROC_SRC_COMMON_CHECK_H_
