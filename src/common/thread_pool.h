// Shared worker pool for the host-side training/evaluation hot paths.
//
// The deployment target is a single-core MCU, but the *trainer* runs on the host, where the
// batch dimension and the latent-weight rows parallelize trivially. All parallel loops in the
// repo go through ParallelFor so there is exactly one pool (no thread oversubscription when a
// layer forward nests inside batch evaluation) and one determinism story:
//
//   - Chunks are disjoint index ranges and every output element is written by exactly one
//     chunk, with the same internal iteration order regardless of worker count. Kernels built
//     on ParallelFor therefore produce bit-identical results for any NEUROC_NUM_THREADS,
//     including 1 (the fully deterministic in-line mode used by tests).
//   - Worker count comes from the NEUROC_NUM_THREADS environment variable when set (>= 1),
//     otherwise std::thread::hardware_concurrency().

#ifndef NEUROC_SRC_COMMON_THREAD_POOL_H_
#define NEUROC_SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace neuroc {

class ThreadPool {
 public:
  // Pool with `num_threads` total workers (the calling thread counts as one; `num_threads`
  // of 0 or 1 means no helper threads are spawned and every loop runs in-line).
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned num_threads() const { return num_threads_; }

  // Runs fn(chunk_begin, chunk_end) over disjoint chunks covering [begin, end). Each chunk
  // holds at least `grain` indices (except possibly the last), so tiny loops stay in-line.
  // The caller participates in the work and the call returns only when every chunk is done.
  // Must not be called from inside another ParallelFor body (detected: runs in-line).
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t, size_t)>& fn);

  // The process-wide pool used by the free ParallelFor below. Sized on first use from
  // NEUROC_NUM_THREADS / hardware_concurrency.
  static ThreadPool& Global();

  // True while the calling thread is executing a ParallelFor chunk body.
  static bool InsideChunk();

  // Resizes the global pool (benchmarks compare 1-vs-N in one process). Not safe while a
  // ParallelFor is in flight.
  static void SetGlobalThreads(unsigned num_threads);

 private:
  struct Task {
    const std::function<void(size_t, size_t)>* fn = nullptr;
    size_t begin = 0;
    size_t end = 0;
    size_t grain = 1;
    size_t next = 0;        // next chunk start, guarded by mutex_
    size_t in_flight = 0;   // chunks currently running
    uint64_t generation = 0;
  };

  void WorkerLoop();
  // Claims and runs chunks of the current task until it is drained.
  void DrainTask(std::unique_lock<std::mutex>& lock);

  unsigned num_threads_;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_workers_;
  std::condition_variable task_done_;
  Task task_;
  bool has_task_ = false;
  bool shutdown_ = false;
};

// Worker count the global pool is created with: NEUROC_NUM_THREADS when set and >= 1,
// otherwise std::thread::hardware_concurrency() (at least 1).
unsigned DefaultThreadCount();

// Cost-based grain: minimum indices per chunk so that each chunk carries at least
// kParallelMinChunkOps elementary operations (one multiply-add, one float copy — same
// order of magnitude either way). Dispatching a chunk costs a mutex round trip plus
// condition-variable wakeups for sleeping workers, tens of microseconds end to end; a
// chunk below roughly half a million ops loses more to that dispatch than the extra cores
// return. The original fixed "32768 ops per chunk" grains produced exactly such chunks,
// which is why 4 threads trained *slower* than 1 at every density in
// BENCH_train_throughput.json. Loops whose whole iteration space carries fewer ops than
// one chunk run in-line (the ParallelFor wrapper short-circuits on `n <= grain`).
inline constexpr size_t kParallelMinChunkOps = size_t{1} << 19;

inline size_t GrainForOps(size_t ops_per_index) {
  return std::max<size_t>(1, kParallelMinChunkOps / std::max<size_t>(1, ops_per_index));
}

// Convenience wrapper over ThreadPool::Global().ParallelFor. A template so that loops which
// will run in-line anyway (single-threaded pool, fewer than `grain` indices, or nested
// inside another chunk body) call `fn` directly without type-erasing it into a
// std::function — the hot kernels issue tens of these calls per optimizer step, and the
// erased path costs an allocation plus an indirect call each time.
template <typename Fn>
void ParallelFor(size_t begin, size_t end, size_t grain, Fn&& fn) {
  if (end <= begin) {
    return;
  }
  ThreadPool& pool = ThreadPool::Global();
  if (pool.num_threads() <= 1 || end - begin <= std::max<size_t>(1, grain) ||
      ThreadPool::InsideChunk()) {
    // In-line: same single [begin, end) chunk the pool would run, minus the dispatch. The
    // pool is idle here, so a nested ParallelFor inside fn may still use it.
    fn(begin, end);
    return;
  }
  pool.ParallelFor(begin, end, grain, std::function<void(size_t, size_t)>(std::forward<Fn>(fn)));
}

}  // namespace neuroc

#endif  // NEUROC_SRC_COMMON_THREAD_POOL_H_
