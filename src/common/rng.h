// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (dataset synthesis, weight initialization,
// shuffling, dropout masks) draw from this generator so experiments are reproducible from a
// single seed. The core generator is xoshiro256**, seeded via SplitMix64.

#ifndef NEUROC_SRC_COMMON_RNG_H_
#define NEUROC_SRC_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace neuroc {

// xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform 64-bit value.
  uint64_t NextU64();

  // Uniform 32-bit value.
  uint32_t NextU32() { return static_cast<uint32_t>(NextU64() >> 32); }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform float in [lo, hi).
  float NextUniform(float lo, float hi);

  // Standard normal via Box–Muller (cached second value).
  double NextGaussian();

  // Gaussian with mean/stddev.
  float NextGaussian(float mean, float stddev) {
    return mean + stddev * static_cast<float>(NextGaussian());
  }

  // Bernoulli trial with probability p of true.
  bool NextBool(double p) { return NextDouble() < p; }

  // Fisher–Yates shuffle of indices or arbitrary vectors.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap(values[i - 1], values[j]);
    }
  }

  // Derive an independent generator (for parallel or per-component streams).
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

// Returns a shuffled identity permutation [0, n).
std::vector<size_t> RandomPermutation(size_t n, Rng& rng);

}  // namespace neuroc

#endif  // NEUROC_SRC_COMMON_RNG_H_
