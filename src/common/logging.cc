#include "src/common/logging.h"

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <string>

namespace neuroc {

namespace {

LogLevel LevelFromEnv() {
  LogLevel level = LogLevel::kInfo;
  ParseLogLevel(std::getenv("NEUROC_LOG_LEVEL"), &level);
  return level;
}

LogLevel g_level = LevelFromEnv();

}  // namespace

bool ParseLogLevel(const char* name, LogLevel* out) {
  if (name == nullptr || *name == '\0') {
    return false;
  }
  std::string lower(name);
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug") {
    *out = LogLevel::kDebug;
  } else if (lower == "info") {
    *out = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning") {
    *out = LogLevel::kWarn;
  } else if (lower == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace log_internal {

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "?";
}

}  // namespace log_internal
}  // namespace neuroc
