#include "src/common/logging.h"

namespace neuroc {

namespace {
LogLevel g_level = LogLevel::kInfo;
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace log_internal {

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "?";
}

}  // namespace log_internal
}  // namespace neuroc
