// Structured, recoverable error propagation.
//
// The library distinguishes two failure classes:
//   - Host programming errors (out-of-range index, misuse of an API): NEUROC_CHECK aborts,
//     because continuing would invalidate every measurement (see src/common/check.h).
//   - Guest/data faults (corrupted kernel code on the simulated device, a descriptor
//     pointing at unmapped space, a malformed model file on disk): these are *expected*
//     inputs for a robustness harness and must be reportable values, not process aborts.
//     They flow through Status / StatusOr<T>, optionally carrying a FaultReport with the
//     cycle-exact simulator context at the point of failure.
//
// StatusOr<T> intentionally mirrors the std::optional surface (has_value / operator* /
// operator->) so call sites that previously used std::optional migrate without churn,
// while gaining a reason for the failure.

#ifndef NEUROC_SRC_COMMON_STATUS_H_
#define NEUROC_SRC_COMMON_STATUS_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "src/common/check.h"

namespace neuroc {

enum class ErrorCode : uint8_t {
  kOk = 0,
  // Guest (simulated device) faults.
  kUndefinedInstruction,        // fetched encoding decodes to UDF/invalid
  kUnmappedAccess,              // load/store/fetch outside flash+SRAM (incl. past-end)
  kUnalignedAccess,             // ARMv6-M alignment fault
  kIllegalStore,                // guest store into flash (read-only to the CPU)
  kInstructionBudgetExceeded,   // runaway-loop guard tripped
  kDeadlineExceeded,            // watchdog cycle budget exhausted (supervisor, not guest)
  // Host-side data faults.
  kIntegrityFailure,            // CRC section digest mismatch
  kMalformedImage,              // unparseable/inconsistent model blob or IDX file
  kResourceExhausted,           // model does not fit flash/SRAM budget
  kInvalidArgument,
  kIoError,
  kInternal,
};

const char* ErrorCodeName(ErrorCode code);

// Cycle-exact context captured when a guest fault stops simulated execution. `pc` is the
// address of the faulting instruction (not the next one); `cycles`/`instructions` are the
// CPU counters at the stop, including the partially charged faulting instruction.
struct FaultReport {
  ErrorCode code = ErrorCode::kOk;
  std::string message;      // human-readable cause, e.g. "access to unmapped address"
  uint32_t pc = 0;          // faulting instruction address (0 when not applicable)
  uint32_t addr = 0;        // faulting data address (unmapped/unaligned access), else 0
  uint16_t instruction = 0; // faulting halfword encoding (undefined instruction), else 0
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  std::string trace_tail;   // disassembled ring-buffer tail when tracing was enabled

  // Multi-line diagnostic: the trace tail (if any) followed by the one-line cause.
  std::string Describe() const;
};

class Status {
 public:
  Status() = default;  // ok
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status FromFault(FaultReport report) {
    Status s(report.code, report.message);
    s.fault_ = std::make_shared<FaultReport>(std::move(report));
    return s;
  }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Guest-fault detail when this status came out of the simulator; nullptr otherwise.
  const FaultReport* fault() const { return fault_.get(); }

  // "<code>: <message>" (plus fault context when present).
  std::string ToString() const;

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
  std::shared_ptr<FaultReport> fault_;  // shared so Status stays cheap to copy
};

// Value-or-error. Dereferencing a non-ok StatusOr is a host programming error (CHECK).
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    NEUROC_CHECK_MSG(!status_.ok(), "StatusOr constructed from an OK status without a value");
  }

  bool ok() const { return value_.has_value(); }
  bool has_value() const { return value_.has_value(); }
  explicit operator bool() const { return value_.has_value(); }

  // OK when a value is present; the carried error otherwise.
  const Status& status() const { return status_; }

  T& value() & {
    NEUROC_CHECK_MSG(value_.has_value(), "StatusOr::value() on an error");
    return *value_;
  }
  const T& value() const& {
    NEUROC_CHECK_MSG(value_.has_value(), "StatusOr::value() on an error");
    return *value_;
  }
  T&& value() && {
    NEUROC_CHECK_MSG(value_.has_value(), "StatusOr::value() on an error");
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace neuroc

#endif  // NEUROC_SRC_COMMON_STATUS_H_
