// Minimal leveled logging to stderr. The library is a research harness; logging stays
// dependency-free and printf-based.

#ifndef NEUROC_SRC_COMMON_LOGGING_H_
#define NEUROC_SRC_COMMON_LOGGING_H_

#include <cstdio>

namespace neuroc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Process-wide minimum level; messages below it are dropped. The initial level comes from
// the NEUROC_LOG_LEVEL environment variable (debug|info|warn|error, case-insensitive),
// defaulting to info; SetLogLevel overrides it for the rest of the process.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

// Parses a level name ("debug", "info", "warn"/"warning", "error"). Returns false (and
// leaves `out` untouched) for anything else, including nullptr.
bool ParseLogLevel(const char* name, LogLevel* out);

namespace log_internal {
const char* LevelTag(LogLevel level);
}  // namespace log_internal

}  // namespace neuroc

#define NEUROC_LOG(level, ...)                                                      \
  do {                                                                              \
    if (static_cast<int>(level) >= static_cast<int>(::neuroc::GetLogLevel())) {     \
      std::fprintf(stderr, "[%s] ", ::neuroc::log_internal::LevelTag(level));       \
      std::fprintf(stderr, __VA_ARGS__);                                            \
      std::fprintf(stderr, "\n");                                                   \
    }                                                                               \
  } while (0)

#define NEUROC_LOG_INFO(...) NEUROC_LOG(::neuroc::LogLevel::kInfo, __VA_ARGS__)
#define NEUROC_LOG_WARN(...) NEUROC_LOG(::neuroc::LogLevel::kWarn, __VA_ARGS__)
#define NEUROC_LOG_ERROR(...) NEUROC_LOG(::neuroc::LogLevel::kError, __VA_ARGS__)
#define NEUROC_LOG_DEBUG(...) NEUROC_LOG(::neuroc::LogLevel::kDebug, __VA_ARGS__)

#endif  // NEUROC_SRC_COMMON_LOGGING_H_
