#include "src/common/fixed_point.h"

#include <cmath>

#include "src/common/check.h"

namespace neuroc {

int ChooseFracBits(float max_abs, int int_bits, int min_frac, int max_frac) {
  NEUROC_CHECK(int_bits >= 2 && int_bits <= 32);
  if (!(max_abs > 0.0f)) {
    return max_frac;
  }
  const double limit = std::ldexp(1.0, int_bits - 1) - 1.0;  // e.g. 127 for q7
  int frac = max_frac;
  while (frac > min_frac && max_abs * std::ldexp(1.0, frac) > limit) {
    --frac;
  }
  return frac;
}

int32_t QuantizeFixed(float value, int frac, int container_bits) {
  NEUROC_CHECK(container_bits == 8 || container_bits == 16 || container_bits == 32);
  const double scaled = static_cast<double>(value) * std::ldexp(1.0, frac);
  const double rounded = std::nearbyint(scaled);
  int64_t v = static_cast<int64_t>(rounded);
  const int64_t hi = (int64_t{1} << (container_bits - 1)) - 1;
  const int64_t lo = -(int64_t{1} << (container_bits - 1));
  if (v > hi) {
    v = hi;
  }
  if (v < lo) {
    v = lo;
  }
  return static_cast<int32_t>(v);
}

float DequantizeFixed(int32_t value, int frac) {
  return static_cast<float>(std::ldexp(static_cast<double>(value), -frac));
}

}  // namespace neuroc
