// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected) used for model-image and
// serialized-blob section digests. A 16 KB-weights image digests in microseconds on the
// host, so verification can run at every deploy/load without touching simulated cycle
// accounting (all reads go through host-side, uncounted accessors).

#ifndef NEUROC_SRC_COMMON_CRC32_H_
#define NEUROC_SRC_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace neuroc {

// Incremental form: pass the previous return value as `seed` to continue a digest.
// Crc32(bytes) == Crc32(bytes[0..k), then Crc32(bytes[k..n), seed=that).
uint32_t Crc32(std::span<const uint8_t> bytes, uint32_t seed = 0);

}  // namespace neuroc

#endif  // NEUROC_SRC_COMMON_CRC32_H_
