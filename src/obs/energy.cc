#include "src/obs/energy.h"

namespace neuroc {

EnergyModel EnergyModel::CortexM0Proxy() {
  EnergyModel m;
  // Core baseline ~800 pJ/cycle (≈250 µA/MHz at 3.3 V, STM32F0 run mode, all-in). The
  // class weights split that baseline: datapath-only cycles sit slightly below it,
  // multiplier and load/store cycles above (the M0's single-cycle multiplier is a wide
  // combinational block; memory cycles toggle the bus matrix).
  m.core_pj_per_cycle[static_cast<size_t>(EnergyClass::kAlu)] = 750.0;
  m.core_pj_per_cycle[static_cast<size_t>(EnergyClass::kMul)] = 900.0;
  m.core_pj_per_cycle[static_cast<size_t>(EnergyClass::kLoad)] = 850.0;
  m.core_pj_per_cycle[static_cast<size_t>(EnergyClass::kStore)] = 850.0;
  m.core_pj_per_cycle[static_cast<size_t>(EnergyClass::kBranch)] = 700.0;
  m.core_pj_per_cycle[static_cast<size_t>(EnergyClass::kStack)] = 850.0;
  // Per-access adders: flash reads (sense amps + charge pumps) cost several times an
  // SRAM access on these parts.
  m.flash_read_pj = 120.0;
  m.sram_read_pj = 25.0;
  m.sram_write_pj = 30.0;
  return m;
}

EnergyEstimate EstimateEnergy(const EnergyModel& model,
                              const std::array<uint64_t, kEnergyClassCount>& cycles_by_class,
                              uint64_t flash_reads, uint64_t sram_reads,
                              uint64_t sram_writes) {
  EnergyEstimate e;
  for (size_t k = 0; k < kEnergyClassCount; ++k) {
    e.core_pj[k] = static_cast<double>(cycles_by_class[k]) * model.core_pj_per_cycle[k];
    e.core_total_pj += e.core_pj[k];
  }
  e.flash_pj = static_cast<double>(flash_reads) * model.flash_read_pj;
  e.sram_pj = static_cast<double>(sram_reads) * model.sram_read_pj +
              static_cast<double>(sram_writes) * model.sram_write_pj;
  e.total_pj = e.core_total_pj + e.flash_pj + e.sram_pj;
  return e;
}

void WriteEnergyJson(JsonWriter& w, const EnergyModel& model, const EnergyEstimate& e) {
  w.BeginObject();
  w.Key("weights").BeginObject();
  w.Key("core_pj_per_cycle").BeginObject();
  for (size_t k = 0; k < kEnergyClassCount; ++k) {
    w.Key(kEnergyClassNames[k]).Value(model.core_pj_per_cycle[k]);
  }
  w.EndObject();
  w.Key("flash_read_pj").Value(model.flash_read_pj);
  w.Key("sram_read_pj").Value(model.sram_read_pj);
  w.Key("sram_write_pj").Value(model.sram_write_pj);
  w.EndObject();
  w.Key("core_pj").BeginObject();
  for (size_t k = 0; k < kEnergyClassCount; ++k) {
    w.Key(kEnergyClassNames[k]).ValueFixed(e.core_pj[k], 1);
  }
  w.EndObject();
  w.Key("core_total_pj").ValueFixed(e.core_total_pj, 1);
  w.Key("flash_pj").ValueFixed(e.flash_pj, 1);
  w.Key("sram_pj").ValueFixed(e.sram_pj, 1);
  w.Key("total_pj").ValueFixed(e.total_pj, 1);
  w.Key("total_uj").ValueFixed(e.total_uj(), 4);
  w.EndObject();
}

}  // namespace neuroc
