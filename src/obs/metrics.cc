#include "src/obs/metrics.h"

#include "src/common/logging.h"
#include "src/obs/json_writer.h"

namespace neuroc {

MetricsLogger::MetricsLogger(const std::string& path) : path_(path) {
  if (path_.empty()) {
    return;
  }
  file_ = std::fopen(path_.c_str(), "a");
  if (file_ == nullptr) {
    NEUROC_LOG_ERROR("metrics: cannot open %s", path_.c_str());
  }
}

MetricsLogger::~MetricsLogger() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

void MetricsLogger::Log(std::initializer_list<Field> fields) {
  WriteRecord(fields.begin(), fields.size());
}

void MetricsLogger::Log(const std::vector<Field>& fields) {
  WriteRecord(fields.data(), fields.size());
}

void MetricsLogger::WriteRecord(const Field* fields, size_t count) {
  if (file_ == nullptr) {
    return;
  }
  JsonWriter w(/*indent=*/0);
  w.BeginObject();
  for (size_t i = 0; i < count; ++i) {
    const Field& f = fields[i];
    w.Key(f.key);
    if (f.is_text) {
      w.Value(std::string_view(f.text));
    } else if (f.is_int) {
      w.Value(static_cast<int64_t>(f.number));
    } else {
      w.Value(f.number, /*precision=*/9);
    }
  }
  w.EndObject();
  std::lock_guard<std::mutex> lock(mutex_);
  std::fprintf(file_, "%s\n", w.str().c_str());
  std::fflush(file_);
}

}  // namespace neuroc
