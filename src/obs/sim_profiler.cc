#include "src/obs/sim_profiler.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/common/check.h"
#include "src/isa/decoder.h"
#include "src/isa/disassembler.h"

namespace neuroc {

void SimProfiler::OnRetire(uint32_t addr, Op op, uint32_t cycles) {
  profile_.Add(addr, op, 1, cycles);
}

void SimProfiler::Reset() { profile_.Reset(); }

HotspotReport BuildHotspotReport(const PcProfile& profile, const SymbolTable& table) {
  HotspotReport report;
  report.total_instructions = profile.total_instructions;
  report.total_cycles = profile.total_cycles;

  // One accumulator per symbol span, plus a front slot for unattributed PCs.
  std::vector<SymbolHotspot> spans;
  spans.push_back({"(unattributed)", 0, 0, 0});
  for (const SymbolTable::Entry& e : table.entries()) {
    spans.push_back({e.name, e.addr, 0, 0});
  }
  for (const auto& [addr, stat] : profile.pc_stats) {
    const SymbolTable::Entry* e = table.Resolve(addr);
    size_t slot = 0;
    if (e != nullptr) {
      // entries() is ascending and unique by address; the resolved entry's index is its
      // position in that order.
      slot = 1 + static_cast<size_t>(e - table.entries().data());
    }
    spans[slot].instructions += stat.count;
    spans[slot].cycles += stat.cycles;
  }
  for (SymbolHotspot& s : spans) {
    if (s.cycles != 0 || s.instructions != 0) {
      report.symbols.push_back(std::move(s));
    }
  }
  std::sort(report.symbols.begin(), report.symbols.end(),
            [](const SymbolHotspot& a, const SymbolHotspot& b) {
              if (a.cycles != b.cycles) {
                return a.cycles > b.cycles;
              }
              return a.addr < b.addr;
            });
  return report;
}

std::string FormatHotspotTable(const HotspotReport& report) {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-32s %10s %12s %12s %7s\n", "symbol", "addr",
                "instructions", "cycles", "share");
  out += buf;
  for (const SymbolHotspot& s : report.symbols) {
    const double share = report.total_cycles == 0
                             ? 0.0
                             : 100.0 * static_cast<double>(s.cycles) /
                                   static_cast<double>(report.total_cycles);
    std::snprintf(buf, sizeof(buf), "%-32s %#10x %12llu %12llu %6.2f%%\n", s.name.c_str(),
                  s.addr, static_cast<unsigned long long>(s.instructions),
                  static_cast<unsigned long long>(s.cycles), share);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "%-32s %10s %12llu %12llu %6.2f%%\n", "total", "",
                static_cast<unsigned long long>(report.total_instructions),
                static_cast<unsigned long long>(report.total_cycles),
                report.total_cycles == 0 ? 0.0 : 100.0);
  out += buf;
  return out;
}

std::string FormatAnnotatedDisassembly(const PcProfile& profile, const SymbolTable& table,
                                       const AssembledProgram& program) {
  std::string out;
  char buf[160];
  const SymbolTable::Entry* current_span = nullptr;
  for (const auto& [addr, stat] : profile.pc_stats) {
    if (addr < program.base_addr || addr >= program.base_addr + program.bytes.size()) {
      continue;  // data or out-of-program PC; not disassemblable here
    }
    if (const SymbolTable::Entry* e = table.Resolve(addr); e != current_span) {
      std::snprintf(buf, sizeof(buf), "%s:\n", e != nullptr ? e->name.c_str()
                                                            : "(unattributed)");
      out += buf;
      current_span = e;
    }
    const size_t off = addr - program.base_addr;
    const uint16_t hw1 = static_cast<uint16_t>(program.bytes[off] |
                                               (program.bytes[off + 1] << 8));
    const bool wide = (hw1 & 0xF800) == 0xF000;
    const uint16_t hw2 =
        wide && off + 3 < program.bytes.size()
            ? static_cast<uint16_t>(program.bytes[off + 2] | (program.bytes[off + 3] << 8))
            : 0;
    const Instr in = DecodeInstr(hw1, hw2);
    std::snprintf(buf, sizeof(buf), "  %08x %10llu %12llu  %s\n", addr,
                  static_cast<unsigned long long>(stat.count),
                  static_cast<unsigned long long>(stat.cycles),
                  Disassemble(in, addr).c_str());
    out += buf;
  }
  return out;
}

void WriteHotspotJson(JsonWriter& w, const HotspotReport& report) {
  w.BeginObject();
  w.Key("total_instructions").Value(report.total_instructions);
  w.Key("total_cycles").Value(report.total_cycles);
  w.Key("symbols").BeginArray();
  for (const SymbolHotspot& s : report.symbols) {
    w.BeginObject();
    w.Key("symbol").Value(s.name);
    w.Key("addr").Value(static_cast<uint64_t>(s.addr));
    w.Key("instructions").Value(s.instructions);
    w.Key("cycles").Value(s.cycles);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
}

void WritePcStatsJson(JsonWriter& w, const PcProfile& profile) {
  w.BeginArray();
  for (const auto& [addr, stat] : profile.pc_stats) {
    w.BeginObject();
    w.Key("addr").Value(static_cast<uint64_t>(addr));
    w.Key("op").Value(OpName(stat.op));
    w.Key("count").Value(stat.count);
    w.Key("cycles").Value(stat.cycles);
    w.EndObject();
  }
  w.EndArray();
}

namespace {

void WriteBucketArray(JsonWriter& w, const std::vector<uint64_t>& counts) {
  w.BeginArray();
  for (const uint64_t c : counts) {
    w.Value(c);
  }
  w.EndArray();
}

}  // namespace

void WriteHeatmapJson(JsonWriter& w, const MemHeatmap& heatmap, uint32_t flash_base,
                      uint32_t ram_base) {
  w.BeginObject();
  w.Key("bucket_bytes").Value(static_cast<uint64_t>(heatmap.bucket_bytes));
  w.Key("flash_base").Value(static_cast<uint64_t>(flash_base));
  w.Key("ram_base").Value(static_cast<uint64_t>(ram_base));
  w.Key("flash_reads");
  WriteBucketArray(w, heatmap.flash_reads);
  w.Key("sram_reads");
  WriteBucketArray(w, heatmap.sram_reads);
  w.Key("sram_writes");
  WriteBucketArray(w, heatmap.sram_writes);
  w.EndObject();
}

std::string FormatSramHeatmap(const MemHeatmap& heatmap, uint32_t ram_base) {
  if (heatmap.bucket_bytes == 0) {
    return "";
  }
  // Log-scaled density glyphs; one row per 64 buckets.
  static const char kGlyphs[] = " .:-=+*#%@";
  const size_t n = heatmap.sram_reads.size();
  uint64_t max_count = 0;
  std::vector<uint64_t> combined(n, 0);
  for (size_t i = 0; i < n; ++i) {
    combined[i] = heatmap.sram_reads[i] + heatmap.sram_writes[i];
    max_count = std::max(max_count, combined[i]);
  }
  std::string out;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "sram access heatmap (%u B/bucket, max %llu):\n",
                heatmap.bucket_bytes, static_cast<unsigned long long>(max_count));
  out += buf;
  const double log_max = max_count > 0 ? std::log1p(static_cast<double>(max_count)) : 1.0;
  constexpr size_t kPerRow = 64;
  for (size_t row = 0; row < n; row += kPerRow) {
    std::snprintf(buf, sizeof(buf), "  %08x |",
                  static_cast<uint32_t>(ram_base + row * heatmap.bucket_bytes));
    out += buf;
    for (size_t i = row; i < std::min(row + kPerRow, n); ++i) {
      const double norm =
          combined[i] == 0 ? 0.0 : std::log1p(static_cast<double>(combined[i])) / log_max;
      const size_t g = std::min<size_t>(sizeof(kGlyphs) - 2,
                                        static_cast<size_t>(norm * (sizeof(kGlyphs) - 2)));
      out.push_back(kGlyphs[g]);
    }
    out += "|\n";
  }
  return out;
}

}  // namespace neuroc
