// Dependency-free trace-event recorder for the host side (trainer, benches, CLI).
//
// Records scoped spans and named counters into an in-memory buffer and exports Chrome
// trace_event JSON (the array-of-events "traceEvents" format), loadable in Perfetto /
// chrome://tracing. Recording is thread-safe: spans measure wall time lock-free and take
// the buffer mutex only once at destruction, so instrumenting code that runs inside the
// ThreadPool's parallel chunks is safe and cheap.
//
// Two timestamp sources coexist:
//   - host spans/counters stamp std::chrono::steady_clock microseconds since Start();
//   - simulator events use AddCompleteEvent with explicit timestamps (cycles converted to
//     microseconds at the simulated clock), giving cycle-exact timelines on track "sim".
//
// The global recorder is disabled by default; `NEUROC_TRACE=1` in the environment or
// TraceRecorder::Global().set_enabled(true) turns it on. Disabled recording is a no-op
// (one relaxed atomic load per span).

#ifndef NEUROC_SRC_OBS_TRACE_H_
#define NEUROC_SRC_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace neuroc {

class TraceRecorder {
 public:
  TraceRecorder();

  // Process-wide recorder (enabled at startup iff NEUROC_TRACE is set to a non-"0" value).
  static TraceRecorder& Global();

  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Resets the clock origin and clears buffered events.
  void Start();
  void Clear();
  size_t event_count() const;

  // Microseconds since Start() on the host steady clock.
  double NowUs() const;

  // Complete event ("ph":"X") with explicit timing; `track` names the pid/tid lane
  // ("host", "sim", ...). Thread-safe.
  void AddCompleteEvent(const std::string& name, const std::string& track, double ts_us,
                        double dur_us);
  // Counter event ("ph":"C") with explicit timestamp, or stamped now.
  void AddCounterEvent(const std::string& name, const std::string& track, double ts_us,
                       double value);
  void Counter(const std::string& name, double value);

  // Chrome trace_event JSON ({"traceEvents": [...]}). Events keep insertion order;
  // viewers sort by timestamp themselves.
  std::string ToChromeTraceJson() const;
  bool WriteChromeTrace(const std::string& path) const;

  // RAII span: records a complete event on the calling thread's lane from construction to
  // destruction. No-op when the recorder is disabled at construction time.
  class Span {
   public:
    Span(TraceRecorder& recorder, const char* name);
    explicit Span(const char* name) : Span(Global(), name) {}
    ~Span();
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

   private:
    TraceRecorder* recorder_;  // nullptr when disabled
    std::string name_;
    double start_us_ = 0.0;
  };

 private:
  struct Event {
    char phase;  // 'X' complete, 'C' counter
    std::string name;
    std::string track;
    double ts_us;
    double dur_us;   // 'X' only
    double value;    // 'C' only
    uint32_t tid;
  };

  // Small stable id for the calling thread (0 = the thread that called Start() first).
  uint32_t ThreadId() const;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<Event> events_;
  std::chrono::steady_clock::time_point origin_;
  mutable std::vector<std::thread::id> thread_ids_;  // index = assigned tid
};

// Scoped host span on the global recorder; name must be a literal or outlive the scope.
#define NEUROC_TRACE_CONCAT_INNER(a, b) a##b
#define NEUROC_TRACE_CONCAT(a, b) NEUROC_TRACE_CONCAT_INNER(a, b)
#define NEUROC_TRACE_SCOPE(name) \
  ::neuroc::TraceRecorder::Span NEUROC_TRACE_CONCAT(neuroc_trace_span_, __LINE__)(name)

}  // namespace neuroc

#endif  // NEUROC_SRC_OBS_TRACE_H_
