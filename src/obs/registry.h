// Unified metrics registry: named counters, gauges and histograms shared by every
// subsystem (sim, runtime, trainer, search, fuzz, fault campaigns), exported as one JSON
// object or appended as a JSONL run record (`neuroc report` aggregates those files).
//
// Determinism contract: metrics are emitted in registration order, so output is
// byte-identical across runs as long as registration order is — register (Get*) on the
// main thread before fanning work out, then update from anywhere. Counter updates are
// relaxed atomics (integer adds commute, so totals are thread-count-independent); gauges
// are last-write-wins and histograms take a per-histogram mutex, so keep
// order-sensitive updates (float sums) on one thread when byte-identical output matters
// — the same rule the rest of the repo's determinism contracts follow.
//
// Handles returned by Get* are stable for the registry's lifetime (metrics live in
// deques and are never erased by Reset, which only zeroes values).

#ifndef NEUROC_SRC_OBS_REGISTRY_H_
#define NEUROC_SRC_OBS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/json_writer.h"

namespace neuroc {

class MetricsRegistry {
 public:
  class Counter {
   public:
    void Add(uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
    uint64_t value() const { return value_.load(std::memory_order_relaxed); }
    void Reset() { value_.store(0, std::memory_order_relaxed); }

   private:
    std::atomic<uint64_t> value_{0};
  };

  class Gauge {
   public:
    void Set(double v) { value_.store(v, std::memory_order_relaxed); }
    double value() const { return value_.load(std::memory_order_relaxed); }
    void Reset() { value_.store(0.0, std::memory_order_relaxed); }

   private:
    std::atomic<double> value_{0.0};
  };

  class Histogram {
   public:
    struct Snapshot {
      uint64_t count = 0;
      double sum = 0.0;
      double min = 0.0;  // 0 when empty
      double max = 0.0;
      double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
    };

    void Observe(double v);
    Snapshot snapshot() const;
    void Reset();

   private:
    mutable std::mutex mutex_;
    Snapshot snap_;
  };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Finds or registers the named metric. Registering the same name as two different
  // kinds is a programming error (checked).
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  // One JSON object ({"counters":{...},"gauges":{...},"histograms":{...}}), each section
  // in registration order.
  void WriteJson(JsonWriter& w) const;
  // Appends one compact JSONL run record ({"run":label,<sections>}) to `path`; returns
  // false (and logs) on I/O failure. The format is what `neuroc report` aggregates.
  bool AppendRunRecord(const std::string& path, std::string_view run_label) const;
  // Zeroes every value; registration (names + order) is retained.
  void Reset();

  // Process-wide registry used by the subsystems' default instrumentation.
  static MetricsRegistry& Global();

  // Deterministic metric-name prefixing is defined once here (used by MetricsScope and
  // anything else composing scoped names by hand).
  static std::string ScopedName(std::string_view prefix, std::string_view name) {
    std::string full;
    full.reserve(prefix.size() + 1 + name.size());
    full.append(prefix);
    full.push_back('.');
    full.append(name);
    return full;
  }

 private:
  struct Named {
    std::string name;
    size_t index;  // into the kind's deque
  };
  template <typename T>
  T& GetOrRegister(std::string_view name, std::vector<Named>& names, std::deque<T>& store,
                   const char* kind);

  mutable std::mutex mutex_;
  std::vector<Named> counter_names_;
  std::vector<Named> gauge_names_;
  std::vector<Named> histogram_names_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
};

// A registry view with a fixed name prefix: GetCounter("requests") on a scope with
// prefix "serve.tenant.alice" resolves to the registry metric
// "serve.tenant.alice.requests". Scopes are how multi-tenant subsystems keep one flat,
// deterministic registry while attributing traffic per tenant — handles come from the
// underlying registry, so the determinism and thread-safety contracts above apply
// unchanged.
class MetricsScope {
 public:
  MetricsScope(MetricsRegistry* registry, std::string prefix)
      : registry_(registry), prefix_(std::move(prefix)) {}

  MetricsRegistry::Counter& GetCounter(std::string_view name) {
    return registry_->GetCounter(MetricsRegistry::ScopedName(prefix_, name));
  }
  MetricsRegistry::Gauge& GetGauge(std::string_view name) {
    return registry_->GetGauge(MetricsRegistry::ScopedName(prefix_, name));
  }
  MetricsRegistry::Histogram& GetHistogram(std::string_view name) {
    return registry_->GetHistogram(MetricsRegistry::ScopedName(prefix_, name));
  }

  const std::string& prefix() const { return prefix_; }

 private:
  MetricsRegistry* registry_;
  std::string prefix_;
};

}  // namespace neuroc

#endif  // NEUROC_SRC_OBS_REGISTRY_H_
