#include "src/obs/json_reader.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace neuroc {

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error) : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out)) {
      return false;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after document");
    }
    return true;
  }

 private:
  bool Fail(const char* what) {
    if (error_ != nullptr) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "%s at byte %zu", what, pos_);
      *error_ = buf;
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->text);
      case 't':
      case 'f':
        return ParseKeyword(out);
      case 'n':
        if (text_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          out->kind = JsonValue::Kind::kNull;
          return true;
        }
        return Fail("bad keyword");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseKeyword(JsonValue* out) {
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return true;
    }
    return Fail("bad keyword");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::strchr("+-0123456789.eE", text_[pos_]) != nullptr)) {
      ++pos_;
    }
    if (pos_ == start) {
      return Fail("unexpected character");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Fail("malformed number");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number = v;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) {
      return Fail("expected string");
    }
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape");
            }
          }
          // UTF-8 encode (BMP only — matches what JsonWriter::Escape can emit).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseArray(JsonValue* out) {
    Consume('[');
    out->kind = JsonValue::Kind::kArray;
    SkipWs();
    if (Consume(']')) {
      return true;
    }
    for (;;) {
      JsonValue element;
      SkipWs();
      if (!ParseValue(&element)) {
        return false;
      }
      out->elements.push_back(std::move(element));
      SkipWs();
      if (Consume(']')) {
        return true;
      }
      if (!Consume(',')) {
        return Fail("expected ',' or ']'");
      }
    }
  }

  bool ParseObject(JsonValue* out) {
    Consume('{');
    out->kind = JsonValue::Kind::kObject;
    SkipWs();
    if (Consume('}')) {
      return true;
    }
    for (;;) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      SkipWs();
      if (!Consume(':')) {
        return Fail("expected ':'");
      }
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->members.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (Consume('}')) {
        return true;
      }
      if (!Consume(',')) {
        return Fail("expected ',' or '}'");
      }
    }
  }

  std::string_view text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [name, value] : members) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

const JsonValue* JsonValue::FindPath(std::string_view dotted) const {
  const JsonValue* node = this;
  while (node != nullptr && !dotted.empty()) {
    const size_t dot = dotted.find('.');
    const std::string_view head = dotted.substr(0, dot);
    node = node->Find(head);
    if (dot == std::string_view::npos) {
      break;
    }
    dotted.remove_prefix(dot + 1);
  }
  return node;
}

bool ParseJson(std::string_view text, JsonValue* out, std::string* error) {
  Parser p(text, error);
  return p.Parse(out);
}

bool ParseJsonFile(const std::string& path, JsonValue* out, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = "cannot open " + path;
    }
    return false;
  }
  std::string text;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);
  if (!ParseJson(text, out, error)) {
    if (error != nullptr) {
      *error = path + ": " + *error;
    }
    return false;
  }
  return true;
}

bool ParseJsonl(std::string_view text, std::vector<JsonValue>* out, std::string* error) {
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) {
      end = text.size();
    }
    const std::string_view line = text.substr(start, end - start);
    start = end + 1;
    bool blank = true;
    for (const char c : line) {
      if (c != ' ' && c != '\t' && c != '\r') {
        blank = false;
        break;
      }
    }
    if (blank) {
      continue;
    }
    JsonValue record;
    if (!ParseJson(line, &record, error)) {
      return false;
    }
    out->push_back(std::move(record));
  }
  return true;
}

}  // namespace neuroc
