#include "src/obs/json_writer.h"

#include <cmath>
#include <cstdio>

#include "src/common/check.h"
#include "src/common/logging.h"

namespace neuroc {

void JsonWriter::NewlineIndent() {
  if (indent_ <= 0) {
    return;
  }
  out_.push_back('\n');
  out_.append(stack_.size() * static_cast<size_t>(indent_), ' ');
}

void JsonWriter::BeforeItem() {
  if (after_key_) {
    // Value completing a `"key": ` — separator already emitted by Key().
    after_key_ = false;
    return;
  }
  if (stack_.empty()) {
    NEUROC_CHECK_MSG(!has_top_value_, "JsonWriter: second top-level value");
    has_top_value_ = true;
    return;
  }
  Frame& top = stack_.back();
  NEUROC_CHECK_MSG(top.scope == Scope::kArray, "JsonWriter: value in object without Key");
  if (top.count > 0) {
    out_.push_back(',');
  }
  ++top.count;
  NewlineIndent();
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeItem();
  out_.push_back('{');
  stack_.push_back({Scope::kObject});
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  NEUROC_CHECK_MSG(!stack_.empty() && stack_.back().scope == Scope::kObject && !after_key_,
                   "JsonWriter: mismatched EndObject");
  const bool had_members = stack_.back().count > 0;
  stack_.pop_back();
  if (had_members) {
    NewlineIndent();
  }
  out_.push_back('}');
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeItem();
  out_.push_back('[');
  stack_.push_back({Scope::kArray});
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  NEUROC_CHECK_MSG(!stack_.empty() && stack_.back().scope == Scope::kArray && !after_key_,
                   "JsonWriter: mismatched EndArray");
  const bool had_elements = stack_.back().count > 0;
  stack_.pop_back();
  if (had_elements) {
    NewlineIndent();
  }
  out_.push_back(']');
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view name) {
  NEUROC_CHECK_MSG(!stack_.empty() && stack_.back().scope == Scope::kObject && !after_key_,
                   "JsonWriter: Key outside object");
  Frame& top = stack_.back();
  if (top.count > 0) {
    out_.push_back(',');
  }
  ++top.count;
  NewlineIndent();
  out_.push_back('"');
  Append(Escape(name));
  Append(indent_ > 0 ? "\": " : "\":");
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view v) {
  BeforeItem();
  out_.push_back('"');
  Append(Escape(v));
  out_.push_back('"');
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  BeforeItem();
  Append(v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t v) {
  BeforeItem();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  Append(buf);
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t v) {
  BeforeItem();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  Append(buf);
  return *this;
}

JsonWriter& JsonWriter::Value(double v, int precision) {
  BeforeItem();
  if (!std::isfinite(v)) {
    Append("null");
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  Append(buf);
  return *this;
}

JsonWriter& JsonWriter::ValueFixed(double v, int decimals) {
  BeforeItem();
  if (!std::isfinite(v)) {
    Append("null");
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  Append(buf);
  return *this;
}

std::string JsonWriter::Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

bool WriteStringToFile(const std::string& path, std::string_view content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    NEUROC_LOG_ERROR("cannot write %s", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(content.data(), 1, content.size(), f) == content.size();
  std::fclose(f);
  if (!ok) {
    NEUROC_LOG_ERROR("short write to %s", path.c_str());
  }
  return ok;
}

}  // namespace neuroc
