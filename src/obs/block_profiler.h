// Block-granular profiler: the fast-path counterpart of SimProfiler.
//
// Attaching a SimProfiler (a CpuProbe) transparently drops the CPU out of block-compiled
// execution — per-retire callbacks can only come from the step interpreter — so the fast
// path the runtime actually ships was exactly the path the profiler could not observe.
// BlockProfiler closes that gap: attaching it flips the CPU into block-profile mode
// (Cpu::EnableBlockProfile), which stays on block dispatch and pays one exec-counter bump
// per block (plus a per-op flash-wait hit counter on data accesses and the taken count of
// a conditional-branch terminator — the only dynamic cycle sources inside a block).
//
// Collect() expands those counters into the same exact per-PC/per-opcode attribution the
// step probe would have produced, using the block compiler's per-op static-cycle prefix
// sums: bit-identical to SimProfiler on straight-line (non-faulting) code, and with
// mid-block fault and interpreter-fallback residue folded in so total cycles still equal
// the profiled window's Cpu::cycles() delta exactly (pinned in tests/obs_test.cc).

#ifndef NEUROC_SRC_OBS_BLOCK_PROFILER_H_
#define NEUROC_SRC_OBS_BLOCK_PROFILER_H_

#include "src/obs/sim_profiler.h"
#include "src/sim/cpu.h"

namespace neuroc {

class BlockProfiler {
 public:
  // Enables block-profile mode for the lifetime of this object and opens a fresh
  // attribution window (prior collected data is cleared).
  explicit BlockProfiler(Cpu& cpu) : cpu_(cpu) { cpu_.EnableBlockProfile(true); }
  ~BlockProfiler() { cpu_.EnableBlockProfile(false); }
  BlockProfiler(const BlockProfiler&) = delete;
  BlockProfiler& operator=(const BlockProfiler&) = delete;

  // Snapshot of everything attributed since attach (or the last Reset). Expansion runs
  // here, not per-block-exit, so reading the profile is the only O(program) cost.
  PcProfile Collect() const;
  void Reset() { cpu_.ResetBlockProfile(); }

 private:
  Cpu& cpu_;
};

}  // namespace neuroc

#endif  // NEUROC_SRC_OBS_BLOCK_PROFILER_H_
