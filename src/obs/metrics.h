// Structured metrics stream: one compact JSON object per record, newline-delimited
// (JSONL), append-ordered. The trainer emits one record per epoch (loss, accuracies,
// examples/sec, ternarization density); benches and the CLI can append their own records
// to the same stream. Field order is insertion order, so records are deterministic for
// deterministic inputs.

#ifndef NEUROC_SRC_OBS_METRICS_H_
#define NEUROC_SRC_OBS_METRICS_H_

#include <cstdio>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace neuroc {

class MetricsLogger {
 public:
  // A single named value; exact integers keep integer formatting in the output.
  struct Field {
    Field(std::string_view k, double v) : key(k), number(v) {}
    Field(std::string_view k, int v) : key(k), number(v), is_int(true) {}
    Field(std::string_view k, size_t v)
        : key(k), number(static_cast<double>(v)), is_int(true) {}
    Field(std::string_view k, std::string_view v) : key(k), text(v), is_text(true) {}

    std::string key;
    double number = 0.0;
    std::string text;
    bool is_int = false;
    bool is_text = false;
  };

  // Opens `path` for appending ("" keeps the logger closed; Log becomes a no-op).
  explicit MetricsLogger(const std::string& path);
  ~MetricsLogger();
  MetricsLogger(const MetricsLogger&) = delete;
  MetricsLogger& operator=(const MetricsLogger&) = delete;

  bool ok() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

  // Appends one JSONL record and flushes (streams should survive a crash). Thread-safe.
  void Log(std::initializer_list<Field> fields);
  void Log(const std::vector<Field>& fields);

 private:
  void WriteRecord(const Field* fields, size_t count);

  std::string path_;
  std::FILE* file_ = nullptr;
  std::mutex mutex_;
};

}  // namespace neuroc

#endif  // NEUROC_SRC_OBS_METRICS_H_
