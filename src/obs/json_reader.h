// Minimal recursive-descent JSON parser — the read-side counterpart of JsonWriter, for
// tools that consume our own emitted JSON (bench_compare diffing BENCH_*.json baselines,
// `neuroc report` aggregating metrics run records). Dependency-free and strict enough
// for round-tripping JsonWriter output; it is not a general-purpose validator (no
// \uXXXX surrogate handling beyond BMP passthrough, numbers parsed with strtod).

#ifndef NEUROC_SRC_OBS_JSON_READER_H_
#define NEUROC_SRC_OBS_JSON_READER_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace neuroc {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> elements;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members;     // kObject, source order

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
  // Dotted-path lookup ("speedups.block_vs_legacy_csc").
  const JsonValue* FindPath(std::string_view dotted) const;
  double AsDouble(double fallback = 0.0) const {
    return kind == Kind::kNumber ? number : fallback;
  }
};

// Parses one JSON document. Returns false and sets `error` (with byte offset context) on
// malformed input; trailing non-whitespace is an error.
bool ParseJson(std::string_view text, JsonValue* out, std::string* error);

// Reads and parses a whole file; false (with `error`) when unreadable or malformed.
bool ParseJsonFile(const std::string& path, JsonValue* out, std::string* error);

// Parses newline-delimited JSON records (blank lines skipped); false on the first bad
// record. Used for metrics run-record streams.
bool ParseJsonl(std::string_view text, std::vector<JsonValue>* out, std::string* error);

}  // namespace neuroc

#endif  // NEUROC_SRC_OBS_JSON_READER_H_
