#include "src/obs/registry.h"

#include <cstdio>

#include "src/common/check.h"
#include "src/common/logging.h"

namespace neuroc {

void MetricsRegistry::Histogram::Observe(double v) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (snap_.count == 0 || v < snap_.min) {
    snap_.min = v;
  }
  if (snap_.count == 0 || v > snap_.max) {
    snap_.max = v;
  }
  ++snap_.count;
  snap_.sum += v;
}

MetricsRegistry::Histogram::Snapshot MetricsRegistry::Histogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return snap_;
}

void MetricsRegistry::Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  snap_ = Snapshot{};
}

template <typename T>
T& MetricsRegistry::GetOrRegister(std::string_view name, std::vector<Named>& names,
                                  std::deque<T>& store, const char* kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Named& n : names) {
    if (n.name == name) {
      return store[n.index];
    }
  }
  (void)kind;
  names.push_back(Named{std::string(name), store.size()});
  store.emplace_back();
  return store.back();
}

MetricsRegistry::Counter& MetricsRegistry::GetCounter(std::string_view name) {
  return GetOrRegister(name, counter_names_, counters_, "counter");
}

MetricsRegistry::Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  return GetOrRegister(name, gauge_names_, gauges_, "gauge");
}

MetricsRegistry::Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  return GetOrRegister(name, histogram_names_, histograms_, "histogram");
}

void MetricsRegistry::WriteJson(JsonWriter& w) const {
  std::lock_guard<std::mutex> lock(mutex_);
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const Named& n : counter_names_) {
    w.Key(n.name).Value(counters_[n.index].value());
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const Named& n : gauge_names_) {
    w.Key(n.name).Value(gauges_[n.index].value());
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const Named& n : histogram_names_) {
    const Histogram::Snapshot s = histograms_[n.index].snapshot();
    w.Key(n.name).BeginObject();
    w.Key("count").Value(s.count);
    w.Key("sum").Value(s.sum);
    w.Key("min").Value(s.min);
    w.Key("max").Value(s.max);
    w.Key("mean").Value(s.mean());
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
}

bool MetricsRegistry::AppendRunRecord(const std::string& path,
                                      std::string_view run_label) const {
  JsonWriter inner(/*indent=*/0);
  WriteJson(inner);
  // Compose the run label in front of the sections: {"run":"...",<sections>}.
  std::string record = "{\"run\":\"" + JsonWriter::Escape(run_label) + "\",";
  record += inner.str().substr(1);  // drop the sections object's opening brace
  record += "\n";
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    NEUROC_LOG_WARN("cannot open metrics run record file %s", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(record.data(), 1, record.size(), f) == record.size();
  std::fclose(f);
  if (!ok) {
    NEUROC_LOG_WARN("short write to metrics run record file %s", path.c_str());
  }
  return ok;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Counter& c : counters_) {
    c.Reset();
  }
  for (Gauge& g : gauges_) {
    g.Reset();
  }
  for (Histogram& h : histograms_) {
    h.Reset();
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked: alive for exit paths
  return *registry;
}

}  // namespace neuroc
