// Cycle-exact flat profiler for the simulated Cortex-M0.
//
// SimProfiler attaches to the CPU's per-instruction probe (Cpu::set_probe) and attributes
// every retired instruction's exact cycle cost to its program counter and opcode. Because
// the probe reports the full charge — fetch wait states, memory-access cost, branch
// penalty — the per-PC cycles sum to Cpu::cycles() for the profiled window, which is the
// invariant the paper-style attribution analyses (which kernel / which loop spends the
// cycles) stand on.
//
// Resolution back to source structure goes through the assembler symbol table: every label
// (kernel entry points *and* inner loop labels) becomes an attribution span, so the
// hotspot report reads like `kern_csc_m1i1_s/kcsc_col_loop: 61.2%`. Reports come in two
// forms: a human-readable table + annotated disassembly, and machine-readable JSON via the
// shared JsonWriter.
//
// The profiler is host-side observation only: attaching it never changes simulated cycle
// or instruction counts (tested), and with no probe attached the simulator pays a single
// null check per step. Attaching a probe transparently drops the CPU out of
// block-compiled execution for the profiled window (per-retire callbacks come from the
// step interpreter only); detaching resumes block dispatch with identical counters.

#ifndef NEUROC_SRC_OBS_SIM_PROFILER_H_
#define NEUROC_SRC_OBS_SIM_PROFILER_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/isa/assembler.h"
#include "src/isa/isa.h"
#include "src/obs/json_writer.h"
#include "src/sim/cpu.h"
#include "src/sim/memory.h"

namespace neuroc {

// Backend-independent attribution result: exact per-PC and per-opcode retire counts and
// cycle charges for one profiled window, regardless of how they were gathered (per-retire
// probe callbacks or expanded block-granular counters). Every report builder below works
// off this struct, so both profilers share one reporting pipeline.
struct PcProfile {
  struct PcStat {
    uint64_t count = 0;   // times the instruction at this PC retired
    uint64_t cycles = 0;  // total cycles charged to it
    Op op = Op::kInvalid;
  };

  // Keyed by instruction address; std::map so iteration (and thus every report built from
  // it) is deterministically address-ordered.
  std::map<uint32_t, PcStat> pc_stats;
  std::array<uint64_t, 80> op_counts{};
  std::array<uint64_t, 80> op_cycles{};
  uint64_t total_instructions = 0;
  uint64_t total_cycles = 0;
  // Provenance: which collection backend produced this profile (recorded in profile JSON).
  std::string source;

  void Add(uint32_t addr, Op op, uint64_t count, uint64_t cycles) {
    PcStat& stat = pc_stats[addr];
    stat.count += count;
    stat.cycles += cycles;
    stat.op = op;
    op_counts[static_cast<size_t>(op)] += count;
    op_cycles[static_cast<size_t>(op)] += cycles;
    total_instructions += count;
    total_cycles += cycles;
  }
  void Reset() {
    pc_stats.clear();
    op_counts.fill(0);
    op_cycles.fill(0);
    total_instructions = 0;
    total_cycles = 0;
  }
};

// Provenance tags for PcProfile::source.
inline constexpr const char kProfileSourceStepProbe[] = "step_probe";
inline constexpr const char kProfileSourceBlockCounters[] = "block_counters";

class SimProfiler : public CpuProbe {
 public:
  using PcStat = PcProfile::PcStat;

  SimProfiler() { profile_.source = kProfileSourceStepProbe; }

  void OnRetire(uint32_t addr, Op op, uint32_t cycles) override;
  void Reset();

  const PcProfile& profile() const { return profile_; }
  const std::map<uint32_t, PcStat>& pc_stats() const { return profile_.pc_stats; }
  const std::array<uint64_t, 80>& op_counts() const { return profile_.op_counts; }
  const std::array<uint64_t, 80>& op_cycles() const { return profile_.op_cycles; }
  uint64_t total_instructions() const { return profile_.total_instructions; }
  uint64_t total_cycles() const { return profile_.total_cycles; }

 private:
  PcProfile profile_;
};

// Attaches `probe` to `cpu` for the current scope, restoring the previous probe on exit.
class ScopedCpuProbe {
 public:
  ScopedCpuProbe(Cpu& cpu, CpuProbe* probe) : cpu_(cpu), previous_(cpu.probe()) {
    cpu_.set_probe(probe);
  }
  ~ScopedCpuProbe() { cpu_.set_probe(previous_); }
  ScopedCpuProbe(const ScopedCpuProbe&) = delete;
  ScopedCpuProbe& operator=(const ScopedCpuProbe&) = delete;

 private:
  Cpu& cpu_;
  CpuProbe* previous_;
};

// ---------------------------------------------------------------------------
// Attribution reports
// ---------------------------------------------------------------------------

struct SymbolHotspot {
  std::string name;          // label (joined with '/' when labels share an address)
  uint32_t addr = 0;         // span start
  uint64_t instructions = 0;
  uint64_t cycles = 0;
};

struct HotspotReport {
  uint64_t total_instructions = 0;
  uint64_t total_cycles = 0;  // == Cpu::cycles() delta of the profiled window, exactly
  std::vector<SymbolHotspot> symbols;  // descending by cycles (ties: ascending address)
};

// Aggregates per-PC stats into per-symbol spans. PCs below the first symbol (or with an
// empty table) land in a synthetic "(unattributed)" entry so cycles are never dropped.
HotspotReport BuildHotspotReport(const PcProfile& profile, const SymbolTable& table);

// Fixed-width per-symbol table, hottest first.
std::string FormatHotspotTable(const HotspotReport& report);

// Annotated disassembly of every *executed* instruction, address-ordered, with label lines
// interleaved and per-instruction retire counts and cycles. `program` supplies the
// instruction bytes (profiled PCs outside it are skipped).
std::string FormatAnnotatedDisassembly(const PcProfile& profile, const SymbolTable& table,
                                       const AssembledProgram& program);

// Machine-readable forms (emitted under the writer's current position; callers compose
// them into larger documents).
void WriteHotspotJson(JsonWriter& w, const HotspotReport& report);
void WritePcStatsJson(JsonWriter& w, const PcProfile& profile);
void WriteHeatmapJson(JsonWriter& w, const MemHeatmap& heatmap, uint32_t flash_base,
                      uint32_t ram_base);

// Compact ASCII rendering of the SRAM portion of a heatmap (reads+writes per bucket on a
// log scale), for the human report.
std::string FormatSramHeatmap(const MemHeatmap& heatmap, uint32_t ram_base);

}  // namespace neuroc

#endif  // NEUROC_SRC_OBS_SIM_PROFILER_H_
