// Cycle-exact flat profiler for the simulated Cortex-M0.
//
// SimProfiler attaches to the CPU's per-instruction probe (Cpu::set_probe) and attributes
// every retired instruction's exact cycle cost to its program counter and opcode. Because
// the probe reports the full charge — fetch wait states, memory-access cost, branch
// penalty — the per-PC cycles sum to Cpu::cycles() for the profiled window, which is the
// invariant the paper-style attribution analyses (which kernel / which loop spends the
// cycles) stand on.
//
// Resolution back to source structure goes through the assembler symbol table: every label
// (kernel entry points *and* inner loop labels) becomes an attribution span, so the
// hotspot report reads like `kern_csc_m1i1_s/kcsc_col_loop: 61.2%`. Reports come in two
// forms: a human-readable table + annotated disassembly, and machine-readable JSON via the
// shared JsonWriter.
//
// The profiler is host-side observation only: attaching it never changes simulated cycle
// or instruction counts (tested), and with no probe attached the simulator pays a single
// null check per step. Attaching a probe transparently drops the CPU out of
// block-compiled execution for the profiled window (per-retire callbacks come from the
// step interpreter only); detaching resumes block dispatch with identical counters.

#ifndef NEUROC_SRC_OBS_SIM_PROFILER_H_
#define NEUROC_SRC_OBS_SIM_PROFILER_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/isa/assembler.h"
#include "src/isa/isa.h"
#include "src/obs/json_writer.h"
#include "src/sim/cpu.h"
#include "src/sim/memory.h"

namespace neuroc {

class SimProfiler : public CpuProbe {
 public:
  struct PcStat {
    uint64_t count = 0;   // times the instruction at this PC retired
    uint64_t cycles = 0;  // total cycles charged to it
    Op op = Op::kInvalid;
  };

  void OnRetire(uint32_t addr, Op op, uint32_t cycles) override;
  void Reset();

  // Keyed by instruction address; std::map so iteration (and thus every report built from
  // it) is deterministically address-ordered.
  const std::map<uint32_t, PcStat>& pc_stats() const { return pc_stats_; }
  const std::array<uint64_t, 80>& op_counts() const { return op_counts_; }
  const std::array<uint64_t, 80>& op_cycles() const { return op_cycles_; }
  uint64_t total_instructions() const { return total_instructions_; }
  uint64_t total_cycles() const { return total_cycles_; }

 private:
  std::map<uint32_t, PcStat> pc_stats_;
  std::array<uint64_t, 80> op_counts_{};
  std::array<uint64_t, 80> op_cycles_{};
  uint64_t total_instructions_ = 0;
  uint64_t total_cycles_ = 0;
};

// Attaches `probe` to `cpu` for the current scope, restoring the previous probe on exit.
class ScopedCpuProbe {
 public:
  ScopedCpuProbe(Cpu& cpu, CpuProbe* probe) : cpu_(cpu), previous_(cpu.probe()) {
    cpu_.set_probe(probe);
  }
  ~ScopedCpuProbe() { cpu_.set_probe(previous_); }
  ScopedCpuProbe(const ScopedCpuProbe&) = delete;
  ScopedCpuProbe& operator=(const ScopedCpuProbe&) = delete;

 private:
  Cpu& cpu_;
  CpuProbe* previous_;
};

// ---------------------------------------------------------------------------
// Attribution reports
// ---------------------------------------------------------------------------

struct SymbolHotspot {
  std::string name;          // label (joined with '/' when labels share an address)
  uint32_t addr = 0;         // span start
  uint64_t instructions = 0;
  uint64_t cycles = 0;
};

struct HotspotReport {
  uint64_t total_instructions = 0;
  uint64_t total_cycles = 0;  // == Cpu::cycles() delta of the profiled window, exactly
  std::vector<SymbolHotspot> symbols;  // descending by cycles (ties: ascending address)
};

// Aggregates per-PC stats into per-symbol spans. PCs below the first symbol (or with an
// empty table) land in a synthetic "(unattributed)" entry so cycles are never dropped.
HotspotReport BuildHotspotReport(const SimProfiler& profiler, const SymbolTable& table);

// Fixed-width per-symbol table, hottest first.
std::string FormatHotspotTable(const HotspotReport& report);

// Annotated disassembly of every *executed* instruction, address-ordered, with label lines
// interleaved and per-instruction retire counts and cycles. `program` supplies the
// instruction bytes (profiled PCs outside it are skipped).
std::string FormatAnnotatedDisassembly(const SimProfiler& profiler, const SymbolTable& table,
                                       const AssembledProgram& program);

// Machine-readable forms (emitted under the writer's current position; callers compose
// them into larger documents).
void WriteHotspotJson(JsonWriter& w, const HotspotReport& report);
void WritePcStatsJson(JsonWriter& w, const SimProfiler& profiler);
void WriteHeatmapJson(JsonWriter& w, const MemHeatmap& heatmap, uint32_t flash_base,
                      uint32_t ram_base);

// Compact ASCII rendering of the SRAM portion of a heatmap (reads+writes per bucket on a
// log scale), for the human report.
std::string FormatSramHeatmap(const MemHeatmap& heatmap, uint32_t ram_base);

}  // namespace neuroc

#endif  // NEUROC_SRC_OBS_SIM_PROFILER_H_
