#include "src/obs/block_profiler.h"

namespace neuroc {

PcProfile BlockProfiler::Collect() const {
  PcProfile out;
  out.source = kProfileSourceBlockCounters;
  for (const auto& [addr, stat] : cpu_.CollectBlockProfile()) {
    out.Add(addr, stat.op, stat.count, stat.cycles);
  }
  return out;
}

}  // namespace neuroc
