// Energy-proxy model: cycles × active-power weights, per "Measuring what Really Matters"
// (Heim et al., PAPERS.md) — tinyML evaluation should report energy alongside latency,
// and on a cache-less in-order M0 an attribution-weighted cycle model is a usable proxy.
//
// The model has two parts:
//  - core energy: attributed cycles per opcode class × a per-class active-power weight
//    (pJ/cycle). Classes mirror the runtime profile's categories (alu, mul, load, store,
//    branch, stack), so the inputs come straight from the cycle-exact profilers.
//  - memory energy: counted accesses × per-access weights, flash vs SRAM (flash reads on
//    these parts burn noticeably more than SRAM; the counters already split them).
//
// The default weights are a documented proxy calibrated to the STM32F0-class numbers the
// paper targets (~250 µA/MHz at 3.3 V ≈ 800 pJ/cycle core, memory adders on top); they
// are knobs, not measurements — the point is relative comparability across models,
// encodings and decode modes, with the units honest enough to sanity-check against
// datasheet run-mode figures.

#ifndef NEUROC_SRC_OBS_ENERGY_H_
#define NEUROC_SRC_OBS_ENERGY_H_

#include <array>
#include <cstdint>

#include "src/obs/json_writer.h"

namespace neuroc {

// Canonical opcode-class order for the energy interface (matches the runtime profile's
// category split).
enum class EnergyClass : size_t { kAlu = 0, kMul, kLoad, kStore, kBranch, kStack };
inline constexpr size_t kEnergyClassCount = 6;
inline constexpr const char* kEnergyClassNames[kEnergyClassCount] = {
    "alu", "multiplies", "loads", "stores", "branches", "stack_ops"};

struct EnergyModel {
  // Core active-power weights, pJ per attributed cycle, by opcode class.
  std::array<double, kEnergyClassCount> core_pj_per_cycle{};
  // Memory-access adders, pJ per counted access.
  double flash_read_pj = 0.0;
  double sram_read_pj = 0.0;
  double sram_write_pj = 0.0;

  // Default proxy weights for the Cortex-M0 platforms the paper targets.
  static EnergyModel CortexM0Proxy();
};

struct EnergyEstimate {
  std::array<double, kEnergyClassCount> core_pj{};  // per-class core energy
  double core_total_pj = 0.0;
  double flash_pj = 0.0;
  double sram_pj = 0.0;
  double total_pj = 0.0;
  double total_uj() const { return total_pj * 1e-6; }
  // Average power over the window at the given core clock (mW).
  double AvgPowerMw(uint64_t cycles, double clock_hz) const {
    if (cycles == 0 || clock_hz <= 0.0) {
      return 0.0;
    }
    const double seconds = static_cast<double>(cycles) / clock_hz;
    return total_pj * 1e-9 / seconds;  // pJ/s → mW
  }
};

// cycles_by_class in EnergyClass order; access counts from the memory system's counters.
EnergyEstimate EstimateEnergy(const EnergyModel& model,
                              const std::array<uint64_t, kEnergyClassCount>& cycles_by_class,
                              uint64_t flash_reads, uint64_t sram_reads,
                              uint64_t sram_writes);

// {"model":{...},"core_pj":{per-class...},"core_total_pj":...,"flash_pj":...,
//  "sram_pj":...,"total_pj":...,"total_uj":...} at the writer's position.
void WriteEnergyJson(JsonWriter& w, const EnergyModel& model, const EnergyEstimate& e);

}  // namespace neuroc

#endif  // NEUROC_SRC_OBS_ENERGY_H_
