// Dependency-free streaming JSON writer shared by every structured output in the repo:
// profiler reports, Chrome trace exports, per-epoch metrics JSONL, and the bench harness
// (bench_util.h). Replaces the hand-rolled fprintf JSON that benches used to carry.
//
// Usage:
//   JsonWriter w;
//   w.BeginObject();
//   w.Key("bench").Value("train_throughput");
//   w.Key("configs").BeginArray();
//   ...
//   w.EndArray().EndObject();
//   WriteStringToFile(path, w.str());
//
// The writer validates nesting with NEUROC_CHECK (malformed emission is a programming
// error) and produces deterministic bytes for deterministic inputs — the profiler's
// byte-identical-output test relies on that.

#ifndef NEUROC_SRC_OBS_JSON_WRITER_H_
#define NEUROC_SRC_OBS_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace neuroc {

class JsonWriter {
 public:
  // `indent` > 0 pretty-prints with that many spaces per level; 0 emits compact JSON
  // (the right form for JSONL records and trace events, which must stay one-per-line).
  explicit JsonWriter(int indent = 2) : indent_(indent) {}

  const std::string& str() const { return out_; }

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Object member name; must be followed by exactly one value or container.
  JsonWriter& Key(std::string_view name);

  JsonWriter& Value(std::string_view v);
  JsonWriter& Value(const char* v) { return Value(std::string_view(v)); }
  JsonWriter& Value(bool v);
  JsonWriter& Value(int v) { return Value(static_cast<int64_t>(v)); }
  JsonWriter& Value(unsigned v) { return Value(static_cast<uint64_t>(v)); }
  JsonWriter& Value(int64_t v);
  JsonWriter& Value(uint64_t v);
  // Non-finite doubles become null (JSON has no NaN/Inf). `precision` is the %g precision.
  JsonWriter& Value(double v, int precision = 6);
  // Fixed-point form (%f with `decimals` digits): use for metrics that trajectory diffs
  // compare across runs, where %g's switch to scientific notation (e.g. 1.1e+02 for a
  // sim-MIPS figure) hides real movement behind a 2-significant-digit mantissa.
  JsonWriter& ValueFixed(double v, int decimals);

  // True once the single top-level value is complete.
  bool done() const { return stack_.empty() && has_top_value_; }

  static std::string Escape(std::string_view s);

 private:
  enum class Scope : uint8_t { kObject, kArray };
  struct Frame {
    Scope scope;
    size_t count = 0;  // members/elements emitted so far
  };

  // Comma/indent bookkeeping before a key (in objects) or a value (in arrays / top level).
  void BeforeItem();
  void NewlineIndent();
  void Append(std::string_view s) { out_.append(s.data(), s.size()); }

  std::string out_;
  std::vector<Frame> stack_;
  int indent_;
  bool after_key_ = false;      // a Key was just written; next emission is its value
  bool has_top_value_ = false;  // the single top-level value has been emitted
};

// Writes `content` to `path`, returning false (and logging) on failure.
bool WriteStringToFile(const std::string& path, std::string_view content);

}  // namespace neuroc

#endif  // NEUROC_SRC_OBS_JSON_WRITER_H_
