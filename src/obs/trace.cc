#include "src/obs/trace.h"

#include <algorithm>
#include <cstdlib>

#include "src/obs/json_writer.h"

namespace neuroc {

TraceRecorder::TraceRecorder() { Start(); }

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = [] {
    auto* r = new TraceRecorder();
    const char* env = std::getenv("NEUROC_TRACE");
    if (env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0')) {
      r->set_enabled(true);
    }
    return r;
  }();
  return *recorder;
}

void TraceRecorder::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  thread_ids_.clear();
  origin_ = std::chrono::steady_clock::now();
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

double TraceRecorder::NowUs() const {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                   origin_)
      .count();
}

uint32_t TraceRecorder::ThreadId() const {
  // Callers hold mutex_.
  const std::thread::id self = std::this_thread::get_id();
  const auto it = std::find(thread_ids_.begin(), thread_ids_.end(), self);
  if (it != thread_ids_.end()) {
    return static_cast<uint32_t>(it - thread_ids_.begin());
  }
  thread_ids_.push_back(self);
  return static_cast<uint32_t>(thread_ids_.size() - 1);
}

void TraceRecorder::AddCompleteEvent(const std::string& name, const std::string& track,
                                     double ts_us, double dur_us) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back({'X', name, track, ts_us, dur_us, 0.0, ThreadId()});
}

void TraceRecorder::AddCounterEvent(const std::string& name, const std::string& track,
                                    double ts_us, double value) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back({'C', name, track, ts_us, 0.0, value, ThreadId()});
}

void TraceRecorder::Counter(const std::string& name, double value) {
  AddCounterEvent(name, "host", NowUs(), value);
}

std::string TraceRecorder::ToChromeTraceJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Tracks render as processes: assign pids in first-appearance order and name them with
  // process_name metadata events (pid/tid must be integers for Perfetto).
  std::vector<std::string> tracks;
  auto pid_of = [&tracks](const std::string& track) -> uint64_t {
    const auto it = std::find(tracks.begin(), tracks.end(), track);
    if (it != tracks.end()) {
      return static_cast<uint64_t>(it - tracks.begin());
    }
    tracks.push_back(track);
    return tracks.size() - 1;
  };
  for (const Event& e : events_) {
    pid_of(e.track);
  }
  JsonWriter w(/*indent=*/0);
  w.BeginObject();
  w.Key("displayTimeUnit").Value("ms");
  w.Key("traceEvents").BeginArray();
  for (size_t pid = 0; pid < tracks.size(); ++pid) {
    w.BeginObject();
    w.Key("name").Value("process_name");
    w.Key("ph").Value("M");
    w.Key("pid").Value(static_cast<uint64_t>(pid));
    w.Key("tid").Value(0);
    w.Key("args").BeginObject();
    w.Key("name").Value(tracks[pid]);
    w.EndObject();
    w.EndObject();
  }
  for (const Event& e : events_) {
    w.BeginObject();
    w.Key("name").Value(e.name);
    w.Key("ph").Value(std::string_view(&e.phase, 1));
    w.Key("pid").Value(pid_of(e.track));
    w.Key("tid").Value(static_cast<uint64_t>(e.tid));
    w.Key("ts").Value(e.ts_us, /*precision=*/12);
    if (e.phase == 'X') {
      w.Key("dur").Value(e.dur_us, /*precision=*/12);
    } else {
      w.Key("args").BeginObject();
      w.Key("value").Value(e.value, /*precision=*/12);
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

bool TraceRecorder::WriteChromeTrace(const std::string& path) const {
  return WriteStringToFile(path, ToChromeTraceJson());
}

TraceRecorder::Span::Span(TraceRecorder& recorder, const char* name)
    : recorder_(recorder.enabled() ? &recorder : nullptr) {
  if (recorder_ != nullptr) {
    name_ = name;
    start_us_ = recorder_->NowUs();
  }
}

TraceRecorder::Span::~Span() {
  if (recorder_ != nullptr) {
    recorder_->AddCompleteEvent(name_, "host", start_us_, recorder_->NowUs() - start_us_);
  }
}

}  // namespace neuroc
