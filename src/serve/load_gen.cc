#include "src/serve/load_gen.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace neuroc {

namespace {

uint64_t Fnv1a(const std::vector<uint8_t>& bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Shared collector: latencies, totals, and the order-independent payload checksum.
struct Collector {
  explicit Collector(const LoadGenConfig& config) : config(config) {}

  void Record(uint64_t request_id, const ServeResponse& resp, double latency_ms) {
    std::lock_guard<std::mutex> lock(mutex);
    latencies.push_back(latency_ms);
    if (resp.ok()) {
      report.total_cycles += resp.cycles;
      report.total_energy_pj += resp.energy_pj;
    } else {
      ++report.failed;
    }
    if (request_id < config.checksum_prefix) {
      // XOR of per-request payload hashes: any completion order folds to the same value,
      // which is the whole point — only the payload bytes are pinned by the determinism
      // contract, not the scheduling.
      report.checksum ^= Fnv1a(EncodeResponsePayloadForChecksum(resp));
    }
    ++done;
    done_cv.notify_all();
  }

  static std::vector<uint8_t> EncodeResponsePayloadForChecksum(const ServeResponse& r) {
    std::vector<uint8_t> out;
    AppendResponsePayload(r, &out);
    return out;
  }

  void WaitFor(size_t n) {
    std::unique_lock<std::mutex> lock(mutex);
    done_cv.wait(lock, [&] { return done >= n; });
  }

  LoadGenReport Finish(double wall_ms) {
    std::lock_guard<std::mutex> lock(mutex);
    report.completed = latencies.size();
    report.wall_ms = wall_ms;
    if (wall_ms > 0.0) {
      report.achieved_per_sec = 1000.0 * static_cast<double>(report.completed) / wall_ms;
    }
    if (!latencies.empty()) {
      std::sort(latencies.begin(), latencies.end());
      const auto pct = [&](double p) {
        const size_t idx = std::min(
            latencies.size() - 1,
            static_cast<size_t>(p * static_cast<double>(latencies.size() - 1)));
        return latencies[idx];
      };
      report.p50_ms = pct(0.50);
      report.p99_ms = pct(0.99);
      double sum = 0.0;
      for (double v : latencies) {
        sum += v;
      }
      report.mean_ms = sum / static_cast<double>(latencies.size());
    }
    return report;
  }

  const LoadGenConfig& config;
  std::mutex mutex;
  std::condition_variable done_cv;
  size_t done = 0;
  std::vector<double> latencies;
  LoadGenReport report;
};

}  // namespace

ServeRequest MakeLoadGenRequest(const LoadGenConfig& config, uint64_t index) {
  NEUROC_CHECK(!config.models.empty() && !config.tenants.empty());
  ServeRequest req;
  req.request_id = index;
  req.model = config.models[index % config.models.size()];
  req.tenant = config.tenants[index % config.tenants.size()];
  Rng rng(config.seed * 0x9e3779b97f4a7c15ULL + index);
  req.input.resize(config.input_dim);
  for (int8_t& v : req.input) {
    v = static_cast<int8_t>(rng.NextInt(-128, 127));
  }
  return req;
}

LoadGenReport RunClosedLoop(InferenceService& service, const LoadGenConfig& config) {
  Collector collector(config);
  const size_t clients = std::max<size_t>(1, config.clients);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(clients);
  // Client c owns the request indices {c, c+clients, c+2*clients, ...}; the union over
  // clients covers [0, total) for any client count, so the checksum prefix is always
  // fully requested.
  for (size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      for (uint64_t i = c; i < config.total_requests; i += clients) {
        ServeRequest req = MakeLoadGenRequest(config, i);
        std::mutex m;
        std::condition_variable cv;
        bool got = false;
        const auto sent = std::chrono::steady_clock::now();
        service.Submit(std::move(req), [&](const ServeResponse& resp) {
          const double ms =
              std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                        sent)
                  .count();
          collector.Record(i, resp, ms);
          std::lock_guard<std::mutex> lock(m);
          got = true;
          cv.notify_one();
        });
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return got; });
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
          .count();
  return collector.Finish(wall_ms);
}

LoadGenReport RunOpenLoop(InferenceService& service, const LoadGenConfig& config) {
  NEUROC_CHECK(config.offered_qps > 0.0);
  Collector collector(config);
  const auto t0 = std::chrono::steady_clock::now();
  const double interval_ns = 1e9 / config.offered_qps;
  for (uint64_t i = 0; i < config.total_requests; ++i) {
    const auto due =
        t0 + std::chrono::nanoseconds(static_cast<int64_t>(interval_ns * static_cast<double>(i)));
    std::this_thread::sleep_until(due);  // no-op once the service falls behind
    ServeRequest req = MakeLoadGenRequest(config, i);
    const auto sent = std::chrono::steady_clock::now();
    service.Submit(std::move(req), [&collector, i, sent](const ServeResponse& resp) {
      const double ms =
          std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                    sent)
              .count();
      collector.Record(i, resp, ms);
    });
  }
  collector.WaitFor(config.total_requests);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
          .count();
  return collector.Finish(wall_ms);
}

}  // namespace neuroc
