// The multi-tenant batched inference service behind `neuroc serve`.
//
// Request lifecycle:
//
//   Submit() ──admission──▶ per-model queues (per-tenant sub-queues) ──RunOnce()──▶
//     one batch per model per round (round-robin across tenants, so no tenant can
//     starve another inside a shared model) ──▶ batches execute concurrently on the
//     shared ThreadPool (one worker drives one model's machine; a simulated MCU is
//     single-core, so requests *within* a batch run back-to-back via
//     GuardedModel::PredictBatch) ──▶ completions fire with the response.
//
// Determinism contract: a response payload is a pure function of (request, model) —
// inference is input-deterministic, per-inference cycles are input-independent, and the
// energy proxy is profiled once per model load — so payloads are byte-identical at any
// NEUROC_NUM_THREADS and any batching/arrival interleaving (asserted in
// tests/serve_test.cc). Scheduling order, by contrast, is load-dependent by design; only
// the payloads are pinned.
//
// Observability: global serve.* counters/histograms plus per-tenant scopes
// (serve.tenant.<name>.* via MetricsScope) in the process MetricsRegistry — the
// `neuroc.serve.v1` metrics schema documented in docs/SERVING.md.

#ifndef NEUROC_SRC_SERVE_SERVICE_H_
#define NEUROC_SRC_SERVE_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/obs/registry.h"
#include "src/serve/frame.h"
#include "src/serve/model_cache.h"

namespace neuroc {

struct ServeConfig {
  size_t max_batch = 8;          // requests per model per dispatch round
  size_t max_queue_depth = 1024; // admission cap; beyond it requests are rejected
  size_t cache_capacity = 4;     // resident deployed models (LRU beyond this)
  MachineConfig machine;
  RecoveryPolicy policy;
  // Tests: no dispatcher thread; the test drives RunOnce() itself, making batch
  // formation a deterministic function of the queued requests.
  bool manual_dispatch = false;
  // Tests: keep a journal of formed batches (model, per-tenant composition).
  bool record_batches = false;
};

// What one dispatch round decided for one model — the observable batching decision the
// test harness asserts on.
struct BatchRecord {
  std::string model;
  size_t size = 0;
  // Tenant -> requests taken this batch, in pop order (round-robin).
  std::vector<std::pair<std::string, size_t>> per_tenant;
};

class InferenceService {
 public:
  // Runs when the request completes (possibly on a pool worker or the dispatcher
  // thread; never concurrently for the same request). Must not block for long — it sits
  // on the serving hot path.
  using Completion = std::function<void(const ServeResponse&)>;

  InferenceService(const ServeConfig& config, ModelLoader loader);
  ~InferenceService();

  InferenceService(const InferenceService&) = delete;
  InferenceService& operator=(const InferenceService&) = delete;

  // Spawns the dispatcher thread (no-op under manual_dispatch).
  void Start();
  // Stops the dispatcher and fails any still-queued request with kResourceExhausted
  // ("shutting down") so no client is left waiting. Idempotent.
  void Stop();

  // Thread-safe asynchronous intake. Admission control rejects (with an immediate
  // error completion) when the total queue depth is at max_queue_depth.
  void Submit(ServeRequest request, Completion done);

  // One dispatch round: forms at most one batch per model with pending work and
  // executes them (concurrently when more than one) on the shared ThreadPool. Returns
  // the number of requests completed. Public for the manual_dispatch test mode; the
  // dispatcher thread calls exactly this.
  size_t RunOnce();

  // Requests queued but not yet dispatched.
  size_t QueueDepth() const;
  // Drains the batch journal (record_batches mode).
  std::vector<BatchRecord> TakeBatchRecords();

  ModelCache& cache() { return cache_; }
  const ServeConfig& config() const { return config_; }

 private:
  struct Pending {
    ServeRequest request;
    Completion done;
    std::chrono::steady_clock::time_point submitted;
  };
  // Per-model admission queue: per-tenant FIFOs plus the round-robin state that keeps
  // batch formation fair across tenants.
  struct ModelQueue {
    std::vector<std::string> tenant_order;  // first-arrival order, stable
    std::map<std::string, std::deque<Pending>> by_tenant;
    size_t rr_cursor = 0;  // index into tenant_order to start the next batch from
    size_t depth = 0;

    bool empty() const { return depth == 0; }
  };
  struct Batch {
    std::string model;
    std::vector<Pending> requests;
  };

  void DispatcherLoop();
  // Pops up to max_batch requests from `mq` round-robin across tenants (mutex held).
  Batch FormBatchLocked(const std::string& model, ModelQueue& mq);
  void ExecuteBatch(Batch& batch);
  void CompleteRequest(Pending& pending, const ServeResponse& response);
  // Per-tenant metric scope, created on first use (mutex held).
  MetricsScope& TenantScopeLocked(const std::string& tenant);

  ServeConfig config_;
  ModelCache cache_;

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::map<std::string, ModelQueue> queues_;  // keyed by model name (sorted: round order)
  size_t total_depth_ = 0;
  std::map<std::string, MetricsScope> tenant_scopes_;
  std::vector<BatchRecord> batch_records_;
  bool stopping_ = false;

  std::thread dispatcher_;
};

}  // namespace neuroc

#endif  // NEUROC_SRC_SERVE_SERVICE_H_
