// Wire framing for `neuroc serve`: deliberately dumb length-prefixed frames over a byte
// stream (TCP or a socketpair) — the interesting serving work is scheduling, not protocol.
//
//   frame    := u32le payload_length | payload
//   request  := u32le magic "NRQ1" | u64le request_id | u16le tenant_len | tenant bytes
//               | u16le model_len | model bytes | u32le input_len | int8 input bytes
//   response := u32le magic "NRS1" | u64le request_id | u16le status code
//               | i32le prediction | u64le cycles | u64le energy_pj
//               | u16le message_len | message bytes
//
// Every decoder is total: random, truncated, oversized or bit-flipped bytes yield a
// structured Status (kMalformedImage for structural nonsense, kResourceExhausted for a
// declared length beyond kMaxFramePayloadBytes) — never a hang, allocation blow-up or
// host abort. That contract is fuzzed by the `frame` oracle (src/fuzz/frame_oracle.cc).
//
// Responses carry simulated cycles and the energy proxy (integer picojoules) next to the
// prediction, so latency *and* energy per request are first-class all the way to the
// client ("Measuring what Really Matters", Heim et al., PAPERS.md). All payloads are pure
// functions of their fields — byte-identical across hosts and thread counts.

#ifndef NEUROC_SRC_SERVE_FRAME_H_
#define NEUROC_SRC_SERVE_FRAME_H_

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace neuroc {

// Hard cap on a frame payload; a declared length beyond this is rejected before any
// buffering (the reader never allocates on the say-so of a hostile length field).
inline constexpr uint32_t kMaxFramePayloadBytes = 1u << 20;
// Field caps, sized generously above anything the service produces.
inline constexpr size_t kMaxTenantBytes = 64;
inline constexpr size_t kMaxModelNameBytes = 128;
inline constexpr size_t kMaxInputBytes = 1u << 16;

inline constexpr uint32_t kRequestMagic = 0x3151524Eu;   // "NRQ1" little-endian
inline constexpr uint32_t kResponseMagic = 0x3153524Eu;  // "NRS1" little-endian

struct ServeRequest {
  uint64_t request_id = 0;
  std::string tenant;
  std::string model;
  std::vector<int8_t> input;
};

struct ServeResponse {
  uint64_t request_id = 0;
  ErrorCode code = ErrorCode::kOk;
  int32_t prediction = -1;
  uint64_t cycles = 0;     // simulated cycles of the inference (0 on error)
  uint64_t energy_pj = 0;  // energy proxy for the inference, integer pJ (0 on error)
  std::string message;     // deterministic error detail; empty on success

  bool ok() const { return code == ErrorCode::kOk; }
};

// Whole frames (length prefix included).
std::vector<uint8_t> EncodeRequestFrame(const ServeRequest& request);
std::vector<uint8_t> EncodeResponseFrame(const ServeResponse& response);

// Payload codecs (the bytes after the length prefix). Decoders reject bad magic,
// truncation, field caps and trailing garbage with kMalformedImage.
void AppendRequestPayload(const ServeRequest& request, std::vector<uint8_t>* out);
void AppendResponsePayload(const ServeResponse& response, std::vector<uint8_t>* out);
StatusOr<ServeRequest> DecodeRequestPayload(std::span<const uint8_t> payload);
StatusOr<ServeResponse> DecodeResponsePayload(std::span<const uint8_t> payload);

// Incremental defragmenter: feed arbitrary byte chunks, pop complete payloads. One
// oversized declared length poisons the stream permanently (framing sync is lost — the
// connection must be dropped), reported as kResourceExhausted from then on.
class FrameReader {
 public:
  // Appends stream bytes. No-op once the stream is poisoned.
  void Feed(std::span<const uint8_t> bytes);

  // Pops the next complete payload into `payload`. Returns true when one was popped,
  // false when more bytes are needed, or the poisoned-stream error.
  StatusOr<bool> Next(std::vector<uint8_t>* payload);

  // Bytes buffered but not yet consumed (a non-empty value at EOF means the peer died
  // mid-frame).
  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::deque<uint8_t> buffer_;
  Status poisoned_ = Status::Ok();
};

}  // namespace neuroc

#endif  // NEUROC_SRC_SERVE_FRAME_H_
