#include "src/serve/frame.h"

#include <algorithm>

namespace neuroc {

namespace {

Status Malformed(const std::string& why) {
  return Status(ErrorCode::kMalformedImage, "frame: " + why);
}

void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

// Bounds-checked little-endian cursor over a payload span.
class Cursor {
 public:
  explicit Cursor(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  bool TakeU16(uint16_t* v) {
    if (bytes_.size() - pos_ < 2) return false;
    *v = static_cast<uint16_t>(bytes_[pos_] | (bytes_[pos_ + 1] << 8));
    pos_ += 2;
    return true;
  }
  bool TakeU32(uint32_t* v) {
    if (bytes_.size() - pos_ < 4) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(bytes_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return true;
  }
  bool TakeU64(uint64_t* v) {
    if (bytes_.size() - pos_ < 8) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(bytes_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return true;
  }
  bool TakeBytes(size_t n, std::span<const uint8_t>* out) {
    if (bytes_.size() - pos_ < n) return false;
    *out = bytes_.subspan(pos_, n);
    pos_ += n;
    return true;
  }
  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
};

std::vector<uint8_t> WithLengthPrefix(const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> frame;
  frame.reserve(4 + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

}  // namespace

void AppendRequestPayload(const ServeRequest& request, std::vector<uint8_t>* out) {
  PutU32(out, kRequestMagic);
  PutU64(out, request.request_id);
  PutU16(out, static_cast<uint16_t>(request.tenant.size()));
  out->insert(out->end(), request.tenant.begin(), request.tenant.end());
  PutU16(out, static_cast<uint16_t>(request.model.size()));
  out->insert(out->end(), request.model.begin(), request.model.end());
  PutU32(out, static_cast<uint32_t>(request.input.size()));
  for (const int8_t v : request.input) {
    out->push_back(static_cast<uint8_t>(v));
  }
}

void AppendResponsePayload(const ServeResponse& response, std::vector<uint8_t>* out) {
  PutU32(out, kResponseMagic);
  PutU64(out, response.request_id);
  PutU16(out, static_cast<uint16_t>(response.code));
  PutU32(out, static_cast<uint32_t>(response.prediction));
  PutU64(out, response.cycles);
  PutU64(out, response.energy_pj);
  PutU16(out, static_cast<uint16_t>(response.message.size()));
  out->insert(out->end(), response.message.begin(), response.message.end());
}

std::vector<uint8_t> EncodeRequestFrame(const ServeRequest& request) {
  std::vector<uint8_t> payload;
  AppendRequestPayload(request, &payload);
  return WithLengthPrefix(payload);
}

std::vector<uint8_t> EncodeResponseFrame(const ServeResponse& response) {
  std::vector<uint8_t> payload;
  AppendResponsePayload(response, &payload);
  return WithLengthPrefix(payload);
}

StatusOr<ServeRequest> DecodeRequestPayload(std::span<const uint8_t> payload) {
  Cursor c(payload);
  uint32_t magic = 0;
  if (!c.TakeU32(&magic)) return Malformed("truncated before magic");
  if (magic != kRequestMagic) return Malformed("bad request magic");
  ServeRequest req;
  if (!c.TakeU64(&req.request_id)) return Malformed("truncated request_id");

  uint16_t tenant_len = 0;
  if (!c.TakeU16(&tenant_len)) return Malformed("truncated tenant length");
  if (tenant_len > kMaxTenantBytes) return Malformed("tenant name too long");
  std::span<const uint8_t> bytes;
  if (!c.TakeBytes(tenant_len, &bytes)) return Malformed("truncated tenant");
  req.tenant.assign(bytes.begin(), bytes.end());

  uint16_t model_len = 0;
  if (!c.TakeU16(&model_len)) return Malformed("truncated model length");
  if (model_len > kMaxModelNameBytes) return Malformed("model name too long");
  if (!c.TakeBytes(model_len, &bytes)) return Malformed("truncated model");
  req.model.assign(bytes.begin(), bytes.end());

  uint32_t input_len = 0;
  if (!c.TakeU32(&input_len)) return Malformed("truncated input length");
  if (input_len > kMaxInputBytes) return Malformed("input too long");
  if (!c.TakeBytes(input_len, &bytes)) return Malformed("truncated input");
  req.input.resize(input_len);
  std::transform(bytes.begin(), bytes.end(), req.input.begin(),
                 [](uint8_t b) { return static_cast<int8_t>(b); });

  if (c.remaining() != 0) return Malformed("trailing garbage after request");
  return req;
}

StatusOr<ServeResponse> DecodeResponsePayload(std::span<const uint8_t> payload) {
  Cursor c(payload);
  uint32_t magic = 0;
  if (!c.TakeU32(&magic)) return Malformed("truncated before magic");
  if (magic != kResponseMagic) return Malformed("bad response magic");
  ServeResponse resp;
  if (!c.TakeU64(&resp.request_id)) return Malformed("truncated request_id");
  uint16_t code = 0;
  if (!c.TakeU16(&code)) return Malformed("truncated status code");
  if (code > static_cast<uint16_t>(ErrorCode::kInternal)) {
    return Malformed("unknown status code");
  }
  resp.code = static_cast<ErrorCode>(code);
  uint32_t prediction = 0;
  if (!c.TakeU32(&prediction)) return Malformed("truncated prediction");
  resp.prediction = static_cast<int32_t>(prediction);
  if (!c.TakeU64(&resp.cycles)) return Malformed("truncated cycles");
  if (!c.TakeU64(&resp.energy_pj)) return Malformed("truncated energy");
  uint16_t message_len = 0;
  if (!c.TakeU16(&message_len)) return Malformed("truncated message length");
  std::span<const uint8_t> bytes;
  if (!c.TakeBytes(message_len, &bytes)) return Malformed("truncated message");
  resp.message.assign(bytes.begin(), bytes.end());
  if (c.remaining() != 0) return Malformed("trailing garbage after response");
  return resp;
}

void FrameReader::Feed(std::span<const uint8_t> bytes) {
  if (!poisoned_.ok()) {
    return;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

StatusOr<bool> FrameReader::Next(std::vector<uint8_t>* payload) {
  if (!poisoned_.ok()) {
    return poisoned_;
  }
  if (buffer_.size() < 4) {
    return false;
  }
  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<uint32_t>(buffer_[static_cast<size_t>(i)]) << (8 * i);
  }
  if (length > kMaxFramePayloadBytes) {
    // Sync is unrecoverable: a corrupt length field means every subsequent byte offset
    // is suspect. Poison instead of resynchronizing heuristically.
    poisoned_ = Status(ErrorCode::kResourceExhausted,
                       "frame: declared payload length " + std::to_string(length) +
                           " exceeds cap " + std::to_string(kMaxFramePayloadBytes));
    buffer_.clear();
    return poisoned_;
  }
  if (buffer_.size() - 4 < length) {
    return false;
  }
  buffer_.erase(buffer_.begin(), buffer_.begin() + 4);
  payload->assign(buffer_.begin(), buffer_.begin() + length);
  buffer_.erase(buffer_.begin(), buffer_.begin() + length);
  return true;
}

}  // namespace neuroc
