// Load generation for the serving layer: deterministic request streams plus closed- and
// open-loop drivers over InferenceService::Submit.
//
// Request i in a run is a pure function of (config.seed, i): tenant and model assignment
// round-robin over the configured lists and the input bytes come from a per-request
// SplitMix-forked Rng. That makes the *payload side* of a run reproducible — the report's
// `checksum` folds the encoded response payloads of a fixed request-id prefix with an
// order-independent combine, so it is byte-stable across thread counts, arrival jitter
// and batching interleavings (the bench gate's deterministic key). Latency percentiles
// and achieved throughput are host-varying by nature and are reported separately.
//
// Closed loop: `clients` workers, each sending its next request only after the previous
// response arrived (concurrency == clients). Open loop: requests injected on a fixed
// schedule at `offered_qps` regardless of completions — the standard way to expose
// queueing delay past the saturation point.

#ifndef NEUROC_SRC_SERVE_LOAD_GEN_H_
#define NEUROC_SRC_SERVE_LOAD_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/serve/service.h"

namespace neuroc {

struct LoadGenConfig {
  std::vector<std::string> models;   // request i uses models[i % size]
  std::vector<std::string> tenants;  // request i uses tenants[i % size]
  size_t input_dim = 16;             // bytes of deterministic input per request
  uint64_t seed = 1;

  size_t clients = 4;        // closed loop: concurrent clients
  size_t total_requests = 64;
  double offered_qps = 0.0;  // open loop: injection rate (ignored in closed loop)

  // Response payloads of request ids < checksum_prefix feed the checksum. Fixed so the
  // checksum does not depend on how many requests a particular sweep point sends.
  size_t checksum_prefix = 32;
};

struct LoadGenReport {
  size_t completed = 0;
  size_t failed = 0;           // responses with a non-OK code
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double wall_ms = 0.0;
  double achieved_per_sec = 0.0;
  uint64_t total_cycles = 0;     // simulated guest cycles across OK responses
  uint64_t total_energy_pj = 0;  // energy proxy across OK responses
  uint64_t checksum = 0;         // order-independent FNV fold over prefix payloads
};

// The deterministic request stream: request `index` of a run with this config.
ServeRequest MakeLoadGenRequest(const LoadGenConfig& config, uint64_t index);

LoadGenReport RunClosedLoop(InferenceService& service, const LoadGenConfig& config);
LoadGenReport RunOpenLoop(InferenceService& service, const LoadGenConfig& config);

}  // namespace neuroc

#endif  // NEUROC_SRC_SERVE_LOAD_GEN_H_
