// Socket front-end for InferenceService: length-prefixed request frames in, response
// frames out. The protocol is deliberately dumb (see frame.h) — the scheduling lives in
// InferenceService; this layer only pumps bytes.
//
// Each connection gets one reader thread that feeds a FrameReader and Submits decoded
// requests; completions (which may fire on pool workers) serialize response frames back
// through a per-connection write mutex. Responses are matched to requests by request_id,
// not by stream order — pipelined requests may complete out of order.
//
// Connections can be real TCP accepts (ListenAndServe) or pre-connected fds such as one
// end of a socketpair (AddConnection) — the deterministic in-process test harness uses
// the latter so no port or network nondeterminism enters the tests.

#ifndef NEUROC_SRC_SERVE_SERVER_H_
#define NEUROC_SRC_SERVE_SERVER_H_

#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <thread>

#include "src/common/status.h"
#include "src/serve/service.h"

namespace neuroc {

class FrameServer {
 public:
  explicit FrameServer(InferenceService* service);
  ~FrameServer();

  FrameServer(const FrameServer&) = delete;
  FrameServer& operator=(const FrameServer&) = delete;

  // Adopts a connected stream fd (takes ownership; closed on teardown) and spawns its
  // reader thread. Used directly by tests with socketpair fds.
  void AddConnection(int fd);

  // Binds 127.0.0.1:port (port 0 picks a free one; see bound_port()), then accepts
  // connections until Stop. Blocks; call from a dedicated thread.
  Status ListenAndServe(uint16_t port);

  // After ListenAndServe has bound: the actual port (for port 0).
  uint16_t bound_port() const { return bound_port_.load(); }

  // Shuts the listener (if any) and every connection down and joins all threads. A
  // malformed-frame error already closes just its own connection. Idempotent.
  void Stop();

 private:
  struct Connection {
    int fd = -1;
    std::mutex write_mutex;     // completions serialize response frames
    std::atomic<bool> closing{false};
    std::thread reader;
  };

  void ReaderLoop(const std::shared_ptr<Connection>& conn);
  // Encodes and writes one response under the connection's write mutex. Write failures
  // mark the connection closing (the reader notices on its next read).
  static void SendResponse(Connection* conn, const ServeResponse& response);

  InferenceService* service_;
  std::mutex mutex_;
  std::list<std::shared_ptr<Connection>> connections_;  // shared: completions may outlive Stop
  std::atomic<bool> stopping_{false};
  std::atomic<int> listen_fd_{-1};
  std::atomic<uint16_t> bound_port_{0};
};

}  // namespace neuroc

#endif  // NEUROC_SRC_SERVE_SERVER_H_
