#include "src/serve/model_cache.h"

#include <cmath>
#include <utility>

#include "src/common/check.h"
#include "src/core/model_serde.h"
#include "src/obs/registry.h"
#include "src/runtime/profile.h"

namespace neuroc {

ModelLoader DirectoryModelLoader(const std::string& dir) {
  return [dir](const std::string& name) -> StatusOr<NeuroCModel> {
    return LoadNeuroCModel(dir + "/" + name + ".ncm");
  };
}

ModelCache::ModelCache(const ModelCacheConfig& config, ModelLoader loader)
    : config_(config), loader_(std::move(loader)) {
  NEUROC_CHECK(config_.capacity >= 1);
  NEUROC_CHECK(loader_ != nullptr);
}

StatusOr<ModelCache::Entry*> ModelCache::Acquire(const std::string& name) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  std::unique_lock<std::mutex> lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->name == name) {
      entries_.splice(entries_.begin(), entries_, it);  // move to MRU
      ++entries_.front().pins;
      reg.GetCounter("serve.cache.hits").Add(1);
      return &entries_.front();
    }
  }
  reg.GetCounter("serve.cache.misses").Add(1);

  // Load outside the lock: deploy + watchdog calibration + the energy profile run are
  // milliseconds of simulation, and other models' batches must keep flowing meanwhile.
  lock.unlock();
  StatusOr<NeuroCModel> model = loader_(name);
  if (!model.ok()) {
    reg.GetCounter("serve.cache.load_failures").Add(1);
    return model.status();
  }
  StatusOr<GuardedModel> guarded =
      GuardedModel::Create(std::move(*model), config_.machine, config_.policy);
  if (!guarded.ok()) {
    reg.GetCounter("serve.cache.load_failures").Add(1);
    return guarded.status();
  }
  // One profiled inference pins the per-request energy proxy. Cycles (and with them the
  // opcode mix) are input-independent by construction, so this zero-input estimate holds
  // for every request served by the model.
  const ExecutionProfile prof = ProfileInference(guarded->deployed());
  const EnergyEstimate energy = EstimateEnergy(
      EnergyModel::CortexM0Proxy(),
      {prof.alu_cycles, prof.multiply_cycles, prof.load_cycles, prof.store_cycles,
       prof.branch_cycles, prof.stack_cycles},
      prof.flash_reads, prof.sram_reads, prof.sram_writes);

  lock.lock();
  // A concurrent Acquire may have loaded the same name while we were unlocked; prefer
  // the resident entry and drop ours so a model never has two live machines.
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->name == name) {
      entries_.splice(entries_.begin(), entries_, it);
      ++entries_.front().pins;
      return &entries_.front();
    }
  }
  entries_.push_front(Entry{name, std::move(*guarded),
                            static_cast<uint64_t>(std::llround(energy.total_pj)),
                            /*pins=*/1});
  EvictOverflowLocked();
  return &entries_.front();
}

void ModelCache::Release(Entry* entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  NEUROC_CHECK(entry->pins > 0);
  --entry->pins;
  if (entries_.size() > config_.capacity) {
    EvictOverflowLocked();  // an over-capacity entry was waiting on this pin
  }
}

void ModelCache::EvictOverflowLocked() {
  while (entries_.size() > config_.capacity) {
    // LRU victim: the last unpinned entry. All-pinned over capacity is transient — the
    // releasing batch re-runs eviction.
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->pins == 0) {
        victim = it;  // keep scanning: later == less recently used
      }
    }
    if (victim == entries_.end()) {
      return;
    }
    MetricsRegistry::Global().GetCounter("serve.cache.evictions").Add(1);
    entries_.erase(victim);
  }
}

size_t ModelCache::resident() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

ModelCache::Entry* ModelCache::PeekForTest(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Entry& e : entries_) {
    if (e.name == name) {
      return &e;
    }
  }
  return nullptr;
}

}  // namespace neuroc
