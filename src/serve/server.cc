#include "src/serve/server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/obs/registry.h"
#include "src/serve/frame.h"

namespace neuroc {

namespace {

bool WriteAll(int fd, const uint8_t* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    off += static_cast<size_t>(w);
  }
  return true;
}

}  // namespace

FrameServer::FrameServer(InferenceService* service) : service_(service) {}

FrameServer::~FrameServer() { Stop(); }

void FrameServer::AddConnection(int fd) {
  auto conn = std::make_shared<Connection>();
  conn->fd = fd;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    connections_.push_back(conn);
  }
  conn->reader = std::thread([this, conn] { ReaderLoop(conn); });
}

Status FrameServer::ListenAndServe(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status(ErrorCode::kIoError,
                  std::string("serve: socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    const Status err(ErrorCode::kIoError,
                     std::string("serve: bind/listen: ") + std::strerror(errno));
    ::close(fd);
    return err;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    bound_port_.store(ntohs(addr.sin_port));
  }
  listen_fd_.store(fd);
  for (;;) {
    const int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;  // listener closed by Stop (or a fatal accept error)
    }
    MetricsRegistry::Global().GetCounter("serve.connections").Add(1);
    AddConnection(client);
  }
  return Status::Ok();
}

void FrameServer::ReaderLoop(const std::shared_ptr<Connection>& conn_ref) {
  // Completions capture a shared_ptr copy so the connection outlives both Stop() and any
  // response still queued inside the service when the socket goes away.
  Connection* conn = conn_ref.get();
  FrameReader reader;
  uint8_t buf[4096];
  while (!conn->closing.load() && !stopping_.load()) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      break;  // peer closed or error
    }
    reader.Feed(std::span<const uint8_t>(buf, static_cast<size_t>(n)));
    for (;;) {
      std::vector<uint8_t> payload;
      StatusOr<bool> got = reader.Next(&payload);
      if (!got.ok()) {
        // Stream framing is unrecoverable (oversized declared length): answer with a
        // structured error (request_id 0 — sync is lost) and hang up.
        MetricsRegistry::Global().GetCounter("serve.frame_errors").Add(1);
        ServeResponse err;
        err.request_id = 0;
        err.code = got.status().code();
        err.message = got.status().message();
        SendResponse(conn, err);
        conn->closing.store(true);
        break;
      }
      if (!*got) {
        break;  // need more bytes
      }
      StatusOr<ServeRequest> req = DecodeRequestPayload(payload);
      if (!req.ok()) {
        // Payload-level malformation is recoverable: framing stayed in sync, so report
        // it and keep reading the stream.
        MetricsRegistry::Global().GetCounter("serve.frame_errors").Add(1);
        ServeResponse err;
        err.request_id = 0;
        err.code = req.status().code();
        err.message = req.status().message();
        SendResponse(conn, err);
        continue;
      }
      service_->Submit(std::move(*req), [conn_ref](const ServeResponse& resp) {
        SendResponse(conn_ref.get(), resp);
      });
    }
  }
  ::shutdown(conn->fd, SHUT_RD);
}

void FrameServer::SendResponse(Connection* conn, const ServeResponse& response) {
  const std::vector<uint8_t> frame = EncodeResponseFrame(response);
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  if (conn->closing.load() && response.request_id != 0) {
    return;
  }
  if (!WriteAll(conn->fd, frame.data(), frame.size())) {
    conn->closing.store(true);
  }
}

void FrameServer::Stop() {
  if (stopping_.exchange(true)) {
    return;
  }
  const int lfd = listen_fd_.exchange(-1);
  if (lfd >= 0) {
    ::shutdown(lfd, SHUT_RDWR);
    ::close(lfd);
  }
  std::list<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    conns.swap(connections_);
  }
  for (auto& conn : conns) {
    conn->closing.store(true);
    ::shutdown(conn->fd, SHUT_RDWR);  // unblocks the reader's ::read
  }
  for (auto& conn : conns) {
    if (conn->reader.joinable()) {
      conn->reader.join();
    }
  }
  for (auto& conn : conns) {
    std::lock_guard<std::mutex> lock(conn->write_mutex);  // let in-flight sends finish
    ::close(conn->fd);
    conn->fd = -1;
  }
}

}  // namespace neuroc
