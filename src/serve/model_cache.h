// LRU cache of deployed models for the serving layer. Each entry owns one GuardedModel
// (deployed machine + watchdog + recovery ladder, PR 9) plus the per-inference energy
// proxy profiled once at load. Entries are pinned while a batch executes on them, so
// eviction can never free a machine another worker is driving; eviction victims are the
// least-recently-used unpinned entries. A reload after eviction goes through the same
// loader, and any flash corruption a cached machine picks up mid-service is healed by
// GuardedModel's scrub-and-retry rungs on the next request — the cache never needs a
// separate repair path.
//
// Cache traffic is counted in the global MetricsRegistry: serve.cache.{hits,misses,
// evictions,load_failures}.

#ifndef NEUROC_SRC_SERVE_MODEL_CACHE_H_
#define NEUROC_SRC_SERVE_MODEL_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>

#include "src/common/status.h"
#include "src/runtime/recovery.h"
#include "src/sim/machine.h"

namespace neuroc {

struct ModelCacheConfig {
  size_t capacity = 4;  // max resident models; >= 1
  MachineConfig machine;
  RecoveryPolicy policy;
};

// Resolves a model name to a freshly loaded host model (e.g. <dir>/<name>.ncm, or an
// in-memory registry in tests/benches). Must be pure: same name -> same model bytes.
using ModelLoader = std::function<StatusOr<NeuroCModel>(const std::string& name)>;

// Loader over a directory of v2 CRC model images: name -> <dir>/<name>.ncm.
ModelLoader DirectoryModelLoader(const std::string& dir);

class ModelCache {
 public:
  struct Entry {
    std::string name;
    GuardedModel model;
    uint64_t energy_pj = 0;  // per-inference energy proxy, profiled once at load
    int pins = 0;            // in-flight batches executing on this machine
  };

  ModelCache(const ModelCacheConfig& config, ModelLoader loader);

  // Returns the cached entry for `name`, loading (and evicting the LRU unpinned entry
  // when over capacity) on miss. The returned entry is pinned; callers must Release it
  // after the batch completes. Load failures are structured (kIoError/kMalformedImage/
  // kResourceExhausted from the loader or deploy), never aborts.
  StatusOr<Entry*> Acquire(const std::string& name);
  void Release(Entry* entry);

  // Entries currently resident (test/stats hook).
  size_t resident() const;
  // Unlocked peek used by tests to reach the deployed machine (e.g. to inject faults).
  // The entry pointer stays valid until the entry is evicted.
  Entry* PeekForTest(const std::string& name);

 private:
  // Evicts unpinned LRU entries until the cache fits capacity. Caller holds mutex_.
  void EvictOverflowLocked();

  ModelCacheConfig config_;
  ModelLoader loader_;
  mutable std::mutex mutex_;
  // Front = most recently used. std::list keeps Entry addresses stable across splices
  // and unrelated evictions (pinned entries are pointed to by running batches).
  std::list<Entry> entries_;
};

}  // namespace neuroc

#endif  // NEUROC_SRC_SERVE_MODEL_CACHE_H_
