#include "src/serve/service.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/thread_pool.h"

namespace neuroc {

namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

ServeResponse ErrorResponse(const ServeRequest& request, const Status& status) {
  ServeResponse resp;
  resp.request_id = request.request_id;
  resp.code = status.code();
  resp.message = status.message();
  return resp;
}

}  // namespace

InferenceService::InferenceService(const ServeConfig& config, ModelLoader loader)
    : config_(config),
      cache_(ModelCacheConfig{config.cache_capacity, config.machine, config.policy},
             std::move(loader)) {
  NEUROC_CHECK(config_.max_batch >= 1);
  NEUROC_CHECK(config_.max_queue_depth >= 1);
}

InferenceService::~InferenceService() { Stop(); }

void InferenceService::Start() {
  if (config_.manual_dispatch || dispatcher_.joinable()) {
    return;
  }
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

void InferenceService::Stop() {
  std::vector<Pending> orphans;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      return;
    }
    stopping_ = true;
    // Fail queued-but-undispatched work now; leaving the completions unfired would hang
    // any client blocked on a response.
    for (auto& [model, mq] : queues_) {
      for (auto& [tenant, q] : mq.by_tenant) {
        for (Pending& p : q) {
          orphans.push_back(std::move(p));
        }
        q.clear();
      }
      mq.depth = 0;
    }
    total_depth_ = 0;
  }
  work_available_.notify_all();
  if (dispatcher_.joinable()) {
    dispatcher_.join();
  }
  const Status shutdown(ErrorCode::kResourceExhausted, "serve: shutting down");
  for (Pending& p : orphans) {
    p.done(ErrorResponse(p.request, shutdown));
  }
}

void InferenceService::Submit(ServeRequest request, Completion done) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Pending pending;
  pending.submitted = std::chrono::steady_clock::now();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stopping_ || total_depth_ >= config_.max_queue_depth) {
      lock.unlock();
      reg.GetCounter("serve.rejected").Add(1);
      const Status overload =
          stopping_ ? Status(ErrorCode::kResourceExhausted, "serve: shutting down")
                    : Status(ErrorCode::kResourceExhausted,
                             "serve: admission queue full (" +
                                 std::to_string(config_.max_queue_depth) + ")");
      done(ErrorResponse(request, overload));
      return;
    }
    reg.GetCounter("serve.accepted").Add(1);
    TenantScopeLocked(request.tenant).GetCounter("requests").Add(1);
    ModelQueue& mq = queues_[request.model];
    auto [it, inserted] = mq.by_tenant.try_emplace(request.tenant);
    if (inserted) {
      mq.tenant_order.push_back(request.tenant);
    }
    pending.request = std::move(request);
    pending.done = std::move(done);
    it->second.push_back(std::move(pending));
    ++mq.depth;
    ++total_depth_;
  }
  work_available_.notify_one();
}

void InferenceService::DispatcherLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || total_depth_ > 0; });
      if (stopping_) {
        return;
      }
    }
    RunOnce();
  }
}

InferenceService::Batch InferenceService::FormBatchLocked(const std::string& model,
                                                          ModelQueue& mq) {
  Batch batch;
  batch.model = model;
  BatchRecord record;
  record.model = model;
  // Round-robin across tenant FIFOs starting at the cursor: one request per non-empty
  // tenant per lap, so a flooding tenant shares every batch it rides in.
  const size_t n = mq.tenant_order.size();
  size_t scanned_empty = 0;
  size_t i = mq.rr_cursor % std::max<size_t>(1, n);
  while (batch.requests.size() < config_.max_batch && scanned_empty < n && mq.depth > 0) {
    const std::string& tenant = mq.tenant_order[i];
    std::deque<Pending>& q = mq.by_tenant[tenant];
    if (q.empty()) {
      ++scanned_empty;
    } else {
      scanned_empty = 0;
      batch.requests.push_back(std::move(q.front()));
      q.pop_front();
      --mq.depth;
      --total_depth_;
      if (!record.per_tenant.empty() && record.per_tenant.back().first == tenant) {
        ++record.per_tenant.back().second;
      } else {
        record.per_tenant.emplace_back(tenant, 1);
      }
    }
    i = (i + 1) % n;
  }
  mq.rr_cursor = i;
  if (config_.record_batches) {
    record.size = batch.requests.size();
    batch_records_.push_back(std::move(record));
  }
  return batch;
}

size_t InferenceService::RunOnce() {
  MetricsRegistry& reg = MetricsRegistry::Global();
  std::vector<Batch> batches;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // queues_ is an ordered map, so the round always visits models in name order —
    // batch formation is a deterministic function of queue contents.
    for (auto& [model, mq] : queues_) {
      if (!mq.empty()) {
        batches.push_back(FormBatchLocked(model, mq));
      }
    }
  }
  if (batches.empty()) {
    return 0;
  }
  reg.GetCounter("serve.batches").Add(batches.size());
  size_t served = 0;
  for (const Batch& b : batches) {
    reg.GetHistogram("serve.batch_size").Observe(static_cast<double>(b.requests.size()));
    served += b.requests.size();
  }
  // Distinct batches mean distinct models (one batch per model per round), so they can
  // execute concurrently — each chunk drives its own deployed machine.
  if (batches.size() == 1) {
    ExecuteBatch(batches.front());
  } else {
    ParallelFor(0, batches.size(), 1,
                [&](size_t b0, size_t b1) {
                  for (size_t b = b0; b < b1; ++b) {
                    ExecuteBatch(batches[b]);
                  }
                });
  }
  return served;
}

void InferenceService::ExecuteBatch(Batch& batch) {
  StatusOr<ModelCache::Entry*> entry = cache_.Acquire(batch.model);
  if (!entry.ok()) {
    for (Pending& p : batch.requests) {
      CompleteRequest(p, ErrorResponse(p.request, entry.status()));
    }
    return;
  }
  GuardedModel& gm = (*entry)->model;
  const size_t in_dim = gm.deployed().input_dim();

  // Length-checked inputs run batched on the one machine; misfits answer immediately.
  std::vector<std::vector<int8_t>> inputs;
  std::vector<Pending*> batched;
  for (Pending& p : batch.requests) {
    if (p.request.input.size() != in_dim) {
      CompleteRequest(
          p, ErrorResponse(p.request,
                           Status(ErrorCode::kInvalidArgument,
                                  "serve: input length " +
                                      std::to_string(p.request.input.size()) +
                                      " != model input dim " + std::to_string(in_dim))));
      continue;
    }
    inputs.push_back(p.request.input);
    batched.push_back(&p);
  }
  std::vector<uint64_t> cycles;
  const std::vector<GuardedResult> results = gm.PredictBatch(inputs, &cycles);
  for (size_t i = 0; i < results.size(); ++i) {
    const GuardedResult& gr = results[i];
    ServeResponse resp;
    resp.request_id = batched[i]->request.request_id;
    if (gr.ok) {
      resp.prediction = gr.prediction;
      resp.cycles = cycles[i];
      resp.energy_pj = (*entry)->energy_pj;
    } else {
      resp.code = gr.first_fault.code == ErrorCode::kOk ? ErrorCode::kInternal
                                                        : gr.first_fault.code;
      resp.message = "serve: inference failed permanently: " + gr.first_fault.message;
    }
    CompleteRequest(*batched[i], resp);
  }
  cache_.Release(*entry);
}

void InferenceService::CompleteRequest(Pending& pending, const ServeResponse& response) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  const double latency_ms = MsSince(pending.submitted);
  reg.GetHistogram("serve.latency_ms").Observe(latency_ms);
  reg.GetCounter(response.ok() ? "serve.completed" : "serve.failed").Add(1);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsScope& tenant = TenantScopeLocked(pending.request.tenant);
    tenant.GetHistogram("latency_ms").Observe(latency_ms);
    if (response.ok()) {
      tenant.GetHistogram("cycles").Observe(static_cast<double>(response.cycles));
    } else {
      tenant.GetCounter("failures").Add(1);
    }
  }
  pending.done(response);
}

MetricsScope& InferenceService::TenantScopeLocked(const std::string& tenant) {
  auto it = tenant_scopes_.find(tenant);
  if (it == tenant_scopes_.end()) {
    it = tenant_scopes_
             .emplace(tenant, MetricsScope(&MetricsRegistry::Global(),
                                           "serve.tenant." + tenant))
             .first;
  }
  return it->second;
}

size_t InferenceService::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_depth_;
}

std::vector<BatchRecord> InferenceService::TakeBatchRecords() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<BatchRecord> out;
  out.swap(batch_records_);
  return out;
}

}  // namespace neuroc
