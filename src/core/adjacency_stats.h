// Structural statistics of a ternary adjacency matrix: fan-in distribution, polarity
// balance, and the delta-gap distribution that determines whether the delta encoding's
// stream fits 8 bits. Feeds encoding selection (examples/encoding_explorer) and the
// experiment write-ups.

#ifndef NEUROC_SRC_CORE_ADJACENCY_STATS_H_
#define NEUROC_SRC_CORE_ADJACENCY_STATS_H_

#include <string>

#include "src/core/ternary_matrix.h"

namespace neuroc {

struct AdjacencyStats {
  size_t in_dim = 0;
  size_t out_dim = 0;
  size_t nonzeros = 0;
  size_t positives = 0;
  size_t negatives = 0;
  double density = 0.0;
  size_t min_fan_in = 0;
  size_t max_fan_in = 0;
  double mean_fan_in = 0.0;
  // Delta-encoding feasibility: largest first-index and largest gap per polarity stream.
  uint32_t max_first_index = 0;
  uint32_t max_gap = 0;
  // Count of columns fully empty (dead output neurons).
  size_t empty_columns = 0;

  // True iff the delta encoding of this matrix uses 8-bit stream entries.
  bool DeltaFitsOneByte() const { return max_first_index <= 255 && max_gap <= 255; }
};

AdjacencyStats AnalyzeAdjacency(const TernaryMatrix& matrix);

// Multi-line summary used by tools.
std::string FormatAdjacencyStats(const AdjacencyStats& stats);

}  // namespace neuroc

#endif  // NEUROC_SRC_CORE_ADJACENCY_STATS_H_
