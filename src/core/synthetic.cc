#include "src/core/synthetic.h"

namespace neuroc {

QuantNeuroCLayer MakeSyntheticNeuroCLayer(const SyntheticNeuroCLayerSpec& spec, Rng& rng) {
  QuantNeuroCLayer layer;
  layer.in_dim = static_cast<uint32_t>(spec.in_dim);
  layer.out_dim = static_cast<uint32_t>(spec.out_dim);
  const TernaryMatrix m =
      TernaryMatrix::Random(spec.in_dim, spec.out_dim, spec.density, rng);
  layer.encoding = BuildEncoding(spec.encoding, m, spec.encoding_options);
  if (spec.has_scale) {
    layer.scale_q.resize(spec.out_dim);
    for (auto& s : layer.scale_q) {
      // Nonzero scales so outputs carry signal.
      s = static_cast<int8_t>(rng.NextInt(1, 127) * (rng.NextBool(0.5) ? 1 : -1));
    }
    layer.scale_frac = 7;
  }
  layer.bias_q.resize(spec.out_dim);
  for (auto& b : layer.bias_q) {
    b = static_cast<int32_t>(rng.NextInt(-2048, 2048));
  }
  layer.in_frac = spec.in_frac;
  layer.requant_shift = spec.requant_shift;
  layer.out_frac = spec.in_frac + layer.scale_frac - spec.requant_shift;
  layer.relu = spec.relu;
  return layer;
}

QuantDenseLayer MakeSyntheticDenseLayer(size_t in_dim, size_t out_dim, bool relu, int shift,
                                        Rng& rng) {
  QuantDenseLayer layer;
  layer.in_dim = static_cast<uint32_t>(in_dim);
  layer.out_dim = static_cast<uint32_t>(out_dim);
  layer.weights.resize(in_dim * out_dim);
  for (auto& w : layer.weights) {
    w = static_cast<int8_t>(rng.NextInt(-128, 127));
  }
  layer.bias_q.resize(out_dim);
  for (auto& b : layer.bias_q) {
    b = static_cast<int32_t>(rng.NextInt(-4096, 4096));
  }
  layer.weight_frac = 7;
  layer.in_frac = 7;
  layer.requant_shift = shift;
  layer.out_frac = layer.in_frac + layer.weight_frac - shift;
  layer.relu = relu;
  return layer;
}

std::vector<int8_t> MakeRandomInput(size_t dim, Rng& rng) {
  std::vector<int8_t> input(dim);
  for (auto& v : input) {
    v = static_cast<int8_t>(rng.NextInt(-128, 127));
  }
  return input;
}

const char* InputDistName(InputDist dist) {
  switch (dist) {
    case InputDist::kUniform: return "uniform";
    case InputDist::kSaturated: return "saturated";
    case InputDist::kSparse: return "sparse";
    case InputDist::kSmall: return "small";
  }
  return "unknown";
}

bool ParseInputDist(std::string_view text, InputDist* out) {
  for (InputDist d : kAllInputDists) {
    if (text == InputDistName(d)) {
      *out = d;
      return true;
    }
  }
  return false;
}

std::vector<int8_t> MakeRandomInput(size_t dim, InputDist dist, Rng& rng) {
  std::vector<int8_t> input(dim);
  for (auto& v : input) {
    switch (dist) {
      case InputDist::kUniform:
        v = static_cast<int8_t>(rng.NextInt(-128, 127));
        break;
      case InputDist::kSaturated:
        if (rng.NextBool(0.6)) {
          static constexpr int8_t kRails[4] = {-128, -127, 126, 127};
          v = kRails[rng.NextBounded(4)];
        } else {
          v = static_cast<int8_t>(rng.NextInt(-128, 127));
        }
        break;
      case InputDist::kSparse:
        v = rng.NextBool(0.75) ? int8_t{0} : static_cast<int8_t>(rng.NextInt(-128, 127));
        break;
      case InputDist::kSmall:
        v = static_cast<int8_t>(rng.NextInt(-8, 8));
        break;
    }
  }
  return input;
}

}  // namespace neuroc
