// Synthetic quantized layers with controlled shape/sparsity, used by the encoding benches
// (paper Figs. 2 and 5 use fixed-dimension synthetic layers, not trained models) and by the
// simulator-equivalence property tests.

#ifndef NEUROC_SRC_CORE_SYNTHETIC_H_
#define NEUROC_SRC_CORE_SYNTHETIC_H_

#include <string_view>

#include "src/common/rng.h"
#include "src/core/mlp_model.h"
#include "src/core/neuroc_model.h"

namespace neuroc {

struct SyntheticNeuroCLayerSpec {
  size_t in_dim = 256;
  size_t out_dim = 64;
  double density = 0.15;  // nonzero fraction of the adjacency
  EncodingKind encoding = EncodingKind::kBlock;
  EncodingOptions encoding_options;
  bool has_scale = true;
  bool relu = true;
  int in_frac = 7;
  int requant_shift = 9;
};

// Random ternary adjacency at the given density, random q7 scales and biases.
QuantNeuroCLayer MakeSyntheticNeuroCLayer(const SyntheticNeuroCLayerSpec& spec, Rng& rng);

// Random dense q7 layer.
QuantDenseLayer MakeSyntheticDenseLayer(size_t in_dim, size_t out_dim, bool relu, int shift,
                                        Rng& rng);

// Random q7 input vector.
std::vector<int8_t> MakeRandomInput(size_t dim, Rng& rng);

// Shaped q7 input distributions for differential testing. Uniform is the historical
// MakeRandomInput draw; the others target arithmetic edge cases the uniform draw rarely
// hits at small dimensions: saturation rails (+/-127/-128 accumulate into presums that
// stress the sat8 requantization), mostly-zero vectors (post-ReLU activations), and
// near-zero magnitudes (rounding behaviour of the requant shift).
enum class InputDist : uint8_t {
  kUniform = 0,    // uniform in [-128, 127]
  kSaturated = 1,  // rail values (-128, -127, 126, 127) with high probability
  kSparse = 2,     // ~75% exact zeros, uniform otherwise
  kSmall = 3,      // uniform in [-8, 8]
};
inline constexpr InputDist kAllInputDists[] = {InputDist::kUniform, InputDist::kSaturated,
                                               InputDist::kSparse, InputDist::kSmall};
const char* InputDistName(InputDist dist);
bool ParseInputDist(std::string_view text, InputDist* out);

std::vector<int8_t> MakeRandomInput(size_t dim, InputDist dist, Rng& rng);

}  // namespace neuroc

#endif  // NEUROC_SRC_CORE_SYNTHETIC_H_
