// Synthetic quantized layers with controlled shape/sparsity, used by the encoding benches
// (paper Figs. 2 and 5 use fixed-dimension synthetic layers, not trained models) and by the
// simulator-equivalence property tests.

#ifndef NEUROC_SRC_CORE_SYNTHETIC_H_
#define NEUROC_SRC_CORE_SYNTHETIC_H_

#include "src/common/rng.h"
#include "src/core/mlp_model.h"
#include "src/core/neuroc_model.h"

namespace neuroc {

struct SyntheticNeuroCLayerSpec {
  size_t in_dim = 256;
  size_t out_dim = 64;
  double density = 0.15;  // nonzero fraction of the adjacency
  EncodingKind encoding = EncodingKind::kBlock;
  EncodingOptions encoding_options;
  bool has_scale = true;
  bool relu = true;
  int in_frac = 7;
  int requant_shift = 9;
};

// Random ternary adjacency at the given density, random q7 scales and biases.
QuantNeuroCLayer MakeSyntheticNeuroCLayer(const SyntheticNeuroCLayerSpec& spec, Rng& rng);

// Random dense q7 layer.
QuantDenseLayer MakeSyntheticDenseLayer(size_t in_dim, size_t out_dim, bool relu, int shift,
                                        Rng& rng);

// Random q7 input vector.
std::vector<int8_t> MakeRandomInput(size_t dim, Rng& rng);

}  // namespace neuroc

#endif  // NEUROC_SRC_CORE_SYNTHETIC_H_
