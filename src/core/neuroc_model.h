// Post-training quantized Neuro-C model: the deployable artifact exported from a trained
// network (paper Sec. 4/5: models are trained with fake quantization, then int8-quantized
// and loaded onto the target).
//
// Arithmetic contract (identical between this host reference and the Thumb kernels):
//   inputs/activations: int8 with per-layer power-of-two scale (in_frac fractional bits)
//   presum:             z_j = Σ(+inputs) − Σ(−inputs), int32 (frac in_frac)
//   scale:              per-neuron int8 w_j with per-layer scale_frac
//   bias:               int32 at frac in_frac + scale_frac
//   output:             sat8(round_shift(z_j * w_j + b_j, in_frac + scale_frac − out_frac)),
//                       then ReLU for hidden layers.
// The conventional-TNN ablation omits w_j entirely (scale_frac = 0, no multiply).

#ifndef NEUROC_SRC_CORE_NEUROC_MODEL_H_
#define NEUROC_SRC_CORE_NEUROC_MODEL_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/core/encoding.h"
#include "src/data/dataset.h"
#include "src/train/network.h"

namespace neuroc {

struct QuantNeuroCLayer {
  uint32_t in_dim = 0;
  uint32_t out_dim = 0;
  std::unique_ptr<Encoding> encoding;
  std::vector<int8_t> scale_q;  // empty for the TNN ablation (no per-neuron scale)
  std::vector<int32_t> bias_q;
  int in_frac = 7;
  int out_frac = 7;
  int scale_frac = 0;
  int requant_shift = 0;  // in_frac + scale_frac − out_frac, always >= 0
  bool relu = true;

  bool has_scale() const { return !scale_q.empty(); }
  // Bytes of constant data this layer contributes to program memory.
  size_t WeightBytes() const;
};

struct NeuroCQuantOptions {
  EncodingKind encoding = EncodingKind::kBlock;
  EncodingOptions encoding_options;
  int input_frac = 7;
  size_t max_calibration_examples = 512;
};

class NeuroCModel {
 public:
  NeuroCModel() = default;
  NeuroCModel(NeuroCModel&&) = default;
  NeuroCModel& operator=(NeuroCModel&&) = default;

  // Exports a trained Neuro-C network (sequence of NeuroCLayer/ReluLayer modules built by
  // BuildNeuroC). `calibration` provides activation ranges for the per-layer formats.
  static NeuroCModel FromTrained(Network& net, const Dataset& calibration,
                                 const NeuroCQuantOptions& options = {});

  // Builds a model directly from quantized layers (synthetic benches and tests). Layer
  // dimensions must chain; aborts otherwise.
  static NeuroCModel FromLayers(std::vector<QuantNeuroCLayer> layers);

  // Runs one inference; `input` must hold in_dim() int8 values at input_frac. Returns the
  // final-layer int8 activations (logits) in `out`.
  void Forward(std::span<const int8_t> input, std::vector<int8_t>& out) const;

  // Arg-max class for one example.
  int Predict(std::span<const int8_t> input) const;

  // Top-1 accuracy over a quantized dataset.
  float EvaluateAccuracy(const QuantizedDataset& ds) const;

  const std::vector<QuantNeuroCLayer>& layers() const { return layers_; }
  size_t in_dim() const { return layers_.empty() ? 0 : layers_.front().in_dim; }
  size_t out_dim() const { return layers_.empty() ? 0 : layers_.back().out_dim; }
  int input_frac() const { return layers_.empty() ? 7 : layers_.front().in_frac; }

  // Constant-data bytes (encodings + scales + biases) across layers.
  size_t WeightBytes() const;
  // Largest activation buffer needed (int8 elements) and scratch (int32 elements).
  size_t MaxActivationDim() const;
  std::string Summary() const;

 private:
  std::vector<QuantNeuroCLayer> layers_;
};

// Applies one quantized Neuro-C layer on the host (shared by model forward and tests).
// `sums` scratch must have layer.out_dim entries.
void RunQuantNeuroCLayer(const QuantNeuroCLayer& layer, std::span<const int8_t> input,
                         std::span<int32_t> sums, std::span<int8_t> output);

// Returns a copy of `model` with the per-neuron scales removed (same adjacency, bias and
// requantization structure): the paper's Fig. 8b/8c protocol, which benchmarks the same
// inference code with and without w_j to isolate its latency/memory overhead.
NeuroCModel StripScales(const NeuroCModel& model);

// Returns a copy of `model` with every layer's adjacency re-encoded as `kind` (identical
// weights, scales, biases and requantization — only the storage scheme changes). Used by
// `neuroc profile/deploy --encoding=...` and by the flash-budget fallback when an unrolled
// image overflows the platform budget.
NeuroCModel ReencodeModel(const NeuroCModel& model, EncodingKind kind,
                          const EncodingOptions& options = {});

}  // namespace neuroc

#endif  // NEUROC_SRC_CORE_NEUROC_MODEL_H_
