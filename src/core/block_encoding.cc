#include "src/core/block_encoding.h"

#include "src/common/check.h"

namespace neuroc {

BlockEncoding::BlockEncoding(const TernaryMatrix& matrix, size_t block_size)
    : Encoding(matrix.in_dim(), matrix.out_dim()),
      block_size_(block_size),
      num_blocks_((matrix.in_dim() + block_size - 1) / block_size) {
  NEUROC_CHECK_MSG(block_size >= 1 && block_size <= 256,
                   "block size must be in [1, 256] for 8-bit indices");
  pos_ = BuildPolarity(matrix, true);
  neg_ = BuildPolarity(matrix, false);
}

BlockEncoding::Polarity BlockEncoding::BuildPolarity(const TernaryMatrix& matrix,
                                                     bool positive) const {
  Polarity p;
  p.counts.assign(num_blocks_ * out_dim_, 0);
  // Per-column index lists are ascending, so a single pass per column distributes entries
  // into blocks in order.
  std::vector<std::vector<uint32_t>> per_block(num_blocks_);
  for (size_t j = 0; j < out_dim_; ++j) {
    const std::vector<uint32_t> idx =
        positive ? matrix.PositiveIndices(j) : matrix.NegativeIndices(j);
    for (uint32_t i : idx) {
      const size_t b = i / block_size_;
      per_block[b].push_back(static_cast<uint32_t>(i % block_size_));
      ++p.counts[b * out_dim_ + j];
    }
    // Counts within a block per column are bounded by block_size_ <= 256... but 256 does not
    // fit u8; a full column within a block would need count 256. Guard explicitly.
    for (size_t b = 0; b < num_blocks_; ++b) {
      NEUROC_CHECK_MSG(p.counts[b * out_dim_ + j] <= 255,
                       "column fan-in within a block exceeds 8-bit count");
    }
  }
  // Flatten in (block, column) order: for each block, columns contribute their indices in
  // column order. per_block currently holds indices in (column-major across blocks) arrival
  // order, which IS (block, column) order per block because columns were visited in order.
  for (size_t b = 0; b < num_blocks_; ++b) {
    p.indices.insert(p.indices.end(), per_block[b].begin(), per_block[b].end());
  }
  return p;
}

void BlockEncoding::Accumulate(std::span<const int8_t> input, std::span<int32_t> sums) const {
  NEUROC_CHECK(input.size() == in_dim_ && sums.size() == out_dim_);
  std::fill(sums.begin(), sums.end(), 0);
  size_t pp = 0;
  size_t np = 0;
  for (size_t b = 0; b < num_blocks_; ++b) {
    const size_t base = b * block_size_;
    for (size_t j = 0; j < out_dim_; ++j) {
      int32_t acc = sums[j];
      for (uint32_t k = 0; k < pos_.counts[b * out_dim_ + j]; ++k) {
        acc += input[base + pos_.indices[pp++]];
      }
      for (uint32_t k = 0; k < neg_.counts[b * out_dim_ + j]; ++k) {
        acc -= input[base + neg_.indices[np++]];
      }
      sums[j] = acc;
    }
  }
}

TernaryMatrix BlockEncoding::Decode() const {
  TernaryMatrix m(in_dim_, out_dim_);
  size_t pp = 0;
  size_t np = 0;
  for (size_t b = 0; b < num_blocks_; ++b) {
    const size_t base = b * block_size_;
    for (size_t j = 0; j < out_dim_; ++j) {
      for (uint32_t k = 0; k < pos_.counts[b * out_dim_ + j]; ++k) {
        m.set(base + pos_.indices[pp++], j, 1);
      }
      for (uint32_t k = 0; k < neg_.counts[b * out_dim_ + j]; ++k) {
        m.set(base + neg_.indices[np++], j, -1);
      }
    }
  }
  return m;
}

EncodingSizeBreakdown BlockEncoding::Sizes() const {
  EncodingSizeBreakdown s;
  // Everything is 8-bit by construction.
  s.metadata_bytes = pos_.counts.size() + neg_.counts.size();
  s.index_bytes = pos_.indices.size() + neg_.indices.size();
  return s;
}

EncodingDeviceLayout BlockEncoding::Pack(std::vector<uint8_t>& blob) const {
  EncodingDeviceLayout layout;
  layout.kind = EncodingKind::kBlock;
  layout.block_size = static_cast<uint32_t>(block_size_);
  layout.num_blocks = static_cast<uint32_t>(num_blocks_);
  layout.pos_meta = AppendArray(blob, pos_.counts, 1);
  layout.pos_idx = AppendArray(blob, pos_.indices, 1);
  layout.neg_meta = AppendArray(blob, neg_.counts, 1);
  layout.neg_idx = AppendArray(blob, neg_.indices, 1);
  return layout;
}

std::string BlockEncoding::Describe() const {
  std::string s = "Block encoding (block size " + std::to_string(block_size_) + ", " +
                  std::to_string(num_blocks_) + " blocks)\n";
  s += "  pos counts [block x column]: " + FormatArray(pos_.counts) + "\n";
  s += "  pos block-local indices:     " + FormatArray(pos_.indices) + "\n";
  s += "  neg counts [block x column]: " + FormatArray(neg_.counts) + "\n";
  s += "  neg block-local indices:     " + FormatArray(neg_.indices) + "\n";
  return s;
}

}  // namespace neuroc
