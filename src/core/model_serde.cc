#include "src/core/model_serde.h"

#include <cstdio>
#include <cstring>
#include <memory>

#include "src/common/check.h"
#include "src/common/crc32.h"
#include "src/core/block_encoding.h"

namespace neuroc {

namespace {

constexpr uint32_t kMagicNeuroC = 0x314D434Eu;   // "NCM1" — legacy, no CRC trailer
constexpr uint32_t kMagicMlp = 0x314D4C4Du;      // "MLM1"
constexpr uint32_t kMagicNeuroC2 = 0x324D434Eu;  // "NCM2" — trailing CRC-32
constexpr uint32_t kMagicMlp2 = 0x324D4C4Du;     // "MLM2"

Status Malformed(const char* what) {
  return Status(ErrorCode::kMalformedImage, what);
}

uint32_t LoadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

// Validates the v2 trailer (when present) and strips it, leaving the v1-shaped body.
// Returns a non-OK status for a wrong magic or a digest mismatch.
Status StripIntegrityTrailer(std::span<const uint8_t>& bytes, uint32_t magic_v1,
                             uint32_t magic_v2) {
  if (bytes.size() < 4) {
    return Malformed("truncated model blob (no magic)");
  }
  const uint32_t magic = LoadU32(bytes.data());
  if (magic == magic_v1) {
    return Status::Ok();  // legacy file, nothing to verify
  }
  if (magic != magic_v2) {
    return Malformed("bad magic (not a model file of the expected type)");
  }
  if (bytes.size() < 8) {
    return Malformed("truncated model blob (no CRC trailer)");
  }
  const uint32_t stored = LoadU32(bytes.data() + bytes.size() - 4);
  const uint32_t computed = Crc32(bytes.first(bytes.size() - 4));
  if (stored != computed) {
    return Status(ErrorCode::kIntegrityFailure, "model file CRC-32 mismatch");
  }
  bytes = bytes.first(bytes.size() - 4);
  return Status::Ok();
}

void AppendIntegrityTrailer(std::vector<uint8_t>& bytes) {
  const uint32_t crc = Crc32(std::span<const uint8_t>(bytes));
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<uint8_t>((crc >> (8 * i)) & 0xFF));
  }
}

class ByteWriter {
 public:
  void U8(uint8_t v) { bytes_.push_back(v); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      bytes_.push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xFF));
    }
  }
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void Bytes(const uint8_t* data, size_t n) { bytes_.insert(bytes_.end(), data, data + n); }
  std::vector<uint8_t> Take() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

  uint8_t U8() {
    if (pos_ + 1 > bytes_.size()) {
      ok_ = false;
      return 0;
    }
    return bytes_[pos_++];
  }
  uint32_t U32() {
    if (pos_ + 4 > bytes_.size()) {
      ok_ = false;
      return 0;
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(bytes_[pos_++]) << (8 * i);
    }
    return v;
  }
  int32_t I32() { return static_cast<int32_t>(U32()); }
  bool Bytes(uint8_t* out, size_t n) {
    if (pos_ + n > bytes_.size()) {
      ok_ = false;
      return false;
    }
    std::memcpy(out, bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }

 private:
  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// 2-bit packing of ternary values: 0 -> 0, +1 -> 1, -1 -> 2 (3 reserved).
void PackTernary(const TernaryMatrix& m, ByteWriter& w) {
  uint8_t cur = 0;
  int fill = 0;
  for (size_t i = 0; i < m.in_dim(); ++i) {
    for (size_t j = 0; j < m.out_dim(); ++j) {
      const int8_t v = m.at(i, j);
      const uint8_t code = v == 0 ? 0 : (v > 0 ? 1 : 2);
      cur |= static_cast<uint8_t>(code << (2 * fill));
      if (++fill == 4) {
        w.U8(cur);
        cur = 0;
        fill = 0;
      }
    }
  }
  if (fill != 0) {
    w.U8(cur);
  }
}

bool UnpackTernary(ByteReader& r, TernaryMatrix& m) {
  const size_t total = m.in_dim() * m.out_dim();
  const size_t bytes = (total + 3) / 4;
  std::vector<uint8_t> packed(bytes);
  if (!r.Bytes(packed.data(), bytes)) {
    return false;
  }
  size_t idx = 0;
  for (size_t i = 0; i < m.in_dim(); ++i) {
    for (size_t j = 0; j < m.out_dim(); ++j, ++idx) {
      const uint8_t code = (packed[idx / 4] >> (2 * (idx % 4))) & 3;
      if (code == 3) {
        return false;
      }
      m.set(i, j, code == 0 ? int8_t{0} : (code == 1 ? int8_t{1} : int8_t{-1}));
    }
  }
  return true;
}

bool WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  return written == bytes.size();
}

std::optional<std::vector<uint8_t>> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return std::nullopt;
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  const size_t read = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (read != bytes.size()) {
    return std::nullopt;
  }
  return bytes;
}

}  // namespace

std::vector<uint8_t> SerializeModel(const NeuroCModel& model) {
  ByteWriter w;
  w.U32(kMagicNeuroC2);
  w.U32(static_cast<uint32_t>(model.layers().size()));
  for (const QuantNeuroCLayer& l : model.layers()) {
    w.U32(l.in_dim);
    w.U32(l.out_dim);
    w.U8(static_cast<uint8_t>(l.encoding->kind()));
    uint32_t block_size = 0;
    if (const auto* block = dynamic_cast<const BlockEncoding*>(l.encoding.get())) {
      block_size = static_cast<uint32_t>(block->block_size());
    }
    w.U32(block_size);
    w.U8(l.has_scale() ? 1 : 0);
    w.I32(l.in_frac);
    w.I32(l.out_frac);
    w.I32(l.scale_frac);
    w.I32(l.requant_shift);
    w.U8(l.relu ? 1 : 0);
    if (l.has_scale()) {
      w.Bytes(reinterpret_cast<const uint8_t*>(l.scale_q.data()), l.scale_q.size());
    }
    for (int32_t b : l.bias_q) {
      w.I32(b);
    }
    PackTernary(l.encoding->Decode(), w);
  }
  std::vector<uint8_t> bytes = w.Take();
  AppendIntegrityTrailer(bytes);
  return bytes;
}

StatusOr<NeuroCModel> DeserializeNeuroCModel(std::span<const uint8_t> bytes) {
  Status trailer = StripIntegrityTrailer(bytes, kMagicNeuroC, kMagicNeuroC2);
  if (!trailer.ok()) {
    return trailer;
  }
  ByteReader r(bytes);
  r.U32();  // magic, validated above
  const uint32_t n = r.U32();
  if (!r.ok() || n == 0 || n > 64) {
    return Malformed("bad layer count");
  }
  std::vector<QuantNeuroCLayer> layers;
  for (uint32_t k = 0; k < n; ++k) {
    QuantNeuroCLayer l;
    l.in_dim = r.U32();
    l.out_dim = r.U32();
    const uint8_t kind_raw = r.U8();
    const uint32_t block_size = r.U32();
    const bool has_scale = r.U8() != 0;
    l.in_frac = r.I32();
    l.out_frac = r.I32();
    l.scale_frac = r.I32();
    l.requant_shift = r.I32();
    l.relu = r.U8() != 0;
    if (!r.ok() || kind_raw > 4 || l.in_dim == 0 || l.out_dim == 0 ||
        l.in_dim > (1u << 20) || l.out_dim > (1u << 20) || l.requant_shift < 0 ||
        l.requant_shift > 31 || block_size > 256 ||
        (static_cast<EncodingKind>(kind_raw) == EncodingKind::kBlock && block_size == 0)) {
      return Malformed("bad layer header");
    }
    if (has_scale) {
      l.scale_q.resize(l.out_dim);
      if (!r.Bytes(reinterpret_cast<uint8_t*>(l.scale_q.data()), l.scale_q.size())) {
        return Malformed("truncated scale array");
      }
    }
    l.bias_q.resize(l.out_dim);
    for (uint32_t j = 0; j < l.out_dim; ++j) {
      l.bias_q[j] = r.I32();
    }
    TernaryMatrix m(l.in_dim, l.out_dim);
    if (!r.ok() || !UnpackTernary(r, m)) {
      return Malformed("truncated or invalid ternary adjacency");
    }
    EncodingOptions opt;
    if (block_size > 0) {
      opt.block_size = block_size;
    }
    l.encoding = BuildEncoding(static_cast<EncodingKind>(kind_raw), m, opt);
    layers.push_back(std::move(l));
  }
  if (!r.ok() || !r.AtEnd()) {
    return Malformed("trailing bytes after the last layer");
  }
  // Validate dimension chaining without aborting.
  for (size_t k = 0; k + 1 < layers.size(); ++k) {
    if (layers[k].out_dim != layers[k + 1].in_dim) {
      return Malformed("layer dimension chain mismatch");
    }
  }
  return NeuroCModel::FromLayers(std::move(layers));
}

std::vector<uint8_t> SerializeModel(const MlpModel& model) {
  ByteWriter w;
  w.U32(kMagicMlp2);
  w.U32(static_cast<uint32_t>(model.layers().size()));
  for (const QuantDenseLayer& l : model.layers()) {
    w.U32(l.in_dim);
    w.U32(l.out_dim);
    w.I32(l.weight_frac);
    w.I32(l.in_frac);
    w.I32(l.out_frac);
    w.I32(l.requant_shift);
    w.U8(l.relu ? 1 : 0);
    w.Bytes(reinterpret_cast<const uint8_t*>(l.weights.data()), l.weights.size());
    for (int32_t b : l.bias_q) {
      w.I32(b);
    }
  }
  std::vector<uint8_t> bytes = w.Take();
  AppendIntegrityTrailer(bytes);
  return bytes;
}

StatusOr<MlpModel> DeserializeMlpModel(std::span<const uint8_t> bytes) {
  Status trailer = StripIntegrityTrailer(bytes, kMagicMlp, kMagicMlp2);
  if (!trailer.ok()) {
    return trailer;
  }
  ByteReader r(bytes);
  r.U32();  // magic, validated above
  const uint32_t n = r.U32();
  if (!r.ok() || n == 0 || n > 64) {
    return Malformed("bad layer count");
  }
  std::vector<QuantDenseLayer> layers;
  for (uint32_t k = 0; k < n; ++k) {
    QuantDenseLayer l;
    l.in_dim = r.U32();
    l.out_dim = r.U32();
    l.weight_frac = r.I32();
    l.in_frac = r.I32();
    l.out_frac = r.I32();
    l.requant_shift = r.I32();
    l.relu = r.U8() != 0;
    if (!r.ok() || l.in_dim == 0 || l.out_dim == 0 || l.in_dim > (1u << 20) ||
        l.out_dim > (1u << 20) || l.requant_shift < 0 || l.requant_shift > 31) {
      return Malformed("bad layer header");
    }
    l.weights.resize(static_cast<size_t>(l.in_dim) * l.out_dim);
    if (!r.Bytes(reinterpret_cast<uint8_t*>(l.weights.data()), l.weights.size())) {
      return Malformed("truncated weight matrix");
    }
    l.bias_q.resize(l.out_dim);
    for (uint32_t j = 0; j < l.out_dim; ++j) {
      l.bias_q[j] = r.I32();
    }
    layers.push_back(std::move(l));
  }
  if (!r.ok() || !r.AtEnd()) {
    return Malformed("trailing bytes after the last layer");
  }
  for (size_t k = 0; k + 1 < layers.size(); ++k) {
    if (layers[k].out_dim != layers[k + 1].in_dim) {
      return Malformed("layer dimension chain mismatch");
    }
  }
  return MlpModel::FromLayers(std::move(layers));
}

bool SaveModel(const NeuroCModel& model, const std::string& path) {
  return WriteFile(path, SerializeModel(model));
}

bool SaveModel(const MlpModel& model, const std::string& path) {
  return WriteFile(path, SerializeModel(model));
}

StatusOr<NeuroCModel> LoadNeuroCModel(const std::string& path) {
  const auto bytes = ReadFile(path);
  if (!bytes) {
    return Status(ErrorCode::kIoError, "cannot read model file: " + path);
  }
  return DeserializeNeuroCModel(*bytes);
}

StatusOr<MlpModel> LoadMlpModel(const std::string& path) {
  const auto bytes = ReadFile(path);
  if (!bytes) {
    return Status(ErrorCode::kIoError, "cannot read model file: " + path);
  }
  return DeserializeMlpModel(*bytes);
}

}  // namespace neuroc
