#include "src/core/ternary_matrix.h"

#include "src/common/check.h"

namespace neuroc {

TernaryMatrix::TernaryMatrix(size_t in_dim, size_t out_dim)
    : in_dim_(in_dim), out_dim_(out_dim), values_(in_dim * out_dim, 0) {}

TernaryMatrix TernaryMatrix::FromSignTensor(const Tensor& signs) {
  NEUROC_CHECK(signs.rank() == 2);
  TernaryMatrix m(signs.rows(), signs.cols());
  for (size_t i = 0; i < signs.size(); ++i) {
    const float v = signs[i];
    NEUROC_CHECK_MSG(v == 0.0f || v == 1.0f || v == -1.0f, "tensor is not ternary");
    m.values_[i] = static_cast<int8_t>(v);
  }
  return m;
}

TernaryMatrix TernaryMatrix::Random(size_t in_dim, size_t out_dim, double density, Rng& rng) {
  TernaryMatrix m(in_dim, out_dim);
  for (int8_t& v : m.values_) {
    if (rng.NextBool(density)) {
      v = rng.NextBool(0.5) ? int8_t{1} : int8_t{-1};
    }
  }
  return m;
}

void TernaryMatrix::set(size_t in, size_t out, int8_t v) {
  NEUROC_CHECK(in < in_dim_ && out < out_dim_);
  NEUROC_CHECK(v == 0 || v == 1 || v == -1);
  values_[in * out_dim_ + out] = v;
}

std::vector<uint32_t> TernaryMatrix::PositiveIndices(size_t out) const {
  NEUROC_CHECK(out < out_dim_);
  std::vector<uint32_t> idx;
  for (size_t i = 0; i < in_dim_; ++i) {
    if (values_[i * out_dim_ + out] > 0) {
      idx.push_back(static_cast<uint32_t>(i));
    }
  }
  return idx;
}

std::vector<uint32_t> TernaryMatrix::NegativeIndices(size_t out) const {
  NEUROC_CHECK(out < out_dim_);
  std::vector<uint32_t> idx;
  for (size_t i = 0; i < in_dim_; ++i) {
    if (values_[i * out_dim_ + out] < 0) {
      idx.push_back(static_cast<uint32_t>(i));
    }
  }
  return idx;
}

size_t TernaryMatrix::NonZeroCount() const {
  size_t n = 0;
  for (int8_t v : values_) {
    if (v != 0) {
      ++n;
    }
  }
  return n;
}

double TernaryMatrix::Density() const {
  return values_.empty()
             ? 0.0
             : static_cast<double>(NonZeroCount()) / static_cast<double>(values_.size());
}

size_t TernaryMatrix::MaxColumnFanIn() const {
  size_t max_fan = 0;
  for (size_t j = 0; j < out_dim_; ++j) {
    size_t fan = 0;
    for (size_t i = 0; i < in_dim_; ++i) {
      if (values_[i * out_dim_ + j] != 0) {
        ++fan;
      }
    }
    max_fan = std::max(max_fan, fan);
  }
  return max_fan;
}

}  // namespace neuroc
