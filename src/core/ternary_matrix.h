// Dense ternary adjacency matrix: the deployment-side view of a trained Neuro-C layer's
// connectivity. Entries are in {-1, 0, +1}; rows index input neurons, columns output neurons
// (matching the training-side [in, out] weight layout).

#ifndef NEUROC_SRC_CORE_TERNARY_MATRIX_H_
#define NEUROC_SRC_CORE_TERNARY_MATRIX_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/tensor/tensor.h"

namespace neuroc {

class TernaryMatrix {
 public:
  TernaryMatrix() = default;
  TernaryMatrix(size_t in_dim, size_t out_dim);

  // Builds from a float tensor whose entries are already in {-1, 0, +1} (e.g. the training
  // layer's ternarized adjacency).
  static TernaryMatrix FromSignTensor(const Tensor& signs);

  // Random ternary matrix with the given nonzero density (for tests and benches).
  static TernaryMatrix Random(size_t in_dim, size_t out_dim, double density, Rng& rng);

  size_t in_dim() const { return in_dim_; }
  size_t out_dim() const { return out_dim_; }

  int8_t at(size_t in, size_t out) const { return values_[in * out_dim_ + out]; }
  void set(size_t in, size_t out, int8_t v);

  // Ascending input indices of the +1 (-1) entries in column `out`.
  std::vector<uint32_t> PositiveIndices(size_t out) const;
  std::vector<uint32_t> NegativeIndices(size_t out) const;

  size_t NonZeroCount() const;
  double Density() const;
  size_t MaxColumnFanIn() const;

  bool operator==(const TernaryMatrix& other) const = default;

 private:
  size_t in_dim_ = 0;
  size_t out_dim_ = 0;
  std::vector<int8_t> values_;  // row-major [in, out]
};

}  // namespace neuroc

#endif  // NEUROC_SRC_CORE_TERNARY_MATRIX_H_
