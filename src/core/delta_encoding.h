// Delta encoding (paper Fig. 3 bottom left, Fig. 4): per polarity, a per-column count array
// plus a stream where each column stores its first input index absolutely and subsequent
// connections as positive offsets from the previous index. Traversal is pure pointer
// arithmetic, which makes this the lowest-latency scheme on the Cortex-M0.

#ifndef NEUROC_SRC_CORE_DELTA_ENCODING_H_
#define NEUROC_SRC_CORE_DELTA_ENCODING_H_

#include "src/core/encoding.h"

namespace neuroc {

class DeltaEncoding : public Encoding {
 public:
  explicit DeltaEncoding(const TernaryMatrix& matrix);

  EncodingKind kind() const override { return EncodingKind::kDelta; }
  void Accumulate(std::span<const int8_t> input, std::span<int32_t> sums) const override;
  TernaryMatrix Decode() const override;
  EncodingSizeBreakdown Sizes() const override;
  EncodingDeviceLayout Pack(std::vector<uint8_t>& blob) const override;
  std::string Describe() const override;

  struct Polarity {
    std::vector<uint32_t> counts;  // [out_dim], nonzeros per column
    std::vector<uint32_t> stream;  // per column: first absolute index, then deltas (>= 1)
    uint8_t count_width = 1;
    uint8_t stream_width = 1;
  };
  const Polarity& positive() const { return pos_; }
  const Polarity& negative() const { return neg_; }

 private:
  Polarity pos_;
  Polarity neg_;
};

}  // namespace neuroc

#endif  // NEUROC_SRC_CORE_DELTA_ENCODING_H_
