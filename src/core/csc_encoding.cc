#include "src/core/csc_encoding.h"

#include "src/common/check.h"

namespace neuroc {

namespace {

CscEncoding::Polarity BuildPolarity(const TernaryMatrix& m, bool positive) {
  CscEncoding::Polarity p;
  p.pointers.reserve(m.out_dim() + 1);
  p.pointers.push_back(0);
  for (size_t j = 0; j < m.out_dim(); ++j) {
    const std::vector<uint32_t> idx = positive ? m.PositiveIndices(j) : m.NegativeIndices(j);
    p.indices.insert(p.indices.end(), idx.begin(), idx.end());
    p.pointers.push_back(static_cast<uint32_t>(p.indices.size()));
  }
  p.pointer_width = ElementWidthFor(static_cast<uint32_t>(p.indices.size()));
  p.index_width =
      ElementWidthFor(m.in_dim() == 0 ? 0 : static_cast<uint32_t>(m.in_dim() - 1));
  return p;
}

}  // namespace

CscEncoding::CscEncoding(const TernaryMatrix& matrix)
    : Encoding(matrix.in_dim(), matrix.out_dim()),
      pos_(BuildPolarity(matrix, true)),
      neg_(BuildPolarity(matrix, false)) {
  // Both polarities share element widths so a single specialized kernel serves the layer.
  pos_.pointer_width = neg_.pointer_width = std::max(pos_.pointer_width, neg_.pointer_width);
  pos_.index_width = neg_.index_width = std::max(pos_.index_width, neg_.index_width);
}

void CscEncoding::Accumulate(std::span<const int8_t> input, std::span<int32_t> sums) const {
  NEUROC_CHECK(input.size() == in_dim_ && sums.size() == out_dim_);
  for (size_t j = 0; j < out_dim_; ++j) {
    int32_t acc = 0;
    for (uint32_t k = pos_.pointers[j]; k < pos_.pointers[j + 1]; ++k) {
      acc += input[pos_.indices[k]];
    }
    for (uint32_t k = neg_.pointers[j]; k < neg_.pointers[j + 1]; ++k) {
      acc -= input[neg_.indices[k]];
    }
    sums[j] = acc;
  }
}

TernaryMatrix CscEncoding::Decode() const {
  TernaryMatrix m(in_dim_, out_dim_);
  for (size_t j = 0; j < out_dim_; ++j) {
    for (uint32_t k = pos_.pointers[j]; k < pos_.pointers[j + 1]; ++k) {
      m.set(pos_.indices[k], j, 1);
    }
    for (uint32_t k = neg_.pointers[j]; k < neg_.pointers[j + 1]; ++k) {
      m.set(neg_.indices[k], j, -1);
    }
  }
  return m;
}

EncodingSizeBreakdown CscEncoding::Sizes() const {
  EncodingSizeBreakdown s;
  s.metadata_bytes = pos_.pointers.size() * pos_.pointer_width +
                     neg_.pointers.size() * neg_.pointer_width;
  s.index_bytes =
      pos_.indices.size() * pos_.index_width + neg_.indices.size() * neg_.index_width;
  return s;
}

EncodingDeviceLayout CscEncoding::Pack(std::vector<uint8_t>& blob) const {
  EncodingDeviceLayout layout;
  layout.kind = EncodingKind::kCsc;
  layout.pos_meta = AppendArray(blob, pos_.pointers, pos_.pointer_width);
  layout.pos_idx = AppendArray(blob, pos_.indices, pos_.index_width);
  layout.neg_meta = AppendArray(blob, neg_.pointers, neg_.pointer_width);
  layout.neg_idx = AppendArray(blob, neg_.indices, neg_.index_width);
  return layout;
}

std::string CscEncoding::Describe() const {
  std::string s = "CSC encoding\n";
  s += "  pos pointers: " + FormatArray(pos_.pointers) + "\n";
  s += "  pos indices:  " + FormatArray(pos_.indices) + "\n";
  s += "  neg pointers: " + FormatArray(neg_.pointers) + "\n";
  s += "  neg indices:  " + FormatArray(neg_.indices) + "\n";
  return s;
}

}  // namespace neuroc
