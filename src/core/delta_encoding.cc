#include "src/core/delta_encoding.h"

#include <algorithm>

#include "src/common/check.h"

namespace neuroc {

namespace {

DeltaEncoding::Polarity BuildPolarity(const TernaryMatrix& m, bool positive) {
  DeltaEncoding::Polarity p;
  uint32_t max_count = 0;
  uint32_t max_entry = 0;
  for (size_t j = 0; j < m.out_dim(); ++j) {
    const std::vector<uint32_t> idx = positive ? m.PositiveIndices(j) : m.NegativeIndices(j);
    p.counts.push_back(static_cast<uint32_t>(idx.size()));
    max_count = std::max(max_count, p.counts.back());
    for (size_t k = 0; k < idx.size(); ++k) {
      const uint32_t entry = k == 0 ? idx[0] : idx[k] - idx[k - 1];
      p.stream.push_back(entry);
      max_entry = std::max(max_entry, entry);
    }
  }
  p.count_width = ElementWidthFor(max_count);
  p.stream_width = ElementWidthFor(max_entry);
  return p;
}

}  // namespace

DeltaEncoding::DeltaEncoding(const TernaryMatrix& matrix)
    : Encoding(matrix.in_dim(), matrix.out_dim()),
      pos_(BuildPolarity(matrix, true)),
      neg_(BuildPolarity(matrix, false)) {
  // Both polarities share element widths so a single specialized kernel serves the layer.
  pos_.count_width = neg_.count_width = std::max(pos_.count_width, neg_.count_width);
  pos_.stream_width = neg_.stream_width = std::max(pos_.stream_width, neg_.stream_width);
}

void DeltaEncoding::Accumulate(std::span<const int8_t> input, std::span<int32_t> sums) const {
  NEUROC_CHECK(input.size() == in_dim_ && sums.size() == out_dim_);
  size_t pp = 0;
  size_t np = 0;
  for (size_t j = 0; j < out_dim_; ++j) {
    int32_t acc = 0;
    // Mirrors the FORWARD_DELTA pseudocode of paper Fig. 4: the first index is absolute,
    // each following stream entry advances the input pointer by a relative offset.
    uint32_t count = pos_.counts[j];
    if (count > 0) {
      uint32_t i = pos_.stream[pp++];
      acc += input[i];
      while (--count > 0) {
        i += pos_.stream[pp++];
        acc += input[i];
      }
    }
    count = neg_.counts[j];
    if (count > 0) {
      uint32_t i = neg_.stream[np++];
      acc -= input[i];
      while (--count > 0) {
        i += neg_.stream[np++];
        acc -= input[i];
      }
    }
    sums[j] = acc;
  }
}

TernaryMatrix DeltaEncoding::Decode() const {
  TernaryMatrix m(in_dim_, out_dim_);
  size_t pp = 0;
  size_t np = 0;
  for (size_t j = 0; j < out_dim_; ++j) {
    uint32_t i = 0;
    for (uint32_t k = 0; k < pos_.counts[j]; ++k) {
      i = (k == 0) ? pos_.stream[pp++] : i + pos_.stream[pp++];
      m.set(i, j, 1);
    }
    for (uint32_t k = 0; k < neg_.counts[j]; ++k) {
      i = (k == 0) ? neg_.stream[np++] : i + neg_.stream[np++];
      m.set(i, j, -1);
    }
  }
  return m;
}

EncodingSizeBreakdown DeltaEncoding::Sizes() const {
  EncodingSizeBreakdown s;
  s.metadata_bytes =
      pos_.counts.size() * pos_.count_width + neg_.counts.size() * neg_.count_width;
  s.index_bytes =
      pos_.stream.size() * pos_.stream_width + neg_.stream.size() * neg_.stream_width;
  return s;
}

EncodingDeviceLayout DeltaEncoding::Pack(std::vector<uint8_t>& blob) const {
  EncodingDeviceLayout layout;
  layout.kind = EncodingKind::kDelta;
  layout.pos_meta = AppendArray(blob, pos_.counts, pos_.count_width);
  layout.pos_idx = AppendArray(blob, pos_.stream, pos_.stream_width);
  layout.neg_meta = AppendArray(blob, neg_.counts, neg_.count_width);
  layout.neg_idx = AppendArray(blob, neg_.stream, neg_.stream_width);
  return layout;
}

std::string DeltaEncoding::Describe() const {
  std::string s = "Delta encoding\n";
  s += "  pos counts: " + FormatArray(pos_.counts) + "\n";
  s += "  pos stream: " + FormatArray(pos_.stream) + " (first abs, then offsets)\n";
  s += "  neg counts: " + FormatArray(neg_.counts) + "\n";
  s += "  neg stream: " + FormatArray(neg_.stream) + " (first abs, then offsets)\n";
  return s;
}

}  // namespace neuroc
