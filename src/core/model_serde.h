// Binary (de)serialization of quantized models: the artifact format that decouples training
// (expensive, host-side) from deployment/benchmarking runs. Little-endian, versioned, with
// the ternary adjacency stored 2-bit-packed so files stay close to device size.
//
// Format v2 ("NCM2"/"MLM2") appends a CRC-32 of all preceding bytes, so on-disk bit rot is
// distinguished from structural corruption (kIntegrityFailure vs kMalformedImage). v1
// files ("NCM1"/"MLM1", no trailer) still load. Serialization always writes v2.

#ifndef NEUROC_SRC_CORE_MODEL_SERDE_H_
#define NEUROC_SRC_CORE_MODEL_SERDE_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/mlp_model.h"
#include "src/core/neuroc_model.h"

namespace neuroc {

// In-memory serialization.
std::vector<uint8_t> SerializeModel(const NeuroCModel& model);
std::vector<uint8_t> SerializeModel(const MlpModel& model);

// Structured error on malformed/truncated/corrupted input (never aborts on bad bytes):
// kMalformedImage for structural problems (bad magic, truncation, impossible dimensions,
// broken dimension chain, trailing garbage), kIntegrityFailure for a v2 CRC mismatch.
StatusOr<NeuroCModel> DeserializeNeuroCModel(std::span<const uint8_t> bytes);
StatusOr<MlpModel> DeserializeMlpModel(std::span<const uint8_t> bytes);

// File convenience wrappers. Save returns false on I/O failure; Load adds kIoError for
// unreadable files on top of the Deserialize statuses.
bool SaveModel(const NeuroCModel& model, const std::string& path);
bool SaveModel(const MlpModel& model, const std::string& path);
StatusOr<NeuroCModel> LoadNeuroCModel(const std::string& path);
StatusOr<MlpModel> LoadMlpModel(const std::string& path);

}  // namespace neuroc

#endif  // NEUROC_SRC_CORE_MODEL_SERDE_H_
