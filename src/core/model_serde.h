// Binary (de)serialization of quantized models: the artifact format that decouples training
// (expensive, host-side) from deployment/benchmarking runs. Little-endian, versioned, with
// the ternary adjacency stored 2-bit-packed so files stay close to device size.

#ifndef NEUROC_SRC_CORE_MODEL_SERDE_H_
#define NEUROC_SRC_CORE_MODEL_SERDE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/core/mlp_model.h"
#include "src/core/neuroc_model.h"

namespace neuroc {

// In-memory serialization.
std::vector<uint8_t> SerializeModel(const NeuroCModel& model);
std::vector<uint8_t> SerializeModel(const MlpModel& model);

// Returns nullopt on malformed/truncated input (never aborts on bad bytes).
std::optional<NeuroCModel> DeserializeNeuroCModel(std::span<const uint8_t> bytes);
std::optional<MlpModel> DeserializeMlpModel(std::span<const uint8_t> bytes);

// File convenience wrappers. Save returns false on I/O failure.
bool SaveModel(const NeuroCModel& model, const std::string& path);
bool SaveModel(const MlpModel& model, const std::string& path);
std::optional<NeuroCModel> LoadNeuroCModel(const std::string& path);
std::optional<MlpModel> LoadMlpModel(const std::string& path);

}  // namespace neuroc

#endif  // NEUROC_SRC_CORE_MODEL_SERDE_H_
