// Mixed encoding (paper Fig. 3, top right): per polarity, per-column counts (as in the delta
// format) but absolute indices (as in CSC). Stateless traversal without the sequential
// dependency of delta decoding, at a footprint between CSC and delta.

#ifndef NEUROC_SRC_CORE_MIXED_ENCODING_H_
#define NEUROC_SRC_CORE_MIXED_ENCODING_H_

#include "src/core/encoding.h"

namespace neuroc {

class MixedEncoding : public Encoding {
 public:
  explicit MixedEncoding(const TernaryMatrix& matrix);

  EncodingKind kind() const override { return EncodingKind::kMixed; }
  void Accumulate(std::span<const int8_t> input, std::span<int32_t> sums) const override;
  TernaryMatrix Decode() const override;
  EncodingSizeBreakdown Sizes() const override;
  EncodingDeviceLayout Pack(std::vector<uint8_t>& blob) const override;
  std::string Describe() const override;

  struct Polarity {
    std::vector<uint32_t> counts;   // [out_dim]
    std::vector<uint32_t> indices;  // [nnz], absolute
    uint8_t count_width = 1;
    uint8_t index_width = 1;
  };
  const Polarity& positive() const { return pos_; }
  const Polarity& negative() const { return neg_; }

 private:
  Polarity pos_;
  Polarity neg_;
};

}  // namespace neuroc

#endif  // NEUROC_SRC_CORE_MIXED_ENCODING_H_
