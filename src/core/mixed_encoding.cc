#include "src/core/mixed_encoding.h"

#include <algorithm>

#include "src/common/check.h"

namespace neuroc {

namespace {

MixedEncoding::Polarity BuildPolarity(const TernaryMatrix& m, bool positive) {
  MixedEncoding::Polarity p;
  uint32_t max_count = 0;
  for (size_t j = 0; j < m.out_dim(); ++j) {
    const std::vector<uint32_t> idx = positive ? m.PositiveIndices(j) : m.NegativeIndices(j);
    p.counts.push_back(static_cast<uint32_t>(idx.size()));
    max_count = std::max(max_count, p.counts.back());
    p.indices.insert(p.indices.end(), idx.begin(), idx.end());
  }
  p.count_width = ElementWidthFor(max_count);
  p.index_width =
      ElementWidthFor(m.in_dim() == 0 ? 0 : static_cast<uint32_t>(m.in_dim() - 1));
  return p;
}

}  // namespace

MixedEncoding::MixedEncoding(const TernaryMatrix& matrix)
    : Encoding(matrix.in_dim(), matrix.out_dim()),
      pos_(BuildPolarity(matrix, true)),
      neg_(BuildPolarity(matrix, false)) {
  // Both polarities share element widths so a single specialized kernel serves the layer.
  pos_.count_width = neg_.count_width = std::max(pos_.count_width, neg_.count_width);
  pos_.index_width = neg_.index_width = std::max(pos_.index_width, neg_.index_width);
}

void MixedEncoding::Accumulate(std::span<const int8_t> input, std::span<int32_t> sums) const {
  NEUROC_CHECK(input.size() == in_dim_ && sums.size() == out_dim_);
  size_t pp = 0;
  size_t np = 0;
  for (size_t j = 0; j < out_dim_; ++j) {
    int32_t acc = 0;
    for (uint32_t k = 0; k < pos_.counts[j]; ++k) {
      acc += input[pos_.indices[pp++]];
    }
    for (uint32_t k = 0; k < neg_.counts[j]; ++k) {
      acc -= input[neg_.indices[np++]];
    }
    sums[j] = acc;
  }
}

TernaryMatrix MixedEncoding::Decode() const {
  TernaryMatrix m(in_dim_, out_dim_);
  size_t pp = 0;
  size_t np = 0;
  for (size_t j = 0; j < out_dim_; ++j) {
    for (uint32_t k = 0; k < pos_.counts[j]; ++k) {
      m.set(pos_.indices[pp++], j, 1);
    }
    for (uint32_t k = 0; k < neg_.counts[j]; ++k) {
      m.set(neg_.indices[np++], j, -1);
    }
  }
  return m;
}

EncodingSizeBreakdown MixedEncoding::Sizes() const {
  EncodingSizeBreakdown s;
  s.metadata_bytes =
      pos_.counts.size() * pos_.count_width + neg_.counts.size() * neg_.count_width;
  s.index_bytes =
      pos_.indices.size() * pos_.index_width + neg_.indices.size() * neg_.index_width;
  return s;
}

EncodingDeviceLayout MixedEncoding::Pack(std::vector<uint8_t>& blob) const {
  EncodingDeviceLayout layout;
  layout.kind = EncodingKind::kMixed;
  layout.pos_meta = AppendArray(blob, pos_.counts, pos_.count_width);
  layout.pos_idx = AppendArray(blob, pos_.indices, pos_.index_width);
  layout.neg_meta = AppendArray(blob, neg_.counts, neg_.count_width);
  layout.neg_idx = AppendArray(blob, neg_.indices, neg_.index_width);
  return layout;
}

std::string MixedEncoding::Describe() const {
  std::string s = "Mixed encoding\n";
  s += "  pos counts:  " + FormatArray(pos_.counts) + "\n";
  s += "  pos indices: " + FormatArray(pos_.indices) + "\n";
  s += "  neg counts:  " + FormatArray(neg_.counts) + "\n";
  s += "  neg indices: " + FormatArray(neg_.indices) + "\n";
  return s;
}

}  // namespace neuroc
