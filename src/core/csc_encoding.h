// Baseline CSC encoding: per polarity, a pointer array [out_dim + 1] of absolute offsets
// into an absolute-index array (paper Fig. 3, top left).

#ifndef NEUROC_SRC_CORE_CSC_ENCODING_H_
#define NEUROC_SRC_CORE_CSC_ENCODING_H_

#include "src/core/encoding.h"

namespace neuroc {

class CscEncoding : public Encoding {
 public:
  explicit CscEncoding(const TernaryMatrix& matrix);

  EncodingKind kind() const override { return EncodingKind::kCsc; }
  void Accumulate(std::span<const int8_t> input, std::span<int32_t> sums) const override;
  TernaryMatrix Decode() const override;
  EncodingSizeBreakdown Sizes() const override;
  EncodingDeviceLayout Pack(std::vector<uint8_t>& blob) const override;
  std::string Describe() const override;

  // Exposed for white-box tests.
  struct Polarity {
    std::vector<uint32_t> pointers;  // [out_dim + 1]
    std::vector<uint32_t> indices;   // [nnz], absolute, ascending per column
    uint8_t pointer_width = 1;
    uint8_t index_width = 1;
  };
  const Polarity& positive() const { return pos_; }
  const Polarity& negative() const { return neg_; }

 private:
  Polarity pos_;
  Polarity neg_;
};

}  // namespace neuroc

#endif  // NEUROC_SRC_CORE_CSC_ENCODING_H_
