#include "src/core/adjacency_stats.h"

#include <algorithm>
#include <cstdio>

namespace neuroc {

AdjacencyStats AnalyzeAdjacency(const TernaryMatrix& m) {
  AdjacencyStats s;
  s.in_dim = m.in_dim();
  s.out_dim = m.out_dim();
  s.min_fan_in = m.in_dim();
  for (size_t j = 0; j < m.out_dim(); ++j) {
    size_t fan = 0;
    for (const bool positive : {true, false}) {
      const std::vector<uint32_t> idx = positive ? m.PositiveIndices(j) : m.NegativeIndices(j);
      fan += idx.size();
      (positive ? s.positives : s.negatives) += idx.size();
      if (!idx.empty()) {
        s.max_first_index = std::max(s.max_first_index, idx.front());
        for (size_t k = 1; k < idx.size(); ++k) {
          s.max_gap = std::max(s.max_gap, idx[k] - idx[k - 1]);
        }
      }
    }
    s.min_fan_in = std::min(s.min_fan_in, fan);
    s.max_fan_in = std::max(s.max_fan_in, fan);
    if (fan == 0) {
      ++s.empty_columns;
    }
  }
  s.nonzeros = s.positives + s.negatives;
  const size_t cells = m.in_dim() * m.out_dim();
  s.density = cells == 0 ? 0.0 : static_cast<double>(s.nonzeros) / static_cast<double>(cells);
  s.mean_fan_in =
      m.out_dim() == 0 ? 0.0 : static_cast<double>(s.nonzeros) / static_cast<double>(m.out_dim());
  return s;
}

std::string FormatAdjacencyStats(const AdjacencyStats& s) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "%zux%zu adjacency: %zu nonzeros (density %.3f; +%zu/-%zu)\n"
                "fan-in min/mean/max: %zu / %.1f / %zu; empty columns: %zu\n"
                "delta stream: max first index %u, max gap %u -> %s entries\n",
                s.in_dim, s.out_dim, s.nonzeros, s.density, s.positives, s.negatives,
                s.min_fan_in, s.mean_fan_in, s.max_fan_in, s.empty_columns,
                s.max_first_index, s.max_gap,
                s.DeltaFitsOneByte() ? "8-bit" : "16-bit");
  return buf;
}

}  // namespace neuroc
