#include "src/core/unrolled_encoding.h"

#include <cstdlib>

#include "src/common/check.h"

namespace neuroc {

UnrolledEncoding::UnrolledEncoding(const TernaryMatrix& matrix)
    : Encoding(matrix.in_dim(), matrix.out_dim()) {
  columns_.resize(matrix.out_dim());
  for (size_t j = 0; j < matrix.out_dim(); ++j) {
    const std::vector<uint32_t> pos = matrix.PositiveIndices(j);
    const std::vector<uint32_t> neg = matrix.NegativeIndices(j);
    std::vector<Element>& col = columns_[j];
    col.reserve(pos.size() + neg.size());
    // Merge the two ascending polarity lists into one ascending walk so the generated
    // pointer retargets are minimal forward hops within a column.
    size_t p = 0;
    size_t n = 0;
    while (p < pos.size() || n < neg.size()) {
      if (n >= neg.size() || (p < pos.size() && pos[p] < neg[n])) {
        col.push_back({pos[p++], +1});
      } else {
        col.push_back({neg[n++], -1});
      }
    }
  }
}

void UnrolledEncoding::Accumulate(std::span<const int8_t> input,
                                  std::span<int32_t> sums) const {
  NEUROC_CHECK(input.size() == in_dim_ && sums.size() == out_dim_);
  for (size_t j = 0; j < out_dim_; ++j) {
    int32_t acc = 0;
    for (const Element& e : columns_[j]) {
      acc += e.sign > 0 ? input[e.index] : -input[e.index];
    }
    sums[j] = acc;
  }
}

TernaryMatrix UnrolledEncoding::Decode() const {
  TernaryMatrix m(in_dim_, out_dim_);
  for (size_t j = 0; j < out_dim_; ++j) {
    for (const Element& e : columns_[j]) {
      m.set(e.index, j, e.sign);
    }
  }
  return m;
}

size_t UnrolledEncoding::NonZeroCount() const {
  size_t n = 0;
  for (const auto& col : columns_) {
    n += col.size();
  }
  return n;
}

size_t UnrolledEncoding::RetargetInstrCount(int64_t delta) {
  const uint64_t mag = static_cast<uint64_t>(delta < 0 ? -delta : delta);
  return static_cast<size_t>((mag + 254) / 255);  // 0 for delta == 0
}

EncodingSizeBreakdown UnrolledEncoding::Sizes() const {
  // Marginal code bytes of the generated kernel, mirroring GenerateUnrolledKernelSource:
  //   per column    movs r3, #0 (2 B) + bl <epilogue> (4 B)        -> metadata
  //   per element   retarget chunks (2 B each) + ldrsb (2 B) + add/sub (2 B) -> "index"
  // The running input pointer carries across columns, exactly as the generator emits it.
  EncodingSizeBreakdown s;
  int64_t prev = 0;
  for (const auto& col : columns_) {
    s.metadata_bytes += 6;
    for (const Element& e : col) {
      s.index_bytes += 2 * RetargetInstrCount(static_cast<int64_t>(e.index) - prev) + 4;
      prev = e.index;
    }
  }
  return s;
}

EncodingDeviceLayout UnrolledEncoding::Pack(std::vector<uint8_t>& blob) const {
  // Nothing to serialize: the weights live in the kernel text, not the model image. The
  // descriptor still carries dims/requant fields; all four arrays are empty.
  (void)blob;
  EncodingDeviceLayout layout;
  layout.kind = EncodingKind::kUnrolled;
  return layout;
}

std::string UnrolledEncoding::Describe() const {
  size_t pos = 0;
  size_t neg = 0;
  for (const auto& col : columns_) {
    for (const Element& e : col) {
      (e.sign > 0 ? pos : neg) += 1;
    }
  }
  std::string s = "Unrolled encoding (weights compiled into kernel text, pos=" +
                  std::to_string(pos) + " neg=" + std::to_string(neg) + ")\n";
  for (size_t j = 0; j < columns_.size(); ++j) {
    s += "  col " + std::to_string(j) + ":";
    for (const Element& e : columns_[j]) {
      s += (e.sign > 0 ? " +" : " -") + std::to_string(e.index);
    }
    s += "\n";
  }
  const EncodingSizeBreakdown sz = Sizes();
  s += "  marginal code bytes: " + std::to_string(sz.total()) + " (" +
       std::to_string(sz.metadata_bytes) + " column overhead, " +
       std::to_string(sz.index_bytes) + " accumulate stream)\n";
  return s;
}

}  // namespace neuroc
