#include "src/core/model_image.h"

#include <algorithm>
#include <span>

#include "src/common/check.h"
#include "src/common/crc32.h"

namespace neuroc {

namespace {

constexpr uint32_t kAlign4 = 4;

void Align(std::vector<uint8_t>& blob, uint32_t alignment) {
  while (blob.size() % alignment != 0) {
    blob.push_back(0);
  }
}

void WriteWord(std::vector<uint8_t>& blob, size_t byte_offset, uint32_t value) {
  NEUROC_CHECK(byte_offset + 4 <= blob.size());
  blob[byte_offset + 0] = static_cast<uint8_t>(value & 0xFF);
  blob[byte_offset + 1] = static_cast<uint8_t>((value >> 8) & 0xFF);
  blob[byte_offset + 2] = static_cast<uint8_t>((value >> 16) & 0xFF);
  blob[byte_offset + 3] = static_cast<uint8_t>((value >> 24) & 0xFF);
}

uint32_t AppendBytes(std::vector<uint8_t>& blob, const uint8_t* data, size_t n,
                     uint32_t alignment) {
  Align(blob, alignment);
  const uint32_t offset = static_cast<uint32_t>(blob.size());
  blob.insert(blob.end(), data, data + n);
  return offset;
}

uint32_t AppendInt8(std::vector<uint8_t>& blob, const std::vector<int8_t>& v) {
  return AppendBytes(blob, reinterpret_cast<const uint8_t*>(v.data()), v.size(), 1);
}

uint32_t AppendInt32(std::vector<uint8_t>& blob, const std::vector<int32_t>& v) {
  Align(blob, kAlign4);
  const uint32_t offset = static_cast<uint32_t>(blob.size());
  for (int32_t x : v) {
    const uint32_t u = static_cast<uint32_t>(x);
    blob.push_back(static_cast<uint8_t>(u & 0xFF));
    blob.push_back(static_cast<uint8_t>((u >> 8) & 0xFF));
    blob.push_back(static_cast<uint8_t>((u >> 16) & 0xFF));
    blob.push_back(static_cast<uint8_t>((u >> 24) & 0xFF));
  }
  return offset;
}

// SRAM buffer plan shared by both model types.
struct RamPlan {
  uint32_t buf[2];       // ping-pong int8 activation buffers
  uint32_t scratch;      // int32 scratch, max_out entries
  uint32_t bytes_used;
};

RamPlan PlanRam(uint32_t ram_base, size_t max_act_dim, size_t max_out_dim) {
  RamPlan plan{};
  uint32_t cursor = ram_base;
  auto align4 = [](uint32_t v) { return (v + 3u) & ~3u; };
  plan.buf[0] = cursor;
  cursor = align4(cursor + static_cast<uint32_t>(max_act_dim));
  plan.buf[1] = cursor;
  cursor = align4(cursor + static_cast<uint32_t>(max_act_dim));
  plan.scratch = cursor;
  cursor += static_cast<uint32_t>(max_out_dim) * 4u;
  plan.bytes_used = cursor - ram_base;
  return plan;
}

// Records a digestable span; CRCs are filled in once the blob stops mutating (descriptor
// words are patched throughout the packing loop).
void AddSection(DeviceModelImage& image, std::string name, size_t offset, size_t end) {
  ImageSection s;
  s.name = std::move(name);
  s.offset = static_cast<uint32_t>(offset);
  s.size = static_cast<uint32_t>(end - offset);
  image.sections.push_back(std::move(s));
}

void FinalizeSections(DeviceModelImage& image) {
  // Whole-image digest first: covers alignment padding between arrays, so any flash bit
  // flip inside the packed image is detectable even if it misses every named section.
  ImageSection whole;
  whole.name = "image";
  whole.offset = 0;
  whole.size = static_cast<uint32_t>(image.flash.size());
  image.sections.insert(image.sections.begin(), std::move(whole));
  for (ImageSection& s : image.sections) {
    s.crc32 = Crc32(std::span<const uint8_t>(image.flash.data() + s.offset, s.size));
  }
}

}  // namespace

DeviceModelImage PackNeuroCModel(const NeuroCModel& model, uint32_t flash_data_base,
                                 uint32_t ram_base) {
  NEUROC_CHECK(!model.layers().empty());
  DeviceModelImage image;
  image.flash_data_base = flash_data_base;
  image.input_dim = static_cast<uint32_t>(model.in_dim());
  image.output_dim = static_cast<uint32_t>(model.out_dim());

  size_t max_out = 0;
  for (const auto& l : model.layers()) {
    max_out = std::max(max_out, static_cast<size_t>(l.out_dim));
  }
  const RamPlan ram = PlanRam(ram_base, model.MaxActivationDim(), max_out);
  image.ram_bytes_used = ram.bytes_used;
  image.input_addr = ram.buf[0];

  const size_t n = model.layers().size();
  std::vector<uint8_t>& blob = image.flash;
  blob.assign(n * kDescriptorBytes, 0);
  AddSection(image, "descriptors", 0, blob.size());

  for (size_t k = 0; k < n; ++k) {
    const QuantNeuroCLayer& l = model.layers()[k];
    const std::string prefix = "layer" + std::to_string(k);
    const size_t enc_begin = blob.size();
    const EncodingDeviceLayout enc = l.encoding->Pack(blob);
    if (blob.size() > enc_begin) {
      // kUnrolled packs nothing — its weights live in the kernel text, so there is no
      // weights section to digest.
      AddSection(image, prefix + ".weights", enc_begin, blob.size());
    }
    // Pack() appended arrays with offsets relative to blob start; they already include the
    // descriptor preamble because the descriptors were reserved first.
    uint32_t scale_addr = 0;
    if (l.has_scale()) {
      const uint32_t scale_off = AppendInt8(blob, l.scale_q);
      scale_addr = flash_data_base + scale_off;
      AddSection(image, prefix + ".scales", scale_off, blob.size());
    }
    const uint32_t bias_off = AppendInt32(blob, l.bias_q);
    const uint32_t bias_addr = flash_data_base + bias_off;
    AddSection(image, prefix + ".bias", bias_off, blob.size());

    const size_t d = k * kDescriptorBytes;
    auto word = [&](DescWord w, uint32_t v) { WriteWord(blob, d + w * 4, v); };
    word(kDescInDim, l.in_dim);
    word(kDescOutDim, l.out_dim);
    word(kDescFlags, static_cast<uint32_t>(enc.kind) |
                         (l.has_scale() ? 1u << 8 : 0u) | (l.relu ? 1u << 16 : 0u));
    word(kDescPosMetaAddr, flash_data_base + enc.pos_meta.offset);
    word(kDescPosMetaWidth, enc.pos_meta.elem_width);
    word(kDescPosIdxAddr, flash_data_base + enc.pos_idx.offset);
    word(kDescPosIdxWidth, enc.pos_idx.elem_width);
    word(kDescNegMetaAddr, flash_data_base + enc.neg_meta.offset);
    word(kDescNegMetaWidth, enc.neg_meta.elem_width);
    word(kDescNegIdxAddr, flash_data_base + enc.neg_idx.offset);
    word(kDescNegIdxWidth, enc.neg_idx.elem_width);
    word(kDescScaleAddr, scale_addr);
    word(kDescBiasAddr, bias_addr);
    word(kDescShift, static_cast<uint32_t>(l.requant_shift));
    word(kDescBlockSize, enc.block_size);
    word(kDescNumBlocks, enc.num_blocks);
    word(kDescWeightsAddr, 0);
    word(kDescInputAddr, ram.buf[k % 2]);
    word(kDescOutputAddr, ram.buf[(k + 1) % 2]);
    word(kDescScratchAddr, ram.scratch);

    image.descriptor_addrs.push_back(flash_data_base +
                                     static_cast<uint32_t>(d));
    KernelVariant variant;
    variant.is_dense = false;
    variant.kind = enc.kind;
    // Both polarities share widths by construction (same in_dim / comparable ranges); take
    // the max so one kernel variant covers both.
    variant.meta_width = std::max(enc.pos_meta.elem_width, enc.neg_meta.elem_width);
    variant.idx_width = std::max(enc.pos_idx.elem_width, enc.neg_idx.elem_width);
    variant.has_scale = l.has_scale();
    if (enc.kind == EncodingKind::kUnrolled) {
      variant.unrolled_layer = static_cast<int16_t>(k);
    }
    image.variants.push_back(variant);

    if (k + 1 == n) {
      image.output_addr = ram.buf[(k + 1) % 2];
    }
  }
  FinalizeSections(image);
  return image;
}

DeviceModelImage PackMlpModel(const MlpModel& model, uint32_t flash_data_base,
                              uint32_t ram_base) {
  NEUROC_CHECK(!model.layers().empty());
  DeviceModelImage image;
  image.flash_data_base = flash_data_base;
  image.input_dim = static_cast<uint32_t>(model.in_dim());
  image.output_dim = static_cast<uint32_t>(model.out_dim());

  size_t max_out = 0;
  for (const auto& l : model.layers()) {
    max_out = std::max(max_out, static_cast<size_t>(l.out_dim));
  }
  const RamPlan ram = PlanRam(ram_base, model.MaxActivationDim(), max_out);
  image.ram_bytes_used = ram.bytes_used;
  image.input_addr = ram.buf[0];

  const size_t n = model.layers().size();
  std::vector<uint8_t>& blob = image.flash;
  blob.assign(n * kDescriptorBytes, 0);
  AddSection(image, "descriptors", 0, blob.size());

  for (size_t k = 0; k < n; ++k) {
    const QuantDenseLayer& l = model.layers()[k];
    const std::string prefix = "layer" + std::to_string(k);
    const uint32_t weights_off = AppendInt8(blob, l.weights);
    const uint32_t weights_addr = flash_data_base + weights_off;
    AddSection(image, prefix + ".weights", weights_off, blob.size());
    const uint32_t bias_off = AppendInt32(blob, l.bias_q);
    const uint32_t bias_addr = flash_data_base + bias_off;
    AddSection(image, prefix + ".bias", bias_off, blob.size());

    const size_t d = k * kDescriptorBytes;
    auto word = [&](DescWord w, uint32_t v) { WriteWord(blob, d + w * 4, v); };
    word(kDescInDim, l.in_dim);
    word(kDescOutDim, l.out_dim);
    word(kDescFlags, (l.relu ? 1u << 16 : 0u) | (1u << 24));
    word(kDescBiasAddr, bias_addr);
    word(kDescShift, static_cast<uint32_t>(l.requant_shift));
    word(kDescWeightsAddr, weights_addr);
    word(kDescInputAddr, ram.buf[k % 2]);
    word(kDescOutputAddr, ram.buf[(k + 1) % 2]);
    word(kDescScratchAddr, ram.scratch);

    image.descriptor_addrs.push_back(flash_data_base + static_cast<uint32_t>(d));
    KernelVariant variant;
    variant.is_dense = true;
    image.variants.push_back(variant);

    if (k + 1 == n) {
      image.output_addr = ram.buf[(k + 1) % 2];
    }
  }
  FinalizeSections(image);
  return image;
}

}  // namespace neuroc
