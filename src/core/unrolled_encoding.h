// Unrolled encoding (ROADMAP "model-specific unrolled kernel codegen"; Tridgell et al.,
// "Unrolling Ternary Neural Networks", ported from FPGA LUTs to Cortex-M0 Thumb):
// the adjacency is not stored as data at all — it is compiled into straight-line code, one
// signed add/sub per nonzero, with every operand address resolved at generation time. Pack()
// therefore emits an empty blob; the flash cost lives in the kernel text instead, and
// Sizes() models exactly the *marginal* instruction bytes the per-model generator in
// src/kernels/kernel_sources.cc emits (pin-tested against the assembled kernel).
//
// Per column the generator walks the merged ascending (index, sign) sequence keeping a
// running input pointer: an `adds r1, #delta` chunk sequence retargets the pointer, then
// `ldrsb` + `adds`/`subs` accumulates. Both the generator and the size model consume the
// same columns() accessor so the two cannot drift.

#ifndef NEUROC_SRC_CORE_UNROLLED_ENCODING_H_
#define NEUROC_SRC_CORE_UNROLLED_ENCODING_H_

#include "src/core/encoding.h"

namespace neuroc {

class UnrolledEncoding : public Encoding {
 public:
  explicit UnrolledEncoding(const TernaryMatrix& matrix);

  EncodingKind kind() const override { return EncodingKind::kUnrolled; }
  void Accumulate(std::span<const int8_t> input, std::span<int32_t> sums) const override;
  TernaryMatrix Decode() const override;
  EncodingSizeBreakdown Sizes() const override;
  EncodingDeviceLayout Pack(std::vector<uint8_t>& blob) const override;
  std::string Describe() const override;

  // One compiled accumulate step: load input[index], add it (sign=+1) or subtract it
  // (sign=-1) into the running column sum.
  struct Element {
    uint32_t index = 0;
    int8_t sign = 0;
    bool operator==(const Element&) const = default;
  };

  // Merged ascending (index, sign) walk per output column — the exact sequence the
  // per-model codegen emits instructions for.
  const std::vector<std::vector<Element>>& columns() const { return columns_; }

  size_t NonZeroCount() const;

  // Number of `adds/subs r1, #imm8` instructions needed to move the input pointer by a
  // signed byte delta (imm8 range is 0..255, so large hops are chunked).
  static size_t RetargetInstrCount(int64_t delta);

 private:
  std::vector<std::vector<Element>> columns_;  // [out_dim]
};

}  // namespace neuroc

#endif  // NEUROC_SRC_CORE_UNROLLED_ENCODING_H_
