// Sparse ternary-adjacency encodings (paper Sec. 4.2, Fig. 3).
//
// Every encoding stores, for each output neuron, the indices of its nonzero input connections
// split into a positive and a negative set, and must support inference traversal without
// matrix reconstruction. The four schemes trade decode simplicity against byte footprint:
//
//   kCsc    — standard CSC: absolute pointers [out+1] + absolute indices.
//   kDelta  — per-column counts + (first absolute index, then relative offsets).
//   kMixed  — per-column counts + absolute indices (stateless, smaller than CSC).
//   kBlock  — input split into blocks of <=256; per-block counts + block-local 8-bit
//             indices. The only scheme that guarantees 8-bit indices by construction.
//   kUnrolled — no stored indices at all: the adjacency is compiled into straight-line
//             Thumb (one signed add/sub per nonzero) by src/kernels. Sizes() reports the
//             marginal kernel-text bytes so the flash/cycles trade-off stays comparable.
//
// Each concrete encoding provides: a host reference traversal (Accumulate), exact byte-size
// accounting (Sizes), lossless decode back to the dense matrix (round-trip tested), a
// device serialization (Pack) consumed by the simulated Cortex-M0 kernels, and a textual
// description used to regenerate the paper's Fig. 3.

#ifndef NEUROC_SRC_CORE_ENCODING_H_
#define NEUROC_SRC_CORE_ENCODING_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/core/ternary_matrix.h"

namespace neuroc {

enum class EncodingKind : uint8_t {
  kCsc = 0,
  kDelta = 1,
  kMixed = 2,
  kBlock = 3,
  kUnrolled = 4,
};

const char* EncodingKindName(EncodingKind kind);
inline constexpr EncodingKind kAllEncodingKinds[] = {
    EncodingKind::kCsc, EncodingKind::kDelta, EncodingKind::kMixed, EncodingKind::kBlock,
    EncodingKind::kUnrolled};

struct EncodingOptions {
  // kBlock only; must be in [1, 256]. The default is 255 rather than the paper's stated
  // upper bound of 256: a block of 255 inputs guarantees that *both* the block-local
  // indices and the per-column-per-block counts fit 8 bits, even for a column fully
  // connected within a block (a case learned clustered adjacencies do produce).
  size_t block_size = 255;
};

struct EncodingSizeBreakdown {
  size_t metadata_bytes = 0;  // pointers / counts
  size_t index_bytes = 0;     // index or delta streams
  size_t total() const { return metadata_bytes + index_bytes; }
};

// Location of one serialized array inside a device blob.
struct DeviceArray {
  uint32_t offset = 0;      // byte offset from the start of the blob
  uint32_t count = 0;       // number of elements
  uint8_t elem_width = 1;   // bytes per element (1 or 2)
};

// Everything a device kernel needs to traverse a packed encoding.
struct EncodingDeviceLayout {
  EncodingKind kind = EncodingKind::kCsc;
  DeviceArray pos_meta;  // pointers (kCsc) or counts (others)
  DeviceArray pos_idx;   // absolute indices, delta stream, or block-local indices
  DeviceArray neg_meta;
  DeviceArray neg_idx;
  uint32_t block_size = 0;   // kBlock only
  uint32_t num_blocks = 0;   // kBlock only
};

class Encoding {
 public:
  virtual ~Encoding() = default;

  virtual EncodingKind kind() const = 0;
  size_t in_dim() const { return in_dim_; }
  size_t out_dim() const { return out_dim_; }

  // Reference traversal: sums[j] = sum over positive connections of input[i] minus the sum
  // over negative connections. `sums` must have out_dim() entries; it is overwritten.
  virtual void Accumulate(std::span<const int8_t> input, std::span<int32_t> sums) const = 0;

  // Lossless reconstruction of the dense adjacency (property-tested round trip).
  virtual TernaryMatrix Decode() const = 0;

  virtual EncodingSizeBreakdown Sizes() const = 0;

  // Appends the serialized arrays to `blob` (2-byte elements are 2-aligned) and returns the
  // layout descriptor. Offsets are relative to the start of `blob`.
  virtual EncodingDeviceLayout Pack(std::vector<uint8_t>& blob) const = 0;

  // Human-readable array dump used by the Fig. 3 bench.
  virtual std::string Describe() const = 0;

 protected:
  Encoding(size_t in_dim, size_t out_dim) : in_dim_(in_dim), out_dim_(out_dim) {}

  size_t in_dim_;
  size_t out_dim_;
};

// Factory covering all four kinds.
std::unique_ptr<Encoding> BuildEncoding(EncodingKind kind, const TernaryMatrix& matrix,
                                        const EncodingOptions& options = {});

// ---------------------------------------------------------------------------
// Shared helpers for the concrete encodings (exposed for tests).
// ---------------------------------------------------------------------------

// Width in bytes (1 or 2) needed to store values up to max_value inclusive.
uint8_t ElementWidthFor(uint32_t max_value);

// Appends `values` to `blob` using the given element width (little-endian), returning the
// resulting DeviceArray. 2-byte arrays are aligned to a 2-byte boundary first.
DeviceArray AppendArray(std::vector<uint8_t>& blob, std::span<const uint32_t> values,
                        uint8_t elem_width);

// Formats a u32 vector as "[a, b, c]" (used by Describe()).
std::string FormatArray(std::span<const uint32_t> values);

}  // namespace neuroc

#endif  // NEUROC_SRC_CORE_ENCODING_H_
