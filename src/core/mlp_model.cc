#include "src/core/mlp_model.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/fixed_point.h"
#include "src/tensor/matrix_ops.h"
#include "src/train/layers.h"
#include "src/train/trainer.h"

namespace neuroc {

namespace {

// Dense layer with optional batch norm folded in, in float form, pre-quantization.
struct FoldedDense {
  Tensor weights;  // [in, out]
  std::vector<float> bias;
  bool relu = false;
  size_t output_module = 0;  // module index whose output defines the activation range
};

}  // namespace

MlpModel MlpModel::FromTrained(Network& net, const Dataset& calibration,
                               const MlpQuantOptions& options) {
  const auto& modules = net.modules();
  // Walk the module list, folding dense(+bn) groups and noting trailing ReLUs.
  std::vector<FoldedDense> folded;
  for (size_t m = 0; m < modules.size(); ++m) {
    auto* dense = dynamic_cast<DenseLayer*>(modules[m].get());
    if (dense == nullptr) {
      continue;
    }
    FoldedDense fd;
    fd.weights = dense->weights();
    fd.bias.assign(dense->bias().flat().begin(), dense->bias().flat().end());
    size_t out_idx = m;
    size_t next = m + 1;
    if (next < modules.size()) {
      if (auto* bn = dynamic_cast<BatchNorm1dLayer*>(modules[next].get())) {
        // Fold: w' = w * gamma/sqrt(var+eps); b' = (b − mean) * gamma/sqrt(var+eps) + beta.
        const size_t out_dim = fd.weights.cols();
        for (size_t j = 0; j < out_dim; ++j) {
          const float inv_std =
              1.0f / std::sqrt(bn->running_var()[j] + bn->epsilon());
          const float g = bn->gamma()[j] * inv_std;
          for (size_t i = 0; i < fd.weights.rows(); ++i) {
            fd.weights.at(i, j) *= g;
          }
          fd.bias[j] = (fd.bias[j] - bn->running_mean()[j]) * g + bn->beta()[j];
        }
        out_idx = next;
        ++next;
      }
      if (next < modules.size() && dynamic_cast<ReluLayer*>(modules[next].get())) {
        fd.relu = true;
        out_idx = next;
      }
    }
    fd.output_module = out_idx;
    folded.push_back(std::move(fd));
  }
  NEUROC_CHECK_MSG(!folded.empty(), "network contains no DenseLayer modules");

  // Calibration pass for activation ranges. Note: BN runs with its running statistics here,
  // matching what the folded weights will compute.
  const size_t n_cal = std::min(calibration.num_examples(), options.max_calibration_examples);
  NEUROC_CHECK(n_cal > 0);
  std::vector<size_t> idx(n_cal);
  for (size_t i = 0; i < n_cal; ++i) {
    idx[i] = i;
  }
  Tensor batch;
  std::vector<int> labels_unused;
  GatherBatch(calibration, idx, batch, labels_unused);
  std::vector<float> module_max_abs(modules.size(), 0.0f);
  {
    const Tensor* cur = &batch;
    for (size_t m = 0; m < modules.size(); ++m) {
      cur = &modules[m]->Forward(*cur, /*training=*/false);
      module_max_abs[m] = MaxAbs(*cur);
    }
  }

  MlpModel model;
  int prev_out_frac = options.input_frac;
  for (const FoldedDense& fd : folded) {
    QuantDenseLayer q;
    q.in_dim = static_cast<uint32_t>(fd.weights.rows());
    q.out_dim = static_cast<uint32_t>(fd.weights.cols());
    q.relu = fd.relu;
    q.in_frac = prev_out_frac;
    q.weight_frac = ChooseFracBits(MaxAbs(fd.weights), 8);
    q.weights.resize(static_cast<size_t>(q.in_dim) * q.out_dim);
    // Transpose to [out][in] so the device kernel streams weights per output neuron.
    for (size_t j = 0; j < q.out_dim; ++j) {
      for (size_t i = 0; i < q.in_dim; ++i) {
        q.weights[j * q.in_dim + i] = QuantizeQ7(fd.weights.at(i, j), q.weight_frac);
      }
    }
    q.out_frac = ChooseFracBits(module_max_abs[fd.output_module], 8, /*min_frac=*/-8,
                                /*max_frac=*/q.in_frac + q.weight_frac);
    q.requant_shift = q.in_frac + q.weight_frac - q.out_frac;
    NEUROC_CHECK(q.requant_shift >= 0);
    q.bias_q.resize(q.out_dim);
    for (size_t j = 0; j < q.out_dim; ++j) {
      q.bias_q[j] = QuantizeFixed(fd.bias[j], q.in_frac + q.weight_frac, 32);
    }
    prev_out_frac = q.out_frac;
    model.layers_.push_back(std::move(q));
  }
  return model;
}

MlpModel MlpModel::FromLayers(std::vector<QuantDenseLayer> layers) {
  NEUROC_CHECK(!layers.empty());
  for (size_t k = 0; k + 1 < layers.size(); ++k) {
    NEUROC_CHECK(layers[k].out_dim == layers[k + 1].in_dim);
  }
  MlpModel model;
  model.layers_ = std::move(layers);
  return model;
}

void RunQuantDenseLayer(const QuantDenseLayer& layer, std::span<const int8_t> input,
                        std::span<int8_t> output) {
  NEUROC_CHECK(input.size() == layer.in_dim && output.size() >= layer.out_dim);
  for (size_t j = 0; j < layer.out_dim; ++j) {
    const int8_t* w = layer.weights.data() + j * layer.in_dim;
    int32_t acc = layer.bias_q[j];
    for (size_t i = 0; i < layer.in_dim; ++i) {
      acc += static_cast<int32_t>(w[i]) * static_cast<int32_t>(input[i]);
    }
    int32_t v = SatInt8(RoundingRightShift(acc, layer.requant_shift));
    if (layer.relu && v < 0) {
      v = 0;
    }
    output[j] = static_cast<int8_t>(v);
  }
}

void MlpModel::Forward(std::span<const int8_t> input, std::vector<int8_t>& out) const {
  NEUROC_CHECK(!layers_.empty());
  NEUROC_CHECK(input.size() == in_dim());
  const size_t max_dim = MaxActivationDim();
  std::vector<int8_t> buf_a(input.begin(), input.end());
  std::vector<int8_t> buf_b(max_dim);
  buf_a.resize(max_dim);
  std::span<int8_t> cur(buf_a);
  std::span<int8_t> next(buf_b);
  size_t cur_dim = in_dim();
  for (const QuantDenseLayer& layer : layers_) {
    NEUROC_CHECK(cur_dim == layer.in_dim);
    RunQuantDenseLayer(layer, std::span<const int8_t>(cur.data(), layer.in_dim), next);
    std::swap(cur, next);
    cur_dim = layer.out_dim;
  }
  out.assign(cur.begin(), cur.begin() + cur_dim);
}

int MlpModel::Predict(std::span<const int8_t> input) const {
  std::vector<int8_t> logits;
  Forward(input, logits);
  int best = 0;
  for (size_t i = 1; i < logits.size(); ++i) {
    if (logits[i] > logits[best]) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

float MlpModel::EvaluateAccuracy(const QuantizedDataset& ds) const {
  NEUROC_CHECK(ds.input_dim == in_dim());
  size_t correct = 0;
  for (size_t i = 0; i < ds.num_examples(); ++i) {
    if (Predict(std::span<const int8_t>(ds.example(i), ds.input_dim)) == ds.labels[i]) {
      ++correct;
    }
  }
  return ds.num_examples() == 0
             ? 0.0f
             : static_cast<float>(correct) / static_cast<float>(ds.num_examples());
}

size_t MlpModel::WeightBytes() const {
  size_t bytes = 0;
  for (const QuantDenseLayer& l : layers_) {
    bytes += l.WeightBytes();
  }
  return bytes;
}

size_t MlpModel::MaxActivationDim() const {
  size_t d = in_dim();
  for (const QuantDenseLayer& l : layers_) {
    d = std::max(d, static_cast<size_t>(l.out_dim));
  }
  return d;
}

size_t MlpModel::MaccCount() const {
  size_t n = 0;
  for (const QuantDenseLayer& l : layers_) {
    n += static_cast<size_t>(l.in_dim) * l.out_dim;
  }
  return n;
}

std::string MlpModel::Summary() const {
  std::string s;
  for (const QuantDenseLayer& l : layers_) {
    if (!s.empty()) {
      s += " -> ";
    }
    s += "q7[" + std::to_string(l.in_dim) + "x" + std::to_string(l.out_dim) +
         (l.relu ? ",relu" : "") + "]";
  }
  return s;
}

}  // namespace neuroc
