#include "src/core/neuroc_model.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/fixed_point.h"
#include "src/tensor/matrix_ops.h"
#include "src/train/layers.h"
#include "src/train/trainer.h"

namespace neuroc {

size_t QuantNeuroCLayer::WeightBytes() const {
  size_t bytes = encoding->Sizes().total();
  bytes += scale_q.size() * sizeof(int8_t);
  bytes += bias_q.size() * sizeof(int32_t);
  return bytes;
}

NeuroCModel NeuroCModel::FromTrained(Network& net, const Dataset& calibration,
                                     const NeuroCQuantOptions& options) {
  // Collect the quantizable layers and the index of each module's activation output.
  struct LayerSite {
    NeuroCLayer* layer;
    size_t output_module;  // module whose output feeds the next quant layer
  };
  std::vector<LayerSite> sites;
  const auto& modules = net.modules();
  for (size_t m = 0; m < modules.size(); ++m) {
    if (auto* nl = dynamic_cast<NeuroCLayer*>(modules[m].get())) {
      size_t out_idx = m;
      if (m + 1 < modules.size() && dynamic_cast<ReluLayer*>(modules[m + 1].get())) {
        out_idx = m + 1;
      }
      sites.push_back({nl, out_idx});
    }
  }
  NEUROC_CHECK_MSG(!sites.empty(), "network contains no NeuroCLayer modules");

  // Calibration pass: float forward (inference mode) recording max-abs after every module.
  const size_t n_cal = std::min(calibration.num_examples(), options.max_calibration_examples);
  NEUROC_CHECK(n_cal > 0);
  std::vector<size_t> idx(n_cal);
  for (size_t i = 0; i < n_cal; ++i) {
    idx[i] = i;
  }
  Tensor batch;
  std::vector<int> labels_unused;
  GatherBatch(calibration, idx, batch, labels_unused);
  std::vector<float> module_max_abs(modules.size(), 0.0f);
  {
    const Tensor* cur = &batch;
    for (size_t m = 0; m < modules.size(); ++m) {
      cur = &modules[m]->Forward(*cur, /*training=*/false);
      module_max_abs[m] = MaxAbs(*cur);
    }
  }

  NeuroCModel model;
  int prev_out_frac = options.input_frac;
  for (size_t s = 0; s < sites.size(); ++s) {
    NeuroCLayer* nl = sites[s].layer;
    QuantNeuroCLayer q;
    q.in_dim = static_cast<uint32_t>(nl->in_dim());
    q.out_dim = static_cast<uint32_t>(nl->out_dim());
    q.relu = sites[s].output_module != 0 &&
             dynamic_cast<ReluLayer*>(modules[sites[s].output_module].get()) != nullptr;
    q.in_frac = prev_out_frac;

    // Ternary adjacency → chosen encoding.
    Tensor adj;
    Ternarize(nl->latent(), nl->CurrentThreshold(), adj);
    q.encoding = BuildEncoding(options.encoding, TernaryMatrix::FromSignTensor(adj),
                               options.encoding_options);

    // Per-neuron scale (absent in the TNN ablation).
    if (nl->config().use_per_neuron_scale) {
      const Tensor& scale = nl->scale();
      q.scale_frac = ChooseFracBits(MaxAbs(scale), 8);
      q.scale_q.resize(q.out_dim);
      for (size_t j = 0; j < q.out_dim; ++j) {
        q.scale_q[j] = QuantizeQ7(scale[j], q.scale_frac);
      }
    } else {
      q.scale_frac = 0;
    }

    // Output format from the calibrated post-activation range; the requantization shift must
    // be non-negative (the kernel only shifts right).
    const float post_act_max = module_max_abs[sites[s].output_module];
    q.out_frac = ChooseFracBits(post_act_max, 8, /*min_frac=*/-8,
                                /*max_frac=*/q.in_frac + q.scale_frac);
    q.requant_shift = q.in_frac + q.scale_frac - q.out_frac;
    NEUROC_CHECK(q.requant_shift >= 0);

    // Bias at accumulator scale.
    const Tensor& bias = nl->bias();
    q.bias_q.resize(q.out_dim);
    for (size_t j = 0; j < q.out_dim; ++j) {
      q.bias_q[j] = QuantizeFixed(bias[j], q.in_frac + q.scale_frac, 32);
    }

    prev_out_frac = q.out_frac;
    model.layers_.push_back(std::move(q));
  }
  return model;
}

NeuroCModel StripScales(const NeuroCModel& model) {
  std::vector<QuantNeuroCLayer> layers;
  for (const QuantNeuroCLayer& src : model.layers()) {
    QuantNeuroCLayer l;
    l.in_dim = src.in_dim;
    l.out_dim = src.out_dim;
    // Rebuild the identical encoding (unique_ptr prevents a plain copy).
    l.encoding = BuildEncoding(src.encoding->kind(), src.encoding->Decode());
    l.bias_q = src.bias_q;
    l.in_frac = src.in_frac;
    l.scale_frac = 0;
    l.out_frac = src.out_frac;
    l.requant_shift = std::max(0, src.in_frac - src.out_frac);
    l.relu = src.relu;
    layers.push_back(std::move(l));
  }
  return NeuroCModel::FromLayers(std::move(layers));
}

NeuroCModel ReencodeModel(const NeuroCModel& model, EncodingKind kind,
                          const EncodingOptions& options) {
  std::vector<QuantNeuroCLayer> layers;
  for (const QuantNeuroCLayer& src : model.layers()) {
    QuantNeuroCLayer l;
    l.in_dim = src.in_dim;
    l.out_dim = src.out_dim;
    l.encoding = BuildEncoding(kind, src.encoding->Decode(), options);
    l.scale_q = src.scale_q;
    l.bias_q = src.bias_q;
    l.in_frac = src.in_frac;
    l.out_frac = src.out_frac;
    l.scale_frac = src.scale_frac;
    l.requant_shift = src.requant_shift;
    l.relu = src.relu;
    layers.push_back(std::move(l));
  }
  return NeuroCModel::FromLayers(std::move(layers));
}

NeuroCModel NeuroCModel::FromLayers(std::vector<QuantNeuroCLayer> layers) {
  NEUROC_CHECK(!layers.empty());
  for (size_t k = 0; k + 1 < layers.size(); ++k) {
    NEUROC_CHECK(layers[k].out_dim == layers[k + 1].in_dim);
  }
  NeuroCModel model;
  model.layers_ = std::move(layers);
  return model;
}

void RunQuantNeuroCLayer(const QuantNeuroCLayer& layer, std::span<const int8_t> input,
                         std::span<int32_t> sums, std::span<int8_t> output) {
  NEUROC_CHECK(input.size() == layer.in_dim);
  NEUROC_CHECK(sums.size() >= layer.out_dim && output.size() >= layer.out_dim);
  layer.encoding->Accumulate(input, sums.subspan(0, layer.out_dim));
  const bool scaled = layer.has_scale();
  for (size_t j = 0; j < layer.out_dim; ++j) {
    int32_t acc = sums[j];
    if (scaled) {
      acc *= layer.scale_q[j];
    }
    acc += layer.bias_q[j];
    int32_t v = SatInt8(RoundingRightShift(acc, layer.requant_shift));
    if (layer.relu && v < 0) {
      v = 0;
    }
    output[j] = static_cast<int8_t>(v);
  }
}

void NeuroCModel::Forward(std::span<const int8_t> input, std::vector<int8_t>& out) const {
  NEUROC_CHECK(!layers_.empty());
  NEUROC_CHECK(input.size() == in_dim());
  const size_t max_dim = MaxActivationDim();
  std::vector<int8_t> buf_a(input.begin(), input.end());
  std::vector<int8_t> buf_b(max_dim);
  std::vector<int32_t> sums(max_dim);
  buf_a.resize(max_dim);
  std::span<int8_t> cur(buf_a);
  std::span<int8_t> next(buf_b);
  size_t cur_dim = in_dim();
  for (const QuantNeuroCLayer& layer : layers_) {
    NEUROC_CHECK(cur_dim == layer.in_dim);
    RunQuantNeuroCLayer(layer, std::span<const int8_t>(cur.data(), layer.in_dim), sums, next);
    std::swap(cur, next);
    cur_dim = layer.out_dim;
  }
  out.assign(cur.begin(), cur.begin() + cur_dim);
}

int NeuroCModel::Predict(std::span<const int8_t> input) const {
  std::vector<int8_t> logits;
  Forward(input, logits);
  int best = 0;
  for (size_t i = 1; i < logits.size(); ++i) {
    if (logits[i] > logits[best]) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

float NeuroCModel::EvaluateAccuracy(const QuantizedDataset& ds) const {
  NEUROC_CHECK(ds.input_dim == in_dim());
  size_t correct = 0;
  for (size_t i = 0; i < ds.num_examples(); ++i) {
    if (Predict(std::span<const int8_t>(ds.example(i), ds.input_dim)) == ds.labels[i]) {
      ++correct;
    }
  }
  return ds.num_examples() == 0
             ? 0.0f
             : static_cast<float>(correct) / static_cast<float>(ds.num_examples());
}

size_t NeuroCModel::WeightBytes() const {
  size_t bytes = 0;
  for (const QuantNeuroCLayer& l : layers_) {
    bytes += l.WeightBytes();
  }
  return bytes;
}

size_t NeuroCModel::MaxActivationDim() const {
  size_t d = in_dim();
  for (const QuantNeuroCLayer& l : layers_) {
    d = std::max(d, static_cast<size_t>(l.out_dim));
  }
  return d;
}

std::string NeuroCModel::Summary() const {
  std::string s;
  for (const QuantNeuroCLayer& l : layers_) {
    if (!s.empty()) {
      s += " -> ";
    }
    s += std::string(EncodingKindName(l.encoding->kind())) + "[" + std::to_string(l.in_dim) +
         "x" + std::to_string(l.out_dim) + (l.has_scale() ? ",w" : "") +
         (l.relu ? ",relu" : "") + "]";
  }
  return s;
}

}  // namespace neuroc
