// Flash-image packing: turns a quantized model into the byte-exact constant-data image the
// simulated Cortex-M0 kernels consume, mirroring how the paper statically allocates weights
// and topology in program memory.
//
// Image layout (placed at `flash_data_base`):
//   [layer descriptors, 80 bytes each] [packed arrays: encodings / scales / biases / weights]
// All pointers inside descriptors are absolute device addresses. Activation buffers are
// planned in SRAM (ping-pong pair + an int32 scratch used by the block kernel and by dense
// accumulation checks).

#ifndef NEUROC_SRC_CORE_MODEL_IMAGE_H_
#define NEUROC_SRC_CORE_MODEL_IMAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/mlp_model.h"
#include "src/core/neuroc_model.h"

namespace neuroc {

// Descriptor word indices (descriptor is 20 little-endian u32 words = 80 bytes).
enum DescWord : uint32_t {
  kDescInDim = 0,
  kDescOutDim = 1,
  kDescFlags = 2,  // kind | has_scale<<8 | relu<<16 | is_dense<<24
  kDescPosMetaAddr = 3,
  kDescPosMetaWidth = 4,
  kDescPosIdxAddr = 5,
  kDescPosIdxWidth = 6,
  kDescNegMetaAddr = 7,
  kDescNegMetaWidth = 8,
  kDescNegIdxAddr = 9,
  kDescNegIdxWidth = 10,
  kDescScaleAddr = 11,
  kDescBiasAddr = 12,
  kDescShift = 13,
  kDescBlockSize = 14,
  kDescNumBlocks = 15,
  kDescWeightsAddr = 16,
  kDescInputAddr = 17,
  kDescOutputAddr = 18,
  kDescScratchAddr = 19,
  kDescWordCount = 20,
};
inline constexpr uint32_t kDescriptorBytes = kDescWordCount * 4;

// Identifies which specialized kernel routine a layer needs.
struct KernelVariant {
  bool is_dense = false;            // dense q7 MLP layer
  EncodingKind kind = EncodingKind::kCsc;
  uint8_t meta_width = 1;           // pointer/count element bytes
  uint8_t idx_width = 1;            // index/delta element bytes
  bool has_scale = true;            // per-neuron multiply present
  // kUnrolled kernels are generated per *model layer* (the adjacency is compiled into the
  // instruction stream), not per shape class — the layer index keeps such variants from
  // dedup-collapsing across layers. -1 for every other kind.
  int16_t unrolled_layer = -1;

  bool operator==(const KernelVariant&) const = default;
};

// Integrity-checked span of the packed image, digested at pack time (pristine content).
// `offset` is relative to DeviceModelImage::flash; DeployedModel resolves it to a device
// address and re-verifies the digest on demand (deploy, load, detected faults).
struct ImageSection {
  std::string name;     // "descriptors", "layer0.weights", "layer0.scales", ...
  uint32_t offset = 0;
  uint32_t size = 0;
  uint32_t crc32 = 0;
};

struct DeviceModelImage {
  uint32_t flash_data_base = 0;
  std::vector<uint8_t> flash;              // contents at flash_data_base
  std::vector<uint32_t> descriptor_addrs;  // absolute, one per layer
  std::vector<KernelVariant> variants;     // one per layer
  std::vector<ImageSection> sections;      // CRC-32 digests of the pristine image
  uint32_t input_addr = 0;    // SRAM buffer the caller fills with int8 input
  uint32_t output_addr = 0;   // SRAM buffer holding the final int8 activations
  uint32_t output_dim = 0;
  uint32_t input_dim = 0;
  uint32_t ram_bytes_used = 0;

  size_t num_layers() const { return descriptor_addrs.size(); }
};

// Packs a quantized Neuro-C model. `ram_base` is where activation buffers start in SRAM.
DeviceModelImage PackNeuroCModel(const NeuroCModel& model, uint32_t flash_data_base,
                                 uint32_t ram_base);

// Packs a quantized dense MLP baseline.
DeviceModelImage PackMlpModel(const MlpModel& model, uint32_t flash_data_base,
                              uint32_t ram_base);

}  // namespace neuroc

#endif  // NEUROC_SRC_CORE_MODEL_IMAGE_H_
