// Post-training quantized dense MLP — the conventional-TinyML baseline of the paper's
// evaluation. Uses the legacy CMSIS-NN-style q7 scheme (power-of-two scales, int32
// accumulator, saturating requantization), which is what is realistically deployable on a
// Cortex-M0 with no DSP extensions. Batch-norm layers from training are folded into the
// preceding dense weights at export, and dropout disappears at inference.

#ifndef NEUROC_SRC_CORE_MLP_MODEL_H_
#define NEUROC_SRC_CORE_MLP_MODEL_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/train/network.h"

namespace neuroc {

struct QuantDenseLayer {
  uint32_t in_dim = 0;
  uint32_t out_dim = 0;
  // Row-major [out][in]: each output neuron's weights are contiguous, giving the q7 kernel a
  // straight streaming dot product.
  std::vector<int8_t> weights;
  std::vector<int32_t> bias_q;  // at frac in_frac + weight_frac
  int weight_frac = 0;
  int in_frac = 7;
  int out_frac = 7;
  int requant_shift = 0;  // in_frac + weight_frac − out_frac, >= 0
  bool relu = true;

  size_t WeightBytes() const {
    return weights.size() * sizeof(int8_t) + bias_q.size() * sizeof(int32_t);
  }
};

struct MlpQuantOptions {
  int input_frac = 7;
  size_t max_calibration_examples = 512;
};

class MlpModel {
 public:
  MlpModel() = default;
  MlpModel(MlpModel&&) = default;
  MlpModel& operator=(MlpModel&&) = default;

  // Exports a trained MLP (sequence built by BuildMlp; batch norm folded, dropout dropped).
  static MlpModel FromTrained(Network& net, const Dataset& calibration,
                              const MlpQuantOptions& options = {});

  // Builds a model directly from quantized layers (synthetic benches and tests).
  static MlpModel FromLayers(std::vector<QuantDenseLayer> layers);

  void Forward(std::span<const int8_t> input, std::vector<int8_t>& out) const;
  int Predict(std::span<const int8_t> input) const;
  float EvaluateAccuracy(const QuantizedDataset& ds) const;

  const std::vector<QuantDenseLayer>& layers() const { return layers_; }
  size_t in_dim() const { return layers_.empty() ? 0 : layers_.front().in_dim; }
  size_t out_dim() const { return layers_.empty() ? 0 : layers_.back().out_dim; }
  int input_frac() const { return layers_.empty() ? 7 : layers_.front().in_frac; }

  size_t WeightBytes() const;
  size_t MaxActivationDim() const;
  // Total multiply-accumulate operations per inference (the paper's MACC metric).
  size_t MaccCount() const;
  std::string Summary() const;

 private:
  std::vector<QuantDenseLayer> layers_;
};

// Host reference for one quantized dense layer (shared with the simulator equivalence tests).
void RunQuantDenseLayer(const QuantDenseLayer& layer, std::span<const int8_t> input,
                        std::span<int8_t> output);

}  // namespace neuroc

#endif  // NEUROC_SRC_CORE_MLP_MODEL_H_
