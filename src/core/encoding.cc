#include "src/core/encoding.h"

#include "src/common/check.h"
#include "src/core/block_encoding.h"
#include "src/core/csc_encoding.h"
#include "src/core/delta_encoding.h"
#include "src/core/mixed_encoding.h"
#include "src/core/unrolled_encoding.h"

namespace neuroc {

const char* EncodingKindName(EncodingKind kind) {
  switch (kind) {
    case EncodingKind::kCsc:
      return "csc";
    case EncodingKind::kDelta:
      return "delta";
    case EncodingKind::kMixed:
      return "mixed";
    case EncodingKind::kBlock:
      return "block";
    case EncodingKind::kUnrolled:
      return "unrolled";
  }
  return "?";
}

std::unique_ptr<Encoding> BuildEncoding(EncodingKind kind, const TernaryMatrix& matrix,
                                        const EncodingOptions& options) {
  switch (kind) {
    case EncodingKind::kCsc:
      return std::make_unique<CscEncoding>(matrix);
    case EncodingKind::kDelta:
      return std::make_unique<DeltaEncoding>(matrix);
    case EncodingKind::kMixed:
      return std::make_unique<MixedEncoding>(matrix);
    case EncodingKind::kBlock:
      return std::make_unique<BlockEncoding>(matrix, options.block_size);
    case EncodingKind::kUnrolled:
      return std::make_unique<UnrolledEncoding>(matrix);
  }
  NEUROC_CHECK(false);
  return nullptr;
}

uint8_t ElementWidthFor(uint32_t max_value) {
  if (max_value <= 0xFF) {
    return 1;
  }
  NEUROC_CHECK_MSG(max_value <= 0xFFFF, "value exceeds 16-bit encoding range");
  return 2;
}

DeviceArray AppendArray(std::vector<uint8_t>& blob, std::span<const uint32_t> values,
                        uint8_t elem_width) {
  NEUROC_CHECK(elem_width == 1 || elem_width == 2);
  if (elem_width == 2 && blob.size() % 2 != 0) {
    blob.push_back(0);  // alignment pad
  }
  DeviceArray arr;
  arr.offset = static_cast<uint32_t>(blob.size());
  arr.count = static_cast<uint32_t>(values.size());
  arr.elem_width = elem_width;
  for (uint32_t v : values) {
    NEUROC_CHECK(v <= (elem_width == 1 ? 0xFFu : 0xFFFFu));
    blob.push_back(static_cast<uint8_t>(v & 0xFF));
    if (elem_width == 2) {
      blob.push_back(static_cast<uint8_t>((v >> 8) & 0xFF));
    }
  }
  return arr;
}

std::string FormatArray(std::span<const uint32_t> values) {
  std::string s = "[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) {
      s += ", ";
    }
    s += std::to_string(values[i]);
  }
  s += "]";
  return s;
}

}  // namespace neuroc
