// Block-based encoding (paper Fig. 3, bottom right): the input space is partitioned into
// fixed-size blocks of at most 256 neurons; each block keeps an independent per-column count
// array and block-local indices. All indices and counts are 8-bit by construction — the most
// compact layout, at the cost of one traversal pass per block.

#ifndef NEUROC_SRC_CORE_BLOCK_ENCODING_H_
#define NEUROC_SRC_CORE_BLOCK_ENCODING_H_

#include "src/core/encoding.h"

namespace neuroc {

class BlockEncoding : public Encoding {
 public:
  BlockEncoding(const TernaryMatrix& matrix, size_t block_size);

  EncodingKind kind() const override { return EncodingKind::kBlock; }
  void Accumulate(std::span<const int8_t> input, std::span<int32_t> sums) const override;
  TernaryMatrix Decode() const override;
  EncodingSizeBreakdown Sizes() const override;
  EncodingDeviceLayout Pack(std::vector<uint8_t>& blob) const override;
  std::string Describe() const override;

  size_t block_size() const { return block_size_; }
  size_t num_blocks() const { return num_blocks_; }

  struct Polarity {
    // counts[b * out_dim + j]: nonzeros of column j within block b. Always fits 8 bits.
    std::vector<uint32_t> counts;
    // Block-local indices, concatenated in (block, column) order. Always fits 8 bits.
    std::vector<uint32_t> indices;
  };
  const Polarity& positive() const { return pos_; }
  const Polarity& negative() const { return neg_; }

 private:
  Polarity BuildPolarity(const TernaryMatrix& matrix, bool positive) const;

  size_t block_size_;
  size_t num_blocks_;
  Polarity pos_;
  Polarity neg_;
};

}  // namespace neuroc

#endif  // NEUROC_SRC_CORE_BLOCK_ENCODING_H_
