#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/tensor/matrix_ops.h"
#include "src/tensor/tensor.h"

namespace neuroc {
namespace {

Tensor RandomTensor(size_t rows, size_t cols, Rng& rng) {
  Tensor t({rows, cols});
  for (float& v : t.flat()) {
    v = rng.NextUniform(-2.0f, 2.0f);
  }
  return t;
}

// Naive triple-loop reference.
Tensor NaiveMatMul(const Tensor& a, const Tensor& b) {
  Tensor out({a.rows(), b.cols()});
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      float acc = 0.0f;
      for (size_t k = 0; k < a.cols(); ++k) {
        acc += a.at(i, k) * b.at(k, j);
      }
      out.at(i, j) = acc;
    }
  }
  return out;
}

TEST(TensorTest, ShapeAndFill) {
  Tensor t({3, 4});
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 4u);
  EXPECT_EQ(t.size(), 12u);
  t.Fill(2.5f);
  for (float v : t.flat()) {
    EXPECT_EQ(v, 2.5f);
  }
}

TEST(TensorTest, FromDataAndAccess) {
  Tensor t = Tensor::FromData(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(1, 2), 6.0f);
  t.at(1, 2) = 9.0f;
  EXPECT_EQ(t[5], 9.0f);
}

TEST(TensorTest, RowView) {
  Tensor t = Tensor::FromData(2, 3, {1, 2, 3, 4, 5, 6});
  auto r = t.row(1);
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0], 4.0f);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t = Tensor::FromData(2, 3, {1, 2, 3, 4, 5, 6});
  t.Reshape({3, 2});
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.at(2, 1), 6.0f);
}

struct MatMulCase {
  size_t m, k, n;
};

class MatMulParamTest : public ::testing::TestWithParam<MatMulCase> {};

TEST_P(MatMulParamTest, MatchesNaiveReference) {
  const auto p = GetParam();
  Rng rng(p.m * 131 + p.k * 17 + p.n);
  Tensor a = RandomTensor(p.m, p.k, rng);
  Tensor b = RandomTensor(p.k, p.n, rng);
  Tensor out;
  MatMul(a, b, out);
  Tensor ref = NaiveMatMul(a, b);
  ASSERT_TRUE(out.SameShape(ref));
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out[i], ref[i], 1e-3f);
  }
}

TEST_P(MatMulParamTest, TransposeAMatchesExplicitTranspose) {
  const auto p = GetParam();
  Rng rng(p.m * 7 + p.k * 3 + p.n * 11);
  // a is [k, m]; compute a^T b with b [k, n].
  Tensor a = RandomTensor(p.k, p.m, rng);
  Tensor b = RandomTensor(p.k, p.n, rng);
  Tensor at({p.m, p.k});
  for (size_t i = 0; i < p.k; ++i) {
    for (size_t j = 0; j < p.m; ++j) {
      at.at(j, i) = a.at(i, j);
    }
  }
  Tensor out, ref;
  MatMulTransposeA(a, b, out);
  MatMul(at, b, ref);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out[i], ref[i], 1e-3f);
  }
}

TEST_P(MatMulParamTest, TransposeBMatchesExplicitTranspose) {
  const auto p = GetParam();
  Rng rng(p.m + p.k + p.n * 29);
  Tensor a = RandomTensor(p.m, p.k, rng);
  Tensor b = RandomTensor(p.n, p.k, rng);  // b^T is [k, n]
  Tensor bt({p.k, p.n});
  for (size_t i = 0; i < p.n; ++i) {
    for (size_t j = 0; j < p.k; ++j) {
      bt.at(j, i) = b.at(i, j);
    }
  }
  Tensor out, ref;
  MatMulTransposeB(a, b, out);
  MatMul(a, bt, ref);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out[i], ref[i], 1e-3f);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatMulParamTest,
                         ::testing::Values(MatMulCase{1, 1, 1}, MatMulCase{2, 3, 4},
                                           MatMulCase{5, 1, 7}, MatMulCase{8, 8, 8},
                                           MatMulCase{16, 33, 9}, MatMulCase{31, 17, 1}));

TEST(MatrixOpsTest, AddRowBias) {
  Tensor m = Tensor::FromData(2, 3, {0, 0, 0, 1, 1, 1});
  std::vector<float> bias{1, 2, 3};
  AddRowBias(m, bias);
  EXPECT_EQ(m.at(0, 0), 1.0f);
  EXPECT_EQ(m.at(0, 2), 3.0f);
  EXPECT_EQ(m.at(1, 1), 3.0f);
}

TEST(MatrixOpsTest, ColumnSums) {
  Tensor m = Tensor::FromData(3, 2, {1, 2, 3, 4, 5, 6});
  std::vector<float> sums(2);
  ColumnSums(m, sums);
  EXPECT_EQ(sums[0], 9.0f);
  EXPECT_EQ(sums[1], 12.0f);
}

TEST(MatrixOpsTest, SoftmaxRowsSumToOne) {
  Rng rng(3);
  Tensor m = RandomTensor(5, 10, rng);
  SoftmaxRows(m);
  for (size_t r = 0; r < m.rows(); ++r) {
    float sum = 0.0f;
    for (size_t c = 0; c < m.cols(); ++c) {
      EXPECT_GE(m.at(r, c), 0.0f);
      sum += m.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(MatrixOpsTest, SoftmaxIsShiftInvariantAndStable) {
  Tensor a = Tensor::FromData(1, 3, {1000.0f, 1001.0f, 1002.0f});
  Tensor b = Tensor::FromData(1, 3, {0.0f, 1.0f, 2.0f});
  SoftmaxRows(a);
  SoftmaxRows(b);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-5f);
    EXPECT_FALSE(std::isnan(a[i]));
  }
}

TEST(MatrixOpsTest, ArgMax) {
  std::vector<float> v{0.1f, 0.9f, 0.3f};
  EXPECT_EQ(ArgMax(v), 1u);
  std::vector<float> first_wins{1.0f, 1.0f};
  EXPECT_EQ(ArgMax(first_wins), 0u);
}

TEST(MatrixOpsTest, MaxAbsAndMeanAbs) {
  Tensor m = Tensor::FromData(1, 4, {-3.0f, 1.0f, 2.0f, -2.0f});
  EXPECT_EQ(MaxAbs(m), 3.0f);
  EXPECT_EQ(MeanAbs(m), 2.0f);
}

TEST(MatrixOpsTest, AxpyAccumulates) {
  Tensor acc = Tensor::FromData(1, 3, {1, 1, 1});
  Tensor val = Tensor::FromData(1, 3, {1, 2, 3});
  Axpy(2.0f, val, acc);
  EXPECT_EQ(acc[0], 3.0f);
  EXPECT_EQ(acc[2], 7.0f);
}

}  // namespace
}  // namespace neuroc
