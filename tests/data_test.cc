#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>

#include "src/data/dataset.h"
#include "src/data/idx_loader.h"
#include "src/data/raster.h"
#include "src/data/stroke_font.h"
#include "src/data/synth.h"

namespace neuroc {
namespace {

TEST(RasterTest, ClearAndPixelAccess) {
  Raster r(4, 4);
  r.Clear(0.5f);
  EXPECT_EQ(r.px(0, 0), 0.5f);
  r.px(3, 3) = 1.0f;
  EXPECT_EQ(r.px(3, 3), 1.0f);
}

TEST(RasterTest, SplatPointMarksCenter) {
  Raster r(9, 9);
  r.SplatPoint({0.5f, 0.5f}, 0.1f, 1.0f);
  EXPECT_GT(r.px(4, 4), 0.5f);
  EXPECT_EQ(r.px(0, 0), 0.0f);
}

TEST(RasterTest, DrawPolylineCoversEndpoints) {
  Raster r(16, 16);
  const Vec2 pts[2] = {{0.1f, 0.5f}, {0.9f, 0.5f}};
  r.DrawPolyline(pts, 0.08f, 1.0f);
  EXPECT_GT(r.px(2, 8), 0.3f);
  EXPECT_GT(r.px(13, 8), 0.3f);
  EXPECT_EQ(r.px(8, 1), 0.0f);  // far from the line
}

TEST(RasterTest, FillRectFillsInterior) {
  Raster r(10, 10);
  r.FillRect({0.2f, 0.2f}, {0.8f, 0.8f}, 1.0f);
  EXPECT_EQ(r.px(5, 5), 1.0f);
  EXPECT_EQ(r.px(0, 0), 0.0f);
}

TEST(RasterTest, FillEllipseRespectsRadii) {
  Raster r(20, 20);
  r.FillEllipse({0.5f, 0.5f}, 0.4f, 0.15f, 1.0f);
  EXPECT_EQ(r.px(10, 10), 1.0f);
  // Inside horizontally, outside vertically.
  EXPECT_EQ(r.px(10, 2), 0.0f);
}

TEST(RasterTest, AffineTranslationMovesShape) {
  Raster a(16, 16), b(16, 16);
  a.FillRect({0.4f, 0.4f}, {0.6f, 0.6f}, 1.0f);
  const Affine shift = Affine::Compose(0, 1, 1, 0, {0.25f, 0.0f});
  b.FillRect({0.4f, 0.4f}, {0.6f, 0.6f}, 1.0f, shift);
  EXPECT_EQ(a.px(8, 8), 1.0f);
  EXPECT_EQ(b.px(8 + 4, 8), 1.0f);
  EXPECT_EQ(b.px(8 - 3, 8), 0.0f);
}

TEST(RasterTest, Clamp01Bounds) {
  Raster r(4, 4);
  Rng rng(1);
  r.AddGaussianNoise(rng, 3.0f);
  r.Clamp01();
  for (float v : r.pixels()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(StrokeFontTest, AllDigitsRenderNonEmpty) {
  for (int d = 0; d <= 9; ++d) {
    Raster r(16, 16);
    RenderGlyph(DigitGlyph(d), r, Affine::Identity(), 0.08f, 1.0f);
    float total = 0.0f;
    for (float v : r.pixels()) {
      total += v;
    }
    EXPECT_GT(total, 2.0f) << "digit " << d << " rendered almost nothing";
  }
}

TEST(StrokeFontTest, DigitsAreVisuallyDistinct) {
  // Pairwise pixel distance between rendered digits should be nonzero.
  std::vector<Raster> rendered;
  for (int d = 0; d <= 9; ++d) {
    Raster r(16, 16);
    RenderGlyph(DigitGlyph(d), r, Affine::Identity(), 0.08f, 1.0f);
    rendered.push_back(r);
  }
  for (int a = 0; a < 10; ++a) {
    for (int b = a + 1; b < 10; ++b) {
      float dist = 0.0f;
      for (int i = 0; i < 16 * 16; ++i) {
        const float d = rendered[a].pixels()[i] - rendered[b].pixels()[i];
        dist += d * d;
      }
      EXPECT_GT(dist, 1.0f) << "digits " << a << " and " << b << " look identical";
    }
  }
}

class SynthDatasetTest : public ::testing::TestWithParam<int> {
 protected:
  Dataset Make(size_t n, uint64_t seed) {
    switch (GetParam()) {
      case 0:
        return MakeDigits8x8(n, seed);
      case 1:
        return MakeMnistLike(n, seed);
      case 2:
        return MakeFashionLike(n, seed);
      case 3:
        return MakeCifar5Like(n, seed);
      default:
        return MakeEventDetection(n, seed);
    }
  }
};

TEST_P(SynthDatasetTest, ShapesAndRanges) {
  Dataset ds = Make(64, 7);
  ds.Validate();
  EXPECT_EQ(ds.num_examples(), 64u);
  EXPECT_EQ(ds.images.cols(), ds.input_dim());
  for (float v : ds.images.flat()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST_P(SynthDatasetTest, DeterministicFromSeed) {
  Dataset a = Make(16, 99);
  Dataset b = Make(16, 99);
  EXPECT_EQ(a.labels, b.labels);
  for (size_t i = 0; i < a.images.size(); ++i) {
    EXPECT_EQ(a.images[i], b.images[i]);
  }
}

TEST_P(SynthDatasetTest, DifferentSeedsDiffer) {
  Dataset a = Make(16, 1);
  Dataset b = Make(16, 2);
  float diff = 0.0f;
  for (size_t i = 0; i < a.images.size(); ++i) {
    diff += std::abs(a.images[i] - b.images[i]);
  }
  EXPECT_GT(diff, 1.0f);
}

TEST_P(SynthDatasetTest, AllClassesPresent) {
  Dataset ds = Make(400, 3);
  std::set<int> classes(ds.labels.begin(), ds.labels.end());
  EXPECT_EQ(static_cast<int>(classes.size()), ds.num_classes);
}

INSTANTIATE_TEST_SUITE_P(AllGenerators, SynthDatasetTest, ::testing::Values(0, 1, 2, 3, 4));

TEST(DatasetTest, SubsetSelectsRows) {
  Dataset ds = MakeDigits8x8(20, 5);
  Dataset sub = ds.Subset({3, 7, 11});
  EXPECT_EQ(sub.num_examples(), 3u);
  EXPECT_EQ(sub.labels[1], ds.labels[7]);
  for (size_t c = 0; c < ds.input_dim(); ++c) {
    EXPECT_EQ(sub.images.at(0, c), ds.images.at(3, c));
  }
}

TEST(DatasetTest, SplitPartitionsAllExamples) {
  Dataset ds = MakeDigits8x8(100, 5);
  Rng rng(1);
  auto [train, test] = ds.Split(0.25, rng);
  EXPECT_EQ(test.num_examples(), 25u);
  EXPECT_EQ(train.num_examples(), 75u);
}

TEST(DatasetTest, FilterClassesKeepsPrefix) {
  Dataset ds = MakeDigits8x8(200, 5);
  Dataset five = ds.FilterClasses(5);
  EXPECT_EQ(five.num_classes, 5);
  for (int label : five.labels) {
    EXPECT_LT(label, 5);
  }
}

TEST(DatasetTest, QuantizeInputsMatchesFloat) {
  Dataset ds = MakeDigits8x8(10, 5);
  QuantizedDataset q = QuantizeInputs(ds, 7);
  EXPECT_EQ(q.num_examples(), 10u);
  EXPECT_EQ(q.input_dim, ds.input_dim());
  for (size_t i = 0; i < q.images.size(); ++i) {
    const float expected = ds.images[i] * 128.0f;
    EXPECT_NEAR(static_cast<float>(q.images[i]), expected, 1.0f);
  }
}

TEST(IdxLoaderTest, MissingFilesReturnNullopt) {
  EXPECT_FALSE(LoadIdxDataset("/nonexistent/images", "/nonexistent/labels", "x").has_value());
}

TEST(IdxLoaderTest, LoadsWellFormedFiles) {
  // Write a tiny 2-example 3x3 IDX pair and read it back.
  const char* img_path = "/tmp/neuroc_test_images.idx";
  const char* lab_path = "/tmp/neuroc_test_labels.idx";
  {
    std::FILE* f = std::fopen(img_path, "wb");
    ASSERT_NE(f, nullptr);
    const unsigned char header[16] = {0, 0, 8, 3, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0, 3};
    std::fwrite(header, 1, 16, f);
    for (int i = 0; i < 18; ++i) {
      unsigned char v = static_cast<unsigned char>(i * 14);
      std::fwrite(&v, 1, 1, f);
    }
    std::fclose(f);
    f = std::fopen(lab_path, "wb");
    ASSERT_NE(f, nullptr);
    const unsigned char lheader[8] = {0, 0, 8, 1, 0, 0, 0, 2};
    std::fwrite(lheader, 1, 8, f);
    const unsigned char labels[2] = {4, 9};
    std::fwrite(labels, 1, 2, f);
    std::fclose(f);
  }
  auto ds = LoadIdxDataset(img_path, lab_path, "tiny");
  ASSERT_TRUE(ds.has_value());
  EXPECT_EQ(ds->num_examples(), 2u);
  EXPECT_EQ(ds->width, 3);
  EXPECT_EQ(ds->height, 3);
  EXPECT_EQ(ds->labels[0], 4);
  EXPECT_EQ(ds->labels[1], 9);
  EXPECT_NEAR(ds->images.at(0, 1), 14.0f / 255.0f, 1e-5f);
  std::remove(img_path);
  std::remove(lab_path);
}

// Writes an IDX image/label pair with arbitrary header fields and a payload of
// `payload_bytes` zero pixels / `label_bytes` labels of value `label`. Returns the paths.
struct IdxPair {
  std::string img = "/tmp/neuroc_test_bad_images.idx";
  std::string lab = "/tmp/neuroc_test_bad_labels.idx";

  ~IdxPair() {
    std::remove(img.c_str());
    std::remove(lab.c_str());
  }

  void Write(uint32_t n_img, uint32_t rows, uint32_t cols, size_t payload_bytes,
             uint32_t n_lab, size_t label_bytes, unsigned char label = 1) const {
    auto be32 = [](std::FILE* f, uint32_t v) {
      const unsigned char b[4] = {static_cast<unsigned char>(v >> 24),
                                  static_cast<unsigned char>(v >> 16),
                                  static_cast<unsigned char>(v >> 8),
                                  static_cast<unsigned char>(v)};
      std::fwrite(b, 1, 4, f);
    };
    std::FILE* f = std::fopen(img.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    be32(f, 0x00000803);
    be32(f, n_img);
    be32(f, rows);
    be32(f, cols);
    const std::vector<unsigned char> zeros(payload_bytes, 0);
    std::fwrite(zeros.data(), 1, zeros.size(), f);
    std::fclose(f);
    f = std::fopen(lab.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    be32(f, 0x00000801);
    be32(f, n_lab);
    const std::vector<unsigned char> labels(label_bytes, label);
    std::fwrite(labels.data(), 1, labels.size(), f);
    std::fclose(f);
  }
};

TEST(IdxLoaderTest, OversizedDimensionsAreRejectedWithoutAllocating) {
  // A corrupted header advertising absurd dimensions must fail the bounds check up front —
  // not attempt a multi-gigabyte allocation, and never abort.
  IdxPair p;
  p.Write(/*n_img=*/2, /*rows=*/0xFFFFFFFF, /*cols=*/0xFFFFFFFF, /*payload=*/4,
          /*n_lab=*/2, /*labels=*/2);
  EXPECT_FALSE(LoadIdxDataset(p.img, p.lab, "bad").has_value());
}

TEST(IdxLoaderTest, ZeroDimensionsAreRejected) {
  IdxPair p;
  p.Write(2, 0, 3, 4, 2, 2);
  EXPECT_FALSE(LoadIdxDataset(p.img, p.lab, "bad").has_value());
  p.Write(2, 3, 0, 4, 2, 2);
  EXPECT_FALSE(LoadIdxDataset(p.img, p.lab, "bad").has_value());
  p.Write(0, 3, 3, 4, 0, 0);
  EXPECT_FALSE(LoadIdxDataset(p.img, p.lab, "bad").has_value());
}

TEST(IdxLoaderTest, HugeExampleCountIsRejected) {
  // count × pixel size would overflow naive 32-bit arithmetic; the loader must refuse
  // before reading any payload.
  IdxPair p;
  p.Write(/*n_img=*/0x40000000, /*rows=*/28, /*cols=*/28, /*payload=*/16,
          /*n_lab=*/0x40000000, /*labels=*/16);
  EXPECT_FALSE(LoadIdxDataset(p.img, p.lab, "bad").has_value());
}

TEST(IdxLoaderTest, CountMismatchBetweenImagesAndLabelsIsRejected) {
  IdxPair p;
  p.Write(2, 2, 2, 8, 3, 3);
  EXPECT_FALSE(LoadIdxDataset(p.img, p.lab, "bad").has_value());
}

TEST(IdxLoaderTest, TruncatedImagePayloadIsRejected) {
  IdxPair p;
  p.Write(/*n_img=*/2, /*rows=*/2, /*cols=*/2, /*payload=*/5 /* need 8 */,
          /*n_lab=*/2, /*labels=*/2);
  EXPECT_FALSE(LoadIdxDataset(p.img, p.lab, "bad").has_value());
}

TEST(IdxLoaderTest, TruncatedLabelPayloadIsRejected) {
  IdxPair p;
  p.Write(2, 2, 2, 8, 2, /*labels=*/1);
  EXPECT_FALSE(LoadIdxDataset(p.img, p.lab, "bad").has_value());
}

TEST(IdxLoaderTest, OutOfRangeLabelIsRejectedNotFatal) {
  // A label outside [0, num_classes) is expected input corruption: the loader must return
  // nullopt instead of tripping Dataset::Validate()'s host-invariant abort.
  IdxPair p;
  p.Write(2, 2, 2, 8, 2, 2, /*label=*/250);
  EXPECT_FALSE(LoadIdxDataset(p.img, p.lab, "bad", /*num_classes=*/10).has_value());
}

TEST(EventDetectionTest, FeaturesSeparateIdleFromRunning) {
  Dataset ds = MakeEventDetection(300, 11);
  // Mean feature-space distance between class centroids should be clearly nonzero.
  std::vector<std::vector<double>> centroid(5, std::vector<double>(ds.input_dim(), 0.0));
  std::vector<int> count(5, 0);
  for (size_t i = 0; i < ds.num_examples(); ++i) {
    ++count[ds.labels[i]];
    for (size_t c = 0; c < ds.input_dim(); ++c) {
      centroid[ds.labels[i]][c] += ds.images.at(i, c);
    }
  }
  for (int k = 0; k < 5; ++k) {
    ASSERT_GT(count[k], 0);
    for (double& v : centroid[k]) {
      v /= count[k];
    }
  }
  double dist = 0.0;
  for (size_t c = 0; c < ds.input_dim(); ++c) {
    const double d = centroid[0][c] - centroid[2][c];  // idle vs running
    dist += d * d;
  }
  EXPECT_GT(dist, 0.1);
}

}  // namespace
}  // namespace neuroc
