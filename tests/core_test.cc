#include <gtest/gtest.h>

#include <cstring>

#include "src/core/block_encoding.h"
#include "src/core/csc_encoding.h"
#include "src/core/delta_encoding.h"
#include "src/core/encoding.h"
#include "src/core/mixed_encoding.h"
#include "src/core/mlp_model.h"
#include "src/core/model_image.h"
#include "src/core/neuroc_model.h"
#include "src/core/ternary_matrix.h"
#include "src/data/synth.h"
#include "src/train/trainer.h"

namespace neuroc {
namespace {

TEST(TernaryMatrixTest, SetAndGet) {
  TernaryMatrix m(4, 3);
  m.set(1, 2, 1);
  m.set(3, 0, -1);
  EXPECT_EQ(m.at(1, 2), 1);
  EXPECT_EQ(m.at(3, 0), -1);
  EXPECT_EQ(m.at(0, 0), 0);
  EXPECT_EQ(m.NonZeroCount(), 2u);
}

TEST(TernaryMatrixTest, ColumnIndicesAscendingAndCorrect) {
  TernaryMatrix m(6, 2);
  m.set(5, 0, 1);
  m.set(1, 0, 1);
  m.set(3, 0, -1);
  const auto pos = m.PositiveIndices(0);
  ASSERT_EQ(pos.size(), 2u);
  EXPECT_EQ(pos[0], 1u);
  EXPECT_EQ(pos[1], 5u);
  const auto neg = m.NegativeIndices(0);
  ASSERT_EQ(neg.size(), 1u);
  EXPECT_EQ(neg[0], 3u);
  EXPECT_TRUE(m.PositiveIndices(1).empty());
}

TEST(TernaryMatrixTest, FromSignTensorRejectsNonTernary) {
  Tensor t = Tensor::FromData(1, 2, {0.5f, 1.0f});
  EXPECT_DEATH(TernaryMatrix::FromSignTensor(t), "not ternary");
}

TEST(TernaryMatrixTest, RandomDensityApproximatelyRespected) {
  Rng rng(1);
  TernaryMatrix m = TernaryMatrix::Random(100, 100, 0.15, rng);
  EXPECT_NEAR(m.Density(), 0.15, 0.02);
}

// ---------------------------------------------------------------------------
// Property tests across all four encodings.
// ---------------------------------------------------------------------------

struct EncodingCase {
  EncodingKind kind;
  size_t in_dim;
  size_t out_dim;
  double density;
  size_t block_size;
};

class EncodingPropertyTest : public ::testing::TestWithParam<EncodingCase> {
 protected:
  std::unique_ptr<Encoding> Build(const TernaryMatrix& m) {
    EncodingOptions opt;
    opt.block_size = GetParam().block_size;
    return BuildEncoding(GetParam().kind, m, opt);
  }
};

TEST_P(EncodingPropertyTest, DecodeRoundTripsExactly) {
  const auto p = GetParam();
  Rng rng(p.in_dim * 31 + p.out_dim + static_cast<size_t>(p.kind));
  const TernaryMatrix m = TernaryMatrix::Random(p.in_dim, p.out_dim, p.density, rng);
  const auto enc = Build(m);
  EXPECT_TRUE(enc->Decode() == m);
}

TEST_P(EncodingPropertyTest, AccumulateMatchesDenseReference) {
  const auto p = GetParam();
  Rng rng(p.in_dim + p.out_dim * 77 + static_cast<size_t>(p.kind));
  const TernaryMatrix m = TernaryMatrix::Random(p.in_dim, p.out_dim, p.density, rng);
  const auto enc = Build(m);
  std::vector<int8_t> input(p.in_dim);
  for (auto& v : input) {
    v = static_cast<int8_t>(rng.NextInt(-128, 127));
  }
  std::vector<int32_t> sums(p.out_dim);
  enc->Accumulate(input, sums);
  for (size_t j = 0; j < p.out_dim; ++j) {
    int32_t expected = 0;
    for (size_t i = 0; i < p.in_dim; ++i) {
      expected += m.at(i, j) * input[i];
    }
    EXPECT_EQ(sums[j], expected) << "column " << j;
  }
}

TEST_P(EncodingPropertyTest, SizesMatchPackedBlobSize) {
  const auto p = GetParam();
  Rng rng(p.in_dim * 5 + p.out_dim);
  const TernaryMatrix m = TernaryMatrix::Random(p.in_dim, p.out_dim, p.density, rng);
  const auto enc = Build(m);
  std::vector<uint8_t> blob;
  enc->Pack(blob);
  const size_t total = enc->Sizes().total();
  if (p.kind == EncodingKind::kUnrolled) {
    // Unrolled weights live in generated kernel text, not the packed image: Pack()
    // contributes nothing and Sizes() reports the marginal code bytes instead
    // (pinned against the assembler in kernels_test).
    EXPECT_EQ(blob.size(), 0u);
    EXPECT_GT(total, 0u);
    return;
  }
  // Packed blob may include up to 3 alignment pad bytes for 16-bit arrays.
  EXPECT_GE(blob.size(), total);
  EXPECT_LE(blob.size(), total + 4);
}

TEST_P(EncodingPropertyTest, EmptyMatrixEncodesAndDecodes) {
  const auto p = GetParam();
  const TernaryMatrix m(p.in_dim, p.out_dim);  // all zeros
  const auto enc = Build(m);
  EXPECT_TRUE(enc->Decode() == m);
  std::vector<int8_t> input(p.in_dim, 17);
  std::vector<int32_t> sums(p.out_dim, -1);
  enc->Accumulate(input, sums);
  for (int32_t s : sums) {
    EXPECT_EQ(s, 0);
  }
}

TEST_P(EncodingPropertyTest, DescribeMentionsArrays) {
  const auto p = GetParam();
  Rng rng(9);
  const TernaryMatrix m = TernaryMatrix::Random(p.in_dim, p.out_dim, p.density, rng);
  const auto enc = Build(m);
  const std::string desc = enc->Describe();
  EXPECT_NE(desc.find("pos"), std::string::npos);
  EXPECT_NE(desc.find("neg"), std::string::npos);
}

std::vector<EncodingCase> AllEncodingCases() {
  std::vector<EncodingCase> cases;
  for (EncodingKind kind : kAllEncodingKinds) {
    cases.push_back({kind, 8, 4, 0.3, 4});
    cases.push_back({kind, 64, 16, 0.1, 32});
    cases.push_back({kind, 300, 40, 0.15, 256});   // 16-bit absolute indices
    cases.push_back({kind, 1024, 10, 0.05, 256});  // large sparse input
    cases.push_back({kind, 17, 3, 0.9, 16});       // dense, odd sizes
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllKindsAndShapes, EncodingPropertyTest,
                         ::testing::ValuesIn(AllEncodingCases()));

TEST(EncodingTest, ElementWidthSelection) {
  EXPECT_EQ(ElementWidthFor(0), 1);
  EXPECT_EQ(ElementWidthFor(255), 1);
  EXPECT_EQ(ElementWidthFor(256), 2);
  EXPECT_EQ(ElementWidthFor(65535), 2);
}

TEST(EncodingTest, AppendArrayLittleEndianAndAligned) {
  std::vector<uint8_t> blob{0xAA};  // odd size to force alignment pad
  std::vector<uint32_t> values{0x1234, 0x5678};
  const DeviceArray arr = AppendArray(blob, values, 2);
  EXPECT_EQ(arr.offset % 2, 0u);
  EXPECT_EQ(blob[arr.offset], 0x34);
  EXPECT_EQ(blob[arr.offset + 1], 0x12);
  EXPECT_EQ(blob[arr.offset + 2], 0x78);
}

TEST(EncodingTest, BlockEncodingAlwaysUses8BitArrays) {
  Rng rng(2);
  const TernaryMatrix m = TernaryMatrix::Random(1000, 32, 0.1, rng);
  BlockEncoding enc(m, 256);
  std::vector<uint8_t> blob;
  const auto layout = enc.Pack(blob);
  EXPECT_EQ(layout.pos_meta.elem_width, 1);
  EXPECT_EQ(layout.pos_idx.elem_width, 1);
  EXPECT_EQ(layout.neg_meta.elem_width, 1);
  EXPECT_EQ(layout.neg_idx.elem_width, 1);
  EXPECT_EQ(layout.num_blocks, 4u);  // ceil(1000/256)
}

TEST(EncodingTest, CscUses16BitIndicesForLargeInputs) {
  Rng rng(3);
  const TernaryMatrix m = TernaryMatrix::Random(300, 8, 0.2, rng);
  CscEncoding enc(m);
  EXPECT_EQ(enc.positive().index_width, 2);
}

TEST(EncodingTest, BlockIsSmallestOnLargeSparseLayers) {
  // The paper's Fig. 5b finding: block-based encoding has the lowest flash footprint once
  // absolute indices (and, at high sparsity, some delta gaps) need 16 bits.
  Rng rng(4);
  const TernaryMatrix m = TernaryMatrix::Random(784, 64, 0.02, rng);
  EncodingOptions opt;
  size_t block_size = BuildEncoding(EncodingKind::kBlock, m, opt)->Sizes().total();
  for (EncodingKind kind : {EncodingKind::kCsc, EncodingKind::kDelta, EncodingKind::kMixed}) {
    EXPECT_LE(block_size, BuildEncoding(kind, m, opt)->Sizes().total())
        << EncodingKindName(kind);
  }
}

TEST(EncodingTest, DeltaStreamUsesRelativeOffsets) {
  TernaryMatrix m(20, 1);
  m.set(3, 0, 1);
  m.set(7, 0, 1);
  m.set(15, 0, 1);
  DeltaEncoding enc(m);
  const auto& pos = enc.positive();
  ASSERT_EQ(pos.counts[0], 3u);
  ASSERT_EQ(pos.stream.size(), 3u);
  EXPECT_EQ(pos.stream[0], 3u);  // absolute
  EXPECT_EQ(pos.stream[1], 4u);  // 7-3
  EXPECT_EQ(pos.stream[2], 8u);  // 15-7
}

// ---------------------------------------------------------------------------
// Quantized model export.
// ---------------------------------------------------------------------------

struct TrainedFixture {
  Dataset train;
  Dataset test;
  Network net;
};

TrainedFixture TrainSmallNeuroC(bool with_scale = true) {
  TrainedFixture fx;
  Dataset all = MakeDigits8x8(900, 77);
  Rng rng(5);
  auto [train, test] = all.Split(0.2, rng);
  fx.train = std::move(train);
  fx.test = std::move(test);
  NeuroCSpec spec;
  spec.hidden = {40};
  spec.layer.use_per_neuron_scale = with_scale;
  fx.net = BuildNeuroC(64, 10, spec, rng);
  TrainConfig cfg;
  cfg.epochs = 8;
  cfg.batch_size = 32;
  cfg.learning_rate = 3e-3f;
  Train(fx.net, fx.train, fx.test, cfg);
  return fx;
}

class QuantizedNeuroCTest : public ::testing::TestWithParam<EncodingKind> {};

TEST_P(QuantizedNeuroCTest, QuantizedAccuracyCloseToFloat) {
  TrainedFixture fx = TrainSmallNeuroC();
  const float float_acc = EvaluateAccuracy(fx.net, fx.test);
  NeuroCQuantOptions opt;
  opt.encoding = GetParam();
  NeuroCModel model = NeuroCModel::FromTrained(fx.net, fx.train, opt);
  const QuantizedDataset qtest = QuantizeInputs(fx.test);
  const float q_acc = model.EvaluateAccuracy(qtest);
  EXPECT_GT(q_acc, float_acc - 0.05f)
      << "int8 quantization lost too much accuracy (" << float_acc << " -> " << q_acc << ")";
}

TEST_P(QuantizedNeuroCTest, AllEncodingsProduceIdenticalPredictions) {
  TrainedFixture fx = TrainSmallNeuroC();
  NeuroCQuantOptions opt_a;
  opt_a.encoding = GetParam();
  NeuroCQuantOptions opt_ref;
  opt_ref.encoding = EncodingKind::kCsc;
  NeuroCModel a = NeuroCModel::FromTrained(fx.net, fx.train, opt_a);
  NeuroCModel ref = NeuroCModel::FromTrained(fx.net, fx.train, opt_ref);
  const QuantizedDataset qtest = QuantizeInputs(fx.test);
  for (size_t i = 0; i < std::min<size_t>(qtest.num_examples(), 50); ++i) {
    std::span<const int8_t> x(qtest.example(i), qtest.input_dim);
    EXPECT_EQ(a.Predict(x), ref.Predict(x)) << "example " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, QuantizedNeuroCTest,
                         ::testing::ValuesIn(std::vector<EncodingKind>(
                             std::begin(kAllEncodingKinds), std::end(kAllEncodingKinds))));

TEST(QuantizedNeuroCTest, TnnAblationExportsWithoutScale) {
  TrainedFixture fx = TrainSmallNeuroC(/*with_scale=*/false);
  NeuroCModel model = NeuroCModel::FromTrained(fx.net, fx.train);
  for (const auto& layer : model.layers()) {
    EXPECT_FALSE(layer.has_scale());
    EXPECT_EQ(layer.scale_frac, 0);
  }
  // Weight bytes must be smaller than the scaled variant of identical architecture.
  TrainedFixture fx2 = TrainSmallNeuroC(/*with_scale=*/true);
  NeuroCModel scaled = NeuroCModel::FromTrained(fx2.net, fx2.train);
  EXPECT_LT(model.WeightBytes(), scaled.WeightBytes());
}

TEST(QuantizedMlpTest, QuantizedAccuracyCloseToFloat) {
  Dataset all = MakeDigits8x8(900, 78);
  Rng rng(6);
  auto [train, test] = all.Split(0.2, rng);
  Network net = BuildMlp(64, 10, {{32}, 0.0f, false}, rng);
  TrainConfig cfg;
  cfg.epochs = 8;
  cfg.batch_size = 32;
  Train(net, train, test, cfg);
  const float float_acc = EvaluateAccuracy(net, test);
  MlpModel model = MlpModel::FromTrained(net, train);
  const float q_acc = model.EvaluateAccuracy(QuantizeInputs(test));
  EXPECT_GT(q_acc, float_acc - 0.05f);
}

TEST(QuantizedMlpTest, BatchNormFoldingPreservesAccuracy) {
  Dataset all = MakeDigits8x8(900, 79);
  Rng rng(7);
  auto [train, test] = all.Split(0.2, rng);
  Network net = BuildMlp(64, 10, {{32}, 0.0f, true}, rng);
  TrainConfig cfg;
  cfg.epochs = 8;
  cfg.batch_size = 32;
  Train(net, train, test, cfg);
  const float float_acc = EvaluateAccuracy(net, test);
  ASSERT_GT(float_acc, 0.7f);
  MlpModel model = MlpModel::FromTrained(net, train);
  const float q_acc = model.EvaluateAccuracy(QuantizeInputs(test));
  EXPECT_GT(q_acc, float_acc - 0.07f) << "BN folding degraded accuracy";
  // Folded model has no extra BN layers: 2 quant layers only.
  EXPECT_EQ(model.layers().size(), 2u);
}

TEST(QuantizedMlpTest, MaccCountMatchesArchitecture) {
  Dataset all = MakeDigits8x8(200, 80);
  Rng rng(8);
  Network net = BuildMlp(64, 10, {{32}, 0.0f, false}, rng);
  MlpModel model = MlpModel::FromTrained(net, all);
  EXPECT_EQ(model.MaccCount(), 64u * 32 + 32 * 10);
}


TEST(StripScalesTest, RemovesScalesPreservesStructure) {
  TrainedFixture fx = TrainSmallNeuroC();
  NeuroCModel model = NeuroCModel::FromTrained(fx.net, fx.train);
  NeuroCModel stripped = StripScales(model);
  ASSERT_EQ(stripped.layers().size(), model.layers().size());
  for (size_t k = 0; k < model.layers().size(); ++k) {
    const auto& a = model.layers()[k];
    const auto& b = stripped.layers()[k];
    EXPECT_FALSE(b.has_scale());
    EXPECT_EQ(b.scale_frac, 0);
    EXPECT_EQ(a.in_dim, b.in_dim);
    EXPECT_EQ(a.out_dim, b.out_dim);
    EXPECT_EQ(a.encoding->kind(), b.encoding->kind());
    EXPECT_TRUE(a.encoding->Decode() == b.encoding->Decode());
    EXPECT_EQ(a.bias_q, b.bias_q);
    EXPECT_GE(b.requant_shift, 0);
  }
  EXPECT_LT(stripped.WeightBytes(), model.WeightBytes());
}

TEST(StripScalesTest, StrippedModelStillRunsEndToEnd) {
  TrainedFixture fx = TrainSmallNeuroC();
  NeuroCModel model = NeuroCModel::FromTrained(fx.net, fx.train);
  NeuroCModel stripped = StripScales(model);
  std::vector<int8_t> input(stripped.in_dim(), 17);
  std::vector<int8_t> out;
  stripped.Forward(input, out);
  EXPECT_EQ(out.size(), stripped.out_dim());
}

TEST(QuantizedNeuroCTest, ForwardRejectsWrongInputSize) {
  TrainedFixture fx = TrainSmallNeuroC();
  NeuroCModel model = NeuroCModel::FromTrained(fx.net, fx.train);
  std::vector<int8_t> bad(model.in_dim() + 1, 0);
  std::vector<int8_t> out;
  EXPECT_DEATH(model.Forward(bad, out), "");
}

TEST(QuantizedNeuroCTest, WeightBytesBreakdownIsConsistent) {
  TrainedFixture fx = TrainSmallNeuroC();
  NeuroCModel model = NeuroCModel::FromTrained(fx.net, fx.train);
  size_t sum = 0;
  for (const auto& l : model.layers()) {
    const size_t expected = l.encoding->Sizes().total() + l.scale_q.size() +
                            l.bias_q.size() * sizeof(int32_t);
    EXPECT_EQ(l.WeightBytes(), expected);
    sum += l.WeightBytes();
  }
  EXPECT_EQ(model.WeightBytes(), sum);
}

// ---------------------------------------------------------------------------
// Flash image packing.
// ---------------------------------------------------------------------------

uint32_t ReadWordAt(const std::vector<uint8_t>& blob, size_t offset) {
  return static_cast<uint32_t>(blob[offset]) | (static_cast<uint32_t>(blob[offset + 1]) << 8) |
         (static_cast<uint32_t>(blob[offset + 2]) << 16) |
         (static_cast<uint32_t>(blob[offset + 3]) << 24);
}

TEST(ModelImageTest, NeuroCDescriptorsAreConsistent) {
  TrainedFixture fx = TrainSmallNeuroC();
  NeuroCModel model = NeuroCModel::FromTrained(fx.net, fx.train);
  const uint32_t flash_base = 0x08001000;
  const uint32_t ram_base = 0x20000000;
  DeviceModelImage image = PackNeuroCModel(model, flash_base, ram_base);
  ASSERT_EQ(image.num_layers(), 2u);
  EXPECT_EQ(image.input_dim, 64u);
  EXPECT_EQ(image.output_dim, 10u);
  for (size_t k = 0; k < image.num_layers(); ++k) {
    const uint32_t desc_off = image.descriptor_addrs[k] - flash_base;
    const uint32_t in_dim = ReadWordAt(image.flash, desc_off + kDescInDim * 4);
    const uint32_t out_dim = ReadWordAt(image.flash, desc_off + kDescOutDim * 4);
    EXPECT_EQ(in_dim, model.layers()[k].in_dim);
    EXPECT_EQ(out_dim, model.layers()[k].out_dim);
    // Every flash pointer must stay inside the packed image.
    for (DescWord w : {kDescPosMetaAddr, kDescPosIdxAddr, kDescNegMetaAddr, kDescNegIdxAddr,
                       kDescBiasAddr}) {
      const uint32_t addr = ReadWordAt(image.flash, desc_off + w * 4);
      EXPECT_GE(addr, flash_base);
      EXPECT_LE(addr, flash_base + image.flash.size());
    }
    // RAM pointers must stay inside the planned region.
    for (DescWord w : {kDescInputAddr, kDescOutputAddr, kDescScratchAddr}) {
      const uint32_t addr = ReadWordAt(image.flash, desc_off + w * 4);
      EXPECT_GE(addr, ram_base);
      EXPECT_LT(addr, ram_base + image.ram_bytes_used);
    }
  }
  // Layer 0 output buffer must equal layer 1 input buffer (ping-pong), and the image's
  // final output address must be layer 1's output buffer.
  const uint32_t out0 =
      ReadWordAt(image.flash, image.descriptor_addrs[0] - flash_base + kDescOutputAddr * 4);
  const uint32_t in1 =
      ReadWordAt(image.flash, image.descriptor_addrs[1] - flash_base + kDescInputAddr * 4);
  const uint32_t out1 =
      ReadWordAt(image.flash, image.descriptor_addrs[1] - flash_base + kDescOutputAddr * 4);
  EXPECT_EQ(out0, in1);
  EXPECT_EQ(image.output_addr, out1);
  EXPECT_NE(out0, out1);
}

TEST(ModelImageTest, MlpImagePacksWeightsVerbatim) {
  Dataset all = MakeDigits8x8(300, 81);
  Rng rng(9);
  Network net = BuildMlp(64, 10, {{16}, 0.0f, false}, rng);
  MlpModel model = MlpModel::FromTrained(net, all);
  DeviceModelImage image = PackMlpModel(model, 0x08000800, 0x20000100);
  ASSERT_EQ(image.num_layers(), 2u);
  const uint32_t desc_off = image.descriptor_addrs[0] - 0x08000800;
  const uint32_t weights_addr = ReadWordAt(image.flash, desc_off + kDescWeightsAddr * 4);
  const uint32_t weights_off = weights_addr - 0x08000800;
  const auto& w = model.layers()[0].weights;
  ASSERT_LE(weights_off + w.size(), image.flash.size());
  EXPECT_EQ(std::memcmp(image.flash.data() + weights_off, w.data(), w.size()), 0);
  EXPECT_TRUE(image.variants[0].is_dense);
}

TEST(ModelImageTest, RamUsageFitsCortexM0Budget) {
  TrainedFixture fx = TrainSmallNeuroC();
  NeuroCModel model = NeuroCModel::FromTrained(fx.net, fx.train);
  DeviceModelImage image = PackNeuroCModel(model, 0x08001000, 0x20000000);
  EXPECT_LT(image.ram_bytes_used, 16u * 1024) << "activation plan exceeds 16 KB SRAM";
}

}  // namespace
}  // namespace neuroc
