// The serving layer under a deterministic, in-process load harness: wire-frame codecs,
// batching decisions, tenant fairness, the thread-count byte-identity contract, the
// socketpair end-to-end path, LRU cache eviction/reload, admission control, shutdown
// semantics, and the fault path (mid-service corruption healed by the recovery ladder).
//
// Scheduling-sensitive checks run the service in manual_dispatch mode so batch formation
// is a pure function of the queued requests; the concurrency-heavy cases live in
// serve_soak_test.cc.

#include <sys/socket.h>

#include <atomic>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/obs/registry.h"
#include "src/serve/frame.h"
#include "src/serve/load_gen.h"
#include "src/serve/server.h"
#include "src/serve/service.h"
#include "src/sim/fault_injector.h"
#include "tests/test_util.h"

namespace neuroc {
namespace {

using testutil::FakeClient;
using testutil::GlobalThreadsGuard;
using testutil::MakeTestModel;
using testutil::TestModelSpec;

constexpr size_t kInDim = 16;

TestModelSpec SmallSpec() {
  TestModelSpec spec;
  spec.dims = {kInDim, 12, 10};
  spec.density = 0.3;
  return spec;
}

// In-memory model registry: name -> seed. Unknown names fail like a missing file.
ModelLoader TestLoader(std::map<std::string, uint64_t> seeds) {
  return [seeds = std::move(seeds)](const std::string& name) -> StatusOr<NeuroCModel> {
    const auto it = seeds.find(name);
    if (it == seeds.end()) {
      return Status(ErrorCode::kIoError, "no such model: " + name);
    }
    return MakeTestModel(it->second, SmallSpec());
  };
}

ServeRequest MakeRequest(uint64_t id, const std::string& tenant, const std::string& model,
                         uint64_t input_seed) {
  ServeRequest req;
  req.request_id = id;
  req.tenant = tenant;
  req.model = model;
  Rng rng(input_seed);
  req.input.resize(kInDim);
  for (int8_t& v : req.input) {
    v = static_cast<int8_t>(rng.NextInt(-128, 127));
  }
  return req;
}

uint64_t CounterValue(const char* name) {
  return MetricsRegistry::Global().GetCounter(name).value();
}

// --- frame codec ---------------------------------------------------------------------

TEST(FrameTest, RequestRoundTrip) {
  const ServeRequest req = MakeRequest(42, "alice", "digits", 7);
  std::vector<uint8_t> payload;
  AppendRequestPayload(req, &payload);
  const StatusOr<ServeRequest> back = DecodeRequestPayload(payload);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->request_id, req.request_id);
  EXPECT_EQ(back->tenant, req.tenant);
  EXPECT_EQ(back->model, req.model);
  EXPECT_EQ(back->input, req.input);
}

TEST(FrameTest, ResponseRoundTrip) {
  ServeResponse resp;
  resp.request_id = 99;
  resp.code = ErrorCode::kInvalidArgument;
  resp.prediction = -1;
  resp.cycles = 123456;
  resp.energy_pj = 987654;
  resp.message = "serve: input length 3 != model input dim 16";
  std::vector<uint8_t> payload;
  AppendResponsePayload(resp, &payload);
  const StatusOr<ServeResponse> back = DecodeResponsePayload(payload);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->request_id, resp.request_id);
  EXPECT_EQ(back->code, resp.code);
  EXPECT_EQ(back->cycles, resp.cycles);
  EXPECT_EQ(back->energy_pj, resp.energy_pj);
  EXPECT_EQ(back->message, resp.message);
}

TEST(FrameTest, DecoderRejectsTruncationTrailingAndBadMagic) {
  const ServeRequest req = MakeRequest(1, "t", "m", 3);
  std::vector<uint8_t> payload;
  AppendRequestPayload(req, &payload);

  for (size_t keep : {size_t{0}, size_t{3}, size_t{11}, payload.size() - 1}) {
    const std::vector<uint8_t> cut(payload.begin(),
                                   payload.begin() + static_cast<ptrdiff_t>(keep));
    const StatusOr<ServeRequest> r = DecodeRequestPayload(cut);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::kMalformedImage);
  }

  std::vector<uint8_t> padded = payload;
  padded.push_back(0xAB);
  EXPECT_FALSE(DecodeRequestPayload(padded).ok());

  std::vector<uint8_t> bad_magic = payload;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(DecodeRequestPayload(bad_magic).ok());
}

TEST(FrameTest, ReaderReassemblesSplitFramesAndPoisonsOnOversizedLength) {
  const ServeRequest req = MakeRequest(5, "t", "m", 9);
  const std::vector<uint8_t> frame = EncodeRequestFrame(req);
  std::vector<uint8_t> payload;
  AppendRequestPayload(req, &payload);

  // Two frames, fed one byte at a time, must pop exactly two identical payloads.
  FrameReader reader;
  std::vector<std::vector<uint8_t>> got;
  for (int copy = 0; copy < 2; ++copy) {
    for (uint8_t b : frame) {
      reader.Feed(std::span<const uint8_t>(&b, 1));
      std::vector<uint8_t> out;
      StatusOr<bool> next = reader.Next(&out);
      ASSERT_TRUE(next.ok());
      if (*next) {
        got.push_back(std::move(out));
      }
    }
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], payload);
  EXPECT_EQ(got[1], payload);

  // An oversized declared length poisons permanently, even for valid bytes after it.
  FrameReader poisoned;
  const uint32_t huge = kMaxFramePayloadBytes + 1;
  uint8_t hdr[4];
  std::memcpy(hdr, &huge, 4);
  poisoned.Feed(hdr);
  std::vector<uint8_t> out;
  StatusOr<bool> next = poisoned.Next(&out);
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), ErrorCode::kResourceExhausted);
  poisoned.Feed(frame);
  EXPECT_FALSE(poisoned.Next(&out).ok());
}

// --- batching & fairness -------------------------------------------------------------

ServeConfig ManualConfig(size_t max_batch = 4) {
  ServeConfig cfg;
  cfg.max_batch = max_batch;
  cfg.manual_dispatch = true;
  cfg.record_batches = true;
  return cfg;
}

TEST(ServeBatchingTest, FillsBatchesUpToMaxBatch) {
  InferenceService service(ManualConfig(4), TestLoader({{"m", 11}}));
  std::vector<ServeResponse> responses;
  for (uint64_t i = 0; i < 5; ++i) {
    service.Submit(MakeRequest(i, "a", "m", 100 + i),
                   [&](const ServeResponse& r) { responses.push_back(r); });
  }
  EXPECT_EQ(service.QueueDepth(), 5u);

  EXPECT_EQ(service.RunOnce(), 4u);
  EXPECT_EQ(service.QueueDepth(), 1u);
  EXPECT_EQ(service.RunOnce(), 1u);
  EXPECT_EQ(service.RunOnce(), 0u);

  const std::vector<BatchRecord> batches = service.TakeBatchRecords();
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].size, 4u);
  EXPECT_EQ(batches[1].size, 1u);
  ASSERT_EQ(responses.size(), 5u);
  for (const ServeResponse& r : responses) {
    EXPECT_TRUE(r.ok()) << r.message;
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.energy_pj, 0u);
  }
}

TEST(ServeBatchingTest, RoundRobinSharesBatchesAcrossTenants) {
  InferenceService service(ManualConfig(4), TestLoader({{"m", 12}}));
  size_t done = 0;
  const auto count = [&](const ServeResponse&) { ++done; };
  // Tenant a floods 6 requests, tenant b sends 2: the first batch must carry both.
  for (uint64_t i = 0; i < 6; ++i) {
    service.Submit(MakeRequest(i, "a", "m", 200 + i), count);
  }
  for (uint64_t i = 6; i < 8; ++i) {
    service.Submit(MakeRequest(i, "b", "m", 200 + i), count);
  }

  EXPECT_EQ(service.RunOnce(), 4u);
  EXPECT_EQ(service.RunOnce(), 4u);
  EXPECT_EQ(done, 8u);

  const std::vector<BatchRecord> batches = service.TakeBatchRecords();
  ASSERT_EQ(batches.size(), 2u);
  // Round-robin pop order: a,b,a,b — recorded as runs [a:1,b:1,a:1,b:1] or merged runs.
  size_t a0 = 0;
  size_t b0 = 0;
  for (const auto& [tenant, n] : batches[0].per_tenant) {
    (tenant == "a" ? a0 : b0) += n;
  }
  EXPECT_EQ(a0, 2u);
  EXPECT_EQ(b0, 2u);
  // Second batch: b is drained, a gets the full batch.
  size_t a1 = 0;
  size_t b1 = 0;
  for (const auto& [tenant, n] : batches[1].per_tenant) {
    (tenant == "a" ? a1 : b1) += n;
  }
  EXPECT_EQ(a1, 4u);
  EXPECT_EQ(b1, 0u);
}

TEST(ServeBatchingTest, OneBatchPerModelPerRound) {
  InferenceService service(ManualConfig(4), TestLoader({{"m1", 13}, {"m2", 14}}));
  // Atomic: the two models' batches complete concurrently on the pool.
  std::atomic<size_t> done{0};
  for (uint64_t i = 0; i < 4; ++i) {
    service.Submit(MakeRequest(i, "a", i % 2 ? "m1" : "m2", 300 + i),
                   [&](const ServeResponse&) { ++done; });
  }
  // One round serves both models (their batches run concurrently on the pool).
  EXPECT_EQ(service.RunOnce(), 4u);
  EXPECT_EQ(done, 4u);
  const std::vector<BatchRecord> batches = service.TakeBatchRecords();
  ASSERT_EQ(batches.size(), 2u);
  // Sorted model order: m1 before m2.
  EXPECT_EQ(batches[0].model, "m1");
  EXPECT_EQ(batches[1].model, "m2");
}

// --- determinism contract ------------------------------------------------------------

// Runs `n` requests through a fresh service and returns request_id -> encoded response
// payload bytes.
std::map<uint64_t, std::vector<uint8_t>> ServeAll(size_t threads, size_t max_batch,
                                                  size_t n) {
  ThreadPool::SetGlobalThreads(threads);
  InferenceService service(ManualConfig(max_batch),
                           TestLoader({{"m1", 21}, {"m2", 22}}));
  std::map<uint64_t, std::vector<uint8_t>> payloads;
  std::mutex mu;
  for (uint64_t i = 0; i < n; ++i) {
    const std::string tenant = i % 3 == 0 ? "a" : "b";
    const std::string model = i % 2 == 0 ? "m1" : "m2";
    service.Submit(MakeRequest(i, tenant, model, 400 + i), [&, i](const ServeResponse& r) {
      std::vector<uint8_t> bytes;
      AppendResponsePayload(r, &bytes);
      std::lock_guard<std::mutex> lock(mu);
      payloads[i] = std::move(bytes);
    });
  }
  while (service.RunOnce() > 0) {
  }
  return payloads;
}

TEST(ServeDeterminismTest, PayloadsByteIdenticalAcrossThreadCountsAndBatching) {
  GlobalThreadsGuard guard;
  const auto t1 = ServeAll(/*threads=*/1, /*max_batch=*/4, /*n=*/12);
  const auto t4 = ServeAll(/*threads=*/4, /*max_batch=*/4, /*n=*/12);
  // Different batch geometry must not leak into payloads either.
  const auto t4b2 = ServeAll(/*threads=*/4, /*max_batch=*/2, /*n=*/12);

  ASSERT_EQ(t1.size(), 12u);
  EXPECT_EQ(t1, t4);
  EXPECT_EQ(t1, t4b2);
  for (const auto& [id, bytes] : t1) {
    const StatusOr<ServeResponse> r = DecodeResponsePayload(bytes);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->ok()) << "request " << id << ": " << r->message;
  }
}

TEST(ServeDeterminismTest, PredictionsMatchHostModel) {
  InferenceService service(ManualConfig(), TestLoader({{"m", 23}}));
  const NeuroCModel host = MakeTestModel(23, SmallSpec());
  std::vector<std::pair<uint64_t, int32_t>> got;
  for (uint64_t i = 0; i < 6; ++i) {
    service.Submit(MakeRequest(i, "a", "m", 500 + i), [&, i](const ServeResponse& r) {
      ASSERT_TRUE(r.ok()) << r.message;
      got.emplace_back(i, r.prediction);
    });
  }
  while (service.RunOnce() > 0) {
  }
  ASSERT_EQ(got.size(), 6u);
  for (const auto& [i, prediction] : got) {
    const ServeRequest req = MakeRequest(i, "a", "m", 500 + i);
    EXPECT_EQ(prediction, host.Predict(req.input)) << "request " << i;
  }
}

// --- socketpair end-to-end -----------------------------------------------------------

TEST(ServeEndToEndTest, SocketpairRequestsAnsweredCorrectly) {
  ServeConfig cfg;
  cfg.max_batch = 4;
  InferenceService service(cfg, TestLoader({{"m", 31}}));
  service.Start();
  FrameServer server(&service);

  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  server.AddConnection(fds[0]);
  FakeClient client(fds[1]);

  const NeuroCModel host = MakeTestModel(31, SmallSpec());
  std::map<uint64_t, ServeRequest> sent;
  for (uint64_t i = 1; i <= 5; ++i) {
    ServeRequest req = MakeRequest(i, "alice", "m", 600 + i);
    sent[i] = req;
    ASSERT_TRUE(client.SendRequest(req));
  }
  // Pipelined responses may arrive in any order; match by request_id.
  for (int k = 0; k < 5; ++k) {
    const StatusOr<ServeResponse> resp = client.ReadResponse();
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    ASSERT_TRUE(resp->ok()) << resp->message;
    ASSERT_TRUE(sent.count(resp->request_id));
    EXPECT_EQ(resp->prediction, host.Predict(sent[resp->request_id].input));
    sent.erase(resp->request_id);
  }
  EXPECT_TRUE(sent.empty());

  server.Stop();
  service.Stop();
}

TEST(ServeEndToEndTest, UnknownModelAndBadInputGetStructuredErrors) {
  ServeConfig cfg;
  InferenceService service(cfg, TestLoader({{"m", 32}}));
  service.Start();
  FrameServer server(&service);

  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  server.AddConnection(fds[0]);
  FakeClient client(fds[1]);

  ServeRequest unknown = MakeRequest(1, "a", "nope", 1);
  ASSERT_TRUE(client.SendRequest(unknown));
  StatusOr<ServeResponse> resp = client.ReadResponse();
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->request_id, 1u);
  EXPECT_EQ(resp->code, ErrorCode::kIoError);

  ServeRequest short_input = MakeRequest(2, "a", "m", 2);
  short_input.input.resize(3);
  ASSERT_TRUE(client.SendRequest(short_input));
  resp = client.ReadResponse();
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->request_id, 2u);
  EXPECT_EQ(resp->code, ErrorCode::kInvalidArgument);

  // A malformed payload (bad magic) gets a request_id-0 error and the stream survives.
  std::vector<uint8_t> payload;
  AppendRequestPayload(MakeRequest(3, "a", "m", 3), &payload);
  payload[0] ^= 0xFF;
  std::vector<uint8_t> frame;
  const uint32_t len = static_cast<uint32_t>(payload.size());
  frame.resize(4);
  std::memcpy(frame.data(), &len, 4);
  frame.insert(frame.end(), payload.begin(), payload.end());
  ASSERT_TRUE(client.SendBytes(frame.data(), frame.size()));
  resp = client.ReadResponse();
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->request_id, 0u);
  EXPECT_EQ(resp->code, ErrorCode::kMalformedImage);

  // ...and a well-formed request after the malformed one still works.
  ASSERT_TRUE(client.SendRequest(MakeRequest(4, "a", "m", 4)));
  resp = client.ReadResponse();
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->request_id, 4u);
  EXPECT_TRUE(resp->ok()) << resp->message;

  server.Stop();
  service.Stop();
}

// --- model cache ---------------------------------------------------------------------

TEST(ServeCacheTest, LruEvictsAndReloadsBeyondCapacity) {
  ServeConfig cfg = ManualConfig();
  cfg.cache_capacity = 1;
  InferenceService service(cfg, TestLoader({{"m1", 41}, {"m2", 42}}));

  const uint64_t evictions_before = CounterValue("serve.cache.evictions");
  const uint64_t misses_before = CounterValue("serve.cache.misses");

  size_t ok = 0;
  const auto expect_ok = [&](const ServeResponse& r) {
    ASSERT_TRUE(r.ok()) << r.message;
    ++ok;
  };
  // Alternate models so each round evicts the other: m1, m2, m1.
  service.Submit(MakeRequest(1, "a", "m1", 700), expect_ok);
  EXPECT_EQ(service.RunOnce(), 1u);
  service.Submit(MakeRequest(2, "a", "m2", 701), expect_ok);
  EXPECT_EQ(service.RunOnce(), 1u);
  service.Submit(MakeRequest(3, "a", "m1", 700), expect_ok);
  EXPECT_EQ(service.RunOnce(), 1u);

  EXPECT_EQ(ok, 3u);
  EXPECT_EQ(service.cache().resident(), 1u);
  EXPECT_EQ(CounterValue("serve.cache.misses") - misses_before, 3u);
  EXPECT_GE(CounterValue("serve.cache.evictions") - evictions_before, 2u);

  // The reload is a fresh deploy: identical responses before and after eviction.
  const NeuroCModel host = MakeTestModel(41, SmallSpec());
  const ServeRequest req = MakeRequest(3, "a", "m1", 700);
  EXPECT_EQ(host.Predict(req.input), host.Predict(MakeRequest(1, "a", "m1", 700).input));
}

TEST(ServeCacheTest, CacheHitSkipsLoader) {
  size_t loads = 0;
  ModelLoader counting = [&loads](const std::string&) -> StatusOr<NeuroCModel> {
    ++loads;
    return MakeTestModel(51, SmallSpec());
  };
  InferenceService service(ManualConfig(), std::move(counting));
  size_t done = 0;
  for (uint64_t i = 0; i < 4; ++i) {
    service.Submit(MakeRequest(i, "a", "m", 800 + i),
                   [&](const ServeResponse& r) {
                     ASSERT_TRUE(r.ok()) << r.message;
                     ++done;
                   });
    service.RunOnce();
  }
  EXPECT_EQ(done, 4u);
  EXPECT_EQ(loads, 1u);
}

// --- admission control & shutdown ----------------------------------------------------

TEST(ServeAdmissionTest, RejectsBeyondQueueDepth) {
  ServeConfig cfg = ManualConfig();
  cfg.max_queue_depth = 2;
  InferenceService service(cfg, TestLoader({{"m", 61}}));
  std::vector<ServeResponse> rejected;
  size_t accepted = 0;
  for (uint64_t i = 0; i < 5; ++i) {
    service.Submit(MakeRequest(i, "a", "m", 900 + i), [&](const ServeResponse& r) {
      if (r.ok()) {
        ++accepted;
      } else {
        rejected.push_back(r);
      }
    });
  }
  ASSERT_EQ(rejected.size(), 3u);
  for (const ServeResponse& r : rejected) {
    EXPECT_EQ(r.code, ErrorCode::kResourceExhausted);
  }
  while (service.RunOnce() > 0) {
  }
  EXPECT_EQ(accepted, 2u);
}

TEST(ServeAdmissionTest, StopFailsQueuedRequests) {
  InferenceService service(ManualConfig(), TestLoader({{"m", 62}}));
  std::vector<ServeResponse> responses;
  for (uint64_t i = 0; i < 3; ++i) {
    service.Submit(MakeRequest(i, "a", "m", 950 + i),
                   [&](const ServeResponse& r) { responses.push_back(r); });
  }
  service.Stop();
  ASSERT_EQ(responses.size(), 3u);
  for (const ServeResponse& r : responses) {
    EXPECT_EQ(r.code, ErrorCode::kResourceExhausted);
  }
  EXPECT_EQ(service.QueueDepth(), 0u);
}

// --- fault path ----------------------------------------------------------------------

// Corrupt the cached model's flash mid-service: the next request must be answered OK
// after the recovery ladder scrubs the machine, and the recovery counters must say so.
TEST(ServeFaultTest, MidServiceCorruptionHealedByRecoveryLadder) {
  InferenceService service(ManualConfig(), TestLoader({{"m", 71}}));
  size_t ok = 0;
  const auto expect_ok = [&](const ServeResponse& r) {
    ASSERT_TRUE(r.ok()) << r.message;
    ++ok;
  };

  // Warm the cache.
  service.Submit(MakeRequest(1, "a", "m", 1000), expect_ok);
  EXPECT_EQ(service.RunOnce(), 1u);
  ASSERT_EQ(ok, 1u);

  ModelCache::Entry* entry = service.cache().PeekForTest("m");
  ASSERT_NE(entry, nullptr);
  DeployedModel& dm = entry->model.deployed();

  // Batter the packed image with seeded bit flips — enough that the corruption cannot
  // be behaviorally masked (the CRC check reports it regardless).
  Rng inject_rng(7);
  for (int i = 0; i < 32; ++i) {
    InjectFault(dm.machine().memory(), dm.image_base(),
                static_cast<uint32_t>(dm.image().flash.size()),
                FaultModel::kSingleBitFlip, 1, inject_rng);
  }
  ASSERT_FALSE(dm.CorruptedSections().empty());

  const uint64_t scrubs_before = CounterValue("recovery.scrub_retry");
  service.Submit(MakeRequest(2, "a", "m", 1001), expect_ok);
  EXPECT_EQ(service.RunOnce(), 1u);
  EXPECT_EQ(ok, 2u);

  // The ladder ran its scrub rung and the machine is clean again.
  EXPECT_GT(CounterValue("recovery.scrub_retry"), scrubs_before);
  EXPECT_TRUE(dm.CorruptedSections().empty());

  // And the recovered answer matches the host model.
  const NeuroCModel host = MakeTestModel(71, SmallSpec());
  service.Submit(MakeRequest(3, "a", "m", 1002),
                 [&](const ServeResponse& r) {
                   ASSERT_TRUE(r.ok());
                   EXPECT_EQ(r.prediction,
                             host.Predict(MakeRequest(3, "a", "m", 1002).input));
                 });
  EXPECT_EQ(service.RunOnce(), 1u);
}

// --- per-tenant metrics --------------------------------------------------------------

TEST(ServeMetricsTest, PerTenantScopesCountTraffic) {
  const uint64_t alice_before = CounterValue("serve.tenant.alice.requests");
  const uint64_t bob_before = CounterValue("serve.tenant.bob.requests");
  InferenceService service(ManualConfig(), TestLoader({{"m", 81}}));
  size_t done = 0;
  for (uint64_t i = 0; i < 3; ++i) {
    service.Submit(MakeRequest(i, "alice", "m", 1100 + i),
                   [&](const ServeResponse&) { ++done; });
  }
  service.Submit(MakeRequest(3, "bob", "m", 1103), [&](const ServeResponse&) { ++done; });
  while (service.RunOnce() > 0) {
  }
  EXPECT_EQ(done, 4u);
  EXPECT_EQ(CounterValue("serve.tenant.alice.requests") - alice_before, 3u);
  EXPECT_EQ(CounterValue("serve.tenant.bob.requests") - bob_before, 1u);
}

// --- load generator ------------------------------------------------------------------

TEST(ServeLoadGenTest, ClosedLoopChecksumIsClientCountInvariant) {
  GlobalThreadsGuard guard;
  LoadGenConfig lg;
  lg.models = {"m1", "m2"};
  lg.tenants = {"a", "b"};
  lg.input_dim = kInDim;
  lg.total_requests = 16;
  lg.checksum_prefix = 16;

  const auto run = [&](size_t clients, size_t threads) {
    ThreadPool::SetGlobalThreads(threads);
    ServeConfig cfg;
    cfg.max_batch = 4;
    InferenceService service(cfg, TestLoader({{"m1", 91}, {"m2", 92}}));
    service.Start();
    lg.clients = clients;
    const LoadGenReport report = RunClosedLoop(service, lg);
    service.Stop();
    return report;
  };

  const LoadGenReport one = run(1, 1);
  const LoadGenReport four = run(4, 4);
  EXPECT_EQ(one.completed, 16u);
  EXPECT_EQ(four.completed, 16u);
  EXPECT_EQ(one.failed, 0u);
  EXPECT_EQ(four.failed, 0u);
  // The determinism contract, end to end: same payload checksum no matter how many
  // clients raced or how the batches formed.
  EXPECT_EQ(one.checksum, four.checksum);
  EXPECT_EQ(one.total_cycles, four.total_cycles);
  EXPECT_EQ(one.total_energy_pj, four.total_energy_pj);
}

}  // namespace
}  // namespace neuroc
