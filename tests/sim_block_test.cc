// Block-compiled execution: fusing straight-line basic blocks into one dispatch per block
// must be an invisible optimization, exactly like the predecode cache underneath it.
// Cycles, instruction counts, op histograms, memory statistics, heatmaps, fault reports
// and probe streams all have to be bit-identical across the three decode paths (legacy
// interpreter, predecode cache, block compilation), and attaching a CpuProbe mid-run must
// transparently fall back to the step interpreter with exact per-PC attribution.

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/core/encoding.h"
#include "src/core/synthetic.h"
#include "src/isa/assembler.h"
#include "src/obs/sim_profiler.h"
#include "src/runtime/deployed_model.h"
#include "src/sim/machine.h"

namespace neuroc {
namespace {

constexpr uint32_t kFlash = 0x08000000;
constexpr uint32_t kRam = 0x20000000;

NeuroCModel MakeModel(uint64_t seed, EncodingKind kind) {
  Rng rng(seed);
  SyntheticNeuroCLayerSpec l0;
  l0.in_dim = 64;
  l0.out_dim = 24;
  l0.density = 0.2;
  l0.encoding = kind;
  SyntheticNeuroCLayerSpec l1 = l0;
  l1.in_dim = 24;
  l1.out_dim = 10;
  l1.relu = false;
  std::vector<QuantNeuroCLayer> layers;
  layers.push_back(MakeSyntheticNeuroCLayer(l0, rng));
  layers.push_back(MakeSyntheticNeuroCLayer(l1, rng));
  return NeuroCModel::FromLayers(std::move(layers));
}

// The three decode paths under comparison. `block` is the deploy default; the other two
// peel off one optimization layer each.
enum class Path { kLegacy, kCached, kBlock };

void ConfigurePath(Cpu& cpu, Path path) {
  switch (path) {
    case Path::kLegacy:
      cpu.EnableDecodeCache(false);
      break;
    case Path::kCached:
      cpu.EnableBlockCompile(false);
      break;
    case Path::kBlock:
      break;  // deploy default
  }
}

class BlockParityTest : public ::testing::TestWithParam<EncodingKind> {};

// Full inference with heatmaps attached: every architectural and observational quantity
// must agree across legacy / cached / block for the same model and inputs.
TEST_P(BlockParityTest, FullInferenceBitIdenticalAcrossAllThreePaths) {
  const EncodingKind kind = GetParam();
  DeployedModel block = DeployedModel::Deploy(MakeModel(21, kind));
  DeployedModel cached = DeployedModel::Deploy(MakeModel(21, kind));
  DeployedModel legacy = DeployedModel::Deploy(MakeModel(21, kind));
  ASSERT_TRUE(block.machine().cpu().block_compile_enabled());
  ASSERT_TRUE(block.machine().cpu().decode_cache_enabled());
  ConfigurePath(cached.machine().cpu(), Path::kCached);
  ConfigurePath(legacy.machine().cpu(), Path::kLegacy);

  block.machine().memory().EnableHeatmap(64);
  cached.machine().memory().EnableHeatmap(64);
  legacy.machine().memory().EnableHeatmap(64);

  Rng rng(5);
  for (int rep = 0; rep < 3; ++rep) {
    const std::vector<int8_t> input = MakeRandomInput(block.input_dim(), rng);
    const int b = block.Predict(input);
    EXPECT_EQ(b, cached.Predict(input));
    EXPECT_EQ(b, legacy.Predict(input));
    EXPECT_EQ(block.report().cycles_per_inference, legacy.report().cycles_per_inference);
    EXPECT_EQ(block.LastOutput(), legacy.LastOutput());
  }

  const Cpu& bc = block.machine().cpu();
  const Cpu& cc = cached.machine().cpu();
  const Cpu& lc = legacy.machine().cpu();
  EXPECT_EQ(bc.cycles(), lc.cycles());
  EXPECT_EQ(bc.instructions(), lc.instructions());
  EXPECT_EQ(bc.op_histogram(), lc.op_histogram());
  EXPECT_EQ(cc.cycles(), lc.cycles());
  EXPECT_EQ(cc.instructions(), lc.instructions());
  EXPECT_EQ(cc.op_histogram(), lc.op_histogram());

  const MemAccessStats& bs = block.machine().memory().stats();
  const MemAccessStats& ls = legacy.machine().memory().stats();
  EXPECT_EQ(bs.flash_reads, ls.flash_reads);
  EXPECT_EQ(bs.sram_reads, ls.sram_reads);
  EXPECT_EQ(bs.sram_writes, ls.sram_writes);

  const MemHeatmap& bh = block.machine().memory().heatmap();
  const MemHeatmap& lh = legacy.machine().memory().heatmap();
  EXPECT_EQ(bh.flash_reads, lh.flash_reads);
  EXPECT_EQ(bh.sram_reads, lh.sram_reads);
  EXPECT_EQ(bh.sram_writes, lh.sram_writes);
}

// Attaching a profiler mid-run must transparently disable block dispatch (probe streams
// come from the step interpreter only), attribute the exact cycle cost of the profiled
// window per PC, and leave the architectural counters identical to an unprofiled run.
TEST_P(BlockParityTest, ProbeAttachMidRunFallsBackWithExactAttribution) {
  const EncodingKind kind = GetParam();
  DeployedModel probed = DeployedModel::Deploy(MakeModel(33, kind));
  DeployedModel plain = DeployedModel::Deploy(MakeModel(33, kind));
  ASSERT_TRUE(probed.machine().cpu().block_compile_enabled());

  Rng rng(7);
  const std::vector<int8_t> in0 = MakeRandomInput(probed.input_dim(), rng);
  const std::vector<int8_t> in1 = MakeRandomInput(probed.input_dim(), rng);
  const std::vector<int8_t> in2 = MakeRandomInput(probed.input_dim(), rng);

  // Warm-up inference on the block path.
  EXPECT_EQ(probed.Predict(in0), plain.Predict(in0));

  // Attach the profiler for the middle inference only.
  Cpu& cpu = probed.machine().cpu();
  const uint64_t cycles_before = cpu.cycles();
  SimProfiler profiler;
  {
    ScopedCpuProbe scope(cpu, &profiler);
    EXPECT_EQ(probed.Predict(in1), plain.Predict(in1));
  }
  const uint64_t window_cycles = cpu.cycles() - cycles_before;

  // Per-PC attribution must sum exactly to the simulated cycles of the window.
  EXPECT_EQ(profiler.total_cycles(), window_cycles);
  uint64_t pc_sum = 0;
  for (const auto& [addr, stat] : profiler.pc_stats()) {
    pc_sum += stat.cycles;
  }
  EXPECT_EQ(pc_sum, window_cycles);
  EXPECT_GT(profiler.total_instructions(), 0u);

  // Detached again: block dispatch resumes and total counters still match the
  // never-probed machine bit for bit.
  EXPECT_EQ(probed.Predict(in2), plain.Predict(in2));
  EXPECT_EQ(cpu.cycles(), plain.machine().cpu().cycles());
  EXPECT_EQ(cpu.instructions(), plain.machine().cpu().instructions());
  EXPECT_EQ(cpu.op_histogram(), plain.machine().cpu().op_histogram());
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, BlockParityTest, ::testing::ValuesIn(kAllEncodingKinds));

// Runs `src` at kFlash on the given decode path and returns the machine post-call (whether
// it returned or faulted). `args` go to r0..r1.
struct CallResult {
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint32_t r0 = 0;
  FaultReport fault;
  CpuFlags flags;
};

CallResult RunProgram(const std::string& src, Path path, std::initializer_list<uint32_t> args,
                      uint64_t max_instructions = 400'000'000) {
  MachineConfig cfg;
  cfg.max_instructions = max_instructions;
  Machine m(cfg);
  ConfigurePath(m.cpu(), path);
  const AssembledProgram p = Assemble(src, kFlash);
  m.LoadBytes(kFlash, p.bytes);
  (void)m.TryCallFunction(kFlash, args);
  CallResult r;
  r.cycles = m.cpu().cycles();
  r.instructions = m.cpu().instructions();
  r.r0 = m.ReturnValue();
  r.fault = m.last_fault();
  r.flags = m.cpu().flags();
  return r;
}

void ExpectSameOutcome(const std::string& src, std::initializer_list<uint32_t> args,
                       uint64_t max_instructions = 400'000'000) {
  const CallResult b = RunProgram(src, Path::kBlock, args, max_instructions);
  for (const Path path : {Path::kCached, Path::kLegacy}) {
    const CallResult o = RunProgram(src, path, args, max_instructions);
    EXPECT_EQ(b.cycles, o.cycles);
    EXPECT_EQ(b.instructions, o.instructions);
    EXPECT_EQ(b.r0, o.r0);
    EXPECT_EQ(b.fault.code, o.fault.code);
    EXPECT_EQ(b.fault.message, o.fault.message);
    EXPECT_EQ(b.fault.pc, o.fault.pc);
    EXPECT_EQ(b.fault.addr, o.fault.addr);
    EXPECT_EQ(b.fault.cycles, o.fault.cycles);
    EXPECT_EQ(b.fault.instructions, o.fault.instructions);
    EXPECT_EQ(b.flags.n, o.flags.n);
    EXPECT_EQ(b.flags.z, o.flags.z);
    EXPECT_EQ(b.flags.c, o.flags.c);
    EXPECT_EQ(b.flags.v, o.flags.v);
  }
}

// A fault in the middle of a compiled block must report the same PC, data address, cycle
// count and instruction count as the interpreter — including the APSR state left by the
// instructions that retired before the fault (their flag writes cannot be elided).
TEST(BlockFaultTest, MidBlockFaultMatchesInterpreterExactly) {
  // subs leaves N set; the unaligned load faults two instructions into the block.
  ExpectSameOutcome(
      "movs r0, #1\n"
      "subs r0, r0, #2\n"
      "ldr r1, [r0]\n"  // r0 == 0xFFFFFFFF: unaligned + unmapped -> faults
      "bx lr\n",
      {});
}

TEST(BlockFaultTest, StoreToFlashFaultMatchesInterpreter) {
  ExpectSameOutcome(
      "ldr r0, =0x08000000\n"
      "movs r1, #7\n"
      "str r1, [r0]\n"  // flash is read-only to the guest
      "bx lr\n",
      {});
}

// The instruction budget must fire after exactly the same retired instruction on every
// path; blocks that would cross the budget fall back to stepping so the overrun is
// attributed to the precise instruction, not a block boundary.
TEST(BlockFaultTest, InstructionBudgetFiresIdentically) {
  const std::string spin =
      "loop:\n"
      "  adds r0, r0, #1\n"
      "  b loop\n";
  ExpectSameOutcome(spin, {}, /*max_instructions=*/1001);
  // Edge case: budget lands exactly on a block boundary.
  ExpectSameOutcome(spin, {}, /*max_instructions=*/1000);
}

// Host writes into flash invalidate compiled blocks (same listener flag as the predecode
// cache): a patched halfword must change behaviour on the very next call.
TEST(BlockInvalidationTest, FlashWriteInvalidatesCompiledBlocks) {
  Machine m;
  ASSERT_TRUE(m.cpu().block_compile_enabled());
  const AssembledProgram a = Assemble("movs r0, #1\nbx lr\n", kFlash);
  m.LoadBytes(kFlash, a.bytes);
  m.CallFunction(kFlash, {});
  EXPECT_EQ(m.ReturnValue(), 1u);

  const AssembledProgram b = Assemble("movs r0, #9\n", kFlash);
  m.LoadBytes(kFlash, std::span<const uint8_t>(b.bytes.data(), 2));
  m.CallFunction(kFlash, {});
  EXPECT_EQ(m.ReturnValue(), 9u);
}

// Code in SRAM is outside block coverage: execution falls back to the interpreter and all
// counters agree (no flash wait states on SRAM fetches).
TEST(BlockFallbackTest, SramExecutionMatchesInterpreter) {
  const AssembledProgram p = Assemble("adds r0, r0, r1\nbx lr\n", kRam);
  Machine block;
  Machine legacy;
  ASSERT_TRUE(block.cpu().block_compile_enabled());
  legacy.cpu().EnableDecodeCache(false);
  block.LoadBytes(kRam, p.bytes);
  legacy.LoadBytes(kRam, p.bytes);
  const uint64_t block_cycles = block.CallFunction(kRam, {30, 12});
  const uint64_t legacy_cycles = legacy.CallFunction(kRam, {30, 12});
  EXPECT_EQ(block.ReturnValue(), 42u);
  EXPECT_EQ(legacy.ReturnValue(), 42u);
  EXPECT_EQ(block_cycles, legacy_cycles);
  EXPECT_EQ(block.cpu().instructions(), legacy.cpu().instructions());
}

// Dead-flag elision must never be observable: ADC consumes carry produced many
// instructions earlier in the same block, and the flags left at block exit feed a
// conditional branch in the next block.
TEST(BlockFlagsTest, CarryChainAndCrossBlockFlagsMatchInterpreter) {
  ExpectSameOutcome(
      "movs r0, #0\n"
      "mvns r1, r0\n"        // r1 = 0xFFFFFFFF
      "adds r1, r1, #1\n"    // sets carry
      "movs r2, #5\n"        // does not touch carry
      "movs r3, #6\n"
      "adcs r0, r3\n"        // consumes the carry from adds
      "cmp r0, #7\n"
      "bne fail\n"           // flags crossing the block boundary
      "bx lr\n"
      "fail:\n"
      "  movs r0, #0\n"
      "  bx lr\n",
      {});
}

}  // namespace
}  // namespace neuroc
