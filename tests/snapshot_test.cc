// Machine snapshot/restore: capturing the full architectural state (CPU registers,
// flags, counters, op histogram, flash, SRAM, memory stats, heatmaps) must be bit-exact
// on resume across all three decode paths and all five weight encodings, and the
// snapshot-based DeployedModel::Scrub must leave a fault-stricken machine byte-identical
// to its fresh deployment — registers and counters included.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/core/synthetic.h"
#include "src/runtime/deployed_model.h"
#include "src/sim/fault_injector.h"
#include "src/sim/machine.h"
#include "tests/test_util.h"

namespace neuroc {
namespace {

// The three decode paths; block is the deploy default.
enum class Path { kLegacy, kCached, kBlock };
constexpr Path kAllPaths[] = {Path::kLegacy, Path::kCached, Path::kBlock};

void ConfigurePath(Cpu& cpu, Path path) {
  switch (path) {
    case Path::kLegacy: cpu.EnableDecodeCache(false); break;
    case Path::kCached: cpu.EnableBlockCompile(false); break;
    case Path::kBlock: break;
  }
}

NeuroCModel SmallModel(uint64_t seed, EncodingKind kind) {
  testutil::TestModelSpec spec;
  spec.dims = {48, 20, 10};
  spec.density = 0.2;
  spec.encoding = kind;
  return testutil::MakeTestModel(seed, spec);
}

// Field-by-field equality over everything a MachineSnapshot captures. Done explicitly
// (not memcmp) so a failure names the diverging quantity.
void ExpectSnapshotsEqual(const MachineSnapshot& a, const MachineSnapshot& b) {
  EXPECT_EQ(a.cpu.regs, b.cpu.regs);
  EXPECT_EQ(a.cpu.pc, b.cpu.pc);
  EXPECT_EQ(a.cpu.flags.n, b.cpu.flags.n);
  EXPECT_EQ(a.cpu.flags.z, b.cpu.flags.z);
  EXPECT_EQ(a.cpu.flags.c, b.cpu.flags.c);
  EXPECT_EQ(a.cpu.flags.v, b.cpu.flags.v);
  EXPECT_EQ(a.cpu.cycles, b.cpu.cycles);
  EXPECT_EQ(a.cpu.instructions, b.cpu.instructions);
  EXPECT_EQ(a.cpu.op_histogram, b.cpu.op_histogram);
  EXPECT_EQ(a.memory.flash, b.memory.flash);
  EXPECT_EQ(a.memory.flash_high_water, b.memory.flash_high_water);
  EXPECT_EQ(a.memory.ram, b.memory.ram);
  EXPECT_EQ(a.memory.stats.flash_reads, b.memory.stats.flash_reads);
  EXPECT_EQ(a.memory.stats.sram_reads, b.memory.stats.sram_reads);
  EXPECT_EQ(a.memory.stats.sram_writes, b.memory.stats.sram_writes);
  EXPECT_EQ(a.memory.heatmap.bucket_bytes, b.memory.heatmap.bucket_bytes);
  EXPECT_EQ(a.memory.heatmap.flash_reads, b.memory.heatmap.flash_reads);
  EXPECT_EQ(a.memory.heatmap.sram_reads, b.memory.heatmap.sram_reads);
  EXPECT_EQ(a.memory.heatmap.sram_writes, b.memory.heatmap.sram_writes);
}

class SnapshotTest : public ::testing::TestWithParam<EncodingKind> {};

// Snapshot mid-history, run an inference, restore, run the same inference again: every
// architectural quantity — including cycle counters and heatmaps — must replay exactly,
// on each decode path. The replayed cycle count must also agree across paths.
TEST_P(SnapshotTest, RestoreReplaysInferenceBitIdenticallyOnEveryPath) {
  const EncodingKind kind = GetParam();
  uint64_t replay_cycles[3] = {};
  int path_index = 0;
  for (const Path path : kAllPaths) {
    DeployedModel dm = DeployedModel::Deploy(SmallModel(11, kind));
    ConfigurePath(dm.machine().cpu(), path);
    dm.machine().memory().EnableHeatmap(64);

    Rng rng(3);
    const std::vector<int8_t> warm = MakeRandomInput(dm.input_dim(), rng);
    const std::vector<int8_t> input = MakeRandomInput(dm.input_dim(), rng);
    dm.Predict(warm);  // non-trivial history before the capture

    const MachineSnapshot snap = dm.machine().Snapshot();
    const int first = dm.Predict(input);
    const std::vector<int8_t> out_first = dm.LastOutput();
    const MachineSnapshot after_first = dm.machine().Snapshot();

    dm.machine().Restore(snap);
    ExpectSnapshotsEqual(snap, dm.machine().Snapshot());  // restore is itself exact

    const int second = dm.Predict(input);
    EXPECT_EQ(first, second);
    EXPECT_EQ(out_first, dm.LastOutput());
    ExpectSnapshotsEqual(after_first, dm.machine().Snapshot());

    replay_cycles[path_index++] = after_first.cpu.cycles;
  }
  EXPECT_EQ(replay_cycles[0], replay_cycles[1]);
  EXPECT_EQ(replay_cycles[0], replay_cycles[2]);
}

// The cheap fork path: kRamAndRegisters skips the flash rewrite but must still replay
// identically as long as flash was not touched — the contract search-trial forking and
// the snapshot-retry recovery rung rely on.
TEST_P(SnapshotTest, RamAndRegistersScopeReplaysWhenFlashIsPristine) {
  DeployedModel dm = DeployedModel::Deploy(SmallModel(12, GetParam()));
  Rng rng(4);
  const std::vector<int8_t> input = MakeRandomInput(dm.input_dim(), rng);

  const MachineSnapshot snap = dm.machine().Snapshot();
  const int first = dm.Predict(input);
  const MachineSnapshot after_first = dm.machine().Snapshot();

  for (int fork = 0; fork < 3; ++fork) {
    dm.machine().Restore(snap, RestoreScope::kRamAndRegisters);
    EXPECT_EQ(first, dm.Predict(input));
    ExpectSnapshotsEqual(after_first, dm.machine().Snapshot());
  }
}

// Scrub after a mid-inference SRAM strike: the machine must come back byte-identical to
// the deploy-time pristine snapshot — not just the memory image, but the registers and
// cycle/instruction counters the old ad-hoc rewrite scrub left dirty.
TEST_P(SnapshotTest, ScrubAfterMidInferenceSramFaultRestoresPristineExactly) {
  const EncodingKind kind = GetParam();
  DeployedModel dm = DeployedModel::Deploy(SmallModel(13, kind));
  const MachineSnapshot& pristine = dm.pristine_snapshot();

  Rng rng(5);
  const std::vector<int8_t> input = MakeRandomInput(dm.input_dim(), rng);
  // Strike activation SRAM a few hundred instructions into the inference. Whether the
  // corrupted value ends up masked, silently wrong or faulting is irrelevant here — only
  // the post-scrub state matters.
  TriggeredInjector injector(&dm.machine().memory(), /*trigger_instructions=*/300,
                             dm.machine().config().ram_base,
                             dm.machine().config().ram_size, FaultModel::kSingleBitFlip,
                             1, Rng(99));
  dm.machine().cpu().set_probe(&injector);
  (void)dm.TryPredict(input);
  dm.machine().cpu().set_probe(nullptr);
  EXPECT_TRUE(injector.fired());

  dm.Scrub();
  ExpectSnapshotsEqual(pristine, dm.machine().Snapshot());
  // And the scrubbed machine behaves like a fresh deployment.
  DeployedModel fresh = DeployedModel::Deploy(SmallModel(13, kind));
  EXPECT_EQ(dm.Predict(input), fresh.Predict(input));
  EXPECT_EQ(dm.report().cycles_per_inference, fresh.report().cycles_per_inference);
}

// Same guarantee when the strike corrupts flash (kernel code or image): Scrub's full
// restore rewrites flash from the snapshot and invalidates the derived caches.
TEST_P(SnapshotTest, ScrubAfterFlashCorruptionRestoresPristineExactly) {
  DeployedModel dm = DeployedModel::Deploy(SmallModel(14, GetParam()));
  const MachineSnapshot& pristine = dm.pristine_snapshot();

  Rng rng(6);
  const std::vector<int8_t> input = MakeRandomInput(dm.input_dim(), rng);
  Rng inject_rng(7);
  InjectFault(dm.machine().memory(), dm.image_base(),
              static_cast<uint32_t>(dm.image().flash.size()),
              FaultModel::kSingleBitFlip, 1, inject_rng);
  EXPECT_FALSE(dm.CorruptedSections().empty());
  (void)dm.TryPredict(input);

  dm.Scrub();
  EXPECT_TRUE(dm.CorruptedSections().empty());
  ExpectSnapshotsEqual(pristine, dm.machine().Snapshot());
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, SnapshotTest,
                         ::testing::ValuesIn(kAllEncodingKinds));

}  // namespace
}  // namespace neuroc
