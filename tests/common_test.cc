#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/common/fixed_point.h"
#include "src/common/rng.h"

namespace neuroc {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(13), 13u);
  }
}

TEST(RngTest, NextBoundedCoversRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(rng.NextBounded(5));
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(5);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, RandomPermutationContainsAllIndices) {
  Rng rng(13);
  auto p = RandomPermutation(100, rng);
  std::set<size_t> s(p.begin(), p.end());
  EXPECT_EQ(s.size(), 100u);
  EXPECT_EQ(*s.begin(), 0u);
  EXPECT_EQ(*s.rbegin(), 99u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(21);
  Rng forked = a.Fork();
  EXPECT_NE(a.NextU64(), forked.NextU64());
}

TEST(FixedPointTest, SaturationBounds) {
  EXPECT_EQ(SatInt8(127), 127);
  EXPECT_EQ(SatInt8(128), 127);
  EXPECT_EQ(SatInt8(-128), -128);
  EXPECT_EQ(SatInt8(-129), -128);
  EXPECT_EQ(SatInt8(0), 0);
  EXPECT_EQ(SatInt16(40000), 32767);
  EXPECT_EQ(SatInt16(-40000), -32768);
}

TEST(FixedPointTest, RoundingRightShiftRoundsHalfUp) {
  EXPECT_EQ(RoundingRightShift(5, 1), 3);   // 2.5 -> 3
  EXPECT_EQ(RoundingRightShift(4, 1), 2);
  EXPECT_EQ(RoundingRightShift(-5, 1), -2); // -2.5 -> -2 (half up)
  EXPECT_EQ(RoundingRightShift(7, 2), 2);   // 1.75 -> 2
  EXPECT_EQ(RoundingRightShift(100, 0), 100);
}

TEST(FixedPointTest, RoundingRightShiftMatches64BitVariant) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const int32_t v = static_cast<int32_t>(rng.NextInt(-1000000, 1000000));
    const int shift = static_cast<int>(rng.NextInt(0, 12));
    EXPECT_EQ(RoundingRightShift(v, shift), static_cast<int32_t>(RoundingRightShift64(v, shift)));
  }
}

TEST(FixedPointTest, ChooseFracBitsFitsContainer) {
  for (float max_abs : {0.1f, 0.9f, 1.0f, 3.7f, 100.0f, 0.001f}) {
    const int frac = ChooseFracBits(max_abs, 8);
    EXPECT_LE(max_abs * std::ldexp(1.0, frac), 127.0 + 1e-3);
    // One more bit would overflow (unless clamped at max_frac).
    if (frac < 30) {
      EXPECT_GT(max_abs * std::ldexp(1.0, frac + 1), 127.0);
    }
  }
}

TEST(FixedPointTest, ChooseFracBitsZeroTensorGivesMax) {
  EXPECT_EQ(ChooseFracBits(0.0f, 8, -8, 14), 14);
}

TEST(FixedPointTest, QuantizeDequantizeRoundTrip) {
  Rng rng(23);
  for (int i = 0; i < 500; ++i) {
    const float v = rng.NextUniform(-0.99f, 0.99f);
    const int8_t q = QuantizeQ7(v, 7);
    EXPECT_NEAR(DequantizeFixed(q, 7), v, 1.0f / 128.0f + 1e-6f);
  }
}

TEST(FixedPointTest, QuantizeSaturates) {
  EXPECT_EQ(QuantizeFixed(10.0f, 7, 8), 127);
  EXPECT_EQ(QuantizeFixed(-10.0f, 7, 8), -128);
}

}  // namespace
}  // namespace neuroc
