#include <gtest/gtest.h>

#include <cstdio>

#include "src/core/model_serde.h"
#include "src/core/synthetic.h"

namespace neuroc {
namespace {

NeuroCModel MakeModel(uint64_t seed, EncodingKind kind, bool with_scale = true) {
  Rng rng(seed);
  SyntheticNeuroCLayerSpec l0;
  l0.in_dim = 96;
  l0.out_dim = 32;
  l0.density = 0.18;
  l0.encoding = kind;
  l0.has_scale = with_scale;
  SyntheticNeuroCLayerSpec l1 = l0;
  l1.in_dim = 32;
  l1.out_dim = 10;
  l1.relu = false;
  std::vector<QuantNeuroCLayer> layers;
  layers.push_back(MakeSyntheticNeuroCLayer(l0, rng));
  layers.push_back(MakeSyntheticNeuroCLayer(l1, rng));
  return NeuroCModel::FromLayers(std::move(layers));
}

class SerdeEncodingTest : public ::testing::TestWithParam<EncodingKind> {};

TEST_P(SerdeEncodingTest, NeuroCRoundTripPreservesPredictions) {
  NeuroCModel model = MakeModel(11 + static_cast<uint64_t>(GetParam()), GetParam());
  const std::vector<uint8_t> bytes = SerializeModel(model);
  auto loaded = DeserializeNeuroCModel(bytes);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->layers().size(), model.layers().size());
  EXPECT_EQ(loaded->WeightBytes(), model.WeightBytes());
  Rng rng(5);
  for (int t = 0; t < 20; ++t) {
    const std::vector<int8_t> input = MakeRandomInput(model.in_dim(), rng);
    std::vector<int8_t> a, b;
    model.Forward(input, a);
    loaded->Forward(input, b);
    ASSERT_EQ(a, b) << "trial " << t;
  }
}

TEST_P(SerdeEncodingTest, RoundTripPreservesLayerMetadata) {
  NeuroCModel model = MakeModel(23, GetParam());
  auto loaded = DeserializeNeuroCModel(SerializeModel(model));
  ASSERT_TRUE(loaded.has_value());
  for (size_t k = 0; k < model.layers().size(); ++k) {
    const auto& a = model.layers()[k];
    const auto& b = loaded->layers()[k];
    EXPECT_EQ(a.in_dim, b.in_dim);
    EXPECT_EQ(a.out_dim, b.out_dim);
    EXPECT_EQ(a.encoding->kind(), b.encoding->kind());
    EXPECT_EQ(a.in_frac, b.in_frac);
    EXPECT_EQ(a.out_frac, b.out_frac);
    EXPECT_EQ(a.scale_frac, b.scale_frac);
    EXPECT_EQ(a.requant_shift, b.requant_shift);
    EXPECT_EQ(a.relu, b.relu);
    EXPECT_EQ(a.scale_q, b.scale_q);
    EXPECT_EQ(a.bias_q, b.bias_q);
    EXPECT_TRUE(a.encoding->Decode() == b.encoding->Decode());
  }
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, SerdeEncodingTest,
                         ::testing::ValuesIn(std::vector<EncodingKind>(
                             std::begin(kAllEncodingKinds), std::end(kAllEncodingKinds))));

TEST(SerdeTest, TnnVariantRoundTrips) {
  NeuroCModel model = MakeModel(31, EncodingKind::kBlock, /*with_scale=*/false);
  auto loaded = DeserializeNeuroCModel(SerializeModel(model));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_FALSE(loaded->layers()[0].has_scale());
}

TEST(SerdeTest, MlpRoundTripPreservesPredictions) {
  Rng rng(7);
  std::vector<QuantDenseLayer> layers;
  layers.push_back(MakeSyntheticDenseLayer(48, 24, true, 10, rng));
  layers.push_back(MakeSyntheticDenseLayer(24, 10, false, 10, rng));
  MlpModel model = MlpModel::FromLayers(std::move(layers));
  auto loaded = DeserializeMlpModel(SerializeModel(model));
  ASSERT_TRUE(loaded.has_value());
  for (int t = 0; t < 20; ++t) {
    const std::vector<int8_t> input = MakeRandomInput(48, rng);
    EXPECT_EQ(model.Predict(input), loaded->Predict(input));
  }
}

TEST(SerdeTest, RejectsWrongMagic) {
  NeuroCModel model = MakeModel(3, EncodingKind::kCsc);
  std::vector<uint8_t> bytes = SerializeModel(model);
  bytes[0] ^= 0xFF;
  EXPECT_FALSE(DeserializeNeuroCModel(bytes).has_value());
  // A NeuroC blob is not an MLP blob.
  bytes[0] ^= 0xFF;
  EXPECT_FALSE(DeserializeMlpModel(bytes).has_value());
}

TEST(SerdeTest, RejectsTruncation) {
  NeuroCModel model = MakeModel(4, EncodingKind::kDelta);
  const std::vector<uint8_t> bytes = SerializeModel(model);
  for (size_t cut : {size_t{3}, size_t{8}, bytes.size() / 2, bytes.size() - 1}) {
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + static_cast<long>(cut));
    EXPECT_FALSE(DeserializeNeuroCModel(truncated).has_value()) << "cut at " << cut;
  }
}

TEST(SerdeTest, RejectsTrailingGarbage) {
  NeuroCModel model = MakeModel(5, EncodingKind::kMixed);
  std::vector<uint8_t> bytes = SerializeModel(model);
  bytes.push_back(0xAB);
  EXPECT_FALSE(DeserializeNeuroCModel(bytes).has_value());
}

TEST(SerdeTest, RejectsEmptyInput) {
  EXPECT_FALSE(DeserializeNeuroCModel({}).has_value());
  EXPECT_FALSE(DeserializeMlpModel({}).has_value());
}

TEST(SerdeTest, FuzzRandomBytesNeverCrash) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> junk(rng.NextBounded(256));
    for (auto& b : junk) {
      b = static_cast<uint8_t>(rng.NextBounded(256));
    }
    // Must return nullopt or a valid model, never crash.
    auto m = DeserializeNeuroCModel(junk);
    auto m2 = DeserializeMlpModel(junk);
    (void)m;
    (void)m2;
  }
}

TEST(SerdeTest, FuzzBitFlippedValidBlobsNeverCrash) {
  NeuroCModel model = MakeModel(6, EncodingKind::kBlock);
  const std::vector<uint8_t> bytes = SerializeModel(model);
  Rng rng(123);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<uint8_t> mutated = bytes;
    const size_t pos = rng.NextBounded(mutated.size());
    mutated[pos] ^= static_cast<uint8_t>(1u << rng.NextBounded(8));
    auto m = DeserializeNeuroCModel(mutated);
    if (m.has_value()) {
      // If it still parses, it must at least be structurally sound.
      EXPECT_GT(m->layers().size(), 0u);
    }
  }
}

TEST(SerdeTest, FileSaveLoadRoundTrip) {
  NeuroCModel model = MakeModel(8, EncodingKind::kBlock);
  const std::string path = ::testing::TempDir() + "/neuroc_model.bin";
  ASSERT_TRUE(SaveModel(model, path));
  auto loaded = LoadNeuroCModel(path);
  ASSERT_TRUE(loaded.has_value());
  Rng rng(1);
  const std::vector<int8_t> input = MakeRandomInput(model.in_dim(), rng);
  EXPECT_EQ(model.Predict(input), loaded->Predict(input));
  std::remove(path.c_str());
  EXPECT_FALSE(LoadNeuroCModel(path).has_value());
}

TEST(SerdeTest, SaveToUnwritablePathFails) {
  NeuroCModel model = MakeModel(9, EncodingKind::kCsc);
  EXPECT_FALSE(SaveModel(model, "/nonexistent_dir_xyz/model.bin"));
}

}  // namespace
}  // namespace neuroc
