#include <gtest/gtest.h>

#include <cstdio>

#include "src/core/model_serde.h"
#include "src/core/synthetic.h"

namespace neuroc {
namespace {

NeuroCModel MakeModel(uint64_t seed, EncodingKind kind, bool with_scale = true) {
  Rng rng(seed);
  SyntheticNeuroCLayerSpec l0;
  l0.in_dim = 96;
  l0.out_dim = 32;
  l0.density = 0.18;
  l0.encoding = kind;
  l0.has_scale = with_scale;
  SyntheticNeuroCLayerSpec l1 = l0;
  l1.in_dim = 32;
  l1.out_dim = 10;
  l1.relu = false;
  std::vector<QuantNeuroCLayer> layers;
  layers.push_back(MakeSyntheticNeuroCLayer(l0, rng));
  layers.push_back(MakeSyntheticNeuroCLayer(l1, rng));
  return NeuroCModel::FromLayers(std::move(layers));
}

class SerdeEncodingTest : public ::testing::TestWithParam<EncodingKind> {};

TEST_P(SerdeEncodingTest, NeuroCRoundTripPreservesPredictions) {
  NeuroCModel model = MakeModel(11 + static_cast<uint64_t>(GetParam()), GetParam());
  const std::vector<uint8_t> bytes = SerializeModel(model);
  auto loaded = DeserializeNeuroCModel(bytes);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->layers().size(), model.layers().size());
  EXPECT_EQ(loaded->WeightBytes(), model.WeightBytes());
  Rng rng(5);
  for (int t = 0; t < 20; ++t) {
    const std::vector<int8_t> input = MakeRandomInput(model.in_dim(), rng);
    std::vector<int8_t> a, b;
    model.Forward(input, a);
    loaded->Forward(input, b);
    ASSERT_EQ(a, b) << "trial " << t;
  }
}

TEST_P(SerdeEncodingTest, RoundTripPreservesLayerMetadata) {
  NeuroCModel model = MakeModel(23, GetParam());
  auto loaded = DeserializeNeuroCModel(SerializeModel(model));
  ASSERT_TRUE(loaded.has_value());
  for (size_t k = 0; k < model.layers().size(); ++k) {
    const auto& a = model.layers()[k];
    const auto& b = loaded->layers()[k];
    EXPECT_EQ(a.in_dim, b.in_dim);
    EXPECT_EQ(a.out_dim, b.out_dim);
    EXPECT_EQ(a.encoding->kind(), b.encoding->kind());
    EXPECT_EQ(a.in_frac, b.in_frac);
    EXPECT_EQ(a.out_frac, b.out_frac);
    EXPECT_EQ(a.scale_frac, b.scale_frac);
    EXPECT_EQ(a.requant_shift, b.requant_shift);
    EXPECT_EQ(a.relu, b.relu);
    EXPECT_EQ(a.scale_q, b.scale_q);
    EXPECT_EQ(a.bias_q, b.bias_q);
    EXPECT_TRUE(a.encoding->Decode() == b.encoding->Decode());
  }
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, SerdeEncodingTest,
                         ::testing::ValuesIn(std::vector<EncodingKind>(
                             std::begin(kAllEncodingKinds), std::end(kAllEncodingKinds))));

TEST(SerdeTest, TnnVariantRoundTrips) {
  NeuroCModel model = MakeModel(31, EncodingKind::kBlock, /*with_scale=*/false);
  auto loaded = DeserializeNeuroCModel(SerializeModel(model));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_FALSE(loaded->layers()[0].has_scale());
}

TEST(SerdeTest, MlpRoundTripPreservesPredictions) {
  Rng rng(7);
  std::vector<QuantDenseLayer> layers;
  layers.push_back(MakeSyntheticDenseLayer(48, 24, true, 10, rng));
  layers.push_back(MakeSyntheticDenseLayer(24, 10, false, 10, rng));
  MlpModel model = MlpModel::FromLayers(std::move(layers));
  auto loaded = DeserializeMlpModel(SerializeModel(model));
  ASSERT_TRUE(loaded.has_value());
  for (int t = 0; t < 20; ++t) {
    const std::vector<int8_t> input = MakeRandomInput(48, rng);
    EXPECT_EQ(model.Predict(input), loaded->Predict(input));
  }
}

TEST(SerdeTest, RejectsWrongMagic) {
  NeuroCModel model = MakeModel(3, EncodingKind::kCsc);
  std::vector<uint8_t> bytes = SerializeModel(model);
  bytes[0] ^= 0xFF;
  EXPECT_FALSE(DeserializeNeuroCModel(bytes).has_value());
  // A NeuroC blob is not an MLP blob.
  bytes[0] ^= 0xFF;
  EXPECT_FALSE(DeserializeMlpModel(bytes).has_value());
}

TEST(SerdeTest, RejectsTruncation) {
  NeuroCModel model = MakeModel(4, EncodingKind::kDelta);
  const std::vector<uint8_t> bytes = SerializeModel(model);
  for (size_t cut : {size_t{3}, size_t{8}, bytes.size() / 2, bytes.size() - 1}) {
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + static_cast<long>(cut));
    EXPECT_FALSE(DeserializeNeuroCModel(truncated).has_value()) << "cut at " << cut;
  }
}

TEST(SerdeTest, RejectsTrailingGarbage) {
  NeuroCModel model = MakeModel(5, EncodingKind::kMixed);
  std::vector<uint8_t> bytes = SerializeModel(model);
  bytes.push_back(0xAB);
  EXPECT_FALSE(DeserializeNeuroCModel(bytes).has_value());
}

TEST(SerdeTest, RejectsEmptyInput) {
  EXPECT_FALSE(DeserializeNeuroCModel({}).has_value());
  EXPECT_FALSE(DeserializeMlpModel({}).has_value());
}

TEST(SerdeTest, FuzzRandomBytesNeverCrash) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> junk(rng.NextBounded(256));
    for (auto& b : junk) {
      b = static_cast<uint8_t>(rng.NextBounded(256));
    }
    // Must return nullopt or a valid model, never crash.
    auto m = DeserializeNeuroCModel(junk);
    auto m2 = DeserializeMlpModel(junk);
    (void)m;
    (void)m2;
  }
}

TEST(SerdeTest, FuzzBitFlippedValidBlobsNeverCrash) {
  NeuroCModel model = MakeModel(6, EncodingKind::kBlock);
  const std::vector<uint8_t> bytes = SerializeModel(model);
  Rng rng(123);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<uint8_t> mutated = bytes;
    const size_t pos = rng.NextBounded(mutated.size());
    mutated[pos] ^= static_cast<uint8_t>(1u << rng.NextBounded(8));
    auto m = DeserializeNeuroCModel(mutated);
    if (m.has_value()) {
      // If it still parses, it must at least be structurally sound.
      EXPECT_GT(m->layers().size(), 0u);
    }
  }
}

TEST(SerdeTest, FileSaveLoadRoundTrip) {
  NeuroCModel model = MakeModel(8, EncodingKind::kBlock);
  const std::string path = ::testing::TempDir() + "/neuroc_model.bin";
  ASSERT_TRUE(SaveModel(model, path));
  auto loaded = LoadNeuroCModel(path);
  ASSERT_TRUE(loaded.has_value());
  Rng rng(1);
  const std::vector<int8_t> input = MakeRandomInput(model.in_dim(), rng);
  EXPECT_EQ(model.Predict(input), loaded->Predict(input));
  std::remove(path.c_str());
  EXPECT_FALSE(LoadNeuroCModel(path).has_value());
}

TEST(SerdeTest, SaveToUnwritablePathFails) {
  NeuroCModel model = MakeModel(9, EncodingKind::kCsc);
  EXPECT_FALSE(SaveModel(model, "/nonexistent_dir_xyz/model.bin"));
}

// Rewrites a serialized v2 blob ("NCM2"/"MLM2" + CRC trailer) into its legacy v1 shape:
// same body, v1 magic, no trailer. Exercises the parser's per-section diagnostics, which
// on v2 blobs are shadowed by the whole-file CRC check.
std::vector<uint8_t> ToLegacyV1(std::vector<uint8_t> bytes) {
  EXPECT_GE(bytes.size(), 8u);
  EXPECT_EQ(bytes[3], '2');
  bytes[3] = '1';
  bytes.resize(bytes.size() - 4);  // drop the CRC trailer
  return bytes;
}

TEST(SerdeStructuredErrorTest, WrongMagicIsMalformedImage) {
  NeuroCModel model = MakeModel(41, EncodingKind::kCsc);
  std::vector<uint8_t> bytes = SerializeModel(model);
  bytes[0] ^= 0xFF;
  StatusOr<NeuroCModel> loaded = DeserializeNeuroCModel(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), ErrorCode::kMalformedImage);
  EXPECT_NE(loaded.status().ToString().find("bad magic"), std::string::npos);
  // A NeuroC blob fed to the MLP loader is the same class of error.
  bytes[0] ^= 0xFF;
  EXPECT_EQ(DeserializeMlpModel(bytes).status().code(), ErrorCode::kMalformedImage);
}

TEST(SerdeStructuredErrorTest, CrcTrailerCatchesEverySingleBitFlip) {
  // The v2 trailer digests the whole file: every single-bit corruption of a valid blob
  // must be rejected with a structured code — kMalformedImage when the magic itself is
  // hit, kIntegrityFailure everywhere else. Exhaustive over the full blob.
  NeuroCModel model = MakeModel(42, EncodingKind::kMixed);
  const std::vector<uint8_t> bytes = SerializeModel(model);
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> mutated = bytes;
      mutated[pos] ^= static_cast<uint8_t>(1u << bit);
      StatusOr<NeuroCModel> loaded = DeserializeNeuroCModel(mutated);
      ASSERT_FALSE(loaded.ok()) << "flip at byte " << pos << " bit " << bit;
      const ErrorCode code = loaded.status().code();
      if (pos < 4) {
        EXPECT_EQ(code, ErrorCode::kMalformedImage) << "magic flip at bit " << bit;
      } else {
        EXPECT_EQ(code, ErrorCode::kIntegrityFailure)
            << "flip at byte " << pos << " bit " << bit;
      }
    }
  }
}

TEST(SerdeStructuredErrorTest, TruncationOfV2BlobIsCaught) {
  NeuroCModel model = MakeModel(43, EncodingKind::kDelta);
  const std::vector<uint8_t> bytes = SerializeModel(model);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + static_cast<long>(cut));
    StatusOr<NeuroCModel> loaded = DeserializeNeuroCModel(truncated);
    ASSERT_FALSE(loaded.ok()) << "cut at " << cut;
    // Below 8 bytes there is no complete magic+trailer: malformed. From there on the
    // trailing 4 bytes parse as a CRC that cannot match the shortened body.
    EXPECT_EQ(loaded.status().code(),
              cut < 8 ? ErrorCode::kMalformedImage : ErrorCode::kIntegrityFailure)
        << "cut at " << cut;
  }
}

TEST(SerdeStructuredErrorTest, LegacyV1BlobLoadsWithoutTrailer) {
  NeuroCModel model = MakeModel(44, EncodingKind::kBlock);
  StatusOr<NeuroCModel> loaded = DeserializeNeuroCModel(ToLegacyV1(SerializeModel(model)));
  ASSERT_TRUE(loaded.ok());
  Rng rng(2);
  const std::vector<int8_t> input = MakeRandomInput(model.in_dim(), rng);
  EXPECT_EQ(model.Predict(input), loaded->Predict(input));
}

TEST(SerdeStructuredErrorTest, V1TruncationAtEveryOffsetIsMalformed) {
  // Without the CRC shield, every truncation point must still land in a structured
  // kMalformedImage ("truncated scale array", "truncated weight matrix", ...) — the
  // parser bounds-checks every section read.
  NeuroCModel model = MakeModel(45, EncodingKind::kCsc);
  const std::vector<uint8_t> v1 = ToLegacyV1(SerializeModel(model));
  for (size_t cut = 0; cut < v1.size(); ++cut) {
    std::vector<uint8_t> truncated(v1.begin(), v1.begin() + static_cast<long>(cut));
    StatusOr<NeuroCModel> loaded = DeserializeNeuroCModel(truncated);
    ASSERT_FALSE(loaded.ok()) << "cut at " << cut;
    EXPECT_EQ(loaded.status().code(), ErrorCode::kMalformedImage) << "cut at " << cut;
  }
}

TEST(SerdeStructuredErrorTest, V1HeaderFieldCorruptionNamesTheSection) {
  NeuroCModel model = MakeModel(46, EncodingKind::kCsc);
  const std::vector<uint8_t> v1 = ToLegacyV1(SerializeModel(model));
  // Layer count word (offset 4): zero and absurd values are both "bad layer count".
  for (uint32_t count : {0u, 0xFFFFu}) {
    std::vector<uint8_t> mutated = v1;
    for (int i = 0; i < 4; ++i) {
      mutated[4 + i] = static_cast<uint8_t>((count >> (8 * i)) & 0xFF);
    }
    StatusOr<NeuroCModel> loaded = DeserializeNeuroCModel(mutated);
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.status().ToString().find("bad layer count"), std::string::npos);
  }
  // First layer's in_dim (offset 8): a zero dimension is a "bad layer header".
  std::vector<uint8_t> mutated = v1;
  mutated[8] = mutated[9] = mutated[10] = mutated[11] = 0;
  StatusOr<NeuroCModel> loaded = DeserializeNeuroCModel(mutated);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("bad layer header"), std::string::npos);
}

TEST(SerdeStructuredErrorTest, MissingFileIsIoError) {
  StatusOr<NeuroCModel> loaded = LoadNeuroCModel("/nonexistent_dir_xyz/model.bin");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), ErrorCode::kIoError);
  EXPECT_EQ(LoadMlpModel("/nonexistent_dir_xyz/model.bin").status().code(),
            ErrorCode::kIoError);
}

}  // namespace
}  // namespace neuroc
