#include <gtest/gtest.h>

#include "src/core/synthetic.h"
#include "src/isa/assembler.h"
#include "src/kernels/conv_desc.h"
#include "src/kernels/kernel_set.h"
#include "src/kernels/kernel_sources.h"
#include "src/runtime/deployed_model.h"

namespace neuroc {
namespace {

// ---------------------------------------------------------------------------
// Kernel source generation sanity.
// ---------------------------------------------------------------------------

TEST(KernelSourcesTest, AllVariantsAssemble) {
  for (EncodingKind kind : kAllEncodingKinds) {
    if (kind == EncodingKind::kUnrolled) {
      continue;  // per-model codegen, covered by UnrolledKernel* below
    }
    for (int mw : {1, 2}) {
      for (int iw : {1, 2}) {
        for (bool scale : {false, true}) {
          if (kind == EncodingKind::kBlock && (mw != 1 || iw != 1)) {
            continue;
          }
          KernelVariant v;
          v.kind = kind;
          v.meta_width = static_cast<uint8_t>(mw);
          v.idx_width = static_cast<uint8_t>(iw);
          v.has_scale = scale;
          const std::string src = GenerateKernelSource(v);
          const AssembledProgram p = Assemble(src, 0x08000000);
          EXPECT_GT(p.bytes.size(), 40u) << KernelFunctionName(v);
          EXPECT_LT(p.bytes.size(), 1200u) << KernelFunctionName(v);
        }
      }
    }
  }
  KernelVariant dense;
  dense.is_dense = true;
  const AssembledProgram p = Assemble(GenerateKernelSource(dense), 0x08000000);
  EXPECT_GT(p.bytes.size(), 40u);
}

TEST(KernelSourcesTest, ConvKernelAssembles) {
  const AssembledProgram p = Assemble(GenerateConvKernelSource(), 0x08000000);
  EXPECT_GT(p.bytes.size(), 100u);
}

TEST(KernelSetTest, DeduplicatesVariants) {
  KernelVariant a;
  a.kind = EncodingKind::kDelta;
  KernelVariant b = a;
  const KernelVariant variants[] = {a, b, a};
  KernelSet set = KernelSet::Build(variants, 0x08000000);
  // One copy of the kernel only; entry resolvable.
  EXPECT_EQ(set.EntryFor(a), 0x08000000u);
}

TEST(KernelSetTest, VariantNamesAreUnique) {
  std::set<std::string> names;
  for (EncodingKind kind : kAllEncodingKinds) {
    if (kind == EncodingKind::kUnrolled) {
      continue;
    }
    for (int mw : {1, 2}) {
      for (int iw : {1, 2}) {
        for (bool scale : {false, true}) {
          KernelVariant v;
          v.kind = kind;
          v.meta_width = static_cast<uint8_t>(mw);
          v.idx_width = static_cast<uint8_t>(iw);
          v.has_scale = scale;
          names.insert(KernelFunctionName(v));
        }
      }
    }
  }
  // Unrolled kernels are named per model layer, so distinct layers never collide.
  for (int layer : {0, 1, 2}) {
    for (bool scale : {false, true}) {
      KernelVariant v;
      v.kind = EncodingKind::kUnrolled;
      v.unrolled_layer = static_cast<int16_t>(layer);
      v.has_scale = scale;
      names.insert(KernelFunctionName(v));
    }
  }
  EXPECT_EQ(names.size(), 4u * 2 * 2 * 2 + 3u * 2);
}

// ---------------------------------------------------------------------------
// Unrolled per-model codegen.
// ---------------------------------------------------------------------------

TEST(UnrolledKernelTest, GeneratesAndAssembles) {
  Rng rng(321);
  const TernaryMatrix m = TernaryMatrix::Random(300, 24, 0.1, rng);
  const UnrolledEncoding enc(m);
  KernelVariant v;
  v.kind = EncodingKind::kUnrolled;
  v.unrolled_layer = 0;
  v.has_scale = true;
  const std::string src = GenerateUnrolledKernelSource(v, enc);
  const AssembledProgram p = Assemble(src, 0x08000000);
  EXPECT_GT(p.bytes.size(), 100u);
  EXPECT_TRUE(p.symbols.contains("nc_unrolled_l0_s1"));
}

TEST(UnrolledKernelTest, SizeModelPinsAssembledBytes) {
  // The contract that keeps UnrolledEncoding::Sizes() honest: assembled kernel bytes must
  // equal the marginal size model plus the fixed scaffold, for any adjacency.
  Rng rng(987);
  for (const auto [in, out, density] :
       {std::tuple<size_t, size_t, double>{64, 16, 0.2}, {300, 24, 0.05}, {17, 3, 0.9},
        {784, 32, 0.02}, {40, 8, 0.0}}) {
    for (const bool scale : {false, true}) {
      const TernaryMatrix m = TernaryMatrix::Random(in, out, density, rng);
      const UnrolledEncoding enc(m);
      KernelVariant v;
      v.kind = EncodingKind::kUnrolled;
      v.unrolled_layer = 3;
      v.has_scale = scale;
      const AssembledProgram p = Assemble(GenerateUnrolledKernelSource(v, enc), 0x08000000);
      EXPECT_EQ(p.bytes.size(), enc.Sizes().total() + UnrolledKernelFixedBytes(scale))
          << in << "x" << out << " d=" << density << " scale=" << scale;
    }
  }
}

TEST(UnrolledKernelTest, RoundTripDecode) {
  Rng rng(654);
  const TernaryMatrix m = TernaryMatrix::Random(120, 20, 0.15, rng);
  const UnrolledEncoding enc(m);
  EXPECT_EQ(enc.Decode(), m);
  EXPECT_EQ(enc.NonZeroCount(), m.NonZeroCount());
}

TEST(UnrolledKernelTest, PerLayerKernelsDoNotDeduplicate) {
  // Two unrolled layers with identical shape classes must still get distinct kernels —
  // their instruction streams differ because the adjacencies differ.
  Rng rng(4321);
  SyntheticNeuroCLayerSpec l0;
  l0.in_dim = 48;
  l0.out_dim = 48;
  l0.density = 0.2;
  l0.encoding = EncodingKind::kUnrolled;
  SyntheticNeuroCLayerSpec l1 = l0;
  l1.relu = false;
  std::vector<QuantNeuroCLayer> layers;
  layers.push_back(MakeSyntheticNeuroCLayer(l0, rng));
  layers.push_back(MakeSyntheticNeuroCLayer(l1, rng));
  NeuroCModel model = NeuroCModel::FromLayers(std::move(layers));
  DeployedModel deployed = DeployedModel::Deploy(model);
  const AssembledProgram& p = deployed.kernel_program();
  EXPECT_TRUE(p.symbols.contains("nc_unrolled_l0_s1"));
  EXPECT_TRUE(p.symbols.contains("nc_unrolled_l1_s1"));
  for (int trial = 0; trial < 3; ++trial) {
    const std::vector<int8_t> input = MakeRandomInput(48, rng);
    std::vector<int8_t> expected;
    model.Forward(input, expected);
    deployed.Predict(input);
    EXPECT_EQ(deployed.LastOutput(), expected);
  }
}

// ---------------------------------------------------------------------------
// THE load-bearing property: simulated Thumb kernels match the host reference bit-for-bit.
// ---------------------------------------------------------------------------

struct EquivalenceCase {
  EncodingKind kind;
  size_t in_dim;
  size_t out_dim;
  double density;
  bool has_scale;
  bool relu;
  int shift;
};

class KernelEquivalenceTest : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(KernelEquivalenceTest, SimulatorMatchesHostReference) {
  const EquivalenceCase p = GetParam();
  Rng rng(static_cast<uint64_t>(p.in_dim * 131 + p.out_dim * 7 +
                                static_cast<uint64_t>(p.kind) + (p.has_scale ? 1000 : 0)));
  SyntheticNeuroCLayerSpec spec;
  spec.in_dim = p.in_dim;
  spec.out_dim = p.out_dim;
  spec.density = p.density;
  spec.encoding = p.kind;
  spec.has_scale = p.has_scale;
  spec.relu = p.relu;
  spec.requant_shift = p.shift;
  std::vector<QuantNeuroCLayer> layers;
  layers.push_back(MakeSyntheticNeuroCLayer(spec, rng));
  NeuroCModel model = NeuroCModel::FromLayers(std::move(layers));

  DeployedModel deployed = DeployedModel::Deploy(model);
  for (int trial = 0; trial < 5; ++trial) {
    const std::vector<int8_t> input = MakeRandomInput(p.in_dim, rng);
    std::vector<int8_t> expected;
    model.Forward(input, expected);
    deployed.Predict(input);
    const std::vector<int8_t> actual = deployed.LastOutput();
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(actual[i], expected[i])
          << "mismatch at output " << i << " trial " << trial << " kind "
          << EncodingKindName(p.kind);
    }
  }
}

TEST_P(KernelEquivalenceTest, LatencyIsInputIndependent) {
  // The paper's predictability claim: identical cycle count for any input.
  const EquivalenceCase p = GetParam();
  Rng rng(99 + static_cast<uint64_t>(p.kind));
  SyntheticNeuroCLayerSpec spec;
  spec.in_dim = p.in_dim;
  spec.out_dim = p.out_dim;
  spec.density = p.density;
  spec.encoding = p.kind;
  spec.has_scale = p.has_scale;
  spec.relu = p.relu;
  spec.requant_shift = p.shift;
  std::vector<QuantNeuroCLayer> layers;
  layers.push_back(MakeSyntheticNeuroCLayer(spec, rng));
  NeuroCModel model = NeuroCModel::FromLayers(std::move(layers));
  DeployedModel deployed = DeployedModel::Deploy(model);
  deployed.Predict(MakeRandomInput(p.in_dim, rng));
  const uint64_t first = deployed.report().cycles_per_inference;
  for (int trial = 0; trial < 3; ++trial) {
    deployed.Predict(MakeRandomInput(p.in_dim, rng));
    EXPECT_EQ(deployed.report().cycles_per_inference, first);
  }
}

std::vector<EquivalenceCase> EquivalenceCases() {
  std::vector<EquivalenceCase> cases;
  for (EncodingKind kind : kAllEncodingKinds) {
    cases.push_back({kind, 64, 16, 0.2, true, true, 9});
    cases.push_back({kind, 300, 24, 0.1, true, false, 10});   // 16-bit indices
    cases.push_back({kind, 784, 32, 0.05, true, true, 11});   // large sparse
    cases.push_back({kind, 64, 16, 0.2, false, true, 5});     // TNN ablation (no scale)
    cases.push_back({kind, 40, 8, 0.9, true, true, 12});      // dense adjacency
    cases.push_back({kind, 17, 3, 0.5, true, false, 0});      // odd sizes, zero shift
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllVariants, KernelEquivalenceTest,
                         ::testing::ValuesIn(EquivalenceCases()));

TEST(KernelEquivalenceTest, MultiLayerNetworkMatchesHost) {
  Rng rng(4242);
  SyntheticNeuroCLayerSpec l0;
  l0.in_dim = 128;
  l0.out_dim = 48;
  l0.density = 0.15;
  l0.encoding = EncodingKind::kBlock;
  SyntheticNeuroCLayerSpec l1 = l0;
  l1.in_dim = 48;
  l1.out_dim = 10;
  l1.relu = false;
  std::vector<QuantNeuroCLayer> layers;
  layers.push_back(MakeSyntheticNeuroCLayer(l0, rng));
  layers.push_back(MakeSyntheticNeuroCLayer(l1, rng));
  NeuroCModel model = NeuroCModel::FromLayers(std::move(layers));
  DeployedModel deployed = DeployedModel::Deploy(model);
  for (int trial = 0; trial < 5; ++trial) {
    const std::vector<int8_t> input = MakeRandomInput(128, rng);
    std::vector<int8_t> expected;
    model.Forward(input, expected);
    const int cls = deployed.Predict(input);
    EXPECT_EQ(cls, model.Predict(input));
    const std::vector<int8_t> actual = deployed.LastOutput();
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(actual[i], expected[i]);
    }
  }
}

TEST(KernelEquivalenceTest, DenseKernelMatchesHost) {
  Rng rng(777);
  for (auto [in, out] : {std::pair<size_t, size_t>{64, 16}, {100, 10}, {17, 5}}) {
    std::vector<QuantDenseLayer> layers;
    layers.push_back(MakeSyntheticDenseLayer(in, out, true, 10, rng));
    MlpModel model = MlpModel::FromLayers(std::move(layers));
    DeployedModel deployed = DeployedModel::Deploy(model);
    for (int trial = 0; trial < 5; ++trial) {
      const std::vector<int8_t> input = MakeRandomInput(in, rng);
      std::vector<int8_t> expected;
      model.Forward(input, expected);
      deployed.Predict(input);
      const std::vector<int8_t> actual = deployed.LastOutput();
      for (size_t i = 0; i < expected.size(); ++i) {
        ASSERT_EQ(actual[i], expected[i]) << in << "x" << out << " output " << i;
      }
    }
  }
}

TEST(KernelEquivalenceTest, DenseMultiLayerMatchesHost) {
  Rng rng(778);
  std::vector<QuantDenseLayer> layers;
  layers.push_back(MakeSyntheticDenseLayer(96, 32, true, 11, rng));
  layers.push_back(MakeSyntheticDenseLayer(32, 10, false, 11, rng));
  MlpModel model = MlpModel::FromLayers(std::move(layers));
  DeployedModel deployed = DeployedModel::Deploy(model);
  const std::vector<int8_t> input = MakeRandomInput(96, rng);
  std::vector<int8_t> expected;
  model.Forward(input, expected);
  deployed.Predict(input);
  const std::vector<int8_t> actual = deployed.LastOutput();
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(actual[i], expected[i]);
  }
}

TEST(KernelEquivalenceTest, RandomizedArchitectureSweepMatchesHost) {
  // Differential fuzzing at the model level: random depths, widths, densities, and a
  // DIFFERENT encoding per layer — every sampled architecture must agree with the host
  // reference bit-for-bit on every output.
  Rng rng(0xF00D);
  for (int trial = 0; trial < 12; ++trial) {
    const int depth = static_cast<int>(rng.NextInt(1, 3));
    size_t in_dim = static_cast<size_t>(rng.NextInt(8, 200));
    const size_t first_in = in_dim;
    std::vector<QuantNeuroCLayer> layers;
    for (int d = 0; d < depth; ++d) {
      SyntheticNeuroCLayerSpec spec;
      spec.in_dim = in_dim;
      spec.out_dim = static_cast<size_t>(rng.NextInt(1, 48));
      spec.density = rng.NextUniform(0.02f, 0.9f);
      spec.encoding = kAllEncodingKinds[rng.NextBounded(std::size(kAllEncodingKinds))];
      spec.has_scale = rng.NextBool(0.8);
      spec.relu = d + 1 < depth ? true : rng.NextBool(0.5);
      spec.requant_shift = static_cast<int>(rng.NextInt(0, 14));
      layers.push_back(MakeSyntheticNeuroCLayer(spec, rng));
      in_dim = spec.out_dim;
    }
    NeuroCModel model = NeuroCModel::FromLayers(std::move(layers));
    DeployedModel deployed = DeployedModel::Deploy(model);
    for (int input_trial = 0; input_trial < 3; ++input_trial) {
      const std::vector<int8_t> input = MakeRandomInput(first_in, rng);
      std::vector<int8_t> expected;
      model.Forward(input, expected);
      deployed.Predict(input);
      ASSERT_EQ(deployed.LastOutput(), expected)
          << "trial " << trial << " model " << model.Summary();
    }
  }
}

// ---------------------------------------------------------------------------
// Convolution kernel.
// ---------------------------------------------------------------------------

TEST(ConvKernelTest, SimulatorMatchesHostReference) {
  Rng rng(555);
  for (const ConvLayerSpec spec : {ConvLayerSpec{16, 1, 3, 4, 7}, ConvLayerSpec{8, 2, 3, 3, 8},
                                   ConvLayerSpec{12, 1, 5, 2, 9}}) {
    const int m = spec.input_size - spec.kernel_size + 1;
    const size_t field = static_cast<size_t>(spec.channels) * spec.kernel_size *
                         spec.kernel_size;
    std::vector<int8_t> weights(field * spec.filters);
    for (auto& w : weights) {
      w = static_cast<int8_t>(rng.NextInt(-128, 127));
    }
    std::vector<int32_t> bias(spec.filters);
    for (auto& b : bias) {
      b = static_cast<int32_t>(rng.NextInt(-1000, 1000));
    }
    const std::vector<int8_t> input = MakeRandomInput(
        static_cast<size_t>(spec.channels) * spec.input_size * spec.input_size, rng);

    Machine machine;
    KernelSet kernels = KernelSet::Build({}, 0x08000000, /*include_conv=*/true);
    machine.LoadBytes(0x08000000, kernels.program().bytes);
    const uint32_t data_base = 0x08000000 + ((static_cast<uint32_t>(kernels.code_bytes()) + 3u) & ~3u);
    PackedConvLayer packed = PackConvLayer(machine, spec, weights, bias, data_base, 0x20000000);
    machine.LoadBytes(packed.input_addr,
                      std::span<const uint8_t>(
                          reinterpret_cast<const uint8_t*>(input.data()), input.size()));
    machine.CallFunction(kernels.ConvEntry(), {packed.desc_addr});

    std::vector<int8_t> expected;
    RunConvReference(spec, weights, bias, input, expected);
    std::vector<int8_t> actual(static_cast<size_t>(spec.filters) * m * m);
    machine.memory().HostRead(packed.output_addr,
                              std::span<uint8_t>(reinterpret_cast<uint8_t*>(actual.data()),
                                                 actual.size()));
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(actual[i], expected[i])
          << "conv mismatch at " << i << " (N=" << spec.input_size << ")";
    }
  }
}

TEST(ConvKernelTest, MaccCountMatchesPaperFormula) {
  ConvLayerSpec spec{16, 1, 3, 8, 7};
  Machine machine;
  std::vector<int8_t> weights(static_cast<size_t>(spec.filters) * spec.kernel_size *
                              spec.kernel_size);
  std::vector<int32_t> bias(spec.filters, 0);
  PackedConvLayer packed =
      PackConvLayer(machine, spec, weights, bias, 0x08001000, 0x20000000);
  // Paper Eq. 7: MACCs = K * C * S^2 * M^2 with M = N - S + 1 = 14.
  EXPECT_EQ(packed.macc_count, 8u * 1 * 9 * 14 * 14);
  EXPECT_EQ(packed.output_size, 14);
}

// ---------------------------------------------------------------------------
// DeployedModel reporting.
// ---------------------------------------------------------------------------

TEST(DeployedModelTest, ReportAccountsCodeImageAndOverhead) {
  Rng rng(12);
  SyntheticNeuroCLayerSpec spec;
  spec.in_dim = 100;
  spec.out_dim = 20;
  std::vector<QuantNeuroCLayer> layers;
  layers.push_back(MakeSyntheticNeuroCLayer(spec, rng));
  NeuroCModel model = NeuroCModel::FromLayers(std::move(layers));
  const size_t estimate = DeployedModel::EstimateProgramBytes(model);
  DeployedModel deployed = DeployedModel::Deploy(model);
  EXPECT_EQ(deployed.report().program_bytes, estimate);
  EXPECT_EQ(deployed.report().program_bytes,
            deployed.report().code_bytes + deployed.report().image_bytes +
                kRuntimeOverheadBytes);
  EXPECT_GT(deployed.report().ram_bytes, 0u);
  deployed.MeasureLatencyMs();
  EXPECT_GT(deployed.report().cycles_per_inference, 0u);
  EXPECT_GT(deployed.report().latency_ms, 0.0);
}

TEST(DeployedModelTest, OversizedModelAbortsAtDeploy) {
  Rng rng(13);
  // Two layers of 16-bit CSC totalling ~140 KB: beyond the 128 KB flash budget.
  SyntheticNeuroCLayerSpec l0;
  l0.in_dim = 700;
  l0.out_dim = 460;
  l0.density = 0.12;
  l0.encoding = EncodingKind::kCsc;
  SyntheticNeuroCLayerSpec l1 = l0;
  l1.in_dim = 460;
  l1.out_dim = 460;
  l1.density = 0.15;
  std::vector<QuantNeuroCLayer> layers;
  layers.push_back(MakeSyntheticNeuroCLayer(l0, rng));
  layers.push_back(MakeSyntheticNeuroCLayer(l1, rng));
  NeuroCModel model = NeuroCModel::FromLayers(std::move(layers));
  EXPECT_GT(DeployedModel::EstimateProgramBytes(model), 128u * 1024);
  EXPECT_DEATH(DeployedModel::Deploy(model), "does not fit program memory");
}

TEST(DeployedModelTest, ScaleRemovalShrinksFootprintAndLatencyMarginally) {
  // The paper's Fig. 8b/8c finding in miniature: removing w_j saves <1 ms and only a few
  // hundred bytes.
  Rng rng(14);
  SyntheticNeuroCLayerSpec spec;
  spec.in_dim = 784;
  spec.out_dim = 128;
  spec.density = 0.12;
  SyntheticNeuroCLayerSpec tnn = spec;
  tnn.has_scale = false;
  std::vector<QuantNeuroCLayer> a;
  a.push_back(MakeSyntheticNeuroCLayer(spec, rng));
  std::vector<QuantNeuroCLayer> b;
  b.push_back(MakeSyntheticNeuroCLayer(tnn, rng));
  NeuroCModel scaled = NeuroCModel::FromLayers(std::move(a));
  NeuroCModel plain = NeuroCModel::FromLayers(std::move(b));
  DeployedModel ds = DeployedModel::Deploy(scaled);
  DeployedModel dp = DeployedModel::Deploy(plain);
  const double ls = ds.MeasureLatencyMs();
  const double lp = dp.MeasureLatencyMs();
  EXPECT_LT(lp, ls);
  EXPECT_LT(ls - lp, 1.0);  // < 1 ms
  EXPECT_LT(dp.report().program_bytes, ds.report().program_bytes);
  EXPECT_LT(ds.report().program_bytes - dp.report().program_bytes, 600u);
}

}  // namespace
}  // namespace neuroc
